// Compares all four join methods on general-purpose workloads: SENS-Join,
// the external join, and the two specialized baselines from the related
// work (Sec. II), a generalized semi-join and a mediated in-network join.
// Expected shape (the paper's justification for comparing against the
// external join only): with arbitrarily placed tuples the specialized
// methods lose to the plain external join at every fraction, while
// SENS-Join wins below its crossover.
//
// Each fraction target is an independent (calibrate, 4x execute) unit,
// run as ParallelRunner trials on per-trial testbeds; rows come back in
// trial order, byte-identical to a sequential run.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/join/alt_baselines.h"
#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Sec. II/VI -- all join methods on general-purpose workloads "
               "(60% ratio), seed "
            << seed << "\n\n";
  const std::vector<double> kTargets = {0.02, 0.05, 0.20};
  auto rows = runner.Run(
      static_cast<int>(kTargets.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        auto tb = MustCreateTestbed(PaperDefaultParams(seed));
        const Calibration cal = CalibrateFraction(
            *tb, [](double d) { return RatioQueryThreeJoinAttrs(5, d); }, 0.0,
            1500.0, kTargets[ctx.trial], /*increasing=*/false);
        auto q = tb->ParseQuery(cal.sql);
        SENSJOIN_CHECK(q.ok());

        auto sens = tb->MakeSensJoin().Execute(*q, 0);
        auto ext = tb->MakeExternalJoin().Execute(*q, 0);
        join::SemiJoinExecutor semi(tb->simulator(), tb->tree(), tb->data());
        auto semi_report = semi.Execute(*q, 0);
        join::MediatedJoinExecutor mediated(tb->simulator(), tb->tree(),
                                            tb->data());
        auto med_report = mediated.Execute(*q, 0);
        SENSJOIN_CHECK(sens.ok() && ext.ok() && semi_report.ok() &&
                       med_report.ok());

        const uint64_t counts[4] = {
            sens->cost.join_packets, ext->cost.join_packets,
            semi_report->cost.join_packets, med_report->cost.join_packets};
        const char* names[4] = {"SENS-Join", "external", "semi-join",
                                "mediated"};
        int best = 0;
        for (int i = 1; i < 4; ++i) {
          if (counts[i] < counts[best]) best = i;
        }
        return std::vector<std::string>{
            Percent(cal.fraction, 1.0), Fmt(counts[0]), Fmt(counts[1]),
            Fmt(counts[2]), Fmt(counts[3]), names[best]};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"fraction", "SENS-Join", "external", "semi-join",
                      "mediated", "best"});
  for (std::vector<std::string>& row : *rows) table.AddRow(std::move(row));
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
