// Reproduces Fig. 15: SENS-Join transmissions broken down by protocol step
// for result fractions of 3%, 5%, 9% and 25% (60% join-attribute ratio, as
// in the paper's cost discussion). Expected shape: the
// Join-Attribute-Collection cost is independent of the fraction (it is the
// lower bound of SENS-Join); Filter-Dissemination and the final step grow
// with the fraction.
//
// The external reference bar and the four fraction targets are five
// independent (calibrate, execute) units, run as ParallelRunner trials on
// per-trial testbeds; rows come back in trial order, keeping the table
// byte-identical to a sequential run.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Fig. 15 -- costs in the different steps of SENS-Join, seed "
            << seed << "\n\n";

  // Trial 0 is the external-join reference bar; trials 1..4 are the
  // SENS-Join fraction targets.
  const std::vector<double> kTargets = {0.03, 0.05, 0.09, 0.25};
  auto rows = runner.Run(
      static_cast<int>(kTargets.size()) + 1, seed,
      [&](const testbed::TrialContext& ctx) {
        auto tb = MustCreateTestbed(PaperDefaultParams(seed));
        const double target = ctx.trial == 0 ? 0.05 : kTargets[ctx.trial - 1];
        const Calibration cal = CalibrateFraction(
            *tb, [](double d) { return RatioQueryThreeJoinAttrs(5, d); }, 0.0,
            1500.0, target, /*increasing=*/false);
        auto q = tb->ParseQuery(cal.sql);
        SENSJOIN_CHECK(q.ok());
        if (ctx.trial == 0) {
          auto ext = tb->MakeExternalJoin().Execute(*q, 0);
          SENSJOIN_CHECK(ext.ok());
          return std::vector<std::string>{
              "External Join", Percent(cal.fraction, 1.0), "-", "-", "-",
              Fmt(ext->cost.join_packets)};
        }
        auto sens = tb->MakeSensJoin().Execute(*q, 0);
        SENSJOIN_CHECK(sens.ok());
        return std::vector<std::string>{
            "SENS-Join (" + Percent(target, 1.0) + ")",
            Percent(cal.fraction, 1.0),
            Fmt(sens->cost.phases.collection_packets),
            Fmt(sens->cost.phases.filter_packets),
            Fmt(sens->cost.phases.final_packets),
            Fmt(sens->cost.join_packets)};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"variant", "achieved", "collection", "filter", "final",
                      "total"});
  for (std::vector<std::string>& row : *rows) table.AddRow(std::move(row));
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
