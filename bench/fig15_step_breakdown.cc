// Reproduces Fig. 15: SENS-Join transmissions broken down by protocol step
// for result fractions of 3%, 5%, 9% and 25% (60% join-attribute ratio, as
// in the paper's cost discussion). Expected shape: the
// Join-Attribute-Collection cost is independent of the fraction (it is the
// lower bound of SENS-Join); Filter-Dissemination and the final step grow
// with the fraction.

#include <cstdlib>
#include <iostream>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed) {
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Fig. 15 -- costs in the different steps of SENS-Join, seed "
            << seed << "\n\n";
  TablePrinter table({"variant", "achieved", "collection", "filter", "final",
                      "total"});

  // External join reference bar.
  {
    const Calibration cal = CalibrateFraction(
        *tb, [](double d) { return RatioQueryThreeJoinAttrs(5, d); }, 0.0,
        1500.0, 0.05, /*increasing=*/false);
    auto q = tb->ParseQuery(cal.sql);
    auto ext = tb->MakeExternalJoin().Execute(*q, 0);
    SENSJOIN_CHECK(ext.ok());
    table.AddRow({"External Join", Percent(cal.fraction, 1.0), "-", "-", "-",
                  Fmt(ext->cost.join_packets)});
  }

  for (double target : {0.03, 0.05, 0.09, 0.25}) {
    const Calibration cal = CalibrateFraction(
        *tb, [](double d) { return RatioQueryThreeJoinAttrs(5, d); }, 0.0,
        1500.0, target, /*increasing=*/false);
    auto q = tb->ParseQuery(cal.sql);
    SENSJOIN_CHECK(q.ok());
    auto sens = tb->MakeSensJoin().Execute(*q, 0);
    SENSJOIN_CHECK(sens.ok());
    table.AddRow({"SENS-Join (" + Percent(target, 1.0) + ")",
                  Percent(cal.fraction, 1.0),
                  Fmt(sens->cost.phases.collection_packets),
                  Fmt(sens->cost.phases.filter_packets),
                  Fmt(sens->cost.phases.final_packets),
                  Fmt(sens->cost.join_packets)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sensjoin::bench::Main(seed);
  return 0;
}
