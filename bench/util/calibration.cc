#include "util/calibration.h"

#include <cmath>
#include <set>
#include <vector>

#include "sensjoin/common/logging.h"
#include "sensjoin/join/executor_context.h"
#include "sensjoin/join/result.h"
#include "sensjoin/query/expr_eval.h"

namespace sensjoin::bench {
namespace {

/// Mutable two-slot ScalarContext reused for every candidate pair. The
/// previous implementation built a fresh pointer vector plus TupleContext
/// per pair (~2.25M allocations per bisection probe at 1500 nodes), which
/// dominated calibration wall-clock.
class PairContext : public query::ScalarContext {
 public:
  void Set(const data::Tuple* left, const data::Tuple* right) {
    left_ = left;
    right_ = right;
  }
  double Value(int table_index, int attr_index) const override {
    const data::Tuple* t = table_index == 0 ? left_ : right_;
    return t->values[attr_index];
  }

 private:
  const data::Tuple* left_ = nullptr;
  const data::Tuple* right_ = nullptr;
};

/// Scans left rows [begin, end) x all right rows, inserting the nodes of
/// matching pairs into `contributors`. Pairs whose endpoints are both
/// already marked are skipped — that only ever suppresses evaluations
/// whose outcome cannot add a new contributor, so the final set is
/// independent of chunking and thread count.
void ScanChunk(const std::vector<const query::Expr*>& preds,
               const std::vector<const data::Tuple*>& left,
               const std::vector<const data::Tuple*>& right, size_t begin,
               size_t end, std::set<sim::NodeId>& contributors) {
  std::vector<char> left_marked(end - begin, 0);
  std::vector<char> right_marked(right.size(), 0);
  PairContext ctx;
  for (size_t i = begin; i < end; ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      if (left_marked[i - begin] && right_marked[j]) continue;
      ctx.Set(left[i], right[j]);
      bool match = true;
      for (const query::Expr* p : preds) {
        if (!query::EvalPredicate(*p, ctx)) {
          match = false;
          break;
        }
      }
      if (match) {
        left_marked[i - begin] = 1;
        right_marked[j] = 1;
        contributors.insert(left[i]->node);
        contributors.insert(right[j]->node);
      }
    }
  }
}

/// Fast 2-table contributing-node count: pairwise scan with predicate
/// short-circuiting. With a multi-thread runner the left rows are chunked
/// across the pool; each chunk keeps private marks, so the union of the
/// per-chunk contributor sets equals the sequential result exactly.
size_t CountContributors2Way(const query::AnalyzedQuery& q,
                             const std::vector<const data::Tuple*>& left,
                             const std::vector<const data::Tuple*>& right,
                             const testbed::ParallelRunner* runner) {
  std::vector<const query::Expr*> preds;
  preds.reserve(q.join_predicates().size());
  for (const auto& p : q.join_predicates()) preds.push_back(p.get());

  const int threads = runner != nullptr ? runner->threads() : 1;
  if (threads <= 1 || left.size() < 512) {
    std::set<sim::NodeId> contributors;
    ScanChunk(preds, left, right, 0, left.size(), contributors);
    return contributors.size();
  }

  const int chunks = std::min<int>(threads * 4, static_cast<int>(left.size()));
  const size_t chunk_size = (left.size() + chunks - 1) / chunks;
  auto per_chunk = runner->Run(
      chunks, /*sweep_seed=*/0, [&](const testbed::TrialContext& c) {
        const size_t begin = static_cast<size_t>(c.trial) * chunk_size;
        const size_t end = std::min(begin + chunk_size, left.size());
        std::set<sim::NodeId> contributors;
        if (begin < end) ScanChunk(preds, left, right, begin, end,
                                   contributors);
        return contributors;
      });
  SENSJOIN_CHECK(per_chunk.ok()) << per_chunk.status();
  std::set<sim::NodeId> contributors;
  for (const std::set<sim::NodeId>& s : *per_chunk) {
    contributors.insert(s.begin(), s.end());
  }
  return contributors.size();
}

/// Ground-truth tuples of one deployment epoch, materialized once and
/// shared across bisection probes. Tuple storage is stable under move, so
/// the per-table pointer lists stay valid for the struct's lifetime.
struct MaterializedGroundTruth {
  std::vector<data::Tuple> all;
  std::vector<std::vector<const data::Tuple*>> per_table;
  std::vector<std::string> relation_names;
  int num_tables = 0;
};

/// Caching is only sound when node membership cannot depend on the probe
/// parameter: no per-table selection predicates (membership then reduces
/// to relation names, which are checked against the cache on every reuse).
bool MaterializationReusable(const query::AnalyzedQuery& q) {
  for (const auto& t : q.tables()) {
    if (t.selection != nullptr) return false;
  }
  return true;
}

MaterializedGroundTruth Materialize(testbed::Testbed& tb,
                                    const query::AnalyzedQuery& q,
                                    uint64_t epoch) {
  const join::ExecutorContext ctx(tb.data(), q, epoch);
  MaterializedGroundTruth m;
  for (int i = 0; i < ctx.num_nodes(); ++i) {
    if (ctx.info(i).has_tuple) m.all.push_back(ctx.info(i).tuple);
  }
  m.per_table = ctx.PerTableCandidates(m.all);
  m.relation_names = ctx.relation_names();
  m.num_tables = q.num_tables();
  return m;
}

double FractionOverMaterialized(const query::AnalyzedQuery& q,
                                const MaterializedGroundTruth& m,
                                const testbed::ParallelRunner* runner) {
  if (m.all.empty()) return 0.0;
  size_t contributors = 0;
  if (q.num_tables() == 2) {
    contributors =
        CountContributors2Way(q, m.per_table[0], m.per_table[1], runner);
  } else {
    contributors =
        join::ComputeExactJoin(q, m.per_table).contributing_nodes.size();
  }
  return static_cast<double>(contributors) / static_cast<double>(m.all.size());
}

}  // namespace

double ResultNodeFraction(testbed::Testbed& tb, const query::AnalyzedQuery& q,
                          uint64_t epoch,
                          const testbed::ParallelRunner* runner) {
  return FractionOverMaterialized(q, Materialize(tb, q, epoch), runner);
}

Calibration CalibrateFraction(
    testbed::Testbed& tb, const std::function<std::string(double)>& make_sql,
    double lo, double hi, double target, bool increasing, uint64_t epoch,
    int iterations, const testbed::ParallelRunner* runner) {
  SENSJOIN_CHECK_LT(lo, hi);
  Calibration best;
  double best_error = 1e9;
  MaterializedGroundTruth cached;
  bool have_cache = false;
  auto evaluate = [&](double param) {
    const std::string sql = make_sql(param);
    auto q = tb.ParseQuery(sql);
    SENSJOIN_CHECK(q.ok()) << q.status() << "for" << sql;
    double fraction = 0.0;
    if (MaterializationReusable(*q)) {
      // Probes within one calibration share a FROM list, but rebuild the
      // cache if a harness ever varies it between probes.
      if (!have_cache || cached.num_tables != q->num_tables() ||
          cached.relation_names != q->RelationNames()) {
        cached = Materialize(tb, *q, epoch);
        have_cache = true;
      }
      fraction = FractionOverMaterialized(*q, cached, runner);
    } else {
      fraction = ResultNodeFraction(tb, *q, epoch, runner);
    }
    const double error = std::abs(fraction - target);
    if (error < best_error) {
      best_error = error;
      best = Calibration{param, fraction, sql};
    }
    return fraction;
  };
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fraction = evaluate(mid);
    if (best_error < 0.002) break;  // close enough
    const bool need_larger_fraction = fraction < target;
    if (need_larger_fraction == increasing) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace sensjoin::bench
