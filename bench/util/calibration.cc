#include "util/calibration.h"

#include <cmath>
#include <set>
#include <vector>

#include "sensjoin/common/logging.h"
#include "sensjoin/join/executor_context.h"
#include "sensjoin/join/result.h"
#include "sensjoin/query/expr_eval.h"

namespace sensjoin::bench {
namespace {

/// Fast 2-table contributing-node count: pairwise scan with predicate
/// short-circuiting; pairs whose endpoints are both already marked are
/// skipped (a large win at high fractions).
size_t CountContributors2Way(const query::AnalyzedQuery& q,
                             const std::vector<const data::Tuple*>& left,
                             const std::vector<const data::Tuple*>& right) {
  std::set<sim::NodeId> contributors;
  std::vector<char> left_marked(left.size(), 0);
  std::vector<char> right_marked(right.size(), 0);
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      if (left_marked[i] && right_marked[j]) continue;
      std::vector<const data::Tuple*> pair = {left[i], right[j]};
      query::TupleContext pair_ctx(pair);
      bool match = true;
      for (const auto& p : q.join_predicates()) {
        if (!query::EvalPredicate(*p, pair_ctx)) {
          match = false;
          break;
        }
      }
      if (match) {
        left_marked[i] = 1;
        right_marked[j] = 1;
        contributors.insert(left[i]->node);
        contributors.insert(right[j]->node);
      }
    }
  }
  return contributors.size();
}

}  // namespace

double ResultNodeFraction(testbed::Testbed& tb, const query::AnalyzedQuery& q,
                          uint64_t epoch) {
  const join::ExecutorContext ctx(tb.data(), q, epoch);
  std::vector<data::Tuple> all;
  for (int i = 0; i < ctx.num_nodes(); ++i) {
    if (ctx.info(i).has_tuple) all.push_back(ctx.info(i).tuple);
  }
  if (all.empty()) return 0.0;
  const auto per_table = ctx.PerTableCandidates(all);
  size_t contributors = 0;
  if (q.num_tables() == 2) {
    contributors = CountContributors2Way(q, per_table[0], per_table[1]);
  } else {
    contributors =
        join::ComputeExactJoin(q, per_table).contributing_nodes.size();
  }
  return static_cast<double>(contributors) / static_cast<double>(all.size());
}

Calibration CalibrateFraction(
    testbed::Testbed& tb, const std::function<std::string(double)>& make_sql,
    double lo, double hi, double target, bool increasing, uint64_t epoch,
    int iterations) {
  SENSJOIN_CHECK_LT(lo, hi);
  Calibration best;
  double best_error = 1e9;
  auto evaluate = [&](double param) {
    const std::string sql = make_sql(param);
    auto q = tb.ParseQuery(sql);
    SENSJOIN_CHECK(q.ok()) << q.status() << "for" << sql;
    const double fraction = ResultNodeFraction(tb, *q, epoch);
    const double error = std::abs(fraction - target);
    if (error < best_error) {
      best_error = error;
      best = Calibration{param, fraction, sql};
    }
    return fraction;
  };
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fraction = evaluate(mid);
    if (best_error < 0.002) break;  // close enough
    const bool need_larger_fraction = fraction < target;
    if (need_larger_fraction == increasing) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace sensjoin::bench
