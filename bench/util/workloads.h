#ifndef SENSJOIN_BENCH_UTIL_WORKLOADS_H_
#define SENSJOIN_BENCH_UTIL_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "sensjoin/testbed/testbed.h"

namespace sensjoin::bench {

/// Builds the paper's generic evaluation query (Sec. VI "Parameters") with
/// ONE join attribute (temp) and `attrs_overall` attributes per relation
/// overall (the 33 % default ratio is attrs_overall = 3). The join
/// condition A.temp - B.temp > `delta` controls the result fraction:
/// larger deltas are rarer. attrs_overall in [1, 6].
std::string RatioQueryOneJoinAttr(int attrs_overall, double delta);

/// Same with THREE join attributes (temp, x, y) and `attrs_overall` in
/// [3, 6] (the 60 % default ratio is attrs_overall = 5). The condition is
/// Q2-shaped: |dtemp| < 0.3 AND distance > `dmin`; larger dmin is rarer.
std::string RatioQueryThreeJoinAttrs(int attrs_overall, double dmin);

/// The paper's default deployment (Sec. VI "Default setting"): 1500 nodes,
/// 1050 m x 1050 m, 50 m range, 48-byte packets. `num_nodes` scales the
/// area to keep density constant (Fig. 14's sweep).
testbed::TestbedParams PaperDefaultParams(uint64_t seed, int num_nodes = 1500);

/// Creates the default testbed or dies (bench binaries have no error path).
std::unique_ptr<testbed::Testbed> MustCreateTestbed(
    const testbed::TestbedParams& params);

}  // namespace sensjoin::bench

#endif  // SENSJOIN_BENCH_UTIL_WORKLOADS_H_
