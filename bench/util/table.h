#ifndef SENSJOIN_BENCH_UTIL_TABLE_H_
#define SENSJOIN_BENCH_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace sensjoin::bench {

/// Fixed-width console table, used by every figure/table harness so the
/// reproduced series print in a uniform, diff-friendly format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string Fmt(double v, int digits = 2);
/// Formats an integer count.
std::string Fmt(uint64_t v);
/// Formats `part/whole` as a percentage string like "83.4%".
std::string Percent(double part, double whole);
/// Formats the savings of `ours` relative to `baseline` ("+" = cheaper).
std::string Savings(uint64_t ours, uint64_t baseline);

}  // namespace sensjoin::bench

#endif  // SENSJOIN_BENCH_UTIL_TABLE_H_
