#include "util/workloads.h"

#include <cmath>
#include <vector>

#include "sensjoin/common/logging.h"

namespace sensjoin::bench {
namespace {

/// Non-join attributes added to the SELECT list, in preference order.
const std::vector<std::string>& ExtraAttrs() {
  static const auto* kAttrs =
      new std::vector<std::string>{"hum", "pres", "light", "x", "y"};
  return *kAttrs;
}

std::string SelectList(const std::vector<std::string>& attrs) {
  std::string out;
  for (const std::string& a : attrs) {
    if (!out.empty()) out += ", ";
    out += "A." + a + ", B." + a;
  }
  return out;
}

}  // namespace

std::string RatioQueryOneJoinAttr(int attrs_overall, double delta) {
  SENSJOIN_CHECK(attrs_overall >= 1 && attrs_overall <= 6);
  // The join attribute itself is always queried; fill up with extras.
  std::vector<std::string> attrs = {"temp"};
  for (int i = 0; attrs_overall > static_cast<int>(attrs.size()); ++i) {
    attrs.push_back(ExtraAttrs()[i]);
  }
  return "SELECT " + SelectList(attrs) +
         " FROM sensors A, sensors B WHERE A.temp - B.temp > " +
         std::to_string(delta) + " ONCE";
}

std::string RatioQueryThreeJoinAttrs(int attrs_overall, double dmin) {
  SENSJOIN_CHECK(attrs_overall >= 3 && attrs_overall <= 6);
  std::vector<std::string> attrs = {"temp", "x", "y"};
  const std::vector<std::string> extras = {"hum", "pres", "light"};
  for (int i = 0; attrs_overall > static_cast<int>(attrs.size()); ++i) {
    attrs.push_back(extras[i]);
  }
  return "SELECT " + SelectList(attrs) +
         " FROM sensors A, sensors B WHERE |A.temp - B.temp| < 0.3 "
         "AND distance(A.x, A.y, B.x, B.y) > " +
         std::to_string(dmin) + " ONCE";
}

testbed::TestbedParams PaperDefaultParams(uint64_t seed, int num_nodes) {
  testbed::TestbedParams params;
  params.seed = seed;
  params.placement.num_nodes = num_nodes;
  // Constant density: the paper's 1500 nodes / (1050 m)^2.
  const double side = 1050.0 * std::sqrt(num_nodes / 1500.0);
  params.placement.area_width_m = side;
  params.placement.area_height_m = side;
  return params;
}

std::unique_ptr<testbed::Testbed> MustCreateTestbed(
    const testbed::TestbedParams& params) {
  auto tb = testbed::Testbed::Create(params);
  SENSJOIN_CHECK(tb.ok()) << tb.status();
  return std::move(tb).value();
}

}  // namespace sensjoin::bench
