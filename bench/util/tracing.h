#ifndef SENSJOIN_BENCH_UTIL_TRACING_H_
#define SENSJOIN_BENCH_UTIL_TRACING_H_

#include <cstdint>
#include <string>

#include "sensjoin/join/stats.h"

namespace sensjoin::bench {

/// The shared `--trace` command-line flag of the bench harnesses.
/// `--trace=PATH` runs the bench normally and then appends one dedicated
/// traced execution exported to PATH; `--trace-only=PATH` skips the normal
/// figure run (CI smoke uses this to keep the job cheap).
struct TraceFlag {
  std::string path;
  bool only = false;

  bool enabled() const { return !path.empty(); }
};

/// Strips `--trace=PATH` / `--trace-only=PATH` out of argv (mirroring
/// testbed::ParseThreadsFlag, so positional arguments keep their indices)
/// and returns the parsed flag.
TraceFlag ParseTraceFlag(int* argc, char** argv);

/// Serializes a CostReport as a raw JSON object (including the per-node
/// packet array), in the shape scripts/trace_summary.py cross-checks
/// against.
std::string CostReportJson(const join::CostReport& report);

/// Runs one dedicated traced query execution on a fresh paper-default
/// deployment (`num_nodes` nodes, seeded with `seed`): tree build, query
/// dissemination, the external join, then SENS-Join, all recorded by an
/// attached tracer. Exports the Chrome trace to flag.path with the two
/// CostReports embedded under the top-level "crossCheck" section so
/// scripts/trace_summary.py can verify that per-phase sums recomputed from
/// the trace match the simulator's own accounting. Dies on any error
/// (bench binaries have no error path).
void RunTracedExecution(const TraceFlag& flag, uint64_t seed,
                        int num_nodes = 1500);

}  // namespace sensjoin::bench

#endif  // SENSJOIN_BENCH_UTIL_TRACING_H_
