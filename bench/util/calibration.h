#ifndef SENSJOIN_BENCH_UTIL_CALIBRATION_H_
#define SENSJOIN_BENCH_UTIL_CALIBRATION_H_

#include <functional>
#include <string>

#include "sensjoin/query/query.h"
#include "sensjoin/testbed/parallel.h"
#include "sensjoin/testbed/testbed.h"

namespace sensjoin::bench {

/// Fraction of participating nodes that contribute a tuple to the query
/// result, computed over ground-truth (materialized) data without touching
/// the network. This is the paper's primary workload parameter
/// ("fraction of nodes in the result", Sec. VI "Parameters").
///
/// When `runner` is non-null and has more than one thread, the pairwise
/// contributor scan is chunked across it; the result is identical either
/// way. Pass nullptr from code that is itself running inside a parallel
/// trial.
double ResultNodeFraction(testbed::Testbed& tb, const query::AnalyzedQuery& q,
                          uint64_t epoch,
                          const testbed::ParallelRunner* runner = nullptr);

/// Outcome of a predicate-parameter calibration.
struct Calibration {
  double param = 0.0;     ///< the chosen predicate parameter
  double fraction = 0.0;  ///< the result-node fraction it achieves
  std::string sql;        ///< the concrete calibrated query
};

/// Bisects `param` in [lo, hi] so that the query produced by
/// `make_sql(param)` puts approximately `target` of the nodes into the
/// result. `increasing` states whether the fraction grows with `param`
/// (e.g., a widening range condition) or shrinks (a growing difference
/// threshold). The paper varies join conditions exactly this way to sweep
/// the fraction axis.
///
/// The testbed's ground-truth tuples are materialized once and reused
/// across all bisection probes when the workload allows it (no per-table
/// selection predicates, stable FROM list — true for every harness in
/// bench/), instead of re-sensing the whole deployment per probe. Probes
/// whose shape does change fall back to per-probe materialization, so the
/// result never depends on the cache.
Calibration CalibrateFraction(
    testbed::Testbed& tb, const std::function<std::string(double)>& make_sql,
    double lo, double hi, double target, bool increasing, uint64_t epoch = 0,
    int iterations = 22, const testbed::ParallelRunner* runner = nullptr);

}  // namespace sensjoin::bench

#endif  // SENSJOIN_BENCH_UTIL_CALIBRATION_H_
