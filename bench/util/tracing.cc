#include "util/tracing.h"

#include <cstring>
#include <iostream>
#include <utility>

#include "sensjoin/common/logging.h"
#include "sensjoin/obs/export.h"
#include "sensjoin/obs/trace.h"
#include "util/workloads.h"

namespace sensjoin::bench {

TraceFlag ParseTraceFlag(int* argc, char** argv) {
  TraceFlag flag;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace=", 8) == 0) {
      flag.path = arg + 8;
      flag.only = false;
      continue;
    }
    if (std::strncmp(arg, "--trace-only=", 13) == 0) {
      flag.path = arg + 13;
      flag.only = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;
  return flag;
}

std::string CostReportJson(const join::CostReport& r) {
  std::string out = "{";
  auto u64 = [&out](const char* name, uint64_t v, bool comma = true) {
    out += "\"";
    out += name;
    out += "\":";
    out += std::to_string(v);
    if (comma) out += ",";
  };
  auto dbl = [&out](const char* name, double v) {
    out += "\"";
    out += name;
    out += "\":";
    out += obs::JsonDouble(v);
    out += ",";
  };
  u64("collection_packets", r.phases.collection_packets);
  u64("filter_packets", r.phases.filter_packets);
  u64("final_packets", r.phases.final_packets);
  u64("join_packets", r.join_packets);
  u64("join_bytes", r.join_bytes);
  dbl("energy_mj", r.energy_mj);
  u64("retransmitted_packets", r.retransmitted_packets);
  u64("ack_packets", r.ack_packets);
  dbl("retransmit_energy_mj", r.retransmit_energy_mj);
  dbl("ack_energy_mj", r.ack_energy_mj);
  u64("corrupted_packets", r.corrupted_packets);
  u64("undetected_corrupted_packets", r.undetected_corrupted_packets);
  u64("crc_bytes_sent", r.crc_bytes_sent);
  dbl("integrity_retransmit_energy_mj", r.integrity_retransmit_energy_mj);
  dbl("crc_energy_mj", r.crc_energy_mj);
  u64("duplicate_packets", r.duplicate_packets);
  u64("replayed_packets", r.replayed_packets);
  dbl("duplicate_energy_mj", r.duplicate_energy_mj);
  dbl("replay_energy_mj", r.replay_energy_mj);
  out += "\"per_node_packets\":[";
  for (size_t i = 0; i < r.per_node_packets.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(r.per_node_packets[i]);
  }
  out += "]}";
  return out;
}

void RunTracedExecution(const TraceFlag& flag, uint64_t seed, int num_nodes) {
  SENSJOIN_CHECK(flag.enabled());
  if (!obs::kTracingCompiledIn) {
    std::cout << "\ntrace: skipped (built with SENSJOIN_TRACING=0)\n";
    return;
  }

  auto tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
  obs::Tracer tracer;
  tb->AttachTracer(&tracer);
  // Rebuild the routing tree with the tracer attached so the trace carries
  // a TreeBuild span too (Testbed::Create ran the first build untraced).
  tb->RebuildTree();

  auto q = tb->ParseQuery(RatioQueryOneJoinAttr(3, 2.0));
  SENSJOIN_CHECK(q.ok()) << q.status();
  tb->DisseminateQuery(*q);

  auto ext = tb->MakeExternalJoin().Execute(*q, 0);
  SENSJOIN_CHECK(ext.ok()) << ext.status();
  auto sens = tb->MakeSensJoin().Execute(*q, 0);
  SENSJOIN_CHECK(sens.ok()) << sens.status();
  // The trace attributes events to phases per attempt; the embedded
  // CostReports cover exactly one attempt, so the cross-check requires the
  // fault-free single-attempt executions this fresh testbed guarantees.
  SENSJOIN_CHECK(ext->attempts == 1 && sens->attempts == 1);

  obs::CaptureSimulatorMetrics(tb->simulator(), &tracer.metrics());

  std::string cross = "{";
  cross += "\"seed\":" + std::to_string(seed) + ",";
  cross += "\"num_nodes\":" + std::to_string(num_nodes) + ",";
  cross += "\"query\":\"" + obs::JsonEscape(RatioQueryOneJoinAttr(3, 2.0)) +
           "\",";
  cross += "\"phase_map\":{";
  cross += "\"external\":[\"ExternalCollection\"],";
  cross +=
      "\"sens\":[\"JoinAttributeCollection\",\"BaseStationJoin\","
      "\"FilterDissemination\",\"FinalResult\"]},";
  cross += "\"external\":" + CostReportJson(ext->cost) + ",";
  cross += "\"sens\":" + CostReportJson(sens->cost) + "}";

  obs::TraceExportOptions options;
  options.extra_sections.emplace_back("crossCheck", std::move(cross));
  const Status status =
      obs::WriteChromeTraceFile(tracer, flag.path, options);
  SENSJOIN_CHECK(status.ok()) << status;
  std::cout << "\ntrace: wrote " << flag.path << " ("
            << tracer.buffer().size() << " events, "
            << tracer.buffer().dropped() << " dropped)\n";
}

}  // namespace sensjoin::bench
