#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace sensjoin::bench {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Fmt(uint64_t v) { return std::to_string(v); }

std::string Percent(double part, double whole) {
  if (whole == 0) return "n/a";
  return Fmt(100.0 * part / whole, 1) + "%";
}

std::string Savings(uint64_t ours, uint64_t baseline) {
  if (baseline == 0) return "n/a";
  return Fmt(100.0 * (1.0 - static_cast<double>(ours) /
                                static_cast<double>(baseline)),
             1) +
         "%";
}

}  // namespace sensjoin::bench
