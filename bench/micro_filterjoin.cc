// Microbenchmark for the base station's pre-computation join
// (ComputeJoinFilter): the conservative interval-arithmetic join over
// quantized join-attribute tuples. The base station is powered, but the
// computation must still finish well within a query's response time.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "sensjoin/common/rng.h"
#include "sensjoin/data/schema.h"
#include "sensjoin/join/join_filter.h"
#include "sensjoin/query/query.h"

namespace sensjoin::join {
namespace {

data::Schema BenchSchema() {
  return data::Schema(
      {{"x", 2}, {"y", 2}, {"temp", 2}, {"hum", 2}, {"pres", 2}});
}

query::AnalyzedQuery BenchQuery() {
  auto q = query::AnalyzedQuery::FromString(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(A.x, A.y, B.x, B.y) > 700 ONCE",
      BenchSchema());
  SENSJOIN_CHECK(q.ok());
  return std::move(q).value();
}

JoinAttrCodec BenchCodec() {
  DimensionSpec x{"x", 0, 0, 1050, 1.0};
  DimensionSpec y{"y", 1, 0, 1050, 1.0};
  DimensionSpec temp{"temp", 2, 0, 50, 0.1};
  auto quant = Quantizer::Create({x, y, temp});
  SENSJOIN_CHECK(quant.ok());
  return JoinAttrCodec(std::move(quant).value(), 1);
}

PointSet CollectedSet(const JoinAttrCodec& codec, int n) {
  Rng rng(n);
  PointSet set = codec.EmptySet();
  for (int i = 0; i < n; ++i) {
    set.Insert(codec.EncodeTuple({rng.UniformDouble(0, 1050),
                                  rng.UniformDouble(0, 1050),
                                  rng.UniformDouble(18, 26)},
                                 1));
  }
  return set;
}

void RunFilterJoin(benchmark::State& state, FilterJoinStrategy strategy) {
  const query::AnalyzedQuery q = BenchQuery();
  const JoinAttrCodec codec = BenchCodec();
  const PointSet collected = CollectedSet(codec, state.range(0));
  size_t filter_size = 0;
  size_t evaluated = 0;
  for (auto _ : state) {
    const FilterJoinResult r = ComputeJoinFilter(q, codec, collected, strategy);
    filter_size = r.filter.size();
    evaluated = r.combinations_evaluated;
    benchmark::DoNotOptimize(filter_size);
  }
  state.counters["points"] = static_cast<double>(collected.size());
  state.counters["filter"] = static_cast<double>(filter_size);
  state.counters["evaluated"] = static_cast<double>(evaluated);
  state.SetItemsProcessed(state.iterations() * collected.size() *
                          collected.size());
}

void BM_ComputeJoinFilter(benchmark::State& state) {
  RunFilterJoin(state, FilterJoinStrategy::kAuto);
}
BENCHMARK(BM_ComputeJoinFilter)->Arg(100)->Arg(400)->Arg(1500)
    ->Unit(benchmark::kMillisecond);

void BM_ComputeJoinFilterNaive(benchmark::State& state) {
  RunFilterJoin(state, FilterJoinStrategy::kNaive);
}
BENCHMARK(BM_ComputeJoinFilterNaive)->Arg(100)->Arg(400)->Arg(1500)
    ->Unit(benchmark::kMillisecond);

void BM_ComputeJoinFilterIndexed(benchmark::State& state) {
  RunFilterJoin(state, FilterJoinStrategy::kIndexed);
}
BENCHMARK(BM_ComputeJoinFilterIndexed)->Arg(100)->Arg(400)->Arg(1500)
    ->Unit(benchmark::kMillisecond);

// Three-relation chain: a temp band on A-B, a proximity join on B-C. The
// naive engine is cubic in the collected size, so the arguments stay small.
query::AnalyzedQuery ThreeWayQuery() {
  auto q = query::AnalyzedQuery::FromString(
      "SELECT A.hum, B.hum, C.hum FROM sensors A, sensors B, sensors C "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(B.x, B.y, C.x, C.y) < 200 ONCE",
      BenchSchema());
  SENSJOIN_CHECK(q.ok());
  return std::move(q).value();
}

void RunThreeWay(benchmark::State& state, FilterJoinStrategy strategy) {
  const query::AnalyzedQuery q = ThreeWayQuery();
  const JoinAttrCodec codec = BenchCodec();
  const PointSet collected = CollectedSet(codec, state.range(0));
  size_t filter_size = 0;
  for (auto _ : state) {
    const FilterJoinResult r = ComputeJoinFilter(q, codec, collected, strategy);
    filter_size = r.filter.size();
    benchmark::DoNotOptimize(filter_size);
  }
  state.counters["points"] = static_cast<double>(collected.size());
  state.counters["filter"] = static_cast<double>(filter_size);
}

void BM_ComputeJoinFilter3WayNaive(benchmark::State& state) {
  RunThreeWay(state, FilterJoinStrategy::kNaive);
}
BENCHMARK(BM_ComputeJoinFilter3WayNaive)->Arg(60)->Arg(150)
    ->Unit(benchmark::kMillisecond);

void BM_ComputeJoinFilter3WayIndexed(benchmark::State& state) {
  RunThreeWay(state, FilterJoinStrategy::kIndexed);
}
BENCHMARK(BM_ComputeJoinFilter3WayIndexed)->Arg(60)->Arg(150)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sensjoin::join

// main() comes from benchmark::benchmark_main.
