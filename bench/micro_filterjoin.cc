// Microbenchmark for the base station's pre-computation join
// (ComputeJoinFilter): the conservative interval-arithmetic join over
// quantized join-attribute tuples. The base station is powered, but the
// computation must still finish well within a query's response time.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "sensjoin/common/rng.h"
#include "sensjoin/data/schema.h"
#include "sensjoin/join/join_filter.h"
#include "sensjoin/query/query.h"

namespace sensjoin::join {
namespace {

data::Schema BenchSchema() {
  return data::Schema(
      {{"x", 2}, {"y", 2}, {"temp", 2}, {"hum", 2}, {"pres", 2}});
}

query::AnalyzedQuery BenchQuery() {
  auto q = query::AnalyzedQuery::FromString(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(A.x, A.y, B.x, B.y) > 700 ONCE",
      BenchSchema());
  SENSJOIN_CHECK(q.ok());
  return std::move(q).value();
}

JoinAttrCodec BenchCodec() {
  DimensionSpec x{"x", 0, 0, 1050, 1.0};
  DimensionSpec y{"y", 1, 0, 1050, 1.0};
  DimensionSpec temp{"temp", 2, 0, 50, 0.1};
  auto quant = Quantizer::Create({x, y, temp});
  SENSJOIN_CHECK(quant.ok());
  return JoinAttrCodec(std::move(quant).value(), 1);
}

PointSet CollectedSet(const JoinAttrCodec& codec, int n) {
  Rng rng(n);
  PointSet set = codec.EmptySet();
  for (int i = 0; i < n; ++i) {
    set.Insert(codec.EncodeTuple({rng.UniformDouble(0, 1050),
                                  rng.UniformDouble(0, 1050),
                                  rng.UniformDouble(18, 26)},
                                 1));
  }
  return set;
}

void BM_ComputeJoinFilter(benchmark::State& state) {
  const query::AnalyzedQuery q = BenchQuery();
  const JoinAttrCodec codec = BenchCodec();
  const PointSet collected = CollectedSet(codec, state.range(0));
  size_t filter_size = 0;
  for (auto _ : state) {
    const FilterJoinResult r = ComputeJoinFilter(q, codec, collected);
    filter_size = r.filter.size();
    benchmark::DoNotOptimize(filter_size);
  }
  state.counters["points"] = static_cast<double>(collected.size());
  state.counters["filter"] = static_cast<double>(filter_size);
  state.SetItemsProcessed(state.iterations() * collected.size() *
                          collected.size());
}
BENCHMARK(BM_ComputeJoinFilter)->Arg(100)->Arg(400)->Arg(1500)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sensjoin::join

// main() comes from benchmark::benchmark_main.
