// Ablation: Selective Filter Forwarding (Sec. IV-C) and its memory budget.
// The paper keeps subtree join-attribute structures up to 500 bytes and
// argues the limit barely matters because the mechanism's benefit is near
// the leaves where structures are tiny.

#include <cstdlib>
#include <iostream>
#include <string>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed) {
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Ablation -- Selective Filter Forwarding "
               "(60% ratio, 5% fraction), seed "
            << seed << "\n\n";
  const Calibration cal = CalibrateFraction(
      *tb, [](double d) { return RatioQueryThreeJoinAttrs(5, d); }, 0.0,
      1500.0, 0.05, /*increasing=*/false);
  auto q = tb->ParseQuery(cal.sql);
  SENSJOIN_CHECK(q.ok());

  TablePrinter table({"variant", "filter pkts", "final pkts", "total"});
  for (int memory : {0, 100, 500, 2000, 100000}) {
    join::ProtocolConfig config;
    config.filter_memory_bytes = memory;
    auto r = tb->MakeSensJoin(config).Execute(*q, 0);
    SENSJOIN_CHECK(r.ok()) << r.status();
    table.AddRow({"memory limit " + std::to_string(memory) + " B",
                  Fmt(r->cost.phases.filter_packets),
                  Fmt(r->cost.phases.final_packets),
                  Fmt(r->cost.join_packets)});
  }
  join::ProtocolConfig off;
  off.use_selective_forwarding = false;
  auto r = tb->MakeSensJoin(off).Execute(*q, 0);
  SENSJOIN_CHECK(r.ok());
  table.AddRow({"selective forwarding off",
                Fmt(r->cost.phases.filter_packets),
                Fmt(r->cost.phases.final_packets),
                Fmt(r->cost.join_packets)});
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sensjoin::bench::Main(seed);
  return 0;
}
