// Ablation: Selective Filter Forwarding (Sec. IV-C) and its memory budget.
// The paper keeps subtree join-attribute structures up to 500 bytes and
// argues the limit barely matters because the mechanism's benefit is near
// the leaves where structures are tiny.
//
// The calibration runs once up front (contributor scan chunked across the
// runner); the six configurations then run as ParallelRunner trials on
// per-trial testbeds, byte-identical to a sequential run.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Ablation -- Selective Filter Forwarding "
               "(60% ratio, 5% fraction), seed "
            << seed << "\n\n";
  const Calibration cal = CalibrateFraction(
      *tb, [](double d) { return RatioQueryThreeJoinAttrs(5, d); }, 0.0,
      1500.0, 0.05, /*increasing=*/false, /*epoch=*/0, /*iterations=*/22,
      &runner);

  // Trials 0..4 sweep the memory budget; the last trial disables the
  // mechanism entirely.
  const std::vector<int> kMemory = {0, 100, 500, 2000, 100000};
  auto rows = runner.Run(
      static_cast<int>(kMemory.size()) + 1, seed,
      [&](const testbed::TrialContext& ctx) {
        auto trial_tb = MustCreateTestbed(PaperDefaultParams(seed));
        auto q = trial_tb->ParseQuery(cal.sql);
        SENSJOIN_CHECK(q.ok());
        join::ProtocolConfig config;
        const bool off = ctx.trial == static_cast<int>(kMemory.size());
        if (off) {
          config.use_selective_forwarding = false;
        } else {
          config.filter_memory_bytes = kMemory[ctx.trial];
        }
        auto r = trial_tb->MakeSensJoin(config).Execute(*q, 0);
        SENSJOIN_CHECK(r.ok()) << r.status();
        return std::vector<std::string>{
            off ? "selective forwarding off"
                : "memory limit " + std::to_string(kMemory[ctx.trial]) + " B",
            Fmt(r->cost.phases.filter_packets),
            Fmt(r->cost.phases.final_packets),
            Fmt(r->cost.join_packets)};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"variant", "filter pkts", "final pkts", "total"});
  for (std::vector<std::string>& row : *rows) table.AddRow(std::move(row));
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
