// Ablation: fault tolerance under lossy links and node crashes. The paper
// handles failures by re-executing the whole query after CTP repair
// (Sec. IV-F); this harness quantifies what the fault-injection layer adds
// on top: link-layer ARQ (bounded retransmissions, charged in the energy
// model) and phase-level recovery (re-requesting only the missing subtree
// contribution). Sweeps ambient loss rate x permanent node crashes and
// reports cost, itemized ARQ overhead and result completeness against the
// fault-free ground truth, for SENS-Join and the external join. A fourth
// sweep certifies the exactly-once delivery semantics: duplication x
// reorder jitter plus a cross-attempt replay cell, where completeness must
// hold at 100% while the sequence guard absorbs the duplicate, reordered
// and stale traffic (itemized per cell).
//
// Every sweep cell builds its own faulty testbeds (fault RNG seeded from
// the cell parameters), so the cells run as ParallelRunner trials; rows
// come back in trial order, byte-identical to a sequential run.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 450 ONCE";

/// Deterministic crash victims: the first `count` nodes that contribute
/// rows to the fault-free result (no recovery — this ablation measures
/// degradation, not healing), so every crash visibly removes rows from the
/// join result.
sim::FaultPlan MakePlan(testbed::Testbed& tb,
                        const std::vector<sim::NodeId>& contributors,
                        double loss_rate, int crashes, uint64_t seed) {
  sim::FaultPlan plan;
  plan.default_loss_rate = loss_rate;
  plan.arq.enabled = true;
  plan.seed = seed * 1000 + crashes;
  const sim::SimTime when = tb.simulator().now() + 0.05;
  int picked = 0;
  for (sim::NodeId u : contributors) {
    if (picked >= crashes) break;
    plan.crash_events.push_back({u, when, /*recover=*/false});
    ++picked;
  }
  return plan;
}

/// Lets the scheduled crash events fire before the query runs, so the
/// victims are down for the whole execution. (The protocol drivers drain
/// the event queue only at phase boundaries, so a crash scheduled mid-run
/// would take effect after the victim already shipped its data.)
void ArmFaults(testbed::Testbed& tb) {
  tb.simulator().events().RunUntil(tb.simulator().now() + 0.1);
}

join::ProtocolConfig FaultyConfig() {
  join::ProtocolConfig config;
  config.max_retries = 6;
  config.retry_backoff_s = 0.5;
  return config;
}

/// FaultyConfig plus the self-healing stack: in-network tree repair, phase
/// watchdogs and graceful degradation to a certified partial result.
join::ProtocolConfig RepairConfig() {
  join::ProtocolConfig config = FaultyConfig();
  config.enable_tree_repair = true;
  config.enable_phase_watchdog = true;
  config.enable_graceful_degradation = true;
  return config;
}

/// Victims for the repair-vs-re-execution sweep: shallow relay nodes that
/// contribute no result rows but carry mid-sized subtrees. Their children
/// hit the dead parent near the END of the collection phase (the traversal
/// goes deepest-first), so the legacy path throws away almost a full
/// collection phase before re-executing, while in-network repair re-attaches
/// the orphaned subtrees and finishes the attempt. Because the victims' own
/// data matters to no result row, a repaired run stays complete.
///
/// The subtree-size band matters: the largest subtrees hang off the spine of
/// shallow relays near the root (the root sits at the field edge), and
/// crashing a spine node partitions the network at the root — nothing to
/// repair, and nothing for a rebuild to recover either. Mid-sized subtrees
/// have physical neighbors outside themselves in the constant-density
/// deployment, which is exactly the case in-network repair is for. Among the
/// in-band relays the SHALLOWEST are preferred: in the deepest-first
/// traversal their orphaned children transmit after most of the field, so
/// the baseline wastes the largest prefix of the phase. Victims are kept
/// ancestry-disjoint so one crash does not swallow another victim's subtree.
std::vector<sim::NodeId> PickRelayVictims(
    const testbed::Testbed& tb, const std::vector<sim::NodeId>& contributors,
    int count) {
  const net::RoutingTree& tree = tb.tree();
  const int max_subtree = std::max(8, tree.num_nodes() / 6);
  std::vector<sim::NodeId> relays;
  for (sim::NodeId u = 0; u < tree.num_nodes(); ++u) {
    if (!tree.InTree(u) || u == tree.root()) continue;
    if (tree.children(u).empty()) continue;
    if (tree.subtree_size(u) < 8 || tree.subtree_size(u) > max_subtree) {
      continue;
    }
    if (std::binary_search(contributors.begin(), contributors.end(), u)) {
      continue;
    }
    relays.push_back(u);
  }
  std::sort(relays.begin(), relays.end(),
            [&tree](sim::NodeId a, sim::NodeId b) {
              if (tree.hop_count(a) != tree.hop_count(b)) {
                return tree.hop_count(a) < tree.hop_count(b);
              }
              if (tree.subtree_size(a) != tree.subtree_size(b)) {
                return tree.subtree_size(a) > tree.subtree_size(b);
              }
              return a < b;
            });
  // A victim is only interesting if its orphans CAN be rescued: every
  // orphaned child needs a physical neighbor outside the union of all
  // crashed subtrees (otherwise the crash is a true partition — a corner
  // pocket bridged by one relay — and both protocols are equally helpless).
  std::vector<char> forbidden(tree.num_nodes(), 0);
  const sim::Simulator& sim = tb.simulator();
  auto rescueable = [&](sim::NodeId u) {
    std::vector<char> blocked = forbidden;
    for (sim::NodeId v : tree.SubtreeNodes(u)) blocked[v] = 1;
    for (sim::NodeId c : tree.children(u)) {
      bool has_exit = false;
      for (sim::NodeId v : sim.radio().Neighbors(c)) {
        if (!blocked[v] && tree.InTree(v) && sim.alive(v)) {
          has_exit = true;
          break;
        }
      }
      if (!has_exit) return false;
    }
    return true;
  };
  std::vector<sim::NodeId> victims;
  for (sim::NodeId u : relays) {
    if (static_cast<int>(victims.size()) >= count) break;
    bool overlaps = false;
    for (sim::NodeId v : victims) {
      overlaps = overlaps || tree.IsAncestor(u, v) || tree.IsAncestor(v, u);
    }
    if (overlaps || !rescueable(u)) continue;
    for (sim::NodeId v : tree.SubtreeNodes(u)) forbidden[v] = 1;
    victims.push_back(u);
  }
  return victims;
}

/// One cell of the repair-vs-re-execution sweep, kept numeric so the same
/// data feeds both the printed table and the optional JSON baseline.
struct RepairCell {
  double loss = 0.0;
  int crashes = 0;
  bool reexec_ok = false;
  double reexec_energy_mj = 0.0;
  double reexec_completeness = 0.0;
  int reexec_attempts = 0;
  double repair_energy_mj = 0.0;
  double repair_completeness = 0.0;
  uint64_t repair_packets = 0;
  size_t repairs_succeeded = 0;
  size_t excluded_nodes = 0;

  /// Energy saved by repairing in-network instead of re-executing.
  double saving() const {
    return reexec_ok && reexec_energy_mj > 0.0
               ? 1.0 - repair_energy_mj / reexec_energy_mj
               : 0.0;
  }
};

void WriteRepairJson(const std::string& path, uint64_t seed, int num_nodes,
                     const std::vector<RepairCell>& cells) {
  double min_completeness = 1.0;
  double worst_saving = 1.0;
  for (const RepairCell& c : cells) {
    min_completeness = std::min(min_completeness, c.repair_completeness);
    if (c.reexec_ok) worst_saving = std::min(worst_saving, c.saving());
  }
  std::ofstream out(path);
  out << "{\n  \"schema\": \"sensjoin-repair-v1\",\n"
      << "  \"seed\": " << seed << ",\n  \"num_nodes\": " << num_nodes
      << ",\n  \"min_repair_completeness\": " << min_completeness
      << ",\n  \"worst_energy_saving_vs_reexec\": " << worst_saving
      << ",\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const RepairCell& c = cells[i];
    out << "    {\"loss\": " << c.loss << ", \"crashes\": " << c.crashes
        << ", \"reexec_ok\": " << (c.reexec_ok ? "true" : "false")
        << ", \"reexec_energy_mj\": " << c.reexec_energy_mj
        << ", \"reexec_completeness\": " << c.reexec_completeness
        << ", \"reexec_attempts\": " << c.reexec_attempts
        << ", \"repair_energy_mj\": " << c.repair_energy_mj
        << ", \"repair_completeness\": " << c.repair_completeness
        << ", \"repair_packets\": " << c.repair_packets
        << ", \"repairs_succeeded\": " << c.repairs_succeeded
        << ", \"excluded_nodes\": " << c.excluded_nodes
        << ", \"energy_saving\": " << c.saving() << "}"
        << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote repair sweep baseline to " << path << "\n";
}

/// One cell of the delivery-semantics sweep (duplication x jitter, plus a
/// replay cell that severs a relay uplink so attempt 1 aborts with
/// fragments in flight). Kept numeric for the table and JSON baseline.
struct DeliveryCell {
  double dup = 0.0;
  double jitter_s = 0.0;
  bool cut_uplink = false;
  bool sens_ok = false;
  uint64_t sens_packets = 0;
  uint64_t duplicate_packets = 0;
  uint64_t replayed_packets = 0;
  size_t duplicate_deliveries = 0;
  size_t stale_drops = 0;
  size_t reordered = 0;
  int attempts = 0;
  double sens_completeness = 0.0;
  double ext_completeness = 0.0;
};

void WriteDeliveryJson(const std::string& path, uint64_t seed, int num_nodes,
                       const std::vector<DeliveryCell>& cells) {
  double min_completeness = 1.0;
  bool replay_exercised = false;
  bool duplication_exercised = false;
  for (const DeliveryCell& c : cells) {
    min_completeness = std::min(
        min_completeness, std::min(c.sens_completeness, c.ext_completeness));
    replay_exercised = replay_exercised || c.replayed_packets > 0;
    duplication_exercised =
        duplication_exercised || c.duplicate_deliveries > 0;
  }
  std::ofstream out(path);
  out << "{\n  \"schema\": \"sensjoin-delivery-v1\",\n"
      << "  \"seed\": " << seed << ",\n  \"num_nodes\": " << num_nodes
      << ",\n  \"min_completeness\": " << min_completeness
      << ",\n  \"duplication_exercised\": "
      << (duplication_exercised ? "true" : "false")
      << ",\n  \"replay_exercised\": " << (replay_exercised ? "true" : "false")
      << ",\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const DeliveryCell& c = cells[i];
    out << "    {\"duplication\": " << c.dup << ", \"jitter_s\": " << c.jitter_s
        << ", \"cut_uplink\": " << (c.cut_uplink ? "true" : "false")
        << ", \"sens_ok\": " << (c.sens_ok ? "true" : "false")
        << ", \"sens_packets\": " << c.sens_packets
        << ", \"duplicate_packets\": " << c.duplicate_packets
        << ", \"replayed_packets\": " << c.replayed_packets
        << ", \"duplicate_deliveries\": " << c.duplicate_deliveries
        << ", \"stale_drops\": " << c.stale_drops
        << ", \"reordered\": " << c.reordered
        << ", \"attempts\": " << c.attempts
        << ", \"sens_completeness\": " << c.sens_completeness
        << ", \"ext_completeness\": " << c.ext_completeness << "}"
        << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote delivery sweep baseline to " << path << "\n";
}

/// A mid-tree relay whose uplink, when severed, aborts the first attempt
/// with earlier deliveries of that attempt still in flight — the
/// cross-attempt replay case. At least two alternate physical neighbors
/// guarantee the rebuilt tree reattaches the subtree, so the retried run
/// stays complete.
sim::NodeId PickReplayVictim(const testbed::Testbed& tb) {
  const net::RoutingTree& tree = tb.tree();
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 3 &&
        tb.simulator().radio().Neighbors(u).size() >= 3) {
      return u;
    }
  }
  return sim::kInvalidNode;
}

struct RunOutcome {
  bool ok = false;
  join::ExecutionReport report;
};

template <typename Executor>
RunOutcome Run(Executor executor, const query::AnalyzedQuery& q) {
  RunOutcome out;
  auto r = executor.Execute(q, 0);
  if (r.ok()) {
    out.ok = true;
    out.report = std::move(*r);
  }
  return out;
}

void Main(uint64_t seed, int num_nodes, int threads,
          const std::string& repair_json, const std::string& delivery_json) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Ablation -- fault tolerance: loss rate x node crashes, seed "
            << seed << ", " << num_nodes << " nodes\n"
            << "ARQ on (3 retransmissions), phase-level recovery on, "
               "crashes are permanent\n\n";

  // Fault-free ground truth on an untouched deployment.
  auto clean = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
  auto q = clean->ParseQuery(kQuery);
  SENSJOIN_CHECK(q.ok()) << q.status();
  auto truth = clean->MakeExternalJoin().Execute(*q, 0);
  SENSJOIN_CHECK(truth.ok()) << truth.status();
  const std::vector<sim::NodeId>& contributors =
      truth->result.contributing_nodes;
  SENSJOIN_CHECK(!contributors.empty())
      << "the fault-free run has no result rows at " << num_nodes
      << " nodes (nothing to crash); try the default 250 nodes or more";

  const std::vector<double> kLoss = {0.0, 0.05, 0.10, 0.20};
  const std::vector<int> kCrashes = {0, 1, 3};
  auto rows = runner.Run(
      static_cast<int>(kLoss.size() * kCrashes.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        const double loss = kLoss[ctx.trial / kCrashes.size()];
        const int crashes = kCrashes[ctx.trial % kCrashes.size()];
        auto sens_tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
        sens_tb->InjectFaults(
            MakePlan(*sens_tb, contributors, loss, crashes, seed));
        ArmFaults(*sens_tb);
        auto sq = sens_tb->ParseQuery(kQuery);
        SENSJOIN_CHECK(sq.ok());
        const RunOutcome sens =
            Run(sens_tb->MakeSensJoin(FaultyConfig()), *sq);

        auto ext_tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
        ext_tb->InjectFaults(
            MakePlan(*ext_tb, contributors, loss, crashes, seed));
        ArmFaults(*ext_tb);
        auto eq = ext_tb->ParseQuery(kQuery);
        SENSJOIN_CHECK(eq.ok());
        const RunOutcome ext =
            Run(ext_tb->MakeExternalJoin(FaultyConfig()), *eq);

        return std::vector<std::string>{
            Percent(loss, 1.0), Fmt(static_cast<uint64_t>(crashes)),
            sens.ok ? Fmt(sens.report.cost.join_packets) : "fail",
            sens.ok ? Fmt(sens.report.cost.retransmitted_packets) : "-",
            sens.ok ? Fmt(sens.report.cost.retransmit_energy_mj) : "-",
            sens.ok ? Fmt(static_cast<uint64_t>(sens.report.attempts)) : "-",
            sens.ok
                ? Fmt(static_cast<uint64_t>(sens.report.recovery_requests))
                : "-",
            sens.ok ? Percent(testbed::ResultCompleteness(truth->result,
                                                          sens.report.result),
                              1.0)
                    : "0%",
            ext.ok ? Fmt(ext.report.cost.join_packets) : "fail",
            ext.ok ? Percent(testbed::ResultCompleteness(truth->result,
                                                         ext.report.result),
                             1.0)
                   : "0%"};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"loss", "crashes", "sens pkts", "retx", "retx mJ",
                      "att", "recov", "compl", "ext pkts", "ext compl"});
  for (std::vector<std::string>& row : *rows) table.AddRow(std::move(row));
  table.Print(std::cout);

  // Second sweep: payload corruption x CRC trailer. With the CRC on, every
  // damaged fragment is detected and resent (cost: trailer bytes plus
  // corruption-triggered retransmissions); with it off, damaged payloads
  // reach the decoders and completeness degrades instead.
  std::cout << "\nPayload corruption x CRC trailer (no loss, no crashes):\n";
  const std::vector<double> kCorr = {0.02, 0.05, 0.10};
  auto irows = runner.Run(
      static_cast<int>(kCorr.size()) * 2, seed,
      [&](const testbed::TrialContext& ctx) {
        const double corr = kCorr[ctx.trial / 2];
        const bool crc = ctx.trial % 2 == 0;
        auto corrupt_plan = [&](uint64_t salt) {
          sim::FaultPlan plan;
          plan.default_corruption_rate = corr;
          plan.arq.enabled = true;
          plan.arq.max_retransmissions = 6;
          plan.integrity.crc_enabled = crc;
          plan.seed = seed * 1000 + salt;
          return plan;
        };
        auto sens_tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
        sens_tb->InjectFaults(corrupt_plan(1));
        auto sq = sens_tb->ParseQuery(kQuery);
        SENSJOIN_CHECK(sq.ok());
        const RunOutcome sens =
            Run(sens_tb->MakeSensJoin(FaultyConfig()), *sq);

        auto ext_tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
        ext_tb->InjectFaults(corrupt_plan(2));
        auto eq = ext_tb->ParseQuery(kQuery);
        SENSJOIN_CHECK(eq.ok());
        const RunOutcome ext =
            Run(ext_tb->MakeExternalJoin(FaultyConfig()), *eq);

        return std::vector<std::string>{
            Percent(corr, 1.0), crc ? "on" : "off",
            sens.ok ? Fmt(sens.report.cost.join_packets) : "fail",
            sens.ok ? Fmt(sens.report.cost.corrupted_packets) : "-",
            sens.ok ? Fmt(sens.report.cost.undetected_corrupted_packets)
                    : "-",
            sens.ok ? Fmt(sens.report.cost.integrity_retransmit_energy_mj)
                    : "-",
            sens.ok ? Fmt(sens.report.cost.crc_bytes_sent) : "-",
            sens.ok ? Percent(testbed::ResultCompleteness(truth->result,
                                                          sens.report.result),
                              1.0)
                    : "0%",
            ext.ok ? Fmt(ext.report.cost.join_packets) : "fail",
            ext.ok ? Percent(testbed::ResultCompleteness(truth->result,
                                                         ext.report.result),
                             1.0)
                   : "0%"};
      });
  SENSJOIN_CHECK(irows.ok()) << irows.status();

  TablePrinter itable({"corr", "crc", "sens pkts", "corrupted", "undetect",
                       "integ mJ", "crc B", "compl", "ext pkts", "ext compl"});
  for (std::vector<std::string>& row : *irows) itable.AddRow(std::move(row));
  itable.Print(std::cout);

  // Third sweep: in-network tree repair vs the paper's full re-execution.
  // Shallow relay victims die before the run (between tree build and query
  // launch), so their orphaned children hit a dead parent near the end of
  // the deepest-first collection phase. The legacy path throws that phase
  // away and re-executes after a tree rebuild; the self-healing path
  // re-attaches the orphans in-network and finishes the attempt. Energy
  // includes rebuild beacons and repair traffic respectively.
  std::cout << "\nIn-network repair vs full re-execution (shallow relay "
               "victims down before the run, permanent):\n";
  const std::vector<double> kRepLoss = {0.0, 0.05, 0.10};
  const std::vector<int> kRepCrashes = {1, 2, 3};
  auto rcells = runner.Run(
      static_cast<int>(kRepLoss.size() * kRepCrashes.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        RepairCell cell;
        cell.loss = kRepLoss[ctx.trial / kRepCrashes.size()];
        cell.crashes = kRepCrashes[ctx.trial % kRepCrashes.size()];
        auto run_one = [&](const join::ProtocolConfig& config,
                           RunOutcome* out) {
          auto tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
          sim::FaultPlan plan;
          plan.default_loss_rate = cell.loss;
          plan.arq.enabled = true;
          plan.seed = seed * 1000 + static_cast<uint64_t>(cell.crashes);
          const sim::SimTime when = tb->simulator().now() + 0.05;
          for (sim::NodeId u :
               PickRelayVictims(*tb, contributors, cell.crashes)) {
            plan.crash_events.push_back({u, when, /*recover=*/false});
          }
          tb->InjectFaults(plan);
          ArmFaults(*tb);
          auto query = tb->ParseQuery(kQuery);
          SENSJOIN_CHECK(query.ok());
          *out = Run(tb->MakeSensJoin(config), *query);
        };
        RunOutcome reexec;
        RunOutcome repair;
        run_one(FaultyConfig(), &reexec);
        run_one(RepairConfig(), &repair);
        cell.reexec_ok = reexec.ok;
        if (reexec.ok) {
          // Cumulative energy over the whole Execute call: the wasted
          // attempts and the tree rebuilds between them are the cost this
          // sweep exists to measure.
          cell.reexec_energy_mj = reexec.report.total_cost.energy_mj;
          cell.reexec_completeness = testbed::ResultCompleteness(
              truth->result, reexec.report.result);
          cell.reexec_attempts = reexec.report.attempts;
        }
        // With graceful degradation on, the run completes or it's a bug.
        SENSJOIN_CHECK(repair.ok) << "repair-enabled run failed";
        cell.repair_energy_mj = repair.report.total_cost.energy_mj;
        cell.repair_completeness =
            testbed::ResultCompleteness(truth->result, repair.report.result);
        cell.repair_packets = repair.report.cost.repair_packets;
        cell.repairs_succeeded = repair.report.repairs_succeeded;
        cell.excluded_nodes =
            repair.report.certificate.excluded_nodes.size();
        return cell;
      });
  SENSJOIN_CHECK(rcells.ok()) << rcells.status();

  TablePrinter rtable({"loss", "crashes", "re-exec mJ", "att", "re-compl",
                       "repair mJ", "rep pkts", "repairs", "excl",
                       "rep compl", "saving"});
  for (const RepairCell& c : *rcells) {
    rtable.AddRow({Percent(c.loss, 1.0), Fmt(static_cast<uint64_t>(c.crashes)),
                   c.reexec_ok ? Fmt(c.reexec_energy_mj) : "fail",
                   c.reexec_ok ? Fmt(static_cast<uint64_t>(c.reexec_attempts))
                               : "-",
                   c.reexec_ok ? Percent(c.reexec_completeness, 1.0) : "0%",
                   Fmt(c.repair_energy_mj), Fmt(c.repair_packets),
                   Fmt(static_cast<uint64_t>(c.repairs_succeeded)),
                   Fmt(static_cast<uint64_t>(c.excluded_nodes)),
                   Percent(c.repair_completeness, 1.0),
                   c.reexec_ok ? Percent(c.saving(), 1.0) : "-"});
  }
  rtable.Print(std::cout);
  if (!repair_json.empty()) {
    WriteRepairJson(repair_json, seed, num_nodes, *rcells);
  }

  // Fourth sweep: delivery semantics under duplication x reorder jitter,
  // plus a cross-attempt replay cell (a severed relay uplink aborts the
  // first attempt with fragments in flight; the replay buffer re-delivers
  // them into attempt 2, where the sequence guard drops them as stale).
  // None of these faults lose data, so completeness must stay at 100% —
  // the exactly-once contract this sweep certifies, and the floor the CI
  // smoke job enforces on the JSON baseline.
  std::cout << "\nDelivery semantics: duplication x jitter, cross-attempt "
               "replay (ARQ on, replay buffer on):\n";
  struct DeliveryPoint {
    double dup;
    double jitter_s;
    bool cut;
  };
  const std::vector<DeliveryPoint> kDelivery = {
      {0.00, 0.000, false}, {0.05, 0.000, false}, {0.15, 0.000, false},
      {0.05, 0.005, false}, {0.15, 0.010, false}, {0.05, 0.005, true},
  };
  auto dcells = runner.Run(
      static_cast<int>(kDelivery.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        const DeliveryPoint& p = kDelivery[ctx.trial];
        DeliveryCell cell;
        cell.dup = p.dup;
        cell.jitter_s = p.jitter_s;
        cell.cut_uplink = p.cut;
        auto delivery_plan = [&](uint64_t salt) {
          sim::FaultPlan plan;
          plan.default_duplication_rate = p.dup;
          plan.delay.max_jitter_s = p.jitter_s;
          plan.enable_replay = true;
          plan.arq.enabled = true;
          plan.seed = seed * 1000 + salt;
          return plan;
        };
        auto sens_tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
        sens_tb->InjectFaults(
            delivery_plan(100 + static_cast<uint64_t>(ctx.trial)));
        if (p.cut) {
          const sim::NodeId victim = PickReplayVictim(*sens_tb);
          SENSJOIN_CHECK(victim != sim::kInvalidNode);
          sens_tb->simulator().radio().FailLink(
              victim, sens_tb->tree().parent(victim));
        }
        auto sq = sens_tb->ParseQuery(kQuery);
        SENSJOIN_CHECK(sq.ok());
        const RunOutcome sens =
            Run(sens_tb->MakeSensJoin(FaultyConfig()), *sq);
        cell.sens_ok = sens.ok;
        if (sens.ok) {
          cell.sens_packets = sens.report.total_cost.join_packets;
          cell.duplicate_packets = sens.report.total_cost.duplicate_packets;
          cell.replayed_packets = sens.report.total_cost.replayed_packets;
          cell.duplicate_deliveries = sens.report.duplicate_deliveries;
          cell.stale_drops = sens.report.stale_messages_dropped;
          cell.reordered = sens.report.reordered_messages;
          cell.attempts = sens.report.attempts;
          cell.sens_completeness = testbed::ResultCompleteness(
              truth->result, sens.report.result);
        }

        auto ext_tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
        ext_tb->InjectFaults(
            delivery_plan(200 + static_cast<uint64_t>(ctx.trial)));
        auto eq = ext_tb->ParseQuery(kQuery);
        SENSJOIN_CHECK(eq.ok());
        const RunOutcome ext =
            Run(ext_tb->MakeExternalJoin(FaultyConfig()), *eq);
        if (ext.ok) {
          cell.ext_completeness =
              testbed::ResultCompleteness(truth->result, ext.report.result);
        }
        return cell;
      });
  SENSJOIN_CHECK(dcells.ok()) << dcells.status();

  TablePrinter dtable({"dup", "jitter ms", "cut", "sens pkts", "dup pkts",
                       "replayed", "dup deliv", "stale", "reord", "att",
                       "compl", "ext compl"});
  for (const DeliveryCell& c : *dcells) {
    dtable.AddRow(
        {Percent(c.dup, 1.0), Fmt(c.jitter_s * 1000.0),
         c.cut_uplink ? "yes" : "no",
         c.sens_ok ? Fmt(c.sens_packets) : "fail",
         c.sens_ok ? Fmt(c.duplicate_packets) : "-",
         c.sens_ok ? Fmt(c.replayed_packets) : "-",
         c.sens_ok ? Fmt(static_cast<uint64_t>(c.duplicate_deliveries)) : "-",
         c.sens_ok ? Fmt(static_cast<uint64_t>(c.stale_drops)) : "-",
         c.sens_ok ? Fmt(static_cast<uint64_t>(c.reordered)) : "-",
         c.sens_ok ? Fmt(static_cast<uint64_t>(c.attempts)) : "-",
         c.sens_ok ? Percent(c.sens_completeness, 1.0) : "0%",
         Percent(c.ext_completeness, 1.0)});
  }
  dtable.Print(std::cout);
  if (!delivery_json.empty()) {
    WriteDeliveryJson(delivery_json, seed, num_nodes, *dcells);
  }

  std::cout << "\nSample fault summary (10% loss, 1 crash, SENS-Join):\n";
  auto tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
  tb->InjectFaults(MakePlan(*tb, contributors, 0.10, 1, seed));
  ArmFaults(*tb);
  auto sq = tb->ParseQuery(kQuery);
  SENSJOIN_CHECK(sq.ok());
  const RunOutcome sample = Run(tb->MakeSensJoin(FaultyConfig()), *sq);
  if (sample.ok) {
    std::cout << testbed::FaultToleranceSummary(
        sample.report.cost,
        testbed::ResultCompleteness(truth->result, sample.report.result));
  } else {
    std::cout << "run failed (network partitioned)\n";
  }

  std::cout << "\nSample integrity summary (5% corruption, CRC on, "
               "SENS-Join):\n";
  auto itb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
  sim::FaultPlan iplan;
  iplan.default_corruption_rate = 0.05;
  iplan.arq.enabled = true;
  iplan.arq.max_retransmissions = 6;
  iplan.seed = seed * 1000 + 7;
  itb->InjectFaults(iplan);
  auto iq = itb->ParseQuery(kQuery);
  SENSJOIN_CHECK(iq.ok());
  const RunOutcome isample = Run(itb->MakeSensJoin(FaultyConfig()), *iq);
  if (isample.ok) {
    std::cout << testbed::FaultToleranceSummary(
        isample.report.cost,
        testbed::ResultCompleteness(truth->result, isample.report.result));
  } else {
    std::cout << "run failed (network partitioned)\n";
  }
}

}  // namespace
}  // namespace sensjoin::bench

namespace sensjoin::bench {
namespace {

/// Strips a `--<name>=FILE` argument (a sweep's JSON baseline destination)
/// so positional seed/node-count parsing is unaffected.
std::string ParseJsonFlag(const std::string& flag, int* argc, char** argv) {
  const std::string prefix = "--" + flag + "=";
  std::string path;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      path = arg.substr(prefix.size());
      continue;
    }
    argv[w++] = argv[i];
  }
  *argc = w;
  return path;
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const std::string repair_json =
      sensjoin::bench::ParseJsonFlag("repair-json", &argc, argv);
  const std::string delivery_json =
      sensjoin::bench::ParseJsonFlag("delivery-json", &argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const int num_nodes = argc > 2 ? std::atoi(argv[2]) : 250;
  if (!trace.only) {
    sensjoin::bench::Main(seed, num_nodes, threads, repair_json,
                          delivery_json);
  }
  if (trace.enabled()) {
    sensjoin::bench::RunTracedExecution(trace, seed, num_nodes);
  }
  return 0;
}
