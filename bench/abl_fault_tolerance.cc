// Ablation: fault tolerance under lossy links and node crashes. The paper
// handles failures by re-executing the whole query after CTP repair
// (Sec. IV-F); this harness quantifies what the fault-injection layer adds
// on top: link-layer ARQ (bounded retransmissions, charged in the energy
// model) and phase-level recovery (re-requesting only the missing subtree
// contribution). Sweeps ambient loss rate x permanent node crashes and
// reports cost, itemized ARQ overhead and result completeness against the
// fault-free ground truth, for SENS-Join and the external join.
//
// Every sweep cell builds its own faulty testbeds (fault RNG seeded from
// the cell parameters), so the cells run as ParallelRunner trials; rows
// come back in trial order, byte-identical to a sequential run.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 450 ONCE";

/// Deterministic crash victims: the first `count` nodes that contribute
/// rows to the fault-free result (no recovery — this ablation measures
/// degradation, not healing), so every crash visibly removes rows from the
/// join result.
sim::FaultPlan MakePlan(testbed::Testbed& tb,
                        const std::vector<sim::NodeId>& contributors,
                        double loss_rate, int crashes, uint64_t seed) {
  sim::FaultPlan plan;
  plan.default_loss_rate = loss_rate;
  plan.arq.enabled = true;
  plan.seed = seed * 1000 + crashes;
  const sim::SimTime when = tb.simulator().now() + 0.05;
  int picked = 0;
  for (sim::NodeId u : contributors) {
    if (picked >= crashes) break;
    plan.crash_events.push_back({u, when, /*recover=*/false});
    ++picked;
  }
  return plan;
}

/// Lets the scheduled crash events fire before the query runs, so the
/// victims are down for the whole execution. (The protocol drivers drain
/// the event queue only at phase boundaries, so a crash scheduled mid-run
/// would take effect after the victim already shipped its data.)
void ArmFaults(testbed::Testbed& tb) {
  tb.simulator().events().RunUntil(tb.simulator().now() + 0.1);
}

join::ProtocolConfig FaultyConfig() {
  join::ProtocolConfig config;
  config.max_retries = 6;
  config.retry_backoff_s = 0.5;
  return config;
}

struct RunOutcome {
  bool ok = false;
  join::ExecutionReport report;
};

template <typename Executor>
RunOutcome Run(Executor executor, const query::AnalyzedQuery& q) {
  RunOutcome out;
  auto r = executor.Execute(q, 0);
  if (r.ok()) {
    out.ok = true;
    out.report = std::move(*r);
  }
  return out;
}

void Main(uint64_t seed, int num_nodes, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Ablation -- fault tolerance: loss rate x node crashes, seed "
            << seed << ", " << num_nodes << " nodes\n"
            << "ARQ on (3 retransmissions), phase-level recovery on, "
               "crashes are permanent\n\n";

  // Fault-free ground truth on an untouched deployment.
  auto clean = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
  auto q = clean->ParseQuery(kQuery);
  SENSJOIN_CHECK(q.ok()) << q.status();
  auto truth = clean->MakeExternalJoin().Execute(*q, 0);
  SENSJOIN_CHECK(truth.ok()) << truth.status();
  const std::vector<sim::NodeId>& contributors =
      truth->result.contributing_nodes;
  SENSJOIN_CHECK(!contributors.empty())
      << "the fault-free run has no result rows at " << num_nodes
      << " nodes (nothing to crash); try the default 250 nodes or more";

  const std::vector<double> kLoss = {0.0, 0.05, 0.10, 0.20};
  const std::vector<int> kCrashes = {0, 1, 3};
  auto rows = runner.Run(
      static_cast<int>(kLoss.size() * kCrashes.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        const double loss = kLoss[ctx.trial / kCrashes.size()];
        const int crashes = kCrashes[ctx.trial % kCrashes.size()];
        auto sens_tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
        sens_tb->InjectFaults(
            MakePlan(*sens_tb, contributors, loss, crashes, seed));
        ArmFaults(*sens_tb);
        auto sq = sens_tb->ParseQuery(kQuery);
        SENSJOIN_CHECK(sq.ok());
        const RunOutcome sens =
            Run(sens_tb->MakeSensJoin(FaultyConfig()), *sq);

        auto ext_tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
        ext_tb->InjectFaults(
            MakePlan(*ext_tb, contributors, loss, crashes, seed));
        ArmFaults(*ext_tb);
        auto eq = ext_tb->ParseQuery(kQuery);
        SENSJOIN_CHECK(eq.ok());
        const RunOutcome ext =
            Run(ext_tb->MakeExternalJoin(FaultyConfig()), *eq);

        return std::vector<std::string>{
            Percent(loss, 1.0), Fmt(static_cast<uint64_t>(crashes)),
            sens.ok ? Fmt(sens.report.cost.join_packets) : "fail",
            sens.ok ? Fmt(sens.report.cost.retransmitted_packets) : "-",
            sens.ok ? Fmt(sens.report.cost.retransmit_energy_mj) : "-",
            sens.ok ? Fmt(static_cast<uint64_t>(sens.report.attempts)) : "-",
            sens.ok
                ? Fmt(static_cast<uint64_t>(sens.report.recovery_requests))
                : "-",
            sens.ok ? Percent(testbed::ResultCompleteness(truth->result,
                                                          sens.report.result),
                              1.0)
                    : "0%",
            ext.ok ? Fmt(ext.report.cost.join_packets) : "fail",
            ext.ok ? Percent(testbed::ResultCompleteness(truth->result,
                                                         ext.report.result),
                             1.0)
                   : "0%"};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"loss", "crashes", "sens pkts", "retx", "retx mJ",
                      "att", "recov", "compl", "ext pkts", "ext compl"});
  for (std::vector<std::string>& row : *rows) table.AddRow(std::move(row));
  table.Print(std::cout);

  // Second sweep: payload corruption x CRC trailer. With the CRC on, every
  // damaged fragment is detected and resent (cost: trailer bytes plus
  // corruption-triggered retransmissions); with it off, damaged payloads
  // reach the decoders and completeness degrades instead.
  std::cout << "\nPayload corruption x CRC trailer (no loss, no crashes):\n";
  const std::vector<double> kCorr = {0.02, 0.05, 0.10};
  auto irows = runner.Run(
      static_cast<int>(kCorr.size()) * 2, seed,
      [&](const testbed::TrialContext& ctx) {
        const double corr = kCorr[ctx.trial / 2];
        const bool crc = ctx.trial % 2 == 0;
        auto corrupt_plan = [&](uint64_t salt) {
          sim::FaultPlan plan;
          plan.default_corruption_rate = corr;
          plan.arq.enabled = true;
          plan.arq.max_retransmissions = 6;
          plan.integrity.crc_enabled = crc;
          plan.seed = seed * 1000 + salt;
          return plan;
        };
        auto sens_tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
        sens_tb->InjectFaults(corrupt_plan(1));
        auto sq = sens_tb->ParseQuery(kQuery);
        SENSJOIN_CHECK(sq.ok());
        const RunOutcome sens =
            Run(sens_tb->MakeSensJoin(FaultyConfig()), *sq);

        auto ext_tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
        ext_tb->InjectFaults(corrupt_plan(2));
        auto eq = ext_tb->ParseQuery(kQuery);
        SENSJOIN_CHECK(eq.ok());
        const RunOutcome ext =
            Run(ext_tb->MakeExternalJoin(FaultyConfig()), *eq);

        return std::vector<std::string>{
            Percent(corr, 1.0), crc ? "on" : "off",
            sens.ok ? Fmt(sens.report.cost.join_packets) : "fail",
            sens.ok ? Fmt(sens.report.cost.corrupted_packets) : "-",
            sens.ok ? Fmt(sens.report.cost.undetected_corrupted_packets)
                    : "-",
            sens.ok ? Fmt(sens.report.cost.integrity_retransmit_energy_mj)
                    : "-",
            sens.ok ? Fmt(sens.report.cost.crc_bytes_sent) : "-",
            sens.ok ? Percent(testbed::ResultCompleteness(truth->result,
                                                          sens.report.result),
                              1.0)
                    : "0%",
            ext.ok ? Fmt(ext.report.cost.join_packets) : "fail",
            ext.ok ? Percent(testbed::ResultCompleteness(truth->result,
                                                         ext.report.result),
                             1.0)
                   : "0%"};
      });
  SENSJOIN_CHECK(irows.ok()) << irows.status();

  TablePrinter itable({"corr", "crc", "sens pkts", "corrupted", "undetect",
                       "integ mJ", "crc B", "compl", "ext pkts", "ext compl"});
  for (std::vector<std::string>& row : *irows) itable.AddRow(std::move(row));
  itable.Print(std::cout);

  std::cout << "\nSample fault summary (10% loss, 1 crash, SENS-Join):\n";
  auto tb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
  tb->InjectFaults(MakePlan(*tb, contributors, 0.10, 1, seed));
  ArmFaults(*tb);
  auto sq = tb->ParseQuery(kQuery);
  SENSJOIN_CHECK(sq.ok());
  const RunOutcome sample = Run(tb->MakeSensJoin(FaultyConfig()), *sq);
  if (sample.ok) {
    std::cout << testbed::FaultToleranceSummary(
        sample.report.cost,
        testbed::ResultCompleteness(truth->result, sample.report.result));
  } else {
    std::cout << "run failed (network partitioned)\n";
  }

  std::cout << "\nSample integrity summary (5% corruption, CRC on, "
               "SENS-Join):\n";
  auto itb = MustCreateTestbed(PaperDefaultParams(seed, num_nodes));
  sim::FaultPlan iplan;
  iplan.default_corruption_rate = 0.05;
  iplan.arq.enabled = true;
  iplan.arq.max_retransmissions = 6;
  iplan.seed = seed * 1000 + 7;
  itb->InjectFaults(iplan);
  auto iq = itb->ParseQuery(kQuery);
  SENSJOIN_CHECK(iq.ok());
  const RunOutcome isample = Run(itb->MakeSensJoin(FaultyConfig()), *iq);
  if (isample.ok) {
    std::cout << testbed::FaultToleranceSummary(
        isample.report.cost,
        testbed::ResultCompleteness(truth->result, isample.report.result));
  } else {
    std::cout << "run failed (network partitioned)\n";
  }
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const int num_nodes = argc > 2 ? std::atoi(argv[2]) : 250;
  if (!trace.only) sensjoin::bench::Main(seed, num_nodes, threads);
  if (trace.enabled()) {
    sensjoin::bench::RunTracedExecution(trace, seed, num_nodes);
  }
  return 0;
}
