// Validates the analytic planner (join/planner.h) against simulation:
// predicted vs measured packet counts for both methods across result
// fractions, and whether the planner's choice matches the simulated winner.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "sensjoin/join/executor_context.h"
#include "sensjoin/join/planner.h"
#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed) {
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Planner validation (33% ratio), seed " << seed << "\n\n";
  TablePrinter table({"fraction", "ext sim", "ext est", "sens sim",
                      "sens est", "planner picks", "simulated winner"});
  int correct = 0;
  int total = 0;
  for (double target : {0.02, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80}) {
    const Calibration cal = CalibrateFraction(
        *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0, 25.0,
        target, /*increasing=*/false);
    auto q = tb->ParseQuery(cal.sql);
    SENSJOIN_CHECK(q.ok());
    auto ext = tb->MakeExternalJoin().Execute(*q, 0);
    auto sens = tb->MakeSensJoin().Execute(*q, 0);
    SENSJOIN_CHECK(ext.ok() && sens.ok());

    std::vector<char> participates(tb->simulator().num_nodes(), 1);
    participates[tb->tree().root()] = 0;
    join::PlannerParams params;
    params.full_tuple_bytes = q->QueriedTupleBytes(0);
    params.join_attr_raw_bytes = q->JoinAttrTupleBytes(0);
    params.expected_fraction = cal.fraction;
    const join::PlanEstimate estimate =
        join::EstimatePlan(tb->tree(), participates, params);

    const join::JoinMethod simulated_winner =
        sens->cost.join_packets <= ext->cost.join_packets
            ? join::JoinMethod::kSensJoin
            : join::JoinMethod::kExternalJoin;
    ++total;
    if (estimate.Choice() == simulated_winner) ++correct;
    table.AddRow({Percent(cal.fraction, 1.0), Fmt(ext->cost.join_packets),
                  Fmt(estimate.external, 0), Fmt(sens->cost.join_packets),
                  Fmt(estimate.sens(), 0),
                  join::JoinMethodName(estimate.Choice()),
                  join::JoinMethodName(simulated_winner)});
  }
  table.Print(std::cout);
  std::cout << "decision accuracy: " << correct << "/" << total << "\n";
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sensjoin::bench::Main(seed);
  return 0;
}
