// Validates the analytic planner (join/planner.h) against simulation:
// predicted vs measured packet counts for both methods across result
// fractions, and whether the planner's choice matches the simulated winner.
//
// Each fraction target is an independent (calibrate, execute, estimate)
// unit, run as ParallelRunner trials on per-trial testbeds; rows and the
// accuracy tally are assembled in trial order, byte-identical to a
// sequential run.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/join/executor_context.h"
#include "sensjoin/join/planner.h"
#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

struct Row {
  std::vector<std::string> cells;
  bool correct = false;
};

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Planner validation (33% ratio), seed " << seed << "\n\n";
  const std::vector<double> kTargets = {0.02, 0.05, 0.10, 0.20,
                                        0.40, 0.60, 0.80};
  auto rows = runner.Run(
      static_cast<int>(kTargets.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        auto tb = MustCreateTestbed(PaperDefaultParams(seed));
        const Calibration cal = CalibrateFraction(
            *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0,
            25.0, kTargets[ctx.trial], /*increasing=*/false);
        auto q = tb->ParseQuery(cal.sql);
        SENSJOIN_CHECK(q.ok());
        auto ext = tb->MakeExternalJoin().Execute(*q, 0);
        auto sens = tb->MakeSensJoin().Execute(*q, 0);
        SENSJOIN_CHECK(ext.ok() && sens.ok());

        std::vector<char> participates(tb->simulator().num_nodes(), 1);
        participates[tb->tree().root()] = 0;
        join::PlannerParams params;
        params.full_tuple_bytes = q->QueriedTupleBytes(0);
        params.join_attr_raw_bytes = q->JoinAttrTupleBytes(0);
        params.expected_fraction = cal.fraction;
        const join::PlanEstimate estimate =
            join::EstimatePlan(tb->tree(), participates, params);

        const join::JoinMethod simulated_winner =
            sens->cost.join_packets <= ext->cost.join_packets
                ? join::JoinMethod::kSensJoin
                : join::JoinMethod::kExternalJoin;
        Row row;
        row.correct = estimate.Choice() == simulated_winner;
        row.cells = {Percent(cal.fraction, 1.0), Fmt(ext->cost.join_packets),
                     Fmt(estimate.external, 0), Fmt(sens->cost.join_packets),
                     Fmt(estimate.sens(), 0),
                     join::JoinMethodName(estimate.Choice()),
                     join::JoinMethodName(simulated_winner)};
        return row;
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"fraction", "ext sim", "ext est", "sens sim",
                      "sens est", "planner picks", "simulated winner"});
  int correct = 0;
  int total = 0;
  for (Row& row : *rows) {
    ++total;
    if (row.correct) ++correct;
    table.AddRow(std::move(row.cells));
  }
  table.Print(std::cout);
  std::cout << "decision accuracy: " << correct << "/" << total << "\n";
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
