// Network-lifetime projection: the paper argues the per-node metric is the
// critical one because "when the energy of the nodes near the root is
// depleted, the network ceases operation" (Sec. VI "Metric"). This harness
// converts per-node energy per execution into the number of query
// executions a battery budget sustains before the first node dies.
//
// The two methods run as ParallelRunner trials (each already built its
// own testbed); the rows are assembled on the main thread (the SENS-Join
// row is expressed relative to the external lifetime), byte-identical to
// a sequential run.

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

constexpr double kBatteryBudgetJ = 100.0;  // usable radio budget per node

struct Lifetime {
  double max_energy = 0.0;
  uint64_t executions = 0;
};

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Network lifetime projection (" << kBatteryBudgetJ
            << " J radio budget per node, 33% ratio, 5% fraction), seed "
            << seed << "\n\n";
  TablePrinter table(
      {"method", "max node energy/exec (mJ)", "executions until first death",
       "lifetime vs external"});

  // Trial 0: external join; trial 1: SENS-Join.
  auto results = runner.Run(2, seed, [&](const testbed::TrialContext& ctx) {
    const bool sens = ctx.trial == 1;
    auto tb = MustCreateTestbed(PaperDefaultParams(seed));
    const Calibration cal = CalibrateFraction(
        *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0, 25.0,
        0.05, /*increasing=*/false);
    auto q = tb->ParseQuery(cal.sql);
    SENSJOIN_CHECK(q.ok());
    tb->simulator().ResetStats();
    if (sens) {
      SENSJOIN_CHECK(tb->MakeSensJoin().Execute(*q, 0).ok());
    } else {
      SENSJOIN_CHECK(tb->MakeExternalJoin().Execute(*q, 0).ok());
    }
    double max_energy = 0;
    for (int i = 0; i < tb->simulator().num_nodes(); ++i) {
      max_energy =
          std::max(max_energy, tb->simulator().stats(i).energy_mj);
    }
    const uint64_t executions =
        static_cast<uint64_t>(kBatteryBudgetJ * 1000.0 / max_energy);
    return Lifetime{max_energy, executions};
  });
  SENSJOIN_CHECK(results.ok()) << results.status();

  const Lifetime& ext = (*results)[0];
  const Lifetime& sens = (*results)[1];
  table.AddRow({"External Join", Fmt(ext.max_energy, 2), Fmt(ext.executions),
                "1.0x"});
  table.AddRow({"SENS-Join", Fmt(sens.max_energy, 2), Fmt(sens.executions),
                Fmt(static_cast<double>(sens.executions) /
                        std::max<uint64_t>(1, ext.executions),
                    1) +
                    "x"});
  table.Print(std::cout);
  std::cout << "\n(\"This prolongs the lifetime of the network "
               "significantly\", Sec. VIII)\n";
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
