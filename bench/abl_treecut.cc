// Ablation: the Treecut threshold Dmax (Sec. IV-B / IV-E). The paper fixes
// Dmax = 30 bytes and argues that below ~30 bytes the possible data
// reduction cannot pay for the extra final-phase packet. This sweep shows
// the trade-off: Dmax = 0 disables Treecut; values near the packet size
// push complete tuples too far up the tree.
//
// The calibration runs once up front (contributor scan chunked across the
// runner); the seven configurations then run as ParallelRunner trials on
// per-trial testbeds, byte-identical to a sequential run.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Ablation -- Treecut threshold Dmax "
               "(33% ratio, 5% fraction), seed "
            << seed << "\n\n";
  const Calibration cal = CalibrateFraction(
      *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0, 25.0,
      0.05, /*increasing=*/false, /*epoch=*/0, /*iterations=*/22, &runner);

  // Trials 0..5 sweep Dmax; the last trial turns Treecut off entirely
  // (distinct from Dmax = 0 only in bookkeeping).
  const std::vector<int> kDmax = {0, 10, 20, 30, 40, 47};
  auto rows = runner.Run(
      static_cast<int>(kDmax.size()) + 1, seed,
      [&](const testbed::TrialContext& ctx) {
        auto trial_tb = MustCreateTestbed(PaperDefaultParams(seed));
        auto q = trial_tb->ParseQuery(cal.sql);
        SENSJOIN_CHECK(q.ok());
        join::ProtocolConfig config;
        const bool off = ctx.trial == static_cast<int>(kDmax.size());
        if (off) {
          config.use_treecut = false;
        } else {
          config.dmax_bytes = kDmax[ctx.trial];
        }
        auto r = trial_tb->MakeSensJoin(config).Execute(*q, 0);
        SENSJOIN_CHECK(r.ok()) << r.status();
        return std::vector<std::string>{
            off ? "off" : Fmt(static_cast<uint64_t>(kDmax[ctx.trial])),
            Fmt(r->treecut_exited_nodes),
            Fmt(r->cost.phases.collection_packets),
            Fmt(r->cost.phases.filter_packets),
            Fmt(r->cost.phases.final_packets),
            Fmt(r->cost.join_packets)};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"Dmax (B)", "exited nodes", "collection", "filter",
                      "final", "total"});
  for (std::vector<std::string>& row : *rows) table.AddRow(std::move(row));
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
