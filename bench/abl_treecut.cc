// Ablation: the Treecut threshold Dmax (Sec. IV-B / IV-E). The paper fixes
// Dmax = 30 bytes and argues that below ~30 bytes the possible data
// reduction cannot pay for the extra final-phase packet. This sweep shows
// the trade-off: Dmax = 0 disables Treecut; values near the packet size
// push complete tuples too far up the tree.

#include <cstdlib>
#include <iostream>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed) {
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Ablation -- Treecut threshold Dmax "
               "(33% ratio, 5% fraction), seed "
            << seed << "\n\n";
  const Calibration cal = CalibrateFraction(
      *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0, 25.0,
      0.05, /*increasing=*/false);
  auto q = tb->ParseQuery(cal.sql);
  SENSJOIN_CHECK(q.ok());

  TablePrinter table({"Dmax (B)", "exited nodes", "collection", "filter",
                      "final", "total"});
  for (int dmax : {0, 10, 20, 30, 40, 47}) {
    join::ProtocolConfig config;
    config.dmax_bytes = dmax;
    auto r = tb->MakeSensJoin(config).Execute(*q, 0);
    SENSJOIN_CHECK(r.ok()) << r.status();
    table.AddRow({Fmt(static_cast<uint64_t>(dmax)),
                  Fmt(r->treecut_exited_nodes),
                  Fmt(r->cost.phases.collection_packets),
                  Fmt(r->cost.phases.filter_packets),
                  Fmt(r->cost.phases.final_packets),
                  Fmt(r->cost.join_packets)});
  }
  // No Treecut at all (distinct from Dmax = 0 only in bookkeeping).
  join::ProtocolConfig off;
  off.use_treecut = false;
  auto r = tb->MakeSensJoin(off).Execute(*q, 0);
  SENSJOIN_CHECK(r.ok());
  table.AddRow({"off", Fmt(r->treecut_exited_nodes),
                Fmt(r->cost.phases.collection_packets),
                Fmt(r->cost.phases.filter_packets),
                Fmt(r->cost.phases.final_packets),
                Fmt(r->cost.join_packets)});
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sensjoin::bench::Main(seed);
  return 0;
}
