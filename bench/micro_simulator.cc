// Microbenchmarks (google-benchmark) for the simulator hot paths and the
// parallel experiment engine: event-queue throughput (events/sec), radio
// fragmentation throughput (fragments/sec), and whole experiment trials
// per second at 1..N worker threads. The trials series feeds the tracked
// BENCH_runtime.json baseline; scripts/check_bench_speedup.py compares
// the 1-thread and 4-thread rates on multi-core runners.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "sensjoin/sim/arena.h"
#include "sensjoin/sim/node.h"

namespace sensjoin {
namespace {

constexpr const char* kTrialQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 200 ONCE";

testbed::TestbedParams SmallParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 120;
  params.placement.area_width_m = 300;
  params.placement.area_height_m = 300;
  params.seed = seed;
  return params;
}

/// Schedule-then-drain throughput of the slot-pooled event queue.
void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    uint64_t fired = 0;
    for (int i = 0; i < n; ++i) {
      q.ScheduleAt(static_cast<sim::SimTime>(i) * 1e-4,
                   [&fired] { ++fired; });
    }
    while (q.RunOne()) {
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

/// Same with half the events canceled: exercises the generation check and
/// the free-list recycling that replaced the id->callback hash map.
void BM_EventQueueCancelHalf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<sim::EventId> ids(static_cast<size_t>(n));
  for (auto _ : state) {
    sim::EventQueue q;
    uint64_t fired = 0;
    for (int i = 0; i < n; ++i) {
      ids[i] = q.ScheduleAt(static_cast<sim::SimTime>(i) * 1e-4,
                            [&fired] { ++fired; });
    }
    for (int i = 0; i < n; i += 2) q.Cancel(ids[i]);
    while (q.RunOne()) {
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHalf)->Arg(1024)->Arg(16384);

/// ARQ-style timer churn: every event cancels its own timeout and arms the
/// next one, so one pool slot is recycled over and over.
void BM_EventQueueSlotRecycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      const sim::EventId timeout = q.ScheduleAt(
          static_cast<sim::SimTime>(i) * 1e-4 + 1.0, [] {});
      q.ScheduleAt(static_cast<sim::SimTime>(i) * 1e-4,
                   [&q, timeout] { q.Cancel(timeout); });
    }
    while (q.RunOne()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueSlotRecycle)->Arg(1024)->Arg(16384);

/// Link-layer fragmentation throughput: one-hop unicasts of a multi-
/// fragment payload between a tree node and its parent, event deliveries
/// drained inline. Reported rate is fragments (link packets) per second.
void BM_SimulatorUnicastFragments(benchmark::State& state) {
  auto tb = testbed::Testbed::Create(SmallParams(11));
  SENSJOIN_CHECK(tb.ok()) << tb.status();
  sim::Simulator& sim = (*tb)->simulator();
  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId src = sim::kInvalidNode;
  for (int i = 0; i < sim.num_nodes(); ++i) {
    if (i != tree.root() && tree.InTree(i)) {
      src = i;
      break;
    }
  }
  SENSJOIN_CHECK(src != sim::kInvalidNode);
  const sim::NodeId dst = tree.parent(src);
  constexpr size_t kPayloadBytes = 200;
  const int fragments =
      sim::NumFragments(kPayloadBytes, sim.packet_params());
  uint64_t received = 0;
  auto previous = sim.SetReceiveHandler(
      [&received](sim::NodeId, const sim::Message&) { ++received; });
  for (auto _ : state) {
    sim::Message msg;
    msg.src = src;
    msg.dst = dst;
    msg.kind = sim::MessageKind::kAppData;
    msg.payload_bytes = kPayloadBytes;
    benchmark::DoNotOptimize(sim.SendUnicast(std::move(msg)));
    while (sim.events().RunOne()) {
    }
  }
  sim.SetReceiveHandler(std::move(previous));
  benchmark::DoNotOptimize(received);
  state.SetItemsProcessed(state.iterations() * fragments);
}
BENCHMARK(BM_SimulatorUnicastFragments);

/// Whole experiment trials (testbed build + SENS-Join execution) per
/// second through the ParallelRunner at a fixed thread count. Real time,
/// not CPU time: the work runs on pool threads, and the speedup of
/// interest is wall-clock. On a single-core host all thread counts
/// degenerate to the sequential rate.
void BM_TestbedTrials(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const testbed::ParallelRunner runner(threads);
  constexpr int kTrials = 8;
  for (auto _ : state) {
    const Status status = runner.RunTrials(
        kTrials, /*sweep_seed=*/42,
        [](const testbed::TrialContext& ctx) -> Status {
          auto tb = testbed::Testbed::Create(SmallParams(ctx.seed));
          SENSJOIN_RETURN_IF_ERROR(tb.status());
          auto q = (*tb)->ParseQuery(kTrialQuery);
          SENSJOIN_RETURN_IF_ERROR(q.status());
          auto report = (*tb)->MakeSensJoin().Execute(*q, /*epoch=*/0);
          SENSJOIN_RETURN_IF_ERROR(report.status());
          benchmark::DoNotOptimize(report->cost.join_packets);
          return Status::Ok();
        });
    SENSJOIN_CHECK(status.ok()) << status;
  }
  state.SetItemsProcessed(state.iterations() * kTrials);
}
BENCHMARK(BM_TestbedTrials)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- Memory-layout microbenches -------------------------------------------
//
// The two layout decisions behind the 100k+ node scaling work, measured in
// isolation: pooled arena slots vs per-delivery heap allocation, and
// struct-of-arrays vs array-of-structs for the per-node hot state.

/// A delivery slot as the simulator sees it: a Message plus its scheduling
/// metadata. Heavy enough (std::any, tag) that per-delivery malloc shows.
struct DeliverySlot {
  sim::Message msg;
  sim::SimTime deliver_at = 0.0;
  uint32_t fragments = 0;
};

/// Steady-state delivery churn with one heap allocation per delivery — the
/// layout before the arena: ~kInFlight slots live at any moment, every
/// delivery a fresh new/delete pair.
void BM_DeliverySlotsHeap(benchmark::State& state) {
  constexpr int kInFlight = 256;
  std::vector<DeliverySlot*> live;
  live.reserve(kInFlight);
  uint64_t deliveries = 0;
  for (auto _ : state) {
    for (int i = 0; i < kInFlight; ++i) {
      auto* slot = new DeliverySlot();
      slot->msg.src = i;
      slot->msg.payload_bytes = 48;
      live.push_back(slot);
    }
    for (DeliverySlot* slot : live) {
      deliveries += slot->msg.payload_bytes;
      delete slot;
    }
    live.clear();
  }
  benchmark::DoNotOptimize(deliveries);
  state.SetItemsProcessed(state.iterations() * kInFlight);
}
BENCHMARK(BM_DeliverySlotsHeap);

/// The same churn through an ArenaPool: after the first wave every Create
/// is a free-list pop, so the steady state touches the allocator never.
void BM_DeliverySlotsArena(benchmark::State& state) {
  constexpr int kInFlight = 256;
  sim::Arena arena;
  sim::ArenaPool<DeliverySlot> pool(&arena);
  std::vector<DeliverySlot*> live;
  live.reserve(kInFlight);
  uint64_t deliveries = 0;
  for (auto _ : state) {
    for (int i = 0; i < kInFlight; ++i) {
      DeliverySlot* slot = pool.Create();
      slot->msg.src = i;
      slot->msg.payload_bytes = 48;
      live.push_back(slot);
    }
    for (DeliverySlot* slot : live) {
      deliveries += slot->msg.payload_bytes;
      pool.Destroy(slot);
    }
    live.clear();
  }
  benchmark::DoNotOptimize(deliveries);
  state.SetItemsProcessed(state.iterations() * kInFlight);
}
BENCHMARK(BM_DeliverySlotsArena);

/// Array-of-structs per-node state: the pre-SoA layout, where bumping one
/// hot counter drags the node's whole NodeStats (plus liveness flag)
/// through the cache.
struct NodeAoS {
  bool alive = true;
  sim::NodeStats stats;
};

void BM_NodeStateAoS(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<NodeAoS> nodes(static_cast<size_t>(n));
  uint64_t alive_seen = 0;
  for (auto _ : state) {
    // The simulator's hot loop shape at scale: scan every node's liveness,
    // but only a sparse subset is transmitting this instant. In AoS the
    // flags sit one per ~200-byte struct, so the scan walks the whole
    // state through the cache.
    for (int i = 0; i < n; ++i) {
      NodeAoS& node = nodes[static_cast<size_t>(i)];
      if (!node.alive) continue;
      ++alive_seen;
      if ((i & 15) == 0) {
        ++node.stats.packets_sent;
        node.stats.bytes_sent += 48;
      }
    }
  }
  benchmark::DoNotOptimize(alive_seen);
  benchmark::DoNotOptimize(nodes.data());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NodeStateAoS)->Arg(4096)->Arg(65536);

/// Struct-of-arrays per-node state: liveness packed one byte per node,
/// stats in their own array — the Simulator's current layout. The liveness
/// scan walks contiguous bytes and only the transmitting nodes' stats
/// lines load.
void BM_NodeStateSoA(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<uint8_t> alive(static_cast<size_t>(n), 1);
  std::vector<sim::NodeStats> stats(static_cast<size_t>(n));
  uint64_t alive_seen = 0;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      if (!alive[static_cast<size_t>(i)]) continue;
      ++alive_seen;
      if ((i & 15) == 0) {
        ++stats[static_cast<size_t>(i)].packets_sent;
        stats[static_cast<size_t>(i)].bytes_sent += 48;
      }
    }
  }
  benchmark::DoNotOptimize(alive_seen);
  benchmark::DoNotOptimize(stats.data());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NodeStateSoA)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace sensjoin

// main() comes from benchmark::benchmark_main.
