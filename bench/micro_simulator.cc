// Microbenchmarks (google-benchmark) for the simulator hot paths and the
// parallel experiment engine: event-queue throughput (events/sec), radio
// fragmentation throughput (fragments/sec), and whole experiment trials
// per second at 1..N worker threads. The trials series feeds the tracked
// BENCH_runtime.json baseline; scripts/check_bench_speedup.py compares
// the 1-thread and 4-thread rates on multi-core runners.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sensjoin/sensjoin.h"

namespace sensjoin {
namespace {

constexpr const char* kTrialQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 200 ONCE";

testbed::TestbedParams SmallParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 120;
  params.placement.area_width_m = 300;
  params.placement.area_height_m = 300;
  params.seed = seed;
  return params;
}

/// Schedule-then-drain throughput of the slot-pooled event queue.
void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    uint64_t fired = 0;
    for (int i = 0; i < n; ++i) {
      q.ScheduleAt(static_cast<sim::SimTime>(i) * 1e-4,
                   [&fired] { ++fired; });
    }
    while (q.RunOne()) {
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

/// Same with half the events canceled: exercises the generation check and
/// the free-list recycling that replaced the id->callback hash map.
void BM_EventQueueCancelHalf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<sim::EventId> ids(static_cast<size_t>(n));
  for (auto _ : state) {
    sim::EventQueue q;
    uint64_t fired = 0;
    for (int i = 0; i < n; ++i) {
      ids[i] = q.ScheduleAt(static_cast<sim::SimTime>(i) * 1e-4,
                            [&fired] { ++fired; });
    }
    for (int i = 0; i < n; i += 2) q.Cancel(ids[i]);
    while (q.RunOne()) {
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHalf)->Arg(1024)->Arg(16384);

/// ARQ-style timer churn: every event cancels its own timeout and arms the
/// next one, so one pool slot is recycled over and over.
void BM_EventQueueSlotRecycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      const sim::EventId timeout = q.ScheduleAt(
          static_cast<sim::SimTime>(i) * 1e-4 + 1.0, [] {});
      q.ScheduleAt(static_cast<sim::SimTime>(i) * 1e-4,
                   [&q, timeout] { q.Cancel(timeout); });
    }
    while (q.RunOne()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueSlotRecycle)->Arg(1024)->Arg(16384);

/// Link-layer fragmentation throughput: one-hop unicasts of a multi-
/// fragment payload between a tree node and its parent, event deliveries
/// drained inline. Reported rate is fragments (link packets) per second.
void BM_SimulatorUnicastFragments(benchmark::State& state) {
  auto tb = testbed::Testbed::Create(SmallParams(11));
  SENSJOIN_CHECK(tb.ok()) << tb.status();
  sim::Simulator& sim = (*tb)->simulator();
  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId src = sim::kInvalidNode;
  for (int i = 0; i < sim.num_nodes(); ++i) {
    if (i != tree.root() && tree.InTree(i)) {
      src = i;
      break;
    }
  }
  SENSJOIN_CHECK(src != sim::kInvalidNode);
  const sim::NodeId dst = tree.parent(src);
  constexpr size_t kPayloadBytes = 200;
  const int fragments =
      sim::NumFragments(kPayloadBytes, sim.packet_params());
  uint64_t received = 0;
  auto previous = sim.SetReceiveHandler(
      [&received](sim::NodeId, const sim::Message&) { ++received; });
  for (auto _ : state) {
    sim::Message msg;
    msg.src = src;
    msg.dst = dst;
    msg.kind = sim::MessageKind::kAppData;
    msg.payload_bytes = kPayloadBytes;
    benchmark::DoNotOptimize(sim.SendUnicast(std::move(msg)));
    while (sim.events().RunOne()) {
    }
  }
  sim.SetReceiveHandler(std::move(previous));
  benchmark::DoNotOptimize(received);
  state.SetItemsProcessed(state.iterations() * fragments);
}
BENCHMARK(BM_SimulatorUnicastFragments);

/// Whole experiment trials (testbed build + SENS-Join execution) per
/// second through the ParallelRunner at a fixed thread count. Real time,
/// not CPU time: the work runs on pool threads, and the speedup of
/// interest is wall-clock. On a single-core host all thread counts
/// degenerate to the sequential rate.
void BM_TestbedTrials(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const testbed::ParallelRunner runner(threads);
  constexpr int kTrials = 8;
  for (auto _ : state) {
    const Status status = runner.RunTrials(
        kTrials, /*sweep_seed=*/42,
        [](const testbed::TrialContext& ctx) -> Status {
          auto tb = testbed::Testbed::Create(SmallParams(ctx.seed));
          SENSJOIN_RETURN_IF_ERROR(tb.status());
          auto q = (*tb)->ParseQuery(kTrialQuery);
          SENSJOIN_RETURN_IF_ERROR(q.status());
          auto report = (*tb)->MakeSensJoin().Execute(*q, /*epoch=*/0);
          SENSJOIN_RETURN_IF_ERROR(report.status());
          benchmark::DoNotOptimize(report->cost.join_packets);
          return Status::Ok();
        });
    SENSJOIN_CHECK(status.ok()) << status;
  }
  state.SetItemsProcessed(state.iterations() * kTrials);
}
BENCHMARK(BM_TestbedTrials)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sensjoin

// main() comes from benchmark::benchmark_main.
