// Reproduces Fig. 14: influence of the network size (1000-2500 nodes,
// constant density), 33% join-attribute ratio, 5% result fraction.
// Expected shape: relative savings roughly constant, growing slightly
// (superlinearly) with the size of the network.
//
// Each network size already built its own testbed, so the sweep maps
// directly onto ParallelRunner trials; rows are collected in trial order,
// keeping the table byte-identical to a sequential run.

#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "sensjoin/sim/parallel_engine.h"
#include "sensjoin/testbed/chaos.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Fig. 14 -- influence of the network size "
               "(constant density, 5% fraction, 33% ratio), seed "
            << seed << "\n\n";
  const std::vector<int> kSizes = {1000, 1500, 2000, 2500};
  auto rows = runner.Run(
      static_cast<int>(kSizes.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        const int n = kSizes[ctx.trial];
        auto tb = MustCreateTestbed(PaperDefaultParams(seed, n));
        const Calibration cal = CalibrateFraction(
            *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0,
            25.0, 0.05, /*increasing=*/false);
        auto q = tb->ParseQuery(cal.sql);
        SENSJOIN_CHECK(q.ok());
        auto ext = tb->MakeExternalJoin().Execute(*q, 0);
        auto sens = tb->MakeSensJoin().Execute(*q, 0);
        SENSJOIN_CHECK(ext.ok() && sens.ok());
        return std::vector<std::string>{
            Fmt(static_cast<uint64_t>(n)),
            Fmt(tb->params().placement.area_width_m, 0),
            Fmt(static_cast<uint64_t>(tb->tree().max_depth())),
            Fmt(ext->cost.join_packets), Fmt(sens->cost.join_packets),
            Savings(sens->cost.join_packets, ext->cost.join_packets)};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"nodes", "area (m)", "tree depth", "external pkts",
                      "sens pkts", "savings"});
  for (std::vector<std::string>& row : *rows) table.AddRow(std::move(row));
  table.Print(std::cout);
}

// --- The --scale sweep ----------------------------------------------------
//
// Not a paper figure: a single-topology scaling proof for the windowed
// engine and the compact memory layout. One trial per (size, engine) with
// a FIXED query (no calibration — its binary search would dominate the
// wall-clock), sizes ascending so the monotone ru_maxrss reading after
// each run is that run's peak. The sequential and windowed executions of
// a size must agree on the full ExecutionFingerprint (costs, counters and
// certificate compared as bit patterns); the sweep aborts on divergence.

struct ScaleRow {
  int nodes = 0;
  const char* engine = nullptr;
  int workers = 0;
  double build_s = 0.0;
  double exec_s = 0.0;
  uint64_t events = 0;
  double events_per_sec = 0.0;
  long maxrss_kb = 0;
  uint64_t parallel_windows = 0;
  std::string fingerprint;
};

long MaxRssKb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

ScaleRow RunScaleTrial(uint64_t seed, int n, sim::EngineKind kind) {
  testbed::TestbedParams params = PaperDefaultParams(seed, n);
  params.sim.engine.kind = kind;
  params.sim.engine.workers = 0;  // auto: one per hardware thread

  const auto t0 = std::chrono::steady_clock::now();
  auto tb = MustCreateTestbed(params);
  const auto t1 = std::chrono::steady_clock::now();

  // The paper's quantizer pins temp to [0, 50] (Sec. V-B); past ~20k nodes
  // the field's gradient span (0.004/m over an area side that grows with
  // sqrt(n)) escapes that range, readings clamp into the +-infinity
  // boundary cells, and the conservative filter join must keep every cell
  // — the base station then joins all n candidate tuples, an O(n^2) CPU
  // cost unrelated to the machinery under test. Widen the quantizer to
  // cover the field at any size (gradient along a random direction over
  // the diagonal, plus every bump stacked, plus noise slack), then make
  // the join delta the full quantizer width: no in-range cell pair can
  // satisfy `A.temp - B.temp > delta`, the filter is provably empty, and
  // phase 3 ships nothing. The sweep measures the protocol simulation —
  // collection, treecut, filter dissemination — not join-result
  // materialization.
  const double span = 0.004 * std::hypot(params.placement.area_width_m,
                                         params.placement.area_height_m) +
                      45.0;
  tb->mutable_quantization().by_attr["temp"] = {20.0 - span, 20.0 + span,
                                                0.1};
  const double delta = 2.0 * span;
  auto q = tb->ParseQuery(RatioQueryOneJoinAttr(3, delta));
  SENSJOIN_CHECK(q.ok()) << q.status();
  const uint64_t events_before = tb->simulator().events().total_fired();
  const auto t2 = std::chrono::steady_clock::now();
  auto report = tb->MakeSensJoin().Execute(*q, 0);
  const auto t3 = std::chrono::steady_clock::now();
  SENSJOIN_CHECK(report.ok()) << report.status();

  ScaleRow row;
  row.nodes = n;
  row.engine = sim::EngineKindName(kind);
  row.workers = tb->simulator().engine().resolved_workers();
  row.build_s = std::chrono::duration<double>(t1 - t0).count();
  row.exec_s = std::chrono::duration<double>(t3 - t2).count();
  row.events = tb->simulator().events().total_fired() - events_before;
  row.events_per_sec =
      row.exec_s > 0 ? static_cast<double>(row.events) / row.exec_s : 0.0;
  row.maxrss_kb = MaxRssKb();
  row.parallel_windows = tb->simulator().engine().parallel_windows();
  row.fingerprint = testbed::ExecutionFingerprint(*report);
  return row;
}

void ScaleMain(uint64_t seed, const std::vector<int>& sizes,
               const std::string& json_path) {
  std::cout << "Scale sweep -- one topology per size, sequential vs "
               "windowed engine, seed "
            << seed << "\n\n";
  TablePrinter table({"nodes", "engine", "workers", "build (s)", "exec (s)",
                      "events", "events/s", "par windows", "maxrss (MB)"});
  std::vector<std::pair<ScaleRow, ScaleRow>> rows;
  for (int n : sizes) {
    ScaleRow seq = RunScaleTrial(seed, n, sim::EngineKind::kSequential);
    ScaleRow win = RunScaleTrial(seed, n, sim::EngineKind::kWindowed);
    SENSJOIN_CHECK(seq.fingerprint == win.fingerprint)
        << "engine divergence at " << n << " nodes";
    for (const ScaleRow* row : {&seq, &win}) {
      table.AddRow({Fmt(static_cast<uint64_t>(row->nodes)), row->engine,
                    Fmt(static_cast<uint64_t>(row->workers)),
                    Fmt(row->build_s), Fmt(row->exec_s), Fmt(row->events),
                    Fmt(row->events_per_sec, 0),
                    Fmt(row->parallel_windows),
                    Fmt(static_cast<double>(row->maxrss_kb) / 1024.0, 1)});
    }
    rows.emplace_back(std::move(seq), std::move(win));
  }
  table.Print(std::cout);

  if (json_path.empty()) return;
  std::ofstream out(json_path);
  SENSJOIN_CHECK(out.good()) << "cannot write " << json_path;
  out << "{\n  \"seed\": " << seed << ",\n  \"sizes\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& [seq, win] = rows[i];
    const auto emit = [&](const char* key, const ScaleRow& row) {
      out << "      \"" << key << "\": {\"build_s\": " << row.build_s
          << ", \"exec_s\": " << row.exec_s << ", \"events\": " << row.events
          << ", \"events_per_sec\": " << row.events_per_sec
          << ", \"maxrss_kb\": " << row.maxrss_kb
          << ", \"workers\": " << row.workers
          << ", \"parallel_windows\": " << row.parallel_windows << "}";
    };
    out << "    {\n      \"nodes\": " << seq.nodes << ",\n";
    emit("sequential", seq);
    out << ",\n";
    emit("windowed", win);
    out << ",\n      \"fingerprint_match\": true\n    }"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << json_path << "\n";
}

/// Parses --scale / --scale-sizes=a,b,c / --scale-json=PATH, compacting
/// argv like the other flag parsers. Returns true when --scale was given.
bool ParseScaleFlags(int* argc, char** argv, std::vector<int>* sizes,
                     std::string* json_path) {
  bool enabled = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--scale") == 0) {
      enabled = true;
      continue;
    }
    if (std::strncmp(arg, "--scale-sizes=", 14) == 0) {
      sizes->clear();
      const char* p = arg + 14;
      while (*p != '\0') {
        char* end = nullptr;
        const long n = std::strtol(p, &end, 10);
        SENSJOIN_CHECK(end != p && n > 0) << "bad --scale-sizes: " << arg;
        sizes->push_back(static_cast<int>(n));
        p = *end == ',' ? end + 1 : end;
      }
      continue;
    }
    if (std::strncmp(arg, "--scale-json=", 13) == 0) {
      *json_path = arg + 13;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;
  return enabled;
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  std::vector<int> scale_sizes = {5000, 15000, 50000, 150000};
  std::string scale_json;
  const bool scale =
      sensjoin::bench::ParseScaleFlags(&argc, argv, &scale_sizes, &scale_json);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (scale) {
    sensjoin::bench::ScaleMain(seed, scale_sizes, scale_json);
    return 0;
  }
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
