// Reproduces Fig. 14: influence of the network size (1000-2500 nodes,
// constant density), 33% join-attribute ratio, 5% result fraction.
// Expected shape: relative savings roughly constant, growing slightly
// (superlinearly) with the size of the network.
//
// Each network size already built its own testbed, so the sweep maps
// directly onto ParallelRunner trials; rows are collected in trial order,
// keeping the table byte-identical to a sequential run.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Fig. 14 -- influence of the network size "
               "(constant density, 5% fraction, 33% ratio), seed "
            << seed << "\n\n";
  const std::vector<int> kSizes = {1000, 1500, 2000, 2500};
  auto rows = runner.Run(
      static_cast<int>(kSizes.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        const int n = kSizes[ctx.trial];
        auto tb = MustCreateTestbed(PaperDefaultParams(seed, n));
        const Calibration cal = CalibrateFraction(
            *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0,
            25.0, 0.05, /*increasing=*/false);
        auto q = tb->ParseQuery(cal.sql);
        SENSJOIN_CHECK(q.ok());
        auto ext = tb->MakeExternalJoin().Execute(*q, 0);
        auto sens = tb->MakeSensJoin().Execute(*q, 0);
        SENSJOIN_CHECK(ext.ok() && sens.ok());
        return std::vector<std::string>{
            Fmt(static_cast<uint64_t>(n)),
            Fmt(tb->params().placement.area_width_m, 0),
            Fmt(static_cast<uint64_t>(tb->tree().max_depth())),
            Fmt(ext->cost.join_packets), Fmt(sens->cost.join_packets),
            Savings(sens->cost.join_packets, ext->cost.join_packets)};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"nodes", "area (m)", "tree depth", "external pkts",
                      "sens pkts", "savings"});
  for (std::vector<std::string>& row : *rows) table.AddRow(std::move(row));
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
