// Reproduces the Sec. VI-A "Packet size" discussion (no figure in the
// paper): with 124-byte packets the external join profits more in overall
// packet counts (it ships much more data per packet), but SENS-Join still
// reduces the load of the nodes close to the root by about an order of
// magnitude.
//
// The two packet sizes run as ParallelRunner trials (each already built
// its own testbed); rows come back in trial order, byte-identical to a
// sequential run.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Sec. VI-A -- influence of the maximum packet size "
               "(33% ratio, 5% fraction), seed "
            << seed << "\n\n";
  const std::vector<int> kPacketBytes = {48, 124};
  auto rows = runner.Run(
      static_cast<int>(kPacketBytes.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        const int packet_bytes = kPacketBytes[ctx.trial];
        testbed::TestbedParams params = PaperDefaultParams(seed);
        params.packets.max_packet_bytes = packet_bytes;
        auto tb = MustCreateTestbed(params);
        const Calibration cal = CalibrateFraction(
            *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0,
            25.0, 0.05, /*increasing=*/false);
        auto q = tb->ParseQuery(cal.sql);
        SENSJOIN_CHECK(q.ok());
        auto ext = tb->MakeExternalJoin().Execute(*q, 0);
        auto sens = tb->MakeSensJoin().Execute(*q, 0);
        SENSJOIN_CHECK(ext.ok() && sens.ok());
        return std::vector<std::string>{
            Fmt(static_cast<uint64_t>(packet_bytes)) + " B",
            Fmt(ext->cost.join_packets), Fmt(sens->cost.join_packets),
            Savings(sens->cost.join_packets, ext->cost.join_packets),
            Fmt(ext->cost.max_node_packets()),
            Fmt(sens->cost.max_node_packets()),
            Fmt(static_cast<double>(ext->cost.max_node_packets()) /
                    std::max<uint64_t>(1, sens->cost.max_node_packets()),
                1) +
                "x"};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"packet size", "external pkts", "sens pkts",
                      "overall savings", "external max node", "sens max node",
                      "max-node reduction"});
  for (std::vector<std::string>& row : *rows) table.AddRow(std::move(row));
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
