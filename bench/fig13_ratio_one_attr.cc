// Reproduces Fig. 13: influence of the ratio (1 join attribute) /
// (x attributes overall) for x in {1..5}, at a fixed 5% result fraction.
// Expected shape: savings increase with the number of non-join attributes.
//
// The per-x executions are independent, so they run as ParallelRunner
// trials: each trial builds its own Testbed from the bench seed and the
// rows are collected in trial order, keeping the table byte-identical to
// a sequential run at any --threads value.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

struct Row {
  uint64_t ext_packets = 0;
  uint64_t sens_packets = 0;
};

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Fig. 13 -- ratio 1 join attr / x attrs overall "
               "(5% fraction), seed "
            << seed << "\n\n";

  const Calibration cal = CalibrateFraction(
      *tb, [](double d) { return RatioQueryOneJoinAttr(1, d); }, 0.0, 25.0,
      0.05, /*increasing=*/false, /*epoch=*/0, /*iterations=*/22, &runner);

  const std::vector<int> kAttrs = {1, 2, 3, 4, 5};
  auto rows = runner.Run(
      static_cast<int>(kAttrs.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        const int attrs_overall = kAttrs[ctx.trial];
        auto trial_tb = MustCreateTestbed(PaperDefaultParams(seed));
        const std::string sql = RatioQueryOneJoinAttr(attrs_overall, cal.param);
        auto q = trial_tb->ParseQuery(sql);
        SENSJOIN_CHECK(q.ok()) << q.status();
        auto ext = trial_tb->MakeExternalJoin().Execute(*q, 0);
        auto sens = trial_tb->MakeSensJoin().Execute(*q, 0);
        SENSJOIN_CHECK(ext.ok() && sens.ok());
        return Row{ext->cost.join_packets, sens->cost.join_packets};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"ratio", "attrs overall", "external pkts", "sens pkts",
                      "savings"});
  for (size_t i = 0; i < kAttrs.size(); ++i) {
    const int attrs_overall = kAttrs[i];
    const Row& r = (*rows)[i];
    table.AddRow({Percent(1.0, attrs_overall),
                  Fmt(static_cast<uint64_t>(attrs_overall)),
                  Fmt(r.ext_packets), Fmt(r.sens_packets),
                  Savings(r.sens_packets, r.ext_packets)});
  }
  table.Print(std::cout);
  std::cout << "(achieved result fraction " << Percent(cal.fraction, 1.0)
            << ")\n";
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
