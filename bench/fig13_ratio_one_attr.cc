// Reproduces Fig. 13: influence of the ratio (1 join attribute) /
// (x attributes overall) for x in {1..5}, at a fixed 5% result fraction.
// Expected shape: savings increase with the number of non-join attributes.

#include <cstdlib>
#include <iostream>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed) {
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Fig. 13 -- ratio 1 join attr / x attrs overall "
               "(5% fraction), seed "
            << seed << "\n\n";

  const Calibration cal = CalibrateFraction(
      *tb, [](double d) { return RatioQueryOneJoinAttr(1, d); }, 0.0, 25.0,
      0.05, /*increasing=*/false);

  TablePrinter table({"ratio", "attrs overall", "external pkts", "sens pkts",
                      "savings"});
  for (int attrs_overall : {1, 2, 3, 4, 5}) {
    const std::string sql = RatioQueryOneJoinAttr(attrs_overall, cal.param);
    auto q = tb->ParseQuery(sql);
    SENSJOIN_CHECK(q.ok()) << q.status();
    auto ext = tb->MakeExternalJoin().Execute(*q, 0);
    auto sens = tb->MakeSensJoin().Execute(*q, 0);
    SENSJOIN_CHECK(ext.ok() && sens.ok());
    table.AddRow({Percent(1.0, attrs_overall),
                  Fmt(static_cast<uint64_t>(attrs_overall)),
                  Fmt(ext->cost.join_packets), Fmt(sens->cost.join_packets),
                  Savings(sens->cost.join_packets, ext->cost.join_packets)});
  }
  table.Print(std::cout);
  std::cout << "(achieved result fraction " << Percent(cal.fraction, 1.0)
            << ")\n";
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sensjoin::bench::Main(seed);
  return 0;
}
