// Microbenchmarks (google-benchmark) for the observability tracer: the
// unicast hot path with no tracer attached, with a disabled tracer, and
// with an enabled one, plus raw TraceBuffer append throughput. The first
// two series feed the tracked BENCH_runtime.json baseline;
// scripts/check_bench_speedup.py asserts that an attached-but-disabled
// tracer stays within a few percent of the no-tracer rate (the tentpole's
// "disabled tracing is one branch" claim).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>

#include "sensjoin/sensjoin.h"

namespace sensjoin {
namespace {

/// Unicasts per second between one tree node and its parent, with the
/// tracer in the given mode. Payload spans several fragments so the traced
/// path records a realistic event mix (tx, rx, histogram feeds).
enum class TracerMode { kNone, kDisabled, kEnabled };

testbed::TestbedParams SmallParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 120;
  params.placement.area_width_m = 300;
  params.placement.area_height_m = 300;
  params.seed = seed;
  return params;
}

void RunUnicastBench(benchmark::State& state, TracerMode mode) {
  auto tb = testbed::Testbed::Create(SmallParams(11));
  SENSJOIN_CHECK(tb.ok()) << tb.status();
  sim::Simulator& sim = (*tb)->simulator();
  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId src = sim::kInvalidNode;
  for (int i = 0; i < sim.num_nodes(); ++i) {
    if (i != tree.root() && tree.InTree(i)) {
      src = i;
      break;
    }
  }
  SENSJOIN_CHECK(src != sim::kInvalidNode);
  const sim::NodeId dst = tree.parent(src);
  constexpr size_t kPayloadBytes = 200;

  obs::Tracer tracer;
  if (mode != TracerMode::kNone) {
    tracer.set_enabled(mode == TracerMode::kEnabled);
    (*tb)->AttachTracer(&tracer);
  }

  for (auto _ : state) {
    sim::Message msg;
    msg.src = src;
    msg.dst = dst;
    msg.kind = sim::MessageKind::kAppData;
    msg.payload_bytes = kPayloadBytes;
    benchmark::DoNotOptimize(sim.SendUnicast(std::move(msg)));
    while (sim.events().RunOne()) {
    }
    // Keep the enabled series measuring append cost, not ring-wrap cost.
    if (mode == TracerMode::kEnabled &&
        tracer.buffer().size() + 16 >= tracer.buffer().capacity()) {
      state.PauseTiming();
      tracer.Clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_UnicastNoTracer(benchmark::State& state) {
  RunUnicastBench(state, TracerMode::kNone);
}
BENCHMARK(BM_UnicastNoTracer);

void BM_UnicastTracerDisabled(benchmark::State& state) {
  RunUnicastBench(state, TracerMode::kDisabled);
}
BENCHMARK(BM_UnicastTracerDisabled);

void BM_UnicastTracerEnabled(benchmark::State& state) {
  RunUnicastBench(state, TracerMode::kEnabled);
}
BENCHMARK(BM_UnicastTracerEnabled);

/// Raw append throughput of the chunked ring buffer, past the wrap point.
void BM_TraceBufferAppend(benchmark::State& state) {
  obs::TraceBuffer buffer(/*capacity=*/1 << 16);
  obs::TraceEvent event;
  event.kind = obs::EventKind::kFragTx;
  event.msg_kind = sim::MessageKind::kAppData;
  event.count = 3;
  event.bytes = 144;
  event.energy_mj = 1.5;
  for (auto _ : state) {
    event.time += 0.001;
    buffer.Append(event);
    benchmark::DoNotOptimize(buffer.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceBufferAppend);

}  // namespace
}  // namespace sensjoin

// main() comes from benchmark::benchmark_main.
