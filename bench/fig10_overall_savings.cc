// Reproduces Fig. 10: overall transmissions of the external join vs
// SENS-Join as a function of the fraction of nodes contributing to the
// result, for the 33% (a) and 60% (b) join-attribute ratios. Expected
// shape: SENS-Join wins below a crossover fraction in the 60-80% region,
// with the largest savings at low fractions and at the smaller ratio.
//
// Every target fraction is an independent (calibrate, execute) unit, so
// the seven targets of each panel run as ParallelRunner trials on
// per-trial testbeds. Calibration is deterministic in the seed, so the
// rows are byte-identical to a sequential run at any --threads value.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

const std::vector<double> kTargets = {0.02, 0.05, 0.10, 0.20,
                                      0.40, 0.60, 0.80};

struct Row {
  double achieved = 0.0;
  uint64_t ext_packets = 0;
  uint64_t sens_packets = 0;
  uint64_t collection = 0;
  uint64_t filter = 0;
  uint64_t final_pkts = 0;
};

void RunPanel(uint64_t seed, const testbed::ParallelRunner& runner,
              const char* title, bool one_join_attr) {
  std::cout << "\n" << title << "\n";
  auto rows = runner.Run(
      static_cast<int>(kTargets.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        const double target = kTargets[ctx.trial];
        auto tb = MustCreateTestbed(PaperDefaultParams(seed));
        Calibration cal;
        if (one_join_attr) {
          cal = CalibrateFraction(
              *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); },
              /*lo=*/0.0, /*hi=*/25.0, target, /*increasing=*/false);
        } else {
          cal = CalibrateFraction(
              *tb, [](double d) { return RatioQueryThreeJoinAttrs(5, d); },
              /*lo=*/0.0, /*hi=*/1500.0, target, /*increasing=*/false);
        }
        auto q = tb->ParseQuery(cal.sql);
        SENSJOIN_CHECK(q.ok()) << q.status();
        auto ext = tb->MakeExternalJoin().Execute(*q, 0);
        auto sens = tb->MakeSensJoin().Execute(*q, 0);
        SENSJOIN_CHECK(ext.ok() && sens.ok());
        return Row{cal.fraction, ext->cost.join_packets,
                   sens->cost.join_packets,
                   sens->cost.phases.collection_packets,
                   sens->cost.phases.filter_packets,
                   sens->cost.phases.final_packets};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"target", "achieved", "external pkts", "sens pkts",
                      "collection", "filter", "final", "savings"});
  for (size_t i = 0; i < kTargets.size(); ++i) {
    const Row& r = (*rows)[i];
    table.AddRow({Percent(kTargets[i], 1.0), Percent(r.achieved, 1.0),
                  Fmt(r.ext_packets), Fmt(r.sens_packets), Fmt(r.collection),
                  Fmt(r.filter), Fmt(r.final_pkts),
                  Savings(r.sens_packets, r.ext_packets)});
  }
  table.Print(std::cout);
}

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Fig. 10 -- overall savings of SENS-Join vs external join\n"
            << "network: 1500 nodes, 1050x1050 m, range 50 m, 48 B packets, "
               "seed "
            << seed << "\n";
  RunPanel(seed, runner, "(a) 33% join attributes (1 join attr of 3 queried)",
           /*one_join_attr=*/true);
  RunPanel(seed, runner, "(b) 60% join attributes (3 join attrs of 5 queried)",
           /*one_join_attr=*/false);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
