// Reproduces Fig. 10: overall transmissions of the external join vs
// SENS-Join as a function of the fraction of nodes contributing to the
// result, for the 33% (a) and 60% (b) join-attribute ratios. Expected
// shape: SENS-Join wins below a crossover fraction in the 60-80% region,
// with the largest savings at low fractions and at the smaller ratio.

#include <cstdlib>
#include <iostream>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void RunPanel(testbed::Testbed& tb, const char* title, bool one_join_attr) {
  std::cout << "\n" << title << "\n";
  TablePrinter table({"target", "achieved", "external pkts", "sens pkts",
                      "collection", "filter", "final", "savings"});
  for (double target : {0.02, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80}) {
    Calibration cal;
    if (one_join_attr) {
      cal = CalibrateFraction(
          tb, [](double d) { return RatioQueryOneJoinAttr(3, d); },
          /*lo=*/0.0, /*hi=*/25.0, target, /*increasing=*/false);
    } else {
      cal = CalibrateFraction(
          tb, [](double d) { return RatioQueryThreeJoinAttrs(5, d); },
          /*lo=*/0.0, /*hi=*/1500.0, target, /*increasing=*/false);
    }
    auto q = tb.ParseQuery(cal.sql);
    SENSJOIN_CHECK(q.ok()) << q.status();
    auto ext = tb.MakeExternalJoin().Execute(*q, 0);
    auto sens = tb.MakeSensJoin().Execute(*q, 0);
    SENSJOIN_CHECK(ext.ok() && sens.ok());
    table.AddRow({Percent(target, 1.0), Percent(cal.fraction, 1.0),
                  Fmt(ext->cost.join_packets), Fmt(sens->cost.join_packets),
                  Fmt(sens->cost.phases.collection_packets),
                  Fmt(sens->cost.phases.filter_packets),
                  Fmt(sens->cost.phases.final_packets),
                  Savings(sens->cost.join_packets, ext->cost.join_packets)});
  }
  table.Print(std::cout);
}

void Main(uint64_t seed) {
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Fig. 10 -- overall savings of SENS-Join vs external join\n"
            << "network: 1500 nodes, 1050x1050 m, range 50 m, 48 B packets, "
               "seed "
            << seed << "\n";
  RunPanel(*tb, "(a) 33% join attributes (1 join attr of 3 queried)",
           /*one_join_attr=*/true);
  RunPanel(*tb, "(b) 60% join attributes (3 join attrs of 5 queried)",
           /*one_join_attr=*/false);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sensjoin::bench::Main(seed);
  return 0;
}
