// Reproduces Fig. 11: per-node transmissions vs the number of descendants
// in the routing tree, at the default 5% result fraction. Expected shape:
// the most loaded (descendant-rich) nodes are unburdened by more than an
// order of magnitude at the 33% ratio and by >75% at the 60% ratio.
//
// The two panels are independent, so each runs as a ParallelRunner trial
// on its own testbed, rendering into a string that the main thread prints
// in panel order — byte-identical to a sequential run.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

struct Bucket {
  int lo;
  int hi;  // inclusive; -1 = unbounded
};

void RunPanel(testbed::Testbed& tb, const char* title, bool one_join_attr,
              std::ostream& os) {
  Calibration cal;
  if (one_join_attr) {
    cal = CalibrateFraction(
        tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0, 25.0,
        0.05, /*increasing=*/false);
  } else {
    cal = CalibrateFraction(
        tb, [](double d) { return RatioQueryThreeJoinAttrs(5, d); }, 0.0,
        1500.0, 0.05, /*increasing=*/false);
  }
  auto q = tb.ParseQuery(cal.sql);
  SENSJOIN_CHECK(q.ok());
  auto ext = tb.MakeExternalJoin().Execute(*q, 0);
  auto sens = tb.MakeSensJoin().Execute(*q, 0);
  SENSJOIN_CHECK(ext.ok() && sens.ok());

  os << "\n" << title << "  (achieved fraction "
     << Percent(cal.fraction, 1.0) << ")\n";
  TablePrinter table({"descendants", "nodes", "external avg", "sens avg",
                      "external max", "sens max", "reduction"});
  const std::vector<Bucket> buckets = {{0, 0},    {1, 3},    {4, 15},
                                       {16, 63},  {64, 255}, {256, -1}};
  const net::RoutingTree& tree = tb.tree();
  for (const Bucket& b : buckets) {
    uint64_t ext_sum = 0, sens_sum = 0, ext_max = 0, sens_max = 0;
    int count = 0;
    for (int i = 0; i < tb.simulator().num_nodes(); ++i) {
      if (i == tree.root() || !tree.InTree(i)) continue;
      const int descendants = tree.subtree_size(i) - 1;
      if (descendants < b.lo || (b.hi >= 0 && descendants > b.hi)) continue;
      ++count;
      ext_sum += ext->cost.per_node_packets[i];
      sens_sum += sens->cost.per_node_packets[i];
      ext_max = std::max(ext_max, ext->cost.per_node_packets[i]);
      sens_max = std::max(sens_max, sens->cost.per_node_packets[i]);
    }
    if (count == 0) continue;
    std::string label = std::to_string(b.lo) +
                        (b.hi < 0 ? "+"
                         : b.hi == b.lo ? ""
                                        : "-" + std::to_string(b.hi));
    table.AddRow({label, Fmt(static_cast<uint64_t>(count)),
                  Fmt(static_cast<double>(ext_sum) / count, 1),
                  Fmt(static_cast<double>(sens_sum) / count, 1), Fmt(ext_max),
                  Fmt(sens_max), Savings(sens_max, ext_max)});
  }
  table.Print(os);
  os << "most loaded node overall: external "
     << ext->cost.max_node_packets() << " pkts, SENS-Join "
     << sens->cost.max_node_packets() << " pkts ("
     << Fmt(static_cast<double>(ext->cost.max_node_packets()) /
                std::max<uint64_t>(1, sens->cost.max_node_packets()),
            1)
     << "x reduction)\n";
}

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Fig. 11 -- per-node savings of SENS-Join (5% fraction), seed "
            << seed << "\n";
  const struct {
    const char* title;
    bool one_join_attr;
  } panels[] = {
      {"(a) 33% join attributes", true},
      {"(b) 60% join attributes", false},
  };
  auto rendered = runner.Run(2, seed, [&](const testbed::TrialContext& ctx) {
    auto tb = MustCreateTestbed(PaperDefaultParams(seed));
    std::ostringstream os;
    RunPanel(*tb, panels[ctx.trial].title, panels[ctx.trial].one_join_attr,
             os);
    return os.str();
  });
  SENSJOIN_CHECK(rendered.ok()) << rendered.status();
  for (const std::string& panel : *rendered) std::cout << panel;
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
