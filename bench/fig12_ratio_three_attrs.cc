// Reproduces Fig. 12: influence of the ratio (3 join attributes) /
// (x attributes overall) for x in {3, 4, 5}, at a fixed 5% result
// fraction. Expected shape: savings grow as the ratio shrinks, and even
// the worst case of 100% join attributes still beats the external join
// (thanks to the quadtree representation).

#include <cstdlib>
#include <iostream>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed) {
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Fig. 12 -- ratio 3 join attrs / x attrs overall "
               "(5% fraction), seed "
            << seed << "\n\n";

  // Calibrate the join condition once; it does not depend on the number of
  // additionally queried attributes.
  const Calibration cal = CalibrateFraction(
      *tb, [](double d) { return RatioQueryThreeJoinAttrs(3, d); }, 0.0,
      1500.0, 0.05, /*increasing=*/false);

  TablePrinter table({"ratio", "attrs overall", "external pkts", "sens pkts",
                      "savings"});
  for (int attrs_overall : {3, 4, 5, 6}) {
    const std::string sql =
        RatioQueryThreeJoinAttrs(attrs_overall, cal.param);
    auto q = tb->ParseQuery(sql);
    SENSJOIN_CHECK(q.ok()) << q.status();
    auto ext = tb->MakeExternalJoin().Execute(*q, 0);
    auto sens = tb->MakeSensJoin().Execute(*q, 0);
    SENSJOIN_CHECK(ext.ok() && sens.ok());
    table.AddRow({Percent(3.0, attrs_overall),
                  Fmt(static_cast<uint64_t>(attrs_overall)),
                  Fmt(ext->cost.join_packets), Fmt(sens->cost.join_packets),
                  Savings(sens->cost.join_packets, ext->cost.join_packets)});
  }
  table.Print(std::cout);
  std::cout << "(achieved result fraction " << Percent(cal.fraction, 1.0)
            << ")\n";
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sensjoin::bench::Main(seed);
  return 0;
}
