// Reproduces Fig. 16: influence of the quadtree representation at a ~4%
// result fraction. Compares the external join, SENS-Join without the
// quadtree encoding (raw join-attribute tuples, "SENS_No-Quad") and full
// SENS-Join. Expected shape: the collection step alone is well below the
// external join even without the quadtree (only join attributes are sent),
// and the quadtree roughly halves the pre-computation data on top.
//
// The shared calibration runs once up front (its contributor scan chunked
// across the runner); the three variant executions then run as
// ParallelRunner trials on per-trial testbeds, byte-identical to a
// sequential run.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

struct Phases {
  uint64_t collection = 0;
  uint64_t filter = 0;
  uint64_t final_pkts = 0;
  uint64_t total = 0;
};

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Fig. 16 -- influence of the quadtree representation "
               "(~4% fraction), seed "
            << seed << "\n\n";

  const Calibration cal = CalibrateFraction(
      *tb, [](double d) { return RatioQueryThreeJoinAttrs(5, d); }, 0.0,
      1500.0, 0.04, /*increasing=*/false, /*epoch=*/0, /*iterations=*/22,
      &runner);

  // Trial 0: external join; 1: SENS without the quadtree; 2: full SENS.
  auto results = runner.Run(3, seed, [&](const testbed::TrialContext& ctx) {
    auto trial_tb = MustCreateTestbed(PaperDefaultParams(seed));
    auto q = trial_tb->ParseQuery(cal.sql);
    SENSJOIN_CHECK(q.ok());
    if (ctx.trial == 0) {
      auto ext = trial_tb->MakeExternalJoin().Execute(*q, 0);
      SENSJOIN_CHECK(ext.ok());
      return Phases{0, 0, 0, ext->cost.join_packets};
    }
    join::ProtocolConfig config;
    if (ctx.trial == 1) {
      config.representation = join::JoinAttrRepresentation::kRaw;
    }
    auto r = trial_tb->MakeSensJoin(config).Execute(*q, 0);
    SENSJOIN_CHECK(r.ok());
    return Phases{r->cost.phases.collection_packets,
                  r->cost.phases.filter_packets,
                  r->cost.phases.final_packets, r->cost.join_packets};
  });
  SENSJOIN_CHECK(results.ok()) << results.status();
  const Phases& ext = (*results)[0];
  const Phases& raw = (*results)[1];
  const Phases& sens = (*results)[2];

  TablePrinter table({"variant", "collection", "filter", "final", "total",
                      "vs external"});
  table.AddRow({"External Join", "-", "-", "-", Fmt(ext.total), "0.0%"});
  table.AddRow({"SENS_No-Quad (" + Percent(cal.fraction, 1.0) + ")",
                Fmt(raw.collection), Fmt(raw.filter), Fmt(raw.final_pkts),
                Fmt(raw.total), Savings(raw.total, ext.total)});
  table.AddRow({"SENS-Join (" + Percent(cal.fraction, 1.0) + ")",
                Fmt(sens.collection), Fmt(sens.filter), Fmt(sens.final_pkts),
                Fmt(sens.total), Savings(sens.total, ext.total)});
  table.Print(std::cout);

  std::cout << "\ncollection step vs external join: no-quad "
            << Savings(raw.collection, ext.total) << " fewer, quadtree "
            << Savings(sens.collection, ext.total) << " fewer\n";
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
