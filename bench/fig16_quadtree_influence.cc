// Reproduces Fig. 16: influence of the quadtree representation at a ~4%
// result fraction. Compares the external join, SENS-Join without the
// quadtree encoding (raw join-attribute tuples, "SENS_No-Quad") and full
// SENS-Join. Expected shape: the collection step alone is well below the
// external join even without the quadtree (only join attributes are sent),
// and the quadtree roughly halves the pre-computation data on top.

#include <cstdlib>
#include <iostream>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed) {
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Fig. 16 -- influence of the quadtree representation "
               "(~4% fraction), seed "
            << seed << "\n\n";

  const Calibration cal = CalibrateFraction(
      *tb, [](double d) { return RatioQueryThreeJoinAttrs(5, d); }, 0.0,
      1500.0, 0.04, /*increasing=*/false);
  auto q = tb->ParseQuery(cal.sql);
  SENSJOIN_CHECK(q.ok());

  TablePrinter table({"variant", "collection", "filter", "final", "total",
                      "vs external"});
  auto ext = tb->MakeExternalJoin().Execute(*q, 0);
  SENSJOIN_CHECK(ext.ok());
  table.AddRow({"External Join", "-", "-", "-", Fmt(ext->cost.join_packets),
                "0.0%"});

  join::ProtocolConfig no_quad;
  no_quad.representation = join::JoinAttrRepresentation::kRaw;
  auto raw = tb->MakeSensJoin(no_quad).Execute(*q, 0);
  SENSJOIN_CHECK(raw.ok());
  table.AddRow({"SENS_No-Quad (" + Percent(cal.fraction, 1.0) + ")",
                Fmt(raw->cost.phases.collection_packets),
                Fmt(raw->cost.phases.filter_packets),
                Fmt(raw->cost.phases.final_packets),
                Fmt(raw->cost.join_packets),
                Savings(raw->cost.join_packets, ext->cost.join_packets)});

  auto sens = tb->MakeSensJoin().Execute(*q, 0);
  SENSJOIN_CHECK(sens.ok());
  table.AddRow({"SENS-Join (" + Percent(cal.fraction, 1.0) + ")",
                Fmt(sens->cost.phases.collection_packets),
                Fmt(sens->cost.phases.filter_packets),
                Fmt(sens->cost.phases.final_packets),
                Fmt(sens->cost.join_packets),
                Savings(sens->cost.join_packets, ext->cost.join_packets)});
  table.Print(std::cout);

  std::cout << "\ncollection step vs external join: no-quad "
            << Savings(raw->cost.phases.collection_packets,
                       ext->cost.join_packets)
            << " fewer, quadtree "
            << Savings(sens->cost.phases.collection_packets,
                       ext->cost.join_packets)
            << " fewer\n";
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sensjoin::bench::Main(seed);
  return 0;
}
