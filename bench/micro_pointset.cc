// Microbenchmarks (google-benchmark) for the quadtree point-set codec and
// the Z-order transform: the per-node CPU work SENS-Join adds. Not a paper
// figure; included because the paper's feasibility argument rests on these
// primitives being cheap on node-class hardware.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "sensjoin/common/rng.h"
#include "sensjoin/join/point_set.h"
#include "sensjoin/join/zorder.h"

namespace sensjoin::join {
namespace {

std::shared_ptr<const PointSetLayout> BenchLayout() {
  // 1 relation flag + 3 dims of 11/11/9 bits: the Q2 join-attribute space.
  ZOrder z({11, 11, 9});
  return std::make_shared<const PointSetLayout>(1, z.level_widths());
}

/// Clustered keys emulating spatially correlated readings.
std::vector<uint64_t> ClusteredKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  auto layout = BenchLayout();
  std::vector<uint64_t> keys;
  keys.reserve(n);
  const int total = layout->total_key_bits();
  while (keys.size() < n) {
    const uint64_t center = rng.NextUint64() & ((1ull << (total - 1)) - 1);
    for (int i = 0; i < 16 && keys.size() < n; ++i) {
      const uint64_t jitter = rng.UniformInt(0, 255);
      keys.push_back((1ull << (total - 1)) | (center ^ jitter));
    }
  }
  return keys;
}

void BM_PointSetEncode(benchmark::State& state) {
  auto layout = BenchLayout();
  const PointSet set =
      PointSet::FromKeys(layout, ClusteredKeys(state.range(0), 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Encode().size_bits());
  }
  state.SetItemsProcessed(state.iterations() * set.size());
}
BENCHMARK(BM_PointSetEncode)->Arg(64)->Arg(512)->Arg(4096);

void BM_PointSetDecode(benchmark::State& state) {
  auto layout = BenchLayout();
  const PointSet set =
      PointSet::FromKeys(layout, ClusteredKeys(state.range(0), 2));
  const BitWriter encoded = set.Encode();
  for (auto _ : state) {
    auto decoded = PointSet::Decode(layout, encoded);
    benchmark::DoNotOptimize(decoded->size());
  }
  state.SetItemsProcessed(state.iterations() * set.size());
}
BENCHMARK(BM_PointSetDecode)->Arg(64)->Arg(512)->Arg(4096);

void BM_PointSetUnion(benchmark::State& state) {
  auto layout = BenchLayout();
  const PointSet a =
      PointSet::FromKeys(layout, ClusteredKeys(state.range(0), 3));
  const PointSet b =
      PointSet::FromKeys(layout, ClusteredKeys(state.range(0), 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PointSet::Union(a, b).size());
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_PointSetUnion)->Arg(64)->Arg(512)->Arg(4096);

void BM_PointSetIntersect(benchmark::State& state) {
  auto layout = BenchLayout();
  std::vector<uint64_t> keys = ClusteredKeys(2 * state.range(0), 5);
  const PointSet a = PointSet::FromKeys(
      layout, std::vector<uint64_t>(keys.begin(),
                                    keys.begin() + 3 * keys.size() / 4));
  const PointSet b = PointSet::FromKeys(
      layout,
      std::vector<uint64_t>(keys.begin() + keys.size() / 4, keys.end()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PointSet::Intersect(a, b).size());
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_PointSetIntersect)->Arg(64)->Arg(512)->Arg(4096);

void BM_PointSetInsertLoop(benchmark::State& state) {
  // Accumulating a subtree structure one key at a time: each Insert pays an
  // O(n) vector shift.
  auto layout = BenchLayout();
  const std::vector<uint64_t> keys = ClusteredKeys(state.range(0), 8);
  for (auto _ : state) {
    PointSet set(layout);
    for (uint64_t k : keys) set.Insert(k);
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_PointSetInsertLoop)->Arg(64)->Arg(512)->Arg(4096);

void BM_PointSetInsertAll(benchmark::State& state) {
  // The same accumulation as one sort-and-merge batch.
  auto layout = BenchLayout();
  const std::vector<uint64_t> keys = ClusteredKeys(state.range(0), 8);
  for (auto _ : state) {
    PointSet set(layout);
    std::vector<uint64_t> batch = keys;
    set.InsertAll(std::move(batch));
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_PointSetInsertAll)->Arg(64)->Arg(512)->Arg(4096);

void BM_PointSetEncodedBits(benchmark::State& state) {
  // Wire-size query after a mutation (the Treecut memory check does this per
  // node): exercises the size-only cost recursion, not the bit materializer.
  auto layout = BenchLayout();
  const PointSet set =
      PointSet::FromKeys(layout, ClusteredKeys(state.range(0), 9));
  const uint64_t probe = set.keys().front() ^ 1;
  for (auto _ : state) {
    PointSet s = set;
    s.Insert(probe);
    benchmark::DoNotOptimize(s.EncodedBits());
  }
  state.SetItemsProcessed(state.iterations() * set.size());
}
BENCHMARK(BM_PointSetEncodedBits)->Arg(64)->Arg(512)->Arg(4096);

void BM_ZOrderInterleave(benchmark::State& state) {
  ZOrder z({11, 11, 9});
  Rng rng(6);
  std::vector<std::vector<uint32_t>> coords;
  for (int i = 0; i < 1024; ++i) {
    coords.push_back({static_cast<uint32_t>(rng.UniformInt(0, 2047)),
                      static_cast<uint32_t>(rng.UniformInt(0, 2047)),
                      static_cast<uint32_t>(rng.UniformInt(0, 511))});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.Interleave(coords[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZOrderInterleave);

void BM_EncodedSizeVsRaw(benchmark::State& state) {
  // Tracks the compression ratio as a reported counter.
  auto layout = BenchLayout();
  const PointSet set =
      PointSet::FromKeys(layout, ClusteredKeys(state.range(0), 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.EncodedBits());
  }
  state.counters["ratio"] =
      static_cast<double>(set.Encode().size_bits()) /
      static_cast<double>(set.size() * layout->total_key_bits());
}
BENCHMARK(BM_EncodedSizeVsRaw)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace
}  // namespace sensjoin::join

// main() comes from benchmark::benchmark_main.
