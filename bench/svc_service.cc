// Continuous multi-query join service benchmark (extension; Sec. VIII
// follow-on work). Two experiments on one deployment:
//
//  1. Collection savings: a single continuous query served by the delta
//     engine vs independent snapshot executions of the same query, per
//     epoch. Steady-state delta collection should cost well under half the
//     snapshot collection.
//
//  2. Multi-query sharing: N queries (sweep 1/4/16/64) that agree on
//     relations/selections/join attributes but differ in join predicates,
//     admitted together with a mid-run admission/cancel churn, executed
//     shared (one phase set per group) vs dedicated (one phase set per
//     query). The shared upward cost should scale ~1/N of dedicated.
//
// Snapshot references and sweep configurations are independent, so they run
// as ParallelRunner trials on per-trial testbeds; each service run itself
// is a sequential epoch loop (the delta engines carry state).

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "sensjoin/testbed/service_harness.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

constexpr int kEpochs = 6;
constexpr int kNumNodes = 250;
const int kSweep[] = {1, 4, 16, 64};

/// Join-predicate spread: every query shares the collection signature
/// (sensors x sensors, join attribute temp, no selections) but keeps its
/// own predicate threshold, so filters differ per query.
std::string QueryOfIndex(int i) {
  return RatioQueryOneJoinAttr(3, 1.0 + 0.05 * (i % 8));
}

join::ProtocolConfig ServiceProtocol() {
  join::ProtocolConfig config;
  // Same knobs for service, dedicated baseline and snapshot reference, so
  // every comparison is apples to apples. Treecut interacts with delta
  // shipping (see abl_continuous --treecut); keep it out of the headline
  // numbers.
  config.use_treecut = false;
  return config;
}

struct SnapshotCosts {
  uint64_t collection_packets = 0;
  uint64_t join_packets = 0;
  uint64_t matched_combinations = 0;
};

struct SweepOutcome {
  int queries = 0;
  bool shared = false;
  testbed::ServiceRunResult run;
};

testbed::ServiceRunParams SweepParams(int num_queries, bool shared) {
  testbed::ServiceRunParams params;
  params.epochs = kEpochs;
  params.config.protocol = ServiceProtocol();
  params.config.share_phases = shared;
  for (int i = 0; i < num_queries; ++i) {
    params.initial_queries.push_back(QueryOfIndex(i));
  }
  // Admission/cancel churn: one extra group member joins at epoch 2 and
  // leaves at epoch 4. In shared mode its admission costs no network
  // traffic (the group's collection already serves it); in dedicated mode
  // it forces a bootstrap collection of its own.
  testbed::ChurnEvent join_event;
  join_event.epoch = 2;
  join_event.kind = testbed::ChurnEvent::Kind::kRegister;
  join_event.sql = QueryOfIndex(num_queries);
  params.churn.push_back(join_event);
  testbed::ChurnEvent leave_event;
  leave_event.epoch = 4;
  leave_event.kind = testbed::ChurnEvent::Kind::kCancel;
  leave_event.target =
      static_cast<service::QueryId>(num_queries) + 1;  // the churn admission
  params.churn.push_back(leave_event);
  return params;
}

/// Average join packets per steady-state epoch (bootstrap excluded).
double SteadyPackets(const std::vector<service::ServiceEpochReport>& epochs) {
  uint64_t total = 0;
  size_t count = 0;
  for (const service::ServiceEpochReport& e : epochs) {
    if (e.epoch == 0) continue;
    total += e.cost.join_packets;
    ++count;
  }
  return count > 0 ? static_cast<double>(total) / count : 0.0;
}

double TotalStationCpu(const std::vector<service::ServiceEpochReport>& es) {
  double total = 0.0;
  for (const service::ServiceEpochReport& e : es) total += e.station_cpu_s;
  return total;
}

void WriteServiceJson(const std::string& path, uint64_t seed,
                      double snapshot_collection, double delta_steady,
                      uint64_t bootstrap_collection,
                      const std::vector<SweepOutcome>& outcomes) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"sensjoin-service-v1\",\n"
      << "  \"seed\": " << seed << ",\n  \"num_nodes\": " << kNumNodes
      << ",\n  \"epochs\": " << kEpochs
      << ",\n  \"collection\": {\"snapshot_packets_per_epoch\": "
      << snapshot_collection
      << ", \"delta_steady_packets_per_epoch\": " << delta_steady
      << ", \"bootstrap_packets\": " << bootstrap_collection
      << "},\n  \"sweep\": [\n";
  // Pair shared/dedicated outcomes per sweep point.
  for (size_t s = 0; s < outcomes.size(); s += 2) {
    const SweepOutcome& shared = outcomes[s];
    const SweepOutcome& dedicated = outcomes[s + 1];
    const auto& last = shared.run.epochs.back();
    out << "    {\"queries\": " << shared.queries
        << ", \"sharing_factor\": " << last.sharing_factor
        << ", \"shared_steady_packets_per_epoch\": "
        << SteadyPackets(shared.run.epochs)
        << ", \"dedicated_steady_packets_per_epoch\": "
        << SteadyPackets(dedicated.run.epochs)
        << ", \"shared_station_cpu_s\": " << TotalStationCpu(shared.run.epochs)
        << ", \"dedicated_station_cpu_s\": "
        << TotalStationCpu(dedicated.run.epochs) << "}"
        << (s + 2 < outcomes.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote service sweep baseline to " << path << "\n";
}

void Main(uint64_t seed, int threads, const std::string& json_path) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Extension -- continuous multi-query join service ("
            << kNumNodes << " nodes, " << kEpochs << " epochs), seed " << seed
            << "\n\n";

  // ---- 1. Collection savings: delta service vs snapshot references ------
  auto snapshots =
      runner.Run(kEpochs, seed, [&](const testbed::TrialContext& ctx) {
        auto tb = MustCreateTestbed(PaperDefaultParams(seed, kNumNodes));
        auto q = tb->ParseQuery(QueryOfIndex(0));
        SENSJOIN_CHECK(q.ok());
        auto r = tb->MakeSensJoin(ServiceProtocol())
                     .Execute(*q, static_cast<uint64_t>(ctx.trial));
        SENSJOIN_CHECK(r.ok()) << r.status();
        return SnapshotCosts{r->cost.phases.collection_packets,
                             r->cost.join_packets,
                             r->result.matched_combinations};
      });
  SENSJOIN_CHECK(snapshots.ok()) << snapshots.status();

  auto single_tb = MustCreateTestbed(PaperDefaultParams(seed, kNumNodes));
  testbed::ServiceRunParams single;
  single.epochs = kEpochs;
  single.config.protocol = ServiceProtocol();
  single.initial_queries.push_back(QueryOfIndex(0));
  auto single_run = testbed::RunService(*single_tb, single);
  SENSJOIN_CHECK(single_run.ok()) << single_run.status();

  TablePrinter ctable({"epoch", "delta collection", "snapshot collection",
                       "delta total", "snapshot total", "rows"});
  uint64_t steady_collection = 0;
  uint64_t bootstrap_collection = 0;
  for (const service::ServiceEpochReport& e : single_run->epochs) {
    const SnapshotCosts& snap = (*snapshots)[e.epoch];
    const auto& reports = single_run->query_reports.begin()->second;
    SENSJOIN_CHECK(reports[e.epoch].result.matched_combinations ==
                   snap.matched_combinations)
        << "service and snapshot executions disagree";
    if (e.epoch == 0) {
      bootstrap_collection = e.cost.phases.collection_packets;
    } else {
      steady_collection += e.cost.phases.collection_packets;
    }
    ctable.AddRow({e.epoch == 0 ? "0 (bootstrap)" : Fmt(e.epoch),
                   Fmt(e.cost.phases.collection_packets),
                   Fmt(snap.collection_packets), Fmt(e.cost.join_packets),
                   Fmt(snap.join_packets), Fmt(e.matched_rows)});
  }
  ctable.Print(std::cout);
  double snapshot_collection = 0.0;
  for (const SnapshotCosts& s : *snapshots) {
    snapshot_collection += static_cast<double>(s.collection_packets);
  }
  snapshot_collection /= kEpochs;
  const double delta_steady =
      static_cast<double>(steady_collection) / (kEpochs - 1);
  std::cout << "\nsteady-state collection: delta " << delta_steady
            << " pkts/epoch vs snapshot " << snapshot_collection
            << " pkts/epoch ("
            << (snapshot_collection > 0
                    ? delta_steady / snapshot_collection * 100.0
                    : 0.0)
            << "%)\n\n";

  // ---- 2. Multi-query sharing sweep --------------------------------------
  std::vector<std::pair<int, bool>> configs;
  for (int n : kSweep) {
    configs.push_back({n, true});
    configs.push_back({n, false});
  }
  auto outcomes = runner.Run(
      static_cast<int>(configs.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        const auto [num_queries, shared] = configs[ctx.trial];
        // Same base seed everywhere: every configuration runs on an
        // identical deployment, so costs are directly comparable.
        auto tb = MustCreateTestbed(PaperDefaultParams(seed, kNumNodes));
        auto run =
            testbed::RunService(*tb, SweepParams(num_queries, shared));
        SENSJOIN_CHECK(run.ok()) << run.status();
        return SweepOutcome{num_queries, shared, std::move(run).value()};
      });
  SENSJOIN_CHECK(outcomes.ok()) << outcomes.status();

  TablePrinter stable({"queries", "mode", "groups", "sharing", "steady "
                       "pkts/epoch", "station cpu ms", "rows/epoch"});
  for (const SweepOutcome& o : *outcomes) {
    const service::ServiceEpochReport& last = o.run.epochs.back();
    stable.AddRow({Fmt(static_cast<uint64_t>(o.queries)),
                   o.shared ? "shared" : "dedicated",
                   Fmt(static_cast<uint64_t>(last.groups)),
                   Fmt(last.sharing_factor),
                   Fmt(SteadyPackets(o.run.epochs)),
                   Fmt(TotalStationCpu(o.run.epochs) * 1000.0),
                   Fmt(static_cast<uint64_t>(last.matched_rows))});
  }
  stable.Print(std::cout);

  // Shared and dedicated executions must agree on every query's rows.
  for (size_t s = 0; s < outcomes->size(); s += 2) {
    const SweepOutcome& shared = (*outcomes)[s];
    const SweepOutcome& dedicated = (*outcomes)[s + 1];
    for (const auto& [id, reports] : shared.run.query_reports) {
      const auto it = dedicated.run.query_reports.find(id);
      SENSJOIN_CHECK(it != dedicated.run.query_reports.end());
      SENSJOIN_CHECK(reports.size() == it->second.size());
      for (size_t e = 0; e < reports.size(); ++e) {
        SENSJOIN_CHECK(reports[e].result.matched_combinations ==
                       it->second[e].result.matched_combinations)
            << "shared and dedicated executions disagree (query " << id
            << ", epoch " << e << ")";
      }
    }
  }
  std::cout << "\nshared == dedicated result streams verified for every "
               "sweep point\n";

  if (!json_path.empty()) {
    WriteServiceJson(json_path, seed, snapshot_collection, delta_steady,
                     bootstrap_collection, *outcomes);
  }
}

/// Strips a `--service-json=FILE` argument so positional seed parsing is
/// unaffected.
std::string ParseServiceJsonFlag(int* argc, char** argv) {
  const std::string prefix = "--service-json=";
  std::string path;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      path = arg.substr(prefix.size());
      continue;
    }
    argv[w++] = argv[i];
  }
  *argc = w;
  return path;
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const std::string json_path =
      sensjoin::bench::ParseServiceJsonFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads, json_path);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
