// Ablation: base-station placement. The paper leaves the base-station
// position unstated; its absolute numbers imply a deep tree. This sweep
// shows how the tree depth (corner vs center placement) shifts both
// methods' costs and the resulting savings — useful when comparing the
// reproduction's absolute numbers to the paper's.
//
// The two placements run as ParallelRunner trials (each already built its
// own testbed); rows come back in trial order, byte-identical to a
// sequential run.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Ablation -- base-station placement "
               "(33% ratio, 5% fraction), seed "
            << seed << "\n\n";
  const std::vector<net::BaseStationPlacement> kPlacements = {
      net::BaseStationPlacement::kCorner, net::BaseStationPlacement::kCenter};
  auto rows = runner.Run(
      static_cast<int>(kPlacements.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        const net::BaseStationPlacement placement = kPlacements[ctx.trial];
        testbed::TestbedParams params = PaperDefaultParams(seed);
        params.placement.base_station = placement;
        auto tb = MustCreateTestbed(params);
        const Calibration cal = CalibrateFraction(
            *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0,
            25.0, 0.05, /*increasing=*/false);
        auto q = tb->ParseQuery(cal.sql);
        SENSJOIN_CHECK(q.ok());
        auto ext = tb->MakeExternalJoin().Execute(*q, 0);
        auto sens = tb->MakeSensJoin().Execute(*q, 0);
        SENSJOIN_CHECK(ext.ok() && sens.ok());
        return std::vector<std::string>{
            placement == net::BaseStationPlacement::kCorner ? "corner"
                                                            : "center",
            Fmt(static_cast<uint64_t>(tb->tree().max_depth())),
            Fmt(ext->cost.join_packets), Fmt(sens->cost.join_packets),
            Savings(sens->cost.join_packets, ext->cost.join_packets),
            Fmt(ext->cost.max_node_packets()),
            Fmt(sens->cost.max_node_packets())};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"placement", "tree depth", "external pkts",
                      "sens pkts", "savings", "ext max node",
                      "sens max node"});
  for (std::vector<std::string>& row : *rows) table.AddRow(std::move(row));
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
