// Reproduces the Sec. VI-B compression comparison: the cost of the
// Join-Attribute-Collection step for 1500 nodes and three join attributes
// (temperature + the uncorrelated X/Y coordinates) under four
// representations. Paper numbers: raw 5619 packets ~ bzip2 5666 >
// zlib 4571 > quadtree 2762. Expected shape: general-purpose compressors
// gain little to nothing at per-hop granularity (bzip2's block overhead can
// even add volume); the quadtree roughly halves the cost.
//
// The four representations run as ParallelRunner trials on per-trial
// testbeds; rows are assembled in trial order on the main thread (the
// "vs raw" column needs the raw trial's count), byte-identical to a
// sequential run.

#include <cstdlib>
#include <iostream>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

struct Cost {
  uint64_t packets = 0;
  uint64_t bytes = 0;
};

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Sec. VI-B -- compact representation vs general-purpose "
               "compression (collection step only), seed "
            << seed << "\n\n";

  // Join attributes: temp, x, y (the paper's hard case for the quadtree).
  const std::string sql = RatioQueryThreeJoinAttrs(3, 900.0);

  struct Variant {
    join::JoinAttrRepresentation repr;
    const char* label;
  };
  const Variant variants[] = {
      {join::JoinAttrRepresentation::kRaw, "raw join-attribute tuples"},
      {join::JoinAttrRepresentation::kBzip2Like, "bzip2-like (BWT+MTF+Huff)"},
      {join::JoinAttrRepresentation::kZlibLike, "zlib-like (LZ77+Huffman)"},
      {join::JoinAttrRepresentation::kQuadtree, "quadtree (SENS-Join)"},
  };
  auto costs = runner.Run(4, seed, [&](const testbed::TrialContext& ctx) {
    auto tb = MustCreateTestbed(PaperDefaultParams(seed));
    auto q = tb->ParseQuery(sql);
    SENSJOIN_CHECK(q.ok());
    join::ProtocolConfig config;
    config.representation = variants[ctx.trial].repr;
    // Treecut off isolates the representation's effect on the collection
    // step, matching the paper's modified-collection experiment.
    config.use_treecut = false;
    auto r = tb->MakeSensJoin(config).Execute(*q, 0);
    SENSJOIN_CHECK(r.ok()) << r.status();
    return Cost{r->cost.phases.collection_packets, r->cost.join_bytes};
  });
  SENSJOIN_CHECK(costs.ok()) << costs.status();

  TablePrinter table({"representation", "collection pkts", "collection B",
                      "vs raw"});
  const uint64_t raw_packets = (*costs)[0].packets;
  for (int i = 0; i < 4; ++i) {
    const Cost& c = (*costs)[i];
    table.AddRow({variants[i].label, Fmt(c.packets), Fmt(c.bytes),
                  i == 0 ? "0.0%" : Savings(c.packets, raw_packets)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
