// Reproduces the Sec. VI-B compression comparison: the cost of the
// Join-Attribute-Collection step for 1500 nodes and three join attributes
// (temperature + the uncorrelated X/Y coordinates) under four
// representations. Paper numbers: raw 5619 packets ~ bzip2 5666 >
// zlib 4571 > quadtree 2762. Expected shape: general-purpose compressors
// gain little to nothing at per-hop granularity (bzip2's block overhead can
// even add volume); the quadtree roughly halves the cost.

#include <cstdlib>
#include <iostream>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed) {
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Sec. VI-B -- compact representation vs general-purpose "
               "compression (collection step only), seed "
            << seed << "\n\n";

  // Join attributes: temp, x, y (the paper's hard case for the quadtree).
  const std::string sql = RatioQueryThreeJoinAttrs(3, 900.0);
  auto q = tb->ParseQuery(sql);
  SENSJOIN_CHECK(q.ok());

  TablePrinter table({"representation", "collection pkts", "collection B",
                      "vs raw"});
  uint64_t raw_packets = 0;
  struct Row {
    join::JoinAttrRepresentation repr;
    const char* label;
  };
  const Row rows[] = {
      {join::JoinAttrRepresentation::kRaw, "raw join-attribute tuples"},
      {join::JoinAttrRepresentation::kBzip2Like, "bzip2-like (BWT+MTF+Huff)"},
      {join::JoinAttrRepresentation::kZlibLike, "zlib-like (LZ77+Huffman)"},
      {join::JoinAttrRepresentation::kQuadtree, "quadtree (SENS-Join)"},
  };
  for (const Row& row : rows) {
    join::ProtocolConfig config;
    config.representation = row.repr;
    // Treecut off isolates the representation's effect on the collection
    // step, matching the paper's modified-collection experiment.
    config.use_treecut = false;
    auto r = tb->MakeSensJoin(config).Execute(*q, 0);
    SENSJOIN_CHECK(r.ok()) << r.status();
    const uint64_t packets = r->cost.phases.collection_packets;
    if (row.repr == join::JoinAttrRepresentation::kRaw) raw_packets = packets;
    table.AddRow({row.label, Fmt(packets), Fmt(r->cost.join_bytes),
                  row.repr == join::JoinAttrRepresentation::kRaw
                      ? "0.0%"
                      : Savings(packets, raw_packets)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sensjoin::bench::Main(seed);
  return 0;
}
