// Microbenchmarks for the from-scratch compression codecs used as
// comparators in the Sec. VI-B experiment. The paper notes such algorithms
// "do not run on current sensor nodes due to their use of memory and code
// size" and add per-hop decompress/recompress CPU cost; these numbers make
// that overhead concrete.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "sensjoin/common/rng.h"
#include "sensjoin/compress/bwt.h"
#include "sensjoin/compress/bzip2_like.h"
#include "sensjoin/compress/huffman.h"
#include "sensjoin/compress/lz77.h"
#include "sensjoin/compress/zlib_like.h"

namespace sensjoin::compress {
namespace {

/// Quantized sensor-reading-like data: correlated 16-bit values.
std::vector<uint8_t> SensorLikeBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out;
  out.reserve(n);
  int value = 200;
  while (out.size() + 1 < n) {
    value += static_cast<int>(rng.UniformInt(-3, 3));
    out.push_back(static_cast<uint8_t>(value));
    out.push_back(static_cast<uint8_t>(value >> 8));
  }
  out.resize(n);
  return out;
}

void BM_HuffmanCompress(benchmark::State& state) {
  const auto input = SensorLikeBytes(state.range(0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HuffmanCompress(input).size());
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_HuffmanCompress)->Arg(256)->Arg(4096)->Arg(65536);

void BM_Lz77Parse(benchmark::State& state) {
  const auto input = SensorLikeBytes(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Lz77Parse(input).size());
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_Lz77Parse)->Arg(256)->Arg(4096)->Arg(65536);

void BM_ZlibLikeRoundtrip(benchmark::State& state) {
  const auto input = SensorLikeBytes(state.range(0), 3);
  for (auto _ : state) {
    const auto compressed = ZlibLikeCompress(input);
    auto decompressed = ZlibLikeDecompress(compressed);
    benchmark::DoNotOptimize(decompressed->size());
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_ZlibLikeRoundtrip)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BwtTransform(benchmark::State& state) {
  const auto input = SensorLikeBytes(state.range(0), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BwtTransform(input).data.size());
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_BwtTransform)->Arg(256)->Arg(4096)->Arg(16384);

void BM_Bzip2LikeRoundtrip(benchmark::State& state) {
  const auto input = SensorLikeBytes(state.range(0), 5);
  for (auto _ : state) {
    const auto compressed = Bzip2LikeCompress(input);
    auto decompressed = Bzip2LikeDecompress(compressed);
    benchmark::DoNotOptimize(decompressed->size());
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_Bzip2LikeRoundtrip)->Arg(256)->Arg(4096)->Arg(16384);

void BM_CompressionRatios(benchmark::State& state) {
  const auto input = SensorLikeBytes(4096, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZlibLikeCompress(input).size());
  }
  state.counters["zlib_ratio"] =
      static_cast<double>(ZlibLikeCompress(input).size()) / input.size();
  state.counters["bzip2_ratio"] =
      static_cast<double>(Bzip2LikeCompress(input).size()) / input.size();
}
BENCHMARK(BM_CompressionRatios);

}  // namespace
}  // namespace sensjoin::compress

// main() comes from benchmark::benchmark_main.
