// Extension benchmark (Sec. VIII follow-on work): continuous queries with
// delta-based join-attribute collection. Epoch 0 bootstraps (a full
// collection); later epochs ship only cell changes. Expected shape: the
// steady-state collection cost drops well below the snapshot executor's,
// while filter/final costs track the (stable) result size.

#include <cstdlib>
#include <iostream>

#include "sensjoin/join/continuous.h"
#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed) {
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Extension -- continuous queries with delta collection "
               "(33% ratio, 5% fraction), seed "
            << seed << "\n\n";
  const Calibration cal = CalibrateFraction(
      *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0, 25.0,
      0.05, /*increasing=*/false);
  auto q = tb->ParseQuery(cal.sql);
  SENSJOIN_CHECK(q.ok());

  join::ProtocolConfig config;
  config.use_treecut = false;  // continuous mode runs without Treecut
  join::ContinuousSensJoinExecutor continuous(
      tb->simulator(), tb->tree(), tb->data(), tb->quantization(), config);

  TablePrinter table({"epoch", "changed nodes", "delta collection", "filter",
                      "final", "total", "snapshot total"});
  for (uint64_t epoch = 0; epoch < 6; ++epoch) {
    auto delta = continuous.ExecuteEpoch(*q, epoch);
    SENSJOIN_CHECK(delta.ok()) << delta.status();
    auto snapshot = tb->MakeSensJoin(config).Execute(*q, epoch);
    SENSJOIN_CHECK(snapshot.ok());
    SENSJOIN_CHECK(delta->result.matched_combinations ==
                   snapshot->result.matched_combinations)
        << "delta and snapshot executions disagree";
    table.AddRow({epoch == 0 ? "0 (bootstrap)" : Fmt(epoch),
                  Fmt(delta->delta_changed_nodes),
                  Fmt(delta->cost.phases.collection_packets),
                  Fmt(delta->cost.phases.filter_packets),
                  Fmt(delta->cost.phases.final_packets),
                  Fmt(delta->cost.join_packets),
                  Fmt(snapshot->cost.join_packets)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sensjoin::bench::Main(seed);
  return 0;
}
