// Extension benchmark (Sec. VIII follow-on work): continuous queries with
// delta-based join-attribute collection. Epoch 0 bootstraps (a full
// collection); later epochs ship only cell changes. Expected shape: the
// steady-state collection cost drops well below the snapshot executor's,
// while filter/final costs track the (stable) result size.
//
// The delta executor carries state from epoch to epoch, so it stays a
// sequential loop on the main thread. The per-epoch snapshot references
// are independent, so they run as ParallelRunner trials on per-trial
// testbeds, byte-identical to a sequential run.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "sensjoin/join/continuous.h"
#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

constexpr int kEpochs = 6;

struct Snapshot {
  uint64_t join_packets = 0;
  uint64_t matched_combinations = 0;
};

void Main(uint64_t seed, int threads, bool use_treecut) {
  const testbed::ParallelRunner runner(threads);
  auto tb = MustCreateTestbed(PaperDefaultParams(seed));
  std::cout << "Extension -- continuous queries with delta collection "
               "(33% ratio, 5% fraction, Treecut "
            << (use_treecut ? "on" : "off") << "), seed " << seed << "\n\n";
  const Calibration cal = CalibrateFraction(
      *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0, 25.0,
      0.05, /*increasing=*/false, /*epoch=*/0, /*iterations=*/22, &runner);
  auto q = tb->ParseQuery(cal.sql);
  SENSJOIN_CHECK(q.ok());

  // Continuous mode supports Treecut (frozen at the bootstrap boundary;
  // exited nodes re-ship changed tuples to their proxy). Default off so the
  // headline rows isolate the delta-collection effect; --treecut quantifies
  // the interaction.
  join::ProtocolConfig config;
  config.use_treecut = use_treecut;

  auto snapshots =
      runner.Run(kEpochs, seed, [&](const testbed::TrialContext& ctx) {
        auto snap_tb = MustCreateTestbed(PaperDefaultParams(seed));
        auto sq = snap_tb->ParseQuery(cal.sql);
        SENSJOIN_CHECK(sq.ok());
        auto r = snap_tb->MakeSensJoin(config).Execute(
            *sq, static_cast<uint64_t>(ctx.trial));
        SENSJOIN_CHECK(r.ok());
        return Snapshot{r->cost.join_packets,
                        r->result.matched_combinations};
      });
  SENSJOIN_CHECK(snapshots.ok()) << snapshots.status();

  join::ContinuousSensJoinExecutor continuous(
      tb->simulator(), tb->tree(), tb->data(), tb->quantization(), config);

  TablePrinter table({"epoch", "changed nodes", "delta collection", "filter",
                      "final", "total", "snapshot total"});
  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    auto delta = continuous.ExecuteEpoch(*q, epoch);
    SENSJOIN_CHECK(delta.ok()) << delta.status();
    const Snapshot& snapshot = (*snapshots)[epoch];
    SENSJOIN_CHECK(delta->result.matched_combinations ==
                   snapshot.matched_combinations)
        << "delta and snapshot executions disagree";
    table.AddRow({epoch == 0 ? "0 (bootstrap)" : Fmt(epoch),
                  Fmt(delta->delta_changed_nodes),
                  Fmt(delta->cost.phases.collection_packets),
                  Fmt(delta->cost.phases.filter_packets),
                  Fmt(delta->cost.phases.final_packets),
                  Fmt(delta->cost.join_packets),
                  Fmt(snapshot.join_packets)});
  }
  table.Print(std::cout);
}

/// Strips a `--treecut` argument; returns whether it was present.
bool ParseTreecutFlag(int* argc, char** argv) {
  bool found = false;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--treecut") == 0) {
      found = true;
      continue;
    }
    argv[w++] = argv[i];
  }
  *argc = w;
  return found;
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const bool use_treecut = sensjoin::bench::ParseTreecutFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads, use_treecut);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
