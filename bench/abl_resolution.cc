// Ablation: quantization resolution (Sec. V-B). The paper reports that
// SENS-Join is insensitive to the pre-computation resolution as long as it
// is not too coarse: finer steps cost more bits per point, coarser steps
// create false positives (complete tuples shipped unnecessarily).
//
// Each resolution already built its own testbed, so the sweep maps
// directly onto ParallelRunner trials; rows come back in trial order,
// byte-identical to a sequential run.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/table.h"
#include "util/tracing.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

void Main(uint64_t seed, int threads) {
  const testbed::ParallelRunner runner(threads);
  std::cout << "Ablation -- temperature quantization resolution "
               "(33% ratio, 5% fraction), seed "
            << seed << "\n\n";
  const std::vector<double> kResolutions = {0.02, 0.05, 0.1, 0.5,
                                            1.0,  2.0,  5.0};
  auto rows = runner.Run(
      static_cast<int>(kResolutions.size()), seed,
      [&](const testbed::TrialContext& ctx) {
        const double resolution = kResolutions[ctx.trial];
        auto tb = MustCreateTestbed(PaperDefaultParams(seed));
        tb->mutable_quantization().by_attr["temp"].resolution = resolution;
        const Calibration cal = CalibrateFraction(
            *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0,
            25.0, 0.05, /*increasing=*/false);
        auto q = tb->ParseQuery(cal.sql);
        SENSJOIN_CHECK(q.ok());
        auto r = tb->MakeSensJoin().Execute(*q, 0);
        SENSJOIN_CHECK(r.ok()) << r.status();
        return std::vector<std::string>{
            Fmt(resolution, 2), Fmt(r->collected_points),
            Fmt(r->filter_points), Fmt(r->final_tuples_shipped),
            Fmt(static_cast<uint64_t>(r->result.contributing_nodes.size())),
            Fmt(r->cost.phases.collection_packets),
            Fmt(r->cost.join_packets)};
      });
  SENSJOIN_CHECK(rows.ok()) << rows.status();

  TablePrinter table({"resolution (degC)", "collected pts", "filter pts",
                      "final tuples", "contributing", "collection", "total"});
  for (std::vector<std::string>& row : *rows) table.AddRow(std::move(row));
  table.Print(std::cout);
  std::cout << "\n(final tuples above the contributing count are false "
               "positives caused by coarse cells)\n";
}

}  // namespace
}  // namespace sensjoin::bench

int main(int argc, char** argv) {
  const int threads = sensjoin::testbed::ParseThreadsFlag(&argc, argv);
  sensjoin::testbed::ParseEngineFlag(&argc, argv);
  const sensjoin::bench::TraceFlag trace =
      sensjoin::bench::ParseTraceFlag(&argc, argv);
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  if (!trace.only) sensjoin::bench::Main(seed, threads);
  if (trace.enabled()) sensjoin::bench::RunTracedExecution(trace, seed);
  return 0;
}
