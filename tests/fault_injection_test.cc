// Unit tests of the fault-injection layer: seeded per-link packet loss,
// link-layer ARQ with bounded retransmissions (charged and itemized in the
// energy accounting), and node crash/recover events driven through the
// event queue.

#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/geometry.h"
#include "sensjoin/sim/fault_model.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::sim {
namespace {

Simulator MakeChain() {
  // 0 - 1 - 2 chain, range 50.
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}};
  return Simulator(Radio(pos, 50.0));
}

Message UnicastMsg(NodeId src, NodeId dst, size_t bytes,
                   MessageKind kind = MessageKind::kCollection) {
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.kind = kind;
  msg.payload_bytes = bytes;
  return msg;
}

TEST(FaultInjectionTest, CertainLossWithoutArqDropsEveryMessage) {
  Simulator sim = MakeChain();
  sim.radio().set_default_loss_rate(1.0);
  EXPECT_FALSE(sim.SendUnicast(UnicastMsg(0, 1, 10)));
  // The sender still paid for the transmission; nothing arrived.
  EXPECT_EQ(sim.stats(0).packets_sent, 1u);
  EXPECT_EQ(sim.stats(1).packets_received, 0u);
  EXPECT_EQ(sim.total_packets_retransmitted(), 0u);
}

TEST(FaultInjectionTest, ZeroLossBehavesExactlyLikeTheSeed) {
  Simulator sim = MakeChain();
  EXPECT_TRUE(sim.SendUnicast(UnicastMsg(0, 1, 100)));  // 3 fragments
  EXPECT_EQ(sim.stats(0).packets_sent, 3u);
  EXPECT_EQ(sim.stats(0).bytes_sent, 100u + 3 * 8u);
  EXPECT_EQ(sim.stats(1).packets_received, 3u);
  EXPECT_EQ(sim.total_packets_retransmitted(), 0u);
  EXPECT_EQ(sim.total_ack_packets(), 0u);
  EXPECT_DOUBLE_EQ(sim.retransmit_energy_mj(), 0.0);
}

TEST(FaultInjectionTest, ArqRecoversLossAndItemizesRetransmissions) {
  Simulator sim = MakeChain();
  sim.radio().set_default_loss_rate(0.4);
  ArqParams arq;
  arq.enabled = true;
  arq.max_retransmissions = 6;
  sim.set_arq_params(arq);
  sim.SeedFaults(7);

  int delivered = 0;
  const int kMessages = 30;
  for (int i = 0; i < kMessages; ++i) {
    if (sim.SendUnicast(UnicastMsg(0, 1, 100))) ++delivered;
  }
  // Per-fragment give-up probability is 0.4^7 < 0.2%, so essentially
  // everything gets through -- at the price of retransmissions.
  EXPECT_GE(delivered, kMessages - 1);
  EXPECT_GT(sim.total_packets_retransmitted(), 0u);
  EXPECT_GT(sim.total_ack_packets(), 0u);
  EXPECT_GT(sim.retransmit_energy_mj(), 0.0);
  EXPECT_GT(sim.ack_energy_mj(), 0.0);
  // Retransmissions are part of the packet totals and itemized on top.
  EXPECT_EQ(sim.stats(0).packets_retransmitted,
            sim.total_packets_retransmitted());
  EXPECT_GT(sim.stats(0).packets_sent,
            static_cast<uint64_t>(3 * kMessages));
  // The itemization never exceeds the whole.
  EXPECT_LT(sim.retransmit_energy_mj() + sim.ack_energy_mj(),
            sim.total_energy_mj());
}

TEST(FaultInjectionTest, ArqGivesUpAfterBoundedRetransmissions) {
  Simulator sim = MakeChain();
  sim.radio().set_default_loss_rate(1.0);
  ArqParams arq;
  arq.enabled = true;
  arq.max_retransmissions = 3;
  sim.set_arq_params(arq);
  EXPECT_FALSE(sim.SendUnicast(UnicastMsg(0, 1, 10)));  // 1 fragment
  // Initial attempt + 3 retransmissions, all futile, all paid for.
  EXPECT_EQ(sim.stats(0).packets_sent, 4u);
  EXPECT_EQ(sim.total_packets_retransmitted(), 3u);
  EXPECT_EQ(sim.total_ack_packets(), 0u);  // nothing ever arrived
}

TEST(FaultInjectionTest, TreeMaintenanceAndQueryFloodsAreExemptFromLoss) {
  Simulator sim = MakeChain();
  sim.radio().set_default_loss_rate(1.0);
  EXPECT_TRUE(sim.SendUnicast(UnicastMsg(0, 1, 10, MessageKind::kBeacon)));
  EXPECT_TRUE(sim.SendUnicast(UnicastMsg(0, 1, 10, MessageKind::kQuery)));
  EXPECT_FALSE(sim.SendUnicast(UnicastMsg(0, 1, 10, MessageKind::kFinal)));
  std::vector<NodeId> reached;
  Message flood;
  flood.src = 1;
  flood.kind = MessageKind::kQuery;
  flood.payload_bytes = 10;
  EXPECT_EQ(sim.Broadcast(flood, &reached), 2);
  EXPECT_EQ(reached, (std::vector<NodeId>{0, 2}));
}

TEST(FaultInjectionTest, BroadcastRollsLossPerReceiver) {
  Simulator sim = MakeChain();
  // Only the 1-2 link is lossy: node 0 always receives, node 2 never.
  sim.radio().SetLinkLossRate(1, 2, 1.0);
  std::vector<NodeId> reached;
  Message msg;
  msg.src = 1;
  msg.kind = MessageKind::kFilter;
  msg.payload_bytes = 10;
  EXPECT_EQ(sim.Broadcast(msg, &reached), 1);
  EXPECT_EQ(reached, (std::vector<NodeId>{0}));
  // One broadcast transmission regardless of receiver outcomes.
  EXPECT_EQ(sim.stats(1).packets_sent, 1u);
  EXPECT_EQ(sim.stats(0).packets_received, 1u);
  EXPECT_EQ(sim.stats(2).packets_received, 0u);
}

TEST(FaultInjectionTest, CrashAndRecoveryFireThroughTheEventQueue) {
  Simulator sim = MakeChain();
  sim.ScheduleCrash(1, 1.0);
  sim.ScheduleRecovery(1, 2.0);
  EXPECT_TRUE(sim.SendUnicast(UnicastMsg(0, 1, 10)));  // before the crash
  sim.events().RunUntil(1.5);
  EXPECT_FALSE(sim.alive(1));
  EXPECT_FALSE(sim.SendUnicast(UnicastMsg(0, 1, 10)));
  EXPECT_FALSE(sim.SendUnicast(UnicastMsg(1, 0, 10)));
  sim.events().RunUntil(2.5);
  EXPECT_TRUE(sim.alive(1));
  EXPECT_TRUE(sim.SendUnicast(UnicastMsg(0, 1, 10)));
}

TEST(FaultInjectionTest, ApplyFaultPlanInstallsEverything) {
  Simulator sim = MakeChain();
  FaultPlan plan;
  plan.default_loss_rate = 0.25;
  plan.link_overrides.push_back({0, 1, 0.75});
  plan.crash_events.push_back({2, 1.0, /*recover=*/false});
  plan.crash_events.push_back({2, 3.0, /*recover=*/true});
  plan.arq.enabled = true;
  plan.arq.max_retransmissions = 5;
  plan.seed = 99;
  ApplyFaultPlan(sim, plan);

  EXPECT_DOUBLE_EQ(sim.radio().LossRate(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(sim.radio().LossRate(1, 2), 0.25);
  EXPECT_TRUE(sim.arq_params().enabled);
  EXPECT_EQ(sim.arq_params().max_retransmissions, 5);
  sim.events().RunUntil(2.0);
  EXPECT_FALSE(sim.alive(2));
  sim.events().RunUntil(4.0);
  EXPECT_TRUE(sim.alive(2));
}

TEST(FaultInjectionTest, DropDecisionsAreDeterministicUnderASeed) {
  auto run = [](uint64_t seed) {
    Simulator sim = MakeChain();
    sim.radio().set_default_loss_rate(0.3);
    ArqParams arq;
    arq.enabled = true;
    sim.set_arq_params(arq);
    sim.SeedFaults(seed);
    std::vector<bool> outcomes;
    for (int i = 0; i < 50; ++i) {
      outcomes.push_back(sim.SendUnicast(UnicastMsg(0, 1, 60)));
    }
    return std::make_pair(outcomes, sim.total_packets_retransmitted());
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // and the seed actually matters
}

TEST(FaultInjectionTest, LatencyIncludesBackoffForRetransmissions) {
  Simulator sim = MakeChain();
  sim.set_per_packet_latency_s(0.004);
  sim.radio().set_default_loss_rate(0.6);
  ArqParams arq;
  arq.enabled = true;
  arq.max_retransmissions = 8;
  sim.set_arq_params(arq);
  sim.SeedFaults(11);
  double delivered_at = -1;
  sim.SetReceiveHandler(
      [&](NodeId, const Message&) { delivered_at = sim.now(); });
  int retx = -1;
  sim.SetTraceSink([&](const TraceRecord& r) { retx = r.retransmissions; });
  // Find a send that needed at least one retransmission.
  for (int i = 0; i < 20; ++i) {
    const double sent_at = sim.now();
    const bool ok = sim.SendUnicast(UnicastMsg(0, 1, 10));
    sim.events().Run();
    if (ok && retx > 0) {
      // One fragment: initial tx + retx transmissions plus backoff waits.
      EXPECT_GT(delivered_at - sent_at, (1 + retx) * 0.004 - 1e-9);
      return;
    }
  }
  FAIL() << "no retransmitted-but-delivered message in 20 tries";
}

}  // namespace
}  // namespace sensjoin::sim
