// Tests of the payload-integrity layer: the CRC-16 trailer, the seeded
// per-fragment corruption model, its loss-equivalence under CRC (detected
// corruption feeds the ARQ exactly like a drop), and the end-to-end
// guarantee that a corrupted channel with CRC + ARQ still converges to the
// fault-free result.

#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/crc16.h"
#include "sensjoin/common/geometry.h"
#include "sensjoin/sensjoin.h"
#include "sensjoin/sim/fault_model.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin {
namespace {

TEST(Crc16Test, KnownCheckValue) {
  // CRC-16/CCITT-FALSE check value from the Rocksoft catalogue.
  const std::string s = "123456789";
  EXPECT_EQ(Crc16(reinterpret_cast<const uint8_t*>(s.data()), s.size()),
            0x29B1);
  EXPECT_EQ(Crc16(nullptr, 0), 0xFFFF);
}

TEST(Crc16Test, AppendAndVerifyRoundtrip) {
  std::vector<uint8_t> frame = {0xDE, 0xAD, 0xBE, 0xEF};
  AppendCrc16(&frame);
  ASSERT_EQ(frame.size(), 6u);
  EXPECT_TRUE(VerifyCrc16(frame));
  // Any single-bit flip (payload or trailer) must be caught.
  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::vector<uint8_t> damaged = frame;
    damaged[bit / 8] ^= static_cast<uint8_t>(0x80u >> (bit % 8));
    EXPECT_FALSE(VerifyCrc16(damaged)) << "flip at bit " << bit;
  }
  EXPECT_FALSE(VerifyCrc16({0x29}));  // shorter than the trailer
}

sim::Simulator MakeChain() {
  // 0 - 1 - 2 chain, range 50.
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}};
  return sim::Simulator(sim::Radio(pos, 50.0));
}

sim::Message UnicastMsg(sim::NodeId src, sim::NodeId dst, size_t bytes,
                        sim::MessageKind kind = sim::MessageKind::kCollection) {
  sim::Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.kind = kind;
  msg.payload_bytes = bytes;
  return msg;
}

TEST(CorruptionTest, DetectedCorruptionFeedsArqLikeLoss) {
  sim::Simulator sim = MakeChain();
  sim.radio().set_default_corruption_rate(0.4);
  sim.set_integrity_params(sim::IntegrityParams{});  // CRC on, 2 bytes
  sim::ArqParams arq;
  arq.enabled = true;
  arq.max_retransmissions = 6;
  sim.set_arq_params(arq);
  sim.SeedFaults(9);

  int delivered = 0;
  const int kMessages = 30;
  for (int i = 0; i < kMessages; ++i) {
    bool corrupted = true;
    if (sim.SendUnicast(UnicastMsg(0, 1, 100), &corrupted)) {
      ++delivered;
      // With CRC every damaged fragment was rejected and resent, so the
      // payload that finally assembles is clean.
      EXPECT_FALSE(corrupted);
    }
  }
  // Per-fragment give-up probability is 0.4^7 < 0.2%.
  EXPECT_GE(delivered, kMessages - 1);
  EXPECT_GT(sim.total_corrupted_packets(), 0u);
  EXPECT_EQ(sim.total_undetected_corrupted_packets(), 0u);
  // Corruption-triggered retransmissions are itemized inside the overall
  // retransmission bill, and the trailer bytes are charged.
  EXPECT_GT(sim.total_packets_retransmitted(), 0u);
  EXPECT_GT(sim.integrity_retransmit_energy_mj(), 0.0);
  EXPECT_LE(sim.integrity_retransmit_energy_mj(), sim.retransmit_energy_mj());
  EXPECT_GT(sim.crc_bytes_sent(), 0u);
  EXPECT_GT(sim.crc_energy_mj(), 0.0);
  // The receiver physically heard (and paid for) the damaged fragments.
  EXPECT_EQ(sim.stats(1).corrupted_packets_received,
            sim.total_corrupted_packets());
}

TEST(CorruptionTest, CertainCorruptionWithCrcAndNoArqDropsTheMessage) {
  sim::Simulator sim = MakeChain();
  sim.radio().set_default_corruption_rate(1.0);
  sim.set_integrity_params(sim::IntegrityParams{});
  bool corrupted = false;
  EXPECT_FALSE(sim.SendUnicast(UnicastMsg(0, 1, 10), &corrupted));
  EXPECT_FALSE(corrupted);  // nothing was delivered at all
  EXPECT_EQ(sim.total_corrupted_packets(), 1u);
  EXPECT_EQ(sim.total_undetected_corrupted_packets(), 0u);
}

TEST(CorruptionTest, WithoutCrcCorruptionArrivesUndetected) {
  sim::Simulator sim = MakeChain();
  sim.radio().set_default_corruption_rate(1.0);
  sim::IntegrityParams integrity;
  integrity.crc_enabled = false;
  sim.set_integrity_params(integrity);
  bool corrupted = false;
  // The message is "delivered": the radio cannot tell it is damaged.
  EXPECT_TRUE(sim.SendUnicast(UnicastMsg(0, 1, 10), &corrupted));
  EXPECT_TRUE(corrupted);
  EXPECT_EQ(sim.total_corrupted_packets(), 0u);
  EXPECT_EQ(sim.total_undetected_corrupted_packets(), 1u);
  EXPECT_EQ(sim.crc_bytes_sent(), 0u);
  EXPECT_EQ(sim.stats(1).packets_received, 1u);
}

TEST(CorruptionTest, BeaconsAndQueryFloodsAreExempt) {
  sim::Simulator sim = MakeChain();
  sim.radio().set_default_corruption_rate(1.0);
  sim.set_integrity_params(sim::IntegrityParams{});
  bool corrupted = true;
  EXPECT_TRUE(sim.SendUnicast(UnicastMsg(0, 1, 10, sim::MessageKind::kBeacon),
                              &corrupted));
  EXPECT_FALSE(corrupted);
  corrupted = true;
  EXPECT_TRUE(sim.SendUnicast(UnicastMsg(0, 1, 10, sim::MessageKind::kQuery),
                              &corrupted));
  EXPECT_FALSE(corrupted);
  EXPECT_EQ(sim.total_corrupted_packets(), 0u);
  EXPECT_EQ(sim.total_undetected_corrupted_packets(), 0u);
  EXPECT_EQ(sim.crc_bytes_sent(), 0u);  // exempt traffic carries no trailer
}

TEST(CorruptionTest, BroadcastRollsCorruptionPerReceiver) {
  sim::Simulator sim = MakeChain();
  // Only the 1-2 link is dirty: node 0 always hears cleanly, node 2 never.
  sim.radio().SetLinkCorruptionRate(1, 2, 1.0);
  sim::IntegrityParams integrity;
  integrity.crc_enabled = false;
  sim.set_integrity_params(integrity);
  sim::Message msg;
  msg.src = 1;
  msg.kind = sim::MessageKind::kFilter;
  msg.payload_bytes = 10;
  std::vector<sim::NodeId> delivered;
  std::vector<sim::NodeId> corrupted;
  EXPECT_EQ(sim.Broadcast(msg, &delivered, &corrupted), 2);
  EXPECT_EQ(delivered, (std::vector<sim::NodeId>{0, 2}));
  EXPECT_EQ(corrupted, (std::vector<sim::NodeId>{2}));

  // With CRC the damaged copy is rejected instead, so node 2 misses it.
  sim.set_integrity_params(sim::IntegrityParams{});
  delivered.clear();
  corrupted.clear();
  EXPECT_EQ(sim.Broadcast(msg, &delivered, &corrupted), 1);
  EXPECT_EQ(delivered, (std::vector<sim::NodeId>{0}));
  EXPECT_TRUE(corrupted.empty());
}

TEST(CorruptionTest, DamagePayloadIsSeededAndActuallyDamages) {
  BitWriter payload;
  for (int i = 0; i < 8; ++i) payload.WriteBits(0xA5, 8);
  auto damage = [&payload](uint64_t seed) {
    sim::Simulator sim = MakeChain();
    sim.SeedFaults(seed);
    const BitWriter damaged = sim.DamagePayload(payload);
    return std::make_pair(damaged.bytes(), damaged.size_bits());
  };
  const auto once = damage(5);
  // Damaged: either bits flipped at equal length, or truncated shorter.
  EXPECT_TRUE(once.first != payload.bytes() ||
              once.second != payload.size_bits());
  EXPECT_LE(once.second, payload.size_bits());
  EXPECT_EQ(once, damage(5));  // same seed, same damage
}

// ---------------------------------------------------------------------------
// End-to-end protocol behavior under corruption.

testbed::TestbedParams SmallParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 250;
  params.placement.area_width_m = 450;
  params.placement.area_height_m = 450;
  params.seed = seed;
  return params;
}

const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 450 ONCE";

join::ProtocolConfig FaultyConfig() {
  join::ProtocolConfig config;
  config.max_retries = 6;
  config.retry_backoff_s = 1.0;
  return config;
}

sim::FaultPlan CorruptPlan(double corruption_rate, uint64_t seed) {
  sim::FaultPlan plan;
  plan.default_corruption_rate = corruption_rate;
  plan.arq.enabled = true;
  plan.arq.max_retransmissions = 6;
  plan.seed = seed;
  return plan;
}

TEST(CorruptionTest, ZeroCorruptionPlanIsBitIdenticalToTheSeed) {
  // Installing an all-zero fault plan must not perturb anything: same
  // result, same packet and byte counts, same energy to the last joule.
  // (The CRC trailer is gated on the plan actually having corruption.)
  auto run = [](bool with_plan) {
    auto tb = testbed::Testbed::Create(SmallParams(33));
    SENSJOIN_CHECK(tb.ok());
    if (with_plan) {
      sim::FaultPlan plan;
      plan.seed = 999;
      (*tb)->InjectFaults(plan);
    }
    auto q = (*tb)->ParseQuery(kQuery);
    SENSJOIN_CHECK(q.ok());
    auto report = (*tb)->MakeSensJoin().Execute(*q, 0);
    SENSJOIN_CHECK(report.ok()) << report.status();
    return std::make_tuple(report->result.rows, report->cost.join_packets,
                           report->cost.join_bytes, report->cost.energy_mj,
                           report->cost.crc_bytes_sent);
  };
  EXPECT_EQ(run(false), run(true));
}

/// Acceptance scenario: >= 5% of fragments are corrupted in flight on every
/// link. With the CRC trailer and ARQ, every damaged fragment is detected
/// and resent, so the run still delivers the complete fault-free result --
/// on more than one deployment seed -- and the report itemizes what the
/// integrity layer cost.
TEST(CorruptionTest, CorruptedChannelWithCrcDeliversCompleteResult) {
  for (uint64_t seed : {31u, 32u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    auto clean_tb = testbed::Testbed::Create(SmallParams(seed));
    ASSERT_TRUE(clean_tb.ok());
    auto cq = (*clean_tb)->ParseQuery(kQuery);
    ASSERT_TRUE(cq.ok());
    auto truth = (*clean_tb)->MakeExternalJoin().Execute(*cq, 0);
    ASSERT_TRUE(truth.ok());

    auto tb = testbed::Testbed::Create(SmallParams(seed));
    ASSERT_TRUE(tb.ok());
    (*tb)->InjectFaults(CorruptPlan(0.05, seed * 131));
    auto q = (*tb)->ParseQuery(kQuery);
    ASSERT_TRUE(q.ok());
    auto report = (*tb)->MakeSensJoin(FaultyConfig()).Execute(*q, 0);
    ASSERT_TRUE(report.ok()) << report.status();

    EXPECT_DOUBLE_EQ(
        testbed::ResultCompleteness(truth->result, report->result), 1.0);
    EXPECT_EQ(report->corrupted_deliveries, 0u);  // CRC caught everything
    EXPECT_GT(report->cost.corrupted_packets, 0u);
    EXPECT_EQ(report->cost.undetected_corrupted_packets, 0u);
    EXPECT_GT(report->cost.crc_bytes_sent, 0u);
    EXPECT_GT(report->cost.crc_energy_mj, 0.0);
    EXPECT_GT(report->cost.integrity_retransmit_energy_mj, 0.0);
    EXPECT_LE(report->cost.integrity_retransmit_energy_mj,
              report->cost.retransmit_energy_mj);
  }
}

TEST(CorruptionTest, CrcDisabledDegradesGracefully) {
  // Ablation: same corrupted channel, CRC off. Damaged payloads now reach
  // the decoders, which must absorb them (drop or reinterpret, never
  // crash); the report says how many deliveries were damaged.
  auto tb = testbed::Testbed::Create(SmallParams(34));
  ASSERT_TRUE(tb.ok());
  sim::FaultPlan plan = CorruptPlan(0.20, 4242);
  plan.integrity.crc_enabled = false;
  (*tb)->InjectFaults(plan);
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  auto report = (*tb)->MakeSensJoin(FaultyConfig()).Execute(*q, 0);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->cost.undetected_corrupted_packets, 0u);
  EXPECT_GT(report->corrupted_deliveries, 0u);
  EXPECT_EQ(report->cost.crc_bytes_sent, 0u);
  EXPECT_EQ(report->cost.corrupted_packets, 0u);
}

}  // namespace
}  // namespace sensjoin
