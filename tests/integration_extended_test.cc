// Further end-to-end coverage: three-way joins, packet-size variations,
// select-star output, and query dissemination accounting.

#include <algorithm>

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin {
namespace {

testbed::TestbedParams SmallParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 150;
  params.placement.area_width_m = 350;
  params.placement.area_height_m = 350;
  params.seed = seed;
  return params;
}

std::vector<std::vector<double>> SortedRows(const join::JoinResult& r) {
  auto rows = r.rows;
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(ThreeWayJoinTest, SensJoinMatchesExternalJoin) {
  auto tb = testbed::Testbed::Create(SmallParams(17));
  ASSERT_TRUE(tb.ok());
  // A chain of temperature steps: A noticeably colder than B, B than C.
  auto q = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum, C.hum FROM sensors A, sensors B, sensors C "
      "WHERE B.temp - A.temp > 2.5 AND C.temp - B.temp > 2.5 ONCE");
  ASSERT_TRUE(q.ok()) << q.status();
  auto ext = (*tb)->MakeExternalJoin().Execute(*q, 0);
  auto sens = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(ext.ok() && sens.ok()) << sens.status();
  EXPECT_EQ(ext->result.matched_combinations,
            sens->result.matched_combinations);
  EXPECT_EQ(SortedRows(ext->result), SortedRows(sens->result));
}

class PacketSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(PacketSizeTest, ResultsIndependentOfPacketSize) {
  testbed::TestbedParams params = SmallParams(19);
  params.packets.max_packet_bytes = GetParam();
  auto tb = testbed::Testbed::Create(params);
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.2 "
      "AND distance(A.x, A.y, B.x, B.y) > 300 ONCE");
  ASSERT_TRUE(q.ok());
  join::ProtocolConfig config;
  // Dmax must stay below the maximum packet size (Sec. IV-E).
  config.dmax_bytes = std::min(30, GetParam() - 8);
  auto ext = (*tb)->MakeExternalJoin().Execute(*q, 0);
  auto sens = (*tb)->MakeSensJoin(config).Execute(*q, 0);
  ASSERT_TRUE(ext.ok() && sens.ok()) << sens.status();
  EXPECT_EQ(SortedRows(ext->result), SortedRows(sens->result));
  EXPECT_GT(sens->cost.join_packets, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PacketSizeTest,
                         ::testing::Values(24, 48, 124));

TEST(SelectStarTest, AllAttributesArrive) {
  auto tb = testbed::Testbed::Create(SmallParams(23));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT * FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.02 "
      "AND distance(A.x, A.y, B.x, B.y) > 250 ONCE");
  ASSERT_TRUE(q.ok());
  auto ext = (*tb)->MakeExternalJoin().Execute(*q, 0);
  auto sens = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(ext.ok() && sens.ok());
  EXPECT_EQ(SortedRows(ext->result), SortedRows(sens->result));
  // 2 tables x 6 attributes.
  EXPECT_EQ(sens->result.column_labels.size(), 12u);
  for (const auto& row : sens->result.rows) {
    EXPECT_EQ(row.size(), 12u);
  }
}

TEST(EpochIsolationTest, DifferentEpochsSenseDifferentSnapshots) {
  auto tb = testbed::Testbed::Create(SmallParams(29));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT COUNT(*) FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.05 ONCE");
  ASSERT_TRUE(q.ok());
  auto sens = (*tb)->MakeSensJoin();
  auto r0 = sens.Execute(*q, 0);
  auto r0_again = sens.Execute(*q, 0);
  auto r1 = sens.Execute(*q, 1);
  ASSERT_TRUE(r0.ok() && r0_again.ok() && r1.ok());
  // ONCE over the same epoch is deterministic.
  EXPECT_EQ(r0->result.rows[0][0], r0_again->result.rows[0][0]);
  // Fresh epochs see jittered values; the count is extremely unlikely to
  // stay identical for a razor-thin band.
  EXPECT_NE(r0->result.rows[0][0], r1->result.rows[0][0]);
}

TEST(SingleTableTest, ExternalExecutorServesPlainCollectionQueries) {
  // TinyDB-style data collection (no join) runs through the external
  // executor: every node's selected attributes arrive at the base.
  auto tb = testbed::Testbed::Create(SmallParams(37));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT temp, hum FROM sensors WHERE light > 0 ONCE");
  ASSERT_TRUE(q.ok()) << q.status();
  auto r = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(r.ok()) << r.status();
  // One row per node (all nodes pass the trivial selection; base excluded).
  EXPECT_EQ(r->result.rows.size(),
            static_cast<size_t>((*tb)->simulator().num_nodes() - 1));
  EXPECT_EQ(r->result.column_labels.size(), 2u);
}

TEST(DisseminationAccountingTest, QueryFloodIsNotAJoinCost) {
  auto tb = testbed::Testbed::Create(SmallParams(31));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE A.temp = B.temp ONCE");
  ASSERT_TRUE(q.ok());
  (*tb)->DisseminateQuery(*q);
  auto sens = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(sens.ok());
  const auto& sim = (*tb)->simulator();
  EXPECT_GT(sim.packets_sent_by_kind(sim::MessageKind::kQuery), 0u);
  EXPECT_GT(sim.packets_sent_by_kind(sim::MessageKind::kBeacon), 0u);
  // join_packets covers only the three protocol phases.
  EXPECT_EQ(sens->cost.join_packets,
            sens->cost.phases.collection_packets +
                sens->cost.phases.filter_packets +
                sens->cost.phases.final_packets);
}

}  // namespace
}  // namespace sensjoin
