#include "sensjoin/sim/arena.h"

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace sensjoin::sim {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(1024);
  std::vector<std::pair<char*, size_t>> blocks;
  for (size_t bytes : {1u, 7u, 64u, 13u, 256u, 3u}) {
    void* p = arena.Allocate(bytes, 16);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
    std::memset(p, 0xAB, bytes);
    blocks.emplace_back(static_cast<char*>(p), bytes);
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (size_t j = i + 1; j < blocks.size(); ++j) {
      const bool disjoint = blocks[i].first + blocks[i].second <=
                                blocks[j].first ||
                            blocks[j].first + blocks[j].second <=
                                blocks[i].first;
      EXPECT_TRUE(disjoint) << "blocks " << i << " and " << j << " overlap";
    }
  }
  EXPECT_GE(arena.bytes_allocated(), 1u + 7 + 64 + 13 + 256 + 3);
}

TEST(ArenaTest, GrowsBeyondOneChunkAndPointersStayStable) {
  Arena arena(512);
  std::vector<uint64_t*> slots;
  for (uint64_t i = 0; i < 1000; ++i) {
    slots.push_back(arena.New<uint64_t>(i));
  }
  EXPECT_GT(arena.num_chunks(), 1u);
  // Chunks never move: every earlier allocation still holds its value.
  for (uint64_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(*slots[i], i);
  }
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedChunk) {
  Arena arena(512);
  void* big = arena.Allocate(4096);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, 4096);
  // A later small allocation still succeeds and does not overlap.
  void* small = arena.Allocate(64);
  ASSERT_NE(small, nullptr);
  const char* b = static_cast<const char*>(big);
  const char* s = static_cast<const char*>(small);
  EXPECT_TRUE(s + 64 <= b || b + 4096 <= s);
}

TEST(ArenaTest, ResetRetainsReservedMemory) {
  Arena arena(512);
  for (int i = 0; i < 100; ++i) arena.Allocate(64);
  const size_t reserved = arena.bytes_reserved();
  const size_t chunks = arena.num_chunks();
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.num_chunks(), chunks);
  // Post-reset allocations reuse the existing chunks.
  for (int i = 0; i < 100; ++i) arena.Allocate(64);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

struct Tracked {
  static int live;
  int value;
  explicit Tracked(int v) : value(v) { ++live; }
  ~Tracked() { --live; }
};
int Tracked::live = 0;

TEST(ArenaPoolTest, CreateDestroyRecyclesSlots) {
  Arena arena;
  ArenaPool<Tracked> pool(&arena);

  Tracked* a = pool.Create(1);
  Tracked* b = pool.Create(2);
  EXPECT_EQ(Tracked::live, 2);
  EXPECT_EQ(pool.live(), 2u);

  pool.Destroy(a);
  EXPECT_EQ(Tracked::live, 1);
  EXPECT_EQ(pool.free_count(), 1u);

  // The freed slot is reused: no new arena growth in steady state.
  const size_t allocated = arena.bytes_allocated();
  Tracked* c = pool.Create(3);
  EXPECT_EQ(c, a);  // LIFO free list hands back the same storage
  EXPECT_EQ(c->value, 3);
  EXPECT_EQ(arena.bytes_allocated(), allocated);

  pool.Destroy(b);
  pool.Destroy(c);
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.free_count(), 2u);
}

TEST(ArenaPoolTest, SteadyStateChurnsWithoutArenaGrowth) {
  Arena arena;
  ArenaPool<Tracked> pool(&arena);
  std::vector<Tracked*> live;
  for (int i = 0; i < 64; ++i) live.push_back(pool.Create(i));
  const size_t allocated = arena.bytes_allocated();
  // Churn far more objects than the population: every Create after the
  // warm-up is a free-list pop.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 32; ++i) {
      pool.Destroy(live.back());
      live.pop_back();
    }
    for (int i = 0; i < 32; ++i) live.push_back(pool.Create(round + i));
  }
  EXPECT_EQ(arena.bytes_allocated(), allocated);
  for (Tracked* t : live) pool.Destroy(t);
  EXPECT_EQ(Tracked::live, 0);
}

}  // namespace
}  // namespace sensjoin::sim
