#include "sensjoin/query/query.h"

#include <gtest/gtest.h>

#include "sensjoin/data/schema.h"

namespace sensjoin::query {
namespace {

data::Schema MakeSchema() {
  return data::Schema(
      {{"x", 2}, {"y", 2}, {"temp", 2}, {"hum", 2}, {"pres", 2}});
}

TEST(AnalyzeTest, SplitsSelectionsFromJoinPredicates) {
  auto q = AnalyzedQuery::FromString(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 AND A.pres > 1000 AND B.hum <= 40 ONCE",
      MakeSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->num_tables(), 2);
  ASSERT_EQ(q->join_predicates().size(), 1u);
  EXPECT_EQ(q->join_predicates()[0]->ToString(),
            "(abs((A.temp - B.temp)) < 0.3)");
  ASSERT_NE(q->table(0).selection, nullptr);
  EXPECT_EQ(q->table(0).selection->ToString(), "(A.pres > 1000)");
  ASSERT_NE(q->table(1).selection, nullptr);
  EXPECT_EQ(q->table(1).selection->ToString(), "(B.hum <= 40)");
}

TEST(AnalyzeTest, JoinAttributesAreCollectedPerTable) {
  auto q = AnalyzedQuery::FromString(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(A.x, A.y, B.x, B.y) > 100 ONCE",
      MakeSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  // Join attributes: x(0), y(1), temp(2) for both sides.
  EXPECT_EQ(q->table(0).join_attr_indices, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q->table(1).join_attr_indices, (std::vector<int>{0, 1, 2}));
  // Shipped attributes add hum(3).
  EXPECT_EQ(q->table(0).queried_attr_indices, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q->JoinAttrTupleBytes(0), 6);
  EXPECT_EQ(q->QueriedTupleBytes(0), 8);
}

TEST(AnalyzeTest, SelectionOnlyAttributesStayLocal) {
  auto q = AnalyzedQuery::FromString(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE A.temp = B.temp AND A.pres > 1000 ONCE",
      MakeSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  // pres(4) is used only in a pushed-down selection: not shipped.
  EXPECT_EQ(q->table(0).queried_attr_indices, (std::vector<int>{2, 3}));
}

TEST(AnalyzeTest, SelfJoinDetectionAndUnions) {
  auto q = AnalyzedQuery::FromString(
      "SELECT A.hum, B.pres FROM sensors A, sensors B "
      "WHERE A.temp = B.temp ONCE",
      MakeSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->IsSelfJoin());
  EXPECT_EQ(q->RelationNames(), (std::vector<std::string>{"sensors"}));
  EXPECT_EQ(q->TablesOfRelation("sensors"), (std::vector<int>{0, 1}));
  EXPECT_EQ(q->UnionJoinAttrIndices("sensors"), (std::vector<int>{2}));
  // hum from A, pres from B, temp join attr from both.
  EXPECT_EQ(q->UnionQueriedAttrIndices("sensors"),
            (std::vector<int>{2, 3, 4}));
}

TEST(AnalyzeTest, HeterogeneousJoinIsNotSelfJoin) {
  auto q = AnalyzedQuery::FromString(
      "SELECT A.hum, B.hum FROM hot A, cold B WHERE A.temp = B.temp ONCE",
      MakeSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE(q->IsSelfJoin());
  EXPECT_EQ(q->RelationNames(),
            (std::vector<std::string>{"hot", "cold"}));
}

TEST(AnalyzeTest, UnqualifiedRefsResolveWithSingleTable) {
  auto q = AnalyzedQuery::FromString("SELECT temp FROM sensors ONCE",
                                     MakeSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->select()[0].expr->attr_index, 2);
  EXPECT_EQ(q->select()[0].expr->table_index, 0);
}

TEST(AnalyzeTest, ThreeWayJoin) {
  auto q = AnalyzedQuery::FromString(
      "SELECT A.hum, B.hum, C.hum FROM s A, s B, s C "
      "WHERE A.temp = B.temp AND B.temp = C.temp ONCE",
      MakeSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->num_tables(), 3);
  EXPECT_EQ(q->join_predicates().size(), 2u);
}

TEST(AnalyzeTest, DebugStringCoversTheAnalysis) {
  auto q = AnalyzedQuery::FromString(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 AND A.pres > 1000 ONCE",
      MakeSchema());
  ASSERT_TRUE(q.ok());
  const std::string s = q->DebugString();
  EXPECT_NE(s.find("table A = sensors"), std::string::npos);
  EXPECT_NE(s.find("selection: (A.pres > 1000)"), std::string::npos);
  EXPECT_NE(s.find("join-predicate: (abs((A.temp - B.temp)) < 0.3)"),
            std::string::npos);
  EXPECT_NE(s.find("join-attrs: [temp]"), std::string::npos);
  EXPECT_NE(s.find("mode: ONCE"), std::string::npos);
}

TEST(AnalyzeTest, Errors) {
  const data::Schema schema = MakeSchema();
  // Unknown attribute.
  EXPECT_FALSE(
      AnalyzedQuery::FromString("SELECT foo FROM s ONCE", schema).ok());
  // Unknown alias.
  EXPECT_FALSE(AnalyzedQuery::FromString(
                   "SELECT Z.temp FROM s A ONCE", schema).ok());
  // Duplicate alias.
  EXPECT_FALSE(AnalyzedQuery::FromString(
                   "SELECT A.temp FROM s A, t A WHERE A.x = A.y ONCE", schema)
                   .ok());
  // Ambiguous unqualified ref.
  EXPECT_FALSE(AnalyzedQuery::FromString(
                   "SELECT temp FROM s A, s B WHERE A.x = B.x ONCE", schema)
                   .ok());
  // Cross product.
  EXPECT_FALSE(AnalyzedQuery::FromString(
                   "SELECT A.temp FROM s A, s B ONCE", schema).ok());
  // Mixed aggregate and plain items.
  EXPECT_FALSE(AnalyzedQuery::FromString(
                   "SELECT MAX(A.temp), A.hum FROM s A, s B "
                   "WHERE A.temp = B.temp ONCE",
                   schema)
                   .ok());
  // Numeric expression where predicate expected.
  EXPECT_FALSE(AnalyzedQuery::FromString(
                   "SELECT A.hum FROM s A, s B WHERE A.temp + B.temp ONCE",
                   schema)
                   .ok());
  // Predicate in SELECT.
  EXPECT_FALSE(AnalyzedQuery::FromString(
                   "SELECT A.temp > 5 FROM s A, s B WHERE A.x = B.x ONCE",
                   schema)
                   .ok());
  // Wrong function arity.
  EXPECT_FALSE(AnalyzedQuery::FromString(
                   "SELECT abs(A.x, A.y) FROM s A, s B WHERE A.x = B.x ONCE",
                   schema)
                   .ok());
  // Unknown function.
  EXPECT_FALSE(AnalyzedQuery::FromString(
                   "SELECT frob(A.x) FROM s A, s B WHERE A.x = B.x ONCE",
                   schema)
                   .ok());
}

}  // namespace
}  // namespace sensjoin::query
