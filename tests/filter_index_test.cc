#include "sensjoin/join/filter_index.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"
#include "sensjoin/data/schema.h"
#include "sensjoin/join/join_attr_codec.h"
#include "sensjoin/join/join_filter.h"
#include "sensjoin/query/query.h"

namespace sensjoin::join {
namespace {

// Schema: x(0), y(1), temp(2), hum(3).
data::Schema MakeSchema() {
  return data::Schema({{"x", 2}, {"y", 2}, {"temp", 2}, {"hum", 2}});
}

query::AnalyzedQuery MustAnalyze(const std::string& sql) {
  auto q = query::AnalyzedQuery::FromString(sql, MakeSchema());
  SENSJOIN_CHECK(q.ok()) << q.status() << " for " << sql;
  return std::move(q).value();
}

// Quantizes x/y at resolution 4 over [0, 260] and temp at 0.1 over [0, 50].
JoinAttrCodec MakeCodec(int flag_bits) {
  DimensionSpec x;
  x.attr_name = "x";
  x.attr_index = 0;
  x.min_val = 0;
  x.max_val = 260;
  x.resolution = 4;
  DimensionSpec y = x;
  y.attr_name = "y";
  y.attr_index = 1;
  DimensionSpec temp;
  temp.attr_name = "temp";
  temp.attr_index = 2;
  temp.min_val = 0;
  temp.max_val = 50;
  temp.resolution = 0.1;
  auto q = Quantizer::Create({x, y, temp});
  SENSJOIN_CHECK(q.ok()) << q.status();
  return JoinAttrCodec(std::move(q).value(), flag_bits);
}

PointSet RandomCollected(const JoinAttrCodec& codec, int n, int num_relations,
                         Rng* rng) {
  std::vector<uint64_t> keys;
  keys.reserve(n);
  const uint8_t all = static_cast<uint8_t>((1u << num_relations) - 1);
  for (int i = 0; i < n; ++i) {
    const double x = rng->UniformDouble(-10, 270);  // includes out-of-range
    const double y = rng->UniformDouble(-10, 270);
    const double t = rng->UniformDouble(-2, 52);
    const uint8_t flags =
        static_cast<uint8_t>(rng->UniformInt(1, all));  // nonempty membership
    keys.push_back(codec.EncodeTuple({x, y, t}, flags));
  }
  PointSet out = codec.EmptySet();
  out.InsertAll(std::move(keys));
  return out;
}

// The core property: the indexed engine must agree with the exhaustive DFS
// bit for bit — same filter keys and same number of matching combinations —
// on every query it accelerates. Index probes may only shrink
// combinations_evaluated.
void ExpectEquivalent(const query::AnalyzedQuery& q, const JoinAttrCodec& codec,
                      const PointSet& collected, const std::string& label) {
  const FilterJoinResult naive =
      ComputeJoinFilter(q, codec, collected, FilterJoinStrategy::kNaive);
  const FilterJoinResult indexed =
      ComputeJoinFilter(q, codec, collected, FilterJoinStrategy::kIndexed);
  EXPECT_EQ(naive.filter.keys(), indexed.filter.keys()) << label;
  EXPECT_EQ(naive.combinations_matched, indexed.combinations_matched) << label;
  EXPECT_LE(indexed.combinations_evaluated, naive.combinations_evaluated)
      << label;
  const FilterJoinResult aut =
      ComputeJoinFilter(q, codec, collected, FilterJoinStrategy::kAuto);
  EXPECT_EQ(naive.filter.keys(), aut.filter.keys()) << label;
  EXPECT_EQ(naive.combinations_matched, aut.combinations_matched) << label;
}

TEST(FilterIndexTest, BandJoinMatchesNaive) {
  const auto q = MustAnalyze(
      "SELECT A.hum, B.hum FROM s A, s B "
      "WHERE |A.temp - B.temp| < 0.9 ONCE");
  const JoinAttrCodec codec = MakeCodec(1);
  Rng rng(11);
  const PointSet collected = RandomCollected(codec, 80, 1, &rng);
  const FilterJoinResult indexed =
      ComputeJoinFilter(q, codec, collected, FilterJoinStrategy::kIndexed);
  EXPECT_TRUE(indexed.used_index);
  EXPECT_GT(indexed.constraints_extracted, 0u);
  EXPECT_GT(indexed.index_probes, 0u);
  ExpectEquivalent(q, codec, collected, "band");
}

TEST(FilterIndexTest, DistanceJoinMatchesNaive) {
  const auto q = MustAnalyze(
      "SELECT A.hum, B.hum FROM s A, s B "
      "WHERE distance(A.x, A.y, B.x, B.y) < 60 ONCE");
  const JoinAttrCodec codec = MakeCodec(1);
  Rng rng(12);
  const PointSet collected = RandomCollected(codec, 80, 1, &rng);
  const FilterJoinResult indexed =
      ComputeJoinFilter(q, codec, collected, FilterJoinStrategy::kIndexed);
  EXPECT_TRUE(indexed.used_index);
  ExpectEquivalent(q, codec, collected, "distance");
}

TEST(FilterIndexTest, NoExtractableConstraintFallsBackToNaive) {
  // != never yields a range; the planner must extract nothing, kAuto must
  // take the naive engine, and a forced indexed run must still agree.
  const auto q = MustAnalyze(
      "SELECT A.hum FROM s A, s B WHERE A.temp != B.temp ONCE");
  const JoinAttrCodec codec = MakeCodec(1);
  const FilterJoinPlan plan(q, codec);
  EXPECT_FALSE(plan.has_probes());
  EXPECT_EQ(plan.num_constraints(), 0);

  Rng rng(13);
  const PointSet collected = RandomCollected(codec, 50, 1, &rng);
  const FilterJoinResult aut =
      ComputeJoinFilter(q, codec, collected, FilterJoinStrategy::kAuto);
  EXPECT_FALSE(aut.used_index);
  const FilterJoinResult indexed =
      ComputeJoinFilter(q, codec, collected, FilterJoinStrategy::kIndexed);
  EXPECT_FALSE(indexed.used_index);
  EXPECT_EQ(aut.filter.keys(), indexed.filter.keys());
  EXPECT_EQ(aut.combinations_matched, indexed.combinations_matched);
}

TEST(FilterIndexTest, RandomizedQueriesMatchNaive) {
  // Property: over randomized multi-relation queries mixing band, distance,
  // equality, shifted-difference and unextractable predicates, the indexed
  // engine is bit-identical to the exhaustive DFS.
  const std::vector<std::string> pair_preds = {
      "|$L.temp - $R.temp| < 0.9",
      "|$L.temp - $R.temp| < 2.5",
      "$L.temp - $R.temp > 5",
      "$L.temp = $R.temp",
      "distance($L.x, $L.y, $R.x, $R.y) < 50",
      "distance($L.x, $L.y, $R.x, $R.y) < 120",
      "distance($L.x, $L.y, $R.x, $R.y) > 150",
      "$L.temp != $R.temp",
      "$L.x + 2 * $R.x < 300",
  };
  auto instantiate = [](std::string tmpl, const std::string& l,
                        const std::string& r) {
    for (std::string::size_type p; (p = tmpl.find("$L")) != std::string::npos;)
      tmpl.replace(p, 2, l);
    for (std::string::size_type p; (p = tmpl.find("$R")) != std::string::npos;)
      tmpl.replace(p, 2, r);
    return tmpl;
  };

  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    const int num_tables = static_cast<int>(rng.UniformInt(2, 3));
    const bool self_join = rng.NextBool(0.5);
    const std::vector<std::string> names = {"A", "B", "C"};
    std::string from;
    for (int t = 0; t < num_tables; ++t) {
      if (t > 0) from += ", ";
      from += (self_join ? "s " : "r" + std::to_string(t) + " ") + names[t];
    }
    // Chain consecutive tables, then sprinkle extra predicates.
    std::string where;
    for (int t = 0; t + 1 < num_tables; ++t) {
      if (t > 0) where += " AND ";
      where += instantiate(
          pair_preds[rng.UniformInt(0, pair_preds.size() - 1)], names[t],
          names[t + 1]);
    }
    const int extras = static_cast<int>(rng.UniformInt(0, 2));
    for (int e = 0; e < extras; ++e) {
      const int l = static_cast<int>(rng.UniformInt(0, num_tables - 1));
      const int r = static_cast<int>(rng.UniformInt(0, num_tables - 1));
      if (l == r) continue;
      where += " AND " + instantiate(
                             pair_preds[rng.UniformInt(0, pair_preds.size() - 1)],
                             names[l], names[r]);
    }
    const std::string sql =
        "SELECT A.hum FROM " + from + " WHERE " + where + " ONCE";
    const auto q = MustAnalyze(sql);
    const JoinAttrCodec codec = MakeCodec(self_join ? 1 : num_tables);
    // Keep 3-way joins small; the naive engine is cubic.
    const int n = num_tables == 3 ? 30 : 70;
    const PointSet collected =
        RandomCollected(codec, n, self_join ? 1 : num_tables, &rng);
    ExpectEquivalent(q, codec, collected, sql);
  }
}

TEST(FilterIndexTest, PlanOrdersTablesAndExtractsConstraints) {
  const auto q = MustAnalyze(
      "SELECT A.hum FROM s A, s B, s C "
      "WHERE |A.temp - B.temp| < 0.5 "
      "AND distance(B.x, B.y, C.x, C.y) < 60 ONCE");
  const JoinAttrCodec codec = MakeCodec(1);
  const FilterJoinPlan plan(q, codec);
  ASSERT_EQ(plan.levels().size(), 3u);
  EXPECT_TRUE(plan.has_probes());
  // The temp band gives one probe; the distance predicate gives a box (two
  // probes) once both of its tables are placed.
  EXPECT_GE(plan.num_constraints(), 2);
  // Every predicate is scheduled exactly once.
  size_t preds = 0;
  for (const auto& level : plan.levels()) preds += level.preds.size();
  EXPECT_EQ(preds, 2u);
  // Level 0 never has probes (nothing to probe against yet).
  EXPECT_TRUE(plan.levels()[0].probes.empty());
}

}  // namespace
}  // namespace sensjoin::join
