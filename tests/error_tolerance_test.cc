// Sec. IV-F: link failures during an execution are handled by letting the
// tree protocol re-establish routes and re-executing the query.

#include <tuple>

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin {
namespace {

testbed::TestbedParams SmallParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 250;
  params.placement.area_width_m = 450;
  params.placement.area_height_m = 450;
  params.seed = seed;
  return params;
}

const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 450 ONCE";

/// Fails a deep tree link (if redundancy allows) and checks the executor
/// retries to a correct result.
TEST(ErrorToleranceTest, SensJoinRetriesAfterLinkFailure) {
  auto tb = testbed::Testbed::Create(SmallParams(11));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());

  // Ground truth before any failure.
  auto ext = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(ext.ok());

  // Break the link from a mid-tree node to its parent. The node has other
  // in-range neighbors, so CTP repair can reroute.
  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId victim = sim::kInvalidNode;
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 5 &&
        (*tb)->simulator().radio().Neighbors(u).size() >= 3) {
      victim = u;
      break;
    }
  }
  ASSERT_NE(victim, sim::kInvalidNode);
  (*tb)->simulator().radio().FailLink(victim, tree.parent(victim));

  auto sens = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(sens.ok()) << sens.status();
  EXPECT_GE(sens->attempts, 2);
  EXPECT_EQ(sens->result.matched_combinations,
            ext->result.matched_combinations);
}

TEST(ErrorToleranceTest, ExternalJoinRetriesAfterLinkFailure) {
  auto tb = testbed::Testbed::Create(SmallParams(12));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  auto clean = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(clean.ok());

  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId victim = sim::kInvalidNode;
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 5 &&
        (*tb)->simulator().radio().Neighbors(u).size() >= 3) {
      victim = u;
      break;
    }
  }
  ASSERT_NE(victim, sim::kInvalidNode);
  (*tb)->simulator().radio().FailLink(victim, tree.parent(victim));

  auto retried = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_GE(retried->attempts, 2);
  EXPECT_EQ(retried->result.matched_combinations,
            clean->result.matched_combinations);
}

TEST(ErrorToleranceTest, PartitionedNetworkEventuallyErrorsOut) {
  // Three nodes in a chain; cutting both links to the base isolates them.
  testbed::TestbedParams params = SmallParams(13);
  params.placement.num_nodes = 12;
  params.placement.area_width_m = 120;
  params.placement.area_height_m = 120;
  auto tb = testbed::Testbed::Create(params);
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  // Sever every link of the base station.
  auto& radio = (*tb)->simulator().radio();
  for (sim::NodeId nb : radio.Neighbors(0)) radio.FailLink(0, nb);

  join::ProtocolConfig config;
  config.max_retries = 2;
  auto r = (*tb)->MakeSensJoin(config).Execute(*q, 0);
  // Either the whole network is unreachable (empty execution succeeds with
  // nothing collected) or the executor reports exhaustion; both are
  // acceptable terminal states, but it must not hang or crash.
  if (r.ok()) {
    EXPECT_EQ(r->collected_points, 0u);
  } else {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(ErrorToleranceTest, SnapshotIsStableAcrossRetries) {
  // ONCE semantics survive re-execution: the retried run reads the same
  // snapshot (epoch), so results equal the unfailed run exactly.
  auto tb = testbed::Testbed::Create(SmallParams(14));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  auto before = (*tb)->MakeSensJoin().Execute(*q, 7);
  ASSERT_TRUE(before.ok());

  const net::RoutingTree& tree = (*tb)->tree();
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 3 &&
        (*tb)->simulator().radio().Neighbors(u).size() >= 3) {
      (*tb)->simulator().radio().FailLink(u, tree.parent(u));
      break;
    }
  }
  auto after = (*tb)->MakeSensJoin().Execute(*q, 7);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(before->result.matched_combinations,
            after->result.matched_combinations);
  EXPECT_EQ(before->result.contributing_nodes,
            after->result.contributing_nodes);
}

TEST(ErrorToleranceTest, NodeDeathDropsOnlyThatNodesData) {
  // A node dies after the tree is built. The execution fails over it, the
  // repaired tree excludes it, and the query completes without its tuple
  // (data loss is acceptable per Sec. IV-F; correctness for the remaining
  // nodes is not).
  auto tb = testbed::Testbed::Create(SmallParams(15));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());

  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId victim = sim::kInvalidNode;
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 4) {
      victim = u;
      break;
    }
  }
  ASSERT_NE(victim, sim::kInvalidNode);
  (*tb)->simulator().set_alive(victim, false);

  auto report = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(report.ok()) << report.status();
  for (sim::NodeId n : report->result.contributing_nodes) {
    EXPECT_NE(n, victim);
  }

  // Ground truth without the victim: restrict membership explicitly.
  std::vector<sim::NodeId> survivors;
  for (int i = 1; i < (*tb)->data().num_nodes(); ++i) {
    if (i != victim) survivors.push_back(i);
  }
  (*tb)->data().AssignRelation("sensors", survivors);
  auto expected = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(report->result.matched_combinations,
            expected->result.matched_combinations);
}

TEST(ErrorToleranceTest, DeadLeafIsSimplySkipped) {
  auto tb = testbed::Testbed::Create(SmallParams(16));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  // Kill a leaf: its first failed transmission triggers one re-execution,
  // after which the repaired tree simply excludes it.
  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId leaf = sim::kInvalidNode;
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.IsLeaf(u)) {
      leaf = u;
      break;
    }
  }
  ASSERT_NE(leaf, sim::kInvalidNode);
  (*tb)->simulator().set_alive(leaf, false);
  auto report = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->attempts, 2);
  for (sim::NodeId n : report->result.contributing_nodes) {
    EXPECT_NE(n, leaf);
  }
}

/// Config used by the fault-injection tests: generous re-execution budget
/// and a real inter-attempt backoff so scheduled recovery events can fire
/// between attempts.
join::ProtocolConfig FaultyConfig() {
  join::ProtocolConfig config;
  config.max_retries = 6;
  config.retry_backoff_s = 1.0;
  return config;
}

sim::FaultPlan LossyPlan(double loss_rate, uint64_t seed) {
  sim::FaultPlan plan;
  plan.default_loss_rate = loss_rate;
  plan.arq.enabled = true;
  plan.arq.max_retransmissions = 6;
  plan.seed = seed;
  return plan;
}

/// Acceptance scenario: ambient loss >= 10% plus a node that crashes
/// mid-execution and later reboots. With ARQ and phase-level recovery the
/// run must converge to exactly the fault-free result set, with the
/// retransmission overhead itemized -- on more than one deployment seed.
TEST(ErrorToleranceTest, LossyRunWithCrashMatchesFaultFreeResult) {
  for (uint64_t seed : {21u, 22u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    // Fault-free ground truth on an untouched twin deployment.
    auto clean_tb = testbed::Testbed::Create(SmallParams(seed));
    ASSERT_TRUE(clean_tb.ok());
    auto cq = (*clean_tb)->ParseQuery(kQuery);
    ASSERT_TRUE(cq.ok());
    auto truth = (*clean_tb)->MakeExternalJoin().Execute(*cq, 0);
    ASSERT_TRUE(truth.ok());

    auto tb = testbed::Testbed::Create(SmallParams(seed));
    ASSERT_TRUE(tb.ok());
    auto q = (*tb)->ParseQuery(kQuery);
    ASSERT_TRUE(q.ok());

    const net::RoutingTree& tree = (*tb)->tree();
    sim::NodeId victim = sim::kInvalidNode;
    for (sim::NodeId u : tree.collection_order()) {
      if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 3) {
        victim = u;
        break;
      }
    }
    ASSERT_NE(victim, sim::kInvalidNode);

    (*tb)->InjectFaults(LossyPlan(0.10, seed * 97));
    // Crash the victim the instant the Join-Attribute-Collection traffic
    // starts (between transmissions -- the finest granularity at which the
    // synchronous protocol can observe a fault) and schedule its reboot
    // through the event queue; the recovery event fires once the failed
    // attempt drains, so the re-execution sees the node back up.
    sim::Simulator& sim = (*tb)->simulator();
    bool crashed = false;
    sim.SetTraceSink([&sim, &crashed, victim](const sim::TraceRecord& r) {
      if (!crashed && r.kind == sim::MessageKind::kCollection) {
        crashed = true;
        sim.set_alive(victim, false);
        sim.ScheduleRecovery(victim, sim.now() + 0.25);
      }
    });

    auto report = (*tb)->MakeSensJoin(FaultyConfig()).Execute(*q, 0);
    ASSERT_TRUE(report.ok()) << report.status();
    // The crash forced at least one re-execution; the reboot let the
    // victim rejoin, so nothing is missing from the result.
    EXPECT_GE(report->attempts, 2);
    EXPECT_EQ(report->result.rows.size(), truth->result.rows.size());
    EXPECT_DOUBLE_EQ(
        testbed::ResultCompleteness(truth->result, report->result), 1.0);
    // ARQ paid for the 10% loss, and the report itemizes it.
    EXPECT_GT(report->cost.retransmitted_packets, 0u);
    EXPECT_GT(report->cost.retransmit_energy_mj, 0.0);
    EXPECT_GT(report->cost.ack_packets, 0u);
  }
}

TEST(ErrorToleranceTest, NodeCrashDuringFilterDisseminationIsSurvived) {
  auto tb = testbed::Testbed::Create(SmallParams(18));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());

  // Fault-free run first: its contributors tell us which subtrees carry
  // post-filter traffic, so the crash is guaranteed to be observable.
  auto clean = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(clean.ok());
  ASSERT_FALSE(clean->result.contributing_nodes.empty());

  // Victim: a mid-tree ancestor of some contributor.
  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId victim = sim::kInvalidNode;
  for (sim::NodeId c : clean->result.contributing_nodes) {
    for (sim::NodeId p = tree.parent(c);
         p != sim::kInvalidNode && tree.hop_count(p) >= 2;
         p = tree.parent(p)) {
      victim = p;
    }
    if (victim != sim::kInvalidNode) break;
  }
  ASSERT_NE(victim, sim::kInvalidNode);

  // Kill the victim the instant the Filter-Dissemination phase starts (its
  // first broadcast is the root's, before the victim's parent transmits).
  sim::Simulator& sim = (*tb)->simulator();
  bool crashed = false;
  sim.SetTraceSink([&sim, &crashed, victim](const sim::TraceRecord& r) {
    if (!crashed && r.kind == sim::MessageKind::kFilter) {
      crashed = true;
      sim.set_alive(victim, false);
    }
  });

  auto report = (*tb)->MakeSensJoin(FaultyConfig()).Execute(*q, 0);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->attempts, 2);  // mid-phase death forces a re-execution
  // Everyone but the (permanently dead) victim still contributes.
  std::vector<sim::NodeId> expected;
  for (sim::NodeId n : clean->result.contributing_nodes) {
    if (n != victim) expected.push_back(n);
  }
  EXPECT_EQ(report->result.contributing_nodes, expected);
}

TEST(ErrorToleranceTest, CompletenessStaysHighAcrossLossRates) {
  auto clean_tb = testbed::Testbed::Create(SmallParams(19));
  ASSERT_TRUE(clean_tb.ok());
  auto cq = (*clean_tb)->ParseQuery(kQuery);
  ASSERT_TRUE(cq.ok());
  auto truth = (*clean_tb)->MakeExternalJoin().Execute(*cq, 0);
  ASSERT_TRUE(truth.ok());

  for (double loss : {0.05, 0.10, 0.20}) {
    SCOPED_TRACE(::testing::Message() << "loss " << loss);
    auto tb = testbed::Testbed::Create(SmallParams(19));
    ASSERT_TRUE(tb.ok());
    (*tb)->InjectFaults(LossyPlan(loss, 1234));
    auto q = (*tb)->ParseQuery(kQuery);
    ASSERT_TRUE(q.ok());
    auto report = (*tb)->MakeSensJoin(FaultyConfig()).Execute(*q, 0);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_GE(testbed::ResultCompleteness(truth->result, report->result),
              0.95);
  }
}

TEST(ErrorToleranceTest, LossyRunIsDeterministicUnderAFixedSeed) {
  auto run = [] {
    auto tb = testbed::Testbed::Create(SmallParams(20));
    SENSJOIN_CHECK(tb.ok());
    (*tb)->InjectFaults(LossyPlan(0.15, 777));
    auto q = (*tb)->ParseQuery(kQuery);
    SENSJOIN_CHECK(q.ok());
    auto report = (*tb)->MakeSensJoin(FaultyConfig()).Execute(*q, 0);
    SENSJOIN_CHECK(report.ok()) << report.status();
    return std::make_tuple(report->result.rows, report->cost.join_packets,
                           report->cost.retransmitted_packets,
                           report->cost.ack_packets, report->attempts,
                           report->recovery_requests);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sensjoin
