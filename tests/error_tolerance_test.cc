// Sec. IV-F: link failures during an execution are handled by letting the
// tree protocol re-establish routes and re-executing the query.

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin {
namespace {

testbed::TestbedParams SmallParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 250;
  params.placement.area_width_m = 450;
  params.placement.area_height_m = 450;
  params.seed = seed;
  return params;
}

const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 450 ONCE";

/// Fails a deep tree link (if redundancy allows) and checks the executor
/// retries to a correct result.
TEST(ErrorToleranceTest, SensJoinRetriesAfterLinkFailure) {
  auto tb = testbed::Testbed::Create(SmallParams(11));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());

  // Ground truth before any failure.
  auto ext = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(ext.ok());

  // Break the link from a mid-tree node to its parent. The node has other
  // in-range neighbors, so CTP repair can reroute.
  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId victim = sim::kInvalidNode;
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 5 &&
        (*tb)->simulator().radio().Neighbors(u).size() >= 3) {
      victim = u;
      break;
    }
  }
  ASSERT_NE(victim, sim::kInvalidNode);
  (*tb)->simulator().radio().FailLink(victim, tree.parent(victim));

  auto sens = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(sens.ok()) << sens.status();
  EXPECT_GE(sens->attempts, 2);
  EXPECT_EQ(sens->result.matched_combinations,
            ext->result.matched_combinations);
}

TEST(ErrorToleranceTest, ExternalJoinRetriesAfterLinkFailure) {
  auto tb = testbed::Testbed::Create(SmallParams(12));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  auto clean = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(clean.ok());

  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId victim = sim::kInvalidNode;
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 5 &&
        (*tb)->simulator().radio().Neighbors(u).size() >= 3) {
      victim = u;
      break;
    }
  }
  ASSERT_NE(victim, sim::kInvalidNode);
  (*tb)->simulator().radio().FailLink(victim, tree.parent(victim));

  auto retried = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_GE(retried->attempts, 2);
  EXPECT_EQ(retried->result.matched_combinations,
            clean->result.matched_combinations);
}

TEST(ErrorToleranceTest, PartitionedNetworkEventuallyErrorsOut) {
  // Three nodes in a chain; cutting both links to the base isolates them.
  testbed::TestbedParams params = SmallParams(13);
  params.placement.num_nodes = 12;
  params.placement.area_width_m = 120;
  params.placement.area_height_m = 120;
  auto tb = testbed::Testbed::Create(params);
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  // Sever every link of the base station.
  auto& radio = (*tb)->simulator().radio();
  for (sim::NodeId nb : radio.Neighbors(0)) radio.FailLink(0, nb);

  join::ProtocolConfig config;
  config.max_retries = 2;
  auto r = (*tb)->MakeSensJoin(config).Execute(*q, 0);
  // Either the whole network is unreachable (empty execution succeeds with
  // nothing collected) or the executor reports exhaustion; both are
  // acceptable terminal states, but it must not hang or crash.
  if (r.ok()) {
    EXPECT_EQ(r->collected_points, 0u);
  } else {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(ErrorToleranceTest, SnapshotIsStableAcrossRetries) {
  // ONCE semantics survive re-execution: the retried run reads the same
  // snapshot (epoch), so results equal the unfailed run exactly.
  auto tb = testbed::Testbed::Create(SmallParams(14));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  auto before = (*tb)->MakeSensJoin().Execute(*q, 7);
  ASSERT_TRUE(before.ok());

  const net::RoutingTree& tree = (*tb)->tree();
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 3 &&
        (*tb)->simulator().radio().Neighbors(u).size() >= 3) {
      (*tb)->simulator().radio().FailLink(u, tree.parent(u));
      break;
    }
  }
  auto after = (*tb)->MakeSensJoin().Execute(*q, 7);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(before->result.matched_combinations,
            after->result.matched_combinations);
  EXPECT_EQ(before->result.contributing_nodes,
            after->result.contributing_nodes);
}

TEST(ErrorToleranceTest, NodeDeathDropsOnlyThatNodesData) {
  // A node dies after the tree is built. The execution fails over it, the
  // repaired tree excludes it, and the query completes without its tuple
  // (data loss is acceptable per Sec. IV-F; correctness for the remaining
  // nodes is not).
  auto tb = testbed::Testbed::Create(SmallParams(15));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());

  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId victim = sim::kInvalidNode;
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 4) {
      victim = u;
      break;
    }
  }
  ASSERT_NE(victim, sim::kInvalidNode);
  (*tb)->simulator().node(victim).alive = false;

  auto report = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(report.ok()) << report.status();
  for (sim::NodeId n : report->result.contributing_nodes) {
    EXPECT_NE(n, victim);
  }

  // Ground truth without the victim: restrict membership explicitly.
  std::vector<sim::NodeId> survivors;
  for (int i = 1; i < (*tb)->data().num_nodes(); ++i) {
    if (i != victim) survivors.push_back(i);
  }
  (*tb)->data().AssignRelation("sensors", survivors);
  auto expected = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(report->result.matched_combinations,
            expected->result.matched_combinations);
}

TEST(ErrorToleranceTest, DeadLeafIsSimplySkipped) {
  auto tb = testbed::Testbed::Create(SmallParams(16));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  // Kill a leaf: its first failed transmission triggers one re-execution,
  // after which the repaired tree simply excludes it.
  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId leaf = sim::kInvalidNode;
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.IsLeaf(u)) {
      leaf = u;
      break;
    }
  }
  ASSERT_NE(leaf, sim::kInvalidNode);
  (*tb)->simulator().node(leaf).alive = false;
  auto report = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->attempts, 2);
  for (sim::NodeId n : report->result.contributing_nodes) {
    EXPECT_NE(n, leaf);
  }
}

}  // namespace
}  // namespace sensjoin
