#include "sensjoin/sim/simulator.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/geometry.h"

namespace sensjoin::sim {
namespace {

Simulator MakeChain() {
  // 0 - 1 - 2 chain, range 50.
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}};
  return Simulator(Radio(pos, 50.0));
}

TEST(PacketizationTest, FragmentCounts) {
  PacketizationParams p;  // 48-byte packets, 8-byte header -> 40 payload
  EXPECT_EQ(p.payload_capacity(), 40);
  EXPECT_EQ(NumFragments(0, p), 1);   // pure signal still costs a packet
  EXPECT_EQ(NumFragments(1, p), 1);
  EXPECT_EQ(NumFragments(40, p), 1);
  EXPECT_EQ(NumFragments(41, p), 2);
  EXPECT_EQ(NumFragments(80, p), 2);
  EXPECT_EQ(NumFragments(81, p), 3);
}

TEST(PacketizationTest, LargerPacketsReduceFragments) {
  PacketizationParams big;
  big.max_packet_bytes = 124;
  EXPECT_EQ(NumFragments(200, big), 2);
  PacketizationParams small;
  EXPECT_EQ(NumFragments(200, small), 5);
}

TEST(SimulatorTest, UnicastAccountsTxAndRx) {
  Simulator sim = MakeChain();
  Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.kind = MessageKind::kFinal;
  msg.payload_bytes = 100;  // 3 fragments of 40
  EXPECT_TRUE(sim.SendUnicast(msg));
  sim.events().Run();
  EXPECT_EQ(sim.stats(0).packets_sent, 3u);
  EXPECT_EQ(sim.stats(1).packets_received, 3u);
  EXPECT_EQ(sim.stats(0).bytes_sent, 100u + 3 * 8u);
  EXPECT_EQ(sim.total_packets_sent(), 3u);
  EXPECT_EQ(sim.packets_sent_by_kind(MessageKind::kFinal), 3u);
  EXPECT_EQ(sim.packets_sent_by_kind(MessageKind::kCollection), 0u);
  EXPECT_GT(sim.total_energy_mj(), 0.0);
}

TEST(SimulatorTest, UnicastOutOfRangeCountsTxOnly) {
  Simulator sim = MakeChain();
  Message msg;
  msg.src = 0;
  msg.dst = 2;  // out of range
  msg.payload_bytes = 10;
  EXPECT_FALSE(sim.SendUnicast(msg));
  EXPECT_EQ(sim.stats(0).packets_sent, 1u);
  EXPECT_EQ(sim.stats(2).packets_received, 0u);
}

TEST(SimulatorTest, UnicastOverFailedLinkIsLost) {
  Simulator sim = MakeChain();
  sim.radio().FailLink(0, 1);
  Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.payload_bytes = 10;
  EXPECT_FALSE(sim.SendUnicast(msg));
  EXPECT_EQ(sim.stats(0).packets_sent, 1u);  // tx cost still paid
  EXPECT_EQ(sim.stats(1).packets_received, 0u);
}

TEST(SimulatorTest, DeadNodesNeitherSendNorReceive) {
  Simulator sim = MakeChain();
  sim.set_alive(1, false);
  Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.payload_bytes = 10;
  EXPECT_FALSE(sim.SendUnicast(msg));
  EXPECT_EQ(sim.stats(1).packets_received, 0u);

  Message from_dead;
  from_dead.src = 1;
  from_dead.dst = 0;
  from_dead.payload_bytes = 10;
  EXPECT_FALSE(sim.SendUnicast(from_dead));
  EXPECT_EQ(sim.stats(1).packets_sent, 0u);
}

TEST(SimulatorTest, BroadcastIsOneTransmissionManyReceivers) {
  Simulator sim = MakeChain();
  Message msg;
  msg.src = 1;  // neighbors: 0 and 2
  msg.kind = MessageKind::kQuery;
  msg.payload_bytes = 10;
  EXPECT_EQ(sim.Broadcast(msg), 2);
  EXPECT_EQ(sim.stats(1).packets_sent, 1u);
  EXPECT_EQ(sim.stats(0).packets_received, 1u);
  EXPECT_EQ(sim.stats(2).packets_received, 1u);
}

TEST(SimulatorTest, MessageDeliveryInvokesHandlerWithContent) {
  Simulator sim = MakeChain();
  std::string received;
  NodeId receiver = kInvalidNode;
  sim.SetReceiveHandler([&](NodeId who, const Message& m) {
    receiver = who;
    received = std::any_cast<std::string>(m.content);
  });
  Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.payload_bytes = 5;
  msg.content = std::string("hello");
  sim.SendUnicast(std::move(msg));
  sim.events().Run();
  EXPECT_EQ(receiver, 1);
  EXPECT_EQ(received, "hello");
}

TEST(SimulatorTest, DeliveryLatencyScalesWithFragments) {
  Simulator sim = MakeChain();
  sim.set_per_packet_latency_s(0.01);
  double delivered_at = -1;
  sim.SetReceiveHandler(
      [&](NodeId, const Message&) { delivered_at = sim.now(); });
  Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.payload_bytes = 100;  // 3 fragments
  sim.SendUnicast(std::move(msg));
  sim.events().Run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.03);
}

TEST(SimulatorTest, ResetStatsClearsEverything) {
  Simulator sim = MakeChain();
  Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.payload_bytes = 10;
  sim.SendUnicast(msg);
  sim.ResetStats();
  EXPECT_EQ(sim.total_packets_sent(), 0u);
  EXPECT_EQ(sim.total_bytes_sent(), 0u);
  EXPECT_EQ(sim.total_energy_mj(), 0.0);
  EXPECT_EQ(sim.stats(0).packets_sent, 0u);
}

TEST(EnergyModelTest, CostsAreLinear) {
  EnergyModel em;
  EXPECT_DOUBLE_EQ(em.TxCost(2, 100),
                   2 * em.tx_per_packet_mj + 100 * em.tx_per_byte_mj);
  EXPECT_DOUBLE_EQ(em.RxCost(1, 48),
                   em.rx_per_packet_mj + 48 * em.rx_per_byte_mj);
}

}  // namespace
}  // namespace sensjoin::sim
