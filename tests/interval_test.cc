#include "sensjoin/query/interval.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"

namespace sensjoin::query {
namespace {

TEST(IntervalTest, BasicArithmetic) {
  const Interval a{1, 2};
  const Interval b{-3, 5};
  EXPECT_EQ(Add(a, b), (Interval{-2, 7}));
  EXPECT_EQ(Sub(a, b), (Interval{-4, 5}));
  EXPECT_EQ(Neg(a), (Interval{-2, -1}));
  EXPECT_EQ(Mul(a, b), (Interval{-6, 10}));
}

TEST(IntervalTest, MulSignCombinations) {
  EXPECT_EQ(Mul({-2, -1}, {-3, -2}), (Interval{2, 6}));
  EXPECT_EQ(Mul({-2, 3}, {-1, 4}), (Interval{-8, 12}));
}

TEST(IntervalTest, DivisionByZeroStraddlingIsWide) {
  const Interval r = Div({1, 2}, {-1, 1});
  EXPECT_TRUE(std::isinf(r.lo));
  EXPECT_TRUE(std::isinf(r.hi));
  EXPECT_EQ(Div({4, 8}, {2, 4}), (Interval{1, 4}));
}

TEST(IntervalTest, AbsCases) {
  EXPECT_EQ(Abs({2, 5}), (Interval{2, 5}));
  EXPECT_EQ(Abs({-5, -2}), (Interval{2, 5}));
  EXPECT_EQ(Abs({-3, 2}), (Interval{0, 3}));
}

TEST(IntervalTest, SqrtClampsNegative) {
  EXPECT_EQ(Sqrt({4, 9}), (Interval{2, 3}));
  EXPECT_EQ(Sqrt({-4, 9}), (Interval{0, 3}));
  EXPECT_EQ(Sqrt({-4, -1}), (Interval{0, 0}));
}

TEST(IntervalTest, MinMaxHull) {
  EXPECT_EQ(Min({1, 5}, {2, 3}), (Interval{1, 3}));
  EXPECT_EQ(Max({1, 5}, {2, 3}), (Interval{2, 5}));
  EXPECT_EQ(Hull({1, 2}, {5, 6}), (Interval{1, 6}));
}

TEST(TriLogicTest, Comparisons) {
  EXPECT_EQ(Lt({1, 2}, {3, 4}), Tri::kTrue);
  EXPECT_EQ(Lt({3, 4}, {1, 2}), Tri::kFalse);
  EXPECT_EQ(Lt({1, 3}, {2, 4}), Tri::kMaybe);
  EXPECT_EQ(Lt({1, 2}, {2, 3}), Tri::kMaybe);  // touching endpoints
  EXPECT_EQ(Le({1, 2}, {2, 3}), Tri::kTrue);
  EXPECT_EQ(Eq({1, 1}, {1, 1}), Tri::kTrue);
  EXPECT_EQ(Eq({1, 2}, {3, 4}), Tri::kFalse);
  EXPECT_EQ(Eq({1, 2}, {2, 3}), Tri::kMaybe);
  EXPECT_EQ(Ne({1, 2}, {3, 4}), Tri::kTrue);
  EXPECT_EQ(Ne({1, 1}, {1, 1}), Tri::kFalse);
}

TEST(TriLogicTest, AndOrNotTables) {
  EXPECT_EQ(And(Tri::kTrue, Tri::kTrue), Tri::kTrue);
  EXPECT_EQ(And(Tri::kTrue, Tri::kMaybe), Tri::kMaybe);
  EXPECT_EQ(And(Tri::kMaybe, Tri::kFalse), Tri::kFalse);
  EXPECT_EQ(Or(Tri::kFalse, Tri::kFalse), Tri::kFalse);
  EXPECT_EQ(Or(Tri::kMaybe, Tri::kFalse), Tri::kMaybe);
  EXPECT_EQ(Or(Tri::kMaybe, Tri::kTrue), Tri::kTrue);
  EXPECT_EQ(Not(Tri::kTrue), Tri::kFalse);
  EXPECT_EQ(Not(Tri::kFalse), Tri::kTrue);
  EXPECT_EQ(Not(Tri::kMaybe), Tri::kMaybe);
  EXPECT_TRUE(MaybeTrue(Tri::kMaybe));
  EXPECT_TRUE(MaybeTrue(Tri::kTrue));
  EXPECT_FALSE(MaybeTrue(Tri::kFalse));
}

/// Property: for random intervals and random points inside them, the result
/// of each interval operation contains the pointwise result.
class IntervalInclusionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalInclusionTest, OperationsAreOutwardConservative) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    auto random_interval = [&] {
      const double a = rng.UniformDouble(-10, 10);
      const double b = rng.UniformDouble(-10, 10);
      return Interval{std::min(a, b), std::max(a, b)};
    };
    const Interval ia = random_interval();
    const Interval ib = random_interval();
    const double x = rng.UniformDouble(ia.lo, ia.hi);
    const double y = rng.UniformDouble(ib.lo, ib.hi);

    EXPECT_TRUE(Add(ia, ib).Contains(x + y));
    EXPECT_TRUE(Sub(ia, ib).Contains(x - y));
    EXPECT_TRUE(Mul(ia, ib).Contains(x * y));
    if (y != 0.0) {
      EXPECT_TRUE(Div(ia, ib).Contains(x / y));
    }
    EXPECT_TRUE(Abs(ia).Contains(std::abs(x)));
    EXPECT_TRUE(Neg(ia).Contains(-x));
    if (x >= 0) {
      EXPECT_TRUE(Sqrt(ia).Contains(std::sqrt(x)));
    }
    EXPECT_TRUE(Min(ia, ib).Contains(std::min(x, y)));
    EXPECT_TRUE(Max(ia, ib).Contains(std::max(x, y)));

    // Comparisons: a definitive answer must match the pointwise result.
    if (Lt(ia, ib) == Tri::kTrue) {
      EXPECT_LT(x, y);
    }
    if (Lt(ia, ib) == Tri::kFalse) {
      EXPECT_GE(x, y);
    }
    if (Le(ia, ib) == Tri::kTrue) {
      EXPECT_LE(x, y);
    }
    if (Ge(ia, ib) == Tri::kTrue) {
      EXPECT_GE(x, y);
    }
    if (Eq(ia, ib) == Tri::kFalse) {
      EXPECT_NE(x, y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalInclusionTest,
                         ::testing::Values(3, 14, 159, 265));

}  // namespace
}  // namespace sensjoin::query
