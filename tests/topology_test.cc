#include "sensjoin/net/topology.h"

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"
#include "sensjoin/sim/radio.h"

namespace sensjoin::net {
namespace {

TEST(TopologyTest, GeneratesConnectedPlacement) {
  Rng rng(1);
  PlacementParams params;
  params.num_nodes = 500;
  params.area_width_m = 600;
  params.area_height_m = 600;
  auto placement = GenerateConnectedPlacement(params, rng);
  ASSERT_TRUE(placement.ok()) << placement.status();
  EXPECT_EQ(placement->positions.size(), 500u);
  sim::Radio radio(placement->positions, params.range_m);
  EXPECT_TRUE(radio.IsConnected(placement->base_station_id()));
}

TEST(TopologyTest, AllPositionsInsideArea) {
  Rng rng(2);
  PlacementParams params;
  params.num_nodes = 300;
  params.area_width_m = 400;
  params.area_height_m = 250;
  auto placement = GenerateConnectedPlacement(params, rng);
  ASSERT_TRUE(placement.ok());
  for (const Point& p : placement->positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, params.area_width_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, params.area_height_m);
  }
}

TEST(TopologyTest, BaseStationPlacementModes) {
  Rng rng(3);
  PlacementParams corner;
  corner.num_nodes = 100;
  corner.area_width_m = 300;
  corner.area_height_m = 300;
  corner.base_station = BaseStationPlacement::kCorner;
  auto p1 = GenerateConnectedPlacement(corner, rng);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1->positions[0].x, 0.0);
  EXPECT_EQ(p1->positions[0].y, 0.0);

  PlacementParams center = corner;
  center.base_station = BaseStationPlacement::kCenter;
  auto p2 = GenerateConnectedPlacement(center, rng);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->positions[0].x, 150.0);
  EXPECT_EQ(p2->positions[0].y, 150.0);
}

TEST(TopologyTest, SameSeedSamePlacement) {
  PlacementParams params;
  params.num_nodes = 200;
  params.area_width_m = 400;
  params.area_height_m = 400;
  Rng rng1(7);
  Rng rng2(7);
  auto p1 = GenerateConnectedPlacement(params, rng1);
  auto p2 = GenerateConnectedPlacement(params, rng2);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->positions, p2->positions);
}

TEST(TopologyTest, RejectsInvalidParams) {
  Rng rng(1);
  PlacementParams bad;
  bad.num_nodes = 1;
  EXPECT_FALSE(GenerateConnectedPlacement(bad, rng).ok());
  bad.num_nodes = 10;
  bad.range_m = 0;
  EXPECT_FALSE(GenerateConnectedPlacement(bad, rng).ok());
}

TEST(TopologyTest, FailsWhenDensityHopeless) {
  Rng rng(1);
  PlacementParams sparse;
  sparse.num_nodes = 5;
  sparse.area_width_m = 100000;
  sparse.area_height_m = 100000;
  sparse.range_m = 1.0;
  sparse.max_attempts = 3;
  auto result = GenerateConnectedPlacement(sparse, rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace sensjoin::net
