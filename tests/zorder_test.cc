#include "sensjoin/join/zorder.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"

namespace sensjoin::join {
namespace {

TEST(ZOrderTest, ClassicTwoDimensionalInterleaving) {
  // Fig. 6c of the paper with our convention: within each level the
  // earlier dimension contributes the more significant bit, so dimension 0
  // plays the figure's "y" role and dimension 1 its "x" role.
  ZOrder z({2, 2});
  EXPECT_EQ(z.total_bits(), 4);
  EXPECT_EQ(z.level_widths(), (std::vector<int>{2, 2}));
  EXPECT_EQ(z.Interleave({0, 0}), 0u);
  EXPECT_EQ(z.Interleave({0, 1}), 1u);
  EXPECT_EQ(z.Interleave({1, 0}), 2u);
  EXPECT_EQ(z.Interleave({1, 1}), 3u);
  EXPECT_EQ(z.Interleave({0, 2}), 4u);
  EXPECT_EQ(z.Interleave({2, 0}), 8u);
  EXPECT_EQ(z.Interleave({3, 3}), 15u);
}

TEST(ZOrderTest, UnequalWidthsLevelStructure) {
  // Dim 0 has 3 bits, dim 1 has 1 bit: levels have widths 2, 1, 1.
  ZOrder z({3, 1});
  EXPECT_EQ(z.total_bits(), 4);
  EXPECT_EQ(z.level_widths(), (std::vector<int>{2, 1, 1}));
  // Level 0 takes MSBs of both dims; afterwards only dim 0 contributes.
  // coords (0b101, 0b1): level0 = 1,1; level1 = 0; level2 = 1 -> 0b1101.
  EXPECT_EQ(z.Interleave({0b101, 0b1}), 0b1101u);
}

TEST(ZOrderTest, ZeroWidthDimensionsContributeNothing) {
  ZOrder z({0, 2});
  EXPECT_EQ(z.total_bits(), 2);
  EXPECT_EQ(z.level_widths(), (std::vector<int>{1, 1}));
  EXPECT_EQ(z.Interleave({0, 0b10}), 0b10u);
}

TEST(ZOrderTest, NeighborCellsShareLongPrefixes) {
  // Locality: points in the same half of each dimension share the top
  // level's bits.
  ZOrder z({4, 4});
  const uint64_t a = z.Interleave({3, 3});
  const uint64_t b = z.Interleave({4, 4});
  // 3 = 0011, 4 = 0100: differ at the second level already, but both are in
  // the lower half (MSB 0) of each dim, so the top level matches.
  EXPECT_EQ(a >> 6, b >> 6);
  const uint64_t c = z.Interleave({12, 12});  // upper half
  EXPECT_NE(a >> 6, c >> 6);
}

class ZOrderRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZOrderRoundtripTest, InterleaveDeinterleaveRoundtrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const int dims = static_cast<int>(rng.UniformInt(1, 5));
    std::vector<int> bits(dims);
    int total = 0;
    for (int& b : bits) {
      b = static_cast<int>(rng.UniformInt(0, 12));
      total += b;
    }
    if (total == 0 || total > 62) continue;
    ZOrder z(bits);
    std::vector<uint32_t> coords(dims);
    for (int d = 0; d < dims; ++d) {
      coords[d] = bits[d] == 0
                      ? 0
                      : static_cast<uint32_t>(
                            rng.UniformInt(0, (1 << bits[d]) - 1));
    }
    const uint64_t key = z.Interleave(coords);
    EXPECT_LT(key, 1ull << z.total_bits());
    EXPECT_EQ(z.Deinterleave(key), coords);
  }
}

TEST_P(ZOrderRoundtripTest, InterleavingIsMonotoneInOrder) {
  // Distinct coordinate vectors map to distinct keys.
  Rng rng(GetParam() + 100);
  ZOrder z({5, 5, 5});
  std::set<uint64_t> seen;
  std::set<std::vector<uint32_t>> inputs;
  for (int i = 0; i < 500; ++i) {
    std::vector<uint32_t> coords = {
        static_cast<uint32_t>(rng.UniformInt(0, 31)),
        static_cast<uint32_t>(rng.UniformInt(0, 31)),
        static_cast<uint32_t>(rng.UniformInt(0, 31))};
    if (!inputs.insert(coords).second) continue;
    EXPECT_TRUE(seen.insert(z.Interleave(coords)).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZOrderRoundtripTest,
                         ::testing::Values(8, 88, 888));

}  // namespace
}  // namespace sensjoin::join
