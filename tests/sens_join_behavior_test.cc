// Protocol-level behavior of SENS-Join: Treecut, Selective Filter
// Forwarding, representation variants and ablation switches.

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin {
namespace {

testbed::TestbedParams MediumParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 400;
  params.placement.area_width_m = 550;
  params.placement.area_height_m = 550;
  params.seed = seed;
  return params;
}

const char* kSelectiveQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 600 ONCE";

TEST(TreecutTest, DisablingTreecutIncreasesCollectionPackets) {
  auto tb = testbed::Testbed::Create(MediumParams(2));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kSelectiveQuery);
  ASSERT_TRUE(q.ok()) << q.status();

  join::ProtocolConfig with_treecut;
  auto r1 = (*tb)->MakeSensJoin(with_treecut).Execute(*q, 0);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_GT(r1->treecut_exited_nodes, 0u);

  join::ProtocolConfig no_treecut;
  no_treecut.use_treecut = false;
  auto r2 = (*tb)->MakeSensJoin(no_treecut).Execute(*q, 0);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r2->treecut_exited_nodes, 0u);

  // Identical results either way.
  EXPECT_EQ(r1->result.matched_combinations, r2->result.matched_combinations);
  // Treecut cuts the later phases off the subtree bottoms: the filter is
  // not forwarded into cut subtrees, and joining tuples parked at proxies
  // travel fewer final-phase hops. Collection costs are unchanged (one
  // packet per node either way near the leaves).
  ASSERT_GT(r1->result.matched_combinations, 0u);
  EXPECT_LT(r1->cost.phases.filter_packets + r1->cost.phases.final_packets,
            r2->cost.phases.filter_packets + r2->cost.phases.final_packets);
  EXPECT_LE(r1->cost.join_packets, r2->cost.join_packets);
}

TEST(TreecutTest, DmaxZeroDisablesTreecutEffectively) {
  auto tb = testbed::Testbed::Create(MediumParams(3));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kSelectiveQuery);
  join::ProtocolConfig config;
  config.dmax_bytes = 0;
  auto r = (*tb)->MakeSensJoin(config).Execute(*q, 0);
  ASSERT_TRUE(r.ok()) << r.status();
  // Only nodes with no tuple and no child data can "exit" at Dmax = 0.
  EXPECT_EQ(r->treecut_exited_nodes, 0u);
}

TEST(TreecutTest, DmaxMustStayBelowPacketSize) {
  auto tb = testbed::Testbed::Create(MediumParams(3));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kSelectiveQuery);
  join::ProtocolConfig config;
  config.dmax_bytes = 48;
  auto r = (*tb)->MakeSensJoin(config).Execute(*q, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SelectiveForwardingTest, DisablingItIncreasesFilterPackets) {
  auto tb = testbed::Testbed::Create(MediumParams(4));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kSelectiveQuery);

  auto r_on = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(r_on.ok());

  join::ProtocolConfig off;
  off.use_selective_forwarding = false;
  auto r_off = (*tb)->MakeSensJoin(off).Execute(*q, 0);
  ASSERT_TRUE(r_off.ok());

  EXPECT_EQ(r_on->result.matched_combinations,
            r_off->result.matched_combinations);
  if (r_on->filter_points > 0) {
    EXPECT_LT(r_on->cost.phases.filter_packets,
              r_off->cost.phases.filter_packets);
  }
}

TEST(RepresentationTest, AllRepresentationsProduceTheSameResult) {
  auto tb = testbed::Testbed::Create(MediumParams(5));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kSelectiveQuery);
  ASSERT_TRUE(q.ok());

  size_t reference_matches = 0;
  uint64_t quadtree_collection = 0;
  uint64_t raw_collection = 0;
  for (auto repr : {join::JoinAttrRepresentation::kQuadtree,
                    join::JoinAttrRepresentation::kRaw,
                    join::JoinAttrRepresentation::kZlibLike,
                    join::JoinAttrRepresentation::kBzip2Like}) {
    join::ProtocolConfig config;
    config.representation = repr;
    auto r = (*tb)->MakeSensJoin(config).Execute(*q, 0);
    ASSERT_TRUE(r.ok()) << r.status();
    if (repr == join::JoinAttrRepresentation::kQuadtree) {
      reference_matches = r->result.matched_combinations;
      quadtree_collection = r->cost.phases.collection_packets;
    } else {
      EXPECT_EQ(r->result.matched_combinations, reference_matches)
          << JoinAttrRepresentationName(repr);
    }
    if (repr == join::JoinAttrRepresentation::kRaw) {
      raw_collection = r->cost.phases.collection_packets;
    }
  }
  // The quadtree representation must not be worse than raw tuples.
  EXPECT_LE(quadtree_collection, raw_collection);
}

TEST(ProxyTest, TreecutTuplesStillReachTheResult) {
  // A query whose matches are spread everywhere: every contributing tuple,
  // including ones parked at Treecut proxies, must appear.
  auto tb = testbed::Testbed::Create(MediumParams(6));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.05 ONCE");
  ASSERT_TRUE(q.ok());
  auto ext = (*tb)->MakeExternalJoin().Execute(*q, 0);
  auto sens = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(ext.ok() && sens.ok());
  EXPECT_GT(sens->treecut_exited_nodes, 0u);
  EXPECT_EQ(ext->result.matched_combinations,
            sens->result.matched_combinations);
  EXPECT_EQ(ext->result.contributing_nodes, sens->result.contributing_nodes);
}

TEST(FilterMemoryTest, TinyMemoryBudgetStillCorrect) {
  auto tb = testbed::Testbed::Create(MediumParams(7));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kSelectiveQuery);
  join::ProtocolConfig tiny;
  tiny.filter_memory_bytes = 0;  // nobody can keep subtree structures
  auto r_tiny = (*tb)->MakeSensJoin(tiny).Execute(*q, 0);
  auto r_default = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(r_tiny.ok() && r_default.ok());
  EXPECT_EQ(r_tiny->result.matched_combinations,
            r_default->result.matched_combinations);
  // Without stored subtree structures the filter cannot be pruned.
  if (r_default->filter_points > 0) {
    EXPECT_GE(r_tiny->cost.phases.filter_packets,
              r_default->cost.phases.filter_packets);
  }
}

TEST(HeterogeneousTest, DisjointRelationGroupsJoinCorrectly) {
  auto tb = testbed::Testbed::Create(MediumParams(8));
  ASSERT_TRUE(tb.ok());
  // Split nodes into two relations by id parity (node 0 is the base).
  std::vector<sim::NodeId> odd;
  std::vector<sim::NodeId> even;
  for (int i = 1; i < (*tb)->data().num_nodes(); ++i) {
    (i % 2 ? odd : even).push_back(i);
  }
  (*tb)->data().AssignRelation("odd", odd);
  (*tb)->data().AssignRelation("even", even);
  auto q = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum FROM odd A, even B "
      "WHERE |A.temp - B.temp| < 0.1 "
      "AND distance(A.x, A.y, B.x, B.y) > 500 ONCE");
  ASSERT_TRUE(q.ok()) << q.status();
  auto ext = (*tb)->MakeExternalJoin().Execute(*q, 0);
  auto sens = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(ext.ok() && sens.ok());
  EXPECT_EQ(ext->result.matched_combinations,
            sens->result.matched_combinations);
  // No odd node may appear on the even side and vice versa.
  for (sim::NodeId n : sens->result.contributing_nodes) {
    EXPECT_NE(n, 0);
  }
}

TEST(ResponseTimeTest, SensJoinTradesTimeForEnergy) {
  // Sec. VII: SENS-Join response time is bounded by ~2x the external join.
  auto tb = testbed::Testbed::Create(MediumParams(9));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kSelectiveQuery);
  auto ext = (*tb)->MakeExternalJoin().Execute(*q, 0);
  auto sens = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(ext.ok() && sens.ok());
  EXPECT_GT(sens->response_time_s, 0.0);
  EXPECT_GT(ext->response_time_s, 0.0);
}

}  // namespace
}  // namespace sensjoin
