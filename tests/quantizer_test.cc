#include "sensjoin/join/quantizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"
#include "sensjoin/data/schema.h"

namespace sensjoin::join {
namespace {

DimensionSpec TempDim() {
  DimensionSpec d;
  d.attr_name = "temp";
  d.attr_index = 0;
  d.min_val = 0.0;
  d.max_val = 50.0;
  d.resolution = 0.1;
  return d;
}

TEST(QuantizerTest, SizesRoundUpToPowersOfTwo) {
  auto q = Quantizer::Create({TempDim()});
  ASSERT_TRUE(q.ok());
  // ceil(50 / 0.1) + 1 = 501 -> 512 cells -> 9 bits.
  EXPECT_EQ(q->size_of_dim(0), 512u);
  EXPECT_EQ(q->bits_per_dim(0), 9);
  EXPECT_EQ(q->total_bits(), 9);
}

TEST(QuantizerTest, ModerateOverestimationCostsNothing) {
  // The paper's example: ranges of 600 and 900 values both need 10 bits.
  DimensionSpec d600 = TempDim();
  d600.max_val = 59.9;  // 600 steps of 0.1
  DimensionSpec d900 = TempDim();
  d900.max_val = 89.9;
  auto q600 = Quantizer::Create({d600});
  auto q900 = Quantizer::Create({d900});
  EXPECT_EQ(q600->bits_per_dim(0), 10);
  EXPECT_EQ(q900->bits_per_dim(0), 10);
}

TEST(QuantizerTest, CoordinateClampsOutOfRangeValues) {
  auto q = Quantizer::Create({TempDim()});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->Coordinate(0, -100.0), 0u);
  EXPECT_EQ(q->Coordinate(0, 0.0), 0u);
  EXPECT_EQ(q->Coordinate(0, 1e9), 511u);
}

TEST(QuantizerTest, CellIntervalContainsAllValuesMappingToIt) {
  auto q = Quantizer::Create({TempDim()});
  ASSERT_TRUE(q.ok());
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.UniformDouble(-20, 80);  // includes out-of-range
    const uint32_t c = q->Coordinate(0, v);
    const query::Interval cell = q->CellInterval(0, c);
    EXPECT_TRUE(cell.Contains(v)) << "v=" << v << " c=" << c;
  }
}

TEST(QuantizerTest, BoundaryCellsAreUnbounded) {
  auto q = Quantizer::Create({TempDim()});
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(std::isinf(q->CellInterval(0, 0).lo));
  EXPECT_TRUE(std::isinf(q->CellInterval(0, 511).hi));
  EXPECT_FALSE(std::isinf(q->CellInterval(0, 5).lo));
}

TEST(QuantizerTest, CellCenterMapsBackToSameCell) {
  auto q = Quantizer::Create({TempDim()});
  ASSERT_TRUE(q.ok());
  for (uint32_t c = 0; c < 512; c += 17) {
    EXPECT_EQ(q->Coordinate(0, q->CellCenter(0, c)), c) << "cell " << c;
  }
}

TEST(QuantizerTest, FromConfigLooksUpByName) {
  data::Schema schema({{"x", 2}, {"temp", 2}});
  QuantizationConfig config;
  config.by_attr["x"] = {0, 1000, 1.0};
  config.by_attr["temp"] = {0, 50, 0.1};
  auto q = Quantizer::FromConfig(schema, {0, 1}, config);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->num_dims(), 2);
  EXPECT_EQ(q->dim(0).attr_name, "x");
  EXPECT_EQ(q->bits_per_dim(0), 10);  // 1001 cells -> 1024
  EXPECT_EQ(q->dim(1).attr_index, 1);
}

TEST(QuantizerTest, FromConfigErrors) {
  data::Schema schema({{"x", 2}});
  QuantizationConfig config;
  EXPECT_EQ(Quantizer::FromConfig(schema, {0}, config).status().code(),
            StatusCode::kNotFound);
  config.by_attr["x"] = {0, 1000, 1.0};
  EXPECT_FALSE(Quantizer::FromConfig(schema, {5}, config).ok());
}

TEST(QuantizerTest, CreateErrors) {
  DimensionSpec bad = TempDim();
  bad.resolution = 0;
  EXPECT_FALSE(Quantizer::Create({bad}).ok());
  bad = TempDim();
  bad.max_val = -1;
  EXPECT_FALSE(Quantizer::Create({bad}).ok());
  EXPECT_FALSE(Quantizer::Create({}).ok());
}

TEST(QuantizerTest, CoarserResolutionFewerBits) {
  DimensionSpec coarse = TempDim();
  coarse.resolution = 1.0;
  auto qf = Quantizer::Create({TempDim()});
  auto qc = Quantizer::Create({coarse});
  EXPECT_LT(qc->bits_per_dim(0), qf->bits_per_dim(0));
}

}  // namespace
}  // namespace sensjoin::join
