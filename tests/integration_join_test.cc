// End-to-end correctness: SENS-Join must compute exactly the same result as
// the external join (which ships everything and is trivially correct), for
// snapshot queries over a small deployment. This is the paper's core
// correctness claim: the lossy pre-computation never loses a result tuple
// (Sec. V-B, footnote 2).

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin {
namespace {

testbed::TestbedParams SmallParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 200;
  params.placement.area_width_m = 400;
  params.placement.area_height_m = 400;
  params.seed = seed;
  return params;
}

std::vector<std::vector<double>> SortedRows(const join::JoinResult& r) {
  std::vector<std::vector<double>> rows = r.rows;
  std::sort(rows.begin(), rows.end());
  return rows;
}

class JoinEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinEquivalenceTest, SimilarityJoinMatchesExternalJoin) {
  auto tb = testbed::Testbed::Create(SmallParams(GetParam()));
  ASSERT_TRUE(tb.ok()) << tb.status();
  // Selective Q2-style query: similar temperature but far apart is rare in
  // a spatially correlated field.
  auto q = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(A.x, A.y, B.x, B.y) > 400 ONCE");
  ASSERT_TRUE(q.ok()) << q.status();

  auto external = (*tb)->MakeExternalJoin();
  auto ext_report = external.Execute(*q, 0);
  ASSERT_TRUE(ext_report.ok()) << ext_report.status();

  auto sens = (*tb)->MakeSensJoin();
  auto sens_report = sens.Execute(*q, 0);
  ASSERT_TRUE(sens_report.ok()) << sens_report.status();

  EXPECT_EQ(SortedRows(ext_report->result), SortedRows(sens_report->result));
  EXPECT_EQ(ext_report->result.matched_combinations,
            sens_report->result.matched_combinations);
  EXPECT_EQ(ext_report->result.contributing_nodes,
            sens_report->result.contributing_nodes);
  // The query is selective; SENS-Join must beat the baseline.
  EXPECT_LT(sens_report->cost.join_packets, ext_report->cost.join_packets);
}

TEST_P(JoinEquivalenceTest, AggregateQueryMatchesExternalJoin) {
  auto tb = testbed::Testbed::Create(SmallParams(GetParam()));
  ASSERT_TRUE(tb.ok()) << tb.status();
  // Q1 from the paper: minimum distance between points with a temperature
  // difference of more than a threshold (threshold adapted to the field).
  auto q = (*tb)->ParseQuery(
      "SELECT MIN(distance(A.x, A.y, B.x, B.y)) "
      "FROM sensors A, sensors B "
      "WHERE A.temp - B.temp > 4.0 ONCE");
  ASSERT_TRUE(q.ok()) << q.status();

  auto ext_report = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(ext_report.ok()) << ext_report.status();
  auto sens_report = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(sens_report.ok()) << sens_report.status();

  ASSERT_EQ(ext_report->result.rows.size(), 1u);
  ASSERT_EQ(sens_report->result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(ext_report->result.rows[0][0],
                   sens_report->result.rows[0][0]);
  EXPECT_EQ(ext_report->result.matched_combinations,
            sens_report->result.matched_combinations);
}

TEST_P(JoinEquivalenceTest, SelectionPredicatesArePushedDown) {
  auto tb = testbed::Testbed::Create(SmallParams(GetParam()));
  ASSERT_TRUE(tb.ok()) << tb.status();
  auto q = (*tb)->ParseQuery(
      "SELECT A.pres, B.pres FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 AND A.hum > 50 AND B.hum <= 50 ONCE");
  ASSERT_TRUE(q.ok()) << q.status();

  auto ext_report = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(ext_report.ok()) << ext_report.status();
  auto sens_report = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(sens_report.ok()) << sens_report.status();

  EXPECT_EQ(SortedRows(ext_report->result), SortedRows(sens_report->result));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEquivalenceTest,
                         ::testing::Values(1, 7, 21, 99));

TEST(JoinBasicsTest, EmptyResultShipsAlmostNothing) {
  auto tb = testbed::Testbed::Create(SmallParams(5));
  ASSERT_TRUE(tb.ok()) << tb.status();
  // Impossible join condition: nothing can match.
  auto q = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE A.temp - B.temp > 1000 ONCE");
  ASSERT_TRUE(q.ok()) << q.status();

  auto sens_report = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(sens_report.ok()) << sens_report.status();
  EXPECT_EQ(sens_report->result.matched_combinations, 0u);
  EXPECT_EQ(sens_report->filter_points, 0u);
  // No filter needs forwarding, and only Treecut tuples move in phase 2.
  EXPECT_EQ(sens_report->cost.phases.filter_packets, 0u);
  EXPECT_EQ(sens_report->final_tuples_shipped, 0u);
}

TEST(JoinBasicsTest, SensJoinRequiresTwoRelations) {
  auto tb = testbed::Testbed::Create(SmallParams(5));
  ASSERT_TRUE(tb.ok()) << tb.status();
  auto q = (*tb)->ParseQuery("SELECT temp FROM sensors ONCE");
  ASSERT_TRUE(q.ok()) << q.status();
  auto report = (*tb)->MakeSensJoin().Execute(*q, 0);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sensjoin
