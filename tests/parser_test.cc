#include "sensjoin/query/parser.h"

#include <string>

#include <gtest/gtest.h>

namespace sensjoin::query {
namespace {

std::string Unparse(const std::string& expr) {
  auto parsed = ParseExpression(expr);
  if (!parsed.ok()) return "<error: " + parsed.status().ToString() + ">";
  return (*parsed)->ToString();
}

TEST(ExpressionParserTest, Precedence) {
  EXPECT_EQ(Unparse("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(Unparse("(1 + 2) * 3"), "((1 + 2) * 3)");
  EXPECT_EQ(Unparse("1 - 2 - 3"), "((1 - 2) - 3)");  // left associative
  EXPECT_EQ(Unparse("a < b AND c > d OR e = f"),
            "(((a < b) AND (c > d)) OR (e = f))");
  EXPECT_EQ(Unparse("NOT a < b"), "NOT ((a < b))");
}

TEST(ExpressionParserTest, QualifiedRefsAndFunctions) {
  EXPECT_EQ(Unparse("A.temp - B.temp > 10"), "((A.temp - B.temp) > 10)");
  EXPECT_EQ(Unparse("distance(A.x, A.y, B.x, B.y)"),
            "distance(A.x, A.y, B.x, B.y)");
  EXPECT_EQ(Unparse("ABS(x)"), "abs(x)");  // function names lowercased
}

TEST(ExpressionParserTest, AbsoluteValueBars) {
  EXPECT_EQ(Unparse("|A.temp - B.temp| < 0.3"),
            "(abs((A.temp - B.temp)) < 0.3)");
  EXPECT_EQ(Unparse("|x| + 1"), "(abs(x) + 1)");
}

TEST(ExpressionParserTest, UnaryMinusAndPlus) {
  EXPECT_EQ(Unparse("-x + 3"), "(-(x) + 3)");
  EXPECT_EQ(Unparse("+5"), "5");
  EXPECT_EQ(Unparse("--x"), "-(-(x))");
}

TEST(ExpressionParserTest, Errors) {
  EXPECT_FALSE(ParseExpression("").ok());
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("(1").ok());
  EXPECT_FALSE(ParseExpression("f(1,").ok());
  EXPECT_FALSE(ParseExpression("a b").ok());  // trailing input
  EXPECT_FALSE(ParseExpression("|a").ok());
}

TEST(QueryParserTest, ParsesQ1FromThePaper) {
  auto q = Parse(
      "SELECT MIN(distance(A.x, A.y, B.x, B.y)) "
      "FROM Sensors A, Sensors B "
      "WHERE A.temp - B.temp > 10.0 ONCE");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->select[0].aggregate, AggregateKind::kMin);
  ASSERT_EQ(q->from.size(), 2u);
  EXPECT_EQ(q->from[0].relation, "Sensors");
  EXPECT_EQ(q->from[0].alias, "A");
  EXPECT_EQ(q->from[1].alias, "B");
  EXPECT_EQ(q->mode, ParsedQuery::Mode::kOnce);
  ASSERT_NE(q->where, nullptr);
  EXPECT_EQ(q->where->ToString(), "((A.temp - B.temp) > 10)");
}

TEST(QueryParserTest, ParsesQ2FromThePaper) {
  auto q = Parse(
      "SELECT |A.hum - B.hum|, |A.pres - B.pres| "
      "FROM Sensors A, Sensors B "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(A.x, A.y, B.x, B.y) > 100 ONCE");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->select[0].aggregate, AggregateKind::kNone);
  EXPECT_EQ(q->select[0].expr->ToString(), "abs((A.hum - B.hum))");
}

TEST(QueryParserTest, SelectStarAndSamplePeriod) {
  auto q = Parse("SELECT * FROM sensors SAMPLE PERIOD 30");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->select_star);
  EXPECT_EQ(q->mode, ParsedQuery::Mode::kSamplePeriod);
  EXPECT_DOUBLE_EQ(q->sample_period_s, 30.0);
  EXPECT_EQ(q->from[0].alias, "sensors");  // alias defaults to relation
}

TEST(QueryParserTest, AsAliases) {
  auto q = Parse("SELECT A.temp AS t FROM Sensors AS A ONCE");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->select[0].label, "t");
  EXPECT_EQ(q->from[0].alias, "A");
}

TEST(QueryParserTest, CountStarAndOtherAggregates) {
  auto q = Parse(
      "SELECT COUNT(*), MAX(A.temp), AVG(B.hum), SUM(A.pres) "
      "FROM s A, s B WHERE A.temp = B.temp ONCE");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->select[0].aggregate, AggregateKind::kCount);
  EXPECT_EQ(q->select[0].expr, nullptr);
  EXPECT_EQ(q->select[1].aggregate, AggregateKind::kMax);
  EXPECT_EQ(q->select[2].aggregate, AggregateKind::kAvg);
  EXPECT_EQ(q->select[3].aggregate, AggregateKind::kSum);
}

TEST(QueryParserTest, MinWithTwoArgsIsScalarFunction) {
  auto q = Parse("SELECT min(A.temp, B.temp) FROM s A, s B "
                 "WHERE A.temp = B.temp ONCE");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->select[0].aggregate, AggregateKind::kNone);
  EXPECT_EQ(q->select[0].expr->ToString(), "min(A.temp, B.temp)");
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(Parse("FROM s ONCE").ok());             // no SELECT
  EXPECT_FALSE(Parse("SELECT x FROM s").ok());         // no ONCE/PERIOD
  EXPECT_FALSE(Parse("SELECT x FROM ONCE").ok());      // no relation
  EXPECT_FALSE(Parse("SELECT x FROM s SAMPLE PERIOD -5").ok());
  EXPECT_FALSE(Parse("SELECT x FROM s ONCE garbage").ok());
  EXPECT_FALSE(Parse("SELECT x, FROM s ONCE").ok());
}

}  // namespace
}  // namespace sensjoin::query
