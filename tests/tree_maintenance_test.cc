// Unit tests of in-network tree repair: the RoutingTree repair mutators,
// orphan detection, repair-request wire hardening, loop freedom, and the
// kRepair cost itemization. Topologies are small hand-placed fields where
// every distance (and therefore every tree) is known exactly.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/geometry.h"
#include "sensjoin/net/routing_tree.h"
#include "sensjoin/net/tree_maintenance.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::net {
namespace {

// Diamond: 1 and 2 both one hop from root 0; 3 reaches only 1 and 2 and
// attaches under 1 (equal hops and distance, lower id wins).
sim::Simulator MakeDiamond() {
  std::vector<Point> pos = {{0, 0}, {40, 0}, {0, 40}, {40, 40}};
  return sim::Simulator(sim::Radio(pos, 50.0));
}

// Chain 0 - 1 - 2 - 3: node 1 is the only route for everything behind it.
sim::Simulator MakeChain4() {
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}, {120, 0}};
  return sim::Simulator(sim::Radio(pos, 50.0));
}

// ---- RoutingTree repair mutators ----------------------------------------

TEST(RoutingTreeMutatorsTest, SubtreeNodesListsParentsBeforeChildren) {
  sim::Simulator sim = MakeChain4();
  RoutingTree tree = RoutingTree::Build(sim, 0);
  EXPECT_EQ(tree.SubtreeNodes(1), (std::vector<sim::NodeId>{1, 2, 3}));
  EXPECT_EQ(tree.SubtreeNodes(3), (std::vector<sim::NodeId>{3}));
  EXPECT_EQ(tree.SubtreeNodes(0).size(), 4u);
  EXPECT_TRUE(tree.IsAncestor(0, 3));
  EXPECT_TRUE(tree.IsAncestor(2, 2));
  EXPECT_FALSE(tree.IsAncestor(3, 2));
}

TEST(RoutingTreeMutatorsTest, ReparentRederivesHopsAndOrders) {
  sim::Simulator sim = MakeDiamond();
  RoutingTree tree = RoutingTree::Build(sim, 0);
  ASSERT_EQ(tree.parent(3), 1);
  ASSERT_EQ(tree.hop_count(3), 2);

  tree.Reparent(3, 2);
  EXPECT_EQ(tree.parent(3), 2);
  EXPECT_EQ(tree.hop_count(3), 2);
  EXPECT_EQ(tree.subtree_size(2), 2);
  EXPECT_EQ(tree.subtree_size(1), 1);
  EXPECT_TRUE(tree.children(1).empty());
  EXPECT_EQ(tree.children(2), (std::vector<sim::NodeId>{3}));
  // Orders still cover every reachable node, children before parents.
  EXPECT_EQ(tree.collection_order().size(), 4u);
  EXPECT_EQ(tree.collection_order().back(), 0);
}

TEST(RoutingTreeMutatorsTest, ReparentMovesWholeSubtreeAndUpdatesDepths) {
  sim::Simulator sim = MakeChain4();
  RoutingTree tree = RoutingTree::Build(sim, 0);
  // Pretend 1 found a better parent at depth 2 somewhere; hops of its
  // descendants must shift with it. Reattach 2 (subtree {2,3}) under 0:
  // distances don't matter to the mutator, only the structure does.
  tree.Reparent(2, 0);
  EXPECT_EQ(tree.parent(2), 0);
  EXPECT_EQ(tree.hop_count(2), 1);
  EXPECT_EQ(tree.hop_count(3), 2);
  EXPECT_EQ(tree.subtree_size(0), 4);
  EXPECT_EQ(tree.subtree_size(1), 1);
}

TEST(RoutingTreeMutatorsTest, DetachMakesSubtreeUnreachable) {
  sim::Simulator sim = MakeChain4();
  RoutingTree tree = RoutingTree::Build(sim, 0);
  tree.Detach(2);
  EXPECT_FALSE(tree.InTree(2));
  EXPECT_FALSE(tree.InTree(3));
  EXPECT_EQ(tree.hop_count(3), -1);
  EXPECT_EQ(tree.num_reachable(), 2);
  EXPECT_EQ(tree.UnreachableNodes(), (std::vector<sim::NodeId>{2, 3}));
  EXPECT_EQ(tree.collection_order().size(), 2u);
}

// Satellite regression: Build on a partially-connected field skips the
// parentless nodes instead of stalling, and reports them as unreachable.
TEST(RoutingTreeMutatorsTest, BuildOnPartitionedFieldSkipsIslands) {
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}, {500, 500}, {540, 500}};
  sim::Simulator sim{sim::Radio(pos, 50.0)};
  RoutingTree tree = RoutingTree::Build(sim, 0);
  EXPECT_EQ(tree.num_reachable(), 3);
  EXPECT_FALSE(tree.InTree(3));
  EXPECT_FALSE(tree.InTree(4));
  EXPECT_EQ(tree.UnreachableNodes(), (std::vector<sim::NodeId>{3, 4}));
  EXPECT_EQ(tree.collection_order().size(), 3u);
  EXPECT_EQ(tree.dissemination_order().front(), 0);
}

// ---- Repair-request wire format ------------------------------------------

TEST(RepairWireTest, RoundTripsAllFields) {
  RepairRequest req;
  req.orphan = 42;
  req.dead_parent = 17;
  req.old_hops = 5;
  req.round = 1;
  const BitWriter wire = EncodeRepairRequest(req);
  EXPECT_EQ(wire.size_bits(), kRepairRequestBytes * 8);

  RepairRequest out;
  ASSERT_TRUE(DecodeRepairRequest(wire.bytes().data(), wire.size_bits(),
                                  /*num_nodes=*/100, &out)
                  .ok());
  EXPECT_EQ(out.orphan, 42);
  EXPECT_EQ(out.dead_parent, 17);
  EXPECT_EQ(out.old_hops, 5);
  EXPECT_EQ(out.round, 1);
}

TEST(RepairWireTest, RoundTripsUnknownParentAndHops) {
  RepairRequest req;
  req.orphan = 7;
  req.dead_parent = sim::kInvalidNode;
  req.old_hops = -1;
  const BitWriter wire = EncodeRepairRequest(req);
  RepairRequest out;
  ASSERT_TRUE(DecodeRepairRequest(wire.bytes().data(), wire.size_bits(),
                                  /*num_nodes=*/10, &out)
                  .ok());
  EXPECT_EQ(out.dead_parent, sim::kInvalidNode);
  EXPECT_EQ(out.old_hops, -1);
}

TEST(RepairWireTest, HardenedDecoderRejectsStructuralViolations) {
  RepairRequest req;
  req.orphan = 3;
  req.dead_parent = 1;
  req.old_hops = 2;
  const BitWriter wire = EncodeRepairRequest(req);
  std::vector<uint8_t> bytes = wire.bytes();
  RepairRequest out;

  // Wrong size (truncated and padded).
  EXPECT_FALSE(
      DecodeRepairRequest(bytes.data(), wire.size_bits() - 8, 10, &out).ok());
  EXPECT_FALSE(
      DecodeRepairRequest(bytes.data(), wire.size_bits() - 1, 10, &out).ok());

  // Wrong magic.
  std::vector<uint8_t> bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(DecodeRepairRequest(bad.data(), wire.size_bits(), 10, &out).ok());

  // Orphan out of the field's id range.
  EXPECT_FALSE(
      DecodeRepairRequest(bytes.data(), wire.size_bits(), 3, &out).ok());

  // Orphan equal to its dead parent.
  RepairRequest self;
  self.orphan = 3;
  self.dead_parent = 3;
  const BitWriter self_wire = EncodeRepairRequest(self);
  EXPECT_FALSE(DecodeRepairRequest(self_wire.bytes().data(),
                                   self_wire.size_bits(), 10, &out)
                   .ok());
}

// ---- TreeMaintenance ------------------------------------------------------

TEST(TreeMaintenanceTest, DetectsOrphansOfDeadParents) {
  sim::Simulator sim = MakeDiamond();
  RoutingTree tree = RoutingTree::Build(sim, 0);
  TreeMaintenance maintenance(sim, tree);
  EXPECT_TRUE(maintenance.DetectOrphans().empty());

  sim.ScheduleCrash(1, 0.5);
  sim.events().Run();
  EXPECT_EQ(maintenance.DetectOrphans(), (std::vector<sim::NodeId>{3}));
}

TEST(TreeMaintenanceTest, RepairsOrphanToBestLiveNeighbor) {
  sim::Simulator sim = MakeDiamond();
  RoutingTree tree = RoutingTree::Build(sim, 0);
  ASSERT_EQ(tree.parent(3), 1);
  sim.ScheduleCrash(1, 0.5);
  sim.events().Run();

  TreeMaintenance maintenance(sim, tree);
  EXPECT_TRUE(maintenance.Repair(3));
  EXPECT_EQ(tree.parent(3), 2);
  EXPECT_EQ(tree.hop_count(3), 2);
  EXPECT_EQ(maintenance.stats().orphans_detected, 1);
  EXPECT_EQ(maintenance.stats().repairs_succeeded, 1);
  EXPECT_GE(maintenance.stats().candidate_replies, 1);

  // Repair traffic is charged and itemized.
  EXPECT_GT(sim.repair_packets_sent(), 0u);
  EXPECT_GT(sim.repair_bytes_sent(), 0u);
  EXPECT_GT(sim.repair_energy_mj(), 0.0);
}

TEST(TreeMaintenanceTest, RepairSurvivesTotalPacketLoss) {
  // kRepair is loss-exempt like beacons: repair still works when every
  // loss-eligible kind would be dropped, and draws no fault randomness.
  sim::Simulator sim = MakeDiamond();
  RoutingTree tree = RoutingTree::Build(sim, 0);
  sim.radio().set_default_loss_rate(1.0);
  sim.ScheduleCrash(1, 0.5);
  sim.events().Run();

  TreeMaintenance maintenance(sim, tree);
  EXPECT_TRUE(maintenance.Repair(3));
  EXPECT_EQ(tree.parent(3), 2);
}

TEST(TreeMaintenanceTest, DescendantsCannotAdoptTheirOrphan) {
  // Chain: 1 dies; 2's only live neighbor is 3, which is inside 2's own
  // subtree — adopting it would close a loop, so repair must fail and
  // leave the tree untouched.
  sim::Simulator sim = MakeChain4();
  RoutingTree tree = RoutingTree::Build(sim, 0);
  sim.ScheduleCrash(1, 0.5);
  sim.events().Run();

  TreeMaintenance maintenance(sim, tree);
  EXPECT_FALSE(maintenance.Repair(2));
  EXPECT_EQ(tree.parent(2), 1);  // untouched
  EXPECT_EQ(maintenance.stats().repairs_failed, 1);
  EXPECT_EQ(maintenance.stats().candidate_replies, 0);
}

TEST(TreeMaintenanceTest, SiblingsOfACrashedParentCannotAdoptEachOther) {
  // 3 attaches under 1 next to 2: when 1 dies, both 2's and 3's root paths
  // run through the corpse, so neither is an admissible candidate for the
  // other.
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}, {80, -20}};
  sim::Simulator sim{sim::Radio(pos, 50.0)};
  RoutingTree tree = RoutingTree::Build(sim, 0);
  ASSERT_EQ(tree.parent(2), 1);
  ASSERT_EQ(tree.parent(3), 1);
  sim.ScheduleCrash(1, 0.5);
  sim.events().Run();

  TreeMaintenance maintenance(sim, tree);
  EXPECT_FALSE(maintenance.Repair(2));
  EXPECT_FALSE(maintenance.Repair(3));
  EXPECT_EQ(tree.parent(2), 1);
  EXPECT_EQ(tree.parent(3), 1);
}

TEST(TreeMaintenanceTest, LaterRoundSucceedsAfterScheduledRecovery) {
  sim::Simulator sim = MakeDiamond();
  RoutingTree tree = RoutingTree::Build(sim, 0);
  sim.ScheduleCrash(1, 0.5);
  sim.ScheduleCrash(2, 0.5);
  sim.events().Run();

  // Round 1 finds nobody (2 is down too); 2 reboots during the inter-round
  // wait and adopts the orphan in round 2.
  sim.ScheduleRecovery(2, sim.now() + 0.1);
  TreeMaintenanceConfig config;
  config.max_repair_rounds = 2;
  config.round_wait_s = 0.2;
  TreeMaintenance maintenance(sim, tree, config);
  EXPECT_TRUE(maintenance.Repair(3));
  EXPECT_EQ(tree.parent(3), 2);
  EXPECT_EQ(maintenance.stats().requests_broadcast, 2);
}

TEST(TreeMaintenanceTest, AcceptabilityPredicateVetoesCandidates) {
  sim::Simulator sim = MakeDiamond();
  RoutingTree tree = RoutingTree::Build(sim, 0);
  sim.ScheduleCrash(1, 0.5);
  sim.events().Run();

  TreeMaintenance maintenance(sim, tree);
  EXPECT_FALSE(
      maintenance.Repair(3, [](sim::NodeId cand) { return cand != 2; }));
  EXPECT_EQ(tree.parent(3), 1);
}

TEST(TreeMaintenanceTest, RepairOfWholeSubtreeKeepsDescendants) {
  // 4 hangs under 3: repairing orphan 3 must carry 4 along with correct
  // depths.
  std::vector<Point> pos = {{0, 0}, {40, 0}, {0, 40}, {40, 40}, {80, 40}};
  sim::Simulator sim{sim::Radio(pos, 50.0)};
  RoutingTree tree = RoutingTree::Build(sim, 0);
  ASSERT_EQ(tree.parent(3), 1);
  ASSERT_EQ(tree.parent(4), 3);
  sim.ScheduleCrash(1, 0.5);
  sim.events().Run();

  TreeMaintenance maintenance(sim, tree);
  EXPECT_TRUE(maintenance.Repair(3));
  EXPECT_EQ(tree.parent(3), 2);
  EXPECT_EQ(tree.parent(4), 3);
  EXPECT_EQ(tree.hop_count(4), 3);
  EXPECT_EQ(tree.subtree_size(2), 3);
}

}  // namespace
}  // namespace sensjoin::net
