#include "sensjoin/data/field_model.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"
#include "sensjoin/data/network_data.h"

namespace sensjoin::data {
namespace {

FieldParams DefaultParams() {
  FieldParams p;
  p.base = 20.0;
  p.gradient_per_m = 0.01;
  p.num_bumps = 6;
  p.bump_amplitude = 3.0;
  p.bump_sigma_m = 100.0;
  p.noise_sigma = 0.05;
  return p;
}

TEST(ScalarFieldTest, SameSeedSameField) {
  Rng r1(9);
  Rng r2(9);
  ScalarField f1(DefaultParams(), 500, 500, r1);
  ScalarField f2(DefaultParams(), 500, 500, r2);
  for (double x = 0; x < 500; x += 97) {
    for (double y = 0; y < 500; y += 83) {
      EXPECT_DOUBLE_EQ(f1.ValueAt({x, y}), f2.ValueAt({x, y}));
    }
  }
}

TEST(ScalarFieldTest, MeasurementsAreDeterministicPerEpoch) {
  Rng rng(9);
  ScalarField f(DefaultParams(), 500, 500, rng);
  const double a = f.Measure({100, 100}, 5, 3);
  const double b = f.Measure({100, 100}, 5, 3);
  EXPECT_DOUBLE_EQ(a, b);
  // Different node or epoch changes the noise.
  EXPECT_NE(a, f.Measure({100, 100}, 6, 3));
  EXPECT_NE(a, f.Measure({100, 100}, 5, 4));
}

TEST(ScalarFieldTest, TemporalCorrelationOfConsecutiveEpochs) {
  // Consecutive epochs differ only by jitter + drift, which are far smaller
  // than cross-node differences: the continuous executor's premise.
  Rng rng(12);
  ScalarField f(DefaultParams(), 500, 500, rng);
  double max_step = 0.0;
  for (int node = 0; node < 50; ++node) {
    const Point p{10.0 * node, 7.0 * node};
    const double step =
        std::abs(f.Measure(p, node, 1) - f.Measure(p, node, 0));
    max_step = std::max(max_step, step);
  }
  EXPECT_LT(max_step, 0.3);
}

TEST(ScalarFieldTest, NoiseFreeFieldWithoutNoiseParams) {
  FieldParams p = DefaultParams();
  p.noise_sigma = 0;
  p.temporal_noise_sigma = 0;
  p.drift_sigma = 0;
  Rng rng(9);
  ScalarField f(p, 500, 500, rng);
  EXPECT_DOUBLE_EQ(f.Measure({10, 10}, 1, 0), f.ValueAt({10, 10}));
  EXPECT_DOUBLE_EQ(f.Measure({10, 10}, 1, 9), f.ValueAt({10, 10}));
}

TEST(ScalarFieldTest, SpatialAutocorrelation) {
  // Nearby points must be more similar than far-apart points on average —
  // the property the quadtree representation exploits (Sec. V-A).
  Rng rng(21);
  ScalarField f(DefaultParams(), 1000, 1000, rng);
  Rng sampler(22);
  double near_diff = 0;
  double far_diff = 0;
  const int samples = 2000;
  for (int i = 0; i < samples; ++i) {
    const Point p{sampler.UniformDouble(100, 900),
                  sampler.UniformDouble(100, 900)};
    const Point near{p.x + 10, p.y};
    const Point far{sampler.UniformDouble(100, 900),
                    sampler.UniformDouble(100, 900)};
    near_diff += std::abs(f.ValueAt(p) - f.ValueAt(near));
    far_diff += std::abs(f.ValueAt(p) - f.ValueAt(far));
  }
  EXPECT_LT(near_diff, far_diff * 0.5);
}

TEST(NetworkDataTest, SchemaStartsWithCoordinates) {
  NetworkData data({{0, 0}, {10, 10}}, 100, 100);
  Rng rng(1);
  data.AddField("temp", DefaultParams(), rng);
  EXPECT_EQ(data.schema().num_attributes(), 3);
  EXPECT_EQ(data.schema().attribute(0).name, "x");
  EXPECT_EQ(data.schema().attribute(1).name, "y");
  EXPECT_EQ(data.schema().attribute(2).name, "temp");
}

TEST(NetworkDataTest, SenseReturnsPositionAndReadings) {
  NetworkData data({{0, 0}, {30, 40}}, 100, 100);
  Rng rng(1);
  data.AddField("temp", DefaultParams(), rng);
  const Tuple t = data.Sense(1, 0);
  EXPECT_EQ(t.node, 1);
  EXPECT_DOUBLE_EQ(t.values[0], 30.0);
  EXPECT_DOUBLE_EQ(t.values[1], 40.0);
  EXPECT_GT(t.values[2], 0.0);
  // ONCE semantics: re-sensing the same epoch is identical.
  EXPECT_EQ(data.Sense(1, 0), t);
}

TEST(NetworkDataTest, RelationMembership) {
  NetworkData data({{0, 0}, {10, 0}, {20, 0}}, 100, 100);
  EXPECT_TRUE(data.BelongsTo(0, "anything"));  // homogeneous default
  data.AssignRelation("hot", {1});
  EXPECT_FALSE(data.BelongsTo(0, "hot"));
  EXPECT_TRUE(data.BelongsTo(1, "hot"));
  EXPECT_TRUE(data.BelongsTo(2, "cold"));  // unassigned name: all nodes
}

TEST(NetworkDataTest, MaterializeRespectsMembership) {
  NetworkData data({{0, 0}, {10, 0}, {20, 0}}, 100, 100);
  Rng rng(1);
  data.AddField("temp", DefaultParams(), rng);
  data.AssignRelation("hot", {0, 2});
  const Relation r = data.Materialize("hot", 0);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuple(0).node, 0);
  EXPECT_EQ(r.tuple(1).node, 2);
}

TEST(NetworkDataDeathTest, DuplicateFieldAborts) {
  NetworkData data({{0, 0}}, 100, 100);
  Rng rng(1);
  data.AddField("temp", DefaultParams(), rng);
  EXPECT_DEATH(data.AddField("temp", DefaultParams(), rng), "duplicate");
}

}  // namespace
}  // namespace sensjoin::data
