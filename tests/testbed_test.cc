#include "sensjoin/testbed/testbed.h"

#include <gtest/gtest.h>

namespace sensjoin::testbed {
namespace {

TEST(TestbedTest, CreatesPaperDefaultDeployment) {
  TestbedParams params;
  params.placement.num_nodes = 300;  // scaled down for test speed
  params.placement.area_width_m = 470;
  params.placement.area_height_m = 470;
  auto tb = Testbed::Create(params);
  ASSERT_TRUE(tb.ok()) << tb.status();
  EXPECT_EQ((*tb)->simulator().num_nodes(), 300);
  EXPECT_EQ((*tb)->tree().num_reachable(), 300);
  // Default fields: x, y + 4 sensors.
  EXPECT_EQ((*tb)->data().schema().num_attributes(), 6);
  EXPECT_TRUE((*tb)->data().schema().Contains("temp"));
  EXPECT_TRUE((*tb)->data().schema().Contains("light"));
  // Quantization covers every attribute.
  for (const auto& attr : (*tb)->data().schema().attributes()) {
    EXPECT_TRUE((*tb)->quantization().by_attr.count(attr.name) > 0)
        << attr.name;
  }
}

TEST(TestbedTest, SameSeedIsFullyReproducible) {
  TestbedParams params;
  params.placement.num_nodes = 200;
  params.placement.area_width_m = 400;
  params.placement.area_height_m = 400;
  params.seed = 77;
  auto tb1 = Testbed::Create(params);
  auto tb2 = Testbed::Create(params);
  ASSERT_TRUE(tb1.ok() && tb2.ok());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ((*tb1)->placement().positions[i], (*tb2)->placement().positions[i]);
    EXPECT_EQ((*tb1)->data().Sense(i, 0), (*tb2)->data().Sense(i, 0));
    EXPECT_EQ((*tb1)->tree().parent(i), (*tb2)->tree().parent(i));
  }
}

TEST(TestbedTest, QueryDisseminationCostsQueryPackets) {
  TestbedParams params;
  params.placement.num_nodes = 150;
  params.placement.area_width_m = 350;
  params.placement.area_height_m = 350;
  auto tb = Testbed::Create(params);
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT A.temp FROM sensors A, sensors B WHERE A.temp = B.temp ONCE");
  ASSERT_TRUE(q.ok());
  const uint64_t before =
      (*tb)->simulator().packets_sent_by_kind(sim::MessageKind::kQuery);
  EXPECT_EQ((*tb)->DisseminateQuery(*q), 150);
  EXPECT_GT((*tb)->simulator().packets_sent_by_kind(sim::MessageKind::kQuery),
            before);
}

TEST(TestbedTest, RepeatedDisseminationReachesEveryNode) {
  // Re-flooding a query (new epoch, re-execution after a failure) must
  // reach the whole network again: the testbed resets the flood
  // suppression state per call, so node-resident "already forwarded" marks
  // from the previous epoch cannot smother the new flood.
  TestbedParams params;
  params.placement.num_nodes = 150;
  params.placement.area_width_m = 350;
  params.placement.area_height_m = 350;
  auto tb = Testbed::Create(params);
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT A.temp FROM sensors A, sensors B WHERE A.temp = B.temp ONCE");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*tb)->DisseminateQuery(*q), 150);
  EXPECT_EQ((*tb)->DisseminateQuery(*q), 150);
  EXPECT_EQ((*tb)->DisseminateQuery(*q), 150);
}

TEST(TestbedTest, RebuildTreeAfterFailure) {
  TestbedParams params;
  params.placement.num_nodes = 150;
  params.placement.area_width_m = 350;
  params.placement.area_height_m = 350;
  auto tb = Testbed::Create(params);
  ASSERT_TRUE(tb.ok());
  // Fail the first tree edge we can find and rebuild.
  const auto& tree = (*tb)->tree();
  sim::NodeId child = tree.collection_order().front();
  (*tb)->simulator().radio().FailLink(child, tree.parent(child));
  (*tb)->RebuildTree();
  EXPECT_NE((*tb)->tree().parent(child), sim::kInvalidNode);
}

TEST(TestbedTest, ParseErrorsSurface) {
  TestbedParams params;
  params.placement.num_nodes = 50;
  params.placement.area_width_m = 200;
  params.placement.area_height_m = 200;
  auto tb = Testbed::Create(params);
  ASSERT_TRUE(tb.ok());
  EXPECT_FALSE((*tb)->ParseQuery("SELECT bogus FROM sensors ONCE").ok());
  EXPECT_FALSE((*tb)->ParseQuery("not sql").ok());
}

}  // namespace
}  // namespace sensjoin::testbed
