// Chaos soak for the self-healing execution path: many seeded fault
// schedules composing all six fault axes (crashes, transient link outages,
// loss bursts, duplication, delay-jitter reordering, cross-attempt replay)
// run against the soundness invariants of testbed/chaos.h — including
// exactly-once row accounting and the no-stall liveness bounds — plus
// determinism regressions: the same chaos sweep must be byte-identical
// across thread counts and across repeated runs, and a fault-free run with
// every self-healing feature enabled must be bit-identical to one with the
// default config. On the first invariant violation the soak prints a
// minimized reproducer schedule as JSON.

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/join/protocol.h"
#include "sensjoin/obs/trace.h"
#include "sensjoin/sensjoin.h"
#include "sensjoin/testbed/chaos.h"
#include "sensjoin/testbed/parallel.h"

namespace sensjoin::testbed {
namespace {

constexpr const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.5 "
    "AND distance(A.x, A.y, B.x, B.y) > 100 ONCE";

TestbedParams SmallDeployment(uint64_t seed) {
  TestbedParams params;
  params.placement.num_nodes = 60;
  params.placement.area_width_m = 260;
  params.placement.area_height_m = 260;
  params.seed = seed;
  return params;
}

join::ProtocolConfig SelfHealingConfig() {
  join::ProtocolConfig config;
  config.enable_phase_recovery = true;
  config.enable_tree_repair = true;
  config.enable_graceful_degradation = true;
  config.enable_phase_watchdog = true;
  return config;
}

/// Six-axis swarm parameters: the pre-existing crash/outage/loss defaults
/// plus the delivery-semantics axes (duplication, jitter reordering,
/// cross-attempt replay) at rates high enough to be exercised on every
/// schedule.
ChaosParams SwarmParams(uint64_t seed) {
  ChaosParams params;
  params.seed = seed;
  params.duplication_rate = 0.05;
  params.max_jitter_s = 0.005;
  params.enable_replay = true;
  return params;
}

/// Generous sim-time ceilings: orders of magnitude above a healthy run's
/// millisecond-scale phases, so only a genuine stall (a repair or recovery
/// loop that stops making progress) trips them.
LivenessBounds SwarmLiveness() {
  LivenessBounds bounds;
  bounds.max_phase_span_s = 30.0;
  bounds.max_total_s = 60.0;
  return bounds;
}

// TraceDigest / ExecutionFingerprint live in testbed/chaos.h now, shared
// with the windowed-engine equivalence tests.

struct TrialOutcome {
  std::string fingerprint;
  std::vector<std::string> violations;
  size_t repairs_attempted = 0;
  size_t repairs_succeeded = 0;
  size_t watchdog_expirations = 0;
  size_t duplicate_deliveries = 0;
  size_t reordered_messages = 0;
  size_t stale_messages_dropped = 0;
  uint64_t duplicate_packets = 0;
  uint64_t replayed_packets = 0;
  size_t attempts = 0;
  bool degraded = false;
  bool success = false;
  double coverage = 0.0;
};

/// One chaos trial: an independent small deployment (seeded by
/// `params.seed`), a schedule drawn from `params`, one self-healing
/// execution checked against the ground truth and the no-stall liveness
/// bounds. `external` runs the external-join executor instead of SENS-Join.
StatusOr<TrialOutcome> RunChaosTrial(const ChaosParams& params,
                                     bool external) {
  auto tb = Testbed::Create(SmallDeployment(params.seed));
  SENSJOIN_RETURN_IF_ERROR(tb.status());
  auto q = (*tb)->ParseQuery(kQuery);
  SENSJOIN_RETURN_IF_ERROR(q.status());
  (*tb)->DisseminateQuery(*q);

  const ChaosSchedule schedule = MakeChaosSchedule(**tb, params);
  ApplyChaos(**tb, schedule);

  obs::Tracer tracer;
  (*tb)->AttachTracer(&tracer);
  StatusOr<join::ExecutionReport> report =
      external ? (*tb)->MakeExternalJoin(SelfHealingConfig()).Execute(*q, 0)
               : (*tb)->MakeSensJoin(SelfHealingConfig()).Execute(*q, 0);
  (*tb)->AttachTracer(nullptr);
  SENSJOIN_RETURN_IF_ERROR(report.status());

  const join::JoinResult truth = ComputeGroundTruth(**tb, *q, 0);
  const LivenessBounds liveness = SwarmLiveness();
  TrialOutcome outcome;
  outcome.violations = CheckInvariants(truth, *report, &tracer, &liveness);
  outcome.fingerprint = ExecutionFingerprint(*report, &tracer);
  outcome.repairs_attempted = report->repairs_attempted;
  outcome.repairs_succeeded = report->repairs_succeeded;
  outcome.watchdog_expirations = report->watchdog_expirations;
  outcome.duplicate_deliveries = report->duplicate_deliveries;
  outcome.reordered_messages = report->reordered_messages;
  outcome.stale_messages_dropped = report->stale_messages_dropped;
  outcome.duplicate_packets = report->total_cost.duplicate_packets;
  outcome.replayed_packets = report->total_cost.replayed_packets;
  outcome.attempts = static_cast<size_t>(report->attempts);
  outcome.degraded = report->certificate.degraded;
  outcome.success = report->success;
  outcome.coverage = report->certificate.coverage();
  return outcome;
}

/// Greedily minimizes a violating schedule and renders it as the JSON
/// reproducer. Deterministic: re-derives each candidate schedule from
/// scratch.
std::string MinimizedReproducer(const ChaosParams& params, bool external) {
  const auto reproduces = [external](const ChaosParams& candidate) {
    auto o = RunChaosTrial(candidate, external);
    return o.ok() && !o->violations.empty();
  };
  const ChaosParams minimal = MinimizeChaos(params, reproduces);
  auto tb = Testbed::Create(SmallDeployment(minimal.seed));
  if (!tb.ok()) return "(reproducer testbed failed)";
  auto q = (*tb)->ParseQuery(kQuery);
  if (!q.ok()) return "(reproducer query failed)";
  (*tb)->DisseminateQuery(*q);
  return ChaosScheduleToJson(minimal, MakeChaosSchedule(**tb, minimal));
}

void SoakExecutor(bool external, int num_trials, uint64_t sweep_seed) {
  ParallelRunner runner(0);  // flag/env/hardware
  auto outcomes =
      runner.Run(num_trials, sweep_seed, [&](const TrialContext& ctx) {
        auto o = RunChaosTrial(SwarmParams(ctx.seed), external);
        EXPECT_TRUE(o.ok()) << "trial " << ctx.trial << ": " << o.status();
        return o.ok() ? *o : TrialOutcome{};
      });
  ASSERT_TRUE(outcomes.ok()) << outcomes.status();

  size_t repairs = 0;
  size_t succeeded = 0;
  size_t degraded = 0;
  size_t duplicates = 0;
  size_t reordered = 0;
  uint64_t dup_packets = 0;
  bool dumped_reproducer = false;
  for (int i = 0; i < num_trials; ++i) {
    const TrialOutcome& o = (*outcomes)[static_cast<size_t>(i)];
    // With graceful degradation enabled an execution must always complete;
    // partial coverage is certified, never an abort.
    EXPECT_TRUE(o.success) << "trial " << i << " did not complete";
    for (const std::string& v : o.violations) {
      ADD_FAILURE() << "trial " << i << ": " << v;
    }
    if (!o.violations.empty() && !dumped_reproducer) {
      // First violation: print a minimized schedule so the failure can be
      // replayed standalone without re-running the whole swarm.
      dumped_reproducer = true;
      const uint64_t trial_seed =
          DeriveTrialSeed(sweep_seed, static_cast<uint64_t>(i));
      ADD_FAILURE() << "reproducer: "
                    << MinimizedReproducer(SwarmParams(trial_seed), external);
    }
    repairs += o.repairs_attempted;
    succeeded += o.repairs_succeeded;
    degraded += o.degraded ? 1u : 0u;
    duplicates += o.duplicate_deliveries;
    reordered += o.reordered_messages;
    dup_packets += o.duplicate_packets;
  }
  // Non-vacuity: across the sweep the chaos must actually have exercised
  // the repair path, the degradation path and every delivery-semantics
  // axis the guard defends against (deterministic: fixed seeds).
  EXPECT_GT(repairs, 0u);
  EXPECT_GT(succeeded, 0u);
  EXPECT_GT(degraded, 0u);
  EXPECT_GT(duplicates, 0u);
  EXPECT_GT(reordered, 0u);
  EXPECT_GT(dup_packets, 0u);
}

TEST(ChaosSoakTest, FiftySchedulesSensJoinHoldInvariants) {
  SoakExecutor(/*external=*/false, /*num_trials=*/50, /*sweep_seed=*/1009);
}

TEST(ChaosSoakTest, ExternalJoinHoldsInvariants) {
  SoakExecutor(/*external=*/true, /*num_trials=*/12, /*sweep_seed=*/2027);
}

/// Renders a chaos sweep the way a bench would: one fingerprint line per
/// trial, collected in trial order.
std::string RenderChaosSweep(int threads, uint64_t sweep_seed) {
  constexpr int kTrials = 6;
  ParallelRunner runner(threads);
  auto lines = runner.Run(kTrials, sweep_seed, [&](const TrialContext& ctx) {
    auto o = RunChaosTrial(SwarmParams(ctx.seed), /*external=*/false);
    EXPECT_TRUE(o.ok()) << o.status();
    return o.ok() ? o->fingerprint : std::string();
  });
  EXPECT_TRUE(lines.ok()) << lines.status();
  if (!lines.ok()) return "";
  std::ostringstream out;
  for (const std::string& line : *lines) out << line << "\n";
  return out.str();
}

TEST(ChaosDeterminismTest, OneThreadAndFourThreadsAreByteIdentical) {
  const std::string seq = RenderChaosSweep(/*threads=*/1, /*sweep_seed=*/42);
  const std::string par = RenderChaosSweep(/*threads=*/4, /*sweep_seed=*/42);
  ASSERT_FALSE(seq.empty());
  EXPECT_EQ(seq, par);
}

TEST(ChaosDeterminismTest, SameSeedReplaysAreByteIdentical) {
  const std::string a = RenderChaosSweep(/*threads=*/4, /*sweep_seed=*/7);
  const std::string b = RenderChaosSweep(/*threads=*/4, /*sweep_seed=*/7);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ChaosDeterminismTest, DifferentSweepSeedsDiffer) {
  EXPECT_NE(RenderChaosSweep(2, 42), RenderChaosSweep(2, 43));
}

/// The bit-identity contract behind "all off by default": on a fault-free
/// deployment, enabling every self-healing feature must not change a
/// single packet, byte, energy debit or trace event.
TEST(ChaosDeterminismTest, SelfHealingIsInertWithoutFaults) {
  auto run = [](const join::ProtocolConfig& config) -> std::string {
    auto tb = Testbed::Create(SmallDeployment(321));
    if (!tb.ok()) return "create-failed";
    auto q = (*tb)->ParseQuery(kQuery);
    if (!q.ok()) return "parse-failed";
    (*tb)->DisseminateQuery(*q);
    obs::Tracer tracer;
    (*tb)->AttachTracer(&tracer);
    auto report = (*tb)->MakeSensJoin(config).Execute(*q, 0);
    (*tb)->AttachTracer(nullptr);
    if (!report.ok()) return "execute-failed";
    return ExecutionFingerprint(*report, &tracer);
  };
  const std::string baseline = run(join::ProtocolConfig{});
  const std::string healing = run(SelfHealingConfig());
  ASSERT_NE(baseline, "create-failed");
  ASSERT_NE(baseline, "execute-failed");
  EXPECT_EQ(baseline, healing);
}

/// An expired watchdog must short-circuit repair: with an already-elapsed
/// budget, a crashed subtree is certified as excluded without a single
/// repair attempt, and the execution still completes.
TEST(ChaosWatchdogTest, ExpiredWatchdogDegradesWithoutRepair) {
  auto tb = Testbed::Create(SmallDeployment(9));
  ASSERT_TRUE(tb.ok()) << tb.status();
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok()) << q.status();
  (*tb)->DisseminateQuery(*q);

  // Crash the in-tree node with the largest subtree shortly after the
  // execution starts: its branch is the most likely to still be mid-flight.
  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId victim = sim::kInvalidNode;
  int best = 0;
  for (sim::NodeId u = 0; u < tree.num_nodes(); ++u) {
    if (!tree.InTree(u) || u == tree.root()) continue;
    if (tree.subtree_size(u) > best) {
      best = tree.subtree_size(u);
      victim = u;
    }
  }
  ASSERT_NE(victim, sim::kInvalidNode);

  sim::FaultPlan plan;
  sim::CrashEvent crash;
  crash.node = victim;
  crash.at = (*tb)->simulator().now() + 1e-4;
  plan.crash_events.push_back(crash);
  (*tb)->InjectFaults(plan);

  join::ProtocolConfig config = SelfHealingConfig();
  config.watchdog_base_s = -1.0;  // deadline already in the past
  config.watchdog_per_hop_factor = 0.0;
  auto report = (*tb)->MakeSensJoin(config).Execute(*q, 0);
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_TRUE(report->success);
  EXPECT_GT(report->watchdog_expirations, 0u);
  EXPECT_EQ(report->repairs_attempted, 0u);
  EXPECT_TRUE(report->certificate.degraded);
  EXPECT_TRUE(report->certificate.IsExcluded(victim));
}

}  // namespace
}  // namespace sensjoin::testbed
