#include "sensjoin/sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace sensjoin::sim {
namespace {

TEST(EventQueueTest, FiresInTimestampOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.ScheduleAt(3.0, [&] { fired.push_back(3); });
  q.ScheduleAt(1.0, [&] { fired.push_back(1); });
  q.ScheduleAt(2.0, [&] { fired.push_back(2); });
  q.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5.0, [&fired, i] { fired.push_back(i); });
  }
  q.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fire_time = -1;
  q.ScheduleAt(10.0, [&] {
    q.ScheduleAfter(5.0, [&] { fire_time = q.now(); });
  });
  q.Run();
  EXPECT_EQ(fire_time, 15.0);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.ScheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // second cancel is a no-op
  q.Run();
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(9999));
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<int> fired;
  q.ScheduleAt(1.0, [&] { fired.push_back(1); });
  q.ScheduleAt(2.0, [&] { fired.push_back(2); });
  q.ScheduleAt(3.0, [&] { fired.push_back(3); });
  EXPECT_EQ(q.RunUntil(2.5), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 2.5);
  EXPECT_EQ(q.PendingCount(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesTimeWithEmptyQueue) {
  EventQueue q;
  EXPECT_EQ(q.RunUntil(7.0), 0u);
  EXPECT_EQ(q.now(), 7.0);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) q.ScheduleAfter(1.0, chain);
  };
  q.ScheduleAt(0.0, chain);
  q.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(q.now(), 99.0);
}

TEST(EventQueueTest, PendingCountTracksCancellations) {
  EventQueue q;
  const EventId a = q.ScheduleAt(1.0, [] {});
  q.ScheduleAt(2.0, [] {});
  EXPECT_EQ(q.PendingCount(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_FALSE(q.Empty());
  q.Run();
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueDeathTest, SchedulingIntoThePastAborts) {
  EventQueue q;
  q.ScheduleAt(5.0, [] {});
  q.Run();
  EXPECT_DEATH(q.ScheduleAt(1.0, [] {}), "scheduling into the past");
}

TEST(EventQueueTest, ShrinkToFitReleasesDrainedPool) {
  EventQueue q;
  for (int i = 0; i < 1000; ++i) q.ScheduleAt(static_cast<SimTime>(i), [] {});
  q.Run();
  EXPECT_GE(q.slot_count(), 1000u);  // high-water mark from the burst
  q.ShrinkToFit();
  EXPECT_EQ(q.slot_count(), 0u);
  EXPECT_EQ(q.free_slot_count(), 0u);
  // The queue is fully usable afterwards.
  std::vector<int> fired;
  q.ScheduleAfter(1.0, [&] { fired.push_back(1); });
  q.ScheduleAfter(2.0, [&] { fired.push_back(2); });
  q.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, ShrinkToFitKeepsPendingEventsIntact) {
  EventQueue q;
  std::vector<int> fired;
  // Survivors claim the first slots, then a burst drains above them: shrink
  // must drop only the trailing inactive run, never a pending callback.
  const EventId keep = q.ScheduleAt(2.0, [&] { fired.push_back(2); });
  q.ScheduleAt(3.0, [&] { fired.push_back(3); });
  for (int i = 0; i < 500; ++i) q.ScheduleAt(1.0, [] {});
  q.RunUntil(1.5);
  q.ShrinkToFit();
  EXPECT_EQ(q.PendingCount(), 2u);
  EXPECT_EQ(q.slot_count(), 2u);
  // Outstanding handles still work after the shrink.
  EXPECT_TRUE(q.Cancel(keep));
  q.Run();
  EXPECT_EQ(fired, (std::vector<int>{3}));
}

TEST(EventQueueTest, StaleIdsStayDeadAcrossShrink) {
  EventQueue q;
  const EventId fired_id = q.ScheduleAt(1.0, [] {});
  q.Run();
  q.ShrinkToFit();
  // New events may reuse the discarded slot index; the old id must not
  // cancel them (generation floor).
  std::vector<int> fired;
  q.ScheduleAfter(1.0, [&] { fired.push_back(1); });
  EXPECT_FALSE(q.Cancel(fired_id));
  q.Run();
  EXPECT_EQ(fired, (std::vector<int>{1}));
}

TEST(EventQueueTest, ShrinkToFitPreservesStatistics) {
  EventQueue q;
  for (int i = 0; i < 64; ++i) q.ScheduleAt(1.0, [] {});
  q.Run();
  q.ShrinkToFit();
  EXPECT_EQ(q.total_scheduled(), 64u);
  EXPECT_EQ(q.total_fired(), 64u);
  EXPECT_EQ(q.max_pending(), 64u);
}

}  // namespace
}  // namespace sensjoin::sim
