// The observability contract: tracing observes the simulation without
// perturbing it. An attached tracer (enabled or disabled) must leave every
// CostReport bit-identical to an untraced run, including under faults, and
// per-trial traces must not depend on the ParallelRunner's thread count.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin {
namespace {

testbed::TestbedParams SmallParams(uint64_t seed = 42) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 120;
  params.placement.area_width_m = 320;
  params.placement.area_height_m = 320;
  params.seed = seed;
  return params;
}

constexpr const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 300 ONCE";

sim::FaultPlan LossyPlan() {
  sim::FaultPlan plan;
  plan.default_loss_rate = 0.05;
  plan.arq.enabled = true;
  return plan;
}

// Bit-exact CostReport comparison: doubles compared with ==, because the
// traced run must execute the very same floating-point operations.
void ExpectIdenticalCost(const join::CostReport& a,
                         const join::CostReport& b) {
  EXPECT_EQ(a.phases.collection_packets, b.phases.collection_packets);
  EXPECT_EQ(a.phases.filter_packets, b.phases.filter_packets);
  EXPECT_EQ(a.phases.final_packets, b.phases.final_packets);
  EXPECT_EQ(a.join_packets, b.join_packets);
  EXPECT_EQ(a.join_bytes, b.join_bytes);
  EXPECT_EQ(a.energy_mj, b.energy_mj);
  EXPECT_EQ(a.per_node_packets, b.per_node_packets);
  EXPECT_EQ(a.retransmitted_packets, b.retransmitted_packets);
  EXPECT_EQ(a.ack_packets, b.ack_packets);
  EXPECT_EQ(a.retransmit_energy_mj, b.retransmit_energy_mj);
  EXPECT_EQ(a.ack_energy_mj, b.ack_energy_mj);
  EXPECT_EQ(a.corrupted_packets, b.corrupted_packets);
  EXPECT_EQ(a.undetected_corrupted_packets,
            b.undetected_corrupted_packets);
  EXPECT_EQ(a.crc_bytes_sent, b.crc_bytes_sent);
  EXPECT_EQ(a.integrity_retransmit_energy_mj,
            b.integrity_retransmit_energy_mj);
  EXPECT_EQ(a.crc_energy_mj, b.crc_energy_mj);
}

// One execution of SENS-Join on a fresh faulty testbed; `tracer` may be
// null (untraced), disabled, or enabled.
join::CostReport RunOnce(uint64_t seed, obs::Tracer* tracer) {
  auto tb = testbed::Testbed::Create(SmallParams(seed));
  SENSJOIN_CHECK(tb.ok()) << tb.status();
  if (tracer != nullptr) (*tb)->AttachTracer(tracer);
  (*tb)->InjectFaults(LossyPlan());
  auto q = (*tb)->ParseQuery(kQuery);
  SENSJOIN_CHECK(q.ok()) << q.status();
  (*tb)->DisseminateQuery(*q);
  auto report = (*tb)->MakeSensJoin().Execute(*q, 0);
  SENSJOIN_CHECK(report.ok()) << report.status();
  return report->cost;
}

TEST(TraceDeterminismTest, EnabledTracerDoesNotPerturbResults) {
  const join::CostReport untraced = RunOnce(42, nullptr);
  obs::Tracer tracer;
  const join::CostReport traced = RunOnce(42, &tracer);
  if (obs::kTracingCompiledIn) EXPECT_GT(tracer.buffer().size(), 0u);
  ExpectIdenticalCost(untraced, traced);
}

TEST(TraceDeterminismTest, DisabledTracerIsInvisible) {
  const join::CostReport untraced = RunOnce(42, nullptr);
  obs::Tracer tracer;
  tracer.set_enabled(false);
  const join::CostReport traced = RunOnce(42, &tracer);
  EXPECT_EQ(tracer.buffer().size(), 0u);
  EXPECT_EQ(tracer.metrics().num_instruments(),
            obs::Tracer().metrics().num_instruments());
  ExpectIdenticalCost(untraced, traced);
}

// Each trial owns its testbed and tracer, so the exported per-trial traces
// must be byte-identical whether the sweep ran on one thread or four.
TEST(TraceDeterminismTest, TracesAreThreadCountInvariant) {
  constexpr int kTrials = 4;
  auto run_sweep = [](int threads) -> std::vector<std::string> {
    testbed::ParallelRunner runner(threads);
    auto traces = runner.Run(
        kTrials, /*sweep_seed=*/7,
        [](const testbed::TrialContext& ctx) -> std::string {
          auto tb = testbed::Testbed::Create(SmallParams(ctx.seed));
          SENSJOIN_CHECK(tb.ok()) << tb.status();
          obs::Tracer tracer;
          (*tb)->AttachTracer(&tracer);
          auto q = (*tb)->ParseQuery(kQuery);
          SENSJOIN_CHECK(q.ok()) << q.status();
          auto report = (*tb)->MakeSensJoin().Execute(*q, 0);
          SENSJOIN_CHECK(report.ok()) << report.status();
          return obs::ChromeTraceJson(tracer);
        });
    SENSJOIN_CHECK(traces.ok()) << traces.status();
    return *traces;
  };

  const std::vector<std::string> sequential = run_sweep(1);
  const std::vector<std::string> parallel = run_sweep(4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (int i = 0; i < kTrials; ++i) {
    EXPECT_GT(sequential[i].size(), 2u);
    EXPECT_EQ(sequential[i], parallel[i]) << "trial " << i;
  }
}

}  // namespace
}  // namespace sensjoin