// Property fuzzing: for randomly generated join queries over random
// deployments, SENS-Join must return exactly the external join's result —
// the conservative pre-computation must never lose a tuple, whatever the
// mix of theta conditions, absolute values, distances, selections and
// aggregates (Requirements 1 and 2: any number and kind of join
// conditions, arbitrary tuple placements).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"
#include "sensjoin/sensjoin.h"

namespace sensjoin {
namespace {

struct AttrSpec {
  const char* name;
  double lo;   // plausible constant range for comparisons
  double hi;
  double diff; // plausible range for difference thresholds
};

const AttrSpec kAttrs[] = {
    {"x", 0, 350, 200},      {"y", 0, 350, 200},
    {"temp", 15, 27, 5},     {"hum", 30, 70, 15},
    {"pres", 1000, 1020, 6}, {"light", 300, 700, 150},
};

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

const char* RandomCmp(Rng& rng) {
  const char* ops[] = {"<", "<=", ">", ">="};
  return ops[rng.UniformInt(0, 3)];
}

/// One join condition referencing both aliases.
std::string RandomJoinCondition(Rng& rng) {
  const AttrSpec& a = kAttrs[rng.UniformInt(0, 5)];
  switch (rng.UniformInt(0, 5)) {
    case 0:  // difference threshold
      return std::string("A.") + a.name + " - B." + a.name + " " +
             RandomCmp(rng) + " " + Num(rng.UniformDouble(0, a.diff));
    case 1:  // absolute difference
      return std::string("|A.") + a.name + " - B." + a.name + "| " +
             RandomCmp(rng) + " " + Num(rng.UniformDouble(0, a.diff));
    case 2:  // distance predicate
      return std::string("distance(A.x, A.y, B.x, B.y) ") + RandomCmp(rng) +
             " " + Num(rng.UniformDouble(50, 450));
    case 3: {  // arithmetic over two attributes
      const AttrSpec& b = kAttrs[rng.UniformInt(0, 5)];
      return std::string("A.") + a.name + " + B." + b.name + " " +
             RandomCmp(rng) + " " +
             Num(rng.UniformDouble(a.lo + b.lo, a.hi + b.hi));
    }
    case 4: {  // scaled difference with unary minus
      const AttrSpec& b = kAttrs[rng.UniformInt(0, 5)];
      return std::string("A.") + a.name + " * 0.5 - -B." + b.name + " " +
             RandomCmp(rng) + " " +
             Num(rng.UniformDouble(a.lo * 0.5 + b.lo, a.hi * 0.5 + b.hi));
    }
    default:  // constant division
      return std::string("(A.") + a.name + " - B." + a.name + ") / 2 " +
             RandomCmp(rng) + " " + Num(rng.UniformDouble(0, a.diff / 2));
  }
}

std::string RandomSelection(Rng& rng, const char* alias) {
  const AttrSpec& a = kAttrs[rng.UniformInt(0, 5)];
  return std::string(alias) + "." + a.name + " " + RandomCmp(rng) + " " +
         Num(rng.UniformDouble(a.lo, a.hi));
}

std::string RandomQuery(Rng& rng) {
  std::string sql = "SELECT ";
  if (rng.NextBool(0.2)) {
    sql += "COUNT(*)";
  } else {
    const int cols = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < cols; ++i) {
      if (i > 0) sql += ", ";
      sql += (rng.NextBool(0.5) ? "A." : "B.");
      sql += kAttrs[rng.UniformInt(0, 5)].name;
    }
  }
  sql += " FROM sensors A, sensors B WHERE ";
  const int conditions = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < conditions; ++i) {
    if (i > 0) sql += " AND ";
    sql += RandomJoinCondition(rng);
  }
  if (rng.NextBool(0.4)) sql += " AND " + RandomSelection(rng, "A");
  if (rng.NextBool(0.4)) sql += " AND " + RandomSelection(rng, "B");
  sql += " ONCE";
  return sql;
}

std::vector<std::vector<double>> SortedRows(const join::JoinResult& r) {
  auto rows = r.rows;
  std::sort(rows.begin(), rows.end());
  return rows;
}

class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzzTest, SensJoinAlwaysMatchesExternalJoin) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 120;
  params.placement.area_width_m = 350;
  params.placement.area_height_m = 350;
  params.seed = GetParam();
  auto tb = testbed::Testbed::Create(params);
  ASSERT_TRUE(tb.ok());

  Rng rng(GetParam() * 7919 + 1);
  int executed = 0;
  for (int i = 0; i < 12; ++i) {
    const std::string sql = RandomQuery(rng);
    SCOPED_TRACE(sql);
    auto q = (*tb)->ParseQuery(sql);
    ASSERT_TRUE(q.ok()) << q.status();
    auto ext = (*tb)->MakeExternalJoin().Execute(*q, i);
    auto sens = (*tb)->MakeSensJoin().Execute(*q, i);
    ASSERT_TRUE(ext.ok()) << ext.status();
    ASSERT_TRUE(sens.ok()) << sens.status();
    EXPECT_EQ(ext->result.matched_combinations,
              sens->result.matched_combinations);
    EXPECT_EQ(SortedRows(ext->result), SortedRows(sens->result));
    EXPECT_EQ(ext->result.contributing_nodes,
              sens->result.contributing_nodes);
    ++executed;
  }
  EXPECT_EQ(executed, 12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// The parser/analyzer must reject garbage without crashing.
TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  data::Schema schema({{"x", 2}, {"temp", 2}});
  Rng rng(99);
  const char* pieces[] = {"SELECT", "FROM",  "WHERE", "ONCE",  "AND", "OR",
                          "A",      "B",     ".",     ",",     "(",   ")",
                          "*",      "+",     "-",     "/",     "<",   ">",
                          "=",      "temp",  "x",     "1.5",   "|",   "abs",
                          "min",    "count", "!=",    "<=",    "s"};
  for (int i = 0; i < 3000; ++i) {
    std::string sql;
    const int len = static_cast<int>(rng.UniformInt(1, 18));
    for (int j = 0; j < len; ++j) {
      sql += pieces[rng.UniformInt(0, std::size(pieces) - 1)];
      sql += " ";
    }
    // Must either parse + analyze cleanly or return an error Status;
    // never crash.
    auto q = query::AnalyzedQuery::FromString(sql, schema);
    (void)q;
  }
}

}  // namespace
}  // namespace sensjoin
