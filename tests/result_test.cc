#include "sensjoin/join/result.h"

#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/data/schema.h"
#include "sensjoin/query/query.h"

namespace sensjoin::join {
namespace {

// Schema: temp(0), hum(1).
data::Schema MakeSchema() { return data::Schema({{"temp", 2}, {"hum", 2}}); }

data::Tuple MakeTuple(sim::NodeId node, double temp, double hum) {
  data::Tuple t;
  t.node = node;
  t.values = {temp, hum};
  return t;
}

query::AnalyzedQuery MustAnalyze(const std::string& sql) {
  auto q = query::AnalyzedQuery::FromString(sql, MakeSchema());
  SENSJOIN_CHECK(q.ok()) << q.status();
  return std::move(q).value();
}

TEST(ComputeExactJoinTest, EquiJoinRowsAndContributors) {
  const auto q = MustAnalyze(
      "SELECT A.hum, B.hum FROM s A, s B WHERE A.temp = B.temp ONCE");
  const std::vector<data::Tuple> tuples = {
      MakeTuple(1, 20.0, 40), MakeTuple(2, 21.0, 50), MakeTuple(3, 20.0, 60)};
  std::vector<const data::Tuple*> side;
  for (const auto& t : tuples) side.push_back(&t);
  const JoinResult r = ComputeExactJoin(q, {side, side});
  // SQL semantics: (1,1), (1,3), (3,1), (3,3), (2,2) all have equal temps.
  EXPECT_EQ(r.matched_combinations, 5u);
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.contributing_nodes, (std::vector<sim::NodeId>{1, 2, 3}));
  EXPECT_EQ(r.column_labels, (std::vector<std::string>{"A.hum", "B.hum"}));
}

TEST(ComputeExactJoinTest, ThetaJoinIsAsymmetric) {
  const auto q = MustAnalyze(
      "SELECT A.hum FROM s A, s B WHERE A.temp - B.temp > 0.5 ONCE");
  const std::vector<data::Tuple> tuples = {MakeTuple(1, 20.0, 40),
                                           MakeTuple(2, 21.0, 50)};
  std::vector<const data::Tuple*> side;
  for (const auto& t : tuples) side.push_back(&t);
  const JoinResult r = ComputeExactJoin(q, {side, side});
  ASSERT_EQ(r.matched_combinations, 1u);  // only (2, 1)
  EXPECT_DOUBLE_EQ(r.rows[0][0], 50.0);
}

TEST(ComputeExactJoinTest, DifferentCandidateListsPerTable) {
  const auto q = MustAnalyze(
      "SELECT A.hum, B.hum FROM hot A, cold B WHERE A.temp > B.temp ONCE");
  const data::Tuple hot = MakeTuple(1, 30.0, 10);
  const data::Tuple cold1 = MakeTuple(2, 10.0, 20);
  const data::Tuple cold2 = MakeTuple(3, 40.0, 30);
  const JoinResult r = ComputeExactJoin(q, {{&hot}, {&cold1, &cold2}});
  ASSERT_EQ(r.matched_combinations, 1u);
  EXPECT_EQ(r.rows[0], (std::vector<double>{10.0, 20.0}));
}

TEST(ComputeExactJoinTest, Aggregates) {
  const auto q = MustAnalyze(
      "SELECT COUNT(*), MIN(A.hum - B.hum), MAX(A.hum), AVG(B.hum), "
      "SUM(A.hum) FROM s A, s B WHERE A.temp > B.temp ONCE");
  const std::vector<data::Tuple> tuples = {
      MakeTuple(1, 20.0, 40), MakeTuple(2, 21.0, 50), MakeTuple(3, 22.0, 90)};
  std::vector<const data::Tuple*> side;
  for (const auto& t : tuples) side.push_back(&t);
  const JoinResult r = ComputeExactJoin(q, {side, side});
  // Matches: (2,1), (3,1), (3,2).
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0], 3.0);                       // COUNT
  EXPECT_DOUBLE_EQ(r.rows[0][1], 10.0);                      // MIN diff
  EXPECT_DOUBLE_EQ(r.rows[0][2], 90.0);                      // MAX A.hum
  EXPECT_DOUBLE_EQ(r.rows[0][3], (40.0 + 40.0 + 50.0) / 3);  // AVG B.hum
  EXPECT_DOUBLE_EQ(r.rows[0][4], 50.0 + 90.0 + 90.0);        // SUM A.hum
}

TEST(ComputeExactJoinTest, EmptyAggregatesYieldCountZero) {
  const auto q = MustAnalyze(
      "SELECT COUNT(*) FROM s A, s B WHERE A.temp - B.temp > 100 ONCE");
  const data::Tuple t = MakeTuple(1, 20.0, 40);
  const JoinResult r = ComputeExactJoin(q, {{&t}, {&t}});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0], 0.0);
  EXPECT_EQ(r.matched_combinations, 0u);
}

TEST(ComputeExactJoinTest, SelectStarConcatenatesAllAttributes) {
  const auto q = MustAnalyze(
      "SELECT * FROM s A, s B WHERE A.temp = B.temp ONCE");
  const data::Tuple t = MakeTuple(1, 20.0, 40);
  const JoinResult r = ComputeExactJoin(q, {{&t}, {&t}});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0], (std::vector<double>{20, 40, 20, 40}));
  EXPECT_EQ(r.column_labels,
            (std::vector<std::string>{"A.temp", "A.hum", "B.temp", "B.hum"}));
}

TEST(ComputeExactJoinTest, ThreeWayJoin) {
  const auto q = MustAnalyze(
      "SELECT A.hum, B.hum, C.hum FROM s A, s B, s C "
      "WHERE A.temp < B.temp AND B.temp < C.temp ONCE");
  const std::vector<data::Tuple> tuples = {
      MakeTuple(1, 1.0, 10), MakeTuple(2, 2.0, 20), MakeTuple(3, 3.0, 30)};
  std::vector<const data::Tuple*> side;
  for (const auto& t : tuples) side.push_back(&t);
  const JoinResult r = ComputeExactJoin(q, {side, side, side});
  ASSERT_EQ(r.matched_combinations, 1u);
  EXPECT_EQ(r.rows[0], (std::vector<double>{10, 20, 30}));
}

}  // namespace
}  // namespace sensjoin::join
