#include "sensjoin/common/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace sensjoin {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const int64_t v = rng.UniformInt(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++counts[v - 10];
  }
  // Every value appears with roughly uniform frequency.
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(5);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(9);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(55);
  Rng b(55);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
  // Fork does not replay the parent.
  Rng parent(55);
  Rng fork = parent.Fork();
  EXPECT_NE(fork.NextUint64(), parent.NextUint64());
}

}  // namespace
}  // namespace sensjoin
