#include "sensjoin/query/expr_eval.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "sensjoin/data/schema.h"
#include "sensjoin/query/interval_eval.h"
#include "sensjoin/query/parser.h"
#include "sensjoin/query/query.h"

namespace sensjoin::query {
namespace {

// Schema: x(0) y(1) temp(2) hum(3).
data::Schema MakeSchema() {
  return data::Schema({{"x", 2}, {"y", 2}, {"temp", 2}, {"hum", 2}});
}

/// Parses a two-table predicate/expression and resolves it through the
/// analyzer by embedding it in a query.
std::unique_ptr<Expr> ResolvedPredicate(const std::string& pred) {
  auto q = AnalyzedQuery::FromString(
      "SELECT A.hum, B.hum FROM s A, s B WHERE " + pred + " ONCE",
      MakeSchema());
  SENSJOIN_CHECK(q.ok()) << q.status();
  // Re-AND whatever the analyzer split apart (join conjuncts + pushed-down
  // selections) so the helper accepts arbitrary WHERE clauses.
  std::unique_ptr<Expr> combined;
  auto add = [&combined](const Expr& e) {
    combined = combined == nullptr
                   ? e.Clone()
                   : Expr::Binary(BinaryOp::kAnd, std::move(combined),
                                  e.Clone());
  };
  for (const auto& p : q->join_predicates()) add(*p);
  for (int t = 0; t < q->num_tables(); ++t) {
    if (q->table(t).selection != nullptr) add(*q->table(t).selection);
  }
  SENSJOIN_CHECK(combined != nullptr);
  return combined;
}

std::unique_ptr<Expr> ResolvedSelectExpr(const std::string& expr) {
  auto q = AnalyzedQuery::FromString(
      "SELECT " + expr + " FROM s A, s B WHERE A.temp = B.temp ONCE",
      MakeSchema());
  SENSJOIN_CHECK(q.ok()) << q.status();
  return q->select()[0].expr->Clone();
}

data::Tuple MakeTuple(double x, double y, double temp, double hum) {
  data::Tuple t;
  t.values = {x, y, temp, hum};
  return t;
}

TEST(EvalScalarTest, ArithmeticAndFunctions) {
  const data::Tuple a = MakeTuple(0, 0, 21.5, 40);
  const data::Tuple b = MakeTuple(3, 4, 20.0, 60);
  TupleContext ctx({&a, &b});

  EXPECT_DOUBLE_EQ(EvalScalar(*ResolvedSelectExpr("A.temp - B.temp"), ctx),
                   1.5);
  EXPECT_DOUBLE_EQ(EvalScalar(*ResolvedSelectExpr("abs(B.temp - A.temp)"), ctx),
                   1.5);
  EXPECT_DOUBLE_EQ(
      EvalScalar(*ResolvedSelectExpr("distance(A.x, A.y, B.x, B.y)"), ctx),
      5.0);
  EXPECT_DOUBLE_EQ(EvalScalar(*ResolvedSelectExpr("min(A.hum, B.hum)"), ctx),
                   40.0);
  EXPECT_DOUBLE_EQ(EvalScalar(*ResolvedSelectExpr("max(A.hum, B.hum)"), ctx),
                   60.0);
  EXPECT_DOUBLE_EQ(EvalScalar(*ResolvedSelectExpr("sqrt(A.hum + 9)"), ctx),
                   7.0);
  EXPECT_DOUBLE_EQ(
      EvalScalar(*ResolvedSelectExpr("-A.hum * 2 + B.hum / 4"), ctx), -65.0);
}

TEST(EvalPredicateTest, ComparisonsAndLogic) {
  const data::Tuple a = MakeTuple(0, 0, 21.5, 40);
  const data::Tuple b = MakeTuple(3, 4, 20.0, 60);
  TupleContext ctx({&a, &b});

  EXPECT_TRUE(EvalPredicate(*ResolvedPredicate("A.temp > B.temp"), ctx));
  EXPECT_FALSE(EvalPredicate(*ResolvedPredicate("A.temp <= B.temp"), ctx));
  EXPECT_TRUE(EvalPredicate(*ResolvedPredicate("A.hum != B.hum"), ctx));
  EXPECT_TRUE(EvalPredicate(
      *ResolvedPredicate("A.temp > B.temp AND A.hum < B.hum"), ctx));
  EXPECT_TRUE(EvalPredicate(
      *ResolvedPredicate("A.temp < B.temp OR A.hum < B.hum"), ctx));
  EXPECT_FALSE(EvalPredicate(
      *ResolvedPredicate("NOT (A.temp - B.temp > 1 AND B.hum > A.hum)"), ctx));
  EXPECT_TRUE(EvalPredicate(
      *ResolvedPredicate("|A.temp - B.temp| < 2.0"), ctx));
}

TEST(ValidateExprTest, RejectsUnresolvedRefs) {
  auto e = Expr::AttrRef("A", "temp");  // never resolved
  EXPECT_EQ(ValidateExpr(*e, false).code(), StatusCode::kFailedPrecondition);
}

TEST(ValidateExprTest, TypeDiscipline) {
  auto num = Expr::Literal(1.0);
  EXPECT_TRUE(ValidateExpr(*num, false).ok());
  EXPECT_FALSE(ValidateExpr(*num, true).ok());  // literal is not a predicate

  auto cmp = Expr::Binary(BinaryOp::kLt, Expr::Literal(1), Expr::Literal(2));
  EXPECT_TRUE(ValidateExpr(*cmp, true).ok());
  EXPECT_FALSE(ValidateExpr(*cmp, false).ok());

  // AND of numbers is ill-typed.
  auto bad = Expr::Binary(BinaryOp::kAnd, Expr::Literal(1), Expr::Literal(2));
  EXPECT_FALSE(ValidateExpr(*bad, true).ok());

  // Comparison of predicates is ill-typed.
  auto cmp2 = Expr::Binary(BinaryOp::kLt, Expr::Literal(1), Expr::Literal(2));
  auto bad2 = Expr::Binary(BinaryOp::kLt, std::move(cmp2), Expr::Literal(1));
  EXPECT_FALSE(ValidateExpr(*bad2, true).ok());
}

TEST(IntervalEvalTest, MatchesScalarEvalOnDegenerateIntervals) {
  const data::Tuple a = MakeTuple(0, 0, 21.5, 40);
  const data::Tuple b = MakeTuple(3, 4, 20.0, 60);
  std::vector<Interval> row_a;
  std::vector<Interval> row_b;
  for (double v : a.values) row_a.push_back(Interval::Single(v));
  for (double v : b.values) row_b.push_back(Interval::Single(v));
  RowIntervalContext ictx({&row_a, &row_b});
  TupleContext sctx({&a, &b});

  for (const char* expr :
       {"A.temp - B.temp", "distance(A.x, A.y, B.x, B.y)",
        "abs(A.hum - B.hum)", "min(A.temp, B.temp) * 2"}) {
    auto e = ResolvedSelectExpr(expr);
    const Interval iv = EvalInterval(*e, ictx);
    const double s = EvalScalar(*e, sctx);
    EXPECT_DOUBLE_EQ(iv.lo, s) << expr;
    EXPECT_DOUBLE_EQ(iv.hi, s) << expr;
  }
  for (const char* pred :
       {"A.temp > B.temp", "A.hum = B.hum",
        "A.temp > B.temp AND A.hum < B.hum", "NOT A.temp < B.temp"}) {
    auto e = ResolvedPredicate(pred);
    const Tri t = EvalTri(*e, ictx);
    const bool s = EvalPredicate(*e, sctx);
    EXPECT_EQ(t, s ? Tri::kTrue : Tri::kFalse) << pred;
  }
}

TEST(IntervalEvalTest, WideIntervalsGiveMaybe) {
  std::vector<Interval> row_a = {{0, 10}, {0, 10}, {19, 22}, {0, 100}};
  std::vector<Interval> row_b = {{0, 10}, {0, 10}, {20, 21}, {0, 100}};
  RowIntervalContext ctx({&row_a, &row_b});
  auto e = ResolvedPredicate("A.temp > B.temp");
  EXPECT_EQ(EvalTri(*e, ctx), Tri::kMaybe);
  auto certain = ResolvedPredicate("A.temp - B.temp < 10");
  EXPECT_EQ(EvalTri(*certain, ctx), Tri::kTrue);
  auto impossible = ResolvedPredicate("A.temp - B.temp > 10");
  EXPECT_EQ(EvalTri(*impossible, ctx), Tri::kFalse);
}

}  // namespace
}  // namespace sensjoin::query
