#include "sensjoin/join/planner.h"

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"
#include "sensjoin/join/executor_context.h"

namespace sensjoin::join {
namespace {

testbed::TestbedParams MediumParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 500;
  params.placement.area_width_m = 600;
  params.placement.area_height_m = 600;
  params.seed = seed;
  return params;
}

std::vector<char> AllParticipate(const net::RoutingTree& tree) {
  std::vector<char> p(tree.num_nodes(), 1);
  p[tree.root()] = 0;
  return p;
}

PlannerParams DefaultParams(double fraction) {
  PlannerParams params;
  params.full_tuple_bytes = 6;      // 3 attributes
  params.join_attr_raw_bytes = 2;   // 1 join attribute
  params.expected_fraction = fraction;
  return params;
}

TEST(PlannerTest, LowFractionPrefersSensJoin) {
  auto tb = testbed::Testbed::Create(MediumParams(3));
  ASSERT_TRUE(tb.ok());
  const auto participates = AllParticipate((*tb)->tree());
  EXPECT_EQ(ChoosePlan((*tb)->tree(), participates, DefaultParams(0.02)),
            JoinMethod::kSensJoin);
}

TEST(PlannerTest, FullFractionPrefersExternalJoin) {
  auto tb = testbed::Testbed::Create(MediumParams(3));
  ASSERT_TRUE(tb.ok());
  const auto participates = AllParticipate((*tb)->tree());
  EXPECT_EQ(ChoosePlan((*tb)->tree(), participates, DefaultParams(1.0)),
            JoinMethod::kExternalJoin);
}

TEST(PlannerTest, EstimateIsMonotoneInFraction) {
  auto tb = testbed::Testbed::Create(MediumParams(4));
  ASSERT_TRUE(tb.ok());
  const auto participates = AllParticipate((*tb)->tree());
  double previous = 0;
  for (double f : {0.01, 0.05, 0.2, 0.5, 1.0}) {
    const PlanEstimate e =
        EstimatePlan((*tb)->tree(), participates, DefaultParams(f));
    EXPECT_GE(e.sens(), previous);
    previous = e.sens();
    // Collection never depends on the fraction.
    EXPECT_EQ(e.collection,
              EstimatePlan((*tb)->tree(), participates, DefaultParams(0.01))
                  .collection);
  }
}

TEST(PlannerTest, PredictionsTrackSimulationWithinFactorTwo) {
  auto tb = testbed::Testbed::Create(MediumParams(5));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(A.x, A.y, B.x, B.y) > 700 ONCE");
  ASSERT_TRUE(q.ok());
  auto ext = (*tb)->MakeExternalJoin().Execute(*q, 0);
  auto sens = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(ext.ok() && sens.ok());
  const double fraction =
      static_cast<double>(ext->result.contributing_nodes.size()) /
      ((*tb)->simulator().num_nodes() - 1);

  PlannerParams params;
  params.full_tuple_bytes = q->QueriedTupleBytes(0);
  params.join_attr_raw_bytes = q->JoinAttrTupleBytes(0);
  params.expected_fraction = fraction;
  const PlanEstimate e =
      EstimatePlan((*tb)->tree(), AllParticipate((*tb)->tree()), params);

  EXPECT_GT(e.external, 0.5 * ext->cost.join_packets);
  EXPECT_LT(e.external, 2.0 * ext->cost.join_packets);
  EXPECT_GT(e.sens(), 0.5 * sens->cost.join_packets);
  EXPECT_LT(e.sens(), 2.0 * sens->cost.join_packets);
  // And, crucially, the decision is right.
  EXPECT_EQ(e.Choice(), JoinMethod::kSensJoin);
}

TEST(PlannerTest, NonParticipantsAreFree) {
  auto tb = testbed::Testbed::Create(MediumParams(6));
  ASSERT_TRUE(tb.ok());
  std::vector<char> nobody((*tb)->tree().num_nodes(), 0);
  const PlanEstimate e =
      EstimatePlan((*tb)->tree(), nobody, DefaultParams(0.05));
  EXPECT_EQ(e.external, 0);
  EXPECT_EQ(e.sens(), 0);
}

}  // namespace
}  // namespace sensjoin::join
