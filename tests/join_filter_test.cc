#include "sensjoin/join/join_filter.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"
#include "sensjoin/data/schema.h"
#include "sensjoin/join/join_attr_codec.h"
#include "sensjoin/query/expr_eval.h"
#include "sensjoin/query/query.h"

namespace sensjoin::join {
namespace {

// Schema: temp(0), hum(1).
data::Schema MakeSchema() { return data::Schema({{"temp", 2}, {"hum", 2}}); }

query::AnalyzedQuery MustAnalyze(const std::string& sql) {
  auto q = query::AnalyzedQuery::FromString(sql, MakeSchema());
  SENSJOIN_CHECK(q.ok()) << q.status();
  return std::move(q).value();
}

JoinAttrCodec MakeCodec(int flag_bits, double resolution = 0.1) {
  DimensionSpec d;
  d.attr_name = "temp";
  d.attr_index = 0;
  d.min_val = 0;
  d.max_val = 50;
  d.resolution = resolution;
  auto q = Quantizer::Create({d});
  SENSJOIN_CHECK(q.ok());
  return JoinAttrCodec(std::move(q).value(), flag_bits);
}

TEST(JoinFilterTest, TableRelationBitsAssignsDistinctRelations) {
  const auto self_join = MustAnalyze(
      "SELECT A.hum FROM s A, s B WHERE A.temp = B.temp ONCE");
  EXPECT_EQ(TableRelationBits(self_join), (std::vector<int>{0, 0}));
  const auto hetero = MustAnalyze(
      "SELECT A.hum FROM hot A, cold B WHERE A.temp = B.temp ONCE");
  EXPECT_EQ(TableRelationBits(hetero), (std::vector<int>{0, 1}));
}

TEST(JoinFilterTest, KeepsOnlyKeysWithPartners) {
  const auto q = MustAnalyze(
      "SELECT A.hum FROM s A, s B WHERE A.temp - B.temp > 5 ONCE");
  const JoinAttrCodec codec = MakeCodec(1);
  PointSet collected = codec.EmptySet();
  const uint64_t cold = codec.EncodeTuple({10.0}, 1);
  const uint64_t mid = codec.EncodeTuple({18.0}, 1);
  const uint64_t hot = codec.EncodeTuple({30.0}, 1);
  collected.Insert(cold);
  collected.Insert(mid);
  collected.Insert(hot);
  const FilterJoinResult r = ComputeJoinFilter(q, codec, collected);
  // hot-cold and hot-mid differ by >5; mid-cold differ by 8 > 5 as well,
  // so all three participate.
  EXPECT_EQ(r.filter.size(), 3u);

  // Tighten: only hot-cold qualifies when the threshold is 15.
  const auto q2 = MustAnalyze(
      "SELECT A.hum FROM s A, s B WHERE A.temp - B.temp > 15 ONCE");
  const FilterJoinResult r2 = ComputeJoinFilter(q2, codec, collected);
  EXPECT_EQ(r2.filter.size(), 2u);
  EXPECT_TRUE(r2.filter.Contains(cold));
  EXPECT_TRUE(r2.filter.Contains(hot));
  EXPECT_FALSE(r2.filter.Contains(mid));
}

TEST(JoinFilterTest, EmptyWhenNothingJoins) {
  const auto q = MustAnalyze(
      "SELECT A.hum FROM s A, s B WHERE A.temp - B.temp > 100 ONCE");
  const JoinAttrCodec codec = MakeCodec(1);
  PointSet collected = codec.EmptySet();
  collected.Insert(codec.EncodeTuple({10.0}, 1));
  collected.Insert(codec.EncodeTuple({30.0}, 1));
  const FilterJoinResult r = ComputeJoinFilter(q, codec, collected);
  EXPECT_TRUE(r.filter.empty());
  EXPECT_EQ(r.combinations_matched, 0u);
}

TEST(JoinFilterTest, RespectsRelationEligibility) {
  // hot.temp = cold.temp, but the only equal-temperature pair is two "hot"
  // points -> no match.
  const auto q = MustAnalyze(
      "SELECT A.hum FROM hot A, cold B WHERE A.temp = B.temp ONCE");
  const JoinAttrCodec codec = MakeCodec(2);
  PointSet collected = codec.EmptySet();
  collected.Insert(codec.EncodeTuple({20.0}, 0b01));  // hot (relation bit 0)
  collected.Insert(codec.EncodeTuple({20.5}, 0b01));  // hot, nearby cell
  collected.Insert(codec.EncodeTuple({30.0}, 0b10));  // cold, far away
  const FilterJoinResult r = ComputeJoinFilter(q, codec, collected);
  EXPECT_TRUE(r.filter.empty());

  // A cold point in the same cell as a hot one matches both.
  collected.Insert(codec.EncodeTuple({20.0}, 0b10));
  const FilterJoinResult r2 = ComputeJoinFilter(q, codec, collected);
  EXPECT_EQ(r2.filter.size(), 2u);
}

TEST(JoinFilterTest, QuantizationNeverDropsARealMatch) {
  // Property (footnote 2): for random data, every pair matching exactly
  // must land in the filter, at any resolution.
  const auto q = MustAnalyze(
      "SELECT A.hum FROM s A, s B WHERE |A.temp - B.temp| < 0.7 ONCE");
  Rng rng(99);
  for (double resolution : {0.05, 0.1, 0.5, 2.0}) {
    const JoinAttrCodec codec = MakeCodec(1, resolution);
    std::vector<double> temps;
    PointSet collected = codec.EmptySet();
    for (int i = 0; i < 120; ++i) {
      temps.push_back(rng.UniformDouble(-5, 55));  // includes out-of-range
      collected.Insert(codec.EncodeTuple({temps.back()}, 1));
    }
    const FilterJoinResult r = ComputeJoinFilter(q, codec, collected);
    for (size_t i = 0; i < temps.size(); ++i) {
      bool has_partner = false;
      for (size_t j = 0; j < temps.size(); ++j) {
        if (std::abs(temps[i] - temps[j]) < 0.7) has_partner = true;
      }
      if (has_partner) {
        EXPECT_TRUE(r.filter.Contains(codec.EncodeTuple({temps[i]}, 1)))
            << "temp " << temps[i] << " at resolution " << resolution;
      }
    }
  }
}

TEST(JoinFilterTest, CoarserResolutionOnlyAddsFalsePositives) {
  const auto q = MustAnalyze(
      "SELECT A.hum FROM s A, s B WHERE |A.temp - B.temp| < 1.0 ONCE");
  Rng rng(7);
  std::vector<double> temps;
  for (int i = 0; i < 80; ++i) temps.push_back(rng.UniformDouble(0, 50));

  auto filter_count = [&](double resolution) {
    const JoinAttrCodec codec = MakeCodec(1, resolution);
    PointSet collected = codec.EmptySet();
    for (double t : temps) collected.Insert(codec.EncodeTuple({t}, 1));
    const FilterJoinResult r = ComputeJoinFilter(q, codec, collected);
    // Count matched raw tuples (a key may cover several tuples).
    int matched = 0;
    for (double t : temps) {
      matched += r.filter.Contains(codec.EncodeTuple({t}, 1)) ? 1 : 0;
    }
    return matched;
  };
  EXPECT_LE(filter_count(0.05), filter_count(1.0));
  EXPECT_LE(filter_count(1.0), filter_count(8.0));
}

}  // namespace
}  // namespace sensjoin::join
