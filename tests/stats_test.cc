#include "sensjoin/join/stats.h"

#include <gtest/gtest.h>

#include "sensjoin/common/geometry.h"

namespace sensjoin::join {
namespace {

sim::Simulator MakeChain() {
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}};
  return sim::Simulator(sim::Radio(pos, 50.0));
}

void Send(sim::Simulator& sim, sim::NodeId src, sim::NodeId dst,
          sim::MessageKind kind, size_t bytes) {
  sim::Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.kind = kind;
  msg.payload_bytes = bytes;
  sim.SendUnicast(std::move(msg));
}

TEST(StatsSnapshotTest, DeltaIsolatesOneExecution) {
  sim::Simulator sim = MakeChain();
  // Pre-existing traffic that must not leak into the delta.
  Send(sim, 0, 1, sim::MessageKind::kCollection, 10);
  Send(sim, 1, 2, sim::MessageKind::kFinal, 10);

  const StatsSnapshot snapshot(sim);
  Send(sim, 1, 0, sim::MessageKind::kCollection, 10);
  Send(sim, 2, 1, sim::MessageKind::kFilter, 100);  // 3 fragments
  Send(sim, 2, 1, sim::MessageKind::kFinal, 10);
  Send(sim, 1, 2, sim::MessageKind::kBeacon, 4);  // excluded from join cost

  const CostReport report = snapshot.DeltaTo(sim);
  EXPECT_EQ(report.phases.collection_packets, 1u);
  EXPECT_EQ(report.phases.filter_packets, 3u);
  EXPECT_EQ(report.phases.final_packets, 1u);
  EXPECT_EQ(report.join_packets, 5u);
  EXPECT_EQ(report.per_node_packets[0], 0u);
  EXPECT_EQ(report.per_node_packets[1], 1u);
  EXPECT_EQ(report.per_node_packets[2], 4u);  // beacon not counted
  EXPECT_EQ(report.max_node_packets(), 4u);
  EXPECT_GT(report.energy_mj, 0.0);
}

TEST(StatsSnapshotTest, EmptyDeltaIsZero) {
  sim::Simulator sim = MakeChain();
  Send(sim, 0, 1, sim::MessageKind::kFinal, 10);
  const StatsSnapshot snapshot(sim);
  const CostReport report = snapshot.DeltaTo(sim);
  EXPECT_EQ(report.join_packets, 0u);
  EXPECT_EQ(report.join_bytes, 0u);
  EXPECT_EQ(report.energy_mj, 0.0);
  EXPECT_EQ(report.max_node_packets(), 0u);
}

TEST(PhaseCostsTest, TotalSumsPhases) {
  PhaseCosts phases;
  phases.collection_packets = 10;
  phases.filter_packets = 5;
  phases.final_packets = 3;
  EXPECT_EQ(phases.total(), 18u);
}

}  // namespace
}  // namespace sensjoin::join
