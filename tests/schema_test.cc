#include "sensjoin/data/schema.h"

#include <gtest/gtest.h>

#include "sensjoin/data/relation.h"
#include "sensjoin/data/tuple.h"

namespace sensjoin::data {
namespace {

Schema MakeSchema() {
  return Schema({{"x", 2}, {"y", 2}, {"temp", 2}, {"hum", 4}});
}

TEST(SchemaTest, LookupByName) {
  const Schema s = MakeSchema();
  EXPECT_EQ(s.num_attributes(), 4);
  EXPECT_EQ(s.IndexOf("x"), 0);
  EXPECT_EQ(s.IndexOf("hum"), 3);
  EXPECT_EQ(s.IndexOf("missing"), -1);
  EXPECT_TRUE(s.Contains("temp"));
  EXPECT_FALSE(s.Contains("Temp"));  // names are case-sensitive
}

TEST(SchemaTest, WireBytes) {
  const Schema s = MakeSchema();
  EXPECT_EQ(s.TupleWireBytes(), 10);
  EXPECT_EQ(s.ProjectionWireBytes({0, 2}), 4);
  EXPECT_EQ(s.ProjectionWireBytes({3}), 4);
  EXPECT_EQ(s.ProjectionWireBytes({}), 0);
}

TEST(SchemaTest, Project) {
  const Schema s = MakeSchema();
  const Schema p = s.Project({2, 0});
  EXPECT_EQ(p.num_attributes(), 2);
  EXPECT_EQ(p.attribute(0).name, "temp");
  EXPECT_EQ(p.attribute(1).name, "x");
}

TEST(TupleTest, ProjectTupleKeepsNodeAndOrder) {
  Tuple t;
  t.node = 7;
  t.values = {1.0, 2.0, 3.0, 4.0};
  const Tuple p = ProjectTuple(t, {3, 1});
  EXPECT_EQ(p.node, 7);
  EXPECT_EQ(p.values, (std::vector<double>{4.0, 2.0}));
}

TEST(RelationTest, AddAndTotals) {
  Relation r("sensors", MakeSchema());
  EXPECT_TRUE(r.empty());
  Tuple t;
  t.node = 1;
  t.values = {0, 0, 20, 50};
  r.Add(t);
  t.node = 2;
  r.Add(t);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.TotalWireBytes(), 20u);
  EXPECT_EQ(r.tuple(0).node, 1);
  EXPECT_EQ(r.name(), "sensors");
}

TEST(RelationDeathTest, ArityMismatchAborts) {
  Relation r("sensors", MakeSchema());
  Tuple t;
  t.values = {1.0};
  EXPECT_DEATH(r.Add(t), "arity mismatch");
}

}  // namespace
}  // namespace sensjoin::data
