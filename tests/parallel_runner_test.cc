#include "sensjoin/testbed/parallel.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sensjoin::testbed {
namespace {

TEST(DeriveTrialSeedTest, DistinctAcrossTrialsAndSweeps) {
  std::set<uint64_t> seen;
  for (uint64_t sweep : {0ULL, 1ULL, 42ULL, 0xFFFFFFFFFFFFFFFFULL}) {
    for (uint64_t trial = 0; trial < 64; ++trial) {
      seen.insert(DeriveTrialSeed(sweep, trial));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 64u);
}

TEST(DeriveTrialSeedTest, Deterministic) {
  EXPECT_EQ(DeriveTrialSeed(42, 7), DeriveTrialSeed(42, 7));
  EXPECT_NE(DeriveTrialSeed(42, 7), DeriveTrialSeed(43, 7));
  EXPECT_NE(DeriveTrialSeed(42, 7), DeriveTrialSeed(42, 8));
}

TEST(ResolveThreadCountTest, ExplicitRequestWins) {
  EXPECT_EQ(ResolveThreadCount(3), 3);
  EXPECT_EQ(ResolveThreadCount(1), 1);
}

TEST(ResolveThreadCountTest, FallsBackToPositiveValue) {
  // No flag, whatever the env: the result must be a usable count.
  EXPECT_GE(ResolveThreadCount(0), 1);
}

TEST(ParseThreadsFlagTest, StripsSeparatedForm) {
  const char* raw[] = {"bench", "--threads", "4", "123", nullptr};
  char* argv[5];
  for (int i = 0; i < 4; ++i) argv[i] = const_cast<char*>(raw[i]);
  argv[4] = nullptr;
  int argc = 4;
  EXPECT_EQ(ParseThreadsFlag(&argc, argv), 4);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "123");
  EXPECT_EQ(argv[2], nullptr);
}

TEST(ParseThreadsFlagTest, StripsEqualsForm) {
  const char* raw[] = {"bench", "77", "--threads=8", nullptr};
  char* argv[4];
  for (int i = 0; i < 3; ++i) argv[i] = const_cast<char*>(raw[i]);
  argv[3] = nullptr;
  int argc = 3;
  EXPECT_EQ(ParseThreadsFlag(&argc, argv), 8);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "77");
}

TEST(ParseThreadsFlagTest, AbsentReturnsZero) {
  const char* raw[] = {"bench", "123", nullptr};
  char* argv[3];
  for (int i = 0; i < 2; ++i) argv[i] = const_cast<char*>(raw[i]);
  argv[2] = nullptr;
  int argc = 2;
  EXPECT_EQ(ParseThreadsFlag(&argc, argv), 0);
  EXPECT_EQ(argc, 2);
}

TEST(ParallelRunnerTest, ZeroTrialsIsOkAndEmpty) {
  ParallelRunner runner(4);
  auto r = runner.Run(0, /*sweep_seed=*/42,
                      [](const TrialContext& ctx) { return ctx.trial; });
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());

  int calls = 0;
  auto s = runner.RunTrials(0, 42, [&](const TrialContext&) {
    ++calls;
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 0);
}

TEST(ParallelRunnerTest, OrderedResultsRegardlessOfCompletionOrder) {
  ParallelRunner runner(4);
  // Early trials sleep longest, so completion order is reversed from
  // trial order if the pool really runs concurrently.
  auto r = runner.Run(16, /*sweep_seed=*/1, [](const TrialContext& ctx) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15 - ctx.trial));
    return ctx.trial * 10;
  });
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ((*r)[i], i * 10);
}

TEST(ParallelRunnerTest, SeedsMatchDerivation) {
  ParallelRunner runner(2);
  auto r = runner.Run(8, /*sweep_seed=*/99,
                      [](const TrialContext& ctx) { return ctx.seed; });
  ASSERT_TRUE(r.ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ((*r)[i], DeriveTrialSeed(99, static_cast<uint64_t>(i)));
  }
}

TEST(ParallelRunnerTest, StatusPropagatesLowestTrialIndex) {
  ParallelRunner runner(4);
  auto s = runner.RunTrials(32, 7, [](const TrialContext& ctx) {
    if (ctx.trial == 5 || ctx.trial == 20) {
      return Status::InvalidArgument("trial " + std::to_string(ctx.trial));
    }
    return Status::Ok();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "trial 5");
}

TEST(ParallelRunnerTest, ExceptionBecomesInternalStatus) {
  ParallelRunner runner(3);
  auto s = runner.RunTrials(6, 7, [](const TrialContext& ctx) -> Status {
    if (ctx.trial == 2) throw std::runtime_error("boom");
    return Status::Ok();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("boom"), std::string::npos);
}

TEST(ParallelRunnerTest, ExceptionBecomesInternalStatusInline) {
  ParallelRunner runner(1);
  auto s = runner.RunTrials(6, 7, [](const TrialContext& ctx) -> Status {
    if (ctx.trial == 2) throw 42;  // non-std exception
    return Status::Ok();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(ParallelRunnerTest, EarlyErrorStopsClaimingNewTrials) {
  ParallelRunner runner(2);
  std::atomic<int> executed{0};
  auto s = runner.RunTrials(1000, 7, [&](const TrialContext& ctx) -> Status {
    executed.fetch_add(1);
    if (ctx.trial == 0) {
      return Status::Internal("fail fast");
    }
    // Give the failing trial time to flip the shutdown flag.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return Status::Ok();
  });
  ASSERT_FALSE(s.ok());
  // Far fewer than 1000 trials should have started: the pool abandons
  // unclaimed work after the first failure.
  EXPECT_LT(executed.load(), 100);
}

TEST(ParallelRunnerTest, OversubscriptionRunsEveryTrialExactlyOnce) {
  ParallelRunner runner(8);
  const int kTrials = 500;  // trials >> threads
  std::vector<std::atomic<int>> counts(kTrials);
  for (auto& c : counts) c.store(0);
  auto s = runner.RunTrials(kTrials, 3, [&](const TrialContext& ctx) {
    counts[static_cast<size_t>(ctx.trial)].fetch_add(1);
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok());
  for (int i = 0; i < kTrials; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ParallelRunnerTest, SingleThreadMatchesMultiThreadResults) {
  auto fn = [](const TrialContext& ctx) {
    return static_cast<int>(ctx.seed % 1000) + ctx.trial;
  };
  auto seq = ParallelRunner(1).Run(64, 5, fn);
  auto par = ParallelRunner(8).Run(64, 5, fn);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(*seq, *par);
}

TEST(ParallelRunnerTest, MoreThreadsThanTrials) {
  ParallelRunner runner(16);
  auto r = runner.Run(3, 11, [](const TrialContext& ctx) { return ctx.trial; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace sensjoin::testbed
