#include "sensjoin/testbed/report.h"

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin::testbed {
namespace {

TEST(ReportTest, HeatMapHasGridShapeAndBaseMarker) {
  TestbedParams params;
  params.placement.num_nodes = 120;
  params.placement.area_width_m = 300;
  params.placement.area_height_m = 300;
  auto tb = Testbed::Create(params);
  ASSERT_TRUE(tb.ok());
  std::vector<uint64_t> loads((*tb)->simulator().num_nodes(), 0);
  loads[5] = 40;
  const std::string map =
      LoadHeatMap((*tb)->placement(), loads, /*columns=*/20, /*rows=*/10);
  // Header line plus 10 rows of 20 characters.
  int lines = 0;
  for (char c : map) lines += c == '\n';
  EXPECT_EQ(lines, 11);
  EXPECT_NE(map.find('B'), std::string::npos);
  EXPECT_NE(map.find('@'), std::string::npos);  // the hot node
}

TEST(ReportTest, TreeSummaryMentionsReachabilityAndDepth) {
  TestbedParams params;
  params.placement.num_nodes = 100;
  params.placement.area_width_m = 300;
  params.placement.area_height_m = 300;
  auto tb = Testbed::Create(params);
  ASSERT_TRUE(tb.ok());
  const std::string summary = TreeSummary((*tb)->tree());
  EXPECT_NE(summary.find("100/100 nodes reachable"), std::string::npos);
  EXPECT_NE(summary.find("max depth"), std::string::npos);
  EXPECT_NE(summary.find("leaves:"), std::string::npos);
}

TEST(ReportTest, CostByDepthSumsToJoinPackets) {
  TestbedParams params;
  params.placement.num_nodes = 150;
  params.placement.area_width_m = 350;
  params.placement.area_height_m = 350;
  auto tb = Testbed::Create(params);
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE A.temp = B.temp ONCE");
  ASSERT_TRUE(q.ok());
  auto r = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(r.ok());
  const std::string chart = CostByDepth((*tb)->tree(), r->cost);
  // One row per depth level.
  int rows = 0;
  for (size_t pos = 0;
       (pos = chart.find("  depth", pos)) != std::string::npos; ++pos) {
    ++rows;
  }
  EXPECT_EQ(rows, (*tb)->tree().max_depth() + 1);
  // Invariant behind the chart: per-node join packets sum to the total.
  uint64_t sum = 0;
  for (uint64_t v : r->cost.per_node_packets) sum += v;
  EXPECT_EQ(sum, r->cost.join_packets);
}

join::JoinResult MakeResult(std::vector<std::vector<double>> rows) {
  join::JoinResult r;
  r.rows = std::move(rows);
  return r;
}

TEST(ReportTest, ResultCompletenessCountsDeliveredTruthRows) {
  const auto truth = MakeResult({{1, 2}, {3, 4}, {5, 6}, {7, 8}});
  EXPECT_DOUBLE_EQ(ResultCompleteness(truth, truth), 1.0);
  EXPECT_DOUBLE_EQ(
      ResultCompleteness(truth, MakeResult({{1, 2}, {5, 6}})), 0.5);
  EXPECT_DOUBLE_EQ(ResultCompleteness(truth, MakeResult({})), 0.0);
  // Rows not in the truth never count.
  EXPECT_DOUBLE_EQ(
      ResultCompleteness(truth, MakeResult({{9, 9}, {3, 4}})), 0.25);
}

TEST(ReportTest, ResultCompletenessIsMultisetAware) {
  // Two identical truth rows need two deliveries; duplicates in the actual
  // result cannot inflate the score.
  const auto truth = MakeResult({{1, 2}, {1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(
      ResultCompleteness(truth, MakeResult({{1, 2}, {3, 4}})), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(
      ResultCompleteness(truth, MakeResult({{3, 4}, {3, 4}, {3, 4}})),
      1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ResultCompleteness(truth, truth), 1.0);
}

TEST(ReportTest, ResultCompletenessOfEmptyTruthIsOne) {
  EXPECT_DOUBLE_EQ(
      ResultCompleteness(MakeResult({}), MakeResult({{1, 2}})), 1.0);
}

TEST(ReportTest, FaultToleranceSummaryListsOverheadAndCompleteness) {
  join::CostReport cost;
  cost.join_packets = 1000;
  cost.retransmitted_packets = 120;
  cost.ack_packets = 880;
  cost.energy_mj = 50.0;
  cost.retransmit_energy_mj = 6.5;
  cost.ack_energy_mj = 3.25;
  const std::string s = FaultToleranceSummary(cost, 0.985);
  EXPECT_NE(s.find("1000"), std::string::npos);
  EXPECT_NE(s.find("retransmitted 120"), std::string::npos);
  EXPECT_NE(s.find("acks 880"), std::string::npos);
  EXPECT_NE(s.find("6.5"), std::string::npos);
  EXPECT_NE(s.find("98.5%"), std::string::npos);
}

}  // namespace
}  // namespace sensjoin::testbed
