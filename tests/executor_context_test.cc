#include "sensjoin/join/executor_context.h"

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"
#include "sensjoin/data/field_model.h"
#include "sensjoin/data/network_data.h"
#include "sensjoin/query/query.h"

namespace sensjoin::join {
namespace {

data::NetworkData MakeData() {
  // Base at (0,0) plus four nodes.
  data::NetworkData data({{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}}, 100,
                         100);
  Rng rng(1);
  data::FieldParams temp;
  temp.base = 20;
  temp.noise_sigma = 0;
  temp.drift_sigma = 0;
  temp.num_bumps = 0;
  temp.gradient_per_m = 0;
  data.AddField("temp", temp, rng);
  return data;
}

query::AnalyzedQuery MustAnalyze(const data::NetworkData& data,
                                 const std::string& sql) {
  auto q = query::AnalyzedQuery::FromString(sql, data.schema());
  SENSJOIN_CHECK(q.ok()) << q.status();
  return std::move(q).value();
}

TEST(ExecutorContextTest, BaseStationContributesNoTuple) {
  const data::NetworkData data = MakeData();
  const auto q = MustAnalyze(
      data, "SELECT A.temp FROM sensors A, sensors B WHERE A.x = B.x ONCE");
  const ExecutorContext ctx(data, q, 0);
  EXPECT_FALSE(ctx.info(0).has_tuple);
  for (int i = 1; i < 5; ++i) {
    EXPECT_TRUE(ctx.info(i).has_tuple);
    EXPECT_EQ(ctx.info(i).membership, 1);
  }
}

TEST(ExecutorContextTest, SelectionsDetermineMembership) {
  const data::NetworkData data = MakeData();
  // Only nodes with x > 25 qualify for either side.
  const auto q = MustAnalyze(data,
                             "SELECT A.temp FROM sensors A, sensors B "
                             "WHERE A.x = B.x AND A.x > 25 AND B.x > 25 ONCE");
  const ExecutorContext ctx(data, q, 0);
  EXPECT_FALSE(ctx.info(1).has_tuple);  // x = 10
  EXPECT_FALSE(ctx.info(2).has_tuple);  // x = 20
  EXPECT_TRUE(ctx.info(3).has_tuple);   // x = 30
  EXPECT_TRUE(ctx.info(4).has_tuple);   // x = 40
}

TEST(ExecutorContextTest, AsymmetricSelectionsKeepBothSides) {
  data::NetworkData data = MakeData();
  const auto q = MustAnalyze(data,
                             "SELECT A.temp FROM sensors A, sensors B "
                             "WHERE A.x = B.x AND A.x > 25 ONCE");
  const ExecutorContext ctx(data, q, 0);
  // Node 1 fails A's selection but qualifies as B (no B selection).
  EXPECT_TRUE(ctx.info(1).has_tuple);
  const data::Tuple& t1 = ctx.info(1).tuple;
  EXPECT_FALSE(ctx.PassesTable(t1, 0));
  EXPECT_TRUE(ctx.PassesTable(t1, 1));
}

TEST(ExecutorContextTest, HeterogeneousMembershipBits) {
  data::NetworkData data = MakeData();
  data.AssignRelation("left", {1, 2});
  data.AssignRelation("right", {3, 4});
  const auto q = MustAnalyze(
      data, "SELECT A.temp FROM left A, right B WHERE A.temp = B.temp ONCE");
  const ExecutorContext ctx(data, q, 0);
  EXPECT_EQ(ctx.num_relations(), 2);
  EXPECT_EQ(ctx.info(1).membership, 0b01);
  EXPECT_EQ(ctx.info(3).membership, 0b10);
  EXPECT_FALSE(ctx.info(0).has_tuple);
}

TEST(ExecutorContextTest, FullTupleBytesMatchQueriedProjection) {
  const data::NetworkData data = MakeData();
  const auto q = MustAnalyze(
      data,
      "SELECT A.temp, B.temp FROM sensors A, sensors B WHERE A.x = B.x ONCE");
  const ExecutorContext ctx(data, q, 0);
  // Queried attributes: x (join) + temp (select) = 2 attrs * 2 bytes.
  EXPECT_EQ(ctx.info(1).full_tuple_bytes, 4);
}

TEST(ExecutorContextTest, PerTableCandidatesFilterBySelection) {
  data::NetworkData data = MakeData();
  const auto q = MustAnalyze(data,
                             "SELECT A.temp FROM sensors A, sensors B "
                             "WHERE A.x = B.x AND A.x > 25 ONCE");
  const ExecutorContext ctx(data, q, 0);
  std::vector<data::Tuple> candidates;
  for (int i = 1; i < 5; ++i) candidates.push_back(ctx.info(i).tuple);
  const auto per_table = ctx.PerTableCandidates(candidates);
  EXPECT_EQ(per_table[0].size(), 2u);  // x in {30, 40}
  EXPECT_EQ(per_table[1].size(), 4u);  // everyone
}

}  // namespace
}  // namespace sensjoin::join
