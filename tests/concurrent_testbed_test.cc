// Exercises concurrent, independent Testbed instances end to end: several
// worker threads each build a deployment from their own seed and run a
// full SENS-Join execution. The library must have no hidden shared mutable
// state for this to be clean — this test is the primary target of the TSan
// CI job (SENSJOIN_SANITIZE=thread).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin::testbed {
namespace {

constexpr const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 200 ONCE";

TestbedParams SmallParams(uint64_t seed) {
  TestbedParams params;
  params.placement.num_nodes = 120;
  params.placement.area_width_m = 300;
  params.placement.area_height_m = 300;
  params.seed = seed;
  return params;
}

struct TrialResult {
  uint64_t join_packets = 0;
  uint64_t result_rows = 0;
  double energy_mj = 0.0;

  bool operator==(const TrialResult&) const = default;
};

StatusOr<TrialResult> RunTrial(uint64_t seed) {
  auto tb = Testbed::Create(SmallParams(seed));
  SENSJOIN_RETURN_IF_ERROR(tb.status());
  auto q = (*tb)->ParseQuery(kQuery);
  SENSJOIN_RETURN_IF_ERROR(q.status());
  auto report = (*tb)->MakeSensJoin().Execute(*q, /*epoch=*/0);
  SENSJOIN_RETURN_IF_ERROR(report.status());
  TrialResult out;
  out.join_packets = report->cost.join_packets;
  out.result_rows = report->result.rows.size();
  out.energy_mj = report->cost.energy_mj;
  return out;
}

TEST(ConcurrentTestbedTest, ParallelTrialsMatchSequentialBaseline) {
  const int kTrials = 6;
  const uint64_t kSweepSeed = 42;

  // Sequential ground truth, one trial at a time on this thread.
  std::vector<TrialResult> baseline;
  for (int i = 0; i < kTrials; ++i) {
    auto r = RunTrial(DeriveTrialSeed(kSweepSeed, i));
    ASSERT_TRUE(r.ok()) << r.status();
    baseline.push_back(*r);
  }

  // Same trials, concurrently.
  ParallelRunner runner(4);
  auto parallel =
      runner.Run(kTrials, kSweepSeed, [](const TrialContext& ctx) {
        auto r = RunTrial(ctx.seed);
        // Surface failures through the result so the comparison below
        // reports which trial diverged.
        EXPECT_TRUE(r.ok()) << "trial " << ctx.trial << ": " << r.status();
        return r.ok() ? *r : TrialResult{};
      });
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  ASSERT_EQ(parallel->size(), baseline.size());
  for (int i = 0; i < kTrials; ++i) {
    EXPECT_EQ((*parallel)[i], baseline[i]) << "trial " << i;
  }
}

TEST(ConcurrentTestbedTest, ConcurrentSensAndExternalOnSeparateTestbeds) {
  // Mixed executor types in flight at once, including faulty links (which
  // exercise the fault RNG paths concurrently).
  ParallelRunner runner(4);
  auto s = runner.RunTrials(8, /*sweep_seed=*/7,
                            [](const TrialContext& ctx) -> Status {
    auto tb = Testbed::Create(SmallParams(ctx.seed));
    SENSJOIN_RETURN_IF_ERROR(tb.status());
    if (ctx.trial % 2 == 0) {
      sim::FaultPlan plan;
      plan.default_loss_rate = 0.05;
      plan.arq.enabled = true;
      plan.seed = ctx.seed;
      (*tb)->InjectFaults(plan);
    }
    auto q = (*tb)->ParseQuery(kQuery);
    SENSJOIN_RETURN_IF_ERROR(q.status());
    if (ctx.trial % 3 == 0) {
      auto r = (*tb)->MakeExternalJoin().Execute(*q, 0);
      SENSJOIN_RETURN_IF_ERROR(r.status());
    } else {
      auto r = (*tb)->MakeSensJoin().Execute(*q, 0);
      SENSJOIN_RETURN_IF_ERROR(r.status());
    }
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok()) << s;
}

}  // namespace
}  // namespace sensjoin::testbed
