// Exactly-once delivery semantics: the (attempt id, per-link sequence)
// tags and the idempotent receive paths must make the executors immune to
// message duplication, reordering and cross-attempt replay — the result
// (rows, certificate) of a faulted run must equal the fault-free run, with
// the faults itemized in the reports rather than leaking into the join.
// Also pins the bit-identity contract: with every delivery knob at its
// default, installing an empty fault plan changes nothing at all.

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sensjoin/join/delivery_guard.h"
#include "sensjoin/join/protocol.h"
#include "sensjoin/obs/trace.h"
#include "sensjoin/sensjoin.h"
#include "sensjoin/testbed/chaos.h"

namespace sensjoin {
namespace {

constexpr const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.5 "
    "AND distance(A.x, A.y, B.x, B.y) > 100 ONCE";

testbed::TestbedParams SmallDeployment(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 60;
  params.placement.area_width_m = 260;
  params.placement.area_height_m = 260;
  params.seed = seed;
  return params;
}

uint64_t BitsOf(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// The join outcome alone — rows, match count, contributors, certificate —
/// which faulted runs must reproduce exactly even when their costs differ.
std::string ResultKey(const join::ExecutionReport& r) {
  std::ostringstream out;
  out << "matched=" << r.result.matched_combinations << " rows=";
  for (const auto& row : r.result.rows) {
    for (double v : row) out << v << ",";
    out << ";";
  }
  out << " contributing=";
  for (sim::NodeId u : r.result.contributing_nodes) out << u << ",";
  out << " degraded=" << r.certificate.degraded << " coverage="
      << r.certificate.reporting_nodes << "/" << r.certificate.total_nodes;
  return out.str();
}

/// Every observable number, costs as bit patterns — for the bit-identity
/// pin, where even one extra RNG draw or wire byte must show up.
std::string FullFingerprint(const join::ExecutionReport& r) {
  std::ostringstream out;
  out << ResultKey(r) << " pkts=" << r.cost.join_packets
      << " bytes=" << r.cost.join_bytes << " energy=" << std::hex
      << BitsOf(r.cost.energy_mj) << std::dec
      << " retx=" << r.cost.retransmitted_packets
      << " acks=" << r.cost.ack_packets
      << " dup_pkts=" << r.total_cost.duplicate_packets
      << " replay_pkts=" << r.total_cost.replayed_packets
      << " attempts=" << r.attempts << " time=" << std::hex
      << BitsOf(r.response_time_s) << std::dec;
  return out.str();
}

/// Runs one execution on a fresh deployment with `plan` installed first
/// (skipped when null). Fresh testbed per run: executions advance RNG
/// streams and sim time, so reuse would not be apples-to-apples.
StatusOr<join::ExecutionReport> RunWithPlan(uint64_t seed,
                                            const sim::FaultPlan* plan) {
  auto tb = testbed::Testbed::Create(SmallDeployment(seed));
  SENSJOIN_RETURN_IF_ERROR(tb.status());
  auto q = (*tb)->ParseQuery(kQuery);
  SENSJOIN_RETURN_IF_ERROR(q.status());
  (*tb)->DisseminateQuery(*q);
  if (plan != nullptr) (*tb)->InjectFaults(*plan);
  return (*tb)->MakeSensJoin().Execute(*q, 0);
}

/// Deliver-everything-twice: at duplication rate 1.0 every eligible
/// message arrives twice, yet the dedup window absorbs every second copy —
/// the join outcome is unchanged and the duplicates are itemized.
TEST(DeliverySemanticsTest, DuplicatedDeliveriesAreIdempotent) {
  auto clean = RunWithPlan(101, nullptr);
  ASSERT_TRUE(clean.ok()) << clean.status();

  sim::FaultPlan plan;
  plan.default_duplication_rate = 1.0;
  auto doubled = RunWithPlan(101, &plan);
  ASSERT_TRUE(doubled.ok()) << doubled.status();

  EXPECT_EQ(ResultKey(*doubled), ResultKey(*clean));
  EXPECT_GT(doubled->duplicate_deliveries, 0u);
  EXPECT_GT(doubled->total_cost.duplicate_packets, 0u);
  EXPECT_GT(doubled->total_cost.duplicate_energy_mj, 0.0);
  // The clean run saw none of this.
  EXPECT_EQ(clean->duplicate_deliveries, 0u);
  EXPECT_EQ(clean->total_cost.duplicate_packets, 0u);
}

/// The reorder verdicts themselves, pinned at the validator level: a later
/// sequence arriving while an earlier one is still in flight is flagged
/// (and tolerated), the straggler then lands as a normal first delivery,
/// and every re-delivery after that is a duplicate.
TEST(DeliverySemanticsTest, ReorderVerdictsFollowLinkSequence) {
  join::DeliveryGuard guard(/*dedup_window=*/64);
  guard.BeginAttempt(0);
  sim::Message first;
  first.src = 1;
  first.dst = 2;
  guard.Stamp(first);
  sim::Message second;
  second.src = 1;
  second.dst = 2;
  guard.Stamp(second);

  // The later send overtakes the earlier one.
  EXPECT_EQ(guard.Classify(2, second), join::DeliveryVerdict::kReordered);
  EXPECT_EQ(guard.Classify(2, first), join::DeliveryVerdict::kFirstDelivery);
  // Any further copy of either is absorbed.
  EXPECT_EQ(guard.Classify(2, second), join::DeliveryVerdict::kDuplicate);
  EXPECT_EQ(guard.Classify(2, first), join::DeliveryVerdict::kDuplicate);
  EXPECT_EQ(guard.reordered_deliveries(), 1u);
  EXPECT_EQ(guard.duplicate_deliveries(), 2u);

  // A new attempt invalidates the old tags entirely.
  guard.BeginAttempt(1);
  EXPECT_EQ(guard.Classify(2, first), join::DeliveryVerdict::kStale);
  EXPECT_EQ(guard.stale_drops(), 1u);
}

/// Reordering tolerance, delivery-level: jitter wide enough to let later
/// sends overtake earlier ones shuffles echo delivery order, but the join
/// outcome is bitwise untouched — the executors key contribution state by
/// sender, not by arrival order.
TEST(DeliverySemanticsTest, ReorderingWithinAPhaseIsHarmless) {
  auto clean = RunWithPlan(102, nullptr);
  ASSERT_TRUE(clean.ok()) << clean.status();

  sim::FaultPlan plan;
  plan.delay.max_jitter_s = 0.02;
  auto jittered = RunWithPlan(102, &plan);
  ASSERT_TRUE(jittered.ok()) << jittered.status();

  EXPECT_EQ(ResultKey(*jittered), ResultKey(*clean));
  EXPECT_EQ(jittered->duplicate_deliveries, 0u);
  EXPECT_EQ(jittered->stale_messages_dropped, 0u);
}

/// End-to-end reordering under composed faults: with jitter on top of the
/// standard chaos axes (crashes + outages + loss), recovery re-requests
/// and repair traffic share links and genuinely arrive out of order — the
/// validator observes it and every soundness invariant still holds. The
/// seed is pinned: this schedule deterministically reorders.
TEST(DeliverySemanticsTest, ComposedFaultsReorderObservably) {
  auto tb = testbed::Testbed::Create(SmallDeployment(13));
  ASSERT_TRUE(tb.ok()) << tb.status();
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok()) << q.status();
  (*tb)->DisseminateQuery(*q);

  testbed::ChaosParams params;
  params.seed = 13;
  params.max_jitter_s = 0.01;
  const testbed::ChaosSchedule schedule =
      testbed::MakeChaosSchedule(**tb, params);
  testbed::ApplyChaos(**tb, schedule);

  join::ProtocolConfig config;
  config.enable_phase_recovery = true;
  config.enable_tree_repair = true;
  config.enable_graceful_degradation = true;
  config.enable_phase_watchdog = true;
  auto report = (*tb)->MakeSensJoin(config).Execute(*q, 0);
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_GT(report->reordered_messages, 0u);
  const join::JoinResult truth = testbed::ComputeGroundTruth(**tb, *q, 0);
  for (const std::string& v : testbed::CheckInvariants(truth, *report)) {
    ADD_FAILURE() << v;
  }
}

/// Stale-attempt rejection: a failed link aborts attempt 1 mid-phase with
/// messages still in flight; with replay enabled those messages come back
/// during attempt 2 carrying the old attempt id, and every one of them is
/// rejected — the retried result still matches the fault-free run.
TEST(DeliverySemanticsTest, CrossAttemptReplaysAreRejectedAsStale) {
  auto clean = RunWithPlan(103, nullptr);
  ASSERT_TRUE(clean.ok()) << clean.status();

  auto tb = testbed::Testbed::Create(SmallDeployment(103));
  ASSERT_TRUE(tb.ok()) << tb.status();
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok()) << q.status();
  (*tb)->DisseminateQuery(*q);

  sim::FaultPlan plan;
  plan.enable_replay = true;
  (*tb)->InjectFaults(plan);

  // Break a mid-tree node's uplink so attempt 1 aborts partway through
  // collection, leaving earlier deliveries of that attempt in flight.
  const net::RoutingTree& tree = (*tb)->tree();
  sim::NodeId victim = sim::kInvalidNode;
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 3 &&
        (*tb)->simulator().radio().Neighbors(u).size() >= 3) {
      victim = u;
      break;
    }
  }
  ASSERT_NE(victim, sim::kInvalidNode);
  (*tb)->simulator().radio().FailLink(victim, tree.parent(victim));

  auto retried = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_GE(retried->attempts, 2);
  EXPECT_GT(retried->stale_messages_dropped, 0u);
  EXPECT_GT(retried->total_cost.replayed_packets, 0u);
  EXPECT_EQ(retried->result.matched_combinations,
            clean->result.matched_combinations);
}

/// Acceptance sweep: a realistic 5% duplication rate composed with jitter,
/// across two independent deployments — the join outcome must equal the
/// fault-free run on each.
TEST(DeliverySemanticsTest, FivePercentDuplicationPlusJitterAcceptance) {
  for (uint64_t seed : {201u, 202u}) {
    auto clean = RunWithPlan(seed, nullptr);
    ASSERT_TRUE(clean.ok()) << "seed " << seed << ": " << clean.status();

    sim::FaultPlan plan;
    plan.default_duplication_rate = 0.05;
    plan.delay.max_jitter_s = 0.01;
    auto faulted = RunWithPlan(seed, &plan);
    ASSERT_TRUE(faulted.ok()) << "seed " << seed << ": " << faulted.status();

    EXPECT_EQ(ResultKey(*faulted), ResultKey(*clean)) << "seed " << seed;
    EXPECT_GT(faulted->duplicate_deliveries, 0u) << "seed " << seed;
  }
}

/// The zero-cost contract: every delivery-semantics knob defaults to off,
/// so installing an empty fault plan must not change a single packet,
/// byte, energy debit, RNG draw or timestamp relative to no plan at all.
TEST(DeliverySemanticsTest, DefaultKnobsAreBitIdenticalToSeedBehavior) {
  auto bare = RunWithPlan(104, nullptr);
  ASSERT_TRUE(bare.ok()) << bare.status();

  const sim::FaultPlan empty;
  auto planned = RunWithPlan(104, &empty);
  ASSERT_TRUE(planned.ok()) << planned.status();

  EXPECT_EQ(FullFingerprint(*planned), FullFingerprint(*bare));
  EXPECT_EQ(planned->duplicate_deliveries, 0u);
  EXPECT_EQ(planned->stale_messages_dropped, 0u);
  EXPECT_EQ(planned->reordered_messages, 0u);
}

}  // namespace
}  // namespace sensjoin
