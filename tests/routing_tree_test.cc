#include "sensjoin/net/routing_tree.h"

#include <algorithm>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"
#include "sensjoin/net/topology.h"
#include "sensjoin/sim/radio.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::net {
namespace {

/// BFS hop counts over up links (ground truth for the beaconing protocol).
std::vector<int> BfsHops(const sim::Radio& radio, sim::NodeId root) {
  std::vector<int> hops(radio.num_nodes(), -1);
  std::queue<sim::NodeId> frontier;
  hops[root] = 0;
  frontier.push(root);
  while (!frontier.empty()) {
    const sim::NodeId u = frontier.front();
    frontier.pop();
    for (sim::NodeId v : radio.Neighbors(u)) {
      if (hops[v] < 0 && radio.LinkUp(u, v)) {
        hops[v] = hops[u] + 1;
        frontier.push(v);
      }
    }
  }
  return hops;
}

sim::Simulator MakeRandomSim(uint64_t seed, int n = 300) {
  Rng rng(seed);
  PlacementParams params;
  params.num_nodes = n;
  params.area_width_m = 500;
  params.area_height_m = 500;
  auto placement = GenerateConnectedPlacement(params, rng);
  return sim::Simulator(sim::Radio(placement->positions, params.range_m));
}

class RoutingTreeSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoutingTreeSeedTest, BeaconedTreeHasMinimalHopCounts) {
  sim::Simulator sim = MakeRandomSim(GetParam());
  RoutingTree tree = RoutingTree::Build(sim, 0);
  const std::vector<int> bfs = BfsHops(sim.radio(), 0);
  for (int i = 0; i < sim.num_nodes(); ++i) {
    EXPECT_EQ(tree.hop_count(i), bfs[i]) << "node " << i;
  }
  EXPECT_EQ(tree.num_reachable(), sim.num_nodes());
}

TEST_P(RoutingTreeSeedTest, ParentChildConsistency) {
  sim::Simulator sim = MakeRandomSim(GetParam());
  RoutingTree tree = RoutingTree::Build(sim, 0);
  EXPECT_EQ(tree.parent(0), sim::kInvalidNode);
  for (int i = 1; i < sim.num_nodes(); ++i) {
    const sim::NodeId p = tree.parent(i);
    ASSERT_NE(p, sim::kInvalidNode);
    // Parent is a radio neighbor one hop closer to the root.
    EXPECT_TRUE(sim.radio().InRange(i, p));
    EXPECT_EQ(tree.hop_count(p) + 1, tree.hop_count(i));
    const auto& siblings = tree.children(p);
    EXPECT_TRUE(std::find(siblings.begin(), siblings.end(), i) !=
                siblings.end());
  }
}

TEST_P(RoutingTreeSeedTest, SubtreeSizesSumCorrectly) {
  sim::Simulator sim = MakeRandomSim(GetParam());
  RoutingTree tree = RoutingTree::Build(sim, 0);
  EXPECT_EQ(tree.subtree_size(0), sim.num_nodes());
  for (int i = 0; i < sim.num_nodes(); ++i) {
    int children_sum = 1;
    for (sim::NodeId c : tree.children(i)) children_sum += tree.subtree_size(c);
    EXPECT_EQ(tree.subtree_size(i), children_sum);
  }
}

TEST_P(RoutingTreeSeedTest, CollectionOrderVisitsChildrenBeforeParents) {
  sim::Simulator sim = MakeRandomSim(GetParam());
  RoutingTree tree = RoutingTree::Build(sim, 0);
  std::vector<int> position(sim.num_nodes(), -1);
  const auto& order = tree.collection_order();
  ASSERT_EQ(static_cast<int>(order.size()), tree.num_reachable());
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (int i = 1; i < sim.num_nodes(); ++i) {
    EXPECT_LT(position[i], position[tree.parent(i)]);
  }
  EXPECT_EQ(order.back(), 0);  // root last
  EXPECT_EQ(tree.dissemination_order().front(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingTreeSeedTest,
                         ::testing::Values(2, 13, 77, 1001));

TEST(RoutingTreeTest, BeaconCostsAreAccountedAsBeacons) {
  sim::Simulator sim = MakeRandomSim(5, 100);
  RoutingTree::Build(sim, 0);
  EXPECT_GT(sim.packets_sent_by_kind(sim::MessageKind::kBeacon), 0u);
  EXPECT_EQ(sim.packets_sent_by_kind(sim::MessageKind::kCollection), 0u);
}

TEST(RoutingTreeTest, RepairAfterLinkFailure) {
  // Chain 0-1-2 plus a detour 0-3-2: failing 1-2 must reroute 2 via 3.
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}, {40, 30}};
  sim::Simulator sim{sim::Radio(pos, 50.0)};
  RoutingTree tree = RoutingTree::Build(sim, 0);
  EXPECT_EQ(tree.parent(2), 1);  // closer tie-break picks 1 over 3
  sim.radio().FailLink(1, 2);
  RoutingTree repaired = RoutingTree::Build(sim, 0);
  EXPECT_EQ(repaired.parent(2), 3);
  EXPECT_EQ(repaired.hop_count(2), 2);
  EXPECT_EQ(repaired.num_reachable(), 4);
}

TEST(RoutingTreeTest, UnreachableNodesAreMarked) {
  std::vector<Point> pos = {{0, 0}, {40, 0}, {500, 500}};
  sim::Simulator sim{sim::Radio(pos, 50.0)};
  RoutingTree tree = RoutingTree::Build(sim, 0);
  EXPECT_FALSE(tree.InTree(2));
  EXPECT_EQ(tree.hop_count(2), -1);
  EXPECT_EQ(tree.num_reachable(), 2);
  EXPECT_EQ(tree.subtree_size(2), 0);
}

}  // namespace
}  // namespace sensjoin::net
