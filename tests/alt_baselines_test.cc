#include "sensjoin/join/alt_baselines.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin::join {
namespace {

testbed::TestbedParams MediumParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 300;
  params.placement.area_width_m = 470;
  params.placement.area_height_m = 470;
  params.seed = seed;
  return params;
}

const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 450 ONCE";

class BaselineSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselineSeedTest, SemiJoinComputesTheExactResult) {
  auto tb = testbed::Testbed::Create(MediumParams(GetParam()));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  auto reference = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(reference.ok());

  SemiJoinExecutor semi((*tb)->simulator(), (*tb)->tree(), (*tb)->data());
  auto report = semi.Execute(*q, 0);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->result.matched_combinations,
            reference->result.matched_combinations);
  EXPECT_EQ(report->result.contributing_nodes,
            reference->result.contributing_nodes);
}

TEST_P(BaselineSeedTest, MediatedJoinComputesTheExactResult) {
  auto tb = testbed::Testbed::Create(MediumParams(GetParam()));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  auto reference = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(reference.ok());

  MediatedJoinExecutor mediated((*tb)->simulator(), (*tb)->tree(),
                                (*tb)->data());
  auto report = mediated.Execute(*q, 0);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->result.matched_combinations,
            reference->result.matched_combinations);
  EXPECT_NE(mediated.last_mediator(), sim::kInvalidNode);
}

TEST_P(BaselineSeedTest, SensJoinBeatsEveryBaselineOnGeneralQueries) {
  // The paper's Sec. VI observation, adapted: the semi-join's network-wide
  // broadcast makes it strictly worse than the plain external join on
  // general workloads, and SENS-Join beats all of them. (The mediated join
  // can occasionally edge out the external join when the base station is
  // poorly placed and the result is tiny, so no ordering is asserted
  // between those two.)
  auto tb = testbed::Testbed::Create(MediumParams(GetParam() + 10));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());

  auto external = (*tb)->MakeExternalJoin().Execute(*q, 0);
  auto sens = (*tb)->MakeSensJoin().Execute(*q, 0);
  SemiJoinExecutor semi((*tb)->simulator(), (*tb)->tree(), (*tb)->data());
  auto semi_report = semi.Execute(*q, 0);
  MediatedJoinExecutor mediated((*tb)->simulator(), (*tb)->tree(),
                                (*tb)->data());
  auto mediated_report = mediated.Execute(*q, 0);
  ASSERT_TRUE(external.ok() && sens.ok() && semi_report.ok() &&
              mediated_report.ok());

  EXPECT_LT(external->cost.join_packets, semi_report->cost.join_packets);
  EXPECT_LT(sens->cost.join_packets, external->cost.join_packets);
  EXPECT_LT(sens->cost.join_packets, semi_report->cost.join_packets);
  EXPECT_LT(sens->cost.join_packets, mediated_report->cost.join_packets);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSeedTest, ::testing::Values(2, 31));

TEST(BaselineTest, SemiJoinRejectsThreeWayJoins) {
  auto tb = testbed::Testbed::Create(MediumParams(4));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT A.hum FROM s A, s B, s C "
      "WHERE A.temp = B.temp AND B.temp = C.temp ONCE");
  ASSERT_TRUE(q.ok());
  SemiJoinExecutor semi((*tb)->simulator(), (*tb)->tree(), (*tb)->data());
  auto report = semi.Execute(*q, 0);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace sensjoin::join
