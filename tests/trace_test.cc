#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin::sim {
namespace {

Simulator MakeChain() {
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}};
  return Simulator(Radio(pos, 50.0));
}

TEST(TraceTest, RecordsUnicastsWithDeliveryState) {
  Simulator sim = MakeChain();
  std::vector<TraceRecord> records;
  sim.SetTraceSink([&](const TraceRecord& r) { records.push_back(r); });

  Message ok;
  ok.src = 0;
  ok.dst = 1;
  ok.kind = MessageKind::kCollection;
  ok.payload_bytes = 90;  // 3 fragments
  sim.SendUnicast(ok);

  sim.radio().FailLink(1, 2);
  Message lost;
  lost.src = 1;
  lost.dst = 2;
  lost.kind = MessageKind::kFinal;
  lost.payload_bytes = 5;
  sim.SendUnicast(lost);

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].src, 0);
  EXPECT_EQ(records[0].dst, 1);
  EXPECT_EQ(records[0].kind, MessageKind::kCollection);
  EXPECT_EQ(records[0].fragments, 3);
  EXPECT_EQ(records[0].payload_bytes, 90u);
  EXPECT_FALSE(records[0].broadcast);
  EXPECT_TRUE(records[0].delivered);
  EXPECT_FALSE(records[1].delivered);
}

TEST(TraceTest, RecordsBroadcasts) {
  Simulator sim = MakeChain();
  std::vector<TraceRecord> records;
  sim.SetTraceSink([&](const TraceRecord& r) { records.push_back(r); });
  Message msg;
  msg.src = 1;
  msg.kind = MessageKind::kBeacon;
  msg.payload_bytes = 4;
  sim.Broadcast(msg);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].broadcast);
  EXPECT_EQ(records[0].dst, kInvalidNode);
}

TEST(TraceTest, SinkCanBeRemoved) {
  Simulator sim = MakeChain();
  int count = 0;
  sim.SetTraceSink([&](const TraceRecord&) { ++count; });
  Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.payload_bytes = 1;
  sim.SendUnicast(msg);
  sim.SetTraceSink({});
  sim.SendUnicast(msg);
  EXPECT_EQ(count, 1);
}

TEST(TraceTest, TraceCountsMatchAccounting) {
  // Trace an entire SENS-Join execution: the sum of traced fragments must
  // equal the simulator's packet counters.
  testbed::TestbedParams params;
  params.placement.num_nodes = 120;
  params.placement.area_width_m = 320;
  params.placement.area_height_m = 320;
  auto tb = testbed::Testbed::Create(params);
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(A.x, A.y, B.x, B.y) > 300 ONCE");
  ASSERT_TRUE(q.ok());
  uint64_t traced_fragments = 0;
  (*tb)->simulator().SetTraceSink([&](const sim::TraceRecord& r) {
    if (IsJoinProcessingKind(r.kind)) traced_fragments += r.fragments;
  });
  auto report = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(traced_fragments, report->cost.join_packets);
}

}  // namespace
}  // namespace sensjoin::sim

namespace sensjoin::obs {
namespace {

TraceEvent MakeEvent(sim::SimTime time) {
  TraceEvent e;
  e.time = time;
  e.node = 1;
  e.kind = EventKind::kFragTx;
  e.msg_kind = sim::MessageKind::kCollection;
  e.count = 2;
  e.bytes = 96;
  e.energy_mj = 1.0;
  return e;
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  tracer.Record(MakeEvent(1.0));
  tracer.BeginPhase(Phase::kTreeBuild, 2.0);
  tracer.EndPhase(Phase::kTreeBuild, 3.0);
  tracer.ObserveMessage(100, 3);
  EXPECT_TRUE(tracer.buffer().empty());
  EXPECT_EQ(tracer.buffer().dropped(), 0u);
  const MetricsSnapshot snap = tracer.metrics().Snapshot(3.0);
  for (const auto& c : snap.counters) EXPECT_EQ(c.value, 0u) << c.name;
  for (const auto& h : snap.histograms) EXPECT_EQ(h.count, 0u) << h.name;
}

TEST(TracerTest, ReenabledTracerRecordsAgain) {
  Tracer tracer;
  tracer.set_enabled(false);
  tracer.Record(MakeEvent(1.0));
  tracer.set_enabled(true);
  tracer.Record(MakeEvent(2.0));
  EXPECT_EQ(tracer.buffer().size(), 1u);
}

TEST(TraceBufferTest, WrapRecyclesOldestAndCountsDropped) {
  const size_t capacity = 2 * TraceBuffer::kChunkEvents;
  TraceBuffer buffer(capacity);
  const size_t total = capacity + TraceBuffer::kChunkEvents + 7;
  for (size_t i = 0; i < total; ++i) {
    buffer.Append(MakeEvent(static_cast<sim::SimTime>(i)));
  }
  EXPECT_LE(buffer.size(), capacity);
  EXPECT_EQ(buffer.size() + buffer.dropped(), total);
  // Retained events are the newest, still in append order.
  sim::SimTime prev = -1.0;
  size_t seen = 0;
  buffer.ForEach([&](const TraceEvent& e) {
    EXPECT_GT(e.time, prev);
    prev = e.time;
    ++seen;
  });
  EXPECT_EQ(seen, buffer.size());
  EXPECT_EQ(prev, static_cast<sim::SimTime>(total - 1));
}

TEST(TraceBufferTest, ClearResets) {
  TraceBuffer buffer(TraceBuffer::kChunkEvents);
  for (size_t i = 0; i < 2 * TraceBuffer::kChunkEvents; ++i) {
    buffer.Append(MakeEvent(static_cast<sim::SimTime>(i)));
  }
  EXPECT_GT(buffer.dropped(), 0u);
  buffer.Clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.dropped(), 0u);
  buffer.Append(MakeEvent(0.0));
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(TracerTest, ScopedPhaseStampsEvents) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "built with SENSJOIN_TRACING=0";
  Tracer tracer;
  sim::EventQueue clock;
  {
    ScopedPhase span(&tracer, clock, Phase::kTreeBuild);
    EXPECT_EQ(tracer.current_phase(), Phase::kTreeBuild);
    tracer.Record(MakeEvent(clock.now()));
  }
  EXPECT_EQ(tracer.current_phase(), Phase::kNone);
  std::vector<TraceEvent> events;
  tracer.buffer().ForEach(
      [&](const TraceEvent& e) { events.push_back(e); });
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kPhaseBegin);
  EXPECT_EQ(events[1].kind, EventKind::kFragTx);
  EXPECT_EQ(events[1].phase, Phase::kTreeBuild);
  EXPECT_EQ(events[2].kind, EventKind::kPhaseEnd);
}

TEST(TracerTest, NullTracerScopedPhaseIsNoOp) {
  sim::EventQueue clock;
  ScopedPhase span(nullptr, clock, Phase::kTreeBuild);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(500.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(MetricsTest, RegistryReturnsStableInstruments) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("a");
  a.Add(3);
  // Creating more instruments must not invalidate the first reference.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("c" + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("a").value(), 3u);
  EXPECT_EQ(&registry.GetCounter("a"), &a);

  registry.GetGauge("g").Set(2.5);
  registry.GetHistogram("h", {1.0}).Observe(0.5);
  const MetricsSnapshot snap = registry.Snapshot(7.0);
  EXPECT_DOUBLE_EQ(snap.time, 7.0);
  EXPECT_EQ(snap.counters.front().name, "a");
  EXPECT_EQ(snap.counters.front().value, 3u);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("a").value(), 0u);
}

TEST(TracerTest, SimulatorRecordsFaultEvents) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "built with SENSJOIN_TRACING=0";
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}};
  sim::Simulator sim{sim::Radio(pos, 50.0)};
  Tracer tracer;
  sim.set_tracer(&tracer);

  sim.radio().FailLink(0, 1);
  sim.radio().RestoreLink(0, 1);
  sim.ScheduleCrash(2, 1.0);
  sim.ScheduleRecovery(2, 2.0);
  sim.events().Run();

  std::vector<EventKind> kinds;
  tracer.buffer().ForEach(
      [&](const TraceEvent& e) { kinds.push_back(e.kind); });
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], EventKind::kLinkDown);
  EXPECT_EQ(kinds[1], EventKind::kLinkUp);
  EXPECT_EQ(kinds[2], EventKind::kCrash);
  EXPECT_EQ(kinds[3], EventKind::kRestore);
}

class TracedExecutionTest : public ::testing::Test {
 protected:
  static testbed::TestbedParams SmallParams() {
    testbed::TestbedParams params;
    params.placement.num_nodes = 120;
    params.placement.area_width_m = 320;
    params.placement.area_height_m = 320;
    return params;
  }

  static constexpr const char* kQuery =
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(A.x, A.y, B.x, B.y) > 300 ONCE";
};

TEST_F(TracedExecutionTest, SummarizeCrossChecksCostReport) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "built with SENSJOIN_TRACING=0";
  auto tb = testbed::Testbed::Create(SmallParams());
  ASSERT_TRUE(tb.ok());
  Tracer tracer;
  (*tb)->AttachTracer(&tracer);
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  (*tb)->DisseminateQuery(*q);

  auto ext = (*tb)->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(ext.ok());
  auto sens = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(sens.ok());
  ASSERT_EQ(ext->attempts, 1);
  ASSERT_EQ(sens->attempts, 1);

  const TraceSummary summary = Summarize(tracer);
  const auto kSensPhases = {
      Phase::kJoinAttrCollection, Phase::kBaseStationJoin,
      Phase::kFilterDissemination, Phase::kFinalResult};
  const auto kExtPhases = {Phase::kExternalCollection};

  // Packet and byte totals are integer event counts on both sides; they
  // must match exactly.
  EXPECT_EQ(
      summary.TxFragments(kSensPhases, sim::MessageKind::kCollection),
      sens->cost.phases.collection_packets);
  EXPECT_EQ(summary.TxFragments(kSensPhases, sim::MessageKind::kFilter),
            sens->cost.phases.filter_packets);
  EXPECT_EQ(summary.TxFragments(kSensPhases, sim::MessageKind::kFinal),
            sens->cost.phases.final_packets);
  EXPECT_EQ(summary.TxFragments(kExtPhases, sim::MessageKind::kFinal),
            ext->cost.phases.final_packets);

  uint64_t sens_bytes = 0;
  for (Phase p : kSensPhases) sens_bytes += summary.phase(p).tx_frame_bytes;
  EXPECT_EQ(sens_bytes, sens->cost.join_bytes);
  EXPECT_EQ(summary.phase(Phase::kExternalCollection).tx_frame_bytes,
            ext->cost.join_bytes);

  // Per-event energies sum to the simulator's total for the phase span;
  // only the floating-point summation order differs.
  EXPECT_NEAR(summary.EnergyMj(kSensPhases), sens->cost.energy_mj,
              1e-9 * sens->cost.energy_mj);
  EXPECT_NEAR(summary.EnergyMj(kExtPhases), ext->cost.energy_mj,
              1e-9 * ext->cost.energy_mj);

  const std::vector<uint64_t> per_node = summary.PerNodeJoinTx(kSensPhases);
  ASSERT_LE(per_node.size(), sens->cost.per_node_packets.size());
  std::vector<uint64_t> want = sens->cost.per_node_packets;
  want.resize(per_node.size());
  EXPECT_EQ(per_node, want);
}

TEST_F(TracedExecutionTest, ExportedTraceHasSchemaAndTracks) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "built with SENSJOIN_TRACING=0";
  auto tb = testbed::Testbed::Create(SmallParams());
  ASSERT_TRUE(tb.ok());
  Tracer tracer;
  (*tb)->AttachTracer(&tracer);
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  auto report = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(report.ok());
  CaptureSimulatorMetrics((*tb)->simulator(), &tracer.metrics());

  TraceExportOptions options;
  options.extra_sections.emplace_back("crossCheck", "{\"probe\":1}");
  const std::string json = ChromeTraceJson(tracer, options);
  EXPECT_NE(json.find("\"sensjoin-trace-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"JoinAttributeCollection\""),
            std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"sensor nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.total_energy_mj\""), std::string::npos);
  EXPECT_NE(json.find("\"crossCheck\":{\"probe\":1}"), std::string::npos);
}

TEST(MetricsExportTest, CsvCoversEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(4);
  registry.GetGauge("g").Set(1.5);
  registry.GetHistogram("h", {2.0}).Observe(1.0);
  const std::string csv = MetricsCsv(registry.Snapshot(0.0));
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,c,value,4"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,value,1.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,count,1"), std::string::npos);
  EXPECT_NE(csv.find("le=inf"), std::string::npos);
}

TEST(MetricsExportTest, JsonDoubleHandlesNonFinite) {
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "1e308");
  EXPECT_EQ(JsonDouble(-std::numeric_limits<double>::infinity()), "-1e308");
  EXPECT_EQ(JsonDouble(2.5), "2.5");
}

}  // namespace
}  // namespace sensjoin::obs
