#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin::sim {
namespace {

Simulator MakeChain() {
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}};
  return Simulator(Radio(pos, 50.0));
}

TEST(TraceTest, RecordsUnicastsWithDeliveryState) {
  Simulator sim = MakeChain();
  std::vector<TraceRecord> records;
  sim.SetTraceSink([&](const TraceRecord& r) { records.push_back(r); });

  Message ok;
  ok.src = 0;
  ok.dst = 1;
  ok.kind = MessageKind::kCollection;
  ok.payload_bytes = 90;  // 3 fragments
  sim.SendUnicast(ok);

  sim.radio().FailLink(1, 2);
  Message lost;
  lost.src = 1;
  lost.dst = 2;
  lost.kind = MessageKind::kFinal;
  lost.payload_bytes = 5;
  sim.SendUnicast(lost);

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].src, 0);
  EXPECT_EQ(records[0].dst, 1);
  EXPECT_EQ(records[0].kind, MessageKind::kCollection);
  EXPECT_EQ(records[0].fragments, 3);
  EXPECT_EQ(records[0].payload_bytes, 90u);
  EXPECT_FALSE(records[0].broadcast);
  EXPECT_TRUE(records[0].delivered);
  EXPECT_FALSE(records[1].delivered);
}

TEST(TraceTest, RecordsBroadcasts) {
  Simulator sim = MakeChain();
  std::vector<TraceRecord> records;
  sim.SetTraceSink([&](const TraceRecord& r) { records.push_back(r); });
  Message msg;
  msg.src = 1;
  msg.kind = MessageKind::kBeacon;
  msg.payload_bytes = 4;
  sim.Broadcast(msg);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].broadcast);
  EXPECT_EQ(records[0].dst, kInvalidNode);
}

TEST(TraceTest, SinkCanBeRemoved) {
  Simulator sim = MakeChain();
  int count = 0;
  sim.SetTraceSink([&](const TraceRecord&) { ++count; });
  Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.payload_bytes = 1;
  sim.SendUnicast(msg);
  sim.SetTraceSink({});
  sim.SendUnicast(msg);
  EXPECT_EQ(count, 1);
}

TEST(TraceTest, TraceCountsMatchAccounting) {
  // Trace an entire SENS-Join execution: the sum of traced fragments must
  // equal the simulator's packet counters.
  testbed::TestbedParams params;
  params.placement.num_nodes = 120;
  params.placement.area_width_m = 320;
  params.placement.area_height_m = 320;
  auto tb = testbed::Testbed::Create(params);
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(A.x, A.y, B.x, B.y) > 300 ONCE");
  ASSERT_TRUE(q.ok());
  uint64_t traced_fragments = 0;
  (*tb)->simulator().SetTraceSink([&](const sim::TraceRecord& r) {
    if (IsJoinProcessingKind(r.kind)) traced_fragments += r.fragments;
  });
  auto report = (*tb)->MakeSensJoin().Execute(*q, 0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(traced_fragments, report->cost.join_packets);
}

}  // namespace
}  // namespace sensjoin::sim
