#include "sensjoin/common/bit_stream.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"

namespace sensjoin {
namespace {

TEST(BitWriterTest, EmptyWriter) {
  BitWriter w;
  EXPECT_EQ(w.size_bits(), 0u);
  EXPECT_EQ(w.size_bytes(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitWriterTest, SingleBits) {
  BitWriter w;
  w.WriteBit(true);
  w.WriteBit(false);
  w.WriteBit(true);
  EXPECT_EQ(w.size_bits(), 3u);
  EXPECT_EQ(w.size_bytes(), 1u);
  // MSB-first: 101 -> 1010 0000.
  EXPECT_EQ(w.bytes()[0], 0xA0);
  EXPECT_TRUE(w.BitAt(0));
  EXPECT_FALSE(w.BitAt(1));
  EXPECT_TRUE(w.BitAt(2));
}

TEST(BitWriterTest, MultiBitValuesAreMsbFirst) {
  BitWriter w;
  w.WriteBits(0b1011, 4);
  w.WriteBits(0b0010, 4);
  EXPECT_EQ(w.bytes()[0], 0xB2);
}

TEST(BitWriterTest, ZeroCountWriteIsNoop) {
  BitWriter w;
  w.WriteBits(0xFF, 0);
  EXPECT_EQ(w.size_bits(), 0u);
}

TEST(BitWriterTest, SixtyFourBitValue) {
  BitWriter w;
  const uint64_t v = 0x0123456789ABCDEFull;
  w.WriteBits(v, 64);
  BitReader r(w);
  EXPECT_EQ(r.ReadBits(64), v);
}

TEST(BitWriterTest, AppendAlignedAndUnaligned) {
  BitWriter a;
  a.WriteBits(0xAB, 8);  // aligned append path
  BitWriter b;
  b.WriteBits(0b101, 3);
  a.Append(b);
  EXPECT_EQ(a.size_bits(), 11u);
  BitReader r(a);
  EXPECT_EQ(r.ReadBits(8), 0xABu);
  EXPECT_EQ(r.ReadBits(3), 0b101u);

  // Unaligned append.
  BitWriter c;
  c.WriteBits(0b11, 2);
  c.Append(a);
  EXPECT_EQ(c.size_bits(), 13u);
  BitReader rc(c);
  EXPECT_EQ(rc.ReadBits(2), 0b11u);
  EXPECT_EQ(rc.ReadBits(8), 0xABu);
  EXPECT_EQ(rc.ReadBits(3), 0b101u);
}

TEST(BitWriterTest, AppendEmpty) {
  BitWriter a;
  a.WriteBits(0b1, 1);
  BitWriter empty;
  a.Append(empty);
  EXPECT_EQ(a.size_bits(), 1u);
}

TEST(BitWriterTest, Clear) {
  BitWriter w;
  w.WriteBits(0xFFFF, 16);
  w.Clear();
  EXPECT_EQ(w.size_bits(), 0u);
  w.WriteBit(false);
  EXPECT_EQ(w.bytes()[0], 0u);
}

TEST(BitReaderTest, PositionTracking) {
  BitWriter w;
  w.WriteBits(0xFF, 8);
  BitReader r(w);
  EXPECT_EQ(r.RemainingBits(), 8u);
  r.ReadBits(3);
  EXPECT_EQ(r.position_bits(), 3u);
  EXPECT_EQ(r.RemainingBits(), 5u);
  EXPECT_FALSE(r.AtEnd());
  r.ReadBits(5);
  EXPECT_TRUE(r.AtEnd());
}

class BitStreamRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitStreamRoundtripTest, RandomChunksRoundtrip) {
  Rng rng(GetParam());
  // Write random-width chunks, then read them back identically.
  std::vector<std::pair<uint64_t, int>> chunks;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    const int width = static_cast<int>(rng.UniformInt(1, 64));
    const uint64_t value =
        width == 64 ? rng.NextUint64() : rng.NextUint64() & ((1ull << width) - 1);
    chunks.emplace_back(value, width);
    w.WriteBits(value, width);
  }
  BitReader r(w);
  for (const auto& [value, width] : chunks) {
    ASSERT_EQ(r.ReadBits(width), value);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST_P(BitStreamRoundtripTest, AppendEqualsConcatenation) {
  Rng rng(GetParam());
  BitWriter parts[3];
  BitWriter whole;
  for (auto& part : parts) {
    const int chunks = static_cast<int>(rng.UniformInt(0, 20));
    for (int i = 0; i < chunks; ++i) {
      const int width = static_cast<int>(rng.UniformInt(1, 63));
      const uint64_t value = rng.NextUint64() & ((1ull << width) - 1);
      part.WriteBits(value, width);
      whole.WriteBits(value, width);
    }
  }
  BitWriter combined;
  for (auto& part : parts) combined.Append(part);
  ASSERT_EQ(combined.size_bits(), whole.size_bits());
  EXPECT_EQ(combined.bytes(), whole.bytes());
}

TEST_P(BitStreamRoundtripTest, TruncateEqualsNeverWriting) {
  // Writing A+B, truncating B away, then writing C must produce exactly
  // the stream of writing A+C — including re-zeroed padding in the last
  // partial byte so later writes can OR into it.
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter speculative;
    BitWriter reference;
    const int prefix_chunks = static_cast<int>(rng.UniformInt(0, 8));
    for (int i = 0; i < prefix_chunks; ++i) {
      const int width = static_cast<int>(rng.UniformInt(1, 63));
      const uint64_t value = rng.NextUint64() & ((1ull << width) - 1);
      speculative.WriteBits(value, width);
      reference.WriteBits(value, width);
    }
    const size_t mark = speculative.size_bits();
    const int spec_chunks = static_cast<int>(rng.UniformInt(1, 8));
    for (int i = 0; i < spec_chunks; ++i) {
      speculative.WriteBits(rng.NextUint64(), 64);
    }
    speculative.Truncate(mark);
    const int suffix_chunks = static_cast<int>(rng.UniformInt(0, 8));
    for (int i = 0; i < suffix_chunks; ++i) {
      const int width = static_cast<int>(rng.UniformInt(1, 63));
      const uint64_t value = rng.NextUint64() & ((1ull << width) - 1);
      speculative.WriteBits(value, width);
      reference.WriteBits(value, width);
    }
    ASSERT_EQ(speculative.size_bits(), reference.size_bits());
    EXPECT_EQ(speculative.bytes(), reference.bytes());
  }
}

TEST(BitWriterTest, WriteBitsIgnoresHighBitsAboveCount) {
  BitWriter masked;
  masked.WriteBits(~0ull, 5);
  BitWriter plain;
  plain.WriteBits(0x1f, 5);
  EXPECT_EQ(masked.bytes(), plain.bytes());
  EXPECT_EQ(masked.size_bits(), 5u);
}

TEST(BitWriterTest, ReserveBitsDoesNotChangeContents) {
  BitWriter w;
  w.WriteBits(0b101, 3);
  w.ReserveBits(4096);
  w.WriteBits(0xAB, 8);
  EXPECT_EQ(w.size_bits(), 11u);
  BitReader r(w);
  EXPECT_EQ(r.ReadBits(3), 0b101u);
  EXPECT_EQ(r.ReadBits(8), 0xABu);
}

TEST(BitReaderTest, TryReadBitsPastEndFailsWithoutAdvancing) {
  BitWriter w;
  w.WriteBits(0b1011, 4);
  BitReader r(w);
  uint64_t out = 0;
  ASSERT_TRUE(r.TryReadBits(3, &out).ok());
  EXPECT_EQ(out, 0b101u);
  // Requesting more bits than remain must fail and leave the position
  // untouched so the caller can report how far it got.
  const Status overrun = r.TryReadBits(2, &out);
  EXPECT_EQ(overrun.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.position_bits(), 3u);
  ASSERT_TRUE(r.TryReadBits(1, &out).ok());
  EXPECT_EQ(out, 1u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BitReaderTest, TryReadBitsOnEmptyStream) {
  BitWriter w;
  BitReader r(w);
  uint64_t out = 0;
  EXPECT_EQ(r.TryReadBits(1, &out).code(), StatusCode::kOutOfRange);
  bool bit = false;
  EXPECT_EQ(r.TryReadBit(&bit).code(), StatusCode::kOutOfRange);
}

TEST(BitReaderTest, TryReadBitsZeroWidth) {
  BitWriter w;
  BitReader r(w);
  uint64_t out = 0xDEAD;
  // Zero-width reads succeed even at end-of-stream and yield zero.
  ASSERT_TRUE(r.TryReadBits(0, &out).ok());
  EXPECT_EQ(out, 0u);
  EXPECT_EQ(r.position_bits(), 0u);
}

TEST(BitReaderTest, TryReadBitsRejectsInvalidWidths) {
  BitWriter w;
  w.WriteBits(~0ull, 64);
  w.WriteBits(~0ull, 64);
  BitReader r(w);
  uint64_t out = 0;
  EXPECT_EQ(r.TryReadBits(-1, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.TryReadBits(65, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.position_bits(), 0u);
}

TEST(BitReaderTest, TryReadBitsSixtyFourBitBoundary) {
  const uint64_t v = 0x0123456789ABCDEFull;
  BitWriter w;
  w.WriteBit(true);  // misalign so the 64-bit read spans 9 bytes
  w.WriteBits(v, 64);
  BitReader r(w);
  bool bit = false;
  ASSERT_TRUE(r.TryReadBit(&bit).ok());
  EXPECT_TRUE(bit);
  uint64_t out = 0;
  ASSERT_TRUE(r.TryReadBits(64, &out).ok());
  EXPECT_EQ(out, v);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.TryReadBits(64, &out).code(), StatusCode::kOutOfRange);
}

TEST(BitWriterTest, FromBytesRoundtrip) {
  BitWriter w;
  w.WriteBits(0b10110, 5);
  const BitWriter copy = BitWriter::FromBytes(w.bytes(), w.size_bits());
  EXPECT_EQ(copy.size_bits(), 5u);
  EXPECT_EQ(copy.bytes(), w.bytes());
}

TEST(BitWriterTest, FromBytesRezerosPaddingBits) {
  // Garbage in the padding bits of the last byte must be cleared so later
  // appends OR into clean space.
  const BitWriter w = BitWriter::FromBytes({0xFF}, 3);
  EXPECT_EQ(w.bytes()[0], 0xE0);
  BitWriter appended = w;
  appended.WriteBits(0, 5);
  EXPECT_EQ(appended.bytes()[0], 0xE0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStreamRoundtripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 42, 1234));

}  // namespace
}  // namespace sensjoin
