// Determinism regression for the parallel experiment engine: the same
// sweep run with 1 thread and with 8 threads must render byte-identical
// table output, and two same-seed runs must be byte-identical to each
// other. This is the contract that lets every bench default to parallel
// execution without changing a single printed number.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"
#include "util/table.h"

namespace sensjoin::testbed {
namespace {

constexpr const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 200 ONCE";

/// One sweep data point: an independent deployment at `num_nodes` built
/// from the trial seed, measured with both executors — the same shape as
/// the fig-series benches.
struct SweepRow {
  int num_nodes = 0;
  uint64_t sens_packets = 0;
  uint64_t ext_packets = 0;
  double sens_energy_mj = 0.0;
  uint64_t rows = 0;
};

StatusOr<SweepRow> RunPoint(int num_nodes, uint64_t seed) {
  TestbedParams params;
  params.placement.num_nodes = num_nodes;
  params.placement.area_width_m = 300;
  params.placement.area_height_m = 300;
  params.seed = seed;
  auto tb = Testbed::Create(params);
  SENSJOIN_RETURN_IF_ERROR(tb.status());
  auto q = (*tb)->ParseQuery(kQuery);
  SENSJOIN_RETURN_IF_ERROR(q.status());
  auto sens = (*tb)->MakeSensJoin().Execute(*q, 0);
  SENSJOIN_RETURN_IF_ERROR(sens.status());
  auto ext = (*tb)->MakeExternalJoin().Execute(*q, 0);
  SENSJOIN_RETURN_IF_ERROR(ext.status());
  SweepRow row;
  row.num_nodes = num_nodes;
  row.sens_packets = sens->cost.join_packets;
  row.ext_packets = ext->cost.join_packets;
  row.sens_energy_mj = sens->cost.energy_mj;
  row.rows = sens->result.rows.size();
  return row;
}

/// Renders the whole sweep exactly like a bench main: parallel trials,
/// rows collected in trial order, one table printed at the end.
std::string RenderSweep(int threads, uint64_t sweep_seed) {
  const std::vector<int> kNodeCounts = {100, 120, 140, 150};
  ParallelRunner runner(threads);
  auto rows = runner.Run(
      static_cast<int>(kNodeCounts.size()), sweep_seed,
      [&](const TrialContext& ctx) {
        auto r = RunPoint(kNodeCounts[static_cast<size_t>(ctx.trial)],
                          ctx.seed);
        EXPECT_TRUE(r.ok()) << r.status();
        return r.ok() ? *r : SweepRow{};
      });
  EXPECT_TRUE(rows.ok()) << rows.status();
  if (!rows.ok()) return "";

  std::ostringstream out;
  bench::TablePrinter table({"nodes", "sens pkts", "ext pkts", "mJ", "rows"});
  for (const SweepRow& row : *rows) {
    table.AddRow({bench::Fmt(static_cast<uint64_t>(row.num_nodes)),
                  bench::Fmt(row.sens_packets), bench::Fmt(row.ext_packets),
                  bench::Fmt(row.sens_energy_mj), bench::Fmt(row.rows)});
  }
  table.Print(out);
  return out.str();
}

TEST(ParallelDeterminismTest, OneThreadAndEightThreadsAreByteIdentical) {
  const std::string seq = RenderSweep(/*threads=*/1, /*sweep_seed=*/42);
  const std::string par = RenderSweep(/*threads=*/8, /*sweep_seed=*/42);
  ASSERT_FALSE(seq.empty());
  EXPECT_EQ(seq, par);
}

TEST(ParallelDeterminismTest, SameSeedRunsAreByteIdentical) {
  const std::string a = RenderSweep(/*threads=*/8, /*sweep_seed=*/7);
  const std::string b = RenderSweep(/*threads=*/8, /*sweep_seed=*/7);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ParallelDeterminismTest, DifferentSweepSeedsDiffer) {
  // Sanity check that the comparison above is not vacuous: the table
  // really depends on the sweep seed.
  EXPECT_NE(RenderSweep(4, 42), RenderSweep(4, 43));
}

}  // namespace
}  // namespace sensjoin::testbed
