#include "sensjoin/net/flooding.h"

#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/geometry.h"
#include "sensjoin/common/rng.h"
#include "sensjoin/net/topology.h"
#include "sensjoin/sim/radio.h"

namespace sensjoin::net {
namespace {

TEST(FloodingTest, ReachesAllConnectedNodesWithOneBroadcastEach) {
  Rng rng(4);
  PlacementParams params;
  params.num_nodes = 200;
  params.area_width_m = 400;
  params.area_height_m = 400;
  auto placement = GenerateConnectedPlacement(params, rng);
  ASSERT_TRUE(placement.ok());
  sim::Simulator sim{sim::Radio(placement->positions, params.range_m)};
  const int reached = FloodQuery(sim, 0, 20);
  EXPECT_EQ(reached, 200);
  // Simple flooding: every node rebroadcasts exactly once.
  EXPECT_EQ(sim.packets_sent_by_kind(sim::MessageKind::kQuery), 200u);
  for (int i = 0; i < sim.num_nodes(); ++i) {
    EXPECT_EQ(sim.node(i).stats.packets_sent_by_kind[static_cast<size_t>(
                  sim::MessageKind::kQuery)],
              1u);
  }
}

TEST(FloodingTest, DisconnectedNodesAreNotReached) {
  std::vector<Point> pos = {{0, 0}, {40, 0}, {1000, 1000}};
  sim::Simulator sim{sim::Radio(pos, 50.0)};
  EXPECT_EQ(FloodQuery(sim, 0, 10), 2);
}

TEST(FloodingTest, LargeQueriesCostMultiplePacketsPerHop) {
  std::vector<Point> pos = {{0, 0}, {40, 0}};
  sim::Simulator sim{sim::Radio(pos, 50.0)};
  FloodQuery(sim, 0, 100);  // 3 fragments at 40-byte capacity
  EXPECT_EQ(sim.node(0).stats.packets_sent, 3u);
}

}  // namespace
}  // namespace sensjoin::net
