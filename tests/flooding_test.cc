#include "sensjoin/net/flooding.h"

#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/geometry.h"
#include "sensjoin/common/rng.h"
#include "sensjoin/net/topology.h"
#include "sensjoin/sim/radio.h"

namespace sensjoin::net {
namespace {

TEST(FloodingTest, ReachesAllConnectedNodesWithOneBroadcastEach) {
  Rng rng(4);
  PlacementParams params;
  params.num_nodes = 200;
  params.area_width_m = 400;
  params.area_height_m = 400;
  auto placement = GenerateConnectedPlacement(params, rng);
  ASSERT_TRUE(placement.ok());
  sim::Simulator sim{sim::Radio(placement->positions, params.range_m)};
  const int reached = FloodQuery(sim, 0, 20);
  EXPECT_EQ(reached, 200);
  // Simple flooding: every node rebroadcasts exactly once.
  EXPECT_EQ(sim.packets_sent_by_kind(sim::MessageKind::kQuery), 200u);
  for (int i = 0; i < sim.num_nodes(); ++i) {
    EXPECT_EQ(sim.stats(i).packets_sent_by_kind[static_cast<size_t>(
                  sim::MessageKind::kQuery)],
              1u);
  }
}

TEST(FloodingTest, DisconnectedNodesAreNotReached) {
  std::vector<Point> pos = {{0, 0}, {40, 0}, {1000, 1000}};
  sim::Simulator sim{sim::Radio(pos, 50.0)};
  EXPECT_EQ(FloodQuery(sim, 0, 10), 2);
}

TEST(FloodingTest, LargeQueriesCostMultiplePacketsPerHop) {
  std::vector<Point> pos = {{0, 0}, {40, 0}};
  sim::Simulator sim{sim::Radio(pos, 50.0)};
  FloodQuery(sim, 0, 100);  // 3 fragments at 40-byte capacity
  EXPECT_EQ(sim.stats(0).packets_sent, 3u);
}

/// Regression for the re-flood bug: suppression state is node-resident, so
/// a second flood through the same Flooder is smothered — only the root
/// broadcasts (every other node believes it already forwarded this query)
/// and just the root's direct neighbors hear anything. ResetSuppression is
/// what arms the network for a fresh epoch.
TEST(FloodingTest, RefloodWithoutResetIsSuppressed) {
  Rng rng(4);
  PlacementParams params;
  params.num_nodes = 200;
  params.area_width_m = 400;
  params.area_height_m = 400;
  auto placement = GenerateConnectedPlacement(params, rng);
  ASSERT_TRUE(placement.ok());
  sim::Simulator sim{sim::Radio(placement->positions, params.range_m)};
  Flooder flooder(sim);

  const int first = flooder.Flood(0, 20, sim::MessageKind::kQuery);
  EXPECT_EQ(first, 200);

  // No reset: nodes still remember forwarding, so the flood dies at the
  // first hop — the root plus its direct neighbors.
  const int stale = flooder.Flood(0, 20, sim::MessageKind::kQuery);
  const int direct_neighbors =
      static_cast<int>(sim.radio().Neighbors(0).size());
  EXPECT_EQ(stale, 1 + direct_neighbors);
  EXPECT_LT(stale, first);

  // Reset re-arms every node; the same flooder reaches everyone again.
  flooder.ResetSuppression();
  EXPECT_EQ(flooder.Flood(0, 20, sim::MessageKind::kQuery), 200);
}

/// A fresh Flooder (what FloodPayload/FloodQuery construct per call) is
/// never suppressed by earlier floods: historical free-function behavior.
TEST(FloodingTest, FreshFlooderIsUnaffectedByEarlierFloods) {
  Rng rng(4);
  PlacementParams params;
  params.num_nodes = 120;
  params.area_width_m = 320;
  params.area_height_m = 320;
  auto placement = GenerateConnectedPlacement(params, rng);
  ASSERT_TRUE(placement.ok());
  sim::Simulator sim{sim::Radio(placement->positions, params.range_m)};
  EXPECT_EQ(FloodQuery(sim, 0, 20), 120);
  EXPECT_EQ(FloodQuery(sim, 0, 20), 120);
}

}  // namespace
}  // namespace sensjoin::net
