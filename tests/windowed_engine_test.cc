// Equivalence proof for the windowed parallel engine: a join execution
// under EngineKind::kWindowed must be byte-identical to the sequential
// engine — same ExecutionReport numbers (doubles compared as bit
// patterns via ExecutionFingerprint), same FNV-1a trace digest, at every
// worker count — and the parallel path must actually engage (the test is
// not allowed to pass by silently falling back to sequential). Under
// chaos (loss + ARQ + crashes + outages) the engine must detect the armed
// fault machinery and fall back, still byte-identical.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/join/protocol.h"
#include "sensjoin/obs/trace.h"
#include "sensjoin/sensjoin.h"
#include "sensjoin/sim/parallel_engine.h"
#include "sensjoin/testbed/chaos.h"

namespace sensjoin::testbed {
namespace {

constexpr const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.5 "
    "AND distance(A.x, A.y, B.x, B.y) > 100 ONCE";

TestbedParams Deployment(uint64_t seed, sim::EngineKind kind, int workers) {
  TestbedParams params;
  params.placement.num_nodes = 220;
  params.placement.area_width_m = 420;
  params.placement.area_height_m = 420;
  params.seed = seed;
  params.sim.engine.kind = kind;
  params.sim.engine.workers = workers;
  return params;
}

struct RunResult {
  std::string fingerprint;       ///< report + trace digest, bit-exact
  std::string external_fingerprint;
  uint64_t parallel_windows = 0;
  uint64_t sequential_windows = 0;
  double now = 0.0;              ///< final sim time (event-count proxy)
  uint64_t events_fired = 0;
};

/// One full execution (query flood + external join + SENS-Join) on a fresh
/// deployment with the given engine. `chaos_seed != 0` applies a seeded
/// six-axis fault schedule before executing.
RunResult RunOnce(uint64_t seed, sim::EngineKind kind, int workers,
                  uint64_t chaos_seed = 0) {
  auto tb = Testbed::Create(Deployment(seed, kind, workers));
  SENSJOIN_CHECK(tb.ok()) << tb.status();
  auto q = (*tb)->ParseQuery(kQuery);
  SENSJOIN_CHECK(q.ok()) << q.status();
  (*tb)->DisseminateQuery(*q);

  join::ProtocolConfig config;
  if (chaos_seed != 0) {
    ChaosParams params;
    params.seed = chaos_seed;
    params.arq_enabled = true;
    params.duplication_rate = 0.05;
    params.max_jitter_s = 0.005;
    params.enable_replay = true;
    ApplyChaos(**tb, MakeChaosSchedule(**tb, params));
    config.enable_phase_recovery = true;
    config.enable_tree_repair = true;
    config.enable_graceful_degradation = true;
    config.enable_phase_watchdog = true;
  }

  obs::Tracer tracer;
  (*tb)->AttachTracer(&tracer);
  auto ext = (*tb)->MakeExternalJoin(config).Execute(*q, 0);
  auto sens = (*tb)->MakeSensJoin(config).Execute(*q, 0);
  (*tb)->AttachTracer(nullptr);
  SENSJOIN_CHECK(ext.ok()) << ext.status();
  SENSJOIN_CHECK(sens.ok()) << sens.status();

  RunResult r;
  r.fingerprint = ExecutionFingerprint(*sens, &tracer);
  r.external_fingerprint = ExecutionFingerprint(*ext, nullptr);
  r.parallel_windows = (*tb)->simulator().engine().parallel_windows();
  r.sequential_windows = (*tb)->simulator().engine().sequential_windows();
  r.now = (*tb)->simulator().now();
  r.events_fired = (*tb)->simulator().events().total_fired();
  return r;
}

TEST(WindowedEngineTest, ByteIdenticalAcrossWorkerCounts) {
  // Seed 101's routing tree has several depth-1 subtrees, so windows can
  // actually split (a root with a single child would force the fallback).
  const RunResult seq = RunOnce(101, sim::EngineKind::kSequential, 0);
  EXPECT_EQ(seq.parallel_windows, 0u);
  for (int workers : {1, 2, 8}) {
    const RunResult win = RunOnce(101, sim::EngineKind::kWindowed, workers);
    EXPECT_EQ(win.fingerprint, seq.fingerprint) << "workers=" << workers;
    EXPECT_EQ(win.external_fingerprint, seq.external_fingerprint)
        << "workers=" << workers;
    EXPECT_EQ(win.now, seq.now) << "workers=" << workers;
    EXPECT_EQ(win.events_fired, seq.events_fired) << "workers=" << workers;
    if (workers > 1) {
      // The equivalence must be earned, not inherited from a fallback.
      EXPECT_GT(win.parallel_windows, 0u) << "workers=" << workers;
    } else {
      // One worker cannot split a window; the engine runs inline.
      EXPECT_EQ(win.parallel_windows, 0u);
    }
  }
}

TEST(WindowedEngineTest, ByteIdenticalAcrossSeeds) {
  for (uint64_t seed : {7u, 101u, 9000u}) {
    const RunResult seq = RunOnce(seed, sim::EngineKind::kSequential, 0);
    const RunResult win = RunOnce(seed, sim::EngineKind::kWindowed, 4);
    EXPECT_EQ(win.fingerprint, seq.fingerprint) << "seed=" << seed;
    EXPECT_EQ(win.external_fingerprint, seq.external_fingerprint)
        << "seed=" << seed;
    EXPECT_GT(win.parallel_windows, 0u) << "seed=" << seed;
  }
}

TEST(WindowedEngineTest, RepeatedWindowedRunsAreDeterministic) {
  const RunResult a = RunOnce(55, sim::EngineKind::kWindowed, 8);
  const RunResult b = RunOnce(55, sim::EngineKind::kWindowed, 8);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.external_fingerprint, b.external_fingerprint);
  EXPECT_EQ(a.parallel_windows, b.parallel_windows);
}

TEST(WindowedEngineTest, ChaosFallsBackSequentialAndStaysIdentical) {
  // With loss, ARQ, crashes and outages armed, WindowSafe() is false: the
  // windowed engine must take the sequential path on every window and the
  // outcome must match the sequential engine bit for bit.
  for (uint64_t chaos_seed : {3u, 17u}) {
    const RunResult seq =
        RunOnce(21, sim::EngineKind::kSequential, 0, chaos_seed);
    const RunResult win =
        RunOnce(21, sim::EngineKind::kWindowed, 8, chaos_seed);
    EXPECT_EQ(win.fingerprint, seq.fingerprint) << "chaos=" << chaos_seed;
    EXPECT_EQ(win.external_fingerprint, seq.external_fingerprint)
        << "chaos=" << chaos_seed;
    EXPECT_EQ(win.parallel_windows, 0u)
        << "chaos must force the sequential fallback";
    EXPECT_GT(win.sequential_windows, 0u);
  }
}

TEST(PartitionMapTest, FromParentsAssignsDepthOneSubtrees) {
  // Tree: 0 is root; 1, 2 are depth-1; 3, 4 under 1; 5 under 4; 6 orphan.
  const std::vector<sim::NodeId> parent = {sim::kInvalidNode, 0, 0, 1,
                                           1, 4, sim::kInvalidNode};
  const sim::PartitionMap map = sim::PartitionMap::FromParents(parent, 0);
  EXPECT_EQ(map.count, 2);
  EXPECT_EQ(map.part[0], sim::PartitionMap::kUnpartitioned);
  EXPECT_EQ(map.part[6], sim::PartitionMap::kUnpartitioned);
  EXPECT_GE(map.part[1], 0);
  EXPECT_GE(map.part[2], 0);
  EXPECT_NE(map.part[1], map.part[2]);
  EXPECT_EQ(map.part[3], map.part[1]);
  EXPECT_EQ(map.part[4], map.part[1]);
  EXPECT_EQ(map.part[5], map.part[1]);
  EXPECT_TRUE(map.SamePartition(3, 5));
  EXPECT_FALSE(map.SamePartition(3, 2));
  EXPECT_FALSE(map.SamePartition(1, 0));
  EXPECT_FALSE(map.SamePartition(0, 0));  // unpartitioned never matches
}

}  // namespace
}  // namespace sensjoin::testbed
