#include "sensjoin/join/representation.h"

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"
#include "sensjoin/compress/zlib_like.h"

namespace sensjoin::join {
namespace {

JoinAttrCodec MakeCodec() {
  DimensionSpec x{"x", 0, 0, 1000, 1.0};
  DimensionSpec y{"y", 1, 0, 1000, 1.0};
  DimensionSpec temp{"temp", 2, 0, 50, 0.1};
  auto q = Quantizer::Create({x, y, temp});
  SENSJOIN_CHECK(q.ok());
  return JoinAttrCodec(std::move(q).value(), 1);
}

PointSet CorrelatedSet(const JoinAttrCodec& codec, int n, uint64_t seed) {
  Rng rng(seed);
  PointSet set = codec.EmptySet();
  // Clusters of nearby readings, as spatial correlation produces.
  for (int c = 0; c < n / 20 + 1; ++c) {
    const double cx = rng.UniformDouble(100, 900);
    const double cy = rng.UniformDouble(100, 900);
    const double ct = rng.UniformDouble(10, 40);
    for (int i = 0; i < 20 && static_cast<int>(set.size()) < n; ++i) {
      set.Insert(codec.EncodeTuple({cx + rng.UniformDouble(-20, 20),
                                    cy + rng.UniformDouble(-20, 20),
                                    ct + rng.UniformDouble(-0.4, 0.4)},
                                   1));
    }
  }
  return set;
}

TEST(RepresentationTest, SerializeRawIsTwoBytesPerDim) {
  const JoinAttrCodec codec = MakeCodec();
  PointSet set = codec.EmptySet();
  set.Insert(codec.EncodeTuple({10, 20, 25}, 1));
  set.Insert(codec.EncodeTuple({700, 800, 30}, 1));
  const auto bytes = SerializePointsRaw(set, codec);
  EXPECT_EQ(bytes.size(), 2u * 3 * 2);
}

TEST(RepresentationTest, RawSerializationRoundtripsCoordinates) {
  const JoinAttrCodec codec = MakeCodec();
  PointSet set = codec.EmptySet();
  const uint64_t key = codec.EncodeTuple({123, 456, 21.7}, 1);
  set.Insert(key);
  const auto bytes = SerializePointsRaw(set, codec);
  const auto coords = codec.KeyCoordinates(key);
  for (int d = 0; d < 3; ++d) {
    const uint32_t v = bytes[2 * d] | (bytes[2 * d + 1] << 8);
    EXPECT_EQ(v, coords[d]);
  }
}

TEST(RepresentationTest, EmptySetCostsNothingInAnyRepresentation) {
  const JoinAttrCodec codec = MakeCodec();
  const PointSet empty = codec.EmptySet();
  for (auto repr :
       {JoinAttrRepresentation::kQuadtree, JoinAttrRepresentation::kRaw,
        JoinAttrRepresentation::kZlibLike,
        JoinAttrRepresentation::kBzip2Like}) {
    EXPECT_EQ(StructureWireBytes(empty, codec, repr), 0u);
  }
}

TEST(RepresentationTest, QuadtreeBeatsRawOnCorrelatedSets) {
  const JoinAttrCodec codec = MakeCodec();
  for (int n : {50, 200, 800}) {
    const PointSet set = CorrelatedSet(codec, n, n);
    const size_t quad =
        StructureWireBytes(set, codec, JoinAttrRepresentation::kQuadtree);
    const size_t raw =
        StructureWireBytes(set, codec, JoinAttrRepresentation::kRaw);
    EXPECT_LT(quad, raw) << n << " points";
  }
}

TEST(RepresentationTest, CompressedSizesMatchTheActualCodecs) {
  const JoinAttrCodec codec = MakeCodec();
  const PointSet set = CorrelatedSet(codec, 300, 9);
  const auto raw = SerializePointsRaw(set, codec);
  EXPECT_EQ(StructureWireBytes(set, codec, JoinAttrRepresentation::kZlibLike),
            compress::ZlibLikeCompress(raw).size());
}

TEST(RepresentationTest, NamesAreStable) {
  EXPECT_STREQ(JoinAttrRepresentationName(JoinAttrRepresentation::kQuadtree),
               "quadtree");
  EXPECT_STREQ(JoinAttrRepresentationName(JoinAttrRepresentation::kRaw),
               "raw");
}

}  // namespace
}  // namespace sensjoin::join
