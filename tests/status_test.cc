#include "sensjoin/common/status.h"

#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "sensjoin/common/statusor.h"

namespace sensjoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoriesSetCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chained(int x) {
  SENSJOIN_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 5);
  EXPECT_EQ(*v, 5);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(-1);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

StatusOr<int> Doubled(int x) {
  SENSJOIN_ASSIGN_OR_RETURN(const int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturn) {
  ASSERT_TRUE(Doubled(4).ok());
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_DEATH((void)v.value(), "StatusOr::value");
}

}  // namespace
}  // namespace sensjoin
