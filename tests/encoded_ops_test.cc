#include "sensjoin/join/encoded_ops.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"

namespace sensjoin::join {
namespace {

std::shared_ptr<const PointSetLayout> TestLayout() {
  return std::make_shared<const PointSetLayout>(2, std::vector<int>{2, 2, 2});
}

PointSet RandomSet(Rng& rng, std::shared_ptr<const PointSetLayout> layout,
                   int max_n) {
  std::vector<uint64_t> keys;
  const int n = static_cast<int>(rng.UniformInt(0, max_n));
  for (int i = 0; i < n; ++i) {
    keys.push_back(rng.UniformInt(64, 255));  // nonzero flags
  }
  return PointSet::FromKeys(std::move(layout), keys);
}

TEST(EncodedPointStreamTest, YieldsKeysInAscendingOrder) {
  auto layout = TestLayout();
  const PointSet set =
      PointSet::FromKeys(layout, {64, 65, 130, 131, 200, 255});
  const BitWriter encoded = set.Encode();
  EncodedPointStream stream(layout.get(), &encoded);
  std::vector<uint64_t> seen;
  while (auto key = stream.Next()) seen.push_back(*key);
  EXPECT_TRUE(stream.status().ok());
  EXPECT_EQ(seen, set.keys());
}

TEST(EncodedPointStreamTest, EmptyEncoding) {
  auto layout = TestLayout();
  BitWriter empty;
  EncodedPointStream stream(layout.get(), &empty);
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_TRUE(stream.status().ok());
}

TEST(EncodedPointStreamTest, TruncatedEncodingReportsError) {
  auto layout = TestLayout();
  BitWriter bad;
  bad.WriteBit(true);
  bad.WriteBits(0b1, 1);  // suffix needs 8 bits
  EncodedPointStream stream(layout.get(), &bad);
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_FALSE(stream.status().ok());
}

TEST(EncodedPointStreamTest, RejectsExactlyWhatBatchDecodeRejects) {
  // Regression from fuzzing: the streaming decoder must be as strict as
  // PointSet::Decode, or a corrupted structure could be accepted on one
  // path and rejected on the other.
  auto layout = TestLayout();
  auto drain = [&layout](const BitWriter& enc) {
    EncodedPointStream stream(layout.get(), &enc);
    while (stream.Next().has_value()) {
    }
    return stream.status().ok();
  };
  // Trailing garbage after a complete root node.
  BitWriter trailing = PointSet::FromKeys(layout, {64, 65}).Encode();
  trailing.WriteBits(0b101, 3);
  EXPECT_FALSE(drain(trailing));
  EXPECT_FALSE(PointSet::Decode(layout, trailing).ok());
  // Out-of-order keys inside a list node.
  BitWriter unordered;
  unordered.WriteBit(true);
  unordered.WriteBits(0b10000001, 8);
  unordered.WriteBit(true);
  unordered.WriteBits(0b10000000, 8);
  unordered.WriteBit(false);
  EXPECT_FALSE(drain(unordered));
  EXPECT_FALSE(PointSet::Decode(layout, unordered).ok());
}

class EncodedOpsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodedOpsPropertyTest, StreamMatchesDecode) {
  Rng rng(GetParam());
  auto layout = TestLayout();
  for (int iter = 0; iter < 100; ++iter) {
    const PointSet set = RandomSet(rng, layout, 80);
    const BitWriter encoded = set.Encode();
    EncodedPointStream stream(layout.get(), &encoded);
    std::vector<uint64_t> seen;
    while (auto key = stream.Next()) seen.push_back(*key);
    ASSERT_TRUE(stream.status().ok()) << stream.status();
    EXPECT_EQ(seen, set.keys());
  }
}

TEST_P(EncodedOpsPropertyTest, ContainsEncodedMatchesSetMembership) {
  Rng rng(GetParam() + 1);
  auto layout = TestLayout();
  for (int iter = 0; iter < 50; ++iter) {
    const PointSet set = RandomSet(rng, layout, 60);
    const BitWriter encoded = set.Encode();
    for (uint64_t key = 0; key < 256; key += 3) {
      auto result = ContainsEncoded(*layout, encoded, key);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(*result, set.Contains(key)) << "key " << key;
    }
  }
}

TEST_P(EncodedOpsPropertyTest, StreamOpsAreBitIdenticalToCanonicalOps) {
  // The Sec. V-D property: set operations computed directly on the wire
  // format equal the canonical encodings of the set-level operations.
  Rng rng(GetParam() + 2);
  auto layout = TestLayout();
  for (int iter = 0; iter < 100; ++iter) {
    const PointSet a = RandomSet(rng, layout, 60);
    const PointSet b = RandomSet(rng, layout, 60);
    const BitWriter ea = a.Encode();
    const BitWriter eb = b.Encode();

    auto u = UnionEncoded(*layout, ea, eb);
    ASSERT_TRUE(u.ok()) << u.status();
    const BitWriter expected_u = PointSet::Union(a, b).Encode();
    EXPECT_EQ(u->size_bits(), expected_u.size_bits());
    EXPECT_EQ(u->bytes(), expected_u.bytes());

    auto i = IntersectEncoded(*layout, ea, eb);
    ASSERT_TRUE(i.ok()) << i.status();
    const BitWriter expected_i = PointSet::Intersect(a, b).Encode();
    EXPECT_EQ(i->size_bits(), expected_i.size_bits());
    EXPECT_EQ(i->bytes(), expected_i.bytes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodedOpsPropertyTest,
                         ::testing::Values(6, 66, 666));

TEST(EncodedOpsTest, UnionWithEmptyIsIdentity) {
  auto layout = TestLayout();
  const PointSet a = PointSet::FromKeys(layout, {70, 90, 200});
  BitWriter empty;
  auto u = UnionEncoded(*layout, a.Encode(), empty);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->bytes(), a.Encode().bytes());
  auto i = IntersectEncoded(*layout, a.Encode(), empty);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->size_bits(), 0u);
}

TEST(EncodedOpsTest, EncodeKeyRangeMatchesPointSet) {
  auto layout = TestLayout();
  const std::vector<uint64_t> keys = {64, 100, 101, 250};
  const BitWriter direct = EncodeKeyRange(*layout, keys);
  const BitWriter via_set = PointSet::FromKeys(layout, keys).Encode();
  EXPECT_EQ(direct.bytes(), via_set.bytes());
}

}  // namespace
}  // namespace sensjoin::join
