#include "sensjoin/query/lexer.h"

#include <vector>

#include <gtest/gtest.h>

namespace sensjoin::query {
namespace {

std::vector<TokenType> Types(const std::vector<Token>& tokens) {
  std::vector<TokenType> out;
  for (const Token& t : tokens) out.push_back(t.type);
  return out;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitiveAndUppercased) {
  auto tokens = Tokenize("select FROM WhErE once");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
  EXPECT_EQ((*tokens)[3].text, "ONCE");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kKeyword);
  }
}

TEST(LexerTest, IdentifiersKeepTheirSpelling) {
  auto tokens = Tokenize("Sensors tempValue _x a1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "Sensors");
  EXPECT_EQ((*tokens)[1].text, "tempValue");
  EXPECT_EQ((*tokens)[2].text, "_x");
  EXPECT_EQ((*tokens)[3].text, "a1");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kIdentifier);
  }
}

TEST(LexerTest, NumbersIncludingDecimalsAndExponents) {
  auto tokens = Tokenize("10 0.3 .5 2e3 1.5E-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 10.0);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 0.3);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 0.5);
  EXPECT_DOUBLE_EQ((*tokens)[3].number, 2000.0);
  EXPECT_DOUBLE_EQ((*tokens)[4].number, 0.015);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = Tokenize("< <= > >= = == != <> . , ( ) * + - / |");
  ASSERT_TRUE(tokens.ok());
  const std::vector<TokenType> expected = {
      TokenType::kLt,     TokenType::kLe,    TokenType::kGt,
      TokenType::kGe,     TokenType::kEq,    TokenType::kEq,
      TokenType::kNe,     TokenType::kNe,    TokenType::kDot,
      TokenType::kComma,  TokenType::kLParen, TokenType::kRParen,
      TokenType::kStar,   TokenType::kPlus,  TokenType::kMinus,
      TokenType::kSlash,  TokenType::kPipe,  TokenType::kEnd};
  EXPECT_EQ(Types(*tokens), expected);
}

TEST(LexerTest, QualifiedAttributeTokenizes) {
  auto tokens = Tokenize("A.temp");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].type, TokenType::kDot);
  EXPECT_EQ((*tokens)[2].type, TokenType::kIdentifier);
}

TEST(LexerTest, OffsetsPointAtTokenStarts) {
  auto tokens = Tokenize("ab  12");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].offset, 0u);
  EXPECT_EQ((*tokens)[1].offset, 4u);
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("a # b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());  // lone '!' invalid, '!=' is fine
  EXPECT_TRUE(Tokenize("a != b").ok());
}

}  // namespace
}  // namespace sensjoin::query
