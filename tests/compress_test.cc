#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"
#include "sensjoin/compress/bwt.h"
#include "sensjoin/compress/bzip2_like.h"
#include "sensjoin/compress/huffman.h"
#include "sensjoin/compress/lz77.h"
#include "sensjoin/compress/mtf.h"
#include "sensjoin/compress/rle.h"
#include "sensjoin/compress/zlib_like.h"

namespace sensjoin::compress {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::vector<uint8_t> RandomBytes(Rng& rng, size_t n, int alphabet = 256) {
  std::vector<uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.UniformInt(0, alphabet - 1));
  }
  return out;
}

std::vector<uint8_t> RepetitiveBytes(Rng& rng, size_t n) {
  // Repeated phrases: compressible by LZ and BWT alike.
  const std::vector<uint8_t> phrase = RandomBytes(rng, 23, 8);
  std::vector<uint8_t> out;
  while (out.size() < n) {
    out.insert(out.end(), phrase.begin(), phrase.end());
    if (rng.NextBool(0.2)) out.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
  }
  out.resize(n);
  return out;
}

// ---- Huffman ------------------------------------------------------------

TEST(HuffmanTest, RoundtripBasics) {
  for (const std::string s :
       {"", "a", "aaaa", "abracadabra", "the quick brown fox"}) {
    const auto compressed = HuffmanCompress(Bytes(s));
    const auto decompressed = HuffmanDecompress(compressed);
    ASSERT_TRUE(decompressed.ok()) << decompressed.status() << " for '" << s
                                   << "'";
    EXPECT_EQ(*decompressed, Bytes(s));
  }
}

TEST(HuffmanTest, SkewedInputCompresses) {
  std::vector<uint8_t> skewed(4000, 'a');
  for (size_t i = 0; i < skewed.size(); i += 17) skewed[i] = 'b';
  const auto compressed = HuffmanCompress(skewed);
  EXPECT_LT(compressed.size(), skewed.size() / 4);
  EXPECT_EQ(*HuffmanDecompress(compressed), skewed);
}

TEST(HuffmanTest, TinyInputsGrow) {
  // The overhead story of Sec. VI-B: small buffers get bigger.
  const auto compressed = HuffmanCompress(Bytes("xy"));
  EXPECT_GT(compressed.size(), 2u);
}

TEST(HuffmanTest, DeepCodesFromSkewedFrequencies) {
  // Fibonacci-like frequencies force maximally unbalanced trees with code
  // lengths well beyond the 15-bit limit of classic deflate tables; our
  // 6-bit length encoding must handle them.
  std::vector<uint8_t> input;
  uint64_t a = 1;
  uint64_t b = 1;
  for (int sym = 0; sym < 24; ++sym) {
    for (uint64_t i = 0; i < a && input.size() < 300000; ++i) {
      input.push_back(static_cast<uint8_t>(sym));
    }
    const uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto compressed = HuffmanCompress(input);
  const auto decompressed = HuffmanDecompress(compressed);
  ASSERT_TRUE(decompressed.ok()) << decompressed.status();
  EXPECT_EQ(*decompressed, input);
  EXPECT_LT(compressed.size(), input.size() / 2);
}

TEST(HuffmanTest, UniformAlphabetRoundtrip) {
  std::vector<uint8_t> input;
  for (int i = 0; i < 256 * 8; ++i) input.push_back(static_cast<uint8_t>(i));
  EXPECT_EQ(*HuffmanDecompress(HuffmanCompress(input)), input);
}

TEST(HuffmanTest, MalformedInputErrors) {
  EXPECT_FALSE(HuffmanDecompress({}).ok());
  EXPECT_FALSE(HuffmanDecompress({0x05, 0x00, 0x00, 0x00}).ok());
}

// ---- LZ77 ---------------------------------------------------------------

TEST(Lz77Test, ParseReconstructRoundtrip) {
  Rng rng(3);
  for (const auto& input :
       {Bytes("abababababababab"), Bytes("no repeats here!?"),
        RepetitiveBytes(rng, 5000), RandomBytes(rng, 3000)}) {
    EXPECT_EQ(*Lz77Reconstruct(Lz77Parse(input)), input);
  }
}

TEST(Lz77Test, FindsMatchesInRepetitiveInput) {
  const auto input = Bytes("abcabcabcabcabcabcabc");
  const auto tokens = Lz77Parse(input);
  EXPECT_LT(tokens.size(), input.size() / 2);
  bool has_match = false;
  for (const auto& t : tokens) has_match |= t.is_match;
  EXPECT_TRUE(has_match);
}

TEST(Lz77Test, OverlappingMatchRoundtrip) {
  std::vector<uint8_t> runs(1000, 'z');  // classic distance-1 overlap
  const auto tokens = Lz77Parse(runs);
  EXPECT_LT(tokens.size(), 10u);
  EXPECT_EQ(*Lz77Reconstruct(tokens), runs);
}

// ---- BWT / MTF / RLE ----------------------------------------------------

TEST(BwtTest, KnownTransform) {
  // Classic example: "banana" rotations sorted -> last column "nnbaaa".
  const BwtResult r = BwtTransform(Bytes("banana"));
  EXPECT_EQ(std::string(r.data.begin(), r.data.end()), "nnbaaa");
  EXPECT_EQ(*BwtInverse(r.data, r.primary_index), Bytes("banana"));
}

TEST(BwtTest, RoundtripIncludingPeriodicInputs) {
  Rng rng(5);
  for (const auto& input :
       {Bytes(""), Bytes("a"), Bytes("abab"), Bytes("aaaa"),
        Bytes("mississippi"), RandomBytes(rng, 2000),
        RepetitiveBytes(rng, 2000)}) {
    const BwtResult r = BwtTransform(input);
    EXPECT_EQ(*BwtInverse(r.data, r.primary_index), input);
  }
}

TEST(BwtTest, GroupsEqualSymbols) {
  Rng rng(6);
  const auto input = RepetitiveBytes(rng, 4000);
  const BwtResult r = BwtTransform(input);
  // Count symbol changes: BWT output of repetitive text has long runs.
  size_t changes_in = 0;
  size_t changes_out = 0;
  for (size_t i = 1; i < input.size(); ++i) {
    changes_in += input[i] != input[i - 1];
    changes_out += r.data[i] != r.data[i - 1];
  }
  EXPECT_LT(changes_out, changes_in / 2);
}

TEST(MtfTest, RoundtripAndRecencySkew) {
  Rng rng(7);
  for (const auto& input :
       {Bytes(""), Bytes("aaabbbccc"), RandomBytes(rng, 1000)}) {
    EXPECT_EQ(MtfDecode(MtfEncode(input)), input);
  }
  // Runs become zeros.
  const auto encoded = MtfEncode(Bytes("aaaa"));
  EXPECT_EQ(encoded[1], 0);
  EXPECT_EQ(encoded[2], 0);
}

TEST(RleTest, RoundtripEdgeCases) {
  Rng rng(8);
  for (const auto& input :
       {Bytes(""), Bytes("abc"), Bytes("aaaa"), Bytes("aaaaa"),
        std::vector<uint8_t>(259, 'x'), std::vector<uint8_t>(260, 'x'),
        std::vector<uint8_t>(1000, 'x'), RandomBytes(rng, 500),
        RepetitiveBytes(rng, 500)}) {
    const auto decoded = RleDecode(RleEncode(input));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, input);
  }
}

TEST(RleTest, LongRunsShrink) {
  const std::vector<uint8_t> run(255, 'q');
  EXPECT_EQ(RleEncode(run).size(), 5u);  // 4 copies + count byte
}

// ---- Full codecs ---------------------------------------------------------

class CodecRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecRoundtripTest, ZlibLikeRoundtrip) {
  Rng rng(GetParam());
  for (const auto& input :
       {std::vector<uint8_t>{}, Bytes("x"), RandomBytes(rng, 1),
        RandomBytes(rng, 100), RandomBytes(rng, 5000),
        RepetitiveBytes(rng, 5000), std::vector<uint8_t>(70000, 'r')}) {
    const auto compressed = ZlibLikeCompress(input);
    const auto decompressed = ZlibLikeDecompress(compressed);
    ASSERT_TRUE(decompressed.ok()) << decompressed.status();
    EXPECT_EQ(*decompressed, input);
  }
}

TEST_P(CodecRoundtripTest, Bzip2LikeRoundtrip) {
  Rng rng(GetParam() + 1);
  for (const auto& input :
       {std::vector<uint8_t>{}, Bytes("x"), RandomBytes(rng, 1),
        RandomBytes(rng, 100), RandomBytes(rng, 5000),
        RepetitiveBytes(rng, 5000), std::vector<uint8_t>(70000, 'r')}) {
    const auto compressed = Bzip2LikeCompress(input);
    const auto decompressed = Bzip2LikeDecompress(compressed);
    ASSERT_TRUE(decompressed.ok()) << decompressed.status();
    EXPECT_EQ(*decompressed, input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundtripTest,
                         ::testing::Values(10, 20, 30));

TEST(CodecComparisonTest, RepetitiveDataCompressesWell) {
  Rng rng(9);
  const auto input = RepetitiveBytes(rng, 20000);
  EXPECT_LT(ZlibLikeCompress(input).size(), input.size() / 3);
  EXPECT_LT(Bzip2LikeCompress(input).size(), input.size() / 3);
}

TEST(CodecComparisonTest, TinyBuffersGainNothing) {
  // The Sec. VI-B effect: per-hop buffers of a few dozen bytes do not
  // benefit from general-purpose compression.
  Rng rng(10);
  const auto tiny = RandomBytes(rng, 24, 16);
  EXPECT_GE(ZlibLikeCompress(tiny).size() + 8, tiny.size());
  EXPECT_GT(Bzip2LikeCompress(tiny).size(), tiny.size() / 2);
}

TEST(CodecErrorTest, CorruptStreamsFailCleanly) {
  Rng rng(11);
  const auto input = RepetitiveBytes(rng, 500);
  auto z = ZlibLikeCompress(input);
  z.resize(z.size() / 2);
  EXPECT_FALSE(ZlibLikeDecompress(z).ok());
  auto b = Bzip2LikeCompress(input);
  b.resize(b.size() / 2);
  EXPECT_FALSE(Bzip2LikeDecompress(b).ok());
  EXPECT_FALSE(ZlibLikeDecompress({}).ok());
  EXPECT_FALSE(Bzip2LikeDecompress({1, 2}).ok());
}

TEST(CodecErrorTest, HuffmanHugeDeclaredSizeIsRejected) {
  // A bit-flipped header can declare a near-4GB original size; the decoder
  // must reject it before reserving that much memory.
  auto compressed = HuffmanCompress(Bytes("payload payload payload"));
  compressed[0] = 0xFF;
  compressed[1] = 0xFF;
  compressed[2] = 0xFF;
  compressed[3] = 0xFF;
  const auto result = HuffmanDecompress(compressed);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecErrorTest, ZlibLikeHugeTokenCountIsRejected) {
  // Hand-build a compressed-mode stream whose token section declares ~4G
  // tokens but carries none. The count must be bounds-checked against the
  // stream before the token vector is allocated.
  const std::vector<uint8_t> tokens = {0xF0, 0xFF, 0xFF, 0xFF};
  std::vector<uint8_t> stream = HuffmanCompress(tokens);
  stream.insert(stream.begin(), 1);  // mode tag: compressed
  const auto result = ZlibLikeDecompress(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecErrorTest, Lz77BadTokensAreRejected) {
  Lz77Token literal;
  literal.literal = 'x';
  Lz77Token bad_distance;
  bad_distance.is_match = true;
  bad_distance.length = kLz77MinMatch;
  bad_distance.distance = 2;  // only 1 byte of history exists
  EXPECT_FALSE(Lz77Reconstruct({literal, bad_distance}).ok());

  Lz77Token zero_distance = bad_distance;
  zero_distance.distance = 0;
  EXPECT_FALSE(Lz77Reconstruct({literal, zero_distance}).ok());

  Lz77Token short_match;
  short_match.is_match = true;
  short_match.length = kLz77MinMatch - 1;
  short_match.distance = 1;
  EXPECT_FALSE(Lz77Reconstruct({literal, short_match}).ok());
}

TEST(CodecErrorTest, BwtBadPrimaryIndexIsRejected) {
  const auto bwt = BwtTransform(Bytes("banana"));
  const auto result =
      BwtInverse(bwt.data, static_cast<uint32_t>(bwt.data.size()));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(BwtInverse({}, 0)->empty());
}

TEST(CodecErrorTest, RleTruncatedRunIsRejected) {
  // Four equal bytes announce a run, so dropping the count byte truncates
  // the stream mid-token.
  auto encoded = RleEncode(std::vector<uint8_t>(40, 7));
  ASSERT_FALSE(encoded.empty());
  encoded.pop_back();
  EXPECT_FALSE(RleDecode(encoded).ok());
}

}  // namespace
}  // namespace sensjoin::compress
