// Runs SENS-Join with verify_wire_roundtrip: every join-attribute structure
// and every pruned filter that the protocol hands to the radio is actually
// serialized to its quadtree wire bits and parsed back (a fatal check on
// mismatch). Passing proves the Fig. 9 format round-trips everything the
// protocol ever ships — not just the synthetic sets of the unit tests.

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin {
namespace {

class WireFidelityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFidelityTest, EveryShippedStructureSurvivesTheWire) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 300;
  params.placement.area_width_m = 470;
  params.placement.area_height_m = 470;
  params.seed = GetParam();
  auto tb = testbed::Testbed::Create(params);
  ASSERT_TRUE(tb.ok());

  join::ProtocolConfig config;
  config.verify_wire_roundtrip = true;

  const char* queries[] = {
      // A sparse and a dense query stress small and large structures.
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.3 "
      "AND distance(A.x, A.y, B.x, B.y) > 450 ONCE",
      "SELECT A.hum, B.hum FROM sensors A, sensors B "
      "WHERE |A.temp - B.temp| < 0.5 ONCE",
      "SELECT A.pres, B.pres FROM sensors A, sensors B "
      "WHERE A.light - B.light > 100 AND A.hum + B.hum < 120 ONCE",
  };
  for (const char* sql : queries) {
    SCOPED_TRACE(sql);
    auto q = (*tb)->ParseQuery(sql);
    ASSERT_TRUE(q.ok()) << q.status();
    auto sens = (*tb)->MakeSensJoin(config).Execute(*q, 0);
    ASSERT_TRUE(sens.ok()) << sens.status();
    auto ext = (*tb)->MakeExternalJoin().Execute(*q, 0);
    ASSERT_TRUE(ext.ok());
    EXPECT_EQ(sens->result.matched_combinations,
              ext->result.matched_combinations);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFidelityTest,
                         ::testing::Values(3, 33, 333));

}  // namespace
}  // namespace sensjoin
