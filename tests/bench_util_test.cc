// The bench harness itself is load-bearing (it produces the paper
// comparison), so its utilities get tests too.

#include <sstream>

#include <gtest/gtest.h>

#include "../bench/util/calibration.h"
#include "../bench/util/table.h"
#include "../bench/util/workloads.h"

namespace sensjoin::bench {
namespace {

TEST(TablePrinterTest, AlignsColumnsAndPadsMissingCells) {
  TablePrinter table({"a", "long header", "c"});
  table.AddRow({"wide cell", "x"});
  table.AddRow({"1", "2", "3"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  int lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 4);
  EXPECT_NE(out.find("a          "), std::string::npos);  // padded to width
  EXPECT_NE(out.find("long header"), std::string::npos);
}

TEST(FormattersTest, NumbersAndPercentages) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(uint64_t{42}), "42");
  EXPECT_EQ(Percent(1, 4), "25.0%");
  EXPECT_EQ(Percent(1, 0), "n/a");
  EXPECT_EQ(Savings(20, 100), "80.0%");
  EXPECT_EQ(Savings(150, 100), "-50.0%");
  EXPECT_EQ(Savings(10, 0), "n/a");
}

TEST(WorkloadsTest, RatioQueriesHaveTheRequestedArity) {
  testbed::TestbedParams params = PaperDefaultParams(1, 200);
  auto tb = MustCreateTestbed(params);
  for (int attrs = 1; attrs <= 5; ++attrs) {
    auto q = tb->ParseQuery(RatioQueryOneJoinAttr(attrs, 3.0));
    ASSERT_TRUE(q.ok()) << q.status();
    EXPECT_EQ(q->table(0).join_attr_indices.size(), 1u);
    EXPECT_EQ(static_cast<int>(q->table(0).queried_attr_indices.size()),
              attrs);
  }
  for (int attrs = 3; attrs <= 6; ++attrs) {
    auto q = tb->ParseQuery(RatioQueryThreeJoinAttrs(attrs, 200.0));
    ASSERT_TRUE(q.ok()) << q.status();
    EXPECT_EQ(q->table(0).join_attr_indices.size(), 3u);
    EXPECT_EQ(static_cast<int>(q->table(0).queried_attr_indices.size()),
              attrs);
  }
}

TEST(WorkloadsTest, PaperDefaultsScaleAreaWithDensity) {
  const auto p1500 = PaperDefaultParams(1, 1500);
  EXPECT_DOUBLE_EQ(p1500.placement.area_width_m, 1050.0);
  const auto p3000 = PaperDefaultParams(1, 3000);
  // Double the nodes -> double the area -> side * sqrt(2).
  EXPECT_NEAR(p3000.placement.area_width_m * p3000.placement.area_height_m,
              2 * 1050.0 * 1050.0, 1.0);
}

TEST(CalibrationTest, FractionIsMonotoneAndCalibratable) {
  testbed::TestbedParams params = PaperDefaultParams(5, 250);
  auto tb = MustCreateTestbed(params);
  // Fraction decreases as the threshold grows.
  auto q_loose = tb->ParseQuery(RatioQueryOneJoinAttr(3, 0.5));
  auto q_tight = tb->ParseQuery(RatioQueryOneJoinAttr(3, 6.0));
  ASSERT_TRUE(q_loose.ok() && q_tight.ok());
  const double loose = ResultNodeFraction(*tb, *q_loose, 0);
  const double tight = ResultNodeFraction(*tb, *q_tight, 0);
  EXPECT_GE(loose, tight);

  const Calibration cal = CalibrateFraction(
      *tb, [](double d) { return RatioQueryOneJoinAttr(3, d); }, 0.0, 25.0,
      0.10, /*increasing=*/false);
  EXPECT_NEAR(cal.fraction, 0.10, 0.05);
  auto q = tb->ParseQuery(cal.sql);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(ResultNodeFraction(*tb, *q, 0), cal.fraction, 1e-12);
}

TEST(CalibrationTest, FractionMatchesExecutorGroundTruth) {
  testbed::TestbedParams params = PaperDefaultParams(6, 200);
  auto tb = MustCreateTestbed(params);
  auto q = tb->ParseQuery(RatioQueryOneJoinAttr(3, 4.0));
  ASSERT_TRUE(q.ok());
  const double fraction = ResultNodeFraction(*tb, *q, 0);
  auto report = tb->MakeExternalJoin().Execute(*q, 0);
  ASSERT_TRUE(report.ok());
  const double executed =
      static_cast<double>(report->result.contributing_nodes.size()) /
      (tb->simulator().num_nodes() - 1);
  EXPECT_NEAR(fraction, executed, 1e-12);
}

}  // namespace
}  // namespace sensjoin::bench
