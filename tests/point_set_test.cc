#include "sensjoin/join/point_set.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/rng.h"

namespace sensjoin::join {
namespace {

std::shared_ptr<const PointSetLayout> SmallLayout() {
  // Flags digit (2 relations) + three 2-wide Z levels: 8-bit keys.
  return std::make_shared<const PointSetLayout>(2, std::vector<int>{2, 2, 2});
}

TEST(PointSetLayoutTest, LevelAndSuffixStructure) {
  auto layout = SmallLayout();
  EXPECT_EQ(layout->num_levels(), 4);
  EXPECT_EQ(layout->level_widths(), (std::vector<int>{2, 2, 2, 2}));
  EXPECT_EQ(layout->total_key_bits(), 8);
  EXPECT_EQ(layout->SuffixBits(0), 8);
  EXPECT_EQ(layout->SuffixBits(1), 6);
  EXPECT_EQ(layout->SuffixBits(4), 0);
}

TEST(PointSetLayoutTest, KeyPackingPutsFlagsOnTop) {
  auto layout = SmallLayout();
  const uint64_t key = layout->MakeKey(0b10, 0b110101);
  EXPECT_EQ(key, 0b10110101u);
  EXPECT_EQ(layout->FlagsOfKey(key), 0b10);
  EXPECT_EQ(layout->ZOfKey(key), 0b110101u);
}

TEST(PointSetLayoutTest, NoFlagsLayout) {
  PointSetLayout layout(0, {2, 2});
  EXPECT_EQ(layout.total_key_bits(), 4);
  EXPECT_EQ(layout.MakeKey(0, 0b1010), 0b1010u);
  EXPECT_EQ(layout.FlagsOfKey(0b1010), 0);
}

TEST(PointSetTest, InsertContainsAndDedup) {
  PointSet set(SmallLayout());
  EXPECT_TRUE(set.empty());
  set.Insert(5);
  set.Insert(3);
  set.Insert(5);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(3));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(4));
  EXPECT_EQ(set.keys(), (std::vector<uint64_t>{3, 5}));
}

TEST(PointSetTest, FromKeysSortsAndDedups) {
  PointSet set = PointSet::FromKeys(SmallLayout(), {9, 1, 9, 200, 1});
  EXPECT_EQ(set.keys(), (std::vector<uint64_t>{1, 9, 200}));
}

TEST(PointSetTest, UnionAndIntersectSemantics) {
  auto layout = SmallLayout();
  PointSet a = PointSet::FromKeys(layout, {1, 2, 3, 100});
  PointSet b = PointSet::FromKeys(layout, {2, 3, 4});
  EXPECT_EQ(PointSet::Union(a, b).keys(),
            (std::vector<uint64_t>{1, 2, 3, 4, 100}));
  EXPECT_EQ(PointSet::Intersect(a, b).keys(), (std::vector<uint64_t>{2, 3}));
  PointSet empty(layout);
  EXPECT_EQ(PointSet::Union(a, empty).keys(), a.keys());
  EXPECT_TRUE(PointSet::Intersect(a, empty).empty());
}

TEST(PointSetTest, EmptySetEncodesToNothing) {
  PointSet set(SmallLayout());
  EXPECT_EQ(set.EncodedBits(), 0u);
  auto decoded = PointSet::Decode(SmallLayout(), set.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(PointSetTest, SinglePointIsListedNotSubdivided) {
  PointSet set(SmallLayout());
  set.Insert(0b10110101);
  // List form: '1' + 8 suffix bits + '0' = 10 bits. Any subdivision would
  // cost at least 1 + 4 mask bits at the root alone plus the subtree.
  EXPECT_EQ(set.EncodedBits(), 10u);
}

TEST(PointSetTest, ClusteredPointsCompressBetterThanScattered) {
  auto layout =
      std::make_shared<const PointSetLayout>(2, std::vector<int>{2, 2, 2, 2});
  // 32 points sharing a long prefix vs 32 points spread out.
  std::vector<uint64_t> clustered;
  for (uint64_t i = 0; i < 32; ++i) clustered.push_back(0b1000000000 | i);
  std::vector<uint64_t> scattered;
  for (uint64_t i = 0; i < 32; ++i) scattered.push_back(i * 31 % 1024);
  const PointSet c = PointSet::FromKeys(layout, clustered);
  const PointSet s = PointSet::FromKeys(layout, scattered);
  ASSERT_EQ(c.size(), 32u);
  ASSERT_EQ(s.size(), 32u);
  EXPECT_LT(c.EncodedBits(), s.EncodedBits());
}

TEST(PointSetTest, QuadtreeBeatsRawListingOnRedundantSets) {
  // Spatially correlated data: many points, few distinct prefixes
  // (Sec. V-A: the representation eliminates redundancy).
  auto layout =
      std::make_shared<const PointSetLayout>(1, std::vector<int>{3, 3, 3});
  std::vector<uint64_t> keys;
  for (uint64_t cluster = 0; cluster < 4; ++cluster) {
    for (uint64_t i = 0; i < 16; ++i) {
      keys.push_back((1ull << 9) | (cluster << 7) | (i % 8));
    }
  }
  const PointSet set = PointSet::FromKeys(layout, keys);
  const size_t raw_bits = set.size() * layout->total_key_bits();
  EXPECT_LT(set.EncodedBits(), raw_bits / 2);
}

class PointSetRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PointSetRoundtripTest, EncodeDecodeRoundtrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    const int flag_bits = static_cast<int>(rng.UniformInt(0, 2));
    const int levels = static_cast<int>(rng.UniformInt(1, 5));
    std::vector<int> widths(levels);
    for (int& w : widths) w = static_cast<int>(rng.UniformInt(1, 3));
    auto layout = std::make_shared<const PointSetLayout>(flag_bits, widths);
    const uint64_t key_space = 1ull << layout->total_key_bits();
    const int n = static_cast<int>(rng.UniformInt(0, 200));
    std::vector<uint64_t> keys;
    for (int i = 0; i < n; ++i) {
      uint64_t key = rng.NextUint64() % key_space;
      if (flag_bits > 0 && layout->FlagsOfKey(key) == 0) {
        key |= 1ull << (layout->total_key_bits() - flag_bits);
      }
      keys.push_back(key);
    }
    const PointSet original = PointSet::FromKeys(layout, keys);
    const BitWriter encoded = original.Encode();
    auto decoded = PointSet::Decode(layout, encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->keys(), original.keys());
    // Canonicity: re-encoding the decoded set reproduces the exact bits.
    const BitWriter reencoded = decoded->Encode();
    EXPECT_EQ(encoded.bytes(), reencoded.bytes());
    EXPECT_EQ(encoded.size_bits(), reencoded.size_bits());
  }
}

TEST_P(PointSetRoundtripTest, UnionCommutesWithEncoding) {
  Rng rng(GetParam() + 7);
  auto layout =
      std::make_shared<const PointSetLayout>(2, std::vector<int>{2, 2, 2});
  for (int iter = 0; iter < 50; ++iter) {
    auto random_set = [&](int max_n) {
      std::vector<uint64_t> keys;
      const int n = static_cast<int>(rng.UniformInt(0, max_n));
      for (int i = 0; i < n; ++i) {
        keys.push_back(rng.UniformInt(64, 255));  // nonzero flags
      }
      return PointSet::FromKeys(layout, keys);
    };
    const PointSet a = random_set(40);
    const PointSet b = random_set(40);
    // Union/intersect on the canonical form, then encode, must equal
    // decode-merge-encode of the wire forms (the paper computes the
    // primitives directly on the encoding; Sec. V-D).
    const PointSet u = PointSet::Union(a, b);
    auto da = PointSet::Decode(layout, a.Encode());
    auto db = PointSet::Decode(layout, b.Encode());
    ASSERT_TRUE(da.ok() && db.ok());
    const PointSet u2 = PointSet::Union(*da, *db);
    EXPECT_EQ(u.keys(), u2.keys());
    EXPECT_EQ(u.Encode().bytes(), u2.Encode().bytes());
    const PointSet i1 = PointSet::Intersect(a, b);
    const PointSet i2 = PointSet::Intersect(*da, *db);
    EXPECT_EQ(i1.keys(), i2.keys());
  }
}

TEST_P(PointSetRoundtripTest, EncodedSizeNeverExceedsListForm) {
  Rng rng(GetParam() + 13);
  auto layout =
      std::make_shared<const PointSetLayout>(1, std::vector<int>{2, 2, 2, 2});
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<uint64_t> keys;
    const int n = static_cast<int>(rng.UniformInt(1, 120));
    for (int i = 0; i < n; ++i) {
      keys.push_back(rng.UniformInt(256, 511));
    }
    const PointSet set = PointSet::FromKeys(layout, keys);
    // The cost-based threshold guarantees the encoding is at most the cost
    // of the root-level flat list.
    const size_t list_bits = set.size() * (1 + layout->total_key_bits()) + 1;
    EXPECT_LE(set.EncodedBits(), list_bits);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointSetRoundtripTest,
                         ::testing::Values(4, 44, 444, 4444));

TEST(PointSetStressTest, TenThousandPointsRoundtripInAWideLayout) {
  // Q2-scale layout: 1 flag bit + 33 coordinate bits.
  std::vector<int> widths = {3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3};
  auto layout = std::make_shared<const PointSetLayout>(1, widths);
  Rng rng(4242);
  std::vector<uint64_t> keys;
  keys.reserve(10000);
  const uint64_t top = 1ull << (layout->total_key_bits() - 1);
  for (int i = 0; i < 10000; ++i) {
    keys.push_back(top | (rng.NextUint64() & (top - 1)));
  }
  const PointSet set = PointSet::FromKeys(layout, keys);
  const BitWriter encoded = set.Encode();
  auto decoded = PointSet::Decode(layout, encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->keys(), set.keys());
  // Random keys carry no correlation: the cost-based threshold must still
  // keep the encoding at or below the flat list.
  EXPECT_LE(set.EncodedBits(),
            set.size() * (1 + layout->total_key_bits()) + 1);
}

TEST(PointSetStressTest, SingleDeepPathSubdividesOnlyWhileItPays) {
  // Two points differing only in their last digit share the whole path;
  // the encoder must subdivide down to where listing wins.
  auto layout = std::make_shared<const PointSetLayout>(
      1, std::vector<int>{2, 2, 2, 2, 2});
  const uint64_t base = 1ull << 10;  // flag bit set
  const PointSet set = PointSet::FromKeys(layout, {base | 0, base | 1});
  auto decoded = PointSet::Decode(layout, set.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->keys(), set.keys());
  // Both the pure list (2*(1+11)+1 = 25 bits) and any deeper form must not
  // be exceeded by the chosen encoding.
  EXPECT_LE(set.EncodedBits(), 25u);
}

TEST(PointSetDecodeTest, MalformedInputsFailCleanly) {
  auto layout = SmallLayout();
  // Truncated stream.
  BitWriter truncated;
  truncated.WriteBit(true);
  truncated.WriteBits(0b101, 3);  // suffix needs 8 bits
  EXPECT_FALSE(PointSet::Decode(layout, truncated).ok());
  // Index node with empty mask.
  BitWriter empty_mask;
  empty_mask.WriteBit(false);
  empty_mask.WriteBits(0, 4);
  EXPECT_FALSE(PointSet::Decode(layout, empty_mask).ok());
  // Trailing garbage after a valid encoding.
  PointSet set(layout);
  set.Insert(0b10000001);
  BitWriter with_garbage = set.Encode();
  with_garbage.WriteBits(0b1111, 4);
  EXPECT_FALSE(PointSet::Decode(layout, with_garbage).ok());
  // Out-of-order duplicate points in a list.
  BitWriter dup;
  dup.WriteBit(true);
  dup.WriteBits(0b10000001, 8);
  dup.WriteBit(true);
  dup.WriteBits(0b10000001, 8);
  dup.WriteBit(false);
  EXPECT_FALSE(PointSet::Decode(layout, dup).ok());
}

TEST(PointSetDecodeTest, EveryBitFlipAndTruncationIsOkOrError) {
  // Exhaustively damage a real encoding the way the channel does: every
  // single-bit flip and every truncation length. Decode must always return
  // a Status — a flipped structure bit may still parse (that is the
  // undetected-corruption case the executor tolerates), but it must never
  // abort or read out of bounds.
  Rng rng(77);
  auto layout = std::make_shared<PointSetLayout>(2, std::vector<int>{2, 2, 2});
  std::vector<uint64_t> keys;
  for (int i = 0; i < 25; ++i) keys.push_back(rng.NextUint64() & 0xFF);
  const BitWriter enc = PointSet::FromKeys(layout, std::move(keys)).Encode();
  const size_t bits = enc.size_bits();
  ASSERT_GT(bits, 0u);

  int reparsed = 0;
  for (size_t flip = 0; flip < bits; ++flip) {
    std::vector<uint8_t> bytes = enc.bytes();
    bytes[flip / 8] ^= static_cast<uint8_t>(0x80u >> (flip % 8));
    const auto decoded =
        PointSet::Decode(layout, BitWriter::FromBytes(std::move(bytes), bits));
    if (decoded.ok()) ++reparsed;
  }
  // The identity flip set is empty, so at least the all-reject and
  // some-accept outcomes are both plausible; just record the invariant ran.
  SUCCEED() << reparsed << " of " << bits << " flips still parsed";

  for (size_t keep = 0; keep < bits; ++keep) {
    std::vector<uint8_t> bytes = enc.bytes();
    bytes.resize((keep + 7) / 8);
    const auto decoded =
        PointSet::Decode(layout, BitWriter::FromBytes(std::move(bytes), keep));
    if (keep == 0) {
      EXPECT_TRUE(decoded.ok()) << "empty stream is the empty set";
    } else {
      EXPECT_FALSE(decoded.ok()) << "proper prefix of length " << keep
                                 << " parsed despite missing bits";
    }
  }
}

}  // namespace
}  // namespace sensjoin::join
