// Continuous multi-query join service: incremental execution must be
// indistinguishable from independent full executions (filters and rows),
// shared-phase groups must reproduce dedicated per-query runs, admission
// churn must keep report streams consistent, and scripted service runs
// must be deterministic across runner thread counts.

#include "sensjoin/service/join_service.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"
#include "sensjoin/testbed/service_harness.h"

namespace sensjoin::service {
namespace {

testbed::TestbedParams MediumParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 350;
  params.placement.area_width_m = 500;
  params.placement.area_height_m = 500;
  params.seed = seed;
  return params;
}

testbed::TestbedParams SmallParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 220;
  params.placement.area_width_m = 400;
  params.placement.area_height_m = 400;
  params.seed = seed;
  return params;
}

join::ProtocolConfig ServiceProtocol() {
  join::ProtocolConfig config;
  config.use_treecut = false;  // isolate the delta/sharing behavior
  return config;
}

ServiceConfig SharedConfig(bool share_phases = true) {
  ServiceConfig config;
  config.protocol = ServiceProtocol();
  config.share_phases = share_phases;
  return config;
}

/// One family, one sharing signature: every member collects the same
/// quantized temp keys; only the join-predicate threshold differs.
std::string FamilyQuery(int i) {
  return "SELECT A.hum, B.hum FROM sensors A, sensors B "
         "WHERE A.temp - B.temp > " +
         std::to_string(1.0 + 0.05 * i) + " ONCE";
}

std::vector<std::vector<double>> SortedRows(const join::JoinResult& r) {
  auto rows = r.rows;
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(ServiceTest, IncrementalExecutionMatchesSnapshotExecutions) {
  auto tb = testbed::Testbed::Create(MediumParams(3));
  ASSERT_TRUE(tb.ok());
  auto service = testbed::MakeService(**tb, SharedConfig());
  auto id = service.Register(FamilyQuery(0));
  ASSERT_TRUE(id.ok()) << id.status();
  auto q = (*tb)->ParseQuery(FamilyQuery(0));
  ASSERT_TRUE(q.ok()) << q.status();

  size_t cheap_paths = 0;
  for (uint64_t epoch = 0; epoch < 5; ++epoch) {
    auto report = service.RunEpoch();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->epoch, epoch);
    cheap_paths += report->filter_reuses + report->filter_incremental_updates;

    // Independent full execution of the same query on the same drifting
    // readings. The service's incrementally maintained state must be
    // indistinguishable: identical collected multiset, identical filter,
    // identical result rows.
    auto snapshot =
        (*tb)->MakeSensJoin(ServiceProtocol()).Execute(*q, epoch);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    auto record = service.registry().Get(*id);
    ASSERT_TRUE(record.ok());
    const join::ExecutionReport& mine = (*record)->reports.at(epoch);
    EXPECT_EQ(mine.collected_points, snapshot->collected_points);
    EXPECT_EQ(mine.filter_points, snapshot->filter_points);
    EXPECT_EQ(SortedRows(mine.result), SortedRows(snapshot->result))
        << "epoch " << epoch;
    EXPECT_EQ(mine.result.contributing_nodes,
              snapshot->result.contributing_nodes);
  }
  // Drifting readings must exercise the reuse/incremental maintenance
  // paths, not fall back to a full recompute every epoch.
  EXPECT_GT(cheap_paths, 0u);
}

TEST(ServiceTest, SixteenQueryGroupMatchesDedicatedExecutions) {
  auto shared_tb = testbed::Testbed::Create(SmallParams(7));
  auto dedicated_tb = testbed::Testbed::Create(SmallParams(7));
  ASSERT_TRUE(shared_tb.ok());
  ASSERT_TRUE(dedicated_tb.ok());

  testbed::ServiceRunParams params;
  params.epochs = 4;
  params.config = SharedConfig();
  for (int i = 0; i < 16; ++i) {
    params.initial_queries.push_back(FamilyQuery(i));
  }
  auto shared = testbed::RunService(**shared_tb, params);
  ASSERT_TRUE(shared.ok()) << shared.status();
  params.config.share_phases = false;
  auto dedicated = testbed::RunService(**dedicated_tb, params);
  ASSERT_TRUE(dedicated.ok()) << dedicated.status();

  // One group serves all sixteen queries; the dedicated baseline pays
  // sixteen phase sets on an identical deployment.
  const ServiceEpochReport& last = shared->epochs.back();
  EXPECT_EQ(last.groups, 1u);
  EXPECT_DOUBLE_EQ(last.sharing_factor, 16.0);
  EXPECT_EQ(dedicated->epochs.back().groups, 16u);

  for (const auto& [id, reports] : shared->query_reports) {
    const auto it = dedicated->query_reports.find(id);
    ASSERT_NE(it, dedicated->query_reports.end());
    ASSERT_EQ(reports.size(), it->second.size());
    for (size_t e = 0; e < reports.size(); ++e) {
      EXPECT_EQ(SortedRows(reports[e].result),
                SortedRows(it->second[e].result))
          << "query " << id << " epoch " << e;
      EXPECT_EQ(reports[e].shared_group_size, 16u);
      EXPECT_EQ(it->second[e].shared_group_size, 1u);
    }
  }

  // Sharing must actually amortize: fewer packets per epoch than the
  // dedicated baseline, every epoch.
  for (size_t e = 0; e < shared->epochs.size(); ++e) {
    EXPECT_LT(shared->epochs[e].cost.join_packets,
              dedicated->epochs[e].cost.join_packets)
        << "epoch " << e;
  }
}

TEST(ServiceTest, DifferentSignaturesFormSeparateGroups) {
  auto tb = testbed::Testbed::Create(SmallParams(17));
  ASSERT_TRUE(tb.ok());
  auto service = testbed::MakeService(**tb, SharedConfig());
  ASSERT_TRUE(service.Register(FamilyQuery(0)).ok());
  ASSERT_TRUE(service.Register(FamilyQuery(1)).ok());
  // Different join attribute => different collection signature => its own
  // group and phase set.
  ASSERT_TRUE(service
                  .Register("SELECT A.temp, B.temp FROM sensors A, sensors B "
                            "WHERE A.hum - B.hum > 0.1 ONCE")
                  .ok());
  auto report = service.RunEpoch();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->active_queries, 3u);
  EXPECT_EQ(report->groups, 2u);
  EXPECT_DOUBLE_EQ(report->sharing_factor, 1.5);
  EXPECT_EQ(service.last_group_reports().size(), 2u);
}

TEST(ServiceTest, AdmissionAndCancelChurn) {
  auto tb = testbed::Testbed::Create(SmallParams(11));
  ASSERT_TRUE(tb.ok());
  testbed::ServiceRunParams params;
  params.epochs = 5;
  params.config = SharedConfig();
  params.initial_queries = {FamilyQuery(0), FamilyQuery(1)};
  testbed::ChurnEvent join_event;
  join_event.epoch = 1;
  join_event.kind = testbed::ChurnEvent::Kind::kRegister;
  join_event.sql = FamilyQuery(2);
  params.churn.push_back(join_event);
  testbed::ChurnEvent leave_event;
  leave_event.epoch = 3;
  leave_event.kind = testbed::ChurnEvent::Kind::kCancel;
  leave_event.target = 0;  // oldest active: the first admission
  params.churn.push_back(leave_event);

  auto run = testbed::RunService(**tb, params);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run->admitted.size(), 3u);
  ASSERT_EQ(run->epochs.size(), 5u);
  const std::vector<size_t> expected_active = {2, 3, 3, 2, 2};
  for (size_t e = 0; e < expected_active.size(); ++e) {
    EXPECT_EQ(run->epochs[e].active_queries, expected_active[e])
        << "epoch " << e;
  }
  // Report streams cover exactly the epochs each query was active in.
  EXPECT_EQ(run->query_reports.at(run->admitted[0]).size(), 3u);
  EXPECT_EQ(run->query_reports.at(run->admitted[1]).size(), 5u);
  EXPECT_EQ(run->query_reports.at(run->admitted[2]).size(), 4u);
}

TEST(ServiceTest, RegistryRejectsMalformedAndUnknown) {
  auto tb = testbed::Testbed::Create(SmallParams(13));
  ASSERT_TRUE(tb.ok());
  ServiceConfig config = SharedConfig();
  config.max_queries = 2;
  auto service = testbed::MakeService(**tb, config);

  // Nothing to run yet.
  EXPECT_FALSE(service.RunEpoch().ok());
  // Malformed and non-join input is rejected with a Status, never a crash.
  EXPECT_FALSE(service.Register("SELECT FROM WHERE").ok());
  EXPECT_FALSE(service.Register("garbage ][;;").ok());
  EXPECT_FALSE(service.Register("SELECT temp FROM sensors ONCE").ok());
  EXPECT_FALSE(service.Cancel(99).ok());

  auto a = service.Register(FamilyQuery(0));
  auto b = service.Register(FamilyQuery(1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  // Admission cap counts active queries only.
  EXPECT_FALSE(service.Register(FamilyQuery(2)).ok());
  EXPECT_TRUE(service.Cancel(*a).ok());
  EXPECT_FALSE(service.Cancel(*a).ok());  // double cancel
  EXPECT_TRUE(service.Register(FamilyQuery(2)).ok());
  // Cancelled records stay queryable (their report stream survives).
  auto record = service.registry().Get(*a);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ((*record)->state, QueryState::kCancelled);
}

TEST(ServiceTest, DeterministicAcrossRunnerThreadCounts) {
  using Digest = std::vector<std::array<uint64_t, 4>>;
  const auto trial = [](const testbed::TrialContext& ctx) -> Digest {
    auto tb = testbed::Testbed::Create(SmallParams(20 + ctx.trial));
    SENSJOIN_CHECK(tb.ok());
    testbed::ServiceRunParams params;
    params.epochs = 3;
    params.config = SharedConfig();
    params.initial_queries = {FamilyQuery(0), FamilyQuery(3)};
    auto run = testbed::RunService(**tb, params);
    SENSJOIN_CHECK(run.ok()) << run.status();
    Digest digest;
    for (const ServiceEpochReport& e : run->epochs) {
      // Packet/row/topology fields only: station_cpu_s is host wall-clock
      // and legitimately varies run to run.
      digest.push_back({e.cost.join_packets, e.cost.join_bytes,
                        static_cast<uint64_t>(e.matched_rows),
                        static_cast<uint64_t>(e.changed_nodes)});
    }
    return digest;
  };
  auto sequential = testbed::ParallelRunner(1).Run(4, 99, trial);
  auto parallel = testbed::ParallelRunner(4).Run(4, 99, trial);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(*sequential, *parallel);
}

}  // namespace
}  // namespace sensjoin::service
