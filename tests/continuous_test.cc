#include "sensjoin/join/continuous.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "sensjoin/sensjoin.h"

namespace sensjoin::join {
namespace {

testbed::TestbedParams MediumParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 350;
  params.placement.area_width_m = 500;
  params.placement.area_height_m = 500;
  params.seed = seed;
  return params;
}

const char* kQuery =
    "SELECT A.hum, B.hum FROM sensors A, sensors B "
    "WHERE |A.temp - B.temp| < 0.3 "
    "AND distance(A.x, A.y, B.x, B.y) > 500 "
    "SAMPLE PERIOD 30";

ContinuousSensJoinExecutor MakeContinuous(testbed::Testbed& tb) {
  ProtocolConfig config;
  config.use_treecut = false;  // continuous mode runs without Treecut
  return ContinuousSensJoinExecutor(tb.simulator(), tb.tree(), tb.data(),
                                    tb.quantization(), config);
}

std::vector<std::vector<double>> SortedRows(const JoinResult& r) {
  auto rows = r.rows;
  std::sort(rows.begin(), rows.end());
  return rows;
}

class ContinuousSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContinuousSeedTest, EveryEpochMatchesSnapshotExecution) {
  auto tb = testbed::Testbed::Create(MediumParams(GetParam()));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok()) << q.status();

  auto continuous = MakeContinuous(**tb);
  for (uint64_t epoch = 0; epoch < 5; ++epoch) {
    auto delta_report = continuous.ExecuteEpoch(*q, epoch);
    ASSERT_TRUE(delta_report.ok()) << delta_report.status();
    auto snapshot_report = (*tb)->MakeSensJoin().Execute(*q, epoch);
    ASSERT_TRUE(snapshot_report.ok());
    EXPECT_EQ(SortedRows(delta_report->result),
              SortedRows(snapshot_report->result))
        << "epoch " << epoch;
    EXPECT_EQ(delta_report->result.contributing_nodes,
              snapshot_report->result.contributing_nodes);
  }
}

TEST_P(ContinuousSeedTest, SteadyStateCollectionIsMuchCheaper) {
  auto tb = testbed::Testbed::Create(MediumParams(GetParam() + 50));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());

  auto continuous = MakeContinuous(**tb);
  auto bootstrap = continuous.ExecuteEpoch(*q, 0);
  ASSERT_TRUE(bootstrap.ok());
  uint64_t steady_collection = 0;
  int epochs = 0;
  for (uint64_t epoch = 1; epoch <= 4; ++epoch) {
    auto r = continuous.ExecuteEpoch(*q, epoch);
    ASSERT_TRUE(r.ok());
    steady_collection += r->cost.phases.collection_packets;
    ++epochs;
    // Only a small fraction of nodes drift across a cell boundary between
    // epochs.
    EXPECT_LT(r->delta_changed_nodes, 200u);
  }
  // Deltas must undercut the bootstrap (full) collection substantially.
  EXPECT_LT(steady_collection / epochs,
            bootstrap->cost.phases.collection_packets / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContinuousSeedTest, ::testing::Values(1, 9));

TEST(ContinuousTest, LinkFailureForcesReBootstrap) {
  auto tb = testbed::Testbed::Create(MediumParams(21));
  ASSERT_TRUE(tb.ok());
  auto q = (*tb)->ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  auto continuous = MakeContinuous(**tb);
  ASSERT_TRUE(continuous.ExecuteEpoch(*q, 0).ok());

  // Break a loaded tree edge.
  const net::RoutingTree& tree = continuous.tree();
  sim::NodeId victim = sim::kInvalidNode;
  for (sim::NodeId u : tree.collection_order()) {
    if (tree.hop_count(u) >= 2 && tree.subtree_size(u) >= 5 &&
        (*tb)->simulator().radio().Neighbors(u).size() >= 3) {
      victim = u;
      break;
    }
  }
  ASSERT_NE(victim, sim::kInvalidNode);
  (*tb)->simulator().radio().FailLink(victim, tree.parent(victim));

  auto recovered = continuous.ExecuteEpoch(*q, 1);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_GE(recovered->attempts, 2);
  // The re-executed epoch is correct.
  auto snapshot = (*tb)->MakeSensJoin().Execute(*q, 1);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(recovered->result.matched_combinations,
            snapshot->result.matched_combinations);
}

}  // namespace
}  // namespace sensjoin::join
