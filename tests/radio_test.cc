#include "sensjoin/sim/radio.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/common/geometry.h"
#include "sensjoin/common/rng.h"

namespace sensjoin::sim {
namespace {

TEST(RadioTest, LineTopologyNeighbors) {
  // Nodes at x = 0, 40, 80, 120 with range 50: chain adjacency.
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}, {120, 0}};
  Radio radio(pos, 50.0);
  EXPECT_EQ(radio.Neighbors(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(radio.Neighbors(1), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(radio.Neighbors(2), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(radio.Neighbors(3), (std::vector<NodeId>{2}));
}

TEST(RadioTest, RangeBoundaryIsInclusive) {
  std::vector<Point> pos = {{0, 0}, {50, 0}, {100.001, 0}};
  Radio radio(pos, 50.0);
  EXPECT_TRUE(radio.InRange(0, 1));
  EXPECT_FALSE(radio.InRange(1, 2));  // 50.001 apart
  EXPECT_FALSE(radio.InRange(0, 0));  // never own neighbor
}

TEST(RadioTest, AdjacencyMatchesBruteForce) {
  Rng rng(17);
  std::vector<Point> pos;
  for (int i = 0; i < 300; ++i) {
    pos.push_back({rng.UniformDouble(0, 500), rng.UniformDouble(0, 500)});
  }
  const double range = 60.0;
  Radio radio(pos, range);
  for (int i = 0; i < 300; ++i) {
    std::vector<NodeId> expected;
    for (int j = 0; j < 300; ++j) {
      if (i != j && Distance(pos[i], pos[j]) <= range) expected.push_back(j);
    }
    ASSERT_EQ(radio.Neighbors(i), expected) << "node " << i;
  }
}

TEST(RadioTest, AdjacencyIsSymmetric) {
  Rng rng(23);
  std::vector<Point> pos;
  for (int i = 0; i < 200; ++i) {
    pos.push_back({rng.UniformDouble(0, 400), rng.UniformDouble(0, 400)});
  }
  Radio radio(pos, 50.0);
  for (int i = 0; i < 200; ++i) {
    for (NodeId j : radio.Neighbors(i)) {
      const auto& back = radio.Neighbors(j);
      EXPECT_TRUE(std::find(back.begin(), back.end(), i) != back.end());
    }
  }
}

TEST(RadioTest, LinkFailuresAreBidirectionalAndReversible) {
  std::vector<Point> pos = {{0, 0}, {30, 0}, {60, 0}};
  Radio radio(pos, 50.0);
  EXPECT_TRUE(radio.LinkUp(0, 1));
  radio.FailLink(0, 1);
  EXPECT_FALSE(radio.LinkUp(0, 1));
  EXPECT_FALSE(radio.LinkUp(1, 0));
  EXPECT_TRUE(radio.LinkUp(1, 2));  // other links unaffected
  EXPECT_EQ(radio.num_failed_links(), 1u);
  radio.RestoreLink(1, 0);  // restore works with swapped endpoints
  EXPECT_TRUE(radio.LinkUp(0, 1));
  EXPECT_EQ(radio.num_failed_links(), 0u);
}

TEST(RadioTest, FailedLinkNeverUpEvenInRange) {
  std::vector<Point> pos = {{0, 0}, {10, 0}};
  Radio radio(pos, 50.0);
  radio.FailLink(0, 1);
  EXPECT_TRUE(radio.InRange(0, 1));
  EXPECT_FALSE(radio.LinkUp(0, 1));
  radio.RestoreAllLinks();
  EXPECT_TRUE(radio.LinkUp(0, 1));
}

TEST(RadioTest, InvalidIdsAndSelfLinksAreIgnoredByFailAndRestore) {
  std::vector<Point> pos = {{0, 0}, {30, 0}, {60, 0}};
  Radio radio(pos, 50.0);
  radio.FailLink(-1, 0);
  radio.FailLink(0, 3);
  radio.FailLink(7, -2);
  radio.FailLink(1, 1);  // self-link
  EXPECT_EQ(radio.num_failed_links(), 0u);
  EXPECT_TRUE(radio.LinkUp(0, 1));
  // Restores on garbage are no-ops too, and don't disturb real failures.
  radio.FailLink(0, 1);
  radio.RestoreLink(-1, 0);
  radio.RestoreLink(0, 3);
  radio.RestoreLink(2, 2);
  EXPECT_EQ(radio.num_failed_links(), 1u);
  EXPECT_FALSE(radio.LinkUp(0, 1));
}

TEST(RadioTest, LossRatesDefaultOverrideAndClamp) {
  std::vector<Point> pos = {{0, 0}, {30, 0}, {60, 0}};
  Radio radio(pos, 50.0);
  EXPECT_DOUBLE_EQ(radio.LossRate(0, 1), 0.0);
  radio.set_default_loss_rate(0.1);
  EXPECT_DOUBLE_EQ(radio.LossRate(0, 1), 0.1);
  radio.SetLinkLossRate(1, 2, 0.5);
  EXPECT_DOUBLE_EQ(radio.LossRate(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(radio.LossRate(2, 1), 0.5);  // symmetric
  EXPECT_DOUBLE_EQ(radio.LossRate(0, 1), 0.1);  // others keep the default
  radio.set_default_loss_rate(3.0);  // clamped to [0, 1]
  EXPECT_DOUBLE_EQ(radio.LossRate(0, 1), 1.0);
  radio.SetLinkLossRate(0, 1, -2.0);
  EXPECT_DOUBLE_EQ(radio.LossRate(0, 1), 0.0);
  // Invalid endpoints: setters ignored, getter reports no loss.
  radio.SetLinkLossRate(-1, 5, 0.9);
  EXPECT_DOUBLE_EQ(radio.LossRate(-1, 5), 0.0);
  EXPECT_DOUBLE_EQ(radio.LossRate(1, 1), 0.0);
  radio.ClearLossRates();
  EXPECT_DOUBLE_EQ(radio.LossRate(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(radio.LossRate(0, 1), 0.0);
}

TEST(RadioTest, ConnectivityDetection) {
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}, {500, 500}};
  Radio radio(pos, 50.0);
  EXPECT_FALSE(radio.IsConnected(0));  // node 3 isolated
  std::vector<Point> connected = {{0, 0}, {40, 0}, {80, 0}};
  Radio radio2(connected, 50.0);
  EXPECT_TRUE(radio2.IsConnected(0));
  // Failing the bridge link disconnects.
  radio2.FailLink(0, 1);
  EXPECT_FALSE(radio2.IsConnected(0));
}

// --- Materialized vs on-demand mode agreement -----------------------------
//
// Above RadioOptions::materialize_threshold the radio stops building
// adjacency lists and answers neighbor queries from the spatial grid. The
// two modes must be observationally identical: same neighbor sets (same
// ascending order) and same InRange answers for every pair — the
// materialized mode's binary search and the on-demand mode's distance
// computation are different code paths over the same geometry.

std::vector<Point> RandomPositions(int n, double side, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pos;
  pos.reserve(n);
  for (int i = 0; i < n; ++i) {
    pos.push_back({rng.UniformDouble(0, side), rng.UniformDouble(0, side)});
  }
  return pos;
}

TEST(RadioTest, MaterializedAndOnDemandNeighborsAgree) {
  const std::vector<Point> pos = RandomPositions(300, 500.0, 77);
  RadioOptions always;
  always.materialize_threshold = -1;  // force adjacency lists
  RadioOptions never;
  never.materialize_threshold = 0;  // force grid-backed on-demand
  Radio mat(pos, 50.0, always);
  Radio grid(pos, 50.0, never);
  ASSERT_TRUE(mat.materialized());
  ASSERT_FALSE(grid.materialized());

  std::vector<NodeId> from_mat, from_grid;
  for (NodeId i = 0; i < mat.num_nodes(); ++i) {
    mat.Neighbors(i, from_mat);
    grid.Neighbors(i, from_grid);
    ASSERT_EQ(from_mat, from_grid) << "node " << i;
    // The scratch overload must also match the materialized reference list.
    ASSERT_EQ(from_mat, mat.Neighbors(i)) << "node " << i;
  }
}

TEST(RadioTest, MaterializedAndOnDemandInRangeAgree) {
  // Includes exact-boundary pairs (distance == range) so the binary-search
  // path and the distance path are tested on the inclusive edge too.
  std::vector<Point> pos = RandomPositions(120, 300.0, 78);
  pos.push_back({0, 0});
  pos.push_back({50, 0});  // exactly at range
  RadioOptions always;
  always.materialize_threshold = -1;
  RadioOptions never;
  never.materialize_threshold = 0;
  Radio mat(pos, 50.0, always);
  Radio grid(pos, 50.0, never);
  for (NodeId a = 0; a < mat.num_nodes(); ++a) {
    for (NodeId b = 0; b < mat.num_nodes(); ++b) {
      ASSERT_EQ(mat.InRange(a, b), grid.InRange(a, b))
          << "pair (" << a << ", " << b << ")";
    }
  }
  const NodeId x = static_cast<NodeId>(pos.size()) - 2;
  EXPECT_TRUE(mat.InRange(x, x + 1));
  EXPECT_TRUE(grid.InRange(x, x + 1));
}

TEST(RadioTest, OnDemandModeSupportsLinkFaults) {
  std::vector<Point> pos = {{0, 0}, {40, 0}, {80, 0}};
  RadioOptions never;
  never.materialize_threshold = 0;
  Radio radio(pos, 50.0, never);
  EXPECT_TRUE(radio.LinkUp(0, 1));
  radio.FailLink(0, 1);
  EXPECT_FALSE(radio.LinkUp(0, 1));
  EXPECT_TRUE(radio.InRange(0, 1));  // range ignores failures
  radio.RestoreLink(0, 1);
  EXPECT_TRUE(radio.LinkUp(0, 1));
}

}  // namespace
}  // namespace sensjoin::sim
