// Pins CalibrateFraction / ResultNodeFraction behavior across the
// hot-path rework (materialization cache shared across bisection probes,
// hoisted pair context, optional chunked contributor scan): the results
// must equal a straightforward per-probe reference recomputation, and the
// parallel scan must equal the sequential one.

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sensjoin/join/executor_context.h"
#include "sensjoin/join/result.h"
#include "sensjoin/query/expr_eval.h"
#include "sensjoin/sensjoin.h"
#include "util/calibration.h"
#include "util/workloads.h"

namespace sensjoin::bench {
namespace {

testbed::TestbedParams SmallParams(uint64_t seed) {
  testbed::TestbedParams params;
  params.placement.num_nodes = 200;
  params.placement.area_width_m = 380;
  params.placement.area_height_m = 380;
  params.seed = seed;
  return params;
}

/// Reference result-node fraction: the original unoptimized computation —
/// fresh ExecutorContext, naive full pair scan through per-pair
/// TupleContext construction, no marking shortcut, no cache.
double ReferenceFraction(testbed::Testbed& tb, const query::AnalyzedQuery& q,
                         uint64_t epoch) {
  const join::ExecutorContext ctx(tb.data(), q, epoch);
  std::vector<data::Tuple> all;
  for (int i = 0; i < ctx.num_nodes(); ++i) {
    if (ctx.info(i).has_tuple) all.push_back(ctx.info(i).tuple);
  }
  if (all.empty()) return 0.0;
  const auto per_table = ctx.PerTableCandidates(all);
  std::set<sim::NodeId> contributors;
  if (q.num_tables() == 2) {
    for (const data::Tuple* l : per_table[0]) {
      for (const data::Tuple* r : per_table[1]) {
        std::vector<const data::Tuple*> pair = {l, r};
        query::TupleContext pair_ctx(pair);
        bool match = true;
        for (const auto& p : q.join_predicates()) {
          if (!query::EvalPredicate(*p, pair_ctx)) {
            match = false;
            break;
          }
        }
        if (match) {
          contributors.insert(l->node);
          contributors.insert(r->node);
        }
      }
    }
  } else {
    const auto joined = join::ComputeExactJoin(q, per_table);
    contributors.insert(joined.contributing_nodes.begin(),
                        joined.contributing_nodes.end());
  }
  return static_cast<double>(contributors.size()) /
         static_cast<double>(all.size());
}

TEST(CalibrationPinningTest, FractionMatchesReferenceExactly) {
  auto tb = testbed::Testbed::Create(SmallParams(42));
  ASSERT_TRUE(tb.ok()) << tb.status();
  for (double threshold : {0.1, 0.3, 0.8, 2.0}) {
    const std::string sql = RatioQueryOneJoinAttr(2, threshold);
    auto q = (*tb)->ParseQuery(sql);
    ASSERT_TRUE(q.ok()) << q.status();
    const double expected = ReferenceFraction(**tb, *q, /*epoch=*/0);
    const double actual = ResultNodeFraction(**tb, *q, /*epoch=*/0);
    EXPECT_EQ(actual, expected) << sql;
  }
}

TEST(CalibrationPinningTest, ParallelScanMatchesSequential) {
  auto tb = testbed::Testbed::Create(SmallParams(7));
  ASSERT_TRUE(tb.ok()) << tb.status();
  testbed::ParallelRunner runner(4);
  for (double threshold : {0.2, 0.6, 1.5}) {
    auto q = (*tb)->ParseQuery(RatioQueryOneJoinAttr(2, threshold));
    ASSERT_TRUE(q.ok()) << q.status();
    const double seq = ResultNodeFraction(**tb, *q, 0, nullptr);
    const double par = ResultNodeFraction(**tb, *q, 0, &runner);
    EXPECT_EQ(seq, par);
  }
}

TEST(CalibrationPinningTest, CalibrationPinnedAgainstReferenceBisection) {
  auto tb = testbed::Testbed::Create(SmallParams(42));
  ASSERT_TRUE(tb.ok()) << tb.status();

  // Reference bisection: same control flow as CalibrateFraction, but each
  // probe recomputes from scratch through ReferenceFraction (no cache).
  auto make_sql = [](double t) { return RatioQueryOneJoinAttr(2, t); };
  const double target = 0.4;
  const int iterations = 12;
  double lo = 0.01, hi = 3.0;
  Calibration expected;
  double best_error = 1e9;
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    auto q = (*tb)->ParseQuery(make_sql(mid));
    ASSERT_TRUE(q.ok());
    const double fraction = ReferenceFraction(**tb, *q, 0);
    const double error = std::abs(fraction - target);
    if (error < best_error) {
      best_error = error;
      expected = Calibration{mid, fraction, make_sql(mid)};
    }
    if (best_error < 0.002) break;
    if ((fraction < target) == true) {  // fraction grows with the threshold
      lo = mid;
    } else {
      hi = mid;
    }
  }

  const Calibration actual = CalibrateFraction(
      **tb, make_sql, 0.01, 3.0, target, /*increasing=*/true, /*epoch=*/0,
      iterations);
  EXPECT_EQ(actual.param, expected.param);
  EXPECT_EQ(actual.fraction, expected.fraction);
  EXPECT_EQ(actual.sql, expected.sql);

  // And the chunked-parallel calibration is byte-identical too.
  testbed::ParallelRunner runner(4);
  const Calibration parallel = CalibrateFraction(
      **tb, make_sql, 0.01, 3.0, target, /*increasing=*/true, /*epoch=*/0,
      iterations, &runner);
  EXPECT_EQ(parallel.param, expected.param);
  EXPECT_EQ(parallel.fraction, expected.fraction);
}

}  // namespace
}  // namespace sensjoin::bench
