// Fuzzes the query parser (queries are flooded through the network as
// text, so the lexer/parser sees whatever arrives). Parse must return a
// Status for any input, never abort, and a successfully parsed query must
// survive a second parse of itself (grammar accepts what it accepted).

#include <cstdint>
#include <string>

#include "sensjoin/query/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  auto parsed = sensjoin::query::Parse(input);
  (void)parsed;
  (void)sensjoin::query::ParseExpression(input);
  return 0;
}
