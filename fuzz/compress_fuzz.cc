// Fuzzes every compress/ decoder on arbitrary bytes (they parse untrusted
// per-hop buffers) and, in the same run, checks the compressor/decompressor
// round-trip: compressing the input and decompressing it back must
// reproduce it exactly. The first byte selects the codec.

#include <cstdint>
#include <vector>

#include "sensjoin/compress/bzip2_like.h"
#include "sensjoin/compress/huffman.h"
#include "sensjoin/compress/rle.h"
#include "sensjoin/compress/zlib_like.h"

namespace {

using sensjoin::StatusOr;

void CheckRoundtrip(const StatusOr<std::vector<uint8_t>>& got,
                    const std::vector<uint8_t>& want) {
  if (!got.ok() || *got != want) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 1) return 0;
  const uint8_t codec = data[0] % 4;
  const std::vector<uint8_t> body(data + 1, data + size);
  // The bzip2-like pipeline sorts rotations, so cap its round-trip input to
  // keep fuzz throughput reasonable; decoding arbitrary bytes stays uncapped.
  const std::vector<uint8_t> small(
      body.begin(), body.begin() + std::min<size_t>(body.size(), 4096));

  switch (codec) {
    case 0:
      (void)sensjoin::compress::HuffmanDecompress(body);
      CheckRoundtrip(sensjoin::compress::HuffmanDecompress(
                         sensjoin::compress::HuffmanCompress(body)),
                     body);
      break;
    case 1:
      (void)sensjoin::compress::ZlibLikeDecompress(body);
      CheckRoundtrip(sensjoin::compress::ZlibLikeDecompress(
                         sensjoin::compress::ZlibLikeCompress(body)),
                     body);
      break;
    case 2:
      (void)sensjoin::compress::Bzip2LikeDecompress(body);
      CheckRoundtrip(sensjoin::compress::Bzip2LikeDecompress(
                         sensjoin::compress::Bzip2LikeCompress(small)),
                     small);
      break;
    case 3:
      (void)sensjoin::compress::RleDecode(body);
      CheckRoundtrip(
          sensjoin::compress::RleDecode(sensjoin::compress::RleEncode(body)),
          body);
      break;
  }
  return 0;
}
