// Generates seed corpora for the fuzz targets into <out-dir>/<target>/.
// Seeds are valid inputs in each target's framing (layout prefix bytes +
// wire encoding, codec selector + payload, query text), so mutation starts
// from deep program states instead of having to rediscover the headers.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sensjoin/common/rng.h"
#include "sensjoin/compress/bzip2_like.h"
#include "sensjoin/compress/huffman.h"
#include "sensjoin/compress/rle.h"
#include "sensjoin/compress/zlib_like.h"
#include "sensjoin/join/point_set.h"
#include "sensjoin/net/tree_maintenance.h"

namespace {

using sensjoin::BitWriter;
using sensjoin::Rng;
using sensjoin::join::PointSet;
using sensjoin::join::PointSetLayout;

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               const std::vector<uint8_t>& bytes) {
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Frames an encoding the way point_set_decode_fuzz (and, reusing the same
/// two prefix bytes, encoded_ops_fuzz) derives its layout: byte 0 packs the
/// flag bits and the trailing-bit shave, byte 1 the level count and width.
std::vector<uint8_t> FrameEncoding(int flag_bits, int num_levels,
                                   int level_width, const BitWriter& enc) {
  const int shave = static_cast<int>(enc.size_bytes() * 8 - enc.size_bits());
  std::vector<uint8_t> bytes;
  bytes.push_back(static_cast<uint8_t>((shave << 5) | flag_bits));
  bytes.push_back(
      static_cast<uint8_t>(((level_width - 1) << 4) | (num_levels - 1)));
  bytes.insert(bytes.end(), enc.bytes().begin(), enc.bytes().end());
  return bytes;
}

PointSet RandomSet(const std::shared_ptr<const PointSetLayout>& layout,
                   Rng* rng, int points) {
  std::vector<uint64_t> keys;
  const uint64_t max_key =
      layout->total_key_bits() >= 64 ? ~0ull
                                     : (1ull << layout->total_key_bits()) - 1;
  for (int i = 0; i < points; ++i) {
    keys.push_back(rng->NextUint64() & max_key);
  }
  return PointSet::FromKeys(layout, std::move(keys));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <out-dir>\n", argv[0]);
    return 1;
  }
  const std::filesystem::path root = argv[1];
  Rng rng(0xC0FFEE);

  // --- point_set_decode_fuzz & encoded_ops_fuzz ---------------------------
  for (const char* target : {"point_set_decode_fuzz", "encoded_ops_fuzz"}) {
    const std::filesystem::path dir = root / target;
    std::filesystem::create_directories(dir);
    int n = 0;
    for (int flag_bits : {0, 2}) {
      for (int num_levels : {2, 4, 6}) {
        const int level_width = 2;
        const auto layout = std::make_shared<PointSetLayout>(
            flag_bits, std::vector<int>(num_levels, level_width));
        for (int points : {1, 5, 40}) {
          const PointSet set = RandomSet(layout, &rng, points);
          WriteSeed(dir, "seed" + std::to_string(n++),
                    FrameEncoding(flag_bits, num_levels, level_width,
                                  set.Encode()));
        }
      }
    }
  }

  // --- compress_fuzz ------------------------------------------------------
  {
    const std::filesystem::path dir = root / "compress_fuzz";
    std::filesystem::create_directories(dir);
    const std::vector<uint8_t> text = [] {
      const std::string s =
          "sensor 17 reading 23.5C 23.5C 23.5C 23.5C joins are general "
          "purpose aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
      return std::vector<uint8_t>(s.begin(), s.end());
    }();
    int n = 0;
    for (uint8_t codec = 0; codec < 4; ++codec) {
      // Plain payload: exercises the compress->decompress round-trip path.
      std::vector<uint8_t> plain{codec};
      plain.insert(plain.end(), text.begin(), text.end());
      WriteSeed(dir, "seed" + std::to_string(n++), plain);
      // Compressed payload: a valid input to the decoder under mutation.
      std::vector<uint8_t> compressed;
      switch (codec) {
        case 0: compressed = sensjoin::compress::HuffmanCompress(text); break;
        case 1: compressed = sensjoin::compress::ZlibLikeCompress(text); break;
        case 2: compressed = sensjoin::compress::Bzip2LikeCompress(text); break;
        case 3: compressed = sensjoin::compress::RleEncode(text); break;
      }
      std::vector<uint8_t> framed{codec};
      framed.insert(framed.end(), compressed.begin(), compressed.end());
      WriteSeed(dir, "seed" + std::to_string(n++), framed);
    }
  }

  // --- repair_beacon_fuzz -------------------------------------------------
  {
    const std::filesystem::path dir = root / "repair_beacon_fuzz";
    std::filesystem::create_directories(dir);
    int n = 0;
    for (uint8_t selector : {1, 2}) {  // num_nodes = 100, 200; no shave
      for (const sensjoin::net::RepairRequest& req :
           {sensjoin::net::RepairRequest{5, 17, 3, 0},
            sensjoin::net::RepairRequest{99, 0, -1, 1},
            sensjoin::net::RepairRequest{42, 41, 12, 2}}) {
        const BitWriter wire = sensjoin::net::EncodeRepairRequest(req);
        std::vector<uint8_t> framed{selector};
        framed.insert(framed.end(), wire.bytes().begin(), wire.bytes().end());
        WriteSeed(dir, "seed" + std::to_string(n++), framed);
      }
    }
  }

  // --- sequence_tag_fuzz --------------------------------------------------
  {
    const std::filesystem::path dir = root / "sequence_tag_fuzz";
    std::filesystem::create_directories(dir);
    int n = 0;
    // Op-stream seeds in the fuzzer's framing: window byte, wire-bytes
    // byte, then op codes (op % 5: 0 attempt-bump, 1 stamp, 2 retract,
    // 3 deliver-stamped, 4 forge). Each seed reaches a distinct verdict.
    const std::vector<std::vector<uint8_t>> seeds = {
        // stamp two on one link, deliver both in order
        {4, 0, 1, 1, 2, 7, 1, 1, 2, 9, 3, 0, 3, 1},
        // stamp two, deliver the later first (reordered), then replay both
        {4, 0, 1, 1, 2, 7, 1, 1, 2, 9, 3, 1, 3, 0, 3, 1, 3, 0},
        // stamp, bump attempt, deliver the old stamp (stale via forge path)
        {4, 0, 1, 1, 2, 7, 0, 4, 1, 2, 3},
        // tiny window: stamp enough to evict, then deliver an evictee
        {1, 0, 1, 1, 2, 0, 1, 1, 2, 1, 1, 1, 2, 2, 1, 1, 2, 3, 3, 0},
        // retract then deliver (phantom on a link that stamped later seqs)
        {4, 0, 1, 1, 2, 7, 2, 0, 3, 0},
        // forged tags: current attempt on a virgin link, wrong receiver
        {4, 1, 4, 1, 2, 1, 5, 4, 2, 3, 3, 5},
    };
    for (const auto& s : seeds) {
      WriteSeed(dir, "seed" + std::to_string(n++), s);
    }
  }

  // --- query_parse_fuzz ---------------------------------------------------
  {
    const std::filesystem::path dir = root / "query_parse_fuzz";
    std::filesystem::create_directories(dir);
    const char* queries[] = {
        "SELECT * FROM sensors ONCE",
        "SELECT s.temp, t.temp FROM sensors s, sensors t "
        "WHERE abs(s.temp - t.temp) < 2 AND s.id < t.id SAMPLE PERIOD 30",
        "SELECT MAX(temp) FROM sensors WHERE distance(x, y, 10, 10) < 5 "
        "SAMPLE PERIOD 60",
        "SELECT COUNT(id) FROM sensors WHERE sqrt(temp) > 3 OR NOT (hum < "
        "0.5) ONCE",
    };
    int n = 0;
    for (const char* q : queries) {
      const std::string s(q);
      WriteSeed(dir, "seed" + std::to_string(n++),
                std::vector<uint8_t>(s.begin(), s.end()));
    }
  }

  // --- service_admission_fuzz ---------------------------------------------
  {
    const std::filesystem::path dir = root / "service_admission_fuzz";
    std::filesystem::create_directories(dir);
    // Framing: capacity byte, op stream (op % 4: 0 register, 1 cancel,
    // 2 lookup, 3 list-invariants), then NUL-separated query texts the
    // register ops consume round-robin.
    const char* queries[] = {
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > 1.0 ONCE",
        "SELECT s.temp, t.temp FROM sensors s, sensors t "
        "WHERE abs(s.temp - t.temp) < 2 SAMPLE PERIOD 30",
        "SELECT temp FROM sensors ONCE",  // single table: rejected
        "SELECT FROM WHERE",              // malformed: rejected
    };
    int n = 0;
    for (uint8_t capacity : {1, 4}) {
      // register x4, list, cancel the first id, lookup, register again
      std::vector<uint8_t> seed = {capacity, 0, 0, 0, 0, 3, 5, 6, 0};
      for (const char* q : queries) {
        seed.insert(seed.end(), q, q + std::strlen(q));
        seed.push_back(0);
      }
      WriteSeed(dir, "seed" + std::to_string(n++), seed);
    }
  }

  std::printf("wrote seed corpora under %s\n", root.string().c_str());
  return 0;
}
