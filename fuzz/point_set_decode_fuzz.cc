// Fuzzes PointSet::Decode, the receiver-side parser of the Fig. 9 quadtree
// wire format — exactly the bytes a node reassembles from (possibly
// corrupted) fragments. The first two input bytes choose a layout so the
// grammar parameters vary too; the rest is the candidate encoding. Decode
// must never abort, and any accepted input must round-trip through the
// canonical encoder.

#include <cstdint>
#include <memory>
#include <vector>

#include "sensjoin/join/point_set.h"

using sensjoin::join::PointSet;
using sensjoin::join::PointSetLayout;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 3) return 0;
  const int flag_bits = data[0] % 4;                     // 0..3 relations
  const int num_levels = 1 + data[1] % 8;                // 1..8 z levels
  const int level_width = 1 + (data[1] >> 4) % 3;        // 1..3 bits each
  const auto layout = std::make_shared<PointSetLayout>(
      flag_bits, std::vector<int>(num_levels, level_width));

  const uint8_t* body = data + 2;
  const size_t body_bytes = size - 2;
  // Shave 0..7 trailing bits so unaligned sizes are exercised as well.
  const size_t size_bits = body_bytes * 8 - (data[0] >> 5);

  auto decoded = PointSet::Decode(layout, body, size_bits);
  if (!decoded.ok()) return 0;

  // Accepted input: the canonical re-encoding must parse back to the same
  // set (the encoding of a given key set is unique).
  auto again = PointSet::Decode(layout, decoded->Encode());
  if (!again.ok() || !(*again == *decoded)) __builtin_trap();
  return 0;
}
