// Driver for fuzz targets when libFuzzer is unavailable (this repo's
// default toolchain is gcc, which has no -fsanitize=fuzzer). It accepts the
// subset of the libFuzzer command line the CI job uses — corpus files or
// directories plus -max_total_time=, -runs= and -seed= — replays every
// corpus input once, then feeds the target deterministic mutations (bit
// flips, byte edits, truncations, insertions and cross-corpus splices)
// until the time or run budget is exhausted. With clang available, CMake
// links the same target files against real libFuzzer instead and this
// driver is not built.

#include <csignal>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

constexpr size_t kMaxInputBytes = 64 * 1024;

// The input currently being executed, dumped to ./crash-<pid> if the target
// traps so the failure can be replayed (pass the file as a corpus operand).
std::vector<uint8_t> g_current;

void DumpCurrentInput(int sig) {
  char name[64];
  std::snprintf(name, sizeof(name), "crash-%d", static_cast<int>(getpid()));
  std::FILE* f = std::fopen(name, "wb");
  if (f != nullptr) {
    std::fwrite(g_current.data(), 1, g_current.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "crashing input (%zu bytes) written to %s\n",
                 g_current.size(), name);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

int RunOne(const std::vector<uint8_t>& input) {
  g_current = input;
  return LLVMFuzzerTestOneInput(input.data(), input.size());
}

// Self-contained xorshift so the mutation stream does not depend on the
// library under test.
struct XorShift {
  uint64_t s;
  uint64_t Next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }
};

std::vector<uint8_t> ReadFile(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void Mutate(std::vector<uint8_t>* input, XorShift* rng,
            const std::vector<std::vector<uint8_t>>& corpus) {
  const int edits = 1 + static_cast<int>(rng->Below(4));
  for (int e = 0; e < edits; ++e) {
    switch (rng->Below(6)) {
      case 0:  // bit flip
        if (!input->empty()) {
          (*input)[rng->Below(input->size())] ^=
              static_cast<uint8_t>(1u << rng->Below(8));
        }
        break;
      case 1:  // random byte
        if (!input->empty()) {
          (*input)[rng->Below(input->size())] =
              static_cast<uint8_t>(rng->Next());
        }
        break;
      case 2:  // insert a byte
        if (input->size() < kMaxInputBytes) {
          input->insert(input->begin() + rng->Below(input->size() + 1),
                        static_cast<uint8_t>(rng->Next()));
        }
        break;
      case 3:  // erase a byte
        if (!input->empty()) {
          input->erase(input->begin() + rng->Below(input->size()));
        }
        break;
      case 4:  // truncate the tail
        if (!input->empty()) input->resize(rng->Below(input->size() + 1));
        break;
      case 5:  // splice a slice of another corpus input onto the tail
        if (!corpus.empty()) {
          const std::vector<uint8_t>& other = corpus[rng->Below(corpus.size())];
          if (!other.empty()) {
            const size_t from = rng->Below(other.size());
            size_t take = rng->Below(other.size() - from) + 1;
            take = std::min(take, kMaxInputBytes - std::min(kMaxInputBytes,
                                                            input->size()));
            input->insert(input->end(), other.begin() + from,
                          other.begin() + from + take);
          }
        }
        break;
    }
  }
  if (input->size() > kMaxInputBytes) input->resize(kMaxInputBytes);
}

}  // namespace

int main(int argc, char** argv) {
  double max_total_time = 0.0;
  long long max_runs = -1;
  uint64_t seed = 0x5EED5;
  std::vector<std::vector<uint8_t>> corpus;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::stod(arg.substr(16));
    } else if (arg.rfind("-runs=", 0) == 0) {
      max_runs = std::stoll(arg.substr(6));
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::stoull(arg.substr(6));
    } else if (arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "ignoring unsupported flag %s\n", arg.c_str());
    } else {
      std::error_code ec;
      if (std::filesystem::is_directory(arg, ec)) {
        for (const auto& entry : std::filesystem::directory_iterator(arg)) {
          if (entry.is_regular_file()) corpus.push_back(ReadFile(entry.path()));
        }
      } else if (std::filesystem::is_regular_file(arg, ec)) {
        corpus.push_back(ReadFile(arg));
      } else {
        std::fprintf(stderr, "no such corpus input: %s\n", arg.c_str());
      }
    }
  }
  if (max_total_time <= 0.0 && max_runs < 0) max_runs = 100000;

  for (int sig : {SIGILL, SIGABRT, SIGSEGV, SIGFPE, SIGBUS}) {
    std::signal(sig, DumpCurrentInput);
  }

  long long runs = 0;
  for (const std::vector<uint8_t>& input : corpus) {
    RunOne(input);
    ++runs;
  }

  XorShift rng{seed ? seed : 1};
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  while ((max_runs < 0 || runs < max_runs) &&
         (max_total_time <= 0.0 || elapsed() < max_total_time)) {
    std::vector<uint8_t> input =
        corpus.empty() ? std::vector<uint8_t>{}
                       : corpus[rng.Below(corpus.size())];
    Mutate(&input, &rng, corpus);
    RunOne(input);
    ++runs;
  }
  std::printf("standalone fuzz driver: %lld runs in %.1fs, no crashes\n",
              runs, elapsed());
  return 0;
}
