// Fuzzes DecodeRepairRequest, the receiver-side parser of the tree-repair
// beacon (net/tree_maintenance.h) — exactly the bytes a candidate parent
// hears on the broadcast channel, possibly corrupted. Byte 0 picks the
// field size the range checks run against and a trailing-bit shave; the
// rest is the candidate wire frame. Decode must never abort, and any
// accepted frame must round-trip through the canonical encoder.

#include <cstdint>
#include <cstring>

#include "sensjoin/net/tree_maintenance.h"

using sensjoin::BitWriter;
using sensjoin::net::DecodeRepairRequest;
using sensjoin::net::EncodeRepairRequest;
using sensjoin::net::RepairRequest;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2) return 0;
  const int num_nodes = (data[0] % 4) * 100;  // 0 disables the range checks
  const size_t shave = data[0] >> 5;          // 0..7 trailing bits

  const uint8_t* body = data + 1;
  const size_t body_bits = (size - 1) * 8;
  if (body_bits < shave) return 0;

  RepairRequest decoded;
  if (!DecodeRepairRequest(body, body_bits - shave, num_nodes, &decoded)
           .ok()) {
    return 0;
  }

  // Accepted frame: canonical re-encoding must parse back to the same
  // request under the same field size.
  const BitWriter wire = EncodeRepairRequest(decoded);
  RepairRequest again;
  if (!DecodeRepairRequest(wire.bytes().data(), wire.size_bits(), num_nodes,
                           &again)
           .ok()) {
    __builtin_trap();
  }
  if (again.orphan != decoded.orphan ||
      again.dead_parent != decoded.dead_parent ||
      again.old_hops != decoded.old_hops || again.round != decoded.round) {
    __builtin_trap();
  }
  return 0;
}
