// Fuzzes the continuous-service admission layer. Queries arrive at the
// base station as text, so QueryRegistry must turn arbitrary bytes into a
// Status, never an abort, across its whole lifecycle: register, cancel,
// lookup, active-set listing.
//
// Input framing: byte 0 caps the registry (1..8 active queries), then an
// op stream. Each op byte selects register / cancel / lookup / list; a
// register consumes NUL-terminated query text from the tail of the input
// (so the mutator freely splices SQL fragments), cancels and lookups
// target ids derived from the op stream (both live and bogus ids).

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sensjoin/data/schema.h"
#include "sensjoin/join/protocol.h"
#include "sensjoin/service/query_registry.h"

namespace {

sensjoin::data::Schema FuzzSchema() {
  return sensjoin::data::Schema({{"temp", 2},
                                 {"hum", 2},
                                 {"pres", 2},
                                 {"light", 2},
                                 {"x", 2},
                                 {"y", 2}});
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2) return 0;
  const size_t max_queries = static_cast<size_t>(data[0] % 8) + 1;
  sensjoin::service::QueryRegistry registry(FuzzSchema(), max_queries);
  const sensjoin::join::ProtocolConfig protocol;

  // Query texts: the NUL-separated tail of the input, in order.
  std::vector<std::string> texts;
  {
    const char* tail = reinterpret_cast<const char*>(data + 1);
    size_t remaining = size - 1;
    while (remaining > 0 && texts.size() < 16) {
      const size_t len = ::strnlen(tail, remaining);
      texts.emplace_back(tail, len);
      const size_t consumed = len < remaining ? len + 1 : remaining;
      tail += consumed;
      remaining -= consumed;
    }
  }

  std::vector<sensjoin::service::QueryId> ids;
  size_t next_text = 0;
  uint64_t epoch = 0;
  for (size_t i = 1; i < size && i < 64; ++i, ++epoch) {
    const uint8_t op = data[i];
    switch (op % 4) {
      case 0: {  // register
        const std::string& sql =
            texts.empty() ? std::string()
                          : texts[next_text++ % texts.size()];
        auto id = registry.Register(sql, protocol, epoch);
        if (id.ok()) ids.push_back(*id);
        break;
      }
      case 1: {  // cancel: live ids and bogus ones
        const sensjoin::service::QueryId target =
            (op & 4) && !ids.empty()
                ? ids[op / 8 % ids.size()]
                : static_cast<sensjoin::service::QueryId>(op);
        (void)registry.Cancel(target, epoch);
        break;
      }
      case 2: {  // lookup
        auto record = registry.Get(
            static_cast<sensjoin::service::QueryId>(op / 4));
        if (record.ok()) (void)(*record)->signature.size();
        break;
      }
      default: {  // list + invariants
        const auto active = registry.ActiveIds();
        if (active.size() != registry.active_count()) __builtin_trap();
        if (active.size() > max_queries) __builtin_trap();
        break;
      }
    }
  }
  return 0;
}
