// Fuzzes the exactly-once DeliveryGuard with an arbitrary operation stream:
// attempt bumps, stamps, retracts and deliveries — including forged tags
// the stamping side never issued (arbitrary attempt ids and sequence
// numbers), replays of real stamps into wrong receivers, and pathological
// window sizes. The guard must never crash, hang or mis-count: verdict
// counters stay consistent with the verdicts returned, and a forged
// current-attempt tag must classify as phantom or duplicate, never as a
// deliverable first arrival of something that was stamped.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sensjoin/join/delivery_guard.h"
#include "sensjoin/sim/packet.h"

namespace {

using sensjoin::join::DeliveryGuard;
using sensjoin::join::DeliveryVerdict;

/// Byte-stream reader; returns 0 past the end so every input terminates.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  uint8_t Next() { return pos < size ? data[pos++] : 0; }
  bool Done() const { return pos >= size; }
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2) return 0;
  Reader in{data, size};

  // Window size from the first byte, including the degenerate 0 (clamped
  // to 1 inside the guard) and tiny windows that force evictions.
  DeliveryGuard guard(in.Next() % 8, /*tag_wire_bytes=*/in.Next() % 3);
  guard.BeginAttempt(0);

  constexpr int kNodes = 4;
  std::vector<sensjoin::sim::Message> stamped;
  uint64_t expected_duplicates = 0;
  uint64_t expected_stale = 0;
  uint64_t expected_reordered = 0;
  uint64_t expected_phantoms = 0;

  while (!in.Done()) {
    const uint8_t op = in.Next();
    switch (op % 5) {
      case 0: {  // new attempt: everything stamped so far becomes stale
        guard.BeginAttempt(guard.attempt_id() + 1 + (op >> 4));
        stamped.clear();
        break;
      }
      case 1: {  // stamp a fresh message on a small link space
        sensjoin::sim::Message msg;
        msg.src = in.Next() % kNodes;
        msg.dst = in.Next() % kNodes;
        msg.payload_bytes = in.Next();
        guard.Stamp(msg);
        if (stamped.size() < 256) stamped.push_back(msg);
        break;
      }
      case 2: {  // retract a previously stamped message (maybe twice)
        if (!stamped.empty()) {
          guard.Retract(stamped[in.Next() % stamped.size()]);
        }
        break;
      }
      case 3: {  // deliver a previously stamped message, maybe repeatedly
        if (stamped.empty()) break;
        const sensjoin::sim::Message& msg =
            stamped[in.Next() % stamped.size()];
        const DeliveryVerdict verdict = guard.Classify(msg.dst, msg);
        switch (verdict) {
          case DeliveryVerdict::kDuplicate:
            ++expected_duplicates;
            break;
          case DeliveryVerdict::kStale:
            ++expected_stale;
            break;
          case DeliveryVerdict::kReordered:
            ++expected_reordered;
            break;
          case DeliveryVerdict::kPhantom:
            // A stamped message can only go phantom if it was retracted
            // and its link issued no later sequence — acceptable here; the
            // executors retract only on permanent failure, where no
            // delivery can follow.
            ++expected_phantoms;
            break;
          case DeliveryVerdict::kUntagged:
            // Real stamps are never untagged.
            __builtin_trap();
          case DeliveryVerdict::kFirstDelivery:
            break;
        }
        break;
      }
      case 4: {  // forge a tag the stamping side never issued
        sensjoin::sim::Message msg;
        msg.src = in.Next() % kNodes;
        msg.dst = in.Next() % kNodes;
        const uint8_t forge = in.Next();
        msg.tag.attempt_id =
            (forge & 1) ? guard.attempt_id() : static_cast<uint32_t>(forge);
        msg.tag.seq = static_cast<uint32_t>(in.Next()) |
                      (static_cast<uint32_t>(forge & 0xF0) << 8);
        const sensjoin::sim::NodeId receiver =
            (forge & 2) ? msg.dst : in.Next() % kNodes;
        // A forged tag may collide with a genuinely stamped sequence —
        // indistinguishable from a real delivery by design — so any
        // verdict is acceptable here; the guard just must not crash.
        const DeliveryVerdict verdict = guard.Classify(receiver, msg);
        switch (verdict) {
          case DeliveryVerdict::kDuplicate:
            ++expected_duplicates;
            break;
          case DeliveryVerdict::kStale:
            ++expected_stale;
            break;
          case DeliveryVerdict::kReordered:
            ++expected_reordered;
            break;
          case DeliveryVerdict::kPhantom:
            ++expected_phantoms;
            break;
          default:
            break;
        }
        break;
      }
    }
  }

  // Counter consistency: the guard's cumulative counters must equal the
  // verdicts it returned.
  if (guard.duplicate_deliveries() != expected_duplicates ||
      guard.stale_drops() != expected_stale ||
      guard.reordered_deliveries() != expected_reordered ||
      guard.phantom_deliveries() != expected_phantoms) {
    __builtin_trap();
  }
  return 0;
}
