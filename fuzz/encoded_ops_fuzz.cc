// Fuzzes the streaming operations that run directly on the quadtree wire
// format: EncodedPointStream, ContainsEncoded and the Union/Intersect
// co-traversals. These are the routines a memory-constrained node runs on a
// structure it just received, so they must survive arbitrary bytes. The
// input is split into two candidate encodings to drive the two-operand
// merges.

#include <cstdint>
#include <memory>
#include <vector>

#include "sensjoin/common/bit_stream.h"
#include "sensjoin/join/encoded_ops.h"
#include "sensjoin/join/point_set.h"

using sensjoin::BitWriter;
using sensjoin::join::EncodedPointStream;
using sensjoin::join::PointSet;
using sensjoin::join::PointSetLayout;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 4) return 0;
  const int flag_bits = data[0] % 4;
  const int num_levels = 1 + data[1] % 6;
  const int level_width = 1 + (data[1] >> 4) % 3;
  const auto layout = std::make_shared<PointSetLayout>(
      flag_bits, std::vector<int>(num_levels, level_width));

  const uint8_t* body = data + 2;
  const size_t body_bytes = size - 2;
  const size_t split = body_bytes / 2;
  const BitWriter a = BitWriter::FromBytes(
      std::vector<uint8_t>(body, body + split), split * 8);
  const BitWriter b = BitWriter::FromBytes(
      std::vector<uint8_t>(body + split, body + body_bytes),
      (body_bytes - split) * 8);

  // Streaming decode of arbitrary bytes must terminate with a status, and
  // on success agree with the batch decoder.
  EncodedPointStream stream(layout.get(), &a);
  std::vector<uint64_t> streamed;
  while (auto key = stream.Next()) streamed.push_back(*key);
  auto batch = PointSet::Decode(layout, a);
  if (stream.status().ok() != batch.ok()) __builtin_trap();
  if (batch.ok() && streamed != batch->keys()) __builtin_trap();

  const uint64_t probe =
      (static_cast<uint64_t>(data[2]) << 8 | data[3]) &
      ((layout->total_key_bits() >= 64)
           ? ~0ull
           : ((1ull << layout->total_key_bits()) - 1));
  (void)sensjoin::join::ContainsEncoded(*layout, a, probe);

  auto u = sensjoin::join::UnionEncoded(*layout, a, b);
  auto i = sensjoin::join::IntersectEncoded(*layout, a, b);
  // When both operands are valid encodings, the streaming merges must agree
  // with the set operations on the decoded forms.
  auto db = PointSet::Decode(layout, b);
  if (batch.ok() && db.ok()) {
    if (!u.ok() || !i.ok()) __builtin_trap();
    const BitWriter want_u = PointSet::Union(*batch, *db).Encode();
    const BitWriter want_i = PointSet::Intersect(*batch, *db).Encode();
    if (u->bytes() != want_u.bytes() || u->size_bits() != want_u.size_bits() ||
        i->bytes() != want_i.bytes() || i->size_bits() != want_i.size_bits()) {
      __builtin_trap();
    }
  }
  return 0;
}
