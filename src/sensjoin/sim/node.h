#ifndef SENSJOIN_SIM_NODE_H_
#define SENSJOIN_SIM_NODE_H_

#include <array>
#include <cstdint>

#include "sensjoin/sim/packet.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::sim {

/// Per-node communication counters. `packets_*` count link-layer
/// transmissions/receptions (the paper's metric); bytes count whole frames
/// (header + payload); energy follows the EnergyModel.
struct NodeStats {
  uint64_t packets_sent = 0;
  uint64_t packets_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  double energy_mj = 0.0;

  /// ARQ bookkeeping. Retransmitted data fragments are included in
  /// `packets_sent` (they are real transmissions) and itemized here;
  /// acknowledgements are header-only frames kept out of `packets_sent`
  /// so the paper's packet metric stays comparable, but their energy is
  /// charged.
  uint64_t packets_retransmitted = 0;
  uint64_t ack_packets_sent = 0;

  /// Fragments that arrived with a damaged payload (whether or not the CRC
  /// trailer caught it). Included in `packets_received`: the radio listened
  /// to the whole frame either way.
  uint64_t corrupted_packets_received = 0;

  /// Fragments this node heard more than once: ARQ retransmissions of an
  /// already-received fragment (the ack was lost) and the fragments of
  /// duplicated logical deliveries (FaultPlan duplication). Included in
  /// `packets_received` — the radio paid for them either way — and
  /// itemized here.
  uint64_t duplicate_packets_received = 0;

  /// Fragments re-heard through cross-attempt replay (in-flight messages of
  /// an aborted attempt re-delivered during the next one). Included in
  /// `packets_received` and itemized here.
  uint64_t replayed_packets_received = 0;

  /// Transmissions broken down by message kind, for per-phase accounting.
  std::array<uint64_t, static_cast<size_t>(MessageKind::kNumKinds)>
      packets_sent_by_kind{};

  void Reset() { *this = NodeStats{}; }
};

// Network-level per-node state (liveness, stats) is stored
// struct-of-arrays inside the Simulator — see Simulator::alive() /
// Simulator::stats(). Sensor readings live in the data layer.

}  // namespace sensjoin::sim

#endif  // SENSJOIN_SIM_NODE_H_
