#ifndef SENSJOIN_SIM_SIMULATOR_H_
#define SENSJOIN_SIM_SIMULATOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sensjoin/common/bit_stream.h"
#include "sensjoin/common/rng.h"
#include "sensjoin/sim/arena.h"
#include "sensjoin/sim/energy_model.h"
#include "sensjoin/sim/event_queue.h"
#include "sensjoin/sim/fault_model.h"
#include "sensjoin/sim/node.h"
#include "sensjoin/sim/packet.h"
#include "sensjoin/sim/radio.h"
#include "sensjoin/sim/sim_config.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::obs {
class Tracer;
}  // namespace sensjoin::obs

namespace sensjoin::sim {

class ParallelEngine;

/// The ordered side-effect log of one captured turn (windowed engine). While
/// a turn runs under BeginTurnCapture, every simulator effect — counter and
/// per-node-stat additions, tracer records, delivery scheduling, deferred
/// closures — is appended here instead of applied, and
/// Simulator::CommitTurnEffects replays the log later on the coordinating
/// thread. Because logs are committed in sequential turn order and each log
/// preserves the turn's program order, the committed effect sequence —
/// including floating-point accumulation order and event-queue sequence
/// numbers — is exactly what sequential execution would have produced.
class TurnEffects {
 public:
  TurnEffects() = default;
  TurnEffects(TurnEffects&&) = default;
  TurnEffects& operator=(TurnEffects&&) = default;

  /// Drops all ops, retaining capacity for reuse across windows.
  void Clear() { ops_.clear(); }
  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }

 private:
  friend class Simulator;

  struct Op {
    enum class Kind : uint8_t {
      kAddU64,             ///< *u64_target += u64
      kAddF64,             ///< *f64_target += f64
      kTrace,              ///< tracer_->Record(...) (POD args below)
      kObsMessage,         ///< tracer_->metrics().ObserveMessage
      kObsHopLatency,      ///< tracer_->metrics().ObserveHopLatency
      kObsRetransmits,     ///< tracer_->metrics().ObserveRetransmits
      kScheduleUnicast,    ///< ScheduleDelivery(msg, delay)
      kScheduleBroadcast,  ///< schedule broadcast reception at `node`
      kCall,               ///< run `call` (ParallelEngine::Defer)
    };

    Kind kind = Kind::kAddU64;
    // kAddU64 / kAddF64 (address-based: targets are stable Simulator
    // members or per-node stats slots).
    uint64_t* u64_target = nullptr;
    double* f64_target = nullptr;
    uint64_t u64 = 0;
    double f64 = 0.0;
    // kTrace / kObs* — obs::EventKind and MessageKind carried as integers
    // so this header needs no obs dependency.
    uint16_t trace_kind = 0;
    uint16_t msg_kind = 0;
    SimTime time = 0;
    NodeId node = kInvalidNode;
    NodeId peer = kInvalidNode;
    uint32_t count = 0;
    uint32_t detail = 0;
    // kScheduleUnicast / kScheduleBroadcast
    SimTime delay = 0;
    Message msg;
    std::shared_ptr<const Message> shared;
    // kCall
    std::function<void()> call;
  };

  Op& Push(Op::Kind kind) {
    Op& op = ops_.emplace_back();
    op.kind = kind;
    return op;
  }

  std::vector<Op> ops_;
};

/// One transmission event, as seen by an attached trace sink. `dst` is
/// kInvalidNode for local broadcasts; `delivered` is false when the
/// unicast destination was dead or the link down.
struct TraceRecord {
  SimTime time = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  MessageKind kind = MessageKind::kAppData;
  int fragments = 0;
  size_t payload_bytes = 0;
  bool broadcast = false;
  bool delivered = false;
  int retransmissions = 0;  ///< ARQ data-fragment retransmissions (unicast)
  int corrupted_fragments = 0;  ///< fragments damaged in flight (any attempt)
};

/// The discrete-event WSN simulator tying together the event queue, the
/// radio medium, per-node accounting and the energy model. Protocol layers
/// exchange logical Messages; the simulator fragments them into link-layer
/// packets for cost accounting (the paper's metric is the number of such
/// packet transmissions at 48-byte max packet size).
class Simulator {
 public:
  /// Called when a node receives a complete logical message.
  using ReceiveHandler = std::function<void(NodeId receiver, const Message&)>;

  /// Called synchronously for every transmission (unicast or broadcast).
  using TraceSink = std::function<void(const TraceRecord&)>;

  Simulator(Radio radio, PacketizationParams packets = PacketizationParams{},
            EnergyModel energy = EnergyModel{});
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }
  Radio& radio() { return radio_; }
  const Radio& radio() const { return radio_; }
  const PacketizationParams& packet_params() const { return packet_params_; }
  const EnergyModel& energy_model() const { return energy_model_; }

  int num_nodes() const { return radio_.num_nodes(); }

  // Per-node hot state, struct-of-arrays: the one-byte liveness bits and
  // the stats blocks live in separate dense vectors so liveness scans and
  // accounting touch only the cache lines they need.
  bool alive(NodeId id) const { return alive_[id] != 0; }
  void set_alive(NodeId id, bool alive) {
    if (alive_[id] == static_cast<uint8_t>(alive)) return;
    alive_[id] = static_cast<uint8_t>(alive);
    dead_nodes_ += alive ? -1 : 1;
  }
  int dead_nodes() const { return dead_nodes_; }
  NodeStats& stats(NodeId id) { return stats_[id]; }
  const NodeStats& stats(NodeId id) const { return stats_[id]; }

  /// Installs the handler invoked on every message delivery. Protocol
  /// drivers (routing, joins) install themselves here for the duration of a
  /// phase; the previous handler is returned so it can be restored.
  ReceiveHandler SetReceiveHandler(ReceiveHandler handler);

  /// Sends a logical message from msg.src to msg.dst over one hop.
  /// Transmission cost is always paid by the sender; the message is
  /// delivered only if both endpoints are alive, the link is up, and every
  /// fragment survives the link's loss rate (with ARQ enabled, within the
  /// bounded retransmission budget). A fragment that survives loss may
  /// still be corrupted in flight: with the CRC trailer enabled the
  /// receiver detects and drops it exactly like a loss (it feeds the same
  /// ARQ budget); with CRC disabled the fragment is accepted and, when the
  /// message is delivered, `*corrupted` is set so the protocol layer can
  /// materialize the damage on its payload (DamagePayload). Returns true
  /// if delivery was scheduled.
  bool SendUnicast(Message msg, bool* corrupted = nullptr);

  /// Local broadcast: one transmission (per fragment), every alive neighbor
  /// with an up link that receives all fragments (per-receiver loss rolls;
  /// broadcasts are never ARQ-protected) gets the message. Returns the
  /// number of receivers; if `delivered` is non-null it is filled with
  /// their ids in ascending order. Corruption is rolled per receiver like
  /// loss: with CRC enabled a corrupted fragment counts as missed; with CRC
  /// disabled the receiver accepts the damaged message and is additionally
  /// listed in `corrupted` (a subset of `delivered`).
  int Broadcast(Message msg, std::vector<NodeId>* delivered = nullptr,
                std::vector<NodeId>* corrupted = nullptr);

  // --- Fault injection ---------------------------------------------------

  /// Link-layer ARQ policy for unicasts (off by default).
  void set_arq_params(const ArqParams& arq) { arq_params_ = arq; }
  const ArqParams& arq_params() const { return arq_params_; }

  /// Per-fragment CRC integrity layer (off by default so the seed's frames
  /// are untouched; ApplyFaultPlan enables it with the corruption model).
  void set_integrity_params(const IntegrityParams& p) {
    integrity_params_ = p;
  }
  const IntegrityParams& integrity_params() const { return integrity_params_; }

  /// Materializes one undetected-corruption event on a payload bitstring:
  /// truncation or a small burst of bit flips, drawn from the seeded fault
  /// RNG (so damaged runs stay reproducible). Protocol layers call this for
  /// messages delivered with `corrupted == true` before handing the bytes
  /// to their (hardened) decoders.
  BitWriter DamagePayload(const BitWriter& payload);

  /// Reseeds the fragment-drop decision stream; runs with equal seeds,
  /// loss rates and traffic are exactly reproducible.
  void SeedFaults(uint64_t seed) { fault_rng_ = Rng(seed); }

  /// Upper bound of the seeded extra delay before a duplicate delivery
  /// (FaultPlan::duplication_delay_s); the duplicate arrives one message
  /// airtime plus a uniform draw from [0, this] after the original.
  void set_duplication_delay_s(double s) { duplication_delay_s_ = s; }
  double duplication_delay_s() const { return duplication_delay_s_; }

  /// Per-message delivery jitter (reordering); disabled by default so no
  /// extra randomness is drawn and delivery order matches the seed.
  void set_delay_params(const DelayParams& p) { delay_params_ = p; }
  const DelayParams& delay_params() const { return delay_params_; }

  /// Cross-attempt replay: with `enabled`, loss-eligible unicast deliveries
  /// are tracked in flight; NotifyAttemptAbort captures the pending ones
  /// and ReleaseReplays re-delivers them (stale tags intact) spaced
  /// `stagger_s` apart. Off by default — no tracking, no behavior change.
  void set_replay_params(bool enabled, double stagger_s) {
    replay_enabled_ = enabled;
    replay_stagger_s_ = stagger_s;
  }
  bool replay_enabled() const { return replay_enabled_; }

  /// Captures every in-flight loss-eligible delivery (canceling its
  /// delivery event) into the replay buffer. Executors call this when an
  /// attempt fails, before draining the event queue. No-op with replay
  /// disabled.
  void NotifyAttemptAbort();

  /// Re-schedules the captured deliveries of the previously aborted
  /// attempt, charging the receiver for hearing the stale frames again
  /// (itemized as replayed packets). Executors call this at the start of
  /// the next attempt. Returns the number of messages released.
  int ReleaseReplays();

  /// Deliveries currently buffered for replay (testing / diagnostics).
  size_t pending_replays() const { return replay_buffer_.size(); }

  /// Schedules a node crash / reboot through the event queue. A crashed
  /// node neither sends nor receives until a recovery event fires.
  void ScheduleCrash(NodeId id, SimTime at);
  void ScheduleRecovery(NodeId id, SimTime at);

  /// Schedules a transient link blackout window through the event queue.
  /// While the window is open, unicasts and broadcasts of loss-eligible
  /// kinds fail over the link; beacons, query floods and repair traffic
  /// pass through (see Radio's outage comment).
  void ScheduleLinkOutage(const LinkOutageWindow& window);

  /// Current simulation time.
  SimTime now() const { return events_.now(); }

  // --- Global accounting -------------------------------------------------

  uint64_t total_packets_sent() const { return total_packets_sent_; }
  uint64_t total_bytes_sent() const { return total_bytes_sent_; }
  uint64_t packets_sent_by_kind(MessageKind kind) const {
    return packets_by_kind_[static_cast<size_t>(kind)];
  }
  double total_energy_mj() const { return total_energy_mj_; }

  /// ARQ overhead, itemized. Retransmitted data fragments are part of
  /// `total_packets_sent` as well; acks are not (see NodeStats).
  uint64_t total_packets_retransmitted() const {
    return total_packets_retransmitted_;
  }
  uint64_t total_ack_packets() const { return total_ack_packets_; }
  double retransmit_energy_mj() const { return retransmit_energy_mj_; }
  double ack_energy_mj() const { return ack_energy_mj_; }

  /// Integrity-layer accounting. Detected corruptions are fragments the
  /// receiver's CRC check rejected (they behave like losses); undetected
  /// ones were accepted with a damaged payload (CRC disabled). Integrity
  /// retransmissions are the subset of ARQ retransmissions whose previous
  /// attempt failed the CRC check rather than being lost; their energy is
  /// included in retransmit_energy_mj() and itemized here. CRC trailer
  /// bytes are part of the frame bytes and itemized here.
  uint64_t total_corrupted_packets() const { return total_corrupted_packets_; }
  uint64_t total_undetected_corrupted_packets() const {
    return total_undetected_corrupted_packets_;
  }
  uint64_t crc_bytes_sent() const { return crc_bytes_sent_; }
  double integrity_retransmit_energy_mj() const {
    return integrity_retransmit_energy_mj_;
  }
  double crc_energy_mj() const { return crc_energy_mj_; }

  /// Duplicate-reception accounting: fragments receivers heard more than
  /// once — ARQ retransmissions of an already-received fragment (the ack
  /// was lost) plus the fragments of duplicated logical deliveries
  /// (FaultPlan duplication). Both are part of per-node
  /// `packets_received`; the duplication-axis receptions additionally
  /// carry the itemized rx energy below.
  uint64_t total_duplicate_packets() const { return total_duplicate_packets_; }
  double duplicate_energy_mj() const { return duplicate_energy_mj_; }

  /// Cross-attempt replay accounting: fragments re-heard when an aborted
  /// attempt's in-flight messages were re-delivered during the next one.
  uint64_t total_replayed_packets() const { return total_replayed_packets_; }
  double replay_energy_mj() const { return replay_energy_mj_; }

  /// Tree-repair accounting (kRepair traffic: orphan repair requests,
  /// candidate replies, re-attach notices). Repair packets are part of
  /// `total_packets_sent` and itemized here; their tx+rx energy is part of
  /// `total_energy_mj` and itemized here.
  uint64_t repair_packets_sent() const {
    return packets_by_kind_[static_cast<size_t>(MessageKind::kRepair)];
  }
  uint64_t repair_bytes_sent() const { return repair_bytes_sent_; }
  double repair_energy_mj() const { return repair_energy_mj_; }

  /// Clears all global and per-node counters (topology is untouched).
  void ResetStats();

  /// Seconds of airtime per link-layer packet (serialization + MAC).
  double per_packet_latency_s() const { return per_packet_latency_s_; }
  void set_per_packet_latency_s(double s) { per_packet_latency_s_ = s; }

  /// Installs a transmission trace sink (empty function to disable).
  /// Returns the previous sink.
  TraceSink SetTraceSink(TraceSink sink);

  /// Attaches (or with nullptr detaches) an observability tracer. The
  /// simulator does not own it; the tracer must outlive the attachment and
  /// be private to this simulator's trial (it is not thread-safe). Also
  /// wires radio link-churn events into the trace. With no tracer attached
  /// — or the tracer disabled — the instrumented paths cost one branch and
  /// record nothing; compile with SENSJOIN_TRACING=0 to remove them.
  void set_tracer(obs::Tracer* tracer);
  obs::Tracer* tracer() const { return tracer_; }

  // --- Windowed execution ------------------------------------------------

  /// Selects the turn-loop engine (see sim_config.h). Executors reach the
  /// engine through engine(); reconfiguring replaces it.
  void ConfigureEngine(const EngineConfig& config);
  const EngineConfig& engine_config() const { return engine_config_; }

  /// The turn-loop engine (lazily constructed; sequential by default).
  ParallelEngine& engine();

  /// Conservative gate: true when the simulator state guarantees that a
  /// turn's effects are a pure function of its inputs with no fault
  /// randomness — no ARQ, no delivery jitter, no replay tracking, zero
  /// loss/corruption/duplication rates, no failed or outaged links, no dead
  /// nodes, no fault events ever scheduled, and no synchronous trace sink.
  /// Only then may the windowed engine run turns concurrently.
  bool WindowSafe() const;

  /// Enters capture mode on the calling thread: until EndTurnCapture, every
  /// side effect of this simulator's send paths is appended to `fx` instead
  /// of applied. `partition` / `part_of` describe the capturing turn's
  /// partition so send paths can sanity-check confinement. Capture state is
  /// thread-local: concurrent turns on different threads capture into
  /// different logs.
  void BeginTurnCapture(TurnEffects* fx, int32_t partition,
                        const int32_t* part_of);
  void EndTurnCapture();

  /// True when the calling thread is inside BeginTurnCapture on this
  /// simulator.
  bool capturing() const;

  /// If capturing, appends `fn` as an ordered op and returns true;
  /// otherwise returns false (caller runs it immediately).
  bool CaptureCall(std::function<void()> fn);

  /// Replays a captured turn's effect log in program order. Must run on the
  /// coordinating thread, outside capture mode.
  void CommitTurnEffects(TurnEffects& fx);

  // --- Delivery-slot memory ----------------------------------------------

  /// Bytes the delivery arena has reserved (diagnostics / benches).
  size_t delivery_arena_reserved_bytes() const {
    return delivery_arena_.bytes_reserved();
  }

 private:
  /// Charges tx costs at `sender` for `fragments` packets carrying
  /// `frame_bytes` bytes of frames in total. Returns the energy debited.
  double AccountTx(NodeId sender, MessageKind kind, int fragments,
                   size_t frame_bytes);
  double AccountRx(NodeId receiver, MessageKind kind, int fragments,
                   size_t frame_bytes);

  /// Schedules a unicast delivery event `delay` from now. With replay
  /// enabled and a loss-eligible kind, the delivery is tracked in flight so
  /// NotifyAttemptAbort can capture it.
  void ScheduleDelivery(Message msg, SimTime delay);

  /// True when `kind` is subject to packet loss (and, by the same gate,
  /// corruption and transient link outages). Tree maintenance — CTP
  /// beaconing and the repair traffic of net/tree_maintenance.h — and query
  /// floods are modeled as reliable: in the real system they are amortized
  /// over periodic repetition (beaconing, flood rebroadcasts) rather than
  /// per-execution ARQ, and keeping them deterministic means a fault plan
  /// never changes which routing tree gets built or repaired, and that
  /// fault-free runs draw zero fault randomness.
  static bool LossApplies(MessageKind kind) {
    return kind != MessageKind::kBeacon && kind != MessageKind::kQuery &&
           kind != MessageKind::kRepair;
  }

  /// Capture-aware mutation helpers: apply immediately in sequential mode,
  /// append an address-based op when the calling thread is capturing.
  void GAdd(uint64_t& counter, uint64_t delta);
  void GAdd(double& counter, double delta);
  /// Capture-aware tracer record (no-op with no tracer attached).
  void TRecord(uint16_t trace_kind, NodeId node, NodeId peer,
               MessageKind msg_kind, uint32_t count, uint64_t bytes,
               double energy_mj, uint32_t detail = 0);
  void TObserveMessage(size_t payload_bytes, int fragments);
  void TObserveHopLatency(double seconds);
  void TObserveRetransmits(int retransmissions);
  /// Capture-aware broadcast-reception scheduling (shared payload).
  void ScheduleBroadcastRx(std::shared_ptr<const Message> msg, NodeId receiver,
                           SimTime delay);

  EventQueue events_;
  Radio radio_;
  PacketizationParams packet_params_;
  EnergyModel energy_model_;
  std::vector<uint8_t> alive_;
  std::vector<NodeStats> stats_;
  int dead_nodes_ = 0;
  /// Sticky: set when any crash/recovery/link-outage event was ever
  /// scheduled; WindowSafe then stays false for the simulator's lifetime
  /// (pending fault events may fire at any sim time).
  bool fault_events_scheduled_ = false;
  ReceiveHandler receive_handler_;
  TraceSink trace_sink_;
  obs::Tracer* tracer_ = nullptr;
  double per_packet_latency_s_ = 0.004;
  ArqParams arq_params_;
  IntegrityParams integrity_params_{.crc_enabled = false};
  Rng fault_rng_{0x5EED5};

  uint64_t total_packets_sent_ = 0;
  uint64_t total_bytes_sent_ = 0;
  double total_energy_mj_ = 0.0;
  uint64_t total_packets_retransmitted_ = 0;
  uint64_t total_ack_packets_ = 0;
  double retransmit_energy_mj_ = 0.0;
  double ack_energy_mj_ = 0.0;
  uint64_t total_corrupted_packets_ = 0;
  uint64_t total_undetected_corrupted_packets_ = 0;
  uint64_t crc_bytes_sent_ = 0;
  double integrity_retransmit_energy_mj_ = 0.0;
  double crc_energy_mj_ = 0.0;
  uint64_t repair_bytes_sent_ = 0;
  double repair_energy_mj_ = 0.0;
  uint64_t total_duplicate_packets_ = 0;
  double duplicate_energy_mj_ = 0.0;
  uint64_t total_replayed_packets_ = 0;
  double replay_energy_mj_ = 0.0;
  std::array<uint64_t, static_cast<size_t>(MessageKind::kNumKinds)>
      packets_by_kind_{};

  // --- Delivery jitter / duplication / cross-attempt replay --------------
  double duplication_delay_s_ = 0.012;
  DelayParams delay_params_;
  bool replay_enabled_ = false;
  double replay_stagger_s_ = 0.002;
  /// In-flight unicast deliveries, keyed by a monotonically increasing id
  /// (std::map: capture order on abort must be deterministic).
  struct PendingDelivery {
    Message msg;
    EventId event = 0;
  };
  std::map<uint64_t, PendingDelivery> inflight_;
  uint64_t next_delivery_id_ = 0;
  std::vector<Message> replay_buffer_;

  // --- Engine ------------------------------------------------------------
  EngineConfig engine_config_;
  std::unique_ptr<ParallelEngine> engine_;

  // --- Delivery-slot memory ----------------------------------------------
  /// One broadcast reception: the shared logical message plus the receiver
  /// it is bound for.
  struct BroadcastRx {
    std::shared_ptr<const Message> msg;
    NodeId receiver = kInvalidNode;
  };
  /// Arena-pooled delivery slots. Scheduling a delivery parks the message
  /// in a recycled slot and the event closure captures only {this, slot} —
  /// small enough for the std::function small-buffer — so the steady state
  /// allocates nothing per send. Slots are created and destroyed only on
  /// the coordinating thread (capture mode defers scheduling ops).
  Arena delivery_arena_;
  ArenaPool<Message> unicast_slots_{&delivery_arena_};
  ArenaPool<BroadcastRx> broadcast_slots_{&delivery_arena_};
};

}  // namespace sensjoin::sim

#endif  // SENSJOIN_SIM_SIMULATOR_H_
