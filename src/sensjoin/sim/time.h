#ifndef SENSJOIN_SIM_TIME_H_
#define SENSJOIN_SIM_TIME_H_

#include <cstdint>
#include <limits>

namespace sensjoin::sim {

/// Simulation time in seconds since simulation start.
using SimTime = double;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Identifies a sensor node within a simulation. Node ids are dense indices
/// assigned by the placement; the base station is a regular node id.
using NodeId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

}  // namespace sensjoin::sim

#endif  // SENSJOIN_SIM_TIME_H_
