#ifndef SENSJOIN_SIM_ENERGY_MODEL_H_
#define SENSJOIN_SIM_ENERGY_MODEL_H_

#include <cstddef>

namespace sensjoin::sim {

/// Radio energy cost model. The paper observes that per-packet overhead
/// (channel acquisition, synchronization) dominates, so costs are modeled as
/// a fixed per-packet term plus a smaller per-byte term; defaults are in the
/// ballpark of CC2420-class radios (values in millijoule).
struct EnergyModel {
  double tx_per_packet_mj = 0.30;
  double tx_per_byte_mj = 0.006;
  double rx_per_packet_mj = 0.25;
  double rx_per_byte_mj = 0.005;

  /// Energy to transmit `packets` link-layer packets carrying `bytes` of
  /// total frame bytes (headers + payload).
  double TxCost(int packets, size_t bytes) const {
    return tx_per_packet_mj * packets + tx_per_byte_mj * static_cast<double>(bytes);
  }

  /// Energy to receive the same.
  double RxCost(int packets, size_t bytes) const {
    return rx_per_packet_mj * packets + rx_per_byte_mj * static_cast<double>(bytes);
  }
};

}  // namespace sensjoin::sim

#endif  // SENSJOIN_SIM_ENERGY_MODEL_H_
