#ifndef SENSJOIN_SIM_ARENA_H_
#define SENSJOIN_SIM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace sensjoin::sim {

/// A chunked bump allocator. Allocations come out of geometrically growing
/// chunks; individual allocations are never freed (use Reset to recycle the
/// whole arena, or an ArenaPool for typed slot reuse). Pointers into the
/// arena stay stable for the arena's lifetime — chunks never move.
///
/// This backs the simulator's delivery slots: scheduling a message delivery
/// used to heap-allocate a std::function closure holding the Message; with
/// pooled arena slots the closure captures a slot pointer (fits the
/// std::function small-buffer) and the steady state allocates nothing.
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < 256 ? 256 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (a power of two).
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t));

  /// Constructs a T in arena storage. The caller owns the object's
  /// lifetime (call the destructor explicitly or use an ArenaPool); the
  /// storage itself is reclaimed only by Reset / destruction.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    return ::new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Rewinds every chunk to empty, retaining the reserved memory for
  /// reuse. All outstanding allocations become invalid; only call when the
  /// caller can prove nothing is live (e.g. no pending deliveries).
  void Reset();

  /// Bytes handed out since construction / the last Reset.
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Bytes reserved from the heap across all chunks.
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t num_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  size_t current_ = 0;  ///< index of the chunk being bumped
  size_t chunk_bytes_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

/// A typed free-list pool over an Arena. Create/Destroy recycle fixed-size
/// slots: the first wave of Creates bump-allocates from the arena, and once
/// the population stabilizes every Create is a free-list pop — no heap
/// traffic, no per-object malloc metadata.
template <typename T>
class ArenaPool {
 public:
  explicit ArenaPool(Arena* arena) : arena_(arena) {}

  template <typename... Args>
  T* Create(Args&&... args) {
    ++live_;
    if (!free_.empty()) {
      T* slot = free_.back();
      free_.pop_back();
      return ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    }
    return arena_->New<T>(std::forward<Args>(args)...);
  }

  void Destroy(T* p) {
    p->~T();
    free_.push_back(p);
    --live_;
  }

  /// Objects currently alive (created and not yet destroyed).
  size_t live() const { return live_; }
  /// Slots parked on the free list, ready for reuse.
  size_t free_count() const { return free_.size(); }

 private:
  Arena* arena_;
  std::vector<T*> free_;
  size_t live_ = 0;
};

}  // namespace sensjoin::sim

#endif  // SENSJOIN_SIM_ARENA_H_
