#include "sensjoin/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::sim {

EventId EventQueue::ScheduleAt(SimTime t, Callback cb) {
  SENSJOIN_CHECK(t >= now_) << "scheduling into the past: t=" << t
                            << "now=" << now_;
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_.back().generation = generation_floor_;
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.active = true;
  const EventId id = MakeId(slot, s.generation);
  heap_.push(Entry{t, next_seq_++, id});
  ++pending_count_;
  ++total_scheduled_;
  if (pending_count_ > max_pending_) max_pending_ = pending_count_;
  return id;
}

void EventQueue::Release(uint32_t slot) {
  Slot& s = slots_[slot];
  s.active = false;
  ++s.generation;  // invalidate outstanding ids for this slot
  free_slots_.push_back(slot);
  --pending_count_;
}

bool EventQueue::Cancel(EventId id) {
  const uint32_t slot = SlotOf(id);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.active || s.generation != GenerationOf(id)) return false;
  s.cb = nullptr;  // drop captured state now, as the map erase used to
  Release(slot);
  ++total_canceled_;
  return true;
}

bool EventQueue::RunOne() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    const uint32_t slot = SlotOf(top.id);
    if (slot >= slots_.size()) continue;  // slot discarded by ShrinkToFit
    Slot& s = slots_[slot];
    if (!s.active || s.generation != GenerationOf(top.id)) continue;
    Callback cb = std::move(s.cb);
    Release(slot);
    ++total_fired_;
    now_ = top.time;
    cb();
    return true;
  }
  return false;
}

size_t EventQueue::RunUntil(SimTime t) {
  size_t fired = 0;
  while (!heap_.empty()) {
    // Skip canceled entries without advancing time.
    const Entry& top = heap_.top();
    const uint32_t slot = SlotOf(top.id);
    if (slot >= slots_.size()) {  // slot discarded by ShrinkToFit
      heap_.pop();
      continue;
    }
    const Slot& s = slots_[slot];
    if (!s.active || s.generation != GenerationOf(top.id)) {
      heap_.pop();
      continue;
    }
    if (top.time > t) break;
    RunOne();
    ++fired;
  }
  if (now_ < t) now_ = t;
  return fired;
}

void EventQueue::ShrinkToFit() {
  if (pending_count_ == 0) {
    // Drained queue: everything goes, including stale heap entries left by
    // cancellations. The generation floor keeps every outstanding id dead.
    for (const Slot& s : slots_) {
      generation_floor_ = std::max(generation_floor_, s.generation + 1);
    }
    slots_.clear();
    slots_.shrink_to_fit();
    free_slots_.clear();
    free_slots_.shrink_to_fit();
    if (!heap_.empty()) heap_ = decltype(heap_){};
    return;
  }
  // Live events pin their slot indices, so only the trailing run of
  // inactive slots can be returned to the allocator.
  size_t keep = slots_.size();
  while (keep > 0 && !slots_[keep - 1].active) {
    generation_floor_ =
        std::max(generation_floor_, slots_[keep - 1].generation + 1);
    --keep;
  }
  if (keep < slots_.size()) {
    slots_.resize(keep);
    slots_.shrink_to_fit();
    std::erase_if(free_slots_,
                  [keep](uint32_t s) { return static_cast<size_t>(s) >= keep; });
  }
  free_slots_.shrink_to_fit();
}

size_t EventQueue::Run(size_t max_events) {
  size_t fired = 0;
  while (fired < max_events && RunOne()) ++fired;
  SENSJOIN_CHECK(Empty() || fired < max_events)
      << "EventQueue::Run exceeded max_events =" << max_events;
  return fired;
}

}  // namespace sensjoin::sim
