#include "sensjoin/sim/event_queue.h"

#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::sim {

EventId EventQueue::ScheduleAt(SimTime t, Callback cb) {
  SENSJOIN_CHECK(t >= now_) << "scheduling into the past: t=" << t
                            << "now=" << now_;
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  ++pending_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --pending_count_;
  return true;
}

bool EventQueue::RunOne() {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // canceled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    --pending_count_;
    now_ = top.time;
    cb();
    return true;
  }
  return false;
}

size_t EventQueue::RunUntil(SimTime t) {
  size_t fired = 0;
  while (!heap_.empty()) {
    // Skip canceled entries without advancing time.
    if (callbacks_.find(heap_.top().id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (heap_.top().time > t) break;
    RunOne();
    ++fired;
  }
  if (now_ < t) now_ = t;
  return fired;
}

size_t EventQueue::Run(size_t max_events) {
  size_t fired = 0;
  while (fired < max_events && RunOne()) ++fired;
  SENSJOIN_CHECK(Empty() || fired < max_events)
      << "EventQueue::Run exceeded max_events =" << max_events;
  return fired;
}

}  // namespace sensjoin::sim
