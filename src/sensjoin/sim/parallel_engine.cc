#include "sensjoin/sim/parallel_engine.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "sensjoin/common/logging.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::sim {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSequential:
      return "sequential";
    case EngineKind::kWindowed:
      return "windowed";
  }
  return "unknown";
}

PartitionMap PartitionMap::FromParents(const std::vector<NodeId>& parent,
                                       NodeId root) {
  PartitionMap map;
  const NodeId n = static_cast<NodeId>(parent.size());
  map.part.assign(parent.size(), kUnpartitioned);
  std::vector<NodeId> chain;
  for (NodeId u = 0; u < n; ++u) {
    if (u == root || parent[u] == kInvalidNode ||
        map.part[u] != kUnpartitioned) {
      continue;
    }
    // Climb toward the root, memoizing the whole chain. A depth-1 node
    // founds a new partition; a chain that dead-ends (orphaned subtree)
    // stays unpartitioned, which is merely conservative.
    chain.clear();
    NodeId v = u;
    while (map.part[v] == kUnpartitioned && v != root &&
           parent[v] != kInvalidNode) {
      if (parent[v] == root) {
        map.part[v] = map.count++;
        break;
      }
      chain.push_back(v);
      v = parent[v];
    }
    const int32_t p = map.part[v];
    for (NodeId w : chain) map.part[w] = p;
  }
  return map;
}

ParallelEngine::ParallelEngine(Simulator& sim, EngineConfig config)
    : sim_(sim), config_(config) {
  if (config_.kind == EngineKind::kWindowed) {
    int w = config_.workers;
    if (w <= 0) w = static_cast<int>(std::thread::hardware_concurrency());
    resolved_workers_ = std::max(1, w);
  }
  scratch_.resize(resolved_workers_);
}

ParallelEngine::~ParallelEngine() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelEngine::Defer(std::function<void()> fn) {
  // Decide before moving: CaptureCall takes ownership of its argument, so
  // handing `fn` over and then invoking it on the not-capturing path would
  // call a moved-from function.
  if (sim_.capturing()) {
    sim_.CaptureCall(std::move(fn));
  } else {
    fn();
  }
}

void ParallelEngine::RunTurns(const PartitionMap& parts,
                              const std::vector<NodeId>& order,
                              const TurnFn& turn) {
  const bool parallel_ok = config_.kind == EngineKind::kWindowed &&
                           resolved_workers_ > 1 && parts.count >= 2 &&
                           sim_.WindowSafe();
  if (!parallel_ok) {
    ++sequential_windows_;
    Scratch& s = scratch_[0];
    for (NodeId u : order) turn(u, s);
    return;
  }
  // Split the order into inline runs (unpartitioned turns — the root / base
  // station) and parallel windows (maximal runs of partitioned turns). The
  // inline turns run on this thread between windows, so both
  // children-before-parent and root-first orders work unchanged.
  size_t i = 0;
  while (i < order.size()) {
    if (parts.part[order[i]] < 0) {
      turn(order[i], scratch_[0]);
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < order.size() && parts.part[order[j]] >= 0) ++j;
    RunWindow(parts, order, i, j, turn);
    i = j;
  }
}

void ParallelEngine::RunWindow(const PartitionMap& parts,
                               const std::vector<NodeId>& order, size_t begin,
                               size_t end, const TurnFn& turn) {
  // Group the window's turns by partition, preserving each partition's
  // internal order. `groups_` / `effects_` are members so their buffers
  // recycle across windows.
  group_of_part_.assign(static_cast<size_t>(parts.count), -1);
  size_t active = 0;
  for (size_t idx = begin; idx < end; ++idx) {
    const int32_t p = parts.part[order[idx]];
    if (group_of_part_[p] < 0) {
      group_of_part_[p] = static_cast<int32_t>(active);
      if (groups_.size() <= active) groups_.emplace_back();
      groups_[active].clear();
      ++active;
    }
    groups_[group_of_part_[p]].push_back(static_cast<uint32_t>(idx - begin));
  }
  if (active < 2) {
    // One partition: concurrency buys nothing; run the reference loop.
    ++sequential_windows_;
    for (size_t idx = begin; idx < end; ++idx) {
      turn(order[idx], scratch_[0]);
    }
    return;
  }
  ++parallel_windows_;
  const size_t turns = end - begin;
  if (effects_.size() < turns) effects_.resize(turns);
  // Largest partitions first so the stragglers start early.
  work_order_.resize(active);
  for (size_t g = 0; g < active; ++g) work_order_[g] = static_cast<int32_t>(g);
  std::sort(work_order_.begin(), work_order_.end(),
            [this](int32_t a, int32_t b) {
              return groups_[a].size() > groups_[b].size();
            });

  std::atomic<size_t> next{0};
  const auto job = [&](int worker_id) {
    Scratch& s = scratch_[worker_id];
    for (;;) {
      const size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= work_order_.size()) break;
      for (uint32_t idx : groups_[work_order_[k]]) {
        const NodeId u = order[begin + idx];
        effects_[idx].Clear();
        sim_.BeginTurnCapture(&effects_[idx], parts.part[u],
                              parts.part.data());
        turn(u, s);
        sim_.EndTurnCapture();
      }
    }
  };
  StartWorkers();
  ForkJoin(job);
  captured_turns_ += turns;
  // Barrier: replay every turn's effect log in sequential turn order.
  for (size_t idx = 0; idx < turns; ++idx) {
    sim_.CommitTurnEffects(effects_[idx]);
  }
}

void ParallelEngine::StartWorkers() {
  if (!threads_.empty()) return;
  threads_.reserve(resolved_workers_ - 1);
  for (int w = 1; w < resolved_workers_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

void ParallelEngine::WorkerLoop(int worker_id) {
  uint64_t seen = 0;
  for (;;) {
    std::function<void(int)> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock,
                     [&] { return stopping_ || job_generation_ != seen; });
      if (stopping_) return;
      seen = job_generation_;
      job = job_;
    }
    job(worker_id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--job_outstanding_ == 0) cv_done_.notify_one();
    }
  }
}

void ParallelEngine::ForkJoin(const std::function<void(int)>& job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    job_outstanding_ = static_cast<int>(threads_.size());
    ++job_generation_;
  }
  cv_start_.notify_all();
  job(0);  // the coordinating thread is worker 0
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return job_outstanding_ == 0; });
  job_ = nullptr;
}

}  // namespace sensjoin::sim
