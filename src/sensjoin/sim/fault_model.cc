#include "sensjoin/sim/fault_model.h"

#include "sensjoin/common/logging.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::sim {

bool FaultPlan::HasCorruption() const {
  if (default_corruption_rate > 0.0) return true;
  for (const LinkCorruptionOverride& link : corruption_overrides) {
    if (link.corruption_rate > 0.0) return true;
  }
  return false;
}

bool FaultPlan::HasDuplication() const {
  if (default_duplication_rate > 0.0) return true;
  for (const LinkDuplicationOverride& link : duplication_overrides) {
    if (link.duplication_rate > 0.0) return true;
  }
  return false;
}

void ApplyFaultPlan(Simulator& sim, const FaultPlan& plan) {
  Radio& radio = sim.radio();
  radio.set_default_loss_rate(plan.default_loss_rate);
  for (const LinkLossOverride& link : plan.link_overrides) {
    radio.SetLinkLossRate(link.a, link.b, link.loss_rate);
  }
  radio.set_default_corruption_rate(plan.default_corruption_rate);
  for (const LinkCorruptionOverride& link : plan.corruption_overrides) {
    radio.SetLinkCorruptionRate(link.a, link.b, link.corruption_rate);
  }
  radio.set_default_duplication_rate(plan.default_duplication_rate);
  for (const LinkDuplicationOverride& link : plan.duplication_overrides) {
    radio.SetLinkDuplicationRate(link.a, link.b, link.duplication_rate);
  }
  sim.set_duplication_delay_s(plan.duplication_delay_s);
  sim.set_delay_params(plan.delay);
  sim.set_replay_params(plan.enable_replay, plan.replay_stagger_s);
  sim.set_arq_params(plan.arq);
  IntegrityParams integrity = plan.integrity;
  // The CRC trailer only exists (and is only paid for) together with the
  // corruption model; see the FaultPlan::integrity comment.
  integrity.crc_enabled = integrity.crc_enabled && plan.HasCorruption();
  sim.set_integrity_params(integrity);
  sim.SeedFaults(plan.seed);
  for (const CrashEvent& ev : plan.crash_events) {
    SENSJOIN_CHECK(ev.node >= 0 && ev.node < sim.num_nodes())
        << "crash event for unknown node " << ev.node;
    if (ev.recover) {
      sim.ScheduleRecovery(ev.node, ev.at);
    } else {
      sim.ScheduleCrash(ev.node, ev.at);
    }
  }
  for (const LinkOutageWindow& w : plan.link_outages) {
    sim.ScheduleLinkOutage(w);
  }
}

}  // namespace sensjoin::sim
