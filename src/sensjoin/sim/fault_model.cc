#include "sensjoin/sim/fault_model.h"

#include "sensjoin/common/logging.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::sim {

void ApplyFaultPlan(Simulator& sim, const FaultPlan& plan) {
  Radio& radio = sim.radio();
  radio.set_default_loss_rate(plan.default_loss_rate);
  for (const LinkLossOverride& link : plan.link_overrides) {
    radio.SetLinkLossRate(link.a, link.b, link.loss_rate);
  }
  sim.set_arq_params(plan.arq);
  sim.SeedFaults(plan.seed);
  for (const CrashEvent& ev : plan.crash_events) {
    SENSJOIN_CHECK(ev.node >= 0 && ev.node < sim.num_nodes())
        << "crash event for unknown node " << ev.node;
    if (ev.recover) {
      sim.ScheduleRecovery(ev.node, ev.at);
    } else {
      sim.ScheduleCrash(ev.node, ev.at);
    }
  }
}

}  // namespace sensjoin::sim
