#ifndef SENSJOIN_SIM_EVENT_QUEUE_H_
#define SENSJOIN_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sensjoin/sim/time.h"

namespace sensjoin::sim {

/// Handle for a scheduled event, usable with EventQueue::Cancel.
using EventId = uint64_t;

/// A discrete-event scheduler. Events fire in timestamp order; ties are
/// broken by insertion order so simulations are fully deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `cb` to run at absolute time `t`. Requires t >= now().
  EventId ScheduleAt(SimTime t, Callback cb);

  /// Schedules `cb` to run `delay` seconds from now. Requires delay >= 0.
  EventId ScheduleAfter(SimTime delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Canceling an already-fired or unknown id is a
  /// no-op. Returns true if the event was pending.
  bool Cancel(EventId id);

  /// Current simulation time (timestamp of the last fired event).
  SimTime now() const { return now_; }

  /// True if no events are pending.
  bool Empty() const { return pending_count_ == 0; }

  /// Number of pending (non-canceled) events.
  size_t PendingCount() const { return pending_count_; }

  /// Fires the next event. Returns false if the queue is empty.
  bool RunOne();

  /// Fires events until the queue is empty or `t` is reached; leaves now()
  /// at min(t, time of last event). Returns the number of events fired.
  size_t RunUntil(SimTime t);

  /// Fires events until the queue drains. `max_events` guards against
  /// runaway self-rescheduling loops. Returns the number of events fired.
  size_t Run(size_t max_events = 100'000'000);

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    EventId id;
    // Ordered as a min-heap on (time, seq).
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // Callbacks keyed by event id; canceled events are simply erased here and
  // their heap entries skipped when popped.
  std::unordered_map<EventId, Callback> callbacks_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  size_t pending_count_ = 0;
};

}  // namespace sensjoin::sim

#endif  // SENSJOIN_SIM_EVENT_QUEUE_H_
