#ifndef SENSJOIN_SIM_EVENT_QUEUE_H_
#define SENSJOIN_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sensjoin/sim/time.h"

namespace sensjoin::sim {

/// Handle for a scheduled event, usable with EventQueue::Cancel.
using EventId = uint64_t;

/// A discrete-event scheduler. Events fire in timestamp order; ties are
/// broken by insertion order so simulations are fully deterministic.
///
/// Callbacks live in a slot vector recycled through a free list, and an
/// EventId encodes (slot, generation) so stale handles never alias a
/// reused slot. Compared to the original hash-map storage this removes a
/// node allocation plus two hash lookups per event — the per-fragment
/// scheduling path is the hottest allocation site in a trial.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `cb` to run at absolute time `t`. Requires t >= now().
  EventId ScheduleAt(SimTime t, Callback cb);

  /// Schedules `cb` to run `delay` seconds from now. Requires delay >= 0.
  EventId ScheduleAfter(SimTime delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Canceling an already-fired or unknown id is a
  /// no-op. Returns true if the event was pending.
  bool Cancel(EventId id);

  /// Current simulation time (timestamp of the last fired event).
  SimTime now() const { return now_; }

  /// True if no events are pending.
  bool Empty() const { return pending_count_ == 0; }

  /// Number of pending (non-canceled) events.
  size_t PendingCount() const { return pending_count_; }

  /// Fires the next event. Returns false if the queue is empty.
  bool RunOne();

  /// Fires events until the queue is empty or `t` is reached; leaves now()
  /// at min(t, time of last event). Returns the number of events fired.
  size_t RunUntil(SimTime t);

  /// Fires events until the queue drains. `max_events` guards against
  /// runaway self-rescheduling loops. Returns the number of events fired.
  size_t Run(size_t max_events = 100'000'000);

  /// Returns high-water storage to the allocator after a burst: all slots
  /// when the queue is drained (plus any stale heap entries), otherwise the
  /// trailing run of inactive slots and the free list's slack. Outstanding
  /// EventIds stay valid — ids of discarded slots are permanently dead via
  /// a generation floor, so a recycled slot index can never alias an old
  /// handle. Executors call this at phase boundaries, where the queue is
  /// empty but its high-water mark reflects the whole previous phase.
  void ShrinkToFit();

  /// Pool introspection (diagnostics / tests).
  size_t slot_count() const { return slots_.size(); }
  size_t slot_capacity() const { return slots_.capacity(); }
  size_t free_slot_count() const { return free_slots_.size(); }

  // Lifetime statistics, captured into metrics dumps by
  // obs::CaptureSimulatorMetrics. Never reset (they describe the whole run).
  uint64_t total_scheduled() const { return total_scheduled_; }
  uint64_t total_fired() const { return total_fired_; }
  uint64_t total_canceled() const { return total_canceled_; }
  /// Largest number of simultaneously pending events seen so far.
  size_t max_pending() const { return max_pending_; }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    EventId id;
    // Ordered as a min-heap on (time, seq).
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// One pooled event. `generation` is bumped every time the slot is
  /// released (fired or canceled), invalidating outstanding EventIds.
  struct Slot {
    Callback cb;
    uint32_t generation = 0;
    bool active = false;
  };

  static EventId MakeId(uint32_t slot, uint32_t generation) {
    return (static_cast<uint64_t>(slot) << 32) | generation;
  }
  static uint32_t SlotOf(EventId id) { return static_cast<uint32_t>(id >> 32); }
  static uint32_t GenerationOf(EventId id) {
    return static_cast<uint32_t>(id);
  }

  /// Returns the slot's index to the free list; the callback's captured
  /// state is destroyed by the caller moving it out (fire) or here (cancel).
  void Release(uint32_t slot);

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  /// Slots created after a ShrinkToFit start their generation here, above
  /// every generation a discarded slot ever handed out, so stale EventIds
  /// can never alias a recreated slot index.
  uint32_t generation_floor_ = 0;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  size_t pending_count_ = 0;
  uint64_t total_scheduled_ = 0;
  uint64_t total_fired_ = 0;
  uint64_t total_canceled_ = 0;
  size_t max_pending_ = 0;
};

}  // namespace sensjoin::sim

#endif  // SENSJOIN_SIM_EVENT_QUEUE_H_
