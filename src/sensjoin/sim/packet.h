#ifndef SENSJOIN_SIM_PACKET_H_
#define SENSJOIN_SIM_PACKET_H_

#include <any>
#include <cstddef>
#include <cstdint>

#include "sensjoin/sim/time.h"

namespace sensjoin::sim {

/// Classifies messages for per-phase cost accounting. The paper's metric
/// (Sec. VI) counts query-processing transmissions; tree maintenance
/// (kBeacon) and query dissemination (kQuery) are tracked separately because
/// they are identical for every join method under comparison.
enum class MessageKind : uint8_t {
  kBeacon = 0,  ///< Routing-tree maintenance (CTP-style beaconing).
  kQuery,       ///< Query dissemination flood.
  kCollection,  ///< SENS-Join step 1a (join-attribute tuples upward,
                ///< including Treecut full-tuple sends).
  kFilter,      ///< SENS-Join step 1b: join filter downward.
  kFinal,       ///< Final-result tuples upward; also the external join's
                ///< single collection phase.
  kAppData,     ///< Application payloads outside the join protocols.
  kControl,     ///< Recovery control traffic (re-requests / NACKs).
  kRepair,      ///< In-network tree repair (requests, replies, re-attach
                ///< notices; net/tree_maintenance.h).
  kNumKinds,    ///< Sentinel; keep last.
};

/// Transmissions attributable to executing a join query (excludes tree
/// maintenance and query dissemination, which are identical for all join
/// methods; Sec. VI "Metric").
inline bool IsJoinProcessingKind(MessageKind kind) {
  return kind == MessageKind::kCollection || kind == MessageKind::kFilter ||
         kind == MessageKind::kFinal;
}

/// Returns a short name for `kind` ("beacon", "join_attrs", ...).
const char* MessageKindName(MessageKind kind);

/// Sentinel attempt id of an untagged message (legacy senders, beacons,
/// floods): the delivery-validation layer passes such messages through
/// without sequence checks.
inline constexpr uint32_t kUntaggedAttempt = 0xFFFFFFFFu;

/// Exactly-once delivery tag. Protocol layers stamp every logical message
/// with the executor attempt that originated it plus a per-(src,dst)-link
/// sequence number; receive paths use the tag to drop duplicates, reject
/// stale-attempt traffic and detect reordering. The tag is carried
/// in-memory: its wire bytes are charged only when the protocol explicitly
/// enables them (ProtocolConfig::charge_tag_wire_bytes), so tagging alone
/// leaves frame sizes bit-identical to the seed.
struct DeliveryTag {
  uint32_t attempt_id = kUntaggedAttempt;
  uint32_t seq = 0;

  bool tagged() const { return attempt_id != kUntaggedAttempt; }
};

/// A logical message handed to the radio. The radio fragments it into
/// link-layer packets for accounting; `content` carries the typed in-memory
/// payload (the simulator never serializes application objects, it only
/// accounts for their declared wire size).
struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;  ///< kInvalidNode for local broadcast.
  MessageKind kind = MessageKind::kAppData;
  size_t payload_bytes = 0;  ///< Wire size of the payload, pre-fragmentation.
  DeliveryTag tag;           ///< Exactly-once tag (untagged by default).
  std::any content;
};

/// Link-layer framing parameters. The paper uses a maximum packet size of
/// 48 bytes (Sec. VI, "Metric") and discusses 124 bytes; the header models
/// the fixed per-packet MAC/addressing overhead.
struct PacketizationParams {
  int max_packet_bytes = 48;
  int header_bytes = 8;

  /// Usable payload bytes per link-layer packet.
  int payload_capacity() const { return max_packet_bytes - header_bytes; }
};

/// Number of link-layer packets needed to carry `payload_bytes` of payload.
/// A zero-byte payload (pure signal) still costs one packet.
int NumFragments(size_t payload_bytes, const PacketizationParams& params);

}  // namespace sensjoin::sim

#endif  // SENSJOIN_SIM_PACKET_H_
