#ifndef SENSJOIN_SIM_SIM_CONFIG_H_
#define SENSJOIN_SIM_SIM_CONFIG_H_

namespace sensjoin::sim {

/// Which event engine executes a trial's protocol turn loops.
enum class EngineKind {
  /// The classic single-threaded loop: every turn runs inline, effects
  /// apply immediately. The reference semantics.
  kSequential,
  /// Conservative time-windowed parallelism: turns of disjoint routing-tree
  /// subtree partitions run concurrently inside a window, their simulator
  /// side effects are captured and committed at the window barrier in
  /// sequential turn order, so output stays byte-identical to kSequential
  /// (see sim/parallel_engine.h). Falls back to sequential execution
  /// whenever a window could contain non-partitionable work (fault
  /// machinery active, trace sinks installed).
  kWindowed,
};

struct EngineConfig {
  EngineKind kind = EngineKind::kSequential;
  /// Worker threads for kWindowed; 0 resolves to hardware concurrency.
  int workers = 0;
};

/// Simulator-level configuration selected per deployment (testbed) and by
/// the harnesses' --engine flags.
struct SimConfig {
  EngineConfig engine;
  /// Above this node count the Radio keeps the spatial grid and answers
  /// neighbor queries on demand instead of materializing per-node
  /// adjacency lists (see sim/radio.h).
  int neighbor_materialize_threshold = 32768;
};

const char* EngineKindName(EngineKind kind);

}  // namespace sensjoin::sim

#endif  // SENSJOIN_SIM_SIM_CONFIG_H_
