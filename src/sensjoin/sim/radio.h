#ifndef SENSJOIN_SIM_RADIO_H_
#define SENSJOIN_SIM_RADIO_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sensjoin/common/geometry.h"
#include "sensjoin/common/logging.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::sim {

/// Memory-layout knobs for the radio.
struct RadioOptions {
  /// Up to this many nodes the radio materializes per-node sorted adjacency
  /// lists (fast repeated iteration, O(avg_degree * n) memory). Above it the
  /// radio keeps only the spatial grid and answers neighbor queries on
  /// demand — at 100k+ nodes the adjacency lists would dominate the
  /// footprint. Negative means "always materialize".
  int materialize_threshold = 32768;
};

/// The wireless medium: unit-disk connectivity with bidirectional links
/// (the common setting the paper adopts, Sec. VI "General setting") plus
/// dynamic per-link failures for error-tolerance experiments.
class Radio {
 public:
  /// Builds the adjacency from node `positions` and a fixed communication
  /// `range_m` (paper default: 50 m).
  Radio(std::vector<Point> positions, double range_m,
        RadioOptions options = RadioOptions{});

  int num_nodes() const { return static_cast<int>(positions_.size()); }
  double range_m() const { return range_m_; }
  const Point& position(NodeId id) const { return positions_[id]; }
  const std::vector<Point>& positions() const { return positions_; }

  /// True when per-node adjacency lists are materialized (node count at or
  /// below RadioOptions::materialize_threshold).
  bool materialized() const { return materialized_; }

  /// Nodes within communication range of `id` (excluding failed links is the
  /// caller's concern; this is the static neighborhood). Only valid in
  /// materialized mode — callers that must work at any scale use the
  /// scratch-buffer overload below.
  const std::vector<NodeId>& Neighbors(NodeId id) const {
    SENSJOIN_DCHECK(materialized_);
    return neighbors_[id];
  }

  /// Fills `out` with the static neighborhood of `id`, ascending. Works in
  /// both modes: materialized mode copies the precomputed list, on-demand
  /// mode scans the 3x3 grid cells around the node. The two modes produce
  /// identical output (regression-tested).
  void Neighbors(NodeId id, std::vector<NodeId>& out) const;

  /// True if a and b are within range of each other and the link is not
  /// currently failed.
  bool LinkUp(NodeId a, NodeId b) const;

  /// True if a and b are within range (ignoring failures). Materialized
  /// mode binary-searches the sorted neighbor list (no sqrt); on-demand
  /// mode falls back to the distance computation.
  bool InRange(NodeId a, NodeId b) const;

  /// True when any probabilistic fault axis is configured (nonzero default
  /// loss / corruption / duplication rate, or any per-link override
  /// present). The windowed engine uses this as a conservative gate: rates
  /// all zero means transmissions draw no fault randomness at all.
  bool AnyFaultRatesConfigured() const {
    return default_loss_rate_ > 0.0 || default_corruption_rate_ > 0.0 ||
           default_duplication_rate_ > 0.0 || !link_loss_.empty() ||
           !link_corruption_.empty() || !link_duplication_.empty();
  }

  /// Marks the (bidirectional) link between a and b as down / up again.
  /// Out-of-range node ids and self-links (a == b) are ignored.
  void FailLink(NodeId a, NodeId b);
  void RestoreLink(NodeId a, NodeId b);
  void RestoreAllLinks() { failed_links_.clear(); }
  size_t num_failed_links() const { return failed_links_.size(); }

  /// Called after every effective FailLink (`up == false`) / RestoreLink
  /// (`up == true`) on a valid link. Used by the simulator to surface link
  /// churn into the observability trace; empty function to disable.
  using LinkObserver = std::function<void(NodeId a, NodeId b, bool up)>;
  void set_link_observer(LinkObserver observer) {
    link_observer_ = std::move(observer);
  }

  // --- Transient link outages --------------------------------------------
  // An outage is a temporary blackout of a (bidirectional) link, distinct
  // from FailLink: it does not change LinkUp — and therefore never changes
  // which routing tree a beaconing round builds — and the simulator applies
  // it only to message kinds that are also subject to loss, so beacons,
  // query floods and repair traffic pass through (exactly like the loss and
  // corruption models). Scheduled windows come from
  // sim::LinkOutageWindow via Simulator::ScheduleLinkOutage.

  /// Marks the link a-b as in (down == true) or out of (down == false) an
  /// outage. Invalid links are ignored; the link observer fires on every
  /// effective change.
  void SetLinkOutage(NodeId a, NodeId b, bool down);

  /// True while the link a-b is inside a scheduled outage window.
  bool OutageActive(NodeId a, NodeId b) const;

  size_t num_outage_links() const { return outage_links_.size(); }
  void ClearOutages() { outage_links_.clear(); }

  // --- Probabilistic per-link packet loss --------------------------------
  // A loss rate is the probability that one link-layer fragment is dropped
  // on its way over the link; the simulator rolls the dice (seeded) per
  // transmitted fragment. 0 everywhere by default, so the fault-free
  // experiments are unaffected.

  /// Loss rate applied to every link without an explicit override.
  /// Clamped to [0, 1].
  void set_default_loss_rate(double p);
  double default_loss_rate() const { return default_loss_rate_; }

  /// Sets the loss rate of the (bidirectional) link a-b, overriding the
  /// default. Invalid ids and self-links are ignored.
  void SetLinkLossRate(NodeId a, NodeId b, double p);

  /// Drops all per-link overrides and resets the default rate to 0.
  void ClearLossRates();

  /// Effective loss rate of the link a-b (override if set, else default);
  /// 0 for invalid links.
  double LossRate(NodeId a, NodeId b) const;

  // --- Probabilistic per-link payload corruption -------------------------
  // A corruption rate is the probability that one link-layer fragment
  // arrives with damaged payload bits (bit flips or truncation) instead of
  // being dropped outright. The simulator rolls per fragment that survives
  // the loss roll; 0 everywhere by default, so corruption-free runs draw no
  // extra randomness and stay bit-identical.

  /// Corruption rate applied to every link without an explicit override.
  /// Clamped to [0, 1].
  void set_default_corruption_rate(double p);
  double default_corruption_rate() const { return default_corruption_rate_; }

  /// Sets the corruption rate of the (bidirectional) link a-b, overriding
  /// the default. Invalid ids and self-links are ignored.
  void SetLinkCorruptionRate(NodeId a, NodeId b, double p);

  /// Drops all per-link overrides and resets the default rate to 0.
  void ClearCorruptionRates();

  /// Effective corruption rate of the link a-b (override if set, else
  /// default); 0 for invalid links.
  double CorruptionRate(NodeId a, NodeId b) const;

  // --- Probabilistic per-link message duplication ------------------------
  // A duplication rate is the probability that one delivered logical
  // unicast is heard a second time (the 802.15.4 lost-ack race). The
  // simulator rolls once per delivered message, strictly after the loss and
  // corruption rolls; 0 everywhere by default, so plans without duplication
  // draw no extra randomness and stay bit-identical.

  /// Duplication rate applied to every link without an explicit override.
  /// Clamped to [0, 1].
  void set_default_duplication_rate(double p);
  double default_duplication_rate() const { return default_duplication_rate_; }

  /// Sets the duplication rate of the (bidirectional) link a-b, overriding
  /// the default. Invalid ids and self-links are ignored.
  void SetLinkDuplicationRate(NodeId a, NodeId b, double p);

  /// Drops all per-link overrides and resets the default rate to 0.
  void ClearDuplicationRates();

  /// Effective duplication rate of the link a-b (override if set, else
  /// default); 0 for invalid links.
  double DuplicationRate(NodeId a, NodeId b) const;

  /// True if every node can reach `root` over up links.
  bool IsConnected(NodeId root) const;

 private:
  uint64_t LinkKey(NodeId a, NodeId b) const;
  bool ValidLink(NodeId a, NodeId b) const {
    return a != b && a >= 0 && b >= 0 && a < num_nodes() && b < num_nodes();
  }
  int64_t CellKey(const Point& p) const;

  std::vector<Point> positions_;
  double range_m_;
  bool materialized_ = true;
  std::vector<std::vector<NodeId>> neighbors_;  ///< materialized mode only
  /// On-demand mode: grid cells of side range_m, kept for neighbor scans.
  std::unordered_map<int64_t, std::vector<NodeId>> grid_;
  double grid_min_x_ = 0.0;
  double grid_min_y_ = 0.0;
  std::unordered_set<uint64_t> failed_links_;
  std::unordered_set<uint64_t> outage_links_;
  LinkObserver link_observer_;
  double default_loss_rate_ = 0.0;
  std::unordered_map<uint64_t, double> link_loss_;
  double default_corruption_rate_ = 0.0;
  std::unordered_map<uint64_t, double> link_corruption_;
  double default_duplication_rate_ = 0.0;
  std::unordered_map<uint64_t, double> link_duplication_;
};

}  // namespace sensjoin::sim

#endif  // SENSJOIN_SIM_RADIO_H_
