#ifndef SENSJOIN_SIM_FAULT_MODEL_H_
#define SENSJOIN_SIM_FAULT_MODEL_H_

#include <cstdint>
#include <vector>

#include "sensjoin/sim/time.h"

namespace sensjoin::sim {

class Simulator;

/// Link-layer automatic repeat request. Real WSN MACs (e.g. 802.15.4 with
/// macMaxFrameRetries) acknowledge unicast frames and retransmit a bounded
/// number of times with backoff; the retransmissions are real energy spent
/// and must appear in the accounting (cf. Buragohain et al., power-aware
/// routing for sensor databases). Disabled by default so the fault-free
/// paper experiments are bit-identical to the seed.
struct ArqParams {
  bool enabled = false;

  /// Retransmissions per data fragment beyond the initial attempt. A
  /// fragment that is still unacknowledged afterwards makes the whole
  /// logical message undeliverable (the sender gives up, upper layers
  /// recover).
  int max_retransmissions = 3;

  /// Backoff before the first retransmission; each further retransmission
  /// multiplies the wait by `backoff_factor` (exponential backoff).
  double backoff_base_s = 0.008;
  double backoff_factor = 2.0;

  /// Wire size of an acknowledgement frame (header-only packet).
  int ack_bytes = 8;
};

/// Loss-rate override for one (bidirectional) link.
struct LinkLossOverride {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double loss_rate = 0.0;
};

/// Corruption-rate override for one (bidirectional) link.
struct LinkCorruptionOverride {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double corruption_rate = 0.0;
};

/// Duplication-rate override for one (bidirectional) link.
struct LinkDuplicationOverride {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double duplication_rate = 0.0;
};

/// Per-message delivery-delay jitter: every delivered loss-eligible message
/// gets extra latency drawn uniformly from [min_jitter_s, max_jitter_s]
/// (seeded). With a spread wider than the per-packet airtime, a later send
/// can overtake an earlier one through the event queue, which is exactly
/// the reordering the exactly-once layer must tolerate. Disabled (all
/// zeros) by default so fault-free runs draw no extra randomness.
struct DelayParams {
  double min_jitter_s = 0.0;
  double max_jitter_s = 0.0;

  bool enabled() const { return max_jitter_s > 0.0; }
};

/// The per-fragment integrity layer: every data fragment carries a CRC-16
/// trailer (the 802.15.4 FCS analog; common/crc16.h), so a receiver detects
/// a corrupted payload and silently drops the fragment — from the sender's
/// point of view, a detected corruption is exactly a loss, and it feeds the
/// same ARQ retransmissions and phase-level recovery. The trailer bytes and
/// the retransmissions that corruption triggers are charged in the energy
/// model and itemized in CostReport. With `crc_enabled == false` (the
/// ablation knob) corrupted fragments are accepted and the damaged payload
/// reaches the application decoders.
struct IntegrityParams {
  bool crc_enabled = true;

  /// Wire size of the per-fragment CRC trailer. CRC-16 is the WSN-typical
  /// choice (TinyOS/802.15.4 frames); a detected corruption escapes only
  /// with probability 2^-16, which the simulator rounds to zero.
  int crc_bytes = 2;

  /// Fraction of corruption events that truncate the payload instead of
  /// flipping bits (radios lose frame tails on late symbol-sync errors).
  double truncation_fraction = 0.25;
};

/// A scheduled transient outage of one (bidirectional) link: the link goes
/// dark at `down_at` and comes back at `up_at`. Unlike FailLink, an outage
/// affects only message kinds that are also subject to loss — beacons,
/// query floods and repair traffic are exempt, so a fault plan never
/// changes which routing tree gets built, but in-flight join traffic sees a
/// link that is down now and up again later (the scenario in-network tree
/// repair must survive without a full re-execution).
struct LinkOutageWindow {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  SimTime down_at = 0;
  SimTime up_at = 0;
};

/// A scheduled liveness change, fired through the simulator's event queue:
/// at `at`, the node crashes (recover == false) or reboots (recover ==
/// true). A rebooted node keeps its identity and sensor data but needs a
/// routing-tree rebuild to rejoin the collection tree.
struct CrashEvent {
  NodeId node = kInvalidNode;
  SimTime at = 0;
  bool recover = false;
};

/// A declarative fault scenario: ambient packet loss, per-link overrides
/// and node churn, all reproducible under `seed`. Apply with
/// ApplyFaultPlan before executing queries.
struct FaultPlan {
  /// Per-fragment loss probability on every link without an override.
  double default_loss_rate = 0.0;

  std::vector<LinkLossOverride> link_overrides;
  std::vector<CrashEvent> crash_events;

  /// Transient link blackout windows, fired through the event queue.
  std::vector<LinkOutageWindow> link_outages;

  /// Per-fragment corruption probability (bit flips / truncation) on every
  /// link without an override, rolled for fragments that survive the loss
  /// roll. Like loss, zero-corruption runs draw no randomness, so they stay
  /// bit-identical to the seed; beacons and query floods are exempt.
  double default_corruption_rate = 0.0;
  std::vector<LinkCorruptionOverride> corruption_overrides;

  /// Per-message duplication probability: a delivered logical unicast is
  /// heard (and processed) a second time after a seeded extra delay — the
  /// 802.15.4 ack-race phenomenon promoted from a cost artifact to an
  /// actual second delivery. Rolled strictly after the loss/corruption/ack
  /// rolls, so plans without duplication consume exactly the seed's RNG
  /// stream; beacons, query floods and repair traffic are exempt (like
  /// loss). Duplicate receptions are energy-charged and itemized
  /// (CostReport::duplicate_packets).
  double default_duplication_rate = 0.0;
  std::vector<LinkDuplicationOverride> duplication_overrides;

  /// Upper bound of the seeded extra delay before a duplicate delivery
  /// (drawn uniformly on top of one message airtime).
  double duplication_delay_s = 0.012;

  /// Per-message delivery-delay jitter (reordering); see DelayParams.
  DelayParams delay;

  /// Cross-attempt replay: when an executor aborts an attempt, logical
  /// messages still in flight are captured instead of vanishing and are
  /// re-delivered — stale tags and all — at the start of the next attempt,
  /// spaced `replay_stagger_s` apart (deterministic, no RNG). Off by
  /// default.
  bool enable_replay = false;
  double replay_stagger_s = 0.002;

  /// Link-layer ARQ policy to install on the simulator.
  ArqParams arq;

  /// Integrity layer for the corruption model. The CRC trailer is installed
  /// (and its bytes charged) only when the plan actually configures
  /// corruption, so corruption-free plans leave every frame — and thus
  /// packet counts, bytes and energy — bit-identical to the seed.
  IntegrityParams integrity;

  /// Seed of the drop-decision stream. Runs with equal plans (and equal
  /// protocol behavior) are exactly reproducible.
  uint64_t seed = 0x5EED5;

  /// True when any corruption rate (default or override) is non-zero.
  bool HasCorruption() const;

  /// True when any duplication rate (default or override) is non-zero.
  bool HasDuplication() const;
};

/// Installs `plan` on `sim`: sets loss rates on the radio, the ARQ policy
/// and drop seed on the simulator, and schedules every crash/recover event
/// through the simulator's event queue.
void ApplyFaultPlan(Simulator& sim, const FaultPlan& plan);

}  // namespace sensjoin::sim

#endif  // SENSJOIN_SIM_FAULT_MODEL_H_
