#include "sensjoin/sim/radio.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::sim {

namespace {
constexpr int64_t kCellHash = 1'000'003;
}  // namespace

Radio::Radio(std::vector<Point> positions, double range_m,
             RadioOptions options)
    : positions_(std::move(positions)), range_m_(range_m) {
  SENSJOIN_CHECK_GT(range_m_, 0.0);
  const int n = num_nodes();
  materialized_ = options.materialize_threshold < 0 ||
                  n <= options.materialize_threshold;
  // Grid-bucketed neighbor search: O(n) buckets of side `range_m`.
  if (n == 0) return;
  grid_min_x_ = positions_[0].x;
  grid_min_y_ = positions_[0].y;
  for (const Point& p : positions_) {
    grid_min_x_ = std::min(grid_min_x_, p.x);
    grid_min_y_ = std::min(grid_min_y_, p.y);
  }
  grid_.reserve(static_cast<size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    grid_[CellKey(positions_[i])].push_back(i);
  }
  if (!materialized_) return;  // on-demand mode keeps the grid instead
  neighbors_.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    Neighbors(i, neighbors_[i]);
  }
  grid_.clear();
}

int64_t Radio::CellKey(const Point& p) const {
  const int64_t cx = static_cast<int64_t>((p.x - grid_min_x_) / range_m_);
  const int64_t cy = static_cast<int64_t>((p.y - grid_min_y_) / range_m_);
  return cx * kCellHash + cy;
}

void Radio::Neighbors(NodeId id, std::vector<NodeId>& out) const {
  out.clear();
  if (materialized_ && grid_.empty()) {
    const std::vector<NodeId>& list = neighbors_[id];
    out.assign(list.begin(), list.end());
    return;
  }
  const Point& p = positions_[id];
  const int64_t cx = static_cast<int64_t>((p.x - grid_min_x_) / range_m_);
  const int64_t cy = static_cast<int64_t>((p.y - grid_min_y_) / range_m_);
  for (int64_t dx = -1; dx <= 1; ++dx) {
    for (int64_t dy = -1; dy <= 1; ++dy) {
      auto it = grid_.find((cx + dx) * kCellHash + (cy + dy));
      if (it == grid_.end()) continue;
      for (NodeId j : it->second) {
        if (j != id && Distance(p, positions_[j]) <= range_m_) {
          out.push_back(j);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
}

uint64_t Radio::LinkKey(NodeId a, NodeId b) const {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

bool Radio::InRange(NodeId a, NodeId b) const {
  if (a == b) return false;
  if (materialized_) {
    // The neighbor list of `a` is exactly the sorted set of in-range nodes:
    // a binary search replaces the sqrt of the distance computation.
    const std::vector<NodeId>& list = neighbors_[a];
    return std::binary_search(list.begin(), list.end(), b);
  }
  return Distance(positions_[a], positions_[b]) <= range_m_;
}

bool Radio::LinkUp(NodeId a, NodeId b) const {
  return InRange(a, b) && failed_links_.find(LinkKey(a, b)) == failed_links_.end();
}

void Radio::FailLink(NodeId a, NodeId b) {
  if (!ValidLink(a, b)) return;
  failed_links_.insert(LinkKey(a, b));
  if (link_observer_) link_observer_(a, b, /*up=*/false);
}

void Radio::RestoreLink(NodeId a, NodeId b) {
  if (!ValidLink(a, b)) return;
  failed_links_.erase(LinkKey(a, b));
  if (link_observer_) link_observer_(a, b, /*up=*/true);
}

void Radio::SetLinkOutage(NodeId a, NodeId b, bool down) {
  if (!ValidLink(a, b)) return;
  const uint64_t key = LinkKey(a, b);
  const bool changed =
      down ? outage_links_.insert(key).second : outage_links_.erase(key) > 0;
  if (changed && link_observer_) link_observer_(a, b, /*up=*/!down);
}

bool Radio::OutageActive(NodeId a, NodeId b) const {
  return ValidLink(a, b) &&
         outage_links_.find(LinkKey(a, b)) != outage_links_.end();
}

void Radio::set_default_loss_rate(double p) {
  default_loss_rate_ = std::clamp(p, 0.0, 1.0);
}

void Radio::SetLinkLossRate(NodeId a, NodeId b, double p) {
  if (!ValidLink(a, b)) return;
  link_loss_[LinkKey(a, b)] = std::clamp(p, 0.0, 1.0);
}

void Radio::ClearLossRates() {
  default_loss_rate_ = 0.0;
  link_loss_.clear();
}

double Radio::LossRate(NodeId a, NodeId b) const {
  if (!ValidLink(a, b)) return 0.0;
  auto it = link_loss_.find(LinkKey(a, b));
  return it != link_loss_.end() ? it->second : default_loss_rate_;
}

void Radio::set_default_corruption_rate(double p) {
  default_corruption_rate_ = std::clamp(p, 0.0, 1.0);
}

void Radio::SetLinkCorruptionRate(NodeId a, NodeId b, double p) {
  if (!ValidLink(a, b)) return;
  link_corruption_[LinkKey(a, b)] = std::clamp(p, 0.0, 1.0);
}

void Radio::ClearCorruptionRates() {
  default_corruption_rate_ = 0.0;
  link_corruption_.clear();
}

double Radio::CorruptionRate(NodeId a, NodeId b) const {
  if (!ValidLink(a, b)) return 0.0;
  auto it = link_corruption_.find(LinkKey(a, b));
  return it != link_corruption_.end() ? it->second : default_corruption_rate_;
}

void Radio::set_default_duplication_rate(double p) {
  default_duplication_rate_ = std::clamp(p, 0.0, 1.0);
}

void Radio::SetLinkDuplicationRate(NodeId a, NodeId b, double p) {
  if (!ValidLink(a, b)) return;
  link_duplication_[LinkKey(a, b)] = std::clamp(p, 0.0, 1.0);
}

void Radio::ClearDuplicationRates() {
  default_duplication_rate_ = 0.0;
  link_duplication_.clear();
}

double Radio::DuplicationRate(NodeId a, NodeId b) const {
  if (!ValidLink(a, b)) return 0.0;
  auto it = link_duplication_.find(LinkKey(a, b));
  return it != link_duplication_.end() ? it->second : default_duplication_rate_;
}

bool Radio::IsConnected(NodeId root) const {
  const int n = num_nodes();
  if (n == 0) return true;
  std::vector<char> seen(n, 0);
  std::queue<NodeId> frontier;
  std::vector<NodeId> scratch;
  frontier.push(root);
  seen[root] = 1;
  int count = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    const std::vector<NodeId>* nbrs;
    if (materialized_) {
      nbrs = &neighbors_[u];
    } else {
      Neighbors(u, scratch);
      nbrs = &scratch;
    }
    for (NodeId v : *nbrs) {
      if (!seen[v] && LinkUp(u, v)) {
        seen[v] = 1;
        ++count;
        frontier.push(v);
      }
    }
  }
  return count == n;
}

}  // namespace sensjoin::sim
