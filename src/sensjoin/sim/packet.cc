#include "sensjoin/sim/packet.h"

#include "sensjoin/common/logging.h"

namespace sensjoin::sim {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kBeacon:
      return "beacon";
    case MessageKind::kQuery:
      return "query";
    case MessageKind::kCollection:
      return "collection";
    case MessageKind::kFilter:
      return "filter";
    case MessageKind::kFinal:
      return "final";
    case MessageKind::kAppData:
      return "app_data";
    case MessageKind::kControl:
      return "control";
    case MessageKind::kRepair:
      return "repair";
    case MessageKind::kNumKinds:
      break;
  }
  return "unknown";
}

int NumFragments(size_t payload_bytes, const PacketizationParams& params) {
  const int capacity = params.payload_capacity();
  SENSJOIN_CHECK_GT(capacity, 0)
      << "packet header does not fit in max packet size";
  if (payload_bytes == 0) return 1;
  return static_cast<int>((payload_bytes + capacity - 1) / capacity);
}

}  // namespace sensjoin::sim
