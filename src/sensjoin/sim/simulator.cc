#include "sensjoin/sim/simulator.h"

#include <cmath>
#include <memory>
#include <utility>

#include "sensjoin/common/logging.h"
#include "sensjoin/obs/trace.h"
#include "sensjoin/sim/parallel_engine.h"

namespace sensjoin::sim {
namespace {

/// One test per instrumentation site; folds to `false` (and the recording
/// block to nothing) when built with SENSJOIN_TRACING=0.
inline bool Tracing(const obs::Tracer* tracer) {
  return obs::kTracingCompiledIn && tracer != nullptr && tracer->enabled();
}

/// obs::EventKind as the integer the TurnEffects op format carries.
constexpr uint16_t K(obs::EventKind kind) {
  return static_cast<uint16_t>(kind);
}

/// The calling thread's capture context. Thread-local so concurrent turns
/// of one simulator capture into disjoint logs; tagged with the simulator
/// so nested simulators (tests) never cross wires.
struct CaptureCtx {
  const Simulator* sim = nullptr;
  TurnEffects* fx = nullptr;
  int32_t partition = -1;
  const int32_t* part_of = nullptr;
};
thread_local CaptureCtx tls_capture;

}  // namespace

Simulator::Simulator(Radio radio, PacketizationParams packets,
                     EnergyModel energy)
    : radio_(std::move(radio)),
      packet_params_(packets),
      energy_model_(energy) {
  alive_.assign(radio_.num_nodes(), 1);
  stats_.resize(radio_.num_nodes());
}

Simulator::~Simulator() = default;

Simulator::ReceiveHandler Simulator::SetReceiveHandler(
    ReceiveHandler handler) {
  ReceiveHandler old = std::move(receive_handler_);
  receive_handler_ = std::move(handler);
  return old;
}

Simulator::TraceSink Simulator::SetTraceSink(TraceSink sink) {
  TraceSink old = std::move(trace_sink_);
  trace_sink_ = std::move(sink);
  return old;
}

// --- Windowed execution ----------------------------------------------------

void Simulator::ConfigureEngine(const EngineConfig& config) {
  engine_config_ = config;
  engine_ = std::make_unique<ParallelEngine>(*this, config);
}

ParallelEngine& Simulator::engine() {
  if (!engine_) {
    engine_ = std::make_unique<ParallelEngine>(*this, engine_config_);
  }
  return *engine_;
}

bool Simulator::WindowSafe() const {
  return !arq_params_.enabled && !delay_params_.enabled() &&
         !replay_enabled_ && !fault_events_scheduled_ && dead_nodes_ == 0 &&
         radio_.num_failed_links() == 0 && radio_.num_outage_links() == 0 &&
         !radio_.AnyFaultRatesConfigured() && !trace_sink_;
}

void Simulator::BeginTurnCapture(TurnEffects* fx, int32_t partition,
                                 const int32_t* part_of) {
  SENSJOIN_CHECK(tls_capture.fx == nullptr)
      << "nested turn capture on one thread";
  tls_capture = CaptureCtx{this, fx, partition, part_of};
}

void Simulator::EndTurnCapture() { tls_capture = CaptureCtx{}; }

bool Simulator::capturing() const {
  return tls_capture.sim == this && tls_capture.fx != nullptr;
}

bool Simulator::CaptureCall(std::function<void()> fn) {
  if (!capturing()) return false;
  TurnEffects::Op& op = tls_capture.fx->Push(TurnEffects::Op::Kind::kCall);
  op.call = std::move(fn);
  return true;
}

void Simulator::GAdd(uint64_t& counter, uint64_t delta) {
  if (capturing()) {
    TurnEffects::Op& op =
        tls_capture.fx->Push(TurnEffects::Op::Kind::kAddU64);
    op.u64_target = &counter;
    op.u64 = delta;
    return;
  }
  counter += delta;
}

void Simulator::GAdd(double& counter, double delta) {
  if (capturing()) {
    TurnEffects::Op& op =
        tls_capture.fx->Push(TurnEffects::Op::Kind::kAddF64);
    op.f64_target = &counter;
    op.f64 = delta;
    return;
  }
  counter += delta;
}

void Simulator::TRecord(uint16_t trace_kind, NodeId node, NodeId peer,
                        MessageKind msg_kind, uint32_t count, uint64_t bytes,
                        double energy_mj, uint32_t detail) {
  if (capturing()) {
    TurnEffects::Op& op =
        tls_capture.fx->Push(TurnEffects::Op::Kind::kTrace);
    op.trace_kind = trace_kind;
    op.msg_kind = static_cast<uint16_t>(msg_kind);
    op.time = events_.now();
    op.node = node;
    op.peer = peer;
    op.count = count;
    op.u64 = bytes;
    op.f64 = energy_mj;
    op.detail = detail;
    return;
  }
  tracer_->Record(static_cast<obs::EventKind>(trace_kind), events_.now(),
                  node, peer, msg_kind, count, bytes, energy_mj, detail);
}

void Simulator::TObserveMessage(size_t payload_bytes, int fragments) {
  if (capturing()) {
    TurnEffects::Op& op =
        tls_capture.fx->Push(TurnEffects::Op::Kind::kObsMessage);
    op.u64 = payload_bytes;
    op.count = static_cast<uint32_t>(fragments);
    return;
  }
  tracer_->ObserveMessage(payload_bytes, fragments);
}

void Simulator::TObserveHopLatency(double seconds) {
  if (capturing()) {
    TurnEffects::Op& op =
        tls_capture.fx->Push(TurnEffects::Op::Kind::kObsHopLatency);
    op.f64 = seconds;
    return;
  }
  tracer_->ObserveHopLatency(seconds);
}

void Simulator::TObserveRetransmits(int retransmissions) {
  if (capturing()) {
    TurnEffects::Op& op =
        tls_capture.fx->Push(TurnEffects::Op::Kind::kObsRetransmits);
    op.count = static_cast<uint32_t>(retransmissions);
    return;
  }
  tracer_->ObserveRetransmits(retransmissions);
}

void Simulator::CommitTurnEffects(TurnEffects& fx) {
  SENSJOIN_CHECK(!capturing());
  using Kind = TurnEffects::Op::Kind;
  for (TurnEffects::Op& op : fx.ops_) {
    switch (op.kind) {
      case Kind::kAddU64:
        *op.u64_target += op.u64;
        break;
      case Kind::kAddF64:
        *op.f64_target += op.f64;
        break;
      case Kind::kTrace:
        if (Tracing(tracer_)) {
          tracer_->Record(static_cast<obs::EventKind>(op.trace_kind), op.time,
                          op.node, op.peer,
                          static_cast<MessageKind>(op.msg_kind), op.count,
                          op.u64, op.f64, op.detail);
        }
        break;
      case Kind::kObsMessage:
        if (Tracing(tracer_)) {
          tracer_->ObserveMessage(op.u64, static_cast<int>(op.count));
        }
        break;
      case Kind::kObsHopLatency:
        if (Tracing(tracer_)) tracer_->ObserveHopLatency(op.f64);
        break;
      case Kind::kObsRetransmits:
        if (Tracing(tracer_)) {
          tracer_->ObserveRetransmits(static_cast<int>(op.count));
        }
        break;
      case Kind::kScheduleUnicast:
        ScheduleDelivery(std::move(op.msg), op.delay);
        break;
      case Kind::kScheduleBroadcast:
        ScheduleBroadcastRx(std::move(op.shared), op.node, op.delay);
        break;
      case Kind::kCall:
        op.call();
        break;
    }
  }
  fx.Clear();
}

// --- Accounting ------------------------------------------------------------

double Simulator::AccountTx(NodeId sender, MessageKind kind, int fragments,
                            size_t frame_bytes) {
  NodeStats& s = stats_[sender];
  GAdd(s.packets_sent, static_cast<uint64_t>(fragments));
  GAdd(s.bytes_sent, frame_bytes);
  GAdd(s.packets_sent_by_kind[static_cast<size_t>(kind)],
       static_cast<uint64_t>(fragments));
  const double cost = energy_model_.TxCost(fragments, frame_bytes);
  GAdd(s.energy_mj, cost);
  GAdd(total_packets_sent_, static_cast<uint64_t>(fragments));
  GAdd(total_bytes_sent_, frame_bytes);
  GAdd(total_energy_mj_, cost);
  GAdd(packets_by_kind_[static_cast<size_t>(kind)],
       static_cast<uint64_t>(fragments));
  if (kind == MessageKind::kRepair) {
    GAdd(repair_bytes_sent_, frame_bytes);
    GAdd(repair_energy_mj_, cost);
  }
  return cost;
}

double Simulator::AccountRx(NodeId receiver, MessageKind kind, int fragments,
                            size_t frame_bytes) {
  NodeStats& s = stats_[receiver];
  GAdd(s.packets_received, static_cast<uint64_t>(fragments));
  GAdd(s.bytes_received, frame_bytes);
  const double cost = energy_model_.RxCost(fragments, frame_bytes);
  GAdd(s.energy_mj, cost);
  GAdd(total_energy_mj_, cost);
  if (kind == MessageKind::kRepair) GAdd(repair_energy_mj_, cost);
  return cost;
}

void Simulator::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer == nullptr) {
    radio_.set_link_observer(nullptr);
    return;
  }
  radio_.set_link_observer([this](NodeId a, NodeId b, bool up) {
    if (!Tracing(tracer_)) return;
    tracer_->Record(up ? obs::EventKind::kLinkUp : obs::EventKind::kLinkDown,
                    events_.now(), a, b, MessageKind::kNumKinds, /*count=*/1,
                    /*bytes=*/0, /*energy_mj=*/0.0);
  });
}

bool Simulator::SendUnicast(Message msg, bool* corrupted) {
  SENSJOIN_CHECK(msg.src >= 0 && msg.src < num_nodes());
  SENSJOIN_CHECK(msg.dst >= 0 && msg.dst < num_nodes());
  if (corrupted) *corrupted = false;
  if (!alive(msg.src)) return false;
  const int fragments = NumFragments(msg.payload_bytes, packet_params_);
  const bool crc_active =
      integrity_params_.crc_enabled && LossApplies(msg.kind);
  const size_t trailer_bytes =
      crc_active ? static_cast<size_t>(fragments) * integrity_params_.crc_bytes
                 : 0;
  const size_t frame_bytes =
      msg.payload_bytes +
      static_cast<size_t>(fragments) * packet_params_.header_bytes +
      trailer_bytes;
  const size_t avg_frame_bytes = frame_bytes / fragments;
  const bool link_ok =
      alive(msg.dst) && radio_.LinkUp(msg.src, msg.dst) &&
      !(LossApplies(msg.kind) && radio_.OutageActive(msg.src, msg.dst));
  const double loss =
      LossApplies(msg.kind) ? radio_.LossRate(msg.src, msg.dst) : 0.0;
  const double corrupt =
      LossApplies(msg.kind) ? radio_.CorruptionRate(msg.src, msg.dst) : 0.0;
  // A captured turn must be a pure function of its inputs: the WindowSafe
  // gate guarantees no fault randomness and no failed deliveries, and this
  // check catches any drift between the gate and the send path.
  SENSJOIN_CHECK(!capturing() ||
                 (link_ok && loss == 0.0 && corrupt == 0.0 &&
                  !arq_params_.enabled && !delay_params_.enabled() &&
                  !replay_enabled_))
      << "windowed turn hit a non-window-safe unicast";

  // Per-fragment link-layer simulation: one initial attempt and, with ARQ
  // enabled, up to max_retransmissions more with exponential backoff. An
  // ack can be lost like any frame; the sender then retransmits and the
  // receiver sees (and pays for) a duplicate. Corruption is rolled only for
  // fragments that physically arrive: with the CRC trailer the receiver
  // detects the damage, drops the frame and sends no ack (to the sender
  // this attempt is exactly a loss); without it the damaged frame is
  // accepted and acked.
  const int attempts_allowed =
      1 + (arq_params_.enabled ? arq_params_.max_retransmissions : 0);
  int tx_fragments = 0;
  int rx_fragments = 0;
  int retransmissions = 0;
  int integrity_retransmissions = 0;
  int detected_fragments = 0;
  int undetected_fragments = 0;
  int arq_duplicate_fragments = 0;
  int acks = 0;
  double backoff_s = 0.0;
  bool delivered = true;
  bool payload_corrupted = false;
  for (int f = 0; f < fragments; ++f) {
    bool got = false;
    bool prev_crc_reject = false;
    for (int a = 0; a < attempts_allowed; ++a) {
      ++tx_fragments;
      if (a > 0) {
        ++retransmissions;
        if (prev_crc_reject) ++integrity_retransmissions;
        backoff_s += arq_params_.backoff_base_s *
                     std::pow(arq_params_.backoff_factor, a - 1);
      }
      prev_crc_reject = false;
      const bool frag_arrives =
          link_ok && !(loss > 0.0 && fault_rng_.NextBool(loss));
      if (frag_arrives) ++rx_fragments;  // the receiver heard the frame
      const bool frag_corrupt =
          frag_arrives && corrupt > 0.0 && fault_rng_.NextBool(corrupt);
      if (frag_corrupt) {
        GAdd(stats_[msg.dst].corrupted_packets_received, 1);
        if (crc_active) {
          ++detected_fragments;
          prev_crc_reject = true;
          if (!arq_params_.enabled) break;
          continue;  // dropped by the receiver; retry like a loss
        }
        ++undetected_fragments;
        payload_corrupted = true;
      }
      if (frag_arrives) {
        // An arrival of a fragment the receiver had already accepted means
        // the previous ack was lost and the retransmission raced it: the
        // receiver pays for a duplicate (itemized below).
        if (got) ++arq_duplicate_fragments;
        got = true;
      }
      if (!arq_params_.enabled) break;
      if (frag_arrives) {
        ++acks;
        const bool ack_arrives = !(loss > 0.0 && fault_rng_.NextBool(loss));
        if (ack_arrives) break;
      }
    }
    if (!got) delivered = false;
  }

  const size_t extra_bytes =
      static_cast<size_t>(tx_fragments - fragments) * avg_frame_bytes;
  const double tx_cost =
      AccountTx(msg.src, msg.kind, tx_fragments, frame_bytes + extra_bytes);
  if (retransmissions > 0) {
    GAdd(stats_[msg.src].packets_retransmitted,
         static_cast<uint64_t>(retransmissions));
    GAdd(total_packets_retransmitted_,
         static_cast<uint64_t>(retransmissions));
    GAdd(retransmit_energy_mj_,
         energy_model_.TxCost(retransmissions, extra_bytes));
  }
  if (integrity_retransmissions > 0) {
    GAdd(integrity_retransmit_energy_mj_,
         energy_model_.TxCost(
             integrity_retransmissions,
             static_cast<size_t>(integrity_retransmissions) *
                 avg_frame_bytes));
  }
  GAdd(total_corrupted_packets_, static_cast<uint64_t>(detected_fragments));
  GAdd(total_undetected_corrupted_packets_,
       static_cast<uint64_t>(undetected_fragments));
  if (arq_duplicate_fragments > 0) {
    // Already charged through rx_fragments; surfaced here so the cost
    // reports can itemize what the lost acks cost the receiver.
    GAdd(stats_[msg.dst].duplicate_packets_received,
         static_cast<uint64_t>(arq_duplicate_fragments));
    GAdd(total_duplicate_packets_,
         static_cast<uint64_t>(arq_duplicate_fragments));
  }
  if (crc_active) {
    const size_t tx_crc =
        static_cast<size_t>(tx_fragments) * integrity_params_.crc_bytes;
    const size_t rx_crc =
        static_cast<size_t>(rx_fragments) * integrity_params_.crc_bytes;
    GAdd(crc_bytes_sent_, tx_crc);
    GAdd(crc_energy_mj_,
         energy_model_.TxCost(0, tx_crc) + energy_model_.RxCost(0, rx_crc));
  }
  size_t ack_bytes = 0;
  double ack_tx = 0.0;
  double ack_rx = 0.0;
  if (acks > 0) {
    // Acks travel receiver -> sender; header-only frames, kept out of the
    // packet metric but charged in full (tx at the receiver, rx at the
    // sender).
    ack_bytes = static_cast<size_t>(acks) * arq_params_.ack_bytes;
    ack_tx = energy_model_.TxCost(acks, ack_bytes);
    ack_rx = energy_model_.RxCost(acks, ack_bytes);
    GAdd(stats_[msg.dst].ack_packets_sent, static_cast<uint64_t>(acks));
    GAdd(stats_[msg.dst].energy_mj, ack_tx);
    GAdd(stats_[msg.src].energy_mj, ack_rx);
    GAdd(total_ack_packets_, static_cast<uint64_t>(acks));
    GAdd(total_energy_mj_, ack_tx + ack_rx);
    GAdd(ack_energy_mj_, ack_tx + ack_rx);
  }
  size_t rx_bytes = 0;
  double rx_cost = 0.0;
  if (rx_fragments > 0) {
    rx_bytes = rx_fragments == fragments
                   ? frame_bytes
                   : static_cast<size_t>(rx_fragments) * avg_frame_bytes;
    rx_cost = AccountRx(msg.dst, msg.kind, rx_fragments, rx_bytes);
  }
  if (Tracing(tracer_)) {
    using obs::EventKind;
    // kFragTx carries the sender's whole tx debit (incl. retransmissions
    // and CRC trailers); ack and rx events carry theirs. Itemization events
    // (retransmit, loss, corrupt, drop) carry no energy — summing every
    // event's energy reproduces the simulator's total exactly once.
    TRecord(K(EventKind::kFragTx), msg.src, msg.dst, msg.kind,
            static_cast<uint32_t>(tx_fragments), frame_bytes + extra_bytes,
            tx_cost);
    if (retransmissions > 0) {
      TRecord(K(EventKind::kRetransmit), msg.src, msg.dst, msg.kind,
              static_cast<uint32_t>(retransmissions), extra_bytes, 0.0,
              static_cast<uint32_t>(integrity_retransmissions));
    }
    if (tx_fragments > rx_fragments) {
      TRecord(K(EventKind::kFragLoss), msg.dst, msg.src, msg.kind,
              static_cast<uint32_t>(tx_fragments - rx_fragments), 0, 0.0);
    }
    if (detected_fragments + undetected_fragments > 0) {
      TRecord(K(EventKind::kFragCorrupt), msg.dst, msg.src, msg.kind,
              static_cast<uint32_t>(detected_fragments + undetected_fragments),
              0, 0.0, static_cast<uint32_t>(detected_fragments));
    }
    if (acks > 0) {
      TRecord(K(EventKind::kAckTx), msg.dst, msg.src, msg.kind,
              static_cast<uint32_t>(acks), ack_bytes, ack_tx);
      TRecord(K(EventKind::kAckRx), msg.src, msg.dst, msg.kind,
              static_cast<uint32_t>(acks), ack_bytes, ack_rx);
    }
    if (rx_fragments > 0) {
      TRecord(K(EventKind::kFragRx), msg.dst, msg.src, msg.kind,
              static_cast<uint32_t>(rx_fragments), rx_bytes, rx_cost);
    }
    if (arq_duplicate_fragments > 0) {
      // Ack-lost duplicates: already paid inside kFragRx, so this record
      // carries no energy (detail == 0 marks the ARQ flavor).
      TRecord(K(EventKind::kDuplicateRx), msg.dst, msg.src, msg.kind,
              static_cast<uint32_t>(arq_duplicate_fragments), 0, 0.0,
              /*detail=*/0);
    }
    if (!delivered) {
      TRecord(K(EventKind::kMessageDrop), msg.src, msg.dst, msg.kind,
              static_cast<uint32_t>(fragments), msg.payload_bytes, 0.0);
    }
    TObserveMessage(msg.payload_bytes, fragments);
    if (arq_params_.enabled) TObserveRetransmits(retransmissions);
  }
  if (trace_sink_) {
    trace_sink_(TraceRecord{events_.now(), msg.src, msg.dst, msg.kind,
                            fragments, msg.payload_bytes,
                            /*broadcast=*/false, delivered, retransmissions,
                            detected_fragments + undetected_fragments});
  }
  if (!delivered) return false;
  if (corrupted) *corrupted = payload_corrupted;
  const SimTime delay = tx_fragments * per_packet_latency_s_ + backoff_s;

  // Duplication and jitter rolls come strictly after the per-fragment
  // loss/corruption/ack rolls above, and only for non-zero rates, so fault
  // plans without the new axes consume exactly the seed's RNG stream.
  const double dup_rate =
      LossApplies(msg.kind) ? radio_.DuplicationRate(msg.src, msg.dst) : 0.0;
  const bool duplicated = dup_rate > 0.0 && fault_rng_.NextBool(dup_rate);
  SimTime dup_extra_s = 0.0;
  if (duplicated) {
    dup_extra_s = fragments * per_packet_latency_s_ +
                  fault_rng_.UniformDouble(0.0, duplication_delay_s_);
  }
  SimTime jitter_s = 0.0;
  if (delay_params_.enabled() && LossApplies(msg.kind)) {
    jitter_s = fault_rng_.UniformDouble(delay_params_.min_jitter_s,
                                        delay_params_.max_jitter_s);
  }
  if (duplicated) {
    // The receiver hears — and the delivery path processes — the whole
    // message a second time. The rx side is charged and itemized; the tx
    // side was already paid by the retransmission that raced its ack.
    const double dup_rx_cost =
        AccountRx(msg.dst, msg.kind, fragments, frame_bytes);
    GAdd(stats_[msg.dst].duplicate_packets_received,
         static_cast<uint64_t>(fragments));
    GAdd(total_duplicate_packets_, static_cast<uint64_t>(fragments));
    GAdd(duplicate_energy_mj_, dup_rx_cost);
    if (Tracing(tracer_)) {
      TRecord(K(obs::EventKind::kDuplicateRx), msg.dst, msg.src, msg.kind,
              static_cast<uint32_t>(fragments), frame_bytes, dup_rx_cost,
              /*detail=*/1);
    }
  }
  if (Tracing(tracer_)) TObserveHopLatency(delay + jitter_s);
  Message dup_msg;
  if (duplicated) dup_msg = msg;  // copy before the original moves away
  ScheduleDelivery(std::move(msg), delay + jitter_s);
  if (duplicated) {
    ScheduleDelivery(std::move(dup_msg), delay + jitter_s + dup_extra_s);
  }
  return true;
}

void Simulator::ScheduleDelivery(Message msg, SimTime delay) {
  if (capturing()) {
    TurnEffects::Op& op =
        tls_capture.fx->Push(TurnEffects::Op::Kind::kScheduleUnicast);
    op.msg = std::move(msg);
    op.delay = delay;
    return;
  }
  if (replay_enabled_ && LossApplies(msg.kind)) {
    const uint64_t id = next_delivery_id_++;
    PendingDelivery& pending =
        inflight_.emplace(id, PendingDelivery{std::move(msg), 0})
            .first->second;
    pending.event = events_.ScheduleAfter(delay, [this, id]() {
      auto it = inflight_.find(id);
      if (it == inflight_.end()) return;
      const Message msg = std::move(it->second.msg);
      inflight_.erase(it);
      if (receive_handler_) receive_handler_(msg.dst, msg);
    });
    return;
  }
  // Steady-state zero-allocation path: the message parks in a recycled
  // arena slot and the closure captures {this, slot} — small enough for the
  // std::function small-buffer optimization.
  Message* slot = unicast_slots_.Create(std::move(msg));
  events_.ScheduleAfter(delay, [this, slot]() {
    if (receive_handler_) receive_handler_(slot->dst, *slot);
    unicast_slots_.Destroy(slot);
  });
}

void Simulator::ScheduleBroadcastRx(std::shared_ptr<const Message> msg,
                                    NodeId receiver, SimTime delay) {
  if (capturing()) {
    TurnEffects::Op& op =
        tls_capture.fx->Push(TurnEffects::Op::Kind::kScheduleBroadcast);
    op.shared = std::move(msg);
    op.node = receiver;
    op.delay = delay;
    return;
  }
  BroadcastRx* slot =
      broadcast_slots_.Create(BroadcastRx{std::move(msg), receiver});
  events_.ScheduleAfter(delay, [this, slot]() {
    if (receive_handler_) receive_handler_(slot->receiver, *slot->msg);
    broadcast_slots_.Destroy(slot);
  });
}

void Simulator::NotifyAttemptAbort() {
  if (inflight_.empty()) return;
  // std::map iteration releases the deliveries in scheduling order, so the
  // replay buffer — and everything downstream — is deterministic.
  for (auto& [id, pending] : inflight_) {
    events_.Cancel(pending.event);
    replay_buffer_.push_back(std::move(pending.msg));
  }
  inflight_.clear();
}

int Simulator::ReleaseReplays() {
  if (replay_buffer_.empty()) return 0;
  std::vector<Message> captured;
  captured.swap(replay_buffer_);
  int released = 0;
  for (Message& msg : captured) {
    if (!alive(msg.dst) || !radio_.LinkUp(msg.src, msg.dst)) continue;
    const int fragments = NumFragments(msg.payload_bytes, packet_params_);
    const bool crc_active =
        integrity_params_.crc_enabled && LossApplies(msg.kind);
    const size_t frame_bytes =
        msg.payload_bytes +
        static_cast<size_t>(fragments) *
            (packet_params_.header_bytes +
             (crc_active ? integrity_params_.crc_bytes : 0));
    // The receiver's radio hears the stale frames again; the rx side is
    // charged and itemized. The sender pays nothing — these frames were
    // transmitted (and paid for) during the aborted attempt.
    const double rx_cost = AccountRx(msg.dst, msg.kind, fragments, frame_bytes);
    stats_[msg.dst].replayed_packets_received += fragments;
    total_replayed_packets_ += fragments;
    replay_energy_mj_ += rx_cost;
    if (Tracing(tracer_)) {
      tracer_->Record(obs::EventKind::kReplayRx, events_.now(), msg.dst,
                      msg.src, msg.kind, static_cast<uint32_t>(fragments),
                      frame_bytes, rx_cost);
    }
    ++released;
    ScheduleDelivery(std::move(msg), released * replay_stagger_s_);
  }
  return released;
}

int Simulator::Broadcast(Message msg, std::vector<NodeId>* delivered,
                         std::vector<NodeId>* corrupted) {
  SENSJOIN_CHECK(msg.src >= 0 && msg.src < num_nodes());
  if (delivered) delivered->clear();
  if (corrupted) corrupted->clear();
  if (!alive(msg.src)) return 0;
  // All receivers share one immutable copy of the message instead of a
  // per-receiver Message (and std::any payload) clone. Handlers identify
  // themselves by the receiver argument, never by msg.dst, which stays
  // kInvalidNode for local broadcasts.
  const auto shared = std::make_shared<const Message>(std::move(msg));
  const Message& bmsg = *shared;
  const int fragments = NumFragments(bmsg.payload_bytes, packet_params_);
  const bool crc_active =
      integrity_params_.crc_enabled && LossApplies(bmsg.kind);
  const size_t trailer_bytes =
      crc_active ? static_cast<size_t>(fragments) * integrity_params_.crc_bytes
                 : 0;
  const size_t frame_bytes =
      bmsg.payload_bytes +
      static_cast<size_t>(fragments) * packet_params_.header_bytes +
      trailer_bytes;
  const size_t avg_frame_bytes = frame_bytes / fragments;
  const double tx_cost = AccountTx(bmsg.src, bmsg.kind, fragments, frame_bytes);
  if (crc_active) {
    GAdd(crc_bytes_sent_, trailer_bytes);
    GAdd(crc_energy_mj_, energy_model_.TxCost(0, trailer_bytes));
  }
  if (Tracing(tracer_)) {
    TRecord(K(obs::EventKind::kFragTx), bmsg.src, kInvalidNode, bmsg.kind,
            static_cast<uint32_t>(fragments), frame_bytes, tx_cost);
    TObserveMessage(bmsg.payload_bytes, fragments);
  }
  int trace_corrupted = 0;
  const SimTime delay = fragments * per_packet_latency_s_;
  int receivers = 0;
  // Neighbor iteration works at any scale: materialized radios hand out the
  // precomputed list, on-demand radios fill a thread-local scratch from the
  // grid (each worker thread gets its own).
  static thread_local std::vector<NodeId> nb_scratch;
  const std::vector<NodeId>* nbrs;
  if (radio_.materialized()) {
    nbrs = &radio_.Neighbors(bmsg.src);
  } else {
    radio_.Neighbors(bmsg.src, nb_scratch);
    nbrs = &nb_scratch;
  }
  for (NodeId nb : *nbrs) {
    if (!alive(nb) || !radio_.LinkUp(bmsg.src, nb)) continue;
    if (LossApplies(bmsg.kind) && radio_.OutageActive(bmsg.src, nb)) continue;
    // Per-receiver loss and corruption rolls; broadcasts carry no acks, so
    // a receiver missing any fragment — including one its CRC check
    // rejects — misses the logical message.
    const double loss =
        LossApplies(bmsg.kind) ? radio_.LossRate(bmsg.src, nb) : 0.0;
    const double corrupt =
        LossApplies(bmsg.kind) ? radio_.CorruptionRate(bmsg.src, nb) : 0.0;
    SENSJOIN_CHECK(!capturing() ||
                   (loss == 0.0 && corrupt == 0.0 &&
                    !delay_params_.enabled()))
        << "windowed turn hit a non-window-safe broadcast";
    int heard = fragments;    // frames physically received (rx cost)
    int accepted = fragments; // frames kept after the CRC check
    int frag_corruptions = 0;
    bool rx_corrupted = false;
    if (loss > 0.0 || corrupt > 0.0) {
      heard = 0;
      accepted = 0;
      for (int f = 0; f < fragments; ++f) {
        if (loss > 0.0 && fault_rng_.NextBool(loss)) continue;
        ++heard;
        if (corrupt > 0.0 && fault_rng_.NextBool(corrupt)) {
          ++frag_corruptions;
          if (crc_active) {
            GAdd(total_corrupted_packets_, 1);
            continue;
          }
          GAdd(total_undetected_corrupted_packets_, 1);
          rx_corrupted = true;
        }
        ++accepted;
      }
    }
    if (heard > 0) {
      const size_t rx_bytes =
          heard == fragments ? frame_bytes
                             : static_cast<size_t>(heard) * avg_frame_bytes;
      const double rx_cost = AccountRx(nb, bmsg.kind, heard, rx_bytes);
      if (crc_active) {
        GAdd(crc_energy_mj_,
             energy_model_.RxCost(
                 0, static_cast<size_t>(heard) * integrity_params_.crc_bytes));
      }
      if (Tracing(tracer_)) {
        TRecord(K(obs::EventKind::kFragRx), nb, bmsg.src, bmsg.kind,
                static_cast<uint32_t>(heard), rx_bytes, rx_cost);
      }
    }
    if (heard < fragments && Tracing(tracer_)) {
      TRecord(K(obs::EventKind::kFragLoss), nb, bmsg.src, bmsg.kind,
              static_cast<uint32_t>(fragments - heard), 0, 0.0);
    }
    if (frag_corruptions > 0) {
      GAdd(stats_[nb].corrupted_packets_received,
           static_cast<uint64_t>(frag_corruptions));
      trace_corrupted += frag_corruptions;
      if (Tracing(tracer_)) {
        TRecord(K(obs::EventKind::kFragCorrupt), nb, bmsg.src, bmsg.kind,
                static_cast<uint32_t>(frag_corruptions), 0, 0.0,
                static_cast<uint32_t>(crc_active ? frag_corruptions : 0));
      }
    }
    if (accepted < fragments) continue;
    ++receivers;
    if (delivered) delivered->push_back(nb);
    if (corrupted && rx_corrupted) corrupted->push_back(nb);
    // Per-receiver jitter, drawn strictly after this receiver's loss and
    // corruption rolls (and only when enabled), keeps no-jitter plans
    // RNG-identical. Broadcasts are neither duplicated nor replayed: the
    // duplication model is the unicast ack race, and broadcasts carry no
    // acks.
    SimTime jitter_s = 0.0;
    if (delay_params_.enabled() && LossApplies(bmsg.kind)) {
      jitter_s = fault_rng_.UniformDouble(delay_params_.min_jitter_s,
                                          delay_params_.max_jitter_s);
    }
    ScheduleBroadcastRx(shared, nb, delay + jitter_s);
  }
  if (trace_sink_) {
    trace_sink_(TraceRecord{events_.now(), bmsg.src, kInvalidNode, bmsg.kind,
                            fragments, bmsg.payload_bytes,
                            /*broadcast=*/true, /*delivered=*/true,
                            /*retransmissions=*/0, trace_corrupted});
  }
  return receivers;
}

BitWriter Simulator::DamagePayload(const BitWriter& payload) {
  SENSJOIN_CHECK(!capturing());
  const size_t bits = payload.size_bits();
  if (bits == 0) return BitWriter{};
  std::vector<uint8_t> bytes = payload.bytes();
  if (fault_rng_.NextBool(integrity_params_.truncation_fraction)) {
    // Tail truncation: the radio lost symbol sync partway through.
    const size_t keep = static_cast<size_t>(
        fault_rng_.UniformInt(0, static_cast<int64_t>(bits) - 1));
    bytes.resize((keep + 7) / 8);
    return BitWriter::FromBytes(std::move(bytes), keep);
  }
  // A short burst of bit flips.
  const int flips = static_cast<int>(fault_rng_.UniformInt(1, 3));
  for (int i = 0; i < flips; ++i) {
    const size_t pos = static_cast<size_t>(
        fault_rng_.UniformInt(0, static_cast<int64_t>(bits) - 1));
    bytes[pos / 8] ^= static_cast<uint8_t>(0x80u >> (pos % 8));
  }
  return BitWriter::FromBytes(std::move(bytes), bits);
}

void Simulator::ScheduleCrash(NodeId id, SimTime at) {
  SENSJOIN_CHECK(id >= 0 && id < num_nodes());
  SENSJOIN_CHECK(!capturing());
  fault_events_scheduled_ = true;
  events_.ScheduleAt(at, [this, id] {
    set_alive(id, false);
    if (Tracing(tracer_)) {
      tracer_->Record(obs::EventKind::kCrash, events_.now(), id, kInvalidNode,
                      MessageKind::kNumKinds, /*count=*/1, /*bytes=*/0,
                      /*energy_mj=*/0.0);
    }
  });
}

void Simulator::ScheduleRecovery(NodeId id, SimTime at) {
  SENSJOIN_CHECK(id >= 0 && id < num_nodes());
  SENSJOIN_CHECK(!capturing());
  fault_events_scheduled_ = true;
  events_.ScheduleAt(at, [this, id] {
    set_alive(id, true);
    if (Tracing(tracer_)) {
      tracer_->Record(obs::EventKind::kRestore, events_.now(), id,
                      kInvalidNode, MessageKind::kNumKinds, /*count=*/1,
                      /*bytes=*/0, /*energy_mj=*/0.0);
    }
  });
}

void Simulator::ScheduleLinkOutage(const LinkOutageWindow& window) {
  SENSJOIN_CHECK(window.up_at >= window.down_at)
      << "link outage window ends before it starts";
  SENSJOIN_CHECK(!capturing());
  fault_events_scheduled_ = true;
  events_.ScheduleAt(window.down_at, [this, a = window.a, b = window.b] {
    radio_.SetLinkOutage(a, b, /*down=*/true);
  });
  events_.ScheduleAt(window.up_at, [this, a = window.a, b = window.b] {
    radio_.SetLinkOutage(a, b, /*down=*/false);
  });
}

void Simulator::ResetStats() {
  SENSJOIN_CHECK(!capturing());
  for (NodeStats& s : stats_) s.Reset();
  total_packets_sent_ = 0;
  total_bytes_sent_ = 0;
  total_energy_mj_ = 0.0;
  total_packets_retransmitted_ = 0;
  total_ack_packets_ = 0;
  retransmit_energy_mj_ = 0.0;
  ack_energy_mj_ = 0.0;
  total_corrupted_packets_ = 0;
  total_undetected_corrupted_packets_ = 0;
  crc_bytes_sent_ = 0;
  integrity_retransmit_energy_mj_ = 0.0;
  crc_energy_mj_ = 0.0;
  repair_bytes_sent_ = 0;
  repair_energy_mj_ = 0.0;
  total_duplicate_packets_ = 0;
  duplicate_energy_mj_ = 0.0;
  total_replayed_packets_ = 0;
  replay_energy_mj_ = 0.0;
  packets_by_kind_.fill(0);
}

}  // namespace sensjoin::sim
