#include "sensjoin/sim/simulator.h"

#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::sim {

Simulator::Simulator(Radio radio, PacketizationParams packets,
                     EnergyModel energy)
    : radio_(std::move(radio)),
      packet_params_(packets),
      energy_model_(energy) {
  nodes_.resize(radio_.num_nodes());
  for (int i = 0; i < radio_.num_nodes(); ++i) {
    nodes_[i].id = i;
  }
}

Simulator::ReceiveHandler Simulator::SetReceiveHandler(
    ReceiveHandler handler) {
  ReceiveHandler old = std::move(receive_handler_);
  receive_handler_ = std::move(handler);
  return old;
}

Simulator::TraceSink Simulator::SetTraceSink(TraceSink sink) {
  TraceSink old = std::move(trace_sink_);
  trace_sink_ = std::move(sink);
  return old;
}

void Simulator::AccountTx(NodeId sender, MessageKind kind, int fragments,
                          size_t frame_bytes) {
  NodeStats& s = nodes_[sender].stats;
  s.packets_sent += fragments;
  s.bytes_sent += frame_bytes;
  s.packets_sent_by_kind[static_cast<size_t>(kind)] += fragments;
  const double cost = energy_model_.TxCost(fragments, frame_bytes);
  s.energy_mj += cost;
  total_packets_sent_ += fragments;
  total_bytes_sent_ += frame_bytes;
  total_energy_mj_ += cost;
  packets_by_kind_[static_cast<size_t>(kind)] += fragments;
}

void Simulator::AccountRx(NodeId receiver, int fragments, size_t frame_bytes) {
  NodeStats& s = nodes_[receiver].stats;
  s.packets_received += fragments;
  s.bytes_received += frame_bytes;
  const double cost = energy_model_.RxCost(fragments, frame_bytes);
  s.energy_mj += cost;
  total_energy_mj_ += cost;
}

bool Simulator::SendUnicast(Message msg) {
  SENSJOIN_CHECK(msg.src >= 0 && msg.src < num_nodes());
  SENSJOIN_CHECK(msg.dst >= 0 && msg.dst < num_nodes());
  if (!nodes_[msg.src].alive) return false;
  const int fragments = NumFragments(msg.payload_bytes, packet_params_);
  const size_t frame_bytes =
      msg.payload_bytes +
      static_cast<size_t>(fragments) * packet_params_.header_bytes;
  AccountTx(msg.src, msg.kind, fragments, frame_bytes);
  const bool deliverable =
      nodes_[msg.dst].alive && radio_.LinkUp(msg.src, msg.dst);
  if (trace_sink_) {
    trace_sink_(TraceRecord{events_.now(), msg.src, msg.dst, msg.kind,
                            fragments, msg.payload_bytes,
                            /*broadcast=*/false, deliverable});
  }
  if (!deliverable) return false;
  AccountRx(msg.dst, fragments, frame_bytes);
  const SimTime delay = fragments * per_packet_latency_s_;
  events_.ScheduleAfter(delay, [this, msg = std::move(msg)]() {
    if (receive_handler_) receive_handler_(msg.dst, msg);
  });
  return true;
}

int Simulator::Broadcast(Message msg) {
  SENSJOIN_CHECK(msg.src >= 0 && msg.src < num_nodes());
  if (!nodes_[msg.src].alive) return 0;
  const int fragments = NumFragments(msg.payload_bytes, packet_params_);
  const size_t frame_bytes =
      msg.payload_bytes +
      static_cast<size_t>(fragments) * packet_params_.header_bytes;
  AccountTx(msg.src, msg.kind, fragments, frame_bytes);
  if (trace_sink_) {
    trace_sink_(TraceRecord{events_.now(), msg.src, kInvalidNode, msg.kind,
                            fragments, msg.payload_bytes,
                            /*broadcast=*/true, /*delivered=*/true});
  }
  const SimTime delay = fragments * per_packet_latency_s_;
  int receivers = 0;
  for (NodeId nb : radio_.Neighbors(msg.src)) {
    if (!nodes_[nb].alive || !radio_.LinkUp(msg.src, nb)) continue;
    AccountRx(nb, fragments, frame_bytes);
    ++receivers;
    Message delivered = msg;
    delivered.dst = nb;
    events_.ScheduleAfter(delay, [this, delivered = std::move(delivered)]() {
      if (receive_handler_) receive_handler_(delivered.dst, delivered);
    });
  }
  return receivers;
}

void Simulator::ResetStats() {
  for (Node& n : nodes_) n.stats.Reset();
  total_packets_sent_ = 0;
  total_bytes_sent_ = 0;
  total_energy_mj_ = 0.0;
  packets_by_kind_.fill(0);
}

}  // namespace sensjoin::sim
