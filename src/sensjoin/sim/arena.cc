#include "sensjoin/sim/arena.h"

namespace sensjoin::sim {

void* Arena::Allocate(size_t bytes, size_t alignment) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (current_ < chunks_.size()) {
      Chunk& c = chunks_[current_];
      const size_t base = reinterpret_cast<size_t>(c.data.get());
      const size_t aligned = (base + c.used + alignment - 1) & ~(alignment - 1);
      const size_t offset = aligned - base;
      if (offset + bytes <= c.size) {
        c.used = offset + bytes;
        bytes_allocated_ += bytes;
        return c.data.get() + offset;
      }
      // Chunk exhausted: advance (a later chunk may already exist after a
      // Reset; otherwise fall through to grow).
      ++current_;
      continue;
    }
    // Chunks grow geometrically so huge trials amortize to O(log n)
    // allocations; an oversized request gets a dedicated chunk.
    size_t size = chunk_bytes_ << (chunks_.size() < 8 ? chunks_.size() : 8);
    if (size < bytes + alignment) size = bytes + alignment;
    chunks_.push_back(
        Chunk{std::make_unique<std::byte[]>(size), size, /*used=*/0});
    bytes_reserved_ += size;
  }
}

void Arena::Reset() {
  for (Chunk& c : chunks_) c.used = 0;
  current_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace sensjoin::sim
