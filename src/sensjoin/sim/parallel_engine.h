#ifndef SENSJOIN_SIM_PARALLEL_ENGINE_H_
#define SENSJOIN_SIM_PARALLEL_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sensjoin/common/bit_stream.h"
#include "sensjoin/sim/sim_config.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::sim {

class Simulator;
class TurnEffects;

/// Node -> partition assignment for windowed execution. Partitions are the
/// depth-1 subtrees of the routing tree: two nodes share a partition iff
/// their paths to the root pass through the same depth-1 child. The root
/// itself and out-of-tree nodes are kUnpartitioned — their turns always run
/// inline on the coordinating thread.
///
/// Executors re-derive the map per attempt (the tree may have been rebuilt,
/// repaired or reparented between attempts), which keeps the partitioning
/// consistent with whatever tree the attempt actually walks.
struct PartitionMap {
  static constexpr int32_t kUnpartitioned = -1;

  std::vector<int32_t> part;  ///< node id -> partition id (or kUnpartitioned)
  int32_t count = 0;          ///< number of distinct partitions

  /// Derives the map from a parent array (`parent[root]` and out-of-tree
  /// nodes hold `kInvalidNode`).
  static PartitionMap FromParents(const std::vector<NodeId>& parent,
                                  NodeId root);

  bool SamePartition(NodeId a, NodeId b) const {
    return part[a] >= 0 && part[a] == part[b];
  }
};

/// Conservative time-windowed parallel turn execution.
///
/// The join executors are staged drivers: each protocol phase walks a node
/// order at one fixed sim-time and runs a per-node "turn" (compute + sends);
/// deliveries drain afterwards. RunTurns executes such a phase. Under
/// EngineKind::kSequential — or whenever the window is not provably
/// partitionable (fault machinery active, fewer than two partitions, a raw
/// trace sink installed) — it is the plain sequential loop. Under
/// kWindowed it splits the order into maximal runs of partitioned nodes and
/// executes each run as one window: per-partition workers run their turns
/// concurrently (respecting the order within each partition), every
/// simulator side effect of a captured turn (global counters, per-node
/// stats, tracer records, delivery scheduling, Defer'd closures) lands in a
/// per-turn effect log, and at the window barrier the logs are committed in
/// sequential turn order. Committing in turn order replays the exact
/// sequence of counter additions, trace records and event-queue insertions
/// the sequential engine would have produced — including the
/// floating-point accumulation order — which is what makes windowed output
/// byte-identical to sequential output.
///
/// Unpartitioned turns (the root / base station) run inline between
/// windows, so orders like collection (root last) and dissemination (root
/// first) both work unchanged.
class ParallelEngine {
 public:
  /// Per-worker recycled buffers handed to each turn, replacing the
  /// executor-level scratch that a sequential loop could share globally.
  struct Scratch {
    std::vector<uint64_t> u64;  ///< PointSet union scratch
    BitWriter bits;             ///< wire-verification encoding scratch
  };

  using TurnFn = std::function<void(NodeId, Scratch&)>;

  ParallelEngine(Simulator& sim, EngineConfig config);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  const EngineConfig& config() const { return config_; }

  /// Worker threads a parallel window will use (resolved from config;
  /// includes the coordinating thread).
  int resolved_workers() const { return resolved_workers_; }

  /// Runs `turn(u, scratch)` for every u in `order` (see class comment).
  void RunTurns(const PartitionMap& parts, const std::vector<NodeId>& order,
                const TurnFn& turn);

  /// Defers `fn` to the window barrier when called from a captured turn
  /// (committed in turn order, interleaved with the turn's simulator
  /// effects in program order); runs it immediately otherwise. Turns use
  /// this for mutations that cross partition boundaries — merging a
  /// subtree root's contribution into the base station's pending state.
  void Defer(std::function<void()> fn);

  // Window diagnostics (for tests asserting the parallel path engaged).
  uint64_t parallel_windows() const { return parallel_windows_; }
  uint64_t sequential_windows() const { return sequential_windows_; }
  uint64_t captured_turns() const { return captured_turns_; }

 private:
  void RunWindow(const PartitionMap& parts, const std::vector<NodeId>& order,
                 size_t begin, size_t end, const TurnFn& turn);
  void StartWorkers();
  void WorkerLoop(int worker_id);
  /// Runs `job` on every worker (ids 1..resolved_workers_-1) plus the
  /// calling thread (id 0); returns when all are done.
  void ForkJoin(const std::function<void(int)>& job);

  Simulator& sim_;
  EngineConfig config_;
  int resolved_workers_ = 1;
  std::vector<Scratch> scratch_;  ///< one per worker (0 = caller thread)

  // Window-local buffers, recycled across windows. `effects_[i]` is the
  // captured side-effect log of the window's i-th turn; `groups_[g]` lists
  // turn indices of one partition in order.
  std::vector<int32_t> group_of_part_;
  std::vector<std::vector<uint32_t>> groups_;
  std::vector<int32_t> work_order_;
  std::vector<TurnEffects> effects_;

  // Fork/join pool state.
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  uint64_t job_generation_ = 0;
  int job_outstanding_ = 0;
  std::function<void(int)> job_;
  bool stopping_ = false;

  uint64_t parallel_windows_ = 0;
  uint64_t sequential_windows_ = 0;
  uint64_t captured_turns_ = 0;
};

}  // namespace sensjoin::sim

#endif  // SENSJOIN_SIM_PARALLEL_ENGINE_H_
