#include "sensjoin/query/lexer.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <unordered_set>

namespace sensjoin::query {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM", "WHERE", "AND", "OR", "NOT",
      "AS",     "ONCE", "SAMPLE", "PERIOD",
  };
  return *kKeywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kEnd: return "end of input";
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kNumber: return "number";
    case TokenType::kKeyword: return "keyword";
    case TokenType::kComma: return "','";
    case TokenType::kDot: return "'.'";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kStar: return "'*'";
    case TokenType::kPlus: return "'+'";
    case TokenType::kMinus: return "'-'";
    case TokenType::kSlash: return "'/'";
    case TokenType::kLt: return "'<'";
    case TokenType::kLe: return "'<='";
    case TokenType::kGt: return "'>'";
    case TokenType::kGe: return "'>='";
    case TokenType::kEq: return "'='";
    case TokenType::kNe: return "'!='";
    case TokenType::kPipe: return "'|'";
  }
  return "unknown";
}

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&tokens](TokenType type, std::string text, size_t offset) {
    tokens.push_back(Token{type, std::move(text), 0.0, offset});
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        push(TokenType::kKeyword, std::move(upper), start);
      } else {
        push(TokenType::kIdentifier, std::move(word), start);
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       (input[j] == '.' && !seen_dot))) {
        if (input[j] == '.') seen_dot = true;
        ++j;
      }
      // Optional exponent.
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (input[k] == '+' || input[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
          while (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
            ++k;
          }
          j = k;
        }
      }
      Token t;
      t.type = TokenType::kNumber;
      t.text = input.substr(i, j - i);
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.offset = start;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case ',': push(TokenType::kComma, ",", start); ++i; break;
      case '.': push(TokenType::kDot, ".", start); ++i; break;
      case '(': push(TokenType::kLParen, "(", start); ++i; break;
      case ')': push(TokenType::kRParen, ")", start); ++i; break;
      case '*': push(TokenType::kStar, "*", start); ++i; break;
      case '+': push(TokenType::kPlus, "+", start); ++i; break;
      case '-': push(TokenType::kMinus, "-", start); ++i; break;
      case '/': push(TokenType::kSlash, "/", start); ++i; break;
      case '|': push(TokenType::kPipe, "|", start); ++i; break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kLe, "<=", start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kNe, "<>", start);
          i += 2;
        } else {
          push(TokenType::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenType::kGt, ">", start);
          ++i;
        }
        break;
      case '=':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kEq, "==", start);
          i += 2;
        } else {
          push(TokenType::kEq, "=", start);
          ++i;
        }
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kNe, "!=", start);
          i += 2;
        } else {
          return Status::InvalidArgument("unexpected '!' at offset " +
                                         std::to_string(start));
        }
        break;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " +
                                       std::to_string(start));
    }
  }
  push(TokenType::kEnd, "", n);
  return tokens;
}

}  // namespace sensjoin::query
