#ifndef SENSJOIN_QUERY_INTERVAL_H_
#define SENSJOIN_QUERY_INTERVAL_H_

#include <cstdint>
#include <ostream>

namespace sensjoin::query {

/// A closed real interval [lo, hi]. Used to evaluate join predicates over
/// quantized join-attribute tuples conservatively: a quantization cell maps
/// each attribute to the interval of values it may hold, and a predicate is
/// kept unless it is certainly false (footnote 2 of the paper: the
/// pre-computation join must be adjusted so quantization never drops a
/// joining tuple — false positives are allowed, false negatives are not).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  /// Degenerate interval holding exactly `v`.
  static Interval Single(double v) { return {v, v}; }

  bool Contains(double v) const { return lo <= v && v <= hi; }
  double width() const { return hi - lo; }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

// Interval arithmetic. All operations are outward-conservative: the result
// contains every value obtainable from operands within the inputs.
Interval Add(const Interval& a, const Interval& b);
Interval Sub(const Interval& a, const Interval& b);
Interval Mul(const Interval& a, const Interval& b);
/// Division widens to (-inf, inf) when the divisor straddles zero.
Interval Div(const Interval& a, const Interval& b);
Interval Neg(const Interval& a);
Interval Abs(const Interval& a);
/// Tight square: bounded below by 0 when `a` straddles zero, unlike
/// Mul(a, a), whose lo*hi cross terms admit spurious negative values.
Interval Square(const Interval& a);
/// Square root; negative parts of the operand are clamped to zero.
Interval Sqrt(const Interval& a);
Interval Min(const Interval& a, const Interval& b);
Interval Max(const Interval& a, const Interval& b);
/// Smallest interval containing both.
Interval Hull(const Interval& a, const Interval& b);

/// Three-valued truth for predicates over intervals: certainly false,
/// possibly true, certainly true.
enum class Tri : uint8_t { kFalse, kMaybe, kTrue };

const char* TriName(Tri t);

Tri Lt(const Interval& a, const Interval& b);
Tri Le(const Interval& a, const Interval& b);
Tri Gt(const Interval& a, const Interval& b);
Tri Ge(const Interval& a, const Interval& b);
Tri Eq(const Interval& a, const Interval& b);
Tri Ne(const Interval& a, const Interval& b);

Tri And(Tri a, Tri b);
Tri Or(Tri a, Tri b);
Tri Not(Tri a);

/// Conservative acceptance: keep everything that is not certainly false.
inline bool MaybeTrue(Tri t) { return t != Tri::kFalse; }

}  // namespace sensjoin::query

#endif  // SENSJOIN_QUERY_INTERVAL_H_
