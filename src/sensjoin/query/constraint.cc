#include "sensjoin/query/constraint.h"

#include <cmath>
#include <limits>

#include "sensjoin/common/logging.h"

namespace sensjoin::query {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const Interval kFullRange{-kInf, kInf};
const Interval kEmptyRange{kInf, -kInf};

/// True iff the subtree references an attribute of FROM entry `t`.
bool RefsTable(const Expr& e, int t) {
  if (e.kind == ExprKind::kAttrRef) return e.table_index == t;
  for (const auto& a : e.args) {
    if (RefsTable(*a, t)) return true;
  }
  return false;
}

}  // namespace

/// Builds the inversion program for one comparison. Walks from the
/// probe-referencing comparison operand down to the (single, solvable)
/// attribute reference of the probe table, recording one step per tree
/// level. Gives up — contributing no constraint — on shapes whose inversion
/// is either unsound or not contiguous (both operands referencing the probe
/// table, min/max, division by a probe expression, ...).
class ConstraintExtractor {
 public:
  ConstraintExtractor(int probe_table, std::vector<ProbeConstraint>* out)
      : probe_(probe_table), out_(out) {}

  void FromPredicate(const Expr& pred) {
    if (pred.kind == ExprKind::kBinary && pred.binary_op == BinaryOp::kAnd) {
      // Both conjuncts must hold, so each contributes independently.
      FromPredicate(*pred.args[0]);
      FromPredicate(*pred.args[1]);
      return;
    }
    if (pred.kind != ExprKind::kBinary || !IsComparisonOp(pred.binary_op)) {
      return;  // OR / NOT / non-comparisons: no contiguous bound
    }
    const Expr& lhs = *pred.args[0];
    const Expr& rhs = *pred.args[1];
    const bool l = RefsTable(lhs, probe_);
    const bool r = RefsTable(rhs, probe_);
    if (l == r) return;  // both sides or neither: not invertible
    const Expr& side = l ? lhs : rhs;
    const Expr& other = l ? rhs : lhs;

    // Initial target from the comparison. EvalTri declares Lt/Le false only
    // when side.lo >= / > other.hi, so a non-false outcome guarantees the
    // side's interval reaches below other.hi (symmetrically above other.lo
    // for Gt/Ge); Eq is non-false exactly when the intervals intersect.
    ProbeConstraint c;
    c.init_other_ = &other;
    switch (pred.binary_op) {
      case BinaryOp::kLt:
      case BinaryOp::kLe:
        c.init_ = l ? ProbeConstraint::Init::kUpperFromHi
                    : ProbeConstraint::Init::kLowerFromLo;
        break;
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        c.init_ = l ? ProbeConstraint::Init::kLowerFromLo
                    : ProbeConstraint::Init::kUpperFromHi;
        break;
      case BinaryOp::kEq:
        c.init_ = ProbeConstraint::Init::kRange;
        break;
      default:
        return;  // != excludes one cell range: no contiguous bound
    }
    Invert(side, std::move(c));
  }

 private:
  using Step = ProbeConstraint::Step;
  using StepKind = ProbeConstraint::StepKind;

  /// `e` references the probe table and its value is constrained to the
  /// target carried by `c`. Emits a finished constraint at an attribute
  /// reference; otherwise extends the program and descends.
  void Invert(const Expr& e, ProbeConstraint c) {
    switch (e.kind) {
      case ExprKind::kAttrRef:
        SENSJOIN_DCHECK(e.table_index == probe_);
        c.attr_index_ = e.attr_index;
        out_->push_back(std::move(c));
        return;
      case ExprKind::kUnary:
        if (e.unary_op != UnaryOp::kNeg) return;
        c.steps_.push_back({StepKind::kNeg, nullptr});
        Invert(*e.args[0], std::move(c));
        return;
      case ExprKind::kBinary: {
        const Expr& u = *e.args[0];
        const Expr& v = *e.args[1];
        const bool pu = RefsTable(u, probe_);
        const bool pv = RefsTable(v, probe_);
        if (pu == pv) return;  // probe on both operands: not solvable
        switch (e.binary_op) {
          case BinaryOp::kAdd:
            c.steps_.push_back({StepKind::kSubOther, pu ? &v : &u});
            Invert(pu ? u : v, std::move(c));
            return;
          case BinaryOp::kSub:
            if (pu) {
              c.steps_.push_back({StepKind::kAddOther, &v});
              Invert(u, std::move(c));
            } else {
              c.steps_.push_back({StepKind::kSubFromOther, &u});
              Invert(v, std::move(c));
            }
            return;
          case BinaryOp::kMul:
            c.steps_.push_back({StepKind::kDivOther, pu ? &v : &u});
            Invert(pu ? u : v, std::move(c));
            return;
          case BinaryOp::kDiv:
            if (!pu) return;  // probe in the divisor: u/x is not monotone
            c.steps_.push_back({StepKind::kMulOther, &v});
            Invert(u, std::move(c));
            return;
          default:
            return;
        }
      }
      case ExprKind::kFunc:
        if (e.func == "abs") {
          c.steps_.push_back({StepKind::kSymHull, nullptr});
          Invert(*e.args[0], std::move(c));
          return;
        }
        if (e.func == "sqrt") {
          c.steps_.push_back({StepKind::kSqrtInv, nullptr});
          Invert(*e.args[0], std::move(c));
          return;
        }
        if (e.func == "distance") {
          // distance(x1, y1, x2, y2) in target T forces |x1-x2| (and
          // |y1-y2|) to reach below T.hi: the interval evaluator computes
          // sqrt(square(dx) + square(dy)) with tight squares, so its lower
          // end below T.hi implies min|dx| <= T.hi. Each axis difference is
          // inverted independently and may yield its own constraint.
          InvertDifference(*e.args[0], *e.args[2], c);
          InvertDifference(*e.args[1], *e.args[3], std::move(c));
          return;
        }
        return;  // min/max: not invertible toward one operand
      case ExprKind::kLiteral:
        return;
    }
  }

  /// Inverts dx = u - v (an axis of distance) toward the probe table, with
  /// the symmetric hull step first: dx must intersect [-T.hi, T.hi].
  void InvertDifference(const Expr& u, const Expr& v, ProbeConstraint c) {
    const bool pu = RefsTable(u, probe_);
    const bool pv = RefsTable(v, probe_);
    if (pu == pv) return;
    c.steps_.push_back({StepKind::kSymHull, nullptr});
    if (pu) {
      c.steps_.push_back({StepKind::kAddOther, &v});
      Invert(u, std::move(c));
    } else {
      c.steps_.push_back({StepKind::kSubFromOther, &u});
      Invert(v, std::move(c));
    }
  }

  int probe_;
  std::vector<ProbeConstraint>* out_;
};

std::vector<ProbeConstraint> ProbeConstraint::Extract(const Expr& pred,
                                                      int probe_table) {
  std::vector<ProbeConstraint> out;
  ConstraintExtractor extractor(probe_table, &out);
  extractor.FromPredicate(pred);
  return out;
}

Interval ProbeConstraint::AllowedRange(const IntervalContext& ctx) const {
  SENSJOIN_DCHECK(init_other_ != nullptr);
  const Interval other = EvalInterval(*init_other_, ctx);
  Interval t;
  switch (init_) {
    case Init::kUpperFromHi: t = {-kInf, other.hi}; break;
    case Init::kLowerFromLo: t = {other.lo, kInf}; break;
    case Init::kRange: t = other; break;
  }
  for (const Step& step : steps_) {
    if (std::isnan(t.lo) || std::isnan(t.hi)) return kFullRange;
    if (t.lo > t.hi) return kEmptyRange;
    switch (step.kind) {
      case StepKind::kSubOther:
        t = Sub(t, EvalInterval(*step.other, ctx));
        break;
      case StepKind::kAddOther:
        t = Add(t, EvalInterval(*step.other, ctx));
        break;
      case StepKind::kSubFromOther:
        t = Sub(EvalInterval(*step.other, ctx), t);
        break;
      case StepKind::kNeg:
        t = Neg(t);
        break;
      case StepKind::kSymHull:
        if (t.hi < 0.0) return kEmptyRange;  // |u| has no value below 0
        t = {-t.hi, t.hi};
        break;
      case StepKind::kSqrtInv:
        if (t.hi < 0.0) return kEmptyRange;  // sqrt(u) is never negative
        // The evaluator clamps negative radicands to zero, so any u <= 0
        // maps to sqrt(0); only a strictly positive target floor bounds u.
        t = {t.lo > 0.0 ? t.lo * t.lo : -kInf, t.hi * t.hi};
        break;
      case StepKind::kDivOther: {
        const Interval d = EvalInterval(*step.other, ctx);
        // The forward evaluator widens division by a zero-straddling
        // interval to (-inf, inf): every probe value survives. Non-finite
        // operands risk inf*0 = NaN in the interval product; give up too.
        if ((d.lo <= 0.0 && d.hi >= 0.0) || !std::isfinite(d.lo) ||
            !std::isfinite(d.hi) || !std::isfinite(t.lo) ||
            !std::isfinite(t.hi)) {
          return kFullRange;
        }
        t = Div(t, d);
        break;
      }
      case StepKind::kMulOther: {
        const Interval m = EvalInterval(*step.other, ctx);
        if ((m.lo <= 0.0 && m.hi >= 0.0) || !std::isfinite(m.lo) ||
            !std::isfinite(m.hi) || !std::isfinite(t.lo) ||
            !std::isfinite(t.hi)) {
          return kFullRange;
        }
        t = Mul(t, m);
        break;
      }
    }
  }
  if (std::isnan(t.lo) || std::isnan(t.hi)) return kFullRange;
  return t;
}

}  // namespace sensjoin::query
