#include "sensjoin/query/interval.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sensjoin::query {

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << "[" << iv.lo << ", " << iv.hi << "]";
}

Interval Add(const Interval& a, const Interval& b) {
  return {a.lo + b.lo, a.hi + b.hi};
}

Interval Sub(const Interval& a, const Interval& b) {
  return {a.lo - b.hi, a.hi - b.lo};
}

Interval Mul(const Interval& a, const Interval& b) {
  const double p1 = a.lo * b.lo;
  const double p2 = a.lo * b.hi;
  const double p3 = a.hi * b.lo;
  const double p4 = a.hi * b.hi;
  return {std::min({p1, p2, p3, p4}), std::max({p1, p2, p3, p4})};
}

Interval Div(const Interval& a, const Interval& b) {
  if (b.lo <= 0.0 && b.hi >= 0.0) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    return {-kInf, kInf};
  }
  return Mul(a, Interval{1.0 / b.hi, 1.0 / b.lo});
}

Interval Neg(const Interval& a) { return {-a.hi, -a.lo}; }

Interval Abs(const Interval& a) {
  if (a.lo >= 0.0) return a;
  if (a.hi <= 0.0) return {-a.hi, -a.lo};
  return {0.0, std::max(-a.lo, a.hi)};
}

Interval Square(const Interval& a) {
  const double lo2 = a.lo * a.lo;
  const double hi2 = a.hi * a.hi;
  if (a.lo >= 0.0) return {lo2, hi2};
  if (a.hi <= 0.0) return {hi2, lo2};
  return {0.0, std::max(lo2, hi2)};
}

Interval Sqrt(const Interval& a) {
  const double lo = std::max(0.0, a.lo);
  const double hi = std::max(0.0, a.hi);
  return {std::sqrt(lo), std::sqrt(hi)};
}

Interval Min(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval Max(const Interval& a, const Interval& b) {
  return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval Hull(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

const char* TriName(Tri t) {
  switch (t) {
    case Tri::kFalse: return "false";
    case Tri::kMaybe: return "maybe";
    case Tri::kTrue: return "true";
  }
  return "?";
}

Tri Lt(const Interval& a, const Interval& b) {
  if (a.hi < b.lo) return Tri::kTrue;
  if (a.lo >= b.hi) return Tri::kFalse;
  return Tri::kMaybe;
}

Tri Le(const Interval& a, const Interval& b) {
  if (a.hi <= b.lo) return Tri::kTrue;
  if (a.lo > b.hi) return Tri::kFalse;
  return Tri::kMaybe;
}

Tri Gt(const Interval& a, const Interval& b) { return Lt(b, a); }

Tri Ge(const Interval& a, const Interval& b) { return Le(b, a); }

Tri Eq(const Interval& a, const Interval& b) {
  if (a.hi < b.lo || b.hi < a.lo) return Tri::kFalse;
  if (a.lo == a.hi && b.lo == b.hi && a.lo == b.lo) return Tri::kTrue;
  return Tri::kMaybe;
}

Tri Ne(const Interval& a, const Interval& b) { return Not(Eq(a, b)); }

Tri And(Tri a, Tri b) {
  if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
  if (a == Tri::kTrue && b == Tri::kTrue) return Tri::kTrue;
  return Tri::kMaybe;
}

Tri Or(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kFalse && b == Tri::kFalse) return Tri::kFalse;
  return Tri::kMaybe;
}

Tri Not(Tri a) {
  switch (a) {
    case Tri::kFalse: return Tri::kTrue;
    case Tri::kTrue: return Tri::kFalse;
    case Tri::kMaybe: return Tri::kMaybe;
  }
  return Tri::kMaybe;
}

}  // namespace sensjoin::query
