#include "sensjoin/query/parser.h"

#include <algorithm>
#include <cctype>
#include <utility>
#include <vector>

#include "sensjoin/query/lexer.h"

namespace sensjoin::query {
namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

/// Recursive-descent parser over the token stream. Every Parse* method
/// returns an error Status with the offending offset on failure.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ParsedQuery> ParseQuery();
  StatusOr<std::unique_ptr<Expr>> ParseOrExpr();

  Status ExpectEnd() {
    if (Peek().type != TokenType::kEnd) {
      return ErrorHere("unexpected trailing input");
    }
    return Status::Ok();
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(const char* kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool Match(TokenType type) {
    if (!Check(type)) return false;
    Advance();
    return true;
  }
  bool MatchKeyword(const char* kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }

  Status ErrorHere(const std::string& what) const {
    return Status::InvalidArgument(what + " at offset " +
                                   std::to_string(Peek().offset) + " (near '" +
                                   Peek().text + "')");
  }

  Status Expect(TokenType type, const char* context) {
    if (Match(type)) return Status::Ok();
    return ErrorHere(std::string("expected ") + TokenTypeName(type) + " in " +
                     context);
  }

  StatusOr<SelectItem> ParseSelectItem();
  StatusOr<TableRef> ParseTableRef();
  StatusOr<std::unique_ptr<Expr>> ParseAndExpr();
  StatusOr<std::unique_ptr<Expr>> ParseNotExpr();
  StatusOr<std::unique_ptr<Expr>> ParseComparison();
  StatusOr<std::unique_ptr<Expr>> ParseAdditive();
  StatusOr<std::unique_ptr<Expr>> ParseMultiplicative();
  StatusOr<std::unique_ptr<Expr>> ParseUnary();
  StatusOr<std::unique_ptr<Expr>> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

StatusOr<ParsedQuery> Parser::ParseQuery() {
  ParsedQuery q;
  if (!MatchKeyword("SELECT")) return ErrorHere("query must start with SELECT");

  if (Match(TokenType::kStar)) {
    q.select_star = true;
  } else {
    while (true) {
      SENSJOIN_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      q.select.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
  }

  if (!MatchKeyword("FROM")) return ErrorHere("expected FROM");
  while (true) {
    SENSJOIN_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
    q.from.push_back(std::move(ref));
    if (!Match(TokenType::kComma)) break;
  }

  if (MatchKeyword("WHERE")) {
    SENSJOIN_ASSIGN_OR_RETURN(q.where, ParseOrExpr());
  }

  if (MatchKeyword("ONCE")) {
    q.mode = ParsedQuery::Mode::kOnce;
  } else if (MatchKeyword("SAMPLE")) {
    if (!MatchKeyword("PERIOD")) return ErrorHere("expected PERIOD");
    if (!Check(TokenType::kNumber)) {
      return ErrorHere("expected a sample period in seconds");
    }
    q.mode = ParsedQuery::Mode::kSamplePeriod;
    q.sample_period_s = Advance().number;
    if (q.sample_period_s <= 0) {
      return Status::InvalidArgument("SAMPLE PERIOD must be positive");
    }
  } else {
    return ErrorHere("query must end with ONCE or SAMPLE PERIOD <x>");
  }
  SENSJOIN_RETURN_IF_ERROR(ExpectEnd());
  return q;
}

StatusOr<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  // Aggregate wrapper? Aggregates are plain identifiers followed by '('.
  if (Check(TokenType::kIdentifier) && Peek(1).type == TokenType::kLParen) {
    const std::string lower = ToLower(Peek().text);
    AggregateKind agg = AggregateKind::kNone;
    if (lower == "min") agg = AggregateKind::kMin;
    else if (lower == "max") agg = AggregateKind::kMax;
    else if (lower == "sum") agg = AggregateKind::kSum;
    else if (lower == "avg") agg = AggregateKind::kAvg;
    else if (lower == "count") agg = AggregateKind::kCount;
    // min/max are also scalar functions; they act as aggregates only in a
    // SELECT item head with a single argument (checked below), matching Q1.
    if (agg != AggregateKind::kNone) {
      // Tentatively parse as aggregate; COUNT(*) is special.
      const size_t saved = pos_;
      Advance();  // name
      Advance();  // '('
      if (agg == AggregateKind::kCount && Match(TokenType::kStar)) {
        SENSJOIN_RETURN_IF_ERROR(Expect(TokenType::kRParen, "COUNT(*)"));
        item.aggregate = AggregateKind::kCount;
        item.label = "count(*)";
        return item;
      }
      SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseOrExpr());
      if ((agg == AggregateKind::kMin || agg == AggregateKind::kMax) &&
          Check(TokenType::kComma)) {
        // min(a, b) with two arguments is the scalar function: backtrack.
        pos_ = saved;
      } else {
        SENSJOIN_RETURN_IF_ERROR(Expect(TokenType::kRParen, "aggregate"));
        item.aggregate = agg;
        item.expr = std::move(inner);
        item.label = ToLower(std::string(AggregateKindName(agg))) + "(" +
                     item.expr->ToString() + ")";
        if (MatchKeyword("AS")) {
          if (!Check(TokenType::kIdentifier)) return ErrorHere("expected alias");
          item.label = Advance().text;
        }
        return item;
      }
    }
  }
  SENSJOIN_ASSIGN_OR_RETURN(item.expr, ParseOrExpr());
  item.label = item.expr->ToString();
  if (MatchKeyword("AS")) {
    if (!Check(TokenType::kIdentifier)) return ErrorHere("expected alias");
    item.label = Advance().text;
  }
  return item;
}

StatusOr<TableRef> Parser::ParseTableRef() {
  if (!Check(TokenType::kIdentifier)) return ErrorHere("expected relation name");
  TableRef ref;
  ref.relation = Advance().text;
  ref.alias = ref.relation;
  if (MatchKeyword("AS")) {
    if (!Check(TokenType::kIdentifier)) return ErrorHere("expected alias");
    ref.alias = Advance().text;
  } else if (Check(TokenType::kIdentifier)) {
    ref.alias = Advance().text;
  }
  return ref;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseOrExpr() {
  SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAndExpr());
  while (MatchKeyword("OR")) {
    SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAndExpr());
    lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseAndExpr() {
  SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseNotExpr());
  while (MatchKeyword("AND")) {
    SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseNotExpr());
    lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseNotExpr() {
  if (MatchKeyword("NOT")) {
    SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> x, ParseNotExpr());
    return Expr::Unary(UnaryOp::kNot, std::move(x));
  }
  return ParseComparison();
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseComparison() {
  SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdditive());
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kLt: op = BinaryOp::kLt; break;
    case TokenType::kLe: op = BinaryOp::kLe; break;
    case TokenType::kGt: op = BinaryOp::kGt; break;
    case TokenType::kGe: op = BinaryOp::kGe; break;
    case TokenType::kEq: op = BinaryOp::kEq; break;
    case TokenType::kNe: op = BinaryOp::kNe; break;
    default:
      return lhs;
  }
  Advance();
  SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdditive());
  return Expr::Binary(op, std::move(lhs), std::move(rhs));
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseAdditive() {
  SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Check(TokenType::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Check(TokenType::kMinus)) {
      op = BinaryOp::kSub;
    } else {
      return lhs;
    }
    Advance();
    SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMultiplicative());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseMultiplicative() {
  SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
  while (true) {
    BinaryOp op;
    if (Check(TokenType::kStar)) {
      op = BinaryOp::kMul;
    } else if (Check(TokenType::kSlash)) {
      op = BinaryOp::kDiv;
    } else {
      return lhs;
    }
    Advance();
    SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnary());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> x, ParseUnary());
    return Expr::Unary(UnaryOp::kNeg, std::move(x));
  }
  if (Match(TokenType::kPlus)) return ParseUnary();
  return ParsePrimary();
}

StatusOr<std::unique_ptr<Expr>> Parser::ParsePrimary() {
  if (Check(TokenType::kNumber)) {
    return Expr::Literal(Advance().number);
  }
  if (Match(TokenType::kLParen)) {
    SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseOrExpr());
    SENSJOIN_RETURN_IF_ERROR(Expect(TokenType::kRParen, "parenthesized expr"));
    return inner;
  }
  if (Check(TokenType::kPipe)) {
    // |expr| is abs(expr). The body is parsed at additive precedence, so the
    // next '|' is always the closing bar.
    Advance();
    SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseAdditive());
    SENSJOIN_RETURN_IF_ERROR(Expect(TokenType::kPipe, "|...| absolute value"));
    std::vector<std::unique_ptr<Expr>> args;
    args.push_back(std::move(inner));
    return Expr::Func("abs", std::move(args));
  }
  if (Check(TokenType::kIdentifier)) {
    std::string name = Advance().text;
    if (Match(TokenType::kLParen)) {
      std::vector<std::unique_ptr<Expr>> args;
      if (!Check(TokenType::kRParen)) {
        while (true) {
          SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseOrExpr());
          args.push_back(std::move(arg));
          if (!Match(TokenType::kComma)) break;
        }
      }
      SENSJOIN_RETURN_IF_ERROR(Expect(TokenType::kRParen, "function call"));
      return Expr::Func(ToLower(name), std::move(args));
    }
    if (Match(TokenType::kDot)) {
      if (!Check(TokenType::kIdentifier)) {
        return ErrorHere("expected attribute name after '.'");
      }
      std::string attr = Advance().text;
      return Expr::AttrRef(std::move(name), std::move(attr));
    }
    return Expr::AttrRef("", std::move(name));
  }
  return ErrorHere("expected an expression");
}

}  // namespace

StatusOr<ParsedQuery> Parse(const std::string& input) {
  SENSJOIN_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

StatusOr<std::unique_ptr<Expr>> ParseExpression(const std::string& input) {
  SENSJOIN_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  SENSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr, parser.ParseOrExpr());
  SENSJOIN_RETURN_IF_ERROR(parser.ExpectEnd());
  return expr;
}

}  // namespace sensjoin::query
