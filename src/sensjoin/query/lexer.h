#ifndef SENSJOIN_QUERY_LEXER_H_
#define SENSJOIN_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "sensjoin/common/statusor.h"
#include "sensjoin/query/token.h"

namespace sensjoin::query {

/// Tokenizes a query string. Keywords are recognized case-insensitively and
/// reported uppercased; identifiers keep their spelling. Returns an error
/// for unknown characters or malformed numbers. The result always ends with
/// a kEnd token.
StatusOr<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sensjoin::query

#endif  // SENSJOIN_QUERY_LEXER_H_
