#ifndef SENSJOIN_QUERY_AST_H_
#define SENSJOIN_QUERY_AST_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace sensjoin::query {

enum class ExprKind {
  kLiteral,  ///< numeric constant
  kAttrRef,  ///< [table.]attribute
  kUnary,    ///< -x, NOT x
  kBinary,   ///< arithmetic, comparison, AND/OR
  kFunc,     ///< abs, distance, sqrt, min, max
};

enum class UnaryOp { kNeg, kNot };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

/// True for comparison and logical operators (boolean-valued result).
bool IsBooleanOp(BinaryOp op);
/// True for the comparison operators only.
bool IsComparisonOp(BinaryOp op);
const char* BinaryOpSymbol(BinaryOp op);

/// An expression tree node. One struct with a kind discriminant keeps
/// traversal (evaluation, analysis, printing) in simple switches.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  double literal = 0.0;

  // kAttrRef: as written in the query ...
  std::string table;  ///< alias; empty if unqualified
  std::string attr;
  // ... and as resolved by Analyze():
  int table_index = -1;  ///< index into the query's FROM list
  int attr_index = -1;   ///< index into the relation schema

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  // kFunc: lowercased function name
  std::string func;

  /// Operands: 1 for kUnary, 2 for kBinary, function arity for kFunc.
  std::vector<std::unique_ptr<Expr>> args;

  // --- Factories ---------------------------------------------------------
  static std::unique_ptr<Expr> Literal(double v);
  static std::unique_ptr<Expr> AttrRef(std::string table, std::string attr);
  static std::unique_ptr<Expr> Unary(UnaryOp op, std::unique_ptr<Expr> x);
  static std::unique_ptr<Expr> Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                      std::unique_ptr<Expr> rhs);
  static std::unique_ptr<Expr> Func(std::string name,
                                    std::vector<std::unique_ptr<Expr>> args);

  std::unique_ptr<Expr> Clone() const;

  /// Unparses the expression (canonical form, fully parenthesized).
  std::string ToString() const;

  /// Inserts the resolved table indices of every attribute reference in this
  /// subtree into `out`. Requires prior resolution by Analyze().
  void CollectTableIndices(std::set<int>* out) const;
};

/// Aggregate applied to a SELECT item (Q1 uses MIN; Sec. III).
enum class AggregateKind { kNone, kMin, kMax, kSum, kAvg, kCount };

const char* AggregateKindName(AggregateKind k);

/// One item of the SELECT list.
struct SelectItem {
  AggregateKind aggregate = AggregateKind::kNone;
  std::unique_ptr<Expr> expr;  ///< null only for COUNT(*)
  std::string label;           ///< output column name (AS alias or unparse)
};

/// One entry of the FROM list.
struct TableRef {
  std::string relation;
  std::string alias;  ///< defaults to the relation name
};

/// The raw parse of a query, before semantic analysis.
struct ParsedQuery {
  enum class Mode { kOnce, kSamplePeriod };

  bool select_star = false;
  std::vector<SelectItem> select;
  std::vector<TableRef> from;
  std::unique_ptr<Expr> where;  ///< null if absent
  Mode mode = Mode::kOnce;
  double sample_period_s = 0.0;
};

}  // namespace sensjoin::query

#endif  // SENSJOIN_QUERY_AST_H_
