#ifndef SENSJOIN_QUERY_CONSTRAINT_H_
#define SENSJOIN_QUERY_CONSTRAINT_H_

#include <cstdint>
#include <vector>

#include "sensjoin/query/ast.h"
#include "sensjoin/query/interval.h"
#include "sensjoin/query/interval_eval.h"

namespace sensjoin::query {

/// A compiled, conservative bound on one attribute of one table, derived
/// from a join predicate by inverting the expression tree toward a single
/// attribute reference of the "probe" table. The base station's indexed
/// filter join uses these to restrict the candidate keys probed at each
/// nesting level to a contiguous range of a sorted per-dimension index.
///
/// Soundness contract (what makes index pruning bit-exact): for any interval
/// assignment of the *other* tables supplied via `ctx`,
///
///   EvalTri(pred, ctx') != kFalse  implies
///   ctx'.Value(probe_table, attr_index()) intersects AllowedRange(ctx)
///
/// where ctx' extends ctx with any interval for the probe attribute. The
/// implication is with respect to EvalTri's actual (outward-conservative)
/// interval arithmetic, not ideal real semantics, so a key skipped by the
/// range is guaranteed to be one the naive nested-loop join would have
/// rejected at this predicate. The range may be wider than necessary; the
/// caller re-evaluates the predicate on every surviving candidate.
///
/// Holds borrowed pointers into the predicate tree; the constraint must not
/// outlive the AnalyzedQuery it came from.
class ProbeConstraint {
 public:
  /// Schema attribute index (of the probe table) that the range bounds.
  int attr_index() const { return attr_index_; }

  /// The conservative allowed interval for the probe attribute, given the
  /// other referenced tables' intervals. Every expression referenced by the
  /// compiled steps must be evaluable under `ctx` (i.e. all non-probe tables
  /// assigned). Returns [-inf, +inf] when the bound degenerates at runtime
  /// (e.g. a multiplier interval straddling zero, or non-finite operands in
  /// a product); returns an inverted interval (lo > hi) when the predicate
  /// is certainly false for every probe value.
  Interval AllowedRange(const IntervalContext& ctx) const;

  /// Extracts the probe constraints on attributes of FROM entry
  /// `probe_table` implied by `pred` (a resolved, validated predicate).
  /// Conjunctions contribute the union of their children's constraints;
  /// unsupported shapes (OR, NOT, !=, expressions referencing the probe
  /// table on both comparison sides or through uninvertible operators)
  /// contribute none. An empty result means the predicate cannot prune via
  /// an index and must be evaluated exhaustively.
  static std::vector<ProbeConstraint> Extract(const Expr& pred,
                                              int probe_table);

 private:
  /// How the initial target interval for the probe-side expression is formed
  /// from the opposite comparison operand.
  enum class Init : uint8_t {
    kUpperFromHi,  ///< target = [-inf, Eval(other).hi]   (probe side <  other)
    kLowerFromLo,  ///< target = [Eval(other).lo, +inf]   (probe side >  other)
    kRange,        ///< target = Eval(other)              (probe side == other)
  };

  /// One inversion step, applied while walking from the comparison root down
  /// to the probe attribute reference. `other` is the sibling subexpression
  /// (null for the unary steps), evaluated under the probe-time context.
  enum class StepKind : uint8_t {
    kSubOther,      ///< through Add:      target -= Eval(other)
    kAddOther,      ///< through Sub lhs:  target += Eval(other)
    kSubFromOther,  ///< through Sub rhs:  target = Eval(other) - target
    kNeg,           ///< through Neg:      target = -target
    kSymHull,       ///< through Abs/distance: target = [-target.hi, target.hi]
    kSqrtInv,       ///< through Sqrt:     target = [target.lo^2 | -inf, target.hi^2]
    kDivOther,      ///< through Mul:      target /= Eval(other) (sign-definite)
    kMulOther,      ///< through Div lhs:  target *= Eval(other) (sign-definite)
  };

  struct Step {
    StepKind kind;
    const Expr* other;  ///< borrowed; null for kNeg/kSymHull/kSqrtInv
  };

  friend class ConstraintExtractor;

  Init init_ = Init::kRange;
  const Expr* init_other_ = nullptr;  ///< borrowed comparison operand
  std::vector<Step> steps_;
  int attr_index_ = -1;
};

}  // namespace sensjoin::query

#endif  // SENSJOIN_QUERY_CONSTRAINT_H_
