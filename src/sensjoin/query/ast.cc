#include "sensjoin/query/ast.h"

#include <sstream>
#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::query {

bool IsBooleanOp(BinaryOp op) {
  return IsComparisonOp(op) || op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kEq:
    case BinaryOp::kNe:
      return true;
    default:
      return false;
  }
}

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

const char* AggregateKindName(AggregateKind k) {
  switch (k) {
    case AggregateKind::kNone: return "";
    case AggregateKind::kMin: return "MIN";
    case AggregateKind::kMax: return "MAX";
    case AggregateKind::kSum: return "SUM";
    case AggregateKind::kAvg: return "AVG";
    case AggregateKind::kCount: return "COUNT";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Literal(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = v;
  return e;
}

std::unique_ptr<Expr> Expr::AttrRef(std::string table, std::string attr) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAttrRef;
  e->table = std::move(table);
  e->attr = std::move(attr);
  return e;
}

std::unique_ptr<Expr> Expr::Unary(UnaryOp op, std::unique_ptr<Expr> x) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->args.push_back(std::move(x));
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

std::unique_ptr<Expr> Expr::Func(std::string name,
                                 std::vector<std::unique_ptr<Expr>> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunc;
  e->func = std::move(name);
  e->args = std::move(args);
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->table = table;
  e->attr = attr;
  e->table_index = table_index;
  e->attr_index = attr_index;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  e->func = func;
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->Clone());
  return e;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::kLiteral:
      os << literal;
      break;
    case ExprKind::kAttrRef:
      if (!table.empty()) os << table << ".";
      os << attr;
      break;
    case ExprKind::kUnary:
      if (unary_op == UnaryOp::kNot) {
        os << "NOT (" << args[0]->ToString() << ")";
      } else {
        os << "-(" << args[0]->ToString() << ")";
      }
      break;
    case ExprKind::kBinary:
      os << "(" << args[0]->ToString() << " " << BinaryOpSymbol(binary_op)
         << " " << args[1]->ToString() << ")";
      break;
    case ExprKind::kFunc:
      os << func << "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) os << ", ";
        os << args[i]->ToString();
      }
      os << ")";
      break;
  }
  return os.str();
}

void Expr::CollectTableIndices(std::set<int>* out) const {
  if (kind == ExprKind::kAttrRef) {
    SENSJOIN_CHECK_GE(table_index, 0) << "unresolved attribute" << attr;
    out->insert(table_index);
    return;
  }
  for (const auto& a : args) a->CollectTableIndices(out);
}

}  // namespace sensjoin::query
