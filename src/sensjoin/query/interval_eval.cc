#include "sensjoin/query/interval_eval.h"

#include "sensjoin/common/logging.h"

namespace sensjoin::query {

Interval RowIntervalContext::Value(int table_index, int attr_index) const {
  SENSJOIN_DCHECK(table_index >= 0 &&
                  table_index < static_cast<int>(rows_.size()));
  const std::vector<Interval>* row = rows_[table_index];
  SENSJOIN_DCHECK(row != nullptr);
  SENSJOIN_DCHECK(attr_index >= 0 &&
                  attr_index < static_cast<int>(row->size()));
  return (*row)[attr_index];
}

Interval EvalInterval(const Expr& expr, const IntervalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return Interval::Single(expr.literal);
    case ExprKind::kAttrRef:
      return ctx.Value(expr.table_index, expr.attr_index);
    case ExprKind::kUnary:
      SENSJOIN_DCHECK(expr.unary_op == UnaryOp::kNeg);
      return Neg(EvalInterval(*expr.args[0], ctx));
    case ExprKind::kBinary: {
      const Interval lhs = EvalInterval(*expr.args[0], ctx);
      const Interval rhs = EvalInterval(*expr.args[1], ctx);
      switch (expr.binary_op) {
        case BinaryOp::kAdd: return Add(lhs, rhs);
        case BinaryOp::kSub: return Sub(lhs, rhs);
        case BinaryOp::kMul: return Mul(lhs, rhs);
        case BinaryOp::kDiv: return Div(lhs, rhs);
        default:
          SENSJOIN_CHECK(false) << "boolean operator in numeric context:"
                                << expr.ToString();
      }
      return {};
    }
    case ExprKind::kFunc: {
      if (expr.func == "abs") return Abs(EvalInterval(*expr.args[0], ctx));
      if (expr.func == "sqrt") return Sqrt(EvalInterval(*expr.args[0], ctx));
      if (expr.func == "min") {
        return Min(EvalInterval(*expr.args[0], ctx),
                   EvalInterval(*expr.args[1], ctx));
      }
      if (expr.func == "max") {
        return Max(EvalInterval(*expr.args[0], ctx),
                   EvalInterval(*expr.args[1], ctx));
      }
      if (expr.func == "distance") {
        const Interval dx = Sub(EvalInterval(*expr.args[0], ctx),
                                EvalInterval(*expr.args[2], ctx));
        const Interval dy = Sub(EvalInterval(*expr.args[1], ctx),
                                EvalInterval(*expr.args[3], ctx));
        return Sqrt(Add(Square(dx), Square(dy)));
      }
      SENSJOIN_CHECK(false) << "unknown function" << expr.func;
      return {};
    }
  }
  SENSJOIN_CHECK(false) << "unreachable";
  return {};
}

Tri EvalTri(const Expr& expr, const IntervalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kUnary:
      SENSJOIN_DCHECK(expr.unary_op == UnaryOp::kNot);
      return Not(EvalTri(*expr.args[0], ctx));
    case ExprKind::kBinary:
      switch (expr.binary_op) {
        case BinaryOp::kAnd:
          return And(EvalTri(*expr.args[0], ctx), EvalTri(*expr.args[1], ctx));
        case BinaryOp::kOr:
          return Or(EvalTri(*expr.args[0], ctx), EvalTri(*expr.args[1], ctx));
        case BinaryOp::kLt:
          return Lt(EvalInterval(*expr.args[0], ctx),
                    EvalInterval(*expr.args[1], ctx));
        case BinaryOp::kLe:
          return Le(EvalInterval(*expr.args[0], ctx),
                    EvalInterval(*expr.args[1], ctx));
        case BinaryOp::kGt:
          return Gt(EvalInterval(*expr.args[0], ctx),
                    EvalInterval(*expr.args[1], ctx));
        case BinaryOp::kGe:
          return Ge(EvalInterval(*expr.args[0], ctx),
                    EvalInterval(*expr.args[1], ctx));
        case BinaryOp::kEq:
          return Eq(EvalInterval(*expr.args[0], ctx),
                    EvalInterval(*expr.args[1], ctx));
        case BinaryOp::kNe:
          return Ne(EvalInterval(*expr.args[0], ctx),
                    EvalInterval(*expr.args[1], ctx));
        default:
          break;
      }
      break;
    default:
      break;
  }
  SENSJOIN_CHECK(false) << "not a predicate:" << expr.ToString();
  return Tri::kMaybe;
}

}  // namespace sensjoin::query
