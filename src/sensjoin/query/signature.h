#ifndef SENSJOIN_QUERY_SIGNATURE_H_
#define SENSJOIN_QUERY_SIGNATURE_H_

#include <string>

#include "sensjoin/query/query.h"

namespace sensjoin::query {

/// Canonical sharing signature of an analyzed query: two continuous queries
/// with equal signatures collect exactly the same quantized join-attribute
/// keys from every node in every epoch, so one Join-Attribute-Collection
/// phase (and one set of in-network subtree structures) serves both.
///
/// The signature covers what the *collection* semantics depend on:
///  - the FROM entries in order, each as (relation, canonical selection
///    text) — relations determine membership flags, selections determine
///    which nodes report at all;
///  - the union of join-attribute indices over all entries — these are the
///    quantizer dimensions encoded into each key.
///
/// Deliberately excluded: the SELECT list and the join predicates. Those
/// differ freely within a sharing group — each member keeps its own join
/// filter (base-station computation only) and its own exact final join, and
/// the group disseminates the union of the member filters, which is
/// conservative and therefore still exact after the per-query final join.
///
/// Protocol knobs (Treecut, Dmax, selective forwarding, representation) are
/// NOT part of this signature; the service layer appends them to its group
/// key, since they change wire behavior but not query semantics.
std::string SharingSignatureOf(const AnalyzedQuery& q);

}  // namespace sensjoin::query

#endif  // SENSJOIN_QUERY_SIGNATURE_H_
