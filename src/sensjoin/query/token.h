#ifndef SENSJOIN_QUERY_TOKEN_H_
#define SENSJOIN_QUERY_TOKEN_H_

#include <string>

namespace sensjoin::query {

/// Token categories of the query dialect (SQL with the TinyDB extensions
/// ONCE and SAMPLE PERIOD; Sec. III "Problem statement").
enum class TokenType {
  kEnd,
  kIdentifier,  ///< relation / attribute / function names
  kNumber,      ///< numeric literal (double)
  kKeyword,     ///< SELECT, FROM, WHERE, AND, OR, NOT, AS, ONCE, SAMPLE,
                ///< PERIOD (uppercased in `text`)
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,   ///< '=' or '=='
  kNe,   ///< '!=' or '<>'
  kPipe, ///< '|' — absolute-value delimiter as in Q2: |A.temp - B.temp|
};

/// A lexed token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  double number = 0.0;
  size_t offset = 0;
};

/// Returns a printable name for `type`.
const char* TokenTypeName(TokenType type);

}  // namespace sensjoin::query

#endif  // SENSJOIN_QUERY_TOKEN_H_
