#include "sensjoin/query/expr_eval.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "sensjoin/common/logging.h"

namespace sensjoin::query {
namespace {

/// Arity of a supported scalar function, or -1 if unknown.
int FunctionArity(const std::string& name) {
  if (name == "abs" || name == "sqrt") return 1;
  if (name == "min" || name == "max") return 2;
  if (name == "distance") return 4;
  return -1;
}

}  // namespace

double TupleContext::Value(int table_index, int attr_index) const {
  SENSJOIN_DCHECK(table_index >= 0 &&
                  table_index < static_cast<int>(tuples_.size()));
  const data::Tuple* t = tuples_[table_index];
  SENSJOIN_DCHECK(t != nullptr);
  SENSJOIN_DCHECK(attr_index >= 0 &&
                  attr_index < static_cast<int>(t->values.size()));
  return t->values[attr_index];
}

bool IsBooleanExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kBinary:
      return IsBooleanOp(expr.binary_op);
    case ExprKind::kUnary:
      return expr.unary_op == UnaryOp::kNot;
    default:
      return false;
  }
}

Status ValidateExpr(const Expr& expr, bool expect_boolean) {
  if (expect_boolean != IsBooleanExpr(expr)) {
    return Status::InvalidArgument(
        std::string(expect_boolean ? "expected a predicate but got a numeric "
                                     "expression: "
                                   : "expected a numeric expression but got "
                                     "a predicate: ") +
        expr.ToString());
  }
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return Status::Ok();
    case ExprKind::kAttrRef:
      if (expr.table_index < 0 || expr.attr_index < 0) {
        return Status::FailedPrecondition("unresolved attribute reference " +
                                          expr.ToString());
      }
      return Status::Ok();
    case ExprKind::kUnary:
      SENSJOIN_CHECK_EQ(expr.args.size(), 1u);
      return ValidateExpr(*expr.args[0], expr.unary_op == UnaryOp::kNot);
    case ExprKind::kBinary: {
      SENSJOIN_CHECK_EQ(expr.args.size(), 2u);
      const bool operands_boolean = expr.binary_op == BinaryOp::kAnd ||
                                    expr.binary_op == BinaryOp::kOr;
      SENSJOIN_RETURN_IF_ERROR(ValidateExpr(*expr.args[0], operands_boolean));
      SENSJOIN_RETURN_IF_ERROR(ValidateExpr(*expr.args[1], operands_boolean));
      return Status::Ok();
    }
    case ExprKind::kFunc: {
      const int arity = FunctionArity(expr.func);
      if (arity < 0) {
        return Status::InvalidArgument("unknown function '" + expr.func + "'");
      }
      if (static_cast<int>(expr.args.size()) != arity) {
        return Status::InvalidArgument(
            "function '" + expr.func + "' takes " + std::to_string(arity) +
            " argument(s), got " + std::to_string(expr.args.size()));
      }
      for (const auto& a : expr.args) {
        SENSJOIN_RETURN_IF_ERROR(ValidateExpr(*a, /*expect_boolean=*/false));
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable expression kind");
}

double EvalScalar(const Expr& expr, const ScalarContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kAttrRef:
      return ctx.Value(expr.table_index, expr.attr_index);
    case ExprKind::kUnary:
      SENSJOIN_DCHECK(expr.unary_op == UnaryOp::kNeg);
      return -EvalScalar(*expr.args[0], ctx);
    case ExprKind::kBinary: {
      const double lhs = EvalScalar(*expr.args[0], ctx);
      const double rhs = EvalScalar(*expr.args[1], ctx);
      switch (expr.binary_op) {
        case BinaryOp::kAdd: return lhs + rhs;
        case BinaryOp::kSub: return lhs - rhs;
        case BinaryOp::kMul: return lhs * rhs;
        case BinaryOp::kDiv: return lhs / rhs;
        default:
          SENSJOIN_CHECK(false) << "boolean operator in numeric context:"
                                << expr.ToString();
      }
      return 0.0;
    }
    case ExprKind::kFunc: {
      if (expr.func == "abs") return std::abs(EvalScalar(*expr.args[0], ctx));
      if (expr.func == "sqrt") {
        return std::sqrt(EvalScalar(*expr.args[0], ctx));
      }
      if (expr.func == "min") {
        return std::min(EvalScalar(*expr.args[0], ctx),
                        EvalScalar(*expr.args[1], ctx));
      }
      if (expr.func == "max") {
        return std::max(EvalScalar(*expr.args[0], ctx),
                        EvalScalar(*expr.args[1], ctx));
      }
      if (expr.func == "distance") {
        const double dx =
            EvalScalar(*expr.args[0], ctx) - EvalScalar(*expr.args[2], ctx);
        const double dy =
            EvalScalar(*expr.args[1], ctx) - EvalScalar(*expr.args[3], ctx);
        return std::sqrt(dx * dx + dy * dy);
      }
      SENSJOIN_CHECK(false) << "unknown function" << expr.func;
      return 0.0;
    }
  }
  SENSJOIN_CHECK(false) << "unreachable";
  return 0.0;
}

bool EvalPredicate(const Expr& expr, const ScalarContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kUnary:
      SENSJOIN_DCHECK(expr.unary_op == UnaryOp::kNot);
      return !EvalPredicate(*expr.args[0], ctx);
    case ExprKind::kBinary:
      switch (expr.binary_op) {
        case BinaryOp::kAnd:
          return EvalPredicate(*expr.args[0], ctx) &&
                 EvalPredicate(*expr.args[1], ctx);
        case BinaryOp::kOr:
          return EvalPredicate(*expr.args[0], ctx) ||
                 EvalPredicate(*expr.args[1], ctx);
        case BinaryOp::kLt:
          return EvalScalar(*expr.args[0], ctx) < EvalScalar(*expr.args[1], ctx);
        case BinaryOp::kLe:
          return EvalScalar(*expr.args[0], ctx) <=
                 EvalScalar(*expr.args[1], ctx);
        case BinaryOp::kGt:
          return EvalScalar(*expr.args[0], ctx) > EvalScalar(*expr.args[1], ctx);
        case BinaryOp::kGe:
          return EvalScalar(*expr.args[0], ctx) >=
                 EvalScalar(*expr.args[1], ctx);
        case BinaryOp::kEq:
          return EvalScalar(*expr.args[0], ctx) ==
                 EvalScalar(*expr.args[1], ctx);
        case BinaryOp::kNe:
          return EvalScalar(*expr.args[0], ctx) !=
                 EvalScalar(*expr.args[1], ctx);
        default:
          break;
      }
      break;
    default:
      break;
  }
  SENSJOIN_CHECK(false) << "not a predicate:" << expr.ToString();
  return false;
}

}  // namespace sensjoin::query
