#ifndef SENSJOIN_QUERY_QUERY_H_
#define SENSJOIN_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "sensjoin/common/statusor.h"
#include "sensjoin/data/schema.h"
#include "sensjoin/query/ast.h"

namespace sensjoin::query {

/// One FROM-list entry after analysis.
struct AnalyzedTable {
  std::string relation;
  std::string alias;

  /// Conjunction of the WHERE conjuncts referencing only this table, with
  /// attribute references resolved; null if there are none. Evaluated
  /// locally at each node (selections are pushed down; Sec. IV-A, Fig. 1
  /// line 9).
  std::unique_ptr<Expr> selection;

  /// Schema attribute indices referenced by join predicates through this
  /// table (sorted, unique). These form the join-attribute tuple
  /// (Definition 1).
  std::vector<int> join_attr_indices;

  /// Schema attribute indices this query ships from nodes of this table:
  /// attributes in the SELECT list plus the join attributes (sorted,
  /// unique). Selection-only attributes stay local.
  std::vector<int> queried_attr_indices;
};

/// A semantically analyzed join query: attribute references resolved against
/// the network schema, WHERE split into per-table selections and join
/// predicates, expressions validated. This is the form the executors run.
class AnalyzedQuery {
 public:
  /// Analyzes `parsed` against `schema` (the attribute schema shared by all
  /// sensor relations of the network; Sec. III "Declarative Queries").
  static StatusOr<AnalyzedQuery> Analyze(ParsedQuery parsed,
                                         const data::Schema& schema);

  /// Convenience: parse + analyze.
  static StatusOr<AnalyzedQuery> FromString(const std::string& sql,
                                            const data::Schema& schema);

  AnalyzedQuery(AnalyzedQuery&&) = default;
  AnalyzedQuery& operator=(AnalyzedQuery&&) = default;

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const AnalyzedTable& table(int i) const { return tables_[i]; }
  const std::vector<AnalyzedTable>& tables() const { return tables_; }

  /// WHERE conjuncts referencing two or more tables (the join conditions);
  /// resolved and validated.
  const std::vector<std::unique_ptr<Expr>>& join_predicates() const {
    return join_predicates_;
  }

  /// Resolved SELECT list (empty if select_star()).
  const std::vector<SelectItem>& select() const { return select_; }
  bool select_star() const { return select_star_; }
  bool has_aggregates() const { return has_aggregates_; }

  ParsedQuery::Mode mode() const { return mode_; }
  double sample_period_s() const { return sample_period_s_; }

  const data::Schema& schema() const { return schema_; }

  /// True if two FROM entries name the same relation.
  bool IsSelfJoin() const;

  /// Wire size of the join-attribute tuple of table `i`.
  int JoinAttrTupleBytes(int i) const;
  /// Wire size of the attributes shipped for table `i` in the final phase.
  int QueriedTupleBytes(int i) const;

  /// Indices of the FROM entries whose relation is `relation_name`.
  std::vector<int> TablesOfRelation(const std::string& relation_name) const;

  /// Union of join-attribute indices over all FROM entries of
  /// `relation_name` (a self-joined node sends one join-attribute tuple
  /// covering both aliases; Sec. IV-B).
  std::vector<int> UnionJoinAttrIndices(const std::string& relation_name) const;

  /// Union of shipped attribute indices over all FROM entries of
  /// `relation_name`.
  std::vector<int> UnionQueriedAttrIndices(
      const std::string& relation_name) const;

  /// Distinct relation names in FROM order.
  std::vector<std::string> RelationNames() const;

  /// Approximate wire size of the query message for dissemination.
  size_t QueryWireBytes() const { return query_wire_bytes_; }

  /// Multi-line EXPLAIN-style description: tables with their selections,
  /// join predicates, join/shipped attributes, mode.
  std::string DebugString() const;

 private:
  AnalyzedQuery() = default;

  std::vector<AnalyzedTable> tables_;
  std::vector<std::unique_ptr<Expr>> join_predicates_;
  std::vector<SelectItem> select_;
  bool select_star_ = false;
  bool has_aggregates_ = false;
  ParsedQuery::Mode mode_ = ParsedQuery::Mode::kOnce;
  double sample_period_s_ = 0.0;
  data::Schema schema_;
  size_t query_wire_bytes_ = 0;
};

}  // namespace sensjoin::query

#endif  // SENSJOIN_QUERY_QUERY_H_
