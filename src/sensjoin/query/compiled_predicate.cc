#include "sensjoin/query/compiled_predicate.h"

#include <algorithm>

#include "sensjoin/common/logging.h"
#include "sensjoin/query/interval_eval.h"

namespace sensjoin::query {
namespace {

/// Stack capacity of the evaluator. Deeper predicates (beyond ~30 nested
/// operators) compile to a single tree-evaluator fallback op instead.
constexpr int kMaxStack = 32;

/// Tracks the stack depth a program needs; compilation bails out to a full
/// fallback when it would overflow the fixed evaluation stacks.
int TreeDepth(const Expr& e) {
  int worst = 0;
  for (size_t i = 0; i < e.args.size(); ++i) {
    // Postfix evaluation keeps i earlier operand results on the stack while
    // computing operand i.
    worst = std::max(worst, static_cast<int>(i) + TreeDepth(*e.args[i]));
  }
  return worst + 1;
}

/// IntervalContext over the raw per-table row pointers Eval receives, for
/// the tree-evaluator fallback ops.
class RawRowContext : public IntervalContext {
 public:
  explicit RawRowContext(const Interval* const* rows) : rows_(rows) {}

  Interval Value(int table_index, int attr_index) const override {
    SENSJOIN_DCHECK(rows_[table_index] != nullptr);
    return rows_[table_index][attr_index];
  }

 private:
  const Interval* const* rows_;
};

}  // namespace

CompiledPredicate CompiledPredicate::Compile(const Expr& pred) {
  CompiledPredicate p;
  if (TreeDepth(pred) > kMaxStack) {
    Op op;
    op.code = OpCode::kFallbackTri;
    op.subtree = &pred;
    p.ops_.push_back(op);
    return p;
  }
  p.CompileTri(pred);
  p.DetectFastPattern();
  return p;
}

void CompiledPredicate::DetectFastPattern() {
  const auto is_cmp_lit = [](OpCode c) {
    return c == OpCode::kCmpLtLit || c == OpCode::kCmpLeLit ||
           c == OpCode::kCmpGtLit || c == OpCode::kCmpGeLit ||
           c == OpCode::kCmpEqLit || c == OpCode::kCmpNeLit;
  };
  if (ops_.size() == 3 && ops_[0].code == OpCode::kSubAttrs &&
      ops_[1].code == OpCode::kAbs && is_cmp_lit(ops_[2].code)) {
    fast_ = Fast::kAbsSubCmpLit;
  } else if (ops_.size() == 6 && ops_[0].code == OpCode::kPushAttr &&
             ops_[1].code == OpCode::kPushAttr &&
             ops_[2].code == OpCode::kPushAttr &&
             ops_[3].code == OpCode::kPushAttr &&
             ops_[4].code == OpCode::kDistance && is_cmp_lit(ops_[5].code)) {
    fast_ = Fast::kDistanceCmpLit;
  }
}

void CompiledPredicate::CompileNumeric(const Expr& e) {
  Op op;
  switch (e.kind) {
    case ExprKind::kLiteral:
      op.code = OpCode::kPushLit;
      op.literal = e.literal;
      ops_.push_back(op);
      return;
    case ExprKind::kAttrRef:
      op.code = OpCode::kPushAttr;
      op.table = static_cast<int16_t>(e.table_index);
      op.attr = static_cast<int16_t>(e.attr_index);
      ops_.push_back(op);
      return;
    case ExprKind::kUnary:
      if (e.unary_op == UnaryOp::kNeg) {
        CompileNumeric(*e.args[0]);
        op.code = OpCode::kNeg;
        ops_.push_back(op);
        return;
      }
      break;
    case ExprKind::kBinary: {
      OpCode code;
      switch (e.binary_op) {
        case BinaryOp::kAdd: code = OpCode::kAdd; break;
        case BinaryOp::kSub: code = OpCode::kSub; break;
        case BinaryOp::kMul: code = OpCode::kMul; break;
        case BinaryOp::kDiv: code = OpCode::kDiv; break;
        default: code = OpCode::kFallbackNum; break;
      }
      if (code == OpCode::kSub && e.args[0]->kind == ExprKind::kAttrRef &&
          e.args[1]->kind == ExprKind::kAttrRef) {
        op.code = OpCode::kSubAttrs;
        op.table = static_cast<int16_t>(e.args[0]->table_index);
        op.attr = static_cast<int16_t>(e.args[0]->attr_index);
        op.table2 = static_cast<int16_t>(e.args[1]->table_index);
        op.attr2 = static_cast<int16_t>(e.args[1]->attr_index);
        ops_.push_back(op);
        return;
      }
      if (code != OpCode::kFallbackNum) {
        CompileNumeric(*e.args[0]);
        CompileNumeric(*e.args[1]);
        op.code = code;
        ops_.push_back(op);
        return;
      }
      break;
    }
    case ExprKind::kFunc: {
      OpCode code;
      if (e.func == "abs") {
        code = OpCode::kAbs;
      } else if (e.func == "sqrt") {
        code = OpCode::kSqrt;
      } else if (e.func == "min") {
        code = OpCode::kMin;
      } else if (e.func == "max") {
        code = OpCode::kMax;
      } else if (e.func == "distance") {
        code = OpCode::kDistance;
      } else {
        break;
      }
      for (const auto& a : e.args) CompileNumeric(*a);
      op.code = code;
      ops_.push_back(op);
      return;
    }
  }
  // Unsupported numeric shape: evaluate the subtree through the tree walker
  // (which preserves its CHECK behavior on invalid trees).
  op.code = OpCode::kFallbackNum;
  op.subtree = &e;
  ops_.push_back(op);
}

void CompiledPredicate::CompileTri(const Expr& e) {
  Op op;
  switch (e.kind) {
    case ExprKind::kUnary:
      if (e.unary_op == UnaryOp::kNot) {
        CompileTri(*e.args[0]);
        op.code = OpCode::kNot;
        ops_.push_back(op);
        return;
      }
      break;
    case ExprKind::kBinary: {
      switch (e.binary_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          CompileTri(*e.args[0]);
          CompileTri(*e.args[1]);
          op.code =
              e.binary_op == BinaryOp::kAnd ? OpCode::kAnd : OpCode::kOr;
          ops_.push_back(op);
          return;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
        case BinaryOp::kEq:
        case BinaryOp::kNe: {
          CompileNumeric(*e.args[0]);
          // A literal right-hand side (the typical band threshold) fuses
          // into the comparison.
          const bool lit_rhs = e.args[1]->kind == ExprKind::kLiteral;
          if (!lit_rhs) CompileNumeric(*e.args[1]);
          switch (e.binary_op) {
            case BinaryOp::kLt:
              op.code = lit_rhs ? OpCode::kCmpLtLit : OpCode::kCmpLt;
              break;
            case BinaryOp::kLe:
              op.code = lit_rhs ? OpCode::kCmpLeLit : OpCode::kCmpLe;
              break;
            case BinaryOp::kGt:
              op.code = lit_rhs ? OpCode::kCmpGtLit : OpCode::kCmpGt;
              break;
            case BinaryOp::kGe:
              op.code = lit_rhs ? OpCode::kCmpGeLit : OpCode::kCmpGe;
              break;
            case BinaryOp::kEq:
              op.code = lit_rhs ? OpCode::kCmpEqLit : OpCode::kCmpEq;
              break;
            default:
              op.code = lit_rhs ? OpCode::kCmpNeLit : OpCode::kCmpNe;
              break;
          }
          if (lit_rhs) op.literal = e.args[1]->literal;
          ops_.push_back(op);
          return;
        }
        default:
          break;
      }
      break;
    }
    default:
      break;
  }
  op.code = OpCode::kFallbackTri;
  op.subtree = &e;
  ops_.push_back(op);
}

Tri CompiledPredicate::Eval(const Interval* const* rows) const {
  // Specialized shapes: the same interval operations Eval's generic loop
  // would run, without the dispatch.
  if (fast_ == Fast::kAbsSubCmpLit) {
    const Op& sub = ops_[0];
    const Op& cmp = ops_[2];
    const Interval v =
        Abs(Sub(rows[sub.table][sub.attr], rows[sub.table2][sub.attr2]));
    const Interval lit = Interval::Single(cmp.literal);
    switch (cmp.code) {
      case OpCode::kCmpLtLit: return Lt(v, lit);
      case OpCode::kCmpLeLit: return Le(v, lit);
      case OpCode::kCmpGtLit: return Gt(v, lit);
      case OpCode::kCmpGeLit: return Ge(v, lit);
      case OpCode::kCmpEqLit: return Eq(v, lit);
      default: return Ne(v, lit);
    }
  }
  if (fast_ == Fast::kDistanceCmpLit) {
    const Interval dx = Sub(rows[ops_[0].table][ops_[0].attr],
                            rows[ops_[2].table][ops_[2].attr]);
    const Interval dy = Sub(rows[ops_[1].table][ops_[1].attr],
                            rows[ops_[3].table][ops_[3].attr]);
    const Interval v = Sqrt(Add(Square(dx), Square(dy)));
    const Op& cmp = ops_[5];
    const Interval lit = Interval::Single(cmp.literal);
    switch (cmp.code) {
      case OpCode::kCmpLtLit: return Lt(v, lit);
      case OpCode::kCmpLeLit: return Le(v, lit);
      case OpCode::kCmpGtLit: return Gt(v, lit);
      case OpCode::kCmpGeLit: return Ge(v, lit);
      case OpCode::kCmpEqLit: return Eq(v, lit);
      default: return Ne(v, lit);
    }
  }

  Interval num[kMaxStack];
  Tri tri[kMaxStack];
  int nt = 0;
  int tt = 0;
  for (const Op& op : ops_) {
    switch (op.code) {
      case OpCode::kPushLit:
        num[nt++] = Interval::Single(op.literal);
        break;
      case OpCode::kPushAttr:
        num[nt++] = rows[op.table][op.attr];
        break;
      case OpCode::kAdd:
        num[nt - 2] = Add(num[nt - 2], num[nt - 1]);
        --nt;
        break;
      case OpCode::kSub:
        num[nt - 2] = Sub(num[nt - 2], num[nt - 1]);
        --nt;
        break;
      case OpCode::kMul:
        num[nt - 2] = Mul(num[nt - 2], num[nt - 1]);
        --nt;
        break;
      case OpCode::kDiv:
        num[nt - 2] = Div(num[nt - 2], num[nt - 1]);
        --nt;
        break;
      case OpCode::kNeg:
        num[nt - 1] = Neg(num[nt - 1]);
        break;
      case OpCode::kAbs:
        num[nt - 1] = Abs(num[nt - 1]);
        break;
      case OpCode::kSqrt:
        num[nt - 1] = Sqrt(num[nt - 1]);
        break;
      case OpCode::kMin:
        num[nt - 2] = Min(num[nt - 2], num[nt - 1]);
        --nt;
        break;
      case OpCode::kMax:
        num[nt - 2] = Max(num[nt - 2], num[nt - 1]);
        --nt;
        break;
      case OpCode::kDistance: {
        const Interval dx = Sub(num[nt - 4], num[nt - 2]);
        const Interval dy = Sub(num[nt - 3], num[nt - 1]);
        num[nt - 4] = Sqrt(Add(Square(dx), Square(dy)));
        nt -= 3;
        break;
      }
      case OpCode::kSubAttrs:
        num[nt++] =
            Sub(rows[op.table][op.attr], rows[op.table2][op.attr2]);
        break;
      case OpCode::kCmpLt:
        tri[tt++] = Lt(num[nt - 2], num[nt - 1]);
        nt -= 2;
        break;
      case OpCode::kCmpLe:
        tri[tt++] = Le(num[nt - 2], num[nt - 1]);
        nt -= 2;
        break;
      case OpCode::kCmpGt:
        tri[tt++] = Gt(num[nt - 2], num[nt - 1]);
        nt -= 2;
        break;
      case OpCode::kCmpGe:
        tri[tt++] = Ge(num[nt - 2], num[nt - 1]);
        nt -= 2;
        break;
      case OpCode::kCmpEq:
        tri[tt++] = Eq(num[nt - 2], num[nt - 1]);
        nt -= 2;
        break;
      case OpCode::kCmpNe:
        tri[tt++] = Ne(num[nt - 2], num[nt - 1]);
        nt -= 2;
        break;
      case OpCode::kCmpLtLit:
        tri[tt++] = Lt(num[nt - 1], Interval::Single(op.literal));
        --nt;
        break;
      case OpCode::kCmpLeLit:
        tri[tt++] = Le(num[nt - 1], Interval::Single(op.literal));
        --nt;
        break;
      case OpCode::kCmpGtLit:
        tri[tt++] = Gt(num[nt - 1], Interval::Single(op.literal));
        --nt;
        break;
      case OpCode::kCmpGeLit:
        tri[tt++] = Ge(num[nt - 1], Interval::Single(op.literal));
        --nt;
        break;
      case OpCode::kCmpEqLit:
        tri[tt++] = Eq(num[nt - 1], Interval::Single(op.literal));
        --nt;
        break;
      case OpCode::kCmpNeLit:
        tri[tt++] = Ne(num[nt - 1], Interval::Single(op.literal));
        --nt;
        break;
      case OpCode::kAnd:
        tri[tt - 2] = And(tri[tt - 2], tri[tt - 1]);
        --tt;
        break;
      case OpCode::kOr:
        tri[tt - 2] = Or(tri[tt - 2], tri[tt - 1]);
        --tt;
        break;
      case OpCode::kNot:
        tri[tt - 1] = Not(tri[tt - 1]);
        break;
      case OpCode::kFallbackNum: {
        const RawRowContext ctx(rows);
        num[nt++] = EvalInterval(*op.subtree, ctx);
        break;
      }
      case OpCode::kFallbackTri: {
        const RawRowContext ctx(rows);
        tri[tt++] = EvalTri(*op.subtree, ctx);
        break;
      }
    }
  }
  SENSJOIN_DCHECK(tt == 1 && nt == 0);
  return tri[0];
}

}  // namespace sensjoin::query
