#include "sensjoin/query/signature.h"

#include <set>

namespace sensjoin::query {

std::string SharingSignatureOf(const AnalyzedQuery& q) {
  std::string sig;
  for (int t = 0; t < q.num_tables(); ++t) {
    const AnalyzedTable& table = q.table(t);
    sig += "from(";
    sig += table.relation;
    sig += ";";
    if (table.selection != nullptr) sig += table.selection->ToString();
    sig += ")";
  }
  std::set<int> attrs;
  for (int t = 0; t < q.num_tables(); ++t) {
    attrs.insert(q.table(t).join_attr_indices.begin(),
                 q.table(t).join_attr_indices.end());
  }
  sig += "dims(";
  for (int a : attrs) {
    sig += std::to_string(a);
    sig += ",";
  }
  sig += ")";
  return sig;
}

}  // namespace sensjoin::query
