#ifndef SENSJOIN_QUERY_PARSER_H_
#define SENSJOIN_QUERY_PARSER_H_

#include <string>

#include "sensjoin/common/statusor.h"
#include "sensjoin/query/ast.h"

namespace sensjoin::query {

/// Parses a query of the dialect in Sec. III:
///
///   SELECT <item>[, ...] | *
///   FROM <relation> [<alias>][, ...]
///   [WHERE <boolean expression>]
///   {ONCE | SAMPLE PERIOD <seconds>}
///
/// Select items may be wrapped in MIN/MAX/SUM/AVG/COUNT aggregates.
/// Expressions support + - * /, comparisons, AND/OR/NOT, abs()/|x|,
/// distance(x1,y1,x2,y2), sqrt(), min(), max().
StatusOr<ParsedQuery> Parse(const std::string& input);

/// Parses a standalone expression (handy for tests and programmatic use).
StatusOr<std::unique_ptr<Expr>> ParseExpression(const std::string& input);

}  // namespace sensjoin::query

#endif  // SENSJOIN_QUERY_PARSER_H_
