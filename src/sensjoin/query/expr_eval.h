#ifndef SENSJOIN_QUERY_EXPR_EVAL_H_
#define SENSJOIN_QUERY_EXPR_EVAL_H_

#include <vector>

#include "sensjoin/common/status.h"
#include "sensjoin/data/tuple.h"
#include "sensjoin/query/ast.h"

namespace sensjoin::query {

/// Supplies attribute values during evaluation: one value per
/// (table_index, attr_index) pair resolved by Analyze().
class ScalarContext {
 public:
  virtual ~ScalarContext() = default;
  virtual double Value(int table_index, int attr_index) const = 0;
};

/// A ScalarContext over one tuple per FROM-list entry (borrowed pointers;
/// must outlive the context).
class TupleContext : public ScalarContext {
 public:
  explicit TupleContext(std::vector<const data::Tuple*> tuples)
      : tuples_(std::move(tuples)) {}

  double Value(int table_index, int attr_index) const override;

 private:
  std::vector<const data::Tuple*> tuples_;
};

/// True if `expr` produces a truth value (comparison / logical operator)
/// rather than a number.
bool IsBooleanExpr(const Expr& expr);

/// Structural validation: known functions with correct arity, numeric
/// operands where numbers are expected, resolved attribute references.
/// `expect_boolean` states whether the root must be a predicate.
/// Run once at analysis time so evaluation can use bare CHECKs.
Status ValidateExpr(const Expr& expr, bool expect_boolean);

/// Evaluates a numeric expression. Requires a validated, resolved tree.
double EvalScalar(const Expr& expr, const ScalarContext& ctx);

/// Evaluates a predicate. Requires a validated, resolved boolean tree.
bool EvalPredicate(const Expr& expr, const ScalarContext& ctx);

}  // namespace sensjoin::query

#endif  // SENSJOIN_QUERY_EXPR_EVAL_H_
