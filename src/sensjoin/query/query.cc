#include "sensjoin/query/query.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "sensjoin/common/logging.h"
#include "sensjoin/query/expr_eval.h"
#include "sensjoin/query/parser.h"

namespace sensjoin::query {
namespace {

/// Flattens an AND tree into its conjuncts.
void SplitConjuncts(std::unique_ptr<Expr> expr,
                    std::vector<std::unique_ptr<Expr>>* out) {
  if (expr->kind == ExprKind::kBinary && expr->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(std::move(expr->args[0]), out);
    SplitConjuncts(std::move(expr->args[1]), out);
    return;
  }
  out->push_back(std::move(expr));
}

/// Resolves attribute references in `expr` against the alias map and the
/// schema. Unqualified references are allowed only with a single table.
Status ResolveRefs(Expr* expr, const std::map<std::string, int>& alias_index,
                   const data::Schema& schema) {
  if (expr->kind == ExprKind::kAttrRef) {
    if (expr->table.empty()) {
      if (alias_index.size() != 1) {
        return Status::InvalidArgument(
            "unqualified attribute '" + expr->attr +
            "' is ambiguous with multiple relations in FROM");
      }
      expr->table_index = alias_index.begin()->second;
    } else {
      auto it = alias_index.find(expr->table);
      if (it == alias_index.end()) {
        return Status::InvalidArgument("unknown table alias '" + expr->table +
                                       "'");
      }
      expr->table_index = it->second;
    }
    expr->attr_index = schema.IndexOf(expr->attr);
    if (expr->attr_index < 0) {
      return Status::InvalidArgument("unknown attribute '" + expr->attr + "'");
    }
    return Status::Ok();
  }
  for (auto& a : expr->args) {
    SENSJOIN_RETURN_IF_ERROR(ResolveRefs(a.get(), alias_index, schema));
  }
  return Status::Ok();
}

/// Collects (table_index -> attr indices) over a resolved expression.
void CollectAttrRefs(const Expr& expr,
                     std::map<int, std::set<int>>* by_table) {
  if (expr.kind == ExprKind::kAttrRef) {
    (*by_table)[expr.table_index].insert(expr.attr_index);
    return;
  }
  for (const auto& a : expr.args) CollectAttrRefs(*a, by_table);
}

std::vector<int> SortedVector(const std::set<int>& s) {
  return std::vector<int>(s.begin(), s.end());
}

}  // namespace

StatusOr<AnalyzedQuery> AnalyzedQuery::Analyze(ParsedQuery parsed,
                                               const data::Schema& schema) {
  AnalyzedQuery q;
  q.schema_ = schema;
  q.mode_ = parsed.mode;
  q.sample_period_s_ = parsed.sample_period_s;
  q.select_star_ = parsed.select_star;

  if (parsed.from.empty()) {
    return Status::InvalidArgument("FROM list is empty");
  }

  std::map<std::string, int> alias_index;
  for (size_t i = 0; i < parsed.from.size(); ++i) {
    const TableRef& ref = parsed.from[i];
    if (!alias_index.emplace(ref.alias, static_cast<int>(i)).second) {
      return Status::InvalidArgument("duplicate table alias '" + ref.alias +
                                     "'");
    }
    AnalyzedTable table;
    table.relation = ref.relation;
    table.alias = ref.alias;
    q.tables_.push_back(std::move(table));
  }

  // SELECT list.
  int aggregate_items = 0;
  for (SelectItem& item : parsed.select) {
    if (item.aggregate != AggregateKind::kNone) ++aggregate_items;
    if (item.expr != nullptr) {
      SENSJOIN_RETURN_IF_ERROR(
          ResolveRefs(item.expr.get(), alias_index, schema));
      SENSJOIN_RETURN_IF_ERROR(
          ValidateExpr(*item.expr, /*expect_boolean=*/false));
    } else if (item.aggregate != AggregateKind::kCount) {
      return Status::Internal("select item without expression");
    }
    q.select_.push_back(std::move(item));
  }
  if (aggregate_items > 0 &&
      aggregate_items != static_cast<int>(q.select_.size())) {
    return Status::InvalidArgument(
        "mixing aggregate and plain select items requires GROUP BY, which is "
        "not supported");
  }
  q.has_aggregates_ = aggregate_items > 0;
  if (q.select_star_ && !q.select_.empty()) {
    return Status::Internal("SELECT * with explicit items");
  }

  // WHERE: split into per-table selections and join predicates.
  std::vector<std::unique_ptr<Expr>> per_table_selection_conjuncts;
  if (parsed.where != nullptr) {
    SENSJOIN_RETURN_IF_ERROR(
        ResolveRefs(parsed.where.get(), alias_index, schema));
    SENSJOIN_RETURN_IF_ERROR(
        ValidateExpr(*parsed.where, /*expect_boolean=*/true));
    std::vector<std::unique_ptr<Expr>> conjuncts;
    SplitConjuncts(std::move(parsed.where), &conjuncts);
    for (auto& conjunct : conjuncts) {
      std::set<int> tables;
      conjunct->CollectTableIndices(&tables);
      if (tables.size() <= 1) {
        const int t = tables.empty() ? 0 : *tables.begin();
        AnalyzedTable& table = q.tables_[t];
        if (table.selection == nullptr) {
          table.selection = std::move(conjunct);
        } else {
          table.selection = Expr::Binary(
              BinaryOp::kAnd, std::move(table.selection), std::move(conjunct));
        }
      } else {
        q.join_predicates_.push_back(std::move(conjunct));
      }
    }
  }

  if (q.tables_.size() >= 2 && q.join_predicates_.empty()) {
    return Status::InvalidArgument(
        "query joins multiple relations but has no join predicate "
        "(cross products are not supported)");
  }

  // Join attributes per table.
  {
    std::map<int, std::set<int>> join_attrs;
    for (const auto& p : q.join_predicates_) CollectAttrRefs(*p, &join_attrs);
    for (auto& [t, attrs] : join_attrs) {
      q.tables_[t].join_attr_indices = SortedVector(attrs);
    }
  }

  // Shipped attributes per table: SELECT refs plus join attributes.
  {
    std::map<int, std::set<int>> shipped;
    for (const SelectItem& item : q.select_) {
      if (item.expr != nullptr) CollectAttrRefs(*item.expr, &shipped);
    }
    for (int t = 0; t < q.num_tables(); ++t) {
      std::set<int> attrs = shipped.count(t) ? shipped[t] : std::set<int>{};
      for (int a : q.tables_[t].join_attr_indices) attrs.insert(a);
      if (q.select_star_) {
        for (int a = 0; a < schema.num_attributes(); ++a) attrs.insert(a);
      }
      q.tables_[t].queried_attr_indices = SortedVector(attrs);
    }
  }

  // Rough query wire size for dissemination accounting: a fixed header plus
  // a few bytes per select item, table and predicate node.
  size_t bytes = 8;
  bytes += 4 * q.select_.size();
  bytes += 4 * q.tables_.size();
  for (const auto& p : q.join_predicates_) bytes += p->ToString().size() / 2;
  for (const auto& t : q.tables_) {
    if (t.selection != nullptr) bytes += t.selection->ToString().size() / 2;
  }
  q.query_wire_bytes_ = bytes;

  return q;
}

StatusOr<AnalyzedQuery> AnalyzedQuery::FromString(const std::string& sql,
                                                  const data::Schema& schema) {
  SENSJOIN_ASSIGN_OR_RETURN(ParsedQuery parsed, Parse(sql));
  return Analyze(std::move(parsed), schema);
}

bool AnalyzedQuery::IsSelfJoin() const {
  std::set<std::string> names;
  for (const AnalyzedTable& t : tables_) {
    if (!names.insert(t.relation).second) return true;
  }
  return false;
}

int AnalyzedQuery::JoinAttrTupleBytes(int i) const {
  return schema_.ProjectionWireBytes(tables_[i].join_attr_indices);
}

int AnalyzedQuery::QueriedTupleBytes(int i) const {
  return schema_.ProjectionWireBytes(tables_[i].queried_attr_indices);
}

std::vector<int> AnalyzedQuery::TablesOfRelation(
    const std::string& relation_name) const {
  std::vector<int> out;
  for (int i = 0; i < num_tables(); ++i) {
    if (tables_[i].relation == relation_name) out.push_back(i);
  }
  return out;
}

std::vector<int> AnalyzedQuery::UnionJoinAttrIndices(
    const std::string& relation_name) const {
  std::set<int> attrs;
  for (int t : TablesOfRelation(relation_name)) {
    attrs.insert(tables_[t].join_attr_indices.begin(),
                 tables_[t].join_attr_indices.end());
  }
  return SortedVector(attrs);
}

std::vector<int> AnalyzedQuery::UnionQueriedAttrIndices(
    const std::string& relation_name) const {
  std::set<int> attrs;
  for (int t : TablesOfRelation(relation_name)) {
    attrs.insert(tables_[t].queried_attr_indices.begin(),
                 tables_[t].queried_attr_indices.end());
  }
  return SortedVector(attrs);
}

std::string AnalyzedQuery::DebugString() const {
  std::string out = "AnalyzedQuery {\n";
  out += "  select:";
  if (select_star_) {
    out += " *";
  } else {
    for (const SelectItem& item : select_) {
      out += " ";
      if (item.aggregate != AggregateKind::kNone) {
        out += AggregateKindName(item.aggregate);
        out += "(";
        out += item.expr != nullptr ? item.expr->ToString() : "*";
        out += ")";
      } else {
        out += item.expr->ToString();
      }
    }
  }
  out += "\n";
  for (const AnalyzedTable& t : tables_) {
    out += "  table " + t.alias + " = " + t.relation;
    if (t.selection != nullptr) {
      out += "  selection: " + t.selection->ToString();
    }
    out += "  join-attrs: [";
    for (size_t i = 0; i < t.join_attr_indices.size(); ++i) {
      if (i > 0) out += ", ";
      out += schema_.attribute(t.join_attr_indices[i]).name;
    }
    out += "]  shipped: [";
    for (size_t i = 0; i < t.queried_attr_indices.size(); ++i) {
      if (i > 0) out += ", ";
      out += schema_.attribute(t.queried_attr_indices[i]).name;
    }
    out += "]\n";
  }
  for (const auto& p : join_predicates_) {
    out += "  join-predicate: " + p->ToString() + "\n";
  }
  out += mode_ == ParsedQuery::Mode::kOnce
             ? "  mode: ONCE\n"
             : "  mode: SAMPLE PERIOD " + std::to_string(sample_period_s_) +
                   "\n";
  out += "}";
  return out;
}

std::vector<std::string> AnalyzedQuery::RelationNames() const {
  std::vector<std::string> names;
  for (const AnalyzedTable& t : tables_) {
    if (std::find(names.begin(), names.end(), t.relation) == names.end()) {
      names.push_back(t.relation);
    }
  }
  return names;
}

}  // namespace sensjoin::query
