#ifndef SENSJOIN_QUERY_COMPILED_PREDICATE_H_
#define SENSJOIN_QUERY_COMPILED_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "sensjoin/query/ast.h"
#include "sensjoin/query/interval.h"

namespace sensjoin::query {

/// A join predicate compiled to a flat postfix program over intervals. The
/// indexed filter join evaluates every surviving candidate combination
/// against the full predicate; doing that through the Expr tree pays
/// recursion, virtual context dispatch and a string compare per function
/// node on the hottest path of the base-station join. The compiled form
/// resolves all of that once and evaluates with the *same* interval
/// operations in the same order, so the result is bit-identical to
/// EvalTri(pred, RowIntervalContext(rows)) for every input.
///
/// Holds borrowed pointers into the predicate tree (fallback subtrees); must
/// not outlive the AnalyzedQuery.
class CompiledPredicate {
 public:
  /// Compiles a resolved, validated predicate. Shapes outside the opcode
  /// set fall back to the tree evaluator for the offending subtree, so
  /// compilation always succeeds and never changes semantics.
  static CompiledPredicate Compile(const Expr& pred);

  /// Evaluates over explicit per-table attribute-interval rows: rows[t]
  /// points at FROM entry t's row indexed by schema attribute (may be null
  /// for tables the predicate does not reference).
  Tri Eval(const Interval* const* rows) const;

 private:
  enum class OpCode : uint8_t {
    kPushLit,
    kPushAttr,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kNeg,
    kAbs,
    kSqrt,
    kMin,
    kMax,
    kDistance,  ///< pops x1 y1 x2 y2, pushes sqrt(square(dx) + square(dy))
    kSubAttrs,  ///< fused attr - attr (the band-join hot path)
    kCmpLt,
    kCmpLe,
    kCmpGt,
    kCmpGe,
    kCmpEq,
    kCmpNe,
    kCmpLtLit,  ///< fused compare against a literal right-hand side
    kCmpLeLit,
    kCmpGtLit,
    kCmpGeLit,
    kCmpEqLit,
    kCmpNeLit,
    kAnd,
    kOr,
    kNot,
    kFallbackNum,  ///< EvalInterval(subtree) onto the interval stack
    kFallbackTri,  ///< EvalTri(subtree) onto the truth stack
  };

  struct Op {
    OpCode code;
    int16_t table = 0;   ///< kPushAttr, kSubAttrs (minuend)
    int16_t attr = 0;    ///< kPushAttr, kSubAttrs (minuend)
    int16_t table2 = 0;  ///< kSubAttrs (subtrahend)
    int16_t attr2 = 0;   ///< kSubAttrs (subtrahend)
    double literal = 0.0;
    const Expr* subtree = nullptr;  ///< borrowed; fallback ops only
  };

  void CompileNumeric(const Expr& e);
  void CompileTri(const Expr& e);
  void DetectFastPattern();

  /// Whole-program specializations of the two shapes that dominate the
  /// indexed join's candidate re-evaluation; they run the identical interval
  /// operations without the op-dispatch loop.
  enum class Fast : uint8_t {
    kNone,
    kAbsSubCmpLit,    ///< |attr - attr| cmp literal (band join)
    kDistanceCmpLit,  ///< distance(ax, ay, bx, by) cmp literal
  };

  std::vector<Op> ops_;
  Fast fast_ = Fast::kNone;
};

}  // namespace sensjoin::query

#endif  // SENSJOIN_QUERY_COMPILED_PREDICATE_H_
