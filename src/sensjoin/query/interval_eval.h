#ifndef SENSJOIN_QUERY_INTERVAL_EVAL_H_
#define SENSJOIN_QUERY_INTERVAL_EVAL_H_

#include <vector>

#include "sensjoin/query/ast.h"
#include "sensjoin/query/interval.h"

namespace sensjoin::query {

/// Supplies per-attribute intervals during conservative evaluation. The
/// filter join at the base station sees quantized join-attribute tuples; the
/// context maps each quantized coordinate to the interval of raw values that
/// quantize into it.
class IntervalContext {
 public:
  virtual ~IntervalContext() = default;
  virtual Interval Value(int table_index, int attr_index) const = 0;
};

/// An IntervalContext over explicit per-table attribute-interval rows
/// (borrowed pointers; must outlive the context). Row i corresponds to FROM
/// entry i; each row holds one Interval per schema attribute index used.
class RowIntervalContext : public IntervalContext {
 public:
  explicit RowIntervalContext(std::vector<const std::vector<Interval>*> rows)
      : rows_(std::move(rows)) {}

  Interval Value(int table_index, int attr_index) const override;

 private:
  std::vector<const std::vector<Interval>*> rows_;
};

/// Evaluates a numeric expression over intervals; result is conservative
/// (contains every value reachable from operand values in the inputs).
/// Requires a validated, resolved tree (ValidateExpr).
Interval EvalInterval(const Expr& expr, const IntervalContext& ctx);

/// Evaluates a predicate over intervals to three-valued truth. A result of
/// kFalse is definitive; kMaybe/kTrue must be retained by the filter join.
Tri EvalTri(const Expr& expr, const IntervalContext& ctx);

}  // namespace sensjoin::query

#endif  // SENSJOIN_QUERY_INTERVAL_EVAL_H_
