#ifndef SENSJOIN_COMMON_GEOMETRY_H_
#define SENSJOIN_COMMON_GEOMETRY_H_

#include <cmath>

namespace sensjoin {

/// A location in the deployment area, in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace sensjoin

#endif  // SENSJOIN_COMMON_GEOMETRY_H_
