#ifndef SENSJOIN_COMMON_CRC16_H_
#define SENSJOIN_COMMON_CRC16_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sensjoin {

/// CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF, no reflection), the
/// checksum family used by 802.15.4 frame check sequences. This is the
/// per-fragment integrity trailer of the fault model's corruption layer
/// (sim::IntegrityParams): a receiver recomputes the CRC over the payload
/// and silently drops any fragment whose trailer mismatches.
uint16_t Crc16(const uint8_t* data, size_t size);

inline uint16_t Crc16(const std::vector<uint8_t>& data) {
  return Crc16(data.data(), data.size());
}

/// Appends the big-endian CRC of everything currently in `frame`.
void AppendCrc16(std::vector<uint8_t>* frame);

/// True when `frame` ends in the correct CRC-16 trailer of the preceding
/// bytes. Frames shorter than the trailer verify false.
bool VerifyCrc16(const std::vector<uint8_t>& frame);

}  // namespace sensjoin

#endif  // SENSJOIN_COMMON_CRC16_H_
