#include "sensjoin/common/crc16.h"

#include <array>

namespace sensjoin {
namespace {

constexpr uint16_t kPoly = 0x1021;

std::array<uint16_t, 256> MakeTable() {
  std::array<uint16_t, 256> table{};
  for (int b = 0; b < 256; ++b) {
    uint16_t crc = static_cast<uint16_t>(b << 8);
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000) ? static_cast<uint16_t>((crc << 1) ^ kPoly)
                           : static_cast<uint16_t>(crc << 1);
    }
    table[b] = crc;
  }
  return table;
}

}  // namespace

uint16_t Crc16(const uint8_t* data, size_t size) {
  static const std::array<uint16_t, 256> table = MakeTable();
  uint16_t crc = 0xFFFF;
  for (size_t i = 0; i < size; ++i) {
    crc = static_cast<uint16_t>((crc << 8) ^ table[(crc >> 8) ^ data[i]]);
  }
  return crc;
}

void AppendCrc16(std::vector<uint8_t>* frame) {
  const uint16_t crc = Crc16(*frame);
  frame->push_back(static_cast<uint8_t>(crc >> 8));
  frame->push_back(static_cast<uint8_t>(crc));
}

bool VerifyCrc16(const std::vector<uint8_t>& frame) {
  if (frame.size() < 2) return false;
  const uint16_t expected = Crc16(frame.data(), frame.size() - 2);
  const uint16_t stored =
      static_cast<uint16_t>((frame[frame.size() - 2] << 8) | frame.back());
  return expected == stored;
}

}  // namespace sensjoin
