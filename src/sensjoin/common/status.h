#ifndef SENSJOIN_COMMON_STATUS_H_
#define SENSJOIN_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace sensjoin {

/// Error categories used throughout the library. The library does not throw
/// exceptions; fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy on the success path
/// (no allocation); errors carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define SENSJOIN_RETURN_IF_ERROR(expr)                \
  do {                                                \
    ::sensjoin::Status _status = (expr);              \
    if (!_status.ok()) return _status;                \
  } while (0)

}  // namespace sensjoin

#endif  // SENSJOIN_COMMON_STATUS_H_
