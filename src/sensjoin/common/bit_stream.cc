#include "sensjoin/common/bit_stream.h"

#include <algorithm>

#include "sensjoin/common/logging.h"

namespace sensjoin {

BitWriter BitWriter::FromBytes(std::vector<uint8_t> bytes, size_t size_bits) {
  SENSJOIN_CHECK(bytes.size() == (size_bits + 7) / 8)
      << "FromBytes:" << bytes.size() << "bytes cannot hold exactly"
      << size_bits << "bits";
  BitWriter w;
  w.bytes_ = std::move(bytes);
  w.size_bits_ = size_bits;
  const int used = static_cast<int>(size_bits % 8);
  if (used != 0) w.bytes_.back() &= static_cast<uint8_t>(0xffu << (8 - used));
  return w;
}

void BitWriter::WriteBits(uint64_t value, int count) {
  SENSJOIN_DCHECK(count >= 0 && count <= 64);
  if (count == 0) return;
  if (count < 64) value &= (1ull << count) - 1;
  int remaining = count;
  // Top up the partial last byte.
  const int used = static_cast<int>(size_bits_ % 8);
  if (used != 0) {
    const int take = std::min(8 - used, remaining);
    const uint64_t chunk = value >> (remaining - take);
    bytes_.back() |= static_cast<uint8_t>(chunk << (8 - used - take));
    size_bits_ += take;
    remaining -= take;
  }
  // Whole bytes, then the tail into a fresh byte's high bits.
  while (remaining >= 8) {
    remaining -= 8;
    bytes_.push_back(static_cast<uint8_t>(value >> remaining));
    size_bits_ += 8;
  }
  if (remaining > 0) {
    bytes_.push_back(static_cast<uint8_t>(value << (8 - remaining)));
    size_bits_ += remaining;
  }
}

void BitWriter::Append(const BitWriter& other) {
  if (other.size_bits_ == 0) return;
  // Fast path: this writer is byte-aligned, copy whole bytes.
  if (size_bits_ % 8 == 0) {
    bytes_.insert(bytes_.end(), other.bytes_.begin(), other.bytes_.end());
    size_bits_ += other.size_bits_;
    // Drop any trailing padding byte the source may have contributed.
    bytes_.resize((size_bits_ + 7) / 8);
    return;
  }
  // Unaligned: the source is byte-aligned on its side, so each of its bytes
  // lands as one shifted write straddling at most two destination bytes.
  bytes_.reserve((size_bits_ + other.size_bits_ + 7) / 8);
  const size_t full = other.size_bits_ / 8;
  for (size_t i = 0; i < full; ++i) WriteBits(other.bytes_[i], 8);
  const int rem = static_cast<int>(other.size_bits_ % 8);
  if (rem > 0) WriteBits(other.bytes_[full] >> (8 - rem), rem);
}

void BitWriter::Truncate(size_t bits) {
  SENSJOIN_DCHECK(bits <= size_bits_);
  size_bits_ = bits;
  bytes_.resize((bits + 7) / 8);
  // Re-zero the dropped low bits of the last byte so later writes can OR
  // into them.
  const int used = static_cast<int>(bits % 8);
  if (used != 0) bytes_.back() &= static_cast<uint8_t>(0xffu << (8 - used));
}

bool BitWriter::BitAt(size_t index) const {
  SENSJOIN_DCHECK(index < size_bits_);
  return (bytes_[index / 8] >> (7 - index % 8)) & 1;
}

uint64_t BitReader::ReadBits(int count) {
  SENSJOIN_DCHECK(count >= 0 && count <= 64);
  SENSJOIN_CHECK(RemainingBits() >= static_cast<size_t>(count))
      << "BitReader overrun: want" << count << "bits, have" << RemainingBits();
  uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    const size_t byte_index = pos_ / 8;
    const int bit_index = 7 - static_cast<int>(pos_ % 8);
    value = (value << 1) | ((bytes_[byte_index] >> bit_index) & 1u);
    ++pos_;
  }
  return value;
}

Status BitReader::TryReadBits(int count, uint64_t* out) {
  if (count < 0 || count > 64) {
    return Status::InvalidArgument("bit count outside [0, 64]");
  }
  if (RemainingBits() < static_cast<size_t>(count)) {
    return Status::OutOfRange("BitReader overrun");
  }
  *out = ReadBits(count);
  return Status::Ok();
}

}  // namespace sensjoin
