#include "sensjoin/common/bit_stream.h"

#include "sensjoin/common/logging.h"

namespace sensjoin {

void BitWriter::WriteBits(uint64_t value, int count) {
  SENSJOIN_DCHECK(count >= 0 && count <= 64);
  for (int i = count - 1; i >= 0; --i) {
    const bool bit = (value >> i) & 1;
    const size_t byte_index = size_bits_ / 8;
    const int bit_index = 7 - static_cast<int>(size_bits_ % 8);
    if (byte_index == bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte_index] |= static_cast<uint8_t>(1u << bit_index);
    ++size_bits_;
  }
}

void BitWriter::Append(const BitWriter& other) {
  // Fast path: this writer is byte-aligned, copy whole bytes.
  if (size_bits_ % 8 == 0) {
    bytes_.insert(bytes_.end(), other.bytes_.begin(), other.bytes_.end());
    size_bits_ += other.size_bits_;
    // Drop any trailing padding byte the source may have contributed.
    bytes_.resize((size_bits_ + 7) / 8);
    return;
  }
  BitReader reader(other);
  size_t remaining = other.size_bits_;
  while (remaining >= 64) {
    WriteBits(reader.ReadBits(64), 64);
    remaining -= 64;
  }
  if (remaining > 0) {
    WriteBits(reader.ReadBits(static_cast<int>(remaining)),
              static_cast<int>(remaining));
  }
}

bool BitWriter::BitAt(size_t index) const {
  SENSJOIN_DCHECK(index < size_bits_);
  return (bytes_[index / 8] >> (7 - index % 8)) & 1;
}

uint64_t BitReader::ReadBits(int count) {
  SENSJOIN_DCHECK(count >= 0 && count <= 64);
  SENSJOIN_CHECK(RemainingBits() >= static_cast<size_t>(count))
      << "BitReader overrun: want" << count << "bits, have" << RemainingBits();
  uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    const size_t byte_index = pos_ / 8;
    const int bit_index = 7 - static_cast<int>(pos_ % 8);
    value = (value << 1) | ((bytes_[byte_index] >> bit_index) & 1u);
    ++pos_;
  }
  return value;
}

}  // namespace sensjoin
