#ifndef SENSJOIN_COMMON_RNG_H_
#define SENSJOIN_COMMON_RNG_H_

#include <cstdint>

namespace sensjoin {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). All randomness in the library flows through this class so
/// that simulations are exactly reproducible for a given seed.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical sequences.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box-Muller).
  double NextGaussian();

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

  /// Derives an independent generator; useful for giving each component its
  /// own stream while keeping global determinism.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace sensjoin

#endif  // SENSJOIN_COMMON_RNG_H_
