#ifndef SENSJOIN_COMMON_BIT_STREAM_H_
#define SENSJOIN_COMMON_BIT_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sensjoin/common/status.h"

namespace sensjoin {

/// Append-only MSB-first bit buffer. This is the wire format used by the
/// quadtree point-set encoding and the entropy coders: sizes are measured in
/// bits and padded to whole bytes only at packetization time.
class BitWriter {
 public:
  BitWriter() = default;

  /// Reconstructs a writer from raw backing bytes holding `size_bits` bits
  /// (e.g. a bitstring that went over the wire, possibly damaged). `bytes`
  /// must be exactly the rounded-up byte count; padding bits in the final
  /// byte are re-zeroed so later appends and equality behave as usual.
  static BitWriter FromBytes(std::vector<uint8_t> bytes, size_t size_bits);

  /// Appends the low `count` bits of `value`, most significant bit first.
  /// Requires count <= 64.
  void WriteBits(uint64_t value, int count);

  /// Appends a single bit (0 or 1).
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  /// Appends every bit of another writer.
  void Append(const BitWriter& other);

  /// Pre-allocates backing storage for `bits` total bits.
  void ReserveBits(size_t bits) { bytes_.reserve((bits + 7) / 8); }

  /// Discards every bit at and after position `bits` (rollback point for
  /// speculative encodes). Requires bits <= size_bits().
  void Truncate(size_t bits);

  /// Number of bits written so far.
  size_t size_bits() const { return size_bits_; }

  /// Number of bytes needed to hold the bits (rounded up).
  size_t size_bytes() const { return (size_bits_ + 7) / 8; }

  /// The backing bytes; the final byte is zero-padded in the low bits.
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  /// Reads bit `index` (0-based from the start of the stream).
  bool BitAt(size_t index) const;

  void Clear() {
    bytes_.clear();
    size_bits_ = 0;
  }

 private:
  std::vector<uint8_t> bytes_;
  size_t size_bits_ = 0;
};

/// Sequential MSB-first reader over a byte buffer produced by BitWriter.
class BitReader {
 public:
  /// Reads from `bytes` (not owned; must outlive the reader), exposing
  /// exactly `size_bits` bits.
  BitReader(const uint8_t* bytes, size_t size_bits)
      : bytes_(bytes), size_bits_(size_bits) {}

  /// Convenience constructor over a BitWriter's contents.
  explicit BitReader(const BitWriter& w)
      : BitReader(w.bytes().data(), w.size_bits()) {}

  /// Reads `count` bits (MSB-first) into the low bits of the result.
  /// Requires count <= 64 and RemainingBits() >= count.
  uint64_t ReadBits(int count);

  /// Reads one bit.
  bool ReadBit() { return ReadBits(1) != 0; }

  /// Bounds-checked variant for untrusted input: reading past the end (or a
  /// count outside [0, 64]) returns OutOfRange and leaves the position and
  /// `*out` untouched instead of aborting.
  Status TryReadBits(int count, uint64_t* out);

  /// Bounds-checked single-bit read.
  Status TryReadBit(bool* out) {
    uint64_t v = 0;
    SENSJOIN_RETURN_IF_ERROR(TryReadBits(1, &v));
    *out = v != 0;
    return Status::Ok();
  }

  size_t position_bits() const { return pos_; }
  size_t RemainingBits() const { return size_bits_ - pos_; }
  bool AtEnd() const { return pos_ >= size_bits_; }

 private:
  const uint8_t* bytes_;
  size_t size_bits_;
  size_t pos_ = 0;
};

}  // namespace sensjoin

#endif  // SENSJOIN_COMMON_BIT_STREAM_H_
