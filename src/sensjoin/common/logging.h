#ifndef SENSJOIN_COMMON_LOGGING_H_
#define SENSJOIN_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace sensjoin {
namespace internal_logging {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used as the right-hand side of the CHECK macros so callers can stream
/// additional context: SENSJOIN_CHECK(x > 0) << "x was " << x;
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }
  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << " " << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed values for disabled checks.
class NullMessage {
 public:
  template <typename T>
  NullMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace sensjoin

/// Aborts with a diagnostic when `condition` is false. Active in all builds:
/// the library's correctness invariants are cheap relative to simulation.
/// The while-loop form makes the macro stream-assignable and statement-safe.
#define SENSJOIN_CHECK(condition)                                     \
  while (!(condition))                                                \
  ::sensjoin::internal_logging::FatalMessage(__FILE__, __LINE__, #condition)

#define SENSJOIN_CHECK_EQ(a, b) SENSJOIN_CHECK((a) == (b))
#define SENSJOIN_CHECK_NE(a, b) SENSJOIN_CHECK((a) != (b))
#define SENSJOIN_CHECK_LT(a, b) SENSJOIN_CHECK((a) < (b))
#define SENSJOIN_CHECK_LE(a, b) SENSJOIN_CHECK((a) <= (b))
#define SENSJOIN_CHECK_GT(a, b) SENSJOIN_CHECK((a) > (b))
#define SENSJOIN_CHECK_GE(a, b) SENSJOIN_CHECK((a) >= (b))

#ifdef NDEBUG
#define SENSJOIN_DCHECK(condition) \
  while (false) ::sensjoin::internal_logging::NullMessage()
#else
#define SENSJOIN_DCHECK(condition) SENSJOIN_CHECK(condition)
#endif

#endif  // SENSJOIN_COMMON_LOGGING_H_
