#include "sensjoin/common/rng.h"

#include <cmath>

#include "sensjoin/common/logging.h"

namespace sensjoin {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  SENSJOIN_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SENSJOIN_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace sensjoin
