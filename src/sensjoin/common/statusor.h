#ifndef SENSJOIN_COMMON_STATUSOR_H_
#define SENSJOIN_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "sensjoin/common/logging.h"
#include "sensjoin/common/status.h"

namespace sensjoin {

/// Holds either a value of type T or an error Status. Mirrors the usual
/// absl::StatusOr contract: accessing the value of an error-holding StatusOr
/// is a checked fatal error.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (error).
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    SENSJOIN_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SENSJOIN_CHECK(ok()) << "StatusOr::value() on error: " << status_;
    return *value_;
  }
  T& value() & {
    SENSJOIN_CHECK(ok()) << "StatusOr::value() on error: " << status_;
    return *value_;
  }
  T&& value() && {
    SENSJOIN_CHECK(ok()) << "StatusOr::value() on error: " << status_;
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr), propagating errors; on success assigns the
/// value to `lhs`.
#define SENSJOIN_ASSIGN_OR_RETURN(lhs, rexpr)                     \
  SENSJOIN_ASSIGN_OR_RETURN_IMPL_(                                \
      SENSJOIN_STATUS_MACRO_CONCAT_(_statusor, __LINE__), lhs, rexpr)

#define SENSJOIN_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                    \
  if (!var.ok()) return var.status();                    \
  lhs = std::move(var).value()

#define SENSJOIN_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define SENSJOIN_STATUS_MACRO_CONCAT_(x, y) \
  SENSJOIN_STATUS_MACRO_CONCAT_INNER_(x, y)

}  // namespace sensjoin

#endif  // SENSJOIN_COMMON_STATUSOR_H_
