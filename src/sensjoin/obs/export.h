#ifndef SENSJOIN_OBS_EXPORT_H_
#define SENSJOIN_OBS_EXPORT_H_

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sensjoin/common/status.h"
#include "sensjoin/obs/metrics.h"
#include "sensjoin/obs/trace.h"

namespace sensjoin::sim {
class Simulator;
}  // namespace sensjoin::sim

namespace sensjoin::obs {

/// Options for the Chrome trace export.
struct TraceExportOptions {
  /// Extra top-level sections appended to the JSON document: pairs of
  /// (field name, raw JSON value). Perfetto ignores unknown top-level
  /// fields, so callers can embed cross-check data (e.g. CostReport totals,
  /// see bench/util/tracing.cc) without breaking loadability.
  std::vector<std::pair<std::string, std::string>> extra_sections;
};

/// Serializes the trace as Chrome trace-event JSON, loadable in Perfetto
/// (ui.perfetto.dev) and chrome://tracing. Layout: pid 0 is the "protocol"
/// track carrying the global phase spans; pid 1 is the "nodes" process with
/// one thread track per sensor node, phases mirrored as duration events on
/// every node active in them and all fragment/ack/fault records as instant
/// events. Timestamps are sim time in microseconds. The document also
/// embeds a metrics snapshot under the top-level "metrics" field.
void WriteChromeTrace(const Tracer& tracer, std::ostream& os,
                      const TraceExportOptions& options = {});
std::string ChromeTraceJson(const Tracer& tracer,
                            const TraceExportOptions& options = {});
Status WriteChromeTraceFile(const Tracer& tracer, const std::string& path,
                            const TraceExportOptions& options = {});

/// Metric snapshot dumps: a JSON object keyed by instrument name, and a
/// flat CSV (kind,name,field,value) for spreadsheet-side analysis.
std::string MetricsJson(const MetricsSnapshot& snapshot);
std::string MetricsCsv(const MetricsSnapshot& snapshot);

/// Captures the simulator's global counters (packets, bytes, energy,
/// per-kind totals) and the event-queue statistics (scheduled / fired /
/// canceled / peak-pending) as gauges in `registry`, so a metrics dump
/// carries the whole-run aggregates next to the traced distributions.
void CaptureSimulatorMetrics(const sim::Simulator& sim,
                             MetricsRegistry* registry);

/// JSON string escaping and full-precision double formatting, shared by the
/// exporters and the bench-side cross-check serialization.
std::string JsonEscape(const std::string& s);
std::string JsonDouble(double v);

}  // namespace sensjoin::obs

#endif  // SENSJOIN_OBS_EXPORT_H_
