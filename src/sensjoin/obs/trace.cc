#include "sensjoin/obs/trace.h"

#include <algorithm>
#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kPhaseBegin:
      return "phase_begin";
    case EventKind::kPhaseEnd:
      return "phase_end";
    case EventKind::kFragTx:
      return "frag_tx";
    case EventKind::kFragRx:
      return "frag_rx";
    case EventKind::kFragLoss:
      return "frag_loss";
    case EventKind::kFragCorrupt:
      return "frag_corrupt";
    case EventKind::kAckTx:
      return "ack_tx";
    case EventKind::kAckRx:
      return "ack_rx";
    case EventKind::kRetransmit:
      return "retransmit";
    case EventKind::kMessageDrop:
      return "message_drop";
    case EventKind::kRecoveryRequest:
      return "recovery_request";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kRestore:
      return "restore";
    case EventKind::kLinkDown:
      return "link_down";
    case EventKind::kLinkUp:
      return "link_up";
    case EventKind::kOrphanDetected:
      return "orphan_detected";
    case EventKind::kRepairRequest:
      return "repair_request";
    case EventKind::kReattach:
      return "reattach";
    case EventKind::kDeadlineExpired:
      return "deadline_expired";
    case EventKind::kDegradedResult:
      return "degraded_result";
    case EventKind::kDuplicateRx:
      return "duplicate_rx";
    case EventKind::kStaleDrop:
      return "stale_drop";
    case EventKind::kReplayRx:
      return "replay_rx";
    case EventKind::kNumKinds:
      break;
  }
  return "unknown";
}

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kNone:
      return "None";
    case Phase::kTreeBuild:
      return "TreeBuild";
    case Phase::kQueryDissemination:
      return "QueryDissemination";
    case Phase::kJoinAttrCollection:
      return "JoinAttributeCollection";
    case Phase::kBaseStationJoin:
      return "BaseStationJoin";
    case Phase::kFilterDissemination:
      return "FilterDissemination";
    case Phase::kFinalResult:
      return "FinalResult";
    case Phase::kExternalCollection:
      return "ExternalCollection";
    case Phase::kTreeRepair:
      return "TreeRepair";
    case Phase::kServiceEpoch:
      return "ServiceEpoch";
    case Phase::kNumPhases:
      break;
  }
  return "unknown";
}

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(std::max(capacity, kChunkEvents)),
      max_chunks_((capacity_ + kChunkEvents - 1) / kChunkEvents) {}

void TraceBuffer::Append(const TraceEvent& event) {
  if (chunks_.empty() || chunks_[write_chunk_]->used == kChunkEvents) {
    if (chunks_.size() == max_chunks_) {
      // At capacity: recycle the oldest chunk (ring behavior).
      write_chunk_ = oldest_chunk_;
      oldest_chunk_ = (oldest_chunk_ + 1) % chunks_.size();
      dropped_ += chunks_[write_chunk_]->used;
      size_ -= chunks_[write_chunk_]->used;
      chunks_[write_chunk_]->used = 0;
    } else {
      chunks_.push_back(std::make_unique<Chunk>());
      write_chunk_ = chunks_.size() - 1;
    }
  }
  Chunk& chunk = *chunks_[write_chunk_];
  chunk.events[chunk.used++] = event;
  ++size_;
}

void TraceBuffer::Clear() {
  chunks_.clear();
  write_chunk_ = 0;
  oldest_chunk_ = 0;
  size_ = 0;
  dropped_ = 0;
}

Tracer::Tracer(size_t capacity) : buffer_(capacity) {
  for (size_t k = 0; k < static_cast<size_t>(EventKind::kNumKinds); ++k) {
    event_counters_[k] = &metrics_.GetCounter(
        std::string("events.") + EventKindName(static_cast<EventKind>(k)));
  }
  fragment_payload_bytes_ = &metrics_.GetHistogram(
      "fragment_payload_bytes", Histogram::ExponentialBounds(8.0, 2.0, 12));
  fragments_per_message_ = &metrics_.GetHistogram(
      "fragments_per_message", Histogram::ExponentialBounds(1.0, 2.0, 12));
  hop_latency_s_ = &metrics_.GetHistogram(
      "hop_latency_s", Histogram::ExponentialBounds(0.001, 2.0, 16));
  retransmits_per_message_ = &metrics_.GetHistogram(
      "retransmits_per_message", Histogram::ExponentialBounds(1.0, 2.0, 8));
}

void Tracer::Record(TraceEvent event) {
  if (!enabled_) return;
  event.phase = current_phase();
  buffer_.Append(event);
  event_counters_[static_cast<size_t>(event.kind)]->Add(1);
}

void Tracer::Record(EventKind kind, sim::SimTime time, sim::NodeId node,
                    sim::NodeId peer, sim::MessageKind msg_kind,
                    uint32_t count, uint64_t bytes, double energy_mj,
                    uint32_t detail) {
  TraceEvent event;
  event.time = time;
  event.node = node;
  event.peer = peer;
  event.count = count;
  event.detail = detail;
  event.bytes = bytes;
  event.energy_mj = energy_mj;
  event.kind = kind;
  event.msg_kind = msg_kind;
  Record(event);
}

void Tracer::BeginPhase(Phase phase, sim::SimTime time) {
  if (!enabled_) return;
  TraceEvent event;
  event.time = time;
  event.kind = EventKind::kPhaseBegin;
  event.phase = phase;  // markers carry their own phase, not the enclosing
  buffer_.Append(event);
  event_counters_[static_cast<size_t>(EventKind::kPhaseBegin)]->Add(1);
  phase_stack_.push_back(phase);
}

void Tracer::EndPhase(Phase phase, sim::SimTime time) {
  if (!enabled_) return;
  SENSJOIN_CHECK(!phase_stack_.empty() && phase_stack_.back() == phase)
      << "unbalanced EndPhase(" << PhaseName(phase) << ")";
  phase_stack_.pop_back();
  TraceEvent event;
  event.time = time;
  event.kind = EventKind::kPhaseEnd;
  event.phase = phase;
  buffer_.Append(event);
  event_counters_[static_cast<size_t>(EventKind::kPhaseEnd)]->Add(1);
}

void Tracer::ObserveMessage(size_t payload_bytes, int fragments) {
  if (!enabled_) return;
  fragment_payload_bytes_->Observe(static_cast<double>(payload_bytes));
  fragments_per_message_->Observe(static_cast<double>(fragments));
}

void Tracer::ObserveHopLatency(double seconds) {
  if (!enabled_) return;
  hop_latency_s_->Observe(seconds);
}

void Tracer::ObserveRetransmits(int retransmissions) {
  if (!enabled_) return;
  retransmits_per_message_->Observe(static_cast<double>(retransmissions));
}

void Tracer::Clear() {
  buffer_.Clear();
  metrics_.ResetAll();
  phase_stack_.clear();
}

uint64_t TraceSummary::TxFragments(std::initializer_list<Phase> over,
                                   sim::MessageKind kind) const {
  uint64_t total = 0;
  for (Phase p : over) {
    total += phase(p).tx_fragments_by_kind[static_cast<size_t>(kind)];
  }
  return total;
}

double TraceSummary::EnergyMj(std::initializer_list<Phase> over) const {
  double total = 0.0;
  for (Phase p : over) total += phase(p).energy_mj;
  return total;
}

std::vector<uint64_t> TraceSummary::PerNodeJoinTx(
    std::initializer_list<Phase> over) const {
  std::vector<uint64_t> totals;
  for (Phase p : over) {
    const std::vector<uint64_t>& v = phase(p).per_node_join_tx;
    if (v.size() > totals.size()) totals.resize(v.size(), 0);
    for (size_t i = 0; i < v.size(); ++i) totals[i] += v[i];
  }
  return totals;
}

TraceSummary Summarize(const TraceBuffer& buffer) {
  TraceSummary summary;
  // Open time of the innermost running span per phase; -1 = closed. A
  // truncated ring buffer can drop a begin, in which case the orphaned end
  // is ignored rather than producing a bogus span.
  std::array<double, static_cast<size_t>(Phase::kNumPhases)> open_at;
  open_at.fill(-1.0);
  buffer.ForEach([&summary, &open_at](const TraceEvent& e) {
    PhaseSummary& p = summary.phases[static_cast<size_t>(e.phase)];
    p.energy_mj += e.energy_mj;
    switch (e.kind) {
      case EventKind::kPhaseBegin:
        open_at[static_cast<size_t>(e.phase)] = e.time;
        break;
      case EventKind::kPhaseEnd: {
        double& began = open_at[static_cast<size_t>(e.phase)];
        if (began >= 0.0) {
          p.max_span_s = std::max(p.max_span_s, e.time - began);
          began = -1.0;
        }
        break;
      }
      case EventKind::kFragTx: {
        p.tx_fragments += e.count;
        p.tx_frame_bytes += e.bytes;
        p.tx_fragments_by_kind[static_cast<size_t>(e.msg_kind)] += e.count;
        if (sim::IsJoinProcessingKind(e.msg_kind) &&
            e.node != sim::kInvalidNode) {
          auto& per_node = p.per_node_join_tx;
          if (per_node.size() <= static_cast<size_t>(e.node)) {
            per_node.resize(static_cast<size_t>(e.node) + 1, 0);
          }
          per_node[static_cast<size_t>(e.node)] += e.count;
        }
        break;
      }
      case EventKind::kFragRx:
        p.rx_fragments += e.count;
        break;
      case EventKind::kRetransmit:
        p.retransmissions += e.count;
        break;
      case EventKind::kAckTx:
        p.acks += e.count;
        break;
      case EventKind::kDuplicateRx:
        p.duplicate_fragments += e.count;
        break;
      case EventKind::kReplayRx:
        p.replayed_fragments += e.count;
        break;
      case EventKind::kStaleDrop:
        p.stale_drops += e.count;
        break;
      default:
        break;
    }
  });
  return summary;
}

}  // namespace sensjoin::obs
