#include "sensjoin/obs/metrics.h"

#include <algorithm>
#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::obs {

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)), counts_(bounds_.size() + 1, 0) {
  SENSJOIN_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket bounds must be ascending";
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

std::vector<double> Histogram::ExponentialBounds(double base, double growth,
                                                 int n) {
  SENSJOIN_CHECK(base > 0.0 && growth > 1.0 && n > 0);
  std::vector<double> bounds(static_cast<size_t>(n));
  double b = base;
  for (int i = 0; i < n; ++i) {
    bounds[static_cast<size_t>(i)] = b;
    b *= growth;
  }
  return bounds;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return counters_[it->second];
  counter_index_.emplace(name, counters_.size());
  counter_names_.push_back(name);
  return counters_.emplace_back();
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return gauges_[it->second];
  gauge_index_.emplace(name, gauges_.size());
  gauge_names_.push_back(name);
  return gauges_.emplace_back();
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bucket_bounds) {
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return histograms_[it->second];
  histogram_index_.emplace(name, histograms_.size());
  histogram_names_.push_back(name);
  return histograms_.emplace_back(std::move(bucket_bounds));
}

MetricsSnapshot MetricsRegistry::Snapshot(sim::SimTime at) const {
  MetricsSnapshot snap;
  snap.time = at;
  snap.counters.reserve(counters_.size());
  for (size_t i = 0; i < counters_.size(); ++i) {
    snap.counters.push_back({counter_names_[i], counters_[i].value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (size_t i = 0; i < gauges_.size(); ++i) {
    snap.gauges.push_back({gauge_names_[i], gauges_[i].value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const Histogram& h = histograms_[i];
    snap.histograms.push_back({histogram_names_[i], h.count(), h.sum(),
                               h.min(), h.max(), h.bucket_bounds(),
                               h.bucket_counts()});
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  for (Counter& c : counters_) c.Reset();
  for (Gauge& g : gauges_) g.Reset();
  for (Histogram& h : histograms_) h.Reset();
}

}  // namespace sensjoin::obs
