#ifndef SENSJOIN_OBS_METRICS_H_
#define SENSJOIN_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "sensjoin/sim/time.h"

namespace sensjoin::obs {

/// A monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// A point-in-time value (set, not accumulated).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// A fixed-bucket histogram over doubles. Buckets are defined by ascending
/// upper bounds; an implicit overflow bucket catches everything above the
/// last bound. Tracks count / sum / min / max alongside the buckets, so
/// means and ranges survive coarse bucketing.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds);

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bucket_bounds().size() + 1 (overflow last).
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }
  void Reset();

  /// Exponential bounds: `base * growth^i` for i in [0, n).
  static std::vector<double> ExponentialBounds(double base, double growth,
                                               int n);

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// One captured metric set, taken at a sim time (see
/// MetricsRegistry::Snapshot). Plain data: exporters turn it into JSON/CSV.
struct MetricsSnapshot {
  sim::SimTime time = 0;

  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> bucket_bounds;
    std::vector<uint64_t> bucket_counts;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// A registry of named counters, gauges and histograms. Instruments are
/// created on first use and returned by stable reference (deque-backed), so
/// hot paths can resolve a name once and keep the pointer. Like the Tracer,
/// a registry is a per-trial instance: it is NOT thread-safe, and under the
/// ParallelRunner each trial owns its own.
class MetricsRegistry {
 public:
  /// Returns the instrument named `name`, creating it on first use.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bucket_bounds` is used only on creation; later calls return the
  /// existing histogram unchanged.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bucket_bounds);

  size_t num_instruments() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Captures every instrument's current value, stamped with `at`
  /// (typically sim.now()). Instruments appear in creation order.
  MetricsSnapshot Snapshot(sim::SimTime at) const;

  void ResetAll();

 private:
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::unordered_map<std::string, size_t> counter_index_;
  std::unordered_map<std::string, size_t> gauge_index_;
  std::unordered_map<std::string, size_t> histogram_index_;
};

}  // namespace sensjoin::obs

#endif  // SENSJOIN_OBS_METRICS_H_
