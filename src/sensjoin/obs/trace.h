#ifndef SENSJOIN_OBS_TRACE_H_
#define SENSJOIN_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sensjoin/obs/metrics.h"
#include "sensjoin/sim/event_queue.h"
#include "sensjoin/sim/packet.h"
#include "sensjoin/sim/time.h"

/// Compile-time gate for the observability tracer. Built with
/// -DSENSJOIN_TRACING=0 the instrumentation sites compile to nothing, which
/// is the reference point for the tracer-overhead benchmark
/// (bench/micro_trace.cc). The default build compiles tracing in; a run
/// without an attached (or with a disabled) tracer then pays one branch and
/// zero allocations per instrumentation site.
#ifndef SENSJOIN_TRACING
#define SENSJOIN_TRACING 1
#endif

namespace sensjoin::obs {

inline constexpr bool kTracingCompiledIn = (SENSJOIN_TRACING != 0);

/// What one trace event describes. Fragment-level events aggregate the
/// fragments of one logical message into a single record (the `count`
/// field), so a traced unicast costs O(1) buffer appends, not O(fragments).
enum class EventKind : uint8_t {
  kPhaseBegin = 0,   ///< protocol phase span opens (phase in `phase`)
  kPhaseEnd,         ///< protocol phase span closes
  kFragTx,           ///< fragments transmitted (incl. ARQ retransmissions);
                     ///< bytes/energy are the sender's whole tx debit
  kFragRx,           ///< fragments physically heard by the receiver
  kFragLoss,         ///< fragment attempts that never arrived
  kFragCorrupt,      ///< fragments damaged in flight (detail = CRC-detected)
  kAckTx,            ///< ARQ acks sent by the receiver (energy debit)
  kAckRx,            ///< ARQ acks heard by the original sender
  kRetransmit,       ///< ARQ retransmissions (subset of kFragTx count;
                     ///< detail = integrity-triggered subset)
  kMessageDrop,      ///< logical message not delivered (gave up / dead dst)
  kRecoveryRequest,  ///< phase-level recovery NACK (node = requester)
  kCrash,            ///< node crash event fired
  kRestore,          ///< node reboot event fired
  kLinkDown,         ///< radio link failed (node/peer = endpoints)
  kLinkUp,           ///< radio link restored
  kOrphanDetected,   ///< node found its parent dead (peer = dead parent)
  kRepairRequest,    ///< orphan broadcast a tree-repair request
  kReattach,         ///< orphan adopted a new parent (peer = new parent;
                     ///< detail = new hop count)
  kDeadlineExpired,  ///< phase watchdog fired (detail = Phase that timed out)
  kDegradedResult,   ///< execution returned a certified partial result
                     ///< (count = excluded nodes)
  kDuplicateRx,      ///< duplicate fragments heard by the receiver (detail:
                     ///< 0 = ARQ ack-lost, already paid inside kFragRx;
                     ///< 1 = duplicated logical delivery, energy here)
  kStaleDrop,        ///< stale-attempt message rejected by the delivery
                     ///< validator (detail = the message's attempt id)
  kReplayRx,         ///< cross-attempt replay re-heard by the receiver
  kNumKinds,         ///< sentinel; keep last
};

const char* EventKindName(EventKind kind);

/// Protocol phases delimiting spans on the trace timeline. Every event
/// records the phase that was open when it fired, which is what the
/// per-phase cost attribution (scripts/trace_summary.py, Summarize) groups
/// by.
enum class Phase : uint8_t {
  kNone = 0,             ///< outside any phase
  kTreeBuild,            ///< CTP-style beaconing (RoutingTree::Build)
  kQueryDissemination,   ///< query flood from the base station
  kJoinAttrCollection,   ///< SENS-Join step 1a (Fig. 2)
  kBaseStationJoin,      ///< conservative filter join at the base station
  kFilterDissemination,  ///< SENS-Join step 1b (Fig. 3)
  kFinalResult,          ///< SENS-Join phase 2
  kExternalCollection,   ///< the external join's single collection phase
  kTreeRepair,           ///< in-network tree repair (net/tree_maintenance.h)
  kServiceEpoch,         ///< one continuous-service epoch (all groups)
  kNumPhases,            ///< sentinel; keep last
};

const char* PhaseName(Phase phase);

/// One sim-time-stamped trace record. 48 bytes, trivially copyable.
struct TraceEvent {
  sim::SimTime time = 0;
  sim::NodeId node = sim::kInvalidNode;  ///< actor / payer of the event
  sim::NodeId peer = sim::kInvalidNode;  ///< other endpoint, if any
  uint32_t count = 0;    ///< fragments / acks / retransmissions
  uint32_t detail = 0;   ///< kind-specific (see EventKind comments)
  uint64_t bytes = 0;    ///< frame bytes moved by the event
  double energy_mj = 0;  ///< energy debited by the event
  EventKind kind = EventKind::kNumKinds;
  sim::MessageKind msg_kind = sim::MessageKind::kNumKinds;
  Phase phase = Phase::kNone;  ///< phase open when the event fired
};

/// A growable ring buffer of trace events: storage grows in fixed chunks up
/// to `capacity` events, then wraps, overwriting the oldest chunk (the tail
/// of a long run is usually what matters). Chunked storage keeps appends
/// allocation-free outside the one-per-4096-events chunk refill.
class TraceBuffer {
 public:
  static constexpr size_t kChunkEvents = 4096;
  static constexpr size_t kDefaultCapacity = size_t{1} << 22;  // ~192 MiB max

  explicit TraceBuffer(size_t capacity = kDefaultCapacity);

  void Append(const TraceEvent& event);

  /// Events currently held (<= capacity).
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  /// Events overwritten after the buffer wrapped.
  size_t dropped() const { return dropped_; }
  bool empty() const { return size_ == 0; }

  /// Visits events oldest to newest.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const size_t chunks = chunks_.size();
    if (chunks == 0) return;
    for (size_t i = 0; i < chunks; ++i) {
      // Start from the chunk holding the oldest event.
      const size_t c = (oldest_chunk_ + i) % chunks;
      const size_t n = chunks_[c]->used;
      const TraceEvent* events = chunks_[c]->events.data();
      for (size_t j = 0; j < n; ++j) fn(events[j]);
    }
  }

  void Clear();

 private:
  struct Chunk {
    std::array<TraceEvent, kChunkEvents> events;
    size_t used = 0;
  };

  size_t capacity_;
  size_t max_chunks_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  size_t write_chunk_ = 0;   ///< chunk currently appended to
  size_t oldest_chunk_ = 0;  ///< chunk holding the oldest retained event
  size_t size_ = 0;
  size_t dropped_ = 0;
};

/// The per-trial tracer: a runtime-switchable event recorder plus a metrics
/// registry fed from the same instrumentation. One instance per simulator /
/// experiment trial — it is NOT thread-safe, and under the ParallelRunner
/// every trial must own its own tracer (trials already own their testbeds).
///
/// Cost model: with no tracer attached, every instrumentation site is a
/// single pointer test; with a tracer attached but disabled, one extra
/// flag test. Neither path allocates or writes memory. Compile with
/// -DSENSJOIN_TRACING=0 to remove the sites entirely.
class Tracer {
 public:
  explicit Tracer(size_t capacity = TraceBuffer::kDefaultCapacity);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Appends an event, stamping it with the currently open phase. No-op
  /// while disabled.
  void Record(TraceEvent event);

  /// Convenience for the common shape.
  void Record(EventKind kind, sim::SimTime time, sim::NodeId node,
              sim::NodeId peer, sim::MessageKind msg_kind, uint32_t count,
              uint64_t bytes, double energy_mj, uint32_t detail = 0);

  /// Opens / closes a protocol phase span (kPhaseBegin/kPhaseEnd events).
  /// Phases nest; events record the innermost open phase.
  void BeginPhase(Phase phase, sim::SimTime time);
  void EndPhase(Phase phase, sim::SimTime time);
  Phase current_phase() const {
    return phase_stack_.empty() ? Phase::kNone : phase_stack_.back();
  }

  // Histogram feeds used by the simulator's traced path (pre-resolved, so
  // the hot path never does a name lookup).
  void ObserveMessage(size_t payload_bytes, int fragments);
  void ObserveHopLatency(double seconds);
  void ObserveRetransmits(int retransmissions);

  const TraceBuffer& buffer() const { return buffer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Drops all recorded events and metric values (phase stack included).
  void Clear();

 private:
  bool enabled_ = true;
  TraceBuffer buffer_;
  MetricsRegistry metrics_;
  std::vector<Phase> phase_stack_;
  std::array<Counter*, static_cast<size_t>(EventKind::kNumKinds)>
      event_counters_{};
  Histogram* fragment_payload_bytes_;
  Histogram* fragments_per_message_;
  Histogram* hop_latency_s_;
  Histogram* retransmits_per_message_;
};

/// RAII phase span: begins on construction, ends on scope exit, reading
/// timestamps from the simulation clock. A null tracer makes it a no-op, so
/// call sites need no gating.
class ScopedPhase {
 public:
  ScopedPhase(Tracer* tracer, const sim::EventQueue& clock, Phase phase)
      : tracer_(kTracingCompiledIn ? tracer : nullptr),
        clock_(clock),
        phase_(phase) {
    if (tracer_ != nullptr) tracer_->BeginPhase(phase_, clock_.now());
  }
  ~ScopedPhase() {
    if (tracer_ != nullptr) tracer_->EndPhase(phase_, clock_.now());
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Tracer* tracer_;
  const sim::EventQueue& clock_;
  Phase phase_;
};

/// Per-phase totals recomputed from a trace buffer — the C++ twin of
/// scripts/trace_summary.py, used by tests to cross-check traces against
/// CostReport totals.
struct PhaseSummary {
  std::array<uint64_t, static_cast<size_t>(sim::MessageKind::kNumKinds)>
      tx_fragments_by_kind{};
  uint64_t tx_fragments = 0;  ///< all kinds
  uint64_t tx_frame_bytes = 0;
  uint64_t rx_fragments = 0;
  uint64_t retransmissions = 0;
  uint64_t acks = 0;
  uint64_t duplicate_fragments = 0;  ///< kDuplicateRx counts (ARQ + logical)
  uint64_t replayed_fragments = 0;   ///< kReplayRx counts
  uint64_t stale_drops = 0;          ///< kStaleDrop counts
  double energy_mj = 0.0;  ///< every energy debit recorded in the phase
  /// Longest single kPhaseBegin -> kPhaseEnd span of this phase in sim
  /// seconds (phases can open repeatedly: retries, per-orphan repairs).
  /// The chaos no-stall liveness invariant bounds this.
  double max_span_s = 0.0;
  /// Join-processing (kCollection/kFilter/kFinal) tx fragments per node;
  /// indexed by NodeId, sized to the largest node seen.
  std::vector<uint64_t> per_node_join_tx;
};

struct TraceSummary {
  std::array<PhaseSummary, static_cast<size_t>(Phase::kNumPhases)> phases;

  const PhaseSummary& phase(Phase p) const {
    return phases[static_cast<size_t>(p)];
  }
  /// Sums `member` fragments of `kind` over a list of phases.
  uint64_t TxFragments(std::initializer_list<Phase> over,
                       sim::MessageKind kind) const;
  double EnergyMj(std::initializer_list<Phase> over) const;
  /// Per-node join-processing tx fragments summed over `over`.
  std::vector<uint64_t> PerNodeJoinTx(std::initializer_list<Phase> over) const;
};

TraceSummary Summarize(const TraceBuffer& buffer);
inline TraceSummary Summarize(const Tracer& tracer) {
  return Summarize(tracer.buffer());
}

}  // namespace sensjoin::obs

#endif  // SENSJOIN_OBS_TRACE_H_
