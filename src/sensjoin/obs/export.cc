#include "sensjoin/obs/export.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sensjoin/sim/simulator.h"

namespace sensjoin::obs {
namespace {

constexpr double kMicrosPerSecond = 1e6;

/// Emits a trace-event "args" object field for the enclosing phase.
void AppendPhaseArg(std::string* out, Phase phase) {
  out->append("\"phase\":\"");
  out->append(PhaseName(phase));
  out->append("\"");
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (v != v) return "0";  // NaN has no JSON spelling
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string out(buf);
  // "inf"/"-inf" are not valid JSON either; clamp to a large sentinel.
  if (out.find("inf") != std::string::npos) {
    return v < 0 ? "-1e308" : "1e308";
  }
  return out;
}

void WriteChromeTrace(const Tracer& tracer, std::ostream& os,
                      const TraceExportOptions& options) {
  const TraceBuffer& buffer = tracer.buffer();

  // One open phase span per nesting level, with the set of nodes that were
  // active (appeared on any event) while it was open.
  struct OpenPhase {
    Phase phase;
    sim::SimTime begin;
    std::set<sim::NodeId> active;
  };
  std::vector<OpenPhase> open;
  std::set<sim::NodeId> nodes_seen;
  std::string events_json;  // assembled first so metadata can follow the walk
  events_json.reserve(buffer.size() * 96);
  char buf[160];

  sim::SimTime first_time = 0;
  sim::SimTime last_time = 0;
  bool have_first = false;
  bool first_event = true;

  auto append_sep = [&events_json, &first_event]() {
    if (!first_event) events_json.append(",\n");
    first_event = false;
  };

  auto append_phase_span = [&](Phase phase, sim::SimTime begin,
                               sim::SimTime end,
                               const std::set<sim::NodeId>& active) {
    const double ts = begin * kMicrosPerSecond;
    const double dur = (end - begin) * kMicrosPerSecond;
    append_sep();
    events_json.append("{\"name\":\"");
    events_json.append(PhaseName(phase));
    events_json.append("\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":");
    events_json.append(JsonDouble(ts));
    events_json.append(",\"dur\":");
    events_json.append(JsonDouble(dur < 0 ? 0 : dur));
    events_json.append(",\"pid\":0,\"tid\":0}");
    for (sim::NodeId node : active) {
      append_sep();
      events_json.append("{\"name\":\"");
      events_json.append(PhaseName(phase));
      events_json.append("\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":");
      events_json.append(JsonDouble(ts));
      events_json.append(",\"dur\":");
      events_json.append(JsonDouble(dur < 0 ? 0 : dur));
      std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%u}",
                    static_cast<unsigned>(node));
      events_json.append(buf);
    }
  };

  buffer.ForEach([&](const TraceEvent& e) {
    if (!have_first) {
      first_time = e.time;
      have_first = true;
    }
    last_time = e.time;
    switch (e.kind) {
      case EventKind::kPhaseBegin:
        open.push_back({e.phase, e.time, {}});
        return;
      case EventKind::kPhaseEnd: {
        if (!open.empty() && open.back().phase == e.phase) {
          const OpenPhase span = std::move(open.back());
          open.pop_back();
          append_phase_span(span.phase, span.begin, e.time, span.active);
        } else {
          // The matching begin was overwritten after a ring wrap; anchor
          // the span at the earliest retained event.
          append_phase_span(e.phase, first_time, e.time, {});
        }
        return;
      }
      default:
        break;
    }

    const bool on_node = e.node != sim::kInvalidNode;
    if (on_node) {
      nodes_seen.insert(e.node);
      for (OpenPhase& p : open) p.active.insert(e.node);
    }
    append_sep();
    events_json.append("{\"name\":\"");
    events_json.append(EventKindName(e.kind));
    events_json.append("\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
    events_json.append(JsonDouble(e.time * kMicrosPerSecond));
    if (on_node) {
      std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%u,\"args\":{",
                    static_cast<unsigned>(e.node));
    } else {
      std::snprintf(buf, sizeof(buf), ",\"pid\":0,\"tid\":0,\"args\":{");
    }
    events_json.append(buf);
    AppendPhaseArg(&events_json, e.phase);
    if (e.msg_kind != sim::MessageKind::kNumKinds) {
      events_json.append(",\"msg\":\"");
      events_json.append(sim::MessageKindName(e.msg_kind));
      events_json.append("\"");
    }
    if (e.peer != sim::kInvalidNode) {
      std::snprintf(buf, sizeof(buf), ",\"peer\":%u",
                    static_cast<unsigned>(e.peer));
      events_json.append(buf);
    }
    std::snprintf(buf, sizeof(buf),
                  ",\"count\":%u,\"detail\":%u,\"bytes\":%llu",
                  static_cast<unsigned>(e.count),
                  static_cast<unsigned>(e.detail),
                  static_cast<unsigned long long>(e.bytes));
    events_json.append(buf);
    events_json.append(",\"energy_mj\":");
    events_json.append(JsonDouble(e.energy_mj));
    events_json.append("}}");
  });

  // Close any span still open at the end of the buffer (a live tracer
  // exported mid-phase).
  while (!open.empty()) {
    const OpenPhase span = std::move(open.back());
    open.pop_back();
    append_phase_span(span.phase, span.begin, last_time, span.active);
  }

  // Track-naming metadata (order inside traceEvents is irrelevant).
  append_sep();
  events_json.append(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
      "\"args\":{\"name\":\"protocol\"}}");
  append_sep();
  events_json.append(
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"phases\"}}");
  append_sep();
  events_json.append(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"sensor nodes\"}}");
  for (sim::NodeId node : nodes_seen) {
    append_sep();
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"node %u\"}}",
                  static_cast<unsigned>(node), static_cast<unsigned>(node));
    events_json.append(buf);
  }

  os << "{\n\"displayTimeUnit\":\"ms\",\n";
  os << "\"otherData\":{\"schema\":\"sensjoin-trace-v1\","
     << "\"tracingCompiledIn\":" << (kTracingCompiledIn ? "true" : "false")
     << ",\"events\":" << buffer.size() << ",\"dropped\":" << buffer.dropped()
     << "},\n";
  os << "\"traceEvents\":[\n" << events_json << "\n],\n";
  os << "\"metrics\":" << MetricsJson(tracer.metrics().Snapshot(last_time));
  for (const auto& [key, raw_json] : options.extra_sections) {
    os << ",\n\"" << JsonEscape(key) << "\":" << raw_json;
  }
  os << "\n}\n";
}

std::string ChromeTraceJson(const Tracer& tracer,
                            const TraceExportOptions& options) {
  std::ostringstream os;
  WriteChromeTrace(tracer, os, options);
  return os.str();
}

Status WriteChromeTraceFile(const Tracer& tracer, const std::string& path,
                            const TraceExportOptions& options) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open trace output file: " + path);
  }
  WriteChromeTrace(tracer, out, options);
  out.flush();
  if (!out) {
    return Status::Internal("short write to trace output file: " + path);
  }
  return Status::Ok();
}

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::string out;
  out.append("{\"time\":");
  out.append(JsonDouble(snapshot.time));
  out.append(",\"counters\":{");
  bool first = true;
  for (const auto& c : snapshot.counters) {
    if (!first) out.append(",");
    first = false;
    out.append("\"");
    out.append(JsonEscape(c.name));
    out.append("\":");
    out.append(std::to_string(c.value));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& g : snapshot.gauges) {
    if (!first) out.append(",");
    first = false;
    out.append("\"");
    out.append(JsonEscape(g.name));
    out.append("\":");
    out.append(JsonDouble(g.value));
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out.append(",");
    first = false;
    out.append("\"");
    out.append(JsonEscape(h.name));
    out.append("\":{\"count\":");
    out.append(std::to_string(h.count));
    out.append(",\"sum\":");
    out.append(JsonDouble(h.sum));
    out.append(",\"min\":");
    out.append(JsonDouble(h.min));
    out.append(",\"max\":");
    out.append(JsonDouble(h.max));
    out.append(",\"mean\":");
    out.append(JsonDouble(
        h.count ? h.sum / static_cast<double>(h.count) : 0.0));
    out.append(",\"bounds\":[");
    for (size_t i = 0; i < h.bucket_bounds.size(); ++i) {
      if (i) out.append(",");
      out.append(JsonDouble(h.bucket_bounds[i]));
    }
    out.append("],\"bucket_counts\":[");
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i) out.append(",");
      out.append(std::to_string(h.bucket_counts[i]));
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

std::string MetricsCsv(const MetricsSnapshot& snapshot) {
  std::string out = "kind,name,field,value\n";
  auto row = [&out](const char* kind, const std::string& name,
                    const std::string& field, const std::string& value) {
    out.append(kind);
    out.append(",");
    out.append(name);
    out.append(",");
    out.append(field);
    out.append(",");
    out.append(value);
    out.append("\n");
  };
  for (const auto& c : snapshot.counters) {
    row("counter", c.name, "value", std::to_string(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    row("gauge", g.name, "value", JsonDouble(g.value));
  }
  for (const auto& h : snapshot.histograms) {
    row("histogram", h.name, "count", std::to_string(h.count));
    row("histogram", h.name, "sum", JsonDouble(h.sum));
    row("histogram", h.name, "min", JsonDouble(h.min));
    row("histogram", h.name, "max", JsonDouble(h.max));
    row("histogram", h.name, "mean",
        JsonDouble(h.count ? h.sum / static_cast<double>(h.count) : 0.0));
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      const std::string le = i < h.bucket_bounds.size()
                                 ? std::string("le=") +
                                       JsonDouble(h.bucket_bounds[i])
                                 : std::string("le=inf");
      row("histogram", h.name, le, std::to_string(h.bucket_counts[i]));
    }
  }
  return out;
}

void CaptureSimulatorMetrics(const sim::Simulator& sim,
                             MetricsRegistry* registry) {
  auto gauge = [registry](const std::string& name, double v) {
    registry->GetGauge(name).Set(v);
  };
  gauge("sim.total_packets_sent",
        static_cast<double>(sim.total_packets_sent()));
  gauge("sim.total_bytes_sent", static_cast<double>(sim.total_bytes_sent()));
  gauge("sim.total_energy_mj", sim.total_energy_mj());
  gauge("sim.total_packets_retransmitted",
        static_cast<double>(sim.total_packets_retransmitted()));
  gauge("sim.total_ack_packets",
        static_cast<double>(sim.total_ack_packets()));
  gauge("sim.retransmit_energy_mj", sim.retransmit_energy_mj());
  gauge("sim.ack_energy_mj", sim.ack_energy_mj());
  gauge("sim.total_corrupted_packets",
        static_cast<double>(sim.total_corrupted_packets()));
  gauge("sim.total_undetected_corrupted_packets",
        static_cast<double>(sim.total_undetected_corrupted_packets()));
  gauge("sim.crc_bytes_sent", static_cast<double>(sim.crc_bytes_sent()));
  gauge("sim.integrity_retransmit_energy_mj",
        sim.integrity_retransmit_energy_mj());
  gauge("sim.crc_energy_mj", sim.crc_energy_mj());
  for (size_t k = 0; k < static_cast<size_t>(sim::MessageKind::kNumKinds);
       ++k) {
    const auto kind = static_cast<sim::MessageKind>(k);
    gauge(std::string("sim.packets.") + sim::MessageKindName(kind),
          static_cast<double>(sim.packets_sent_by_kind(kind)));
  }
  const sim::EventQueue& events = sim.events();
  gauge("sim.event_queue.scheduled",
        static_cast<double>(events.total_scheduled()));
  gauge("sim.event_queue.fired", static_cast<double>(events.total_fired()));
  gauge("sim.event_queue.canceled",
        static_cast<double>(events.total_canceled()));
  gauge("sim.event_queue.max_pending",
        static_cast<double>(events.max_pending()));
}

}  // namespace sensjoin::obs
