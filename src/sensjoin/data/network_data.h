#ifndef SENSJOIN_DATA_NETWORK_DATA_H_
#define SENSJOIN_DATA_NETWORK_DATA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sensjoin/common/geometry.h"
#include "sensjoin/common/rng.h"
#include "sensjoin/data/field_model.h"
#include "sensjoin/data/relation.h"
#include "sensjoin/data/schema.h"
#include "sensjoin/data/tuple.h"
#include "sensjoin/sim/time.h"

namespace sensjoin::data {

/// The measurable environment of a deployment: node positions plus one
/// ScalarField per sensor type. Presents the network as sensor relations
/// (Sec. III): each node contributes one tuple whose first two attributes
/// are its coordinates ("x", "y"), followed by one attribute per field.
///
/// Supports heterogeneous networks: nodes can be assigned to named relation
/// groups; by default every node belongs to every relation (homogeneous
/// network / self-join).
class NetworkData {
 public:
  /// Creates an environment over `positions` (node id = index). Fields are
  /// added with AddField before first use.
  NetworkData(std::vector<Point> positions, double area_width_m,
              double area_height_m);

  /// Adds a sensor type `name` with field shape `params`; its spatial
  /// realization is drawn from `rng`. Must not be called after Sense().
  void AddField(const std::string& name, const FieldParams& params, Rng& rng);

  /// Schema of the tuples each node contributes: x, y, then fields in
  /// AddField order, two wire bytes per attribute.
  const Schema& schema() const { return schema_; }

  int num_nodes() const { return static_cast<int>(positions_.size()); }
  const Point& position(sim::NodeId id) const { return positions_[id]; }

  /// The snapshot tuple of node `id` in epoch `epoch`. Deterministic:
  /// re-sensing the same (id, epoch) returns the same values (ONCE reads the
  /// sensors exactly once; Sec. IV-D).
  Tuple Sense(sim::NodeId id, uint64_t epoch) const;

  /// Restricts relation `relation_name` to `members`. Unassigned relation
  /// names cover all nodes.
  void AssignRelation(const std::string& relation_name,
                      std::vector<sim::NodeId> members);

  /// True if node `id` contributes a tuple to `relation_name`.
  bool BelongsTo(sim::NodeId id, const std::string& relation_name) const;

  /// Materializes the full relation `relation_name` at `epoch` (ground truth
  /// for tests; the base station never sees this directly).
  Relation Materialize(const std::string& relation_name,
                       uint64_t epoch) const;

 private:
  std::vector<Point> positions_;
  double area_width_m_;
  double area_height_m_;
  Schema schema_;
  std::vector<std::string> field_names_;
  std::vector<std::unique_ptr<ScalarField>> fields_;
  std::map<std::string, std::vector<char>> membership_;  // name -> bitmap
};

}  // namespace sensjoin::data

#endif  // SENSJOIN_DATA_NETWORK_DATA_H_
