#ifndef SENSJOIN_DATA_FIELD_MODEL_H_
#define SENSJOIN_DATA_FIELD_MODEL_H_

#include <cstdint>
#include <vector>

#include "sensjoin/common/geometry.h"
#include "sensjoin/common/rng.h"

namespace sensjoin::data {

/// Parameters of a synthetic spatially auto-correlated scalar field. The
/// field replaces the real-deployment data the paper uses (Intel Lab traces):
/// it is smooth in space (large-scale gradient plus Gaussian bumps), so that
/// nearby nodes observe similar values — the property the quadtree encoding
/// exploits (Sec. V-A) — with small per-node noise and slow per-epoch drift
/// for continuous queries.
struct FieldParams {
  double base = 20.0;          ///< Mean value across the area.
  double gradient_per_m = 0.0; ///< Large-scale trend magnitude (units per m).
  int num_bumps = 8;           ///< Local hot/cold spots.
  double bump_amplitude = 3.0; ///< Max |amplitude| of a bump.
  double bump_sigma_m = 150.0; ///< Spatial extent of a bump.
  double noise_sigma = 0.05;   ///< Fixed per-node calibration offset (std
                               ///< dev); constant across epochs.
  double temporal_noise_sigma = 0.01;  ///< Per-(node, epoch) jitter (std
                                       ///< dev); models slow local change.
  double drift_sigma = 0.02;   ///< Per-epoch network-wide drift (std dev).
};

/// A deterministic scalar field over the deployment area. The spatial shape
/// is fixed at construction (from `rng`); measurement noise and drift are
/// hash-derived from (node, epoch) so that re-reading the same snapshot
/// yields identical values — the ONCE semantics of snapshot queries.
class ScalarField {
 public:
  ScalarField(const FieldParams& params, double area_width_m,
              double area_height_m, Rng& rng);

  /// Noise-free field value at `p`.
  double ValueAt(const Point& p) const;

  /// The value node `node` measures at position `p` in snapshot `epoch`.
  double Measure(const Point& p, int32_t node, uint64_t epoch) const;

  const FieldParams& params() const { return params_; }

 private:
  struct Bump {
    Point center;
    double amplitude;
    double sigma;
  };

  FieldParams params_;
  double gradient_x_;
  double gradient_y_;
  std::vector<Bump> bumps_;
  uint64_t noise_salt_;
};

}  // namespace sensjoin::data

#endif  // SENSJOIN_DATA_FIELD_MODEL_H_
