#include "sensjoin/data/relation.h"

#include "sensjoin/common/logging.h"

namespace sensjoin::data {

void Relation::Add(Tuple tuple) {
  SENSJOIN_CHECK_EQ(static_cast<int>(tuple.values.size()),
                    schema_.num_attributes())
      << "tuple arity mismatch for relation" << name_;
  tuples_.push_back(std::move(tuple));
}

}  // namespace sensjoin::data
