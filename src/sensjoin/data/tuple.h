#ifndef SENSJOIN_DATA_TUPLE_H_
#define SENSJOIN_DATA_TUPLE_H_

#include <vector>

#include "sensjoin/sim/time.h"

namespace sensjoin::data {

/// One sensor tuple: the readings of a single node under some Schema, in
/// schema attribute order. `node` records the contributing node (used by
/// Treecut proxies and for per-node accounting; it is not an attribute).
struct Tuple {
  sim::NodeId node = sim::kInvalidNode;
  std::vector<double> values;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.node == b.node && a.values == b.values;
  }
};

/// Projects `t` onto the attribute indices in `indices` (Definition 1:
/// a join-attribute tuple is a projection onto the join attributes).
inline Tuple ProjectTuple(const Tuple& t, const std::vector<int>& indices) {
  Tuple out;
  out.node = t.node;
  out.values.reserve(indices.size());
  for (int i : indices) out.values.push_back(t.values[i]);
  return out;
}

}  // namespace sensjoin::data

#endif  // SENSJOIN_DATA_TUPLE_H_
