#include "sensjoin/data/network_data.h"

#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::data {

NetworkData::NetworkData(std::vector<Point> positions, double area_width_m,
                         double area_height_m)
    : positions_(std::move(positions)),
      area_width_m_(area_width_m),
      area_height_m_(area_height_m),
      schema_({{"x", 2}, {"y", 2}}) {}

void NetworkData::AddField(const std::string& name, const FieldParams& params,
                           Rng& rng) {
  SENSJOIN_CHECK(schema_.IndexOf(name) < 0) << "duplicate field" << name;
  field_names_.push_back(name);
  fields_.push_back(
      std::make_unique<ScalarField>(params, area_width_m_, area_height_m_, rng));
  std::vector<AttributeDef> attrs = schema_.attributes();
  attrs.push_back({name, 2});
  schema_ = Schema(std::move(attrs));
}

Tuple NetworkData::Sense(sim::NodeId id, uint64_t epoch) const {
  SENSJOIN_CHECK(id >= 0 && id < num_nodes());
  Tuple t;
  t.node = id;
  const Point& p = positions_[id];
  t.values.reserve(2 + fields_.size());
  t.values.push_back(p.x);
  t.values.push_back(p.y);
  for (const auto& field : fields_) {
    t.values.push_back(field->Measure(p, id, epoch));
  }
  return t;
}

void NetworkData::AssignRelation(const std::string& relation_name,
                                 std::vector<sim::NodeId> members) {
  std::vector<char> bitmap(num_nodes(), 0);
  for (sim::NodeId id : members) {
    SENSJOIN_CHECK(id >= 0 && id < num_nodes());
    bitmap[id] = 1;
  }
  membership_[relation_name] = std::move(bitmap);
}

bool NetworkData::BelongsTo(sim::NodeId id,
                            const std::string& relation_name) const {
  auto it = membership_.find(relation_name);
  if (it == membership_.end()) return true;  // homogeneous default
  return it->second[id] != 0;
}

Relation NetworkData::Materialize(const std::string& relation_name,
                                  uint64_t epoch) const {
  Relation r(relation_name, schema_);
  for (sim::NodeId id = 0; id < num_nodes(); ++id) {
    if (BelongsTo(id, relation_name)) r.Add(Sense(id, epoch));
  }
  return r;
}

}  // namespace sensjoin::data
