#ifndef SENSJOIN_DATA_SCHEMA_H_
#define SENSJOIN_DATA_SCHEMA_H_

#include <string>
#include <vector>

namespace sensjoin::data {

/// One attribute of a sensor relation. Sensor readings are numeric; the
/// paper assumes two bytes on the wire per attribute value (Sec. IV-B).
struct AttributeDef {
  std::string name;
  int wire_bytes = 2;
};

/// An ordered list of attributes. Every node of a (homogeneous) network
/// contributes one tuple with one value per attribute (Sec. III).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeDef> attributes);

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  const AttributeDef& attribute(int i) const { return attributes_[i]; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

  /// Index of the attribute called `name`, or -1.
  int IndexOf(const std::string& name) const;

  bool Contains(const std::string& name) const { return IndexOf(name) >= 0; }

  /// Wire size of a complete tuple under this schema.
  int TupleWireBytes() const;

  /// Wire size of a projection onto the attribute indices in `indices`.
  int ProjectionWireBytes(const std::vector<int>& indices) const;

  /// A schema containing only the attributes at `indices`, in that order.
  Schema Project(const std::vector<int>& indices) const;

 private:
  std::vector<AttributeDef> attributes_;
};

}  // namespace sensjoin::data

#endif  // SENSJOIN_DATA_SCHEMA_H_
