#include "sensjoin/data/schema.h"

#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::data {

Schema::Schema(std::vector<AttributeDef> attributes)
    : attributes_(std::move(attributes)) {
  for (const AttributeDef& a : attributes_) {
    SENSJOIN_CHECK_GT(a.wire_bytes, 0) << "attribute" << a.name;
  }
}

int Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return -1;
}

int Schema::TupleWireBytes() const {
  int total = 0;
  for (const AttributeDef& a : attributes_) total += a.wire_bytes;
  return total;
}

int Schema::ProjectionWireBytes(const std::vector<int>& indices) const {
  int total = 0;
  for (int i : indices) {
    SENSJOIN_CHECK(i >= 0 && i < num_attributes());
    total += attributes_[i].wire_bytes;
  }
  return total;
}

Schema Schema::Project(const std::vector<int>& indices) const {
  std::vector<AttributeDef> projected;
  projected.reserve(indices.size());
  for (int i : indices) {
    SENSJOIN_CHECK(i >= 0 && i < num_attributes());
    projected.push_back(attributes_[i]);
  }
  return Schema(std::move(projected));
}

}  // namespace sensjoin::data
