#ifndef SENSJOIN_DATA_RELATION_H_
#define SENSJOIN_DATA_RELATION_H_

#include <string>
#include <utility>
#include <vector>

#include "sensjoin/data/schema.h"
#include "sensjoin/data/tuple.h"

namespace sensjoin::data {

/// A materialized sensor relation: the database abstraction of (a group of
/// nodes of) the network at one snapshot. Used at the base station for the
/// filter join and the final result computation, and by tests as ground
/// truth.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  void Add(Tuple tuple);

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Total wire bytes of all tuples under this schema.
  size_t TotalWireBytes() const {
    return tuples_.size() * static_cast<size_t>(schema_.TupleWireBytes());
  }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace sensjoin::data

#endif  // SENSJOIN_DATA_RELATION_H_
