#include "sensjoin/data/field_model.h"

#include <cmath>

namespace sensjoin::data {
namespace {

/// Stateless hash-based standard-normal deviate for (salt, node, epoch).
/// Two independent uniforms from SplitMix64 feed a Box-Muller transform.
double HashGaussian(uint64_t salt, uint64_t a, uint64_t b) {
  auto mix = [](uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  const uint64_t h1 = mix(salt ^ mix(a * 0x9e3779b97f4a7c15ULL + b));
  const uint64_t h2 = mix(h1 + 0x9e3779b97f4a7c15ULL);
  double u1 = static_cast<double>(h1 >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

ScalarField::ScalarField(const FieldParams& params, double area_width_m,
                         double area_height_m, Rng& rng)
    : params_(params) {
  // Random gradient direction with the configured magnitude.
  const double angle = rng.UniformDouble(0, 2.0 * M_PI);
  gradient_x_ = params.gradient_per_m * std::cos(angle);
  gradient_y_ = params.gradient_per_m * std::sin(angle);
  bumps_.reserve(params.num_bumps);
  for (int i = 0; i < params.num_bumps; ++i) {
    Bump b;
    b.center = {rng.UniformDouble(0, area_width_m),
                rng.UniformDouble(0, area_height_m)};
    b.amplitude = rng.UniformDouble(-params.bump_amplitude,
                                    params.bump_amplitude);
    b.sigma = params.bump_sigma_m * rng.UniformDouble(0.6, 1.4);
    bumps_.push_back(b);
  }
  noise_salt_ = rng.NextUint64();
}

double ScalarField::ValueAt(const Point& p) const {
  double v = params_.base + gradient_x_ * p.x + gradient_y_ * p.y;
  for (const Bump& b : bumps_) {
    const double d = Distance(p, b.center);
    v += b.amplitude * std::exp(-(d * d) / (2.0 * b.sigma * b.sigma));
  }
  return v;
}

double ScalarField::Measure(const Point& p, int32_t node,
                            uint64_t epoch) const {
  double v = ValueAt(p);
  if (params_.noise_sigma > 0) {
    // Calibration offset: fixed per node, so consecutive epochs stay
    // temporally correlated (the property the continuous-query delta
    // collection exploits).
    v += params_.noise_sigma *
         HashGaussian(noise_salt_, static_cast<uint64_t>(node), 0);
  }
  if (params_.temporal_noise_sigma > 0) {
    v += params_.temporal_noise_sigma *
         HashGaussian(noise_salt_ ^ 0x5ca1ab1eULL,
                      static_cast<uint64_t>(node), epoch);
  }
  if (params_.drift_sigma > 0 && epoch > 0) {
    // Slow network-wide drift: a random walk over epochs, identical for all
    // nodes so spatial correlation is preserved.
    double drift = 0.0;
    for (uint64_t e = 1; e <= epoch; ++e) {
      drift += params_.drift_sigma * HashGaussian(noise_salt_ ^ 0xdeadbeefULL,
                                                  0xffffffffULL, e);
    }
    v += drift;
  }
  return v;
}

}  // namespace sensjoin::data
