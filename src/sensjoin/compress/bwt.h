#ifndef SENSJOIN_COMPRESS_BWT_H_
#define SENSJOIN_COMPRESS_BWT_H_

#include <cstdint>
#include <vector>

#include "sensjoin/common/statusor.h"

namespace sensjoin::compress {

/// Result of the Burrows-Wheeler transform: the last column of the sorted
/// cyclic-rotation matrix plus the row index of the original string.
struct BwtResult {
  std::vector<uint8_t> data;
  uint32_t primary_index = 0;
};

/// Burrows-Wheeler transform over cyclic rotations, using prefix-doubling
/// rotation sort (O(n log^2 n), robust to periodic inputs).
BwtResult BwtTransform(const std::vector<uint8_t>& input);

/// Inverse transform via LF-mapping. A `primary_index` outside the data
/// (possible when the pair was deserialized from untrusted bytes) is an
/// InvalidArgument error, not a crash; empty data inverts to empty output.
StatusOr<std::vector<uint8_t>> BwtInverse(const std::vector<uint8_t>& data,
                                          uint32_t primary_index);

}  // namespace sensjoin::compress

#endif  // SENSJOIN_COMPRESS_BWT_H_
