#ifndef SENSJOIN_COMPRESS_RLE_H_
#define SENSJOIN_COMPRESS_RLE_H_

#include <cstdint>
#include <vector>

#include "sensjoin/common/statusor.h"

namespace sensjoin::compress {

/// bzip2-style RLE1: runs of 4-255 equal bytes are encoded as four copies
/// followed by a count byte (run length - 4). Protects the BWT sorter from
/// degenerate long runs and is exactly invertible.
std::vector<uint8_t> RleEncode(const std::vector<uint8_t>& input);

StatusOr<std::vector<uint8_t>> RleDecode(const std::vector<uint8_t>& input);

}  // namespace sensjoin::compress

#endif  // SENSJOIN_COMPRESS_RLE_H_
