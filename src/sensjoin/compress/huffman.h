#ifndef SENSJOIN_COMPRESS_HUFFMAN_H_
#define SENSJOIN_COMPRESS_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "sensjoin/common/statusor.h"

namespace sensjoin::compress {

/// Canonical Huffman coding over byte symbols. The output carries a header
/// (original size + run-length-coded code-length table), which is exactly
/// the kind of fixed overhead that makes general-purpose compressors
/// unattractive for the tiny per-hop buffers of sensor networks
/// (Sec. VI-B: bzip2 can even enlarge small inputs).
std::vector<uint8_t> HuffmanCompress(const std::vector<uint8_t>& input);

/// Inverse of HuffmanCompress. Fails on malformed input.
StatusOr<std::vector<uint8_t>> HuffmanDecompress(
    const std::vector<uint8_t>& input);

}  // namespace sensjoin::compress

#endif  // SENSJOIN_COMPRESS_HUFFMAN_H_
