#ifndef SENSJOIN_COMPRESS_ZLIB_LIKE_H_
#define SENSJOIN_COMPRESS_ZLIB_LIKE_H_

#include <cstdint>
#include <vector>

#include "sensjoin/common/statusor.h"

namespace sensjoin::compress {

/// A deflate-style codec: LZ77 parse followed by Huffman entropy coding of
/// the serialized token streams. Stands in for zlib in the Sec. VI-B
/// comparison: good ratios on large redundant inputs, poor on the tiny
/// buffers exchanged per hop in a sensor network (header + table overhead).
std::vector<uint8_t> ZlibLikeCompress(const std::vector<uint8_t>& input);

StatusOr<std::vector<uint8_t>> ZlibLikeDecompress(
    const std::vector<uint8_t>& input);

}  // namespace sensjoin::compress

#endif  // SENSJOIN_COMPRESS_ZLIB_LIKE_H_
