#include "sensjoin/compress/lz77.h"

#include <algorithm>

#include "sensjoin/common/logging.h"

namespace sensjoin::compress {
namespace {

constexpr int kHashBits = 15;
constexpr uint32_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainLength = 64;

uint32_t Hash3(const uint8_t* p) {
  const uint32_t v = static_cast<uint32_t>(p[0]) |
                     (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<Lz77Token> Lz77Parse(const std::vector<uint8_t>& input) {
  std::vector<Lz77Token> tokens;
  const size_t n = input.size();
  if (n == 0) return tokens;

  // head[h]: most recent position with hash h; prev[i]: previous position
  // with the same hash as i (chains).
  std::vector<int32_t> head(kHashSize, -1);
  std::vector<int32_t> prev(n, -1);

  size_t i = 0;
  while (i < n) {
    int best_len = 0;
    int best_dist = 0;
    if (i + kLz77MinMatch <= n) {
      const uint32_t h = Hash3(&input[i]);
      int32_t candidate = head[h];
      int chain = 0;
      while (candidate >= 0 &&
             i - static_cast<size_t>(candidate) <= kLz77WindowSize &&
             chain < kMaxChainLength) {
        const size_t max_len =
            std::min<size_t>(kLz77MaxMatch, n - i);
        size_t len = 0;
        while (len < max_len && input[candidate + len] == input[i + len]) {
          ++len;
        }
        if (static_cast<int>(len) > best_len) {
          best_len = static_cast<int>(len);
          best_dist = static_cast<int>(i - candidate);
          if (len == max_len) break;
        }
        candidate = prev[candidate];
        ++chain;
      }
    }

    if (best_len >= kLz77MinMatch) {
      Lz77Token t;
      t.is_match = true;
      t.length = static_cast<uint16_t>(best_len);
      t.distance = static_cast<uint16_t>(best_dist);
      tokens.push_back(t);
      // Insert every covered position into the hash chains.
      const size_t end = i + best_len;
      while (i < end) {
        if (i + kLz77MinMatch <= n) {
          const uint32_t h = Hash3(&input[i]);
          prev[i] = head[h];
          head[h] = static_cast<int32_t>(i);
        }
        ++i;
      }
    } else {
      Lz77Token t;
      t.literal = input[i];
      tokens.push_back(t);
      if (i + kLz77MinMatch <= n) {
        const uint32_t h = Hash3(&input[i]);
        prev[i] = head[h];
        head[h] = static_cast<int32_t>(i);
      }
      ++i;
    }
  }
  return tokens;
}

StatusOr<std::vector<uint8_t>> Lz77Reconstruct(
    const std::vector<Lz77Token>& tokens) {
  std::vector<uint8_t> out;
  for (const Lz77Token& t : tokens) {
    if (!t.is_match) {
      out.push_back(t.literal);
      continue;
    }
    if (t.distance == 0 || t.distance > out.size()) {
      return Status::InvalidArgument("lz77: distance outside window");
    }
    if (t.length < kLz77MinMatch) {
      return Status::InvalidArgument("lz77: match shorter than minimum");
    }
    const size_t start = out.size() - t.distance;
    for (int k = 0; k < t.length; ++k) {
      out.push_back(out[start + k]);  // overlapping copies are intentional
    }
  }
  return out;
}

}  // namespace sensjoin::compress
