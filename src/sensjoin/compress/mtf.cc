#include "sensjoin/compress/mtf.h"

#include <array>
#include <numeric>

namespace sensjoin::compress {

std::vector<uint8_t> MtfEncode(const std::vector<uint8_t>& input) {
  std::array<uint8_t, 256> table;
  std::iota(table.begin(), table.end(), 0);
  std::vector<uint8_t> out;
  out.reserve(input.size());
  for (uint8_t b : input) {
    int idx = 0;
    while (table[idx] != b) ++idx;
    out.push_back(static_cast<uint8_t>(idx));
    for (int i = idx; i > 0; --i) table[i] = table[i - 1];
    table[0] = b;
  }
  return out;
}

std::vector<uint8_t> MtfDecode(const std::vector<uint8_t>& input) {
  std::array<uint8_t, 256> table;
  std::iota(table.begin(), table.end(), 0);
  std::vector<uint8_t> out;
  out.reserve(input.size());
  for (uint8_t idx : input) {
    const uint8_t b = table[idx];
    out.push_back(b);
    for (int i = idx; i > 0; --i) table[i] = table[i - 1];
    table[0] = b;
  }
  return out;
}

}  // namespace sensjoin::compress
