#include "sensjoin/compress/bwt.h"

#include <algorithm>
#include <numeric>

#include "sensjoin/common/logging.h"

namespace sensjoin::compress {

BwtResult BwtTransform(const std::vector<uint8_t>& input) {
  BwtResult result;
  const size_t n = input.size();
  if (n == 0) return result;

  // Prefix-doubling sort of cyclic rotations: rank[i] is the sort rank of
  // the rotation starting at i, refined by doubling the compared length.
  std::vector<int64_t> rank(n);
  std::vector<int64_t> next_rank(n);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = 0; i < n; ++i) rank[i] = input[i];

  for (size_t k = 1;; k <<= 1) {
    auto cmp = [&](size_t a, size_t b) {
      if (rank[a] != rank[b]) return rank[a] < rank[b];
      const int64_t ra = rank[(a + k) % n];
      const int64_t rb = rank[(b + k) % n];
      return ra < rb;
    };
    std::stable_sort(order.begin(), order.end(), cmp);  // deterministic ties
    next_rank[order[0]] = 0;
    for (size_t i = 1; i < n; ++i) {
      next_rank[order[i]] =
          next_rank[order[i - 1]] + (cmp(order[i - 1], order[i]) ? 1 : 0);
    }
    rank = next_rank;
    if (rank[order[n - 1]] == static_cast<int64_t>(n - 1)) break;
    if (k >= n) break;  // ranks stable: fully periodic input
  }

  result.data.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t rot = order[i];
    result.data[i] = input[(rot + n - 1) % n];
    if (rot == 0) result.primary_index = static_cast<uint32_t>(i);
  }
  return result;
}

StatusOr<std::vector<uint8_t>> BwtInverse(const std::vector<uint8_t>& data,
                                          uint32_t primary_index) {
  const size_t n = data.size();
  std::vector<uint8_t> out;
  if (n == 0) return out;
  if (primary_index >= n) {
    return Status::InvalidArgument("bwt: primary index outside data");
  }

  // LF-mapping: for row i of the sorted matrix, lf[i] is the row whose
  // rotation is one step earlier. Built by stable counting sort of the last
  // column.
  std::vector<size_t> count(257, 0);
  for (uint8_t b : data) ++count[b + 1];
  for (int c = 1; c <= 256; ++c) count[c] += count[c - 1];
  std::vector<size_t> lf(n);
  for (size_t i = 0; i < n; ++i) lf[i] = count[data[i]]++;

  // Walk backwards from the primary row.
  out.resize(n);
  size_t row = primary_index;
  for (size_t i = n; i-- > 0;) {
    out[i] = data[row];
    row = lf[row];
  }
  return out;
}

}  // namespace sensjoin::compress
