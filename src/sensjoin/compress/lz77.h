#ifndef SENSJOIN_COMPRESS_LZ77_H_
#define SENSJOIN_COMPRESS_LZ77_H_

#include <cstdint>
#include <vector>

#include "sensjoin/common/statusor.h"

namespace sensjoin::compress {

/// One LZ77 token: either a literal byte or a back-reference of `length`
/// bytes starting `distance` bytes back.
struct Lz77Token {
  bool is_match = false;
  uint8_t literal = 0;
  uint16_t length = 0;
  uint16_t distance = 0;
};

inline constexpr int kLz77MinMatch = 3;
inline constexpr int kLz77MaxMatch = 258;
inline constexpr int kLz77WindowSize = 32768;

/// Greedy LZ77 parse with hash-chain match finding (the deflate family's
/// scheme). Deterministic.
std::vector<Lz77Token> Lz77Parse(const std::vector<uint8_t>& input);

/// Expands a token stream back into bytes. Tokens from Lz77Parse are always
/// valid; streams deserialized from untrusted bytes may not be, so an
/// out-of-range distance or undersized match length is an error, not a
/// crash.
StatusOr<std::vector<uint8_t>> Lz77Reconstruct(
    const std::vector<Lz77Token>& tokens);

}  // namespace sensjoin::compress

#endif  // SENSJOIN_COMPRESS_LZ77_H_
