#ifndef SENSJOIN_COMPRESS_BZIP2_LIKE_H_
#define SENSJOIN_COMPRESS_BZIP2_LIKE_H_

#include <cstdint>
#include <vector>

#include "sensjoin/common/statusor.h"

namespace sensjoin::compress {

/// A bzip2-style block codec: RLE1 -> Burrows-Wheeler transform ->
/// move-to-front -> Huffman, per block of up to 64 KiB. Stands in for bzip2
/// in the Sec. VI-B comparison; like the original, its per-block headers
/// can enlarge tiny inputs ("there is some overhead which increases the
/// volume if it is small").
std::vector<uint8_t> Bzip2LikeCompress(const std::vector<uint8_t>& input);

StatusOr<std::vector<uint8_t>> Bzip2LikeDecompress(
    const std::vector<uint8_t>& input);

}  // namespace sensjoin::compress

#endif  // SENSJOIN_COMPRESS_BZIP2_LIKE_H_
