#include "sensjoin/compress/zlib_like.h"

#include "sensjoin/compress/huffman.h"
#include "sensjoin/compress/lz77.h"

namespace sensjoin::compress {
namespace {

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

bool ReadU32(const std::vector<uint8_t>& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  *v = static_cast<uint32_t>(in[*pos]) |
       (static_cast<uint32_t>(in[*pos + 1]) << 8) |
       (static_cast<uint32_t>(in[*pos + 2]) << 16) |
       (static_cast<uint32_t>(in[*pos + 3]) << 24);
  *pos += 4;
  return true;
}

/// Serializes tokens into a flat byte stream: token count, flag bitmap
/// (1 = match), one byte per token (literal or length-3), two bytes per
/// match (distance).
std::vector<uint8_t> SerializeTokens(const std::vector<Lz77Token>& tokens) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(tokens.size()));
  uint8_t bits = 0;
  int nbits = 0;
  for (const Lz77Token& t : tokens) {
    bits = static_cast<uint8_t>((bits << 1) | (t.is_match ? 1 : 0));
    if (++nbits == 8) {
      out.push_back(bits);
      bits = 0;
      nbits = 0;
    }
  }
  if (nbits > 0) out.push_back(static_cast<uint8_t>(bits << (8 - nbits)));
  for (const Lz77Token& t : tokens) {
    out.push_back(t.is_match ? static_cast<uint8_t>(t.length - kLz77MinMatch)
                             : t.literal);
  }
  for (const Lz77Token& t : tokens) {
    if (!t.is_match) continue;
    out.push_back(static_cast<uint8_t>(t.distance));
    out.push_back(static_cast<uint8_t>(t.distance >> 8));
  }
  return out;
}

StatusOr<std::vector<Lz77Token>> DeserializeTokens(
    const std::vector<uint8_t>& in) {
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadU32(in, &pos, &count)) {
    return Status::InvalidArgument("zlib-like: truncated token count");
  }
  // Bounds before allocation: a bogus count must not drive a huge reserve.
  const size_t flag_bytes = (count + 7) / 8;
  if (pos + flag_bytes + count > in.size()) {
    return Status::InvalidArgument("zlib-like: truncated flags");
  }
  std::vector<Lz77Token> tokens(count);
  size_t matches = 0;
  for (uint32_t i = 0; i < count; ++i) {
    const uint8_t byte = in[pos + i / 8];
    tokens[i].is_match = (byte >> (7 - i % 8)) & 1;
    if (tokens[i].is_match) ++matches;
  }
  pos += flag_bytes;
  if (pos + count > in.size()) {
    return Status::InvalidArgument("zlib-like: truncated symbols");
  }
  for (uint32_t i = 0; i < count; ++i) {
    if (tokens[i].is_match) {
      tokens[i].length = static_cast<uint16_t>(in[pos + i] + kLz77MinMatch);
    } else {
      tokens[i].literal = in[pos + i];
    }
  }
  pos += count;
  if (pos + 2 * matches > in.size()) {
    return Status::InvalidArgument("zlib-like: truncated distances");
  }
  for (uint32_t i = 0; i < count; ++i) {
    if (!tokens[i].is_match) continue;
    tokens[i].distance = static_cast<uint16_t>(
        in[pos] | (static_cast<uint16_t>(in[pos + 1]) << 8));
    pos += 2;
  }
  if (pos != in.size()) {
    return Status::InvalidArgument("zlib-like: trailing bytes");
  }
  return tokens;
}

}  // namespace

std::vector<uint8_t> ZlibLikeCompress(const std::vector<uint8_t>& input) {
  // Like deflate, fall back to a stored block when entropy coding would
  // expand the data (dominant for the tiny per-hop buffers of Sec. VI-B).
  std::vector<uint8_t> compressed =
      HuffmanCompress(SerializeTokens(Lz77Parse(input)));
  if (compressed.size() < input.size()) {
    compressed.insert(compressed.begin(), 1);  // mode tag: compressed
    return compressed;
  }
  std::vector<uint8_t> stored;
  stored.reserve(input.size() + 1);
  stored.push_back(0);  // mode tag: stored
  stored.insert(stored.end(), input.begin(), input.end());
  return stored;
}

StatusOr<std::vector<uint8_t>> ZlibLikeDecompress(
    const std::vector<uint8_t>& input) {
  if (input.empty()) {
    return Status::InvalidArgument("zlib-like: missing mode tag");
  }
  const uint8_t mode = input.front();
  std::vector<uint8_t> body(input.begin() + 1, input.end());
  if (mode == 0) return body;
  if (mode != 1) {
    return Status::InvalidArgument("zlib-like: unknown mode tag");
  }
  SENSJOIN_ASSIGN_OR_RETURN(std::vector<uint8_t> serialized,
                            HuffmanDecompress(body));
  SENSJOIN_ASSIGN_OR_RETURN(std::vector<Lz77Token> tokens,
                            DeserializeTokens(serialized));
  return Lz77Reconstruct(tokens);
}

}  // namespace sensjoin::compress
