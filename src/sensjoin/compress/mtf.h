#ifndef SENSJOIN_COMPRESS_MTF_H_
#define SENSJOIN_COMPRESS_MTF_H_

#include <cstdint>
#include <vector>

namespace sensjoin::compress {

/// Move-to-front transform: each byte is replaced by its index in a
/// recency list, turning the local symbol clustering produced by the BWT
/// into a skew toward small values (which the entropy coder exploits).
std::vector<uint8_t> MtfEncode(const std::vector<uint8_t>& input);

std::vector<uint8_t> MtfDecode(const std::vector<uint8_t>& input);

}  // namespace sensjoin::compress

#endif  // SENSJOIN_COMPRESS_MTF_H_
