#include "sensjoin/compress/rle.h"

namespace sensjoin::compress {

std::vector<uint8_t> RleEncode(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> out;
  const size_t n = input.size();
  size_t i = 0;
  while (i < n) {
    const uint8_t b = input[i];
    size_t run = 1;
    while (i + run < n && input[i + run] == b && run < 255) ++run;
    if (run >= 4) {
      out.insert(out.end(), 4, b);
      out.push_back(static_cast<uint8_t>(run - 4));
    } else {
      out.insert(out.end(), run, b);
    }
    i += run;
  }
  return out;
}

StatusOr<std::vector<uint8_t>> RleDecode(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> out;
  const size_t n = input.size();
  size_t i = 0;
  while (i < n) {
    const uint8_t b = input[i];
    size_t run = 1;
    while (i + run < n && input[i + run] == b && run < 4) ++run;
    out.insert(out.end(), run, b);
    i += run;
    if (run == 4) {
      if (i >= n) {
        return Status::InvalidArgument("rle: truncated run count");
      }
      out.insert(out.end(), input[i], b);
      ++i;
    }
  }
  return out;
}

}  // namespace sensjoin::compress
