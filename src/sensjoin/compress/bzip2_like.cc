#include "sensjoin/compress/bzip2_like.h"

#include <algorithm>

#include "sensjoin/compress/bwt.h"
#include "sensjoin/compress/huffman.h"
#include "sensjoin/compress/mtf.h"
#include "sensjoin/compress/rle.h"

namespace sensjoin::compress {
namespace {

constexpr size_t kBlockSize = 64 * 1024;

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

bool ReadU32(const std::vector<uint8_t>& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  *v = static_cast<uint32_t>(in[*pos]) |
       (static_cast<uint32_t>(in[*pos + 1]) << 8) |
       (static_cast<uint32_t>(in[*pos + 2]) << 16) |
       (static_cast<uint32_t>(in[*pos + 3]) << 24);
  *pos += 4;
  return true;
}

}  // namespace

std::vector<uint8_t> Bzip2LikeCompress(const std::vector<uint8_t>& input) {
  // RLE1 first (as in bzip2), then split into blocks.
  const std::vector<uint8_t> rle = RleEncode(input);
  std::vector<uint8_t> out;
  const uint32_t num_blocks =
      static_cast<uint32_t>((rle.size() + kBlockSize - 1) / kBlockSize);
  AppendU32(&out, num_blocks);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    const size_t begin = static_cast<size_t>(b) * kBlockSize;
    const size_t end = std::min(rle.size(), begin + kBlockSize);
    const std::vector<uint8_t> block(rle.begin() + begin, rle.begin() + end);
    const BwtResult bwt = BwtTransform(block);
    const std::vector<uint8_t> entropy =
        HuffmanCompress(MtfEncode(bwt.data));
    AppendU32(&out, bwt.primary_index);
    AppendU32(&out, static_cast<uint32_t>(entropy.size()));
    out.insert(out.end(), entropy.begin(), entropy.end());
  }
  return out;
}

StatusOr<std::vector<uint8_t>> Bzip2LikeDecompress(
    const std::vector<uint8_t>& input) {
  size_t pos = 0;
  uint32_t num_blocks = 0;
  if (!ReadU32(input, &pos, &num_blocks)) {
    return Status::InvalidArgument("bzip2-like: truncated block count");
  }
  std::vector<uint8_t> rle;
  for (uint32_t b = 0; b < num_blocks; ++b) {
    uint32_t primary = 0;
    uint32_t entropy_size = 0;
    if (!ReadU32(input, &pos, &primary) ||
        !ReadU32(input, &pos, &entropy_size)) {
      return Status::InvalidArgument("bzip2-like: truncated block header");
    }
    if (pos + entropy_size > input.size()) {
      return Status::InvalidArgument("bzip2-like: truncated block body");
    }
    const std::vector<uint8_t> entropy(input.begin() + pos,
                                       input.begin() + pos + entropy_size);
    pos += entropy_size;
    SENSJOIN_ASSIGN_OR_RETURN(std::vector<uint8_t> mtf,
                              HuffmanDecompress(entropy));
    const std::vector<uint8_t> bwt_data = MtfDecode(mtf);
    SENSJOIN_ASSIGN_OR_RETURN(std::vector<uint8_t> block,
                              BwtInverse(bwt_data, primary));
    rle.insert(rle.end(), block.begin(), block.end());
  }
  if (pos != input.size()) {
    return Status::InvalidArgument("bzip2-like: trailing bytes");
  }
  return RleDecode(rle);
}

}  // namespace sensjoin::compress
