#include "sensjoin/compress/huffman.h"

#include <algorithm>
#include <array>
#include <queue>

#include "sensjoin/common/bit_stream.h"
#include "sensjoin/common/logging.h"

namespace sensjoin::compress {
namespace {

constexpr int kNumSymbols = 256;
constexpr int kMaxCodeLen = 63;  // lengths are serialized as 6-bit values

/// Computes Huffman code lengths from symbol frequencies.
std::array<uint8_t, kNumSymbols> CodeLengths(
    const std::array<uint64_t, kNumSymbols>& freq) {
  std::array<uint8_t, kNumSymbols> lengths{};
  // Nodes: leaves then internal; parent links let us read off depths.
  struct Node {
    uint64_t weight;
    int index;
  };
  auto cmp = [](const Node& a, const Node& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.index > b.index;  // deterministic ties
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);
  std::vector<int> parent;
  std::vector<int> leaf_symbol;  // symbol for leaf nodes, -1 for internal
  int distinct = 0;
  for (int s = 0; s < kNumSymbols; ++s) {
    if (freq[s] == 0) continue;
    const int idx = static_cast<int>(parent.size());
    parent.push_back(-1);
    leaf_symbol.push_back(s);
    heap.push(Node{freq[s], idx});
    ++distinct;
  }
  if (distinct == 0) return lengths;
  if (distinct == 1) {
    lengths[leaf_symbol[0]] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    const int idx = static_cast<int>(parent.size());
    parent.push_back(-1);
    leaf_symbol.push_back(-1);
    parent[a.index] = idx;
    parent[b.index] = idx;
    heap.push(Node{a.weight + b.weight, idx});
  }
  for (size_t i = 0; i < parent.size(); ++i) {
    if (leaf_symbol[i] < 0) continue;
    int depth = 0;
    for (int p = parent[i]; p >= 0; p = parent[p]) ++depth;
    SENSJOIN_CHECK_LE(depth, kMaxCodeLen);
    lengths[leaf_symbol[i]] = static_cast<uint8_t>(depth);
  }
  return lengths;
}

/// Assigns canonical codes (by ascending length, then symbol).
std::array<uint64_t, kNumSymbols> CanonicalCodes(
    const std::array<uint8_t, kNumSymbols>& lengths) {
  std::array<uint64_t, kNumSymbols> codes{};
  std::vector<int> symbols;
  for (int s = 0; s < kNumSymbols; ++s) {
    if (lengths[s] > 0) symbols.push_back(s);
  }
  std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  uint64_t code = 0;
  int prev_len = 0;
  for (int s : symbols) {
    code <<= (lengths[s] - prev_len);
    codes[s] = code;
    ++code;
    prev_len = lengths[s];
  }
  return codes;
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

bool ReadU32(const std::vector<uint8_t>& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  *v = static_cast<uint32_t>(in[*pos]) |
       (static_cast<uint32_t>(in[*pos + 1]) << 8) |
       (static_cast<uint32_t>(in[*pos + 2]) << 16) |
       (static_cast<uint32_t>(in[*pos + 3]) << 24);
  *pos += 4;
  return true;
}

}  // namespace

std::vector<uint8_t> HuffmanCompress(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(input.size()));
  if (input.empty()) return out;

  std::array<uint64_t, kNumSymbols> freq{};
  for (uint8_t b : input) ++freq[b];
  const std::array<uint8_t, kNumSymbols> lengths = CodeLengths(freq);
  const std::array<uint64_t, kNumSymbols> codes = CanonicalCodes(lengths);

  // Code-length table with zero-run RLE: a 0 byte is followed by
  // (run length - 1); other bytes are literal lengths (1..63).
  for (int s = 0; s < kNumSymbols;) {
    if (lengths[s] == 0) {
      int run = 0;
      while (s + run < kNumSymbols && lengths[s + run] == 0 && run < 256) {
        ++run;
      }
      out.push_back(0);
      out.push_back(static_cast<uint8_t>(run - 1));
      s += run;
    } else {
      out.push_back(lengths[s]);
      ++s;
    }
  }

  BitWriter bits;
  for (uint8_t b : input) bits.WriteBits(codes[b], lengths[b]);
  out.insert(out.end(), bits.bytes().begin(), bits.bytes().end());
  return out;
}

StatusOr<std::vector<uint8_t>> HuffmanDecompress(
    const std::vector<uint8_t>& input) {
  size_t pos = 0;
  uint32_t original_size = 0;
  if (!ReadU32(input, &pos, &original_size)) {
    return Status::InvalidArgument("huffman: truncated header");
  }
  std::vector<uint8_t> out;
  if (original_size == 0) return out;

  std::array<uint8_t, kNumSymbols> lengths{};
  for (int s = 0; s < kNumSymbols;) {
    if (pos >= input.size()) {
      return Status::InvalidArgument("huffman: truncated length table");
    }
    const uint8_t v = input[pos++];
    if (v == 0) {
      if (pos >= input.size()) {
        return Status::InvalidArgument("huffman: truncated zero run");
      }
      const int run = input[pos++] + 1;
      if (s + run > kNumSymbols) {
        return Status::InvalidArgument("huffman: zero run overflow");
      }
      s += run;
    } else {
      if (v > kMaxCodeLen) {
        return Status::InvalidArgument("huffman: invalid code length");
      }
      lengths[s++] = v;
    }
  }
  const std::array<uint64_t, kNumSymbols> codes = CanonicalCodes(lengths);

  // Per-length decode tables: first code and symbol list.
  std::array<std::vector<int>, kMaxCodeLen + 1> symbols_by_len;
  for (int s = 0; s < kNumSymbols; ++s) {
    if (lengths[s] > 0) symbols_by_len[lengths[s]].push_back(s);
  }
  std::array<uint64_t, kMaxCodeLen + 1> first_code{};
  for (int l = 1; l <= kMaxCodeLen; ++l) {
    if (!symbols_by_len[l].empty()) first_code[l] = codes[symbols_by_len[l][0]];
  }

  // Every symbol costs at least one bit, so a declared size beyond the
  // remaining bitstream is malformed — and must be rejected before the
  // reserve below turns an attacker-chosen u32 into a giant allocation.
  if (original_size > (input.size() - pos) * 8) {
    return Status::InvalidArgument("huffman: declared size exceeds bitstream");
  }
  BitReader reader(input.data() + pos, (input.size() - pos) * 8);
  out.reserve(original_size);
  while (out.size() < original_size) {
    uint64_t code = 0;
    int len = 0;
    int symbol = -1;
    while (len < kMaxCodeLen) {
      if (reader.AtEnd()) {
        return Status::InvalidArgument("huffman: truncated bitstream");
      }
      code = (code << 1) | (reader.ReadBit() ? 1u : 0u);
      ++len;
      const auto& group = symbols_by_len[len];
      if (!group.empty() && code >= first_code[len] &&
          code < first_code[len] + group.size()) {
        symbol = group[code - first_code[len]];
        break;
      }
    }
    if (symbol < 0) {
      return Status::InvalidArgument("huffman: invalid code");
    }
    out.push_back(static_cast<uint8_t>(symbol));
  }
  return out;
}

}  // namespace sensjoin::compress
