#ifndef SENSJOIN_TESTBED_CHAOS_H_
#define SENSJOIN_TESTBED_CHAOS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sensjoin/join/execution_report.h"
#include "sensjoin/join/result.h"
#include "sensjoin/obs/trace.h"
#include "sensjoin/query/query.h"
#include "sensjoin/sim/fault_model.h"
#include "sensjoin/testbed/testbed.h"

namespace sensjoin::testbed {

/// Knobs of the seeded chaos generator. Every quantity is drawn from a
/// dedicated Rng stream keyed by `seed`, so a schedule is a pure function
/// of (deployment, params) and replays are exact.
struct ChaosParams {
  uint64_t seed = 1;

  /// Node crashes drawn uniformly over non-root in-tree nodes; a
  /// `recover_fraction` of them reboot after `recover_delay_s`.
  int num_crashes = 2;
  double recover_fraction = 0.5;
  double recover_delay_s = 0.02;

  /// Crashes that take effect before the first protocol phase (ApplyChaos
  /// drains the event queue over `prerun_horizon_s`): the node died between
  /// tree build and query launch, so its children hit a dead parent on
  /// their first upward send — the canonical in-network-repair scenario.
  /// Victims are distinct from the mid-run crash victims.
  int num_prerun_crashes = 1;
  double prerun_horizon_s = 0.001;

  /// Transient link blackouts on randomly chosen tree edges (the links the
  /// join actually uses), each lasting between `outage_min_s` and
  /// `outage_max_s`.
  int num_outages = 3;
  double outage_min_s = 0.02;
  double outage_max_s = 0.25;

  /// Sim-time window (from the schedule's start time) into which crash
  /// times and outage starts fall. Defaults are tuned to the simulator's
  /// phase timescale (milliseconds of sim time per phase), so events land
  /// while the join is actually in flight.
  double window_s = 0.05;

  /// Ambient per-fragment loss, plus `num_loss_bursts` links whose loss
  /// rate is raised to `burst_loss_rate` (transient interference bursts).
  double loss_rate = 0.02;
  int num_loss_bursts = 2;
  double burst_loss_rate = 0.7;

  /// Per-fragment corruption probability (0 keeps the corruption model —
  /// and its CRC trailer bytes — out entirely).
  double corruption_rate = 0.0;

  /// Link-layer ARQ installed with the plan.
  bool arq_enabled = true;
  int arq_max_retransmissions = 3;

  // --- Delivery-semantics axes (exactly-once layer). Direct plan knobs ---
  // --- that consume no schedule randomness: all-defaults schedules are ---
  // --- draw-for-draw identical to pre-existing ones. --------------------

  /// Ambient per-link probability that a delivered logical message is
  /// delivered a second time (ack-lost style duplication).
  double duplication_rate = 0.0;

  /// Per-message extra delivery latency drawn uniformly from [0,
  /// max_jitter_s]: later sends can overtake earlier ones (reordering).
  double max_jitter_s = 0.0;

  /// Cross-attempt replay: messages still in flight when an attempt aborts
  /// are re-delivered during the next attempt (stale-tag traffic).
  bool enable_replay = false;
};

/// Sim-time progress bounds for the no-stall liveness invariant. A zero
/// bound skips that check (the default-constructed value checks nothing).
struct LivenessBounds {
  /// Ceiling on the longest single span of any protocol phase (sim s).
  double max_phase_span_s = 0.0;
  /// Ceiling on the whole execution's response time (sim s).
  double max_total_s = 0.0;
};

/// A generated fault scenario: the installable FaultPlan plus the draws
/// that produced it, for assertions and reporting.
struct ChaosSchedule {
  sim::FaultPlan plan;

  std::vector<sim::CrashEvent> crashes;        ///< also inside plan
  std::vector<sim::LinkOutageWindow> outages;  ///< also inside plan

  /// Nodes that crash and never reboot within the schedule.
  std::vector<sim::NodeId> permanently_down;

  /// How far ApplyChaos advances the event queue so pre-run crashes are in
  /// effect before the first protocol phase (0 skips the drain).
  double prerun_horizon_s = 0.0;
};

/// Draws a chaos schedule for `testbed`'s deployment, with event times
/// offset from the simulator's current time. Pure: does not touch the
/// testbed beyond reading topology and tree structure.
ChaosSchedule MakeChaosSchedule(Testbed& testbed, const ChaosParams& params);

/// Installs the schedule's fault plan on the testbed's simulator.
void ApplyChaos(Testbed& testbed, const ChaosSchedule& schedule);

/// The ground-truth join over every node's data, bypassing the network
/// entirely (same sensing semantics as the executors: one snapshot per
/// `epoch`).
join::JoinResult ComputeGroundTruth(Testbed& testbed,
                                    const query::AnalyzedQuery& q,
                                    uint64_t epoch);

/// Checks the self-healing soundness invariants of one execution against
/// the ground truth. Returns human-readable violations; empty means all
/// invariants hold.
///
///  1. No fabrication, exactly-once rows: every result row appears in the
///     ground truth AND with multiplicity no higher than the truth's —
///     duplicated deliveries must never duplicate a join row, phantom rows
///     must never appear (multiset containment; non-aggregate queries).
///  2. Certificate consistency: no contributing node is listed as excluded.
///  3. Certificate exactness (only when no corrupted payload was delivered
///     to the application): the result equals exactly the truth rows with
///     no contributor in the excluded set.
///  4. Trace cross-check (when `tracer` covers exactly the execution):
///     repair fragments, join-kind fragments, duplicated/replayed
///     fragments and total energy recomputed from the trace match the
///     CostReport.
///  5. No-stall liveness (when `liveness` sets a nonzero bound): every
///     phase span and the total response time stay under their sim-time
///     ceilings — recovery/repair loops must terminate, never spin.
std::vector<std::string> CheckInvariants(const join::JoinResult& truth,
                                         const join::ExecutionReport& report,
                                         const obs::Tracer* tracer = nullptr,
                                         const LivenessBounds* liveness =
                                             nullptr);

/// FNV-1a over every field of every trace event: any reordering, drop or
/// numeric drift between two runs changes the digest. Doubles are hashed
/// as bit patterns, so the digest certifies bit-identical floating-point
/// accumulation, not just closeness — the property the windowed engine's
/// turn-ordered effect commit is designed to preserve.
uint64_t TraceDigest(const obs::Tracer& tracer);

/// Every number a replay (or an engine-equivalence check) must reproduce,
/// in one string: result, costs (doubles as bit patterns), self-healing
/// counters, the full completeness certificate, and — when `tracer` is
/// non-null — the trace digest.
std::string ExecutionFingerprint(const join::ExecutionReport& r,
                                 const obs::Tracer* tracer = nullptr);

/// Serializes a schedule (the params that generated it plus the concrete
/// draws) to a single JSON object — the reproducer format the chaos swarm
/// dumps on first violation. Re-running the swarm binary with the same
/// deployment and the embedded params regenerates the schedule exactly.
std::string ChaosScheduleToJson(const ChaosParams& params,
                                const ChaosSchedule& schedule);

/// Greedy schedule minimizer: tries zeroing one fault axis at a time
/// (replay, jitter, duplication, corruption, loss bursts, ambient loss,
/// outages, mid-run crashes, pre-run crashes) and keeps each zeroing under
/// which `reproduces` still returns true. The result is a (locally) minimal
/// params whose schedule still triggers the violation.
ChaosParams MinimizeChaos(const ChaosParams& params,
                          const std::function<bool(const ChaosParams&)>&
                              reproduces);

}  // namespace sensjoin::testbed

#endif  // SENSJOIN_TESTBED_CHAOS_H_
