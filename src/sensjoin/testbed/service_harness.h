#ifndef SENSJOIN_TESTBED_SERVICE_HARNESS_H_
#define SENSJOIN_TESTBED_SERVICE_HARNESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sensjoin/common/statusor.h"
#include "sensjoin/service/join_service.h"
#include "sensjoin/testbed/testbed.h"

namespace sensjoin::testbed {

/// Builds a continuous join service bound to `tb`'s deployment (simulator,
/// environment data, a copy of the routing tree, the environment's
/// quantization). The testbed must outlive the service. Each ParallelRunner
/// trial builds its own testbed + service pair, keeping trials
/// self-contained and sweeps byte-identical to sequential runs.
service::JoinService MakeService(
    Testbed& tb, service::ServiceConfig config = service::ServiceConfig{});

/// One admission-churn action, applied before its epoch executes.
struct ChurnEvent {
  enum class Kind { kRegister, kCancel };
  uint64_t epoch = 0;
  Kind kind = Kind::kRegister;
  /// kRegister: the SQL to admit.
  std::string sql;
  /// kCancel: the query to cancel; 0 = the oldest still-active query.
  service::QueryId target = 0;
};

/// Scripted service run: initial admissions, a churn schedule, a fixed
/// number of epochs.
struct ServiceRunParams {
  std::vector<std::string> initial_queries;
  std::vector<ChurnEvent> churn;
  uint64_t epochs = 6;
  service::ServiceConfig config;
};

struct ServiceRunResult {
  /// Ids in admission order (initial queries first, then churn
  /// registrations).
  std::vector<service::QueryId> admitted;
  /// Service-level rollup per executed epoch.
  std::vector<service::ServiceEpochReport> epochs;
  /// Per-query report streams, copied out of the registry at the end (a
  /// query's stream covers the epochs it was active in).
  std::map<service::QueryId, std::vector<join::ExecutionReport>>
      query_reports;
};

/// Drives a JoinService over `tb` for `params.epochs` scheduled epochs,
/// applying the churn schedule (events fire when their `epoch` equals the
/// schedule step). Fails on invalid churn (bad SQL, unknown cancel target)
/// or an epoch that exhausts its retries; a step with no active queries is
/// skipped without advancing the service's epoch counter.
StatusOr<ServiceRunResult> RunService(Testbed& tb,
                                      const ServiceRunParams& params);

}  // namespace sensjoin::testbed

#endif  // SENSJOIN_TESTBED_SERVICE_HARNESS_H_
