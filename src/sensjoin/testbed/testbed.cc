#include "sensjoin/testbed/testbed.h"

#include <utility>

#include "sensjoin/net/flooding.h"

namespace sensjoin::testbed {
namespace {
sim::SimConfig g_default_sim_config;
}  // namespace

const sim::SimConfig& DefaultSimConfig() { return g_default_sim_config; }

void SetDefaultSimConfig(const sim::SimConfig& config) {
  g_default_sim_config = config;
}

StatusOr<std::unique_ptr<Testbed>> Testbed::Create(
    const TestbedParams& params) {
  Rng rng(params.seed);
  SENSJOIN_ASSIGN_OR_RETURN(
      net::Placement placement,
      net::GenerateConnectedPlacement(params.placement, rng));

  auto simulator = std::make_unique<sim::Simulator>(
      sim::Radio(placement.positions, params.placement.range_m,
                 sim::RadioOptions{.materialize_threshold =
                                       params.sim
                                           .neighbor_materialize_threshold}),
      params.packets, params.energy);
  simulator->ConfigureEngine(params.sim.engine);

  auto env = std::make_unique<data::NetworkData>(
      placement.positions, params.placement.area_width_m,
      params.placement.area_height_m);
  if (params.default_fields) {
    data::FieldParams temp;
    temp.base = 20.0;
    temp.gradient_per_m = 0.004;
    temp.num_bumps = 10;
    temp.bump_amplitude = 4.0;
    temp.bump_sigma_m = 180.0;
    temp.noise_sigma = 0.05;
    env->AddField("temp", temp, rng);

    data::FieldParams hum;
    hum.base = 50.0;
    hum.gradient_per_m = 0.01;
    hum.num_bumps = 8;
    hum.bump_amplitude = 8.0;
    hum.bump_sigma_m = 200.0;
    hum.noise_sigma = 0.2;
    env->AddField("hum", hum, rng);

    data::FieldParams pres;
    pres.base = 1010.0;
    pres.gradient_per_m = 0.005;
    pres.num_bumps = 4;
    pres.bump_amplitude = 6.0;
    pres.bump_sigma_m = 400.0;
    pres.noise_sigma = 0.1;
    env->AddField("pres", pres, rng);

    data::FieldParams light;
    light.base = 500.0;
    light.gradient_per_m = 0.2;
    light.num_bumps = 12;
    light.bump_amplitude = 150.0;
    light.bump_sigma_m = 120.0;
    light.noise_sigma = 5.0;
    env->AddField("light", light, rng);
  }

  net::RoutingTree tree =
      net::RoutingTree::Build(*simulator, placement.base_station_id());

  auto testbed = std::unique_ptr<Testbed>(
      new Testbed(params, std::move(placement), std::move(simulator),
                  std::move(env), std::move(tree), rng.Fork()));
  return testbed;
}

Testbed::Testbed(TestbedParams params, net::Placement placement,
                 std::unique_ptr<sim::Simulator> sim,
                 std::unique_ptr<data::NetworkData> data,
                 net::RoutingTree tree, Rng rng)
    : params_(std::move(params)),
      placement_(std::move(placement)),
      sim_(std::move(sim)),
      data_(std::move(data)),
      tree_(std::move(tree)),
      rng_(rng) {
  flooder_.emplace(*sim_);
  // Environment quantization (Sec. V-B: 0.1 degC temperature steps, 1 m
  // coordinate steps; other sensors at sensible environment resolutions).
  quantization_.by_attr["x"] = {0.0, params_.placement.area_width_m, 1.0};
  quantization_.by_attr["y"] = {0.0, params_.placement.area_height_m, 1.0};
  quantization_.by_attr["temp"] = {0.0, 50.0, 0.1};
  quantization_.by_attr["hum"] = {0.0, 100.0, 0.25};
  quantization_.by_attr["pres"] = {950.0, 1060.0, 0.25};
  quantization_.by_attr["light"] = {0.0, 1500.0, 2.0};
}

StatusOr<query::AnalyzedQuery> Testbed::ParseQuery(
    const std::string& sql) const {
  return query::AnalyzedQuery::FromString(sql, data_->schema());
}

int Testbed::DisseminateQuery(const query::AnalyzedQuery& q) {
  // A re-disseminated query is a new epoch: suppression memory from the
  // previous flood must not mute the re-flood.
  flooder_->ResetSuppression();
  return flooder_->Flood(tree_.root(), q.QueryWireBytes(),
                         sim::MessageKind::kQuery);
}

join::SensJoinExecutor Testbed::MakeSensJoin(join::ProtocolConfig config) {
  return join::SensJoinExecutor(*sim_, tree_, *data_, quantization_, config);
}

join::ExternalJoinExecutor Testbed::MakeExternalJoin(
    join::ProtocolConfig config) {
  return join::ExternalJoinExecutor(*sim_, tree_, *data_, config);
}

void Testbed::RebuildTree() {
  tree_ = net::RoutingTree::Build(*sim_, placement_.base_station_id());
}

void Testbed::InjectFaults(const sim::FaultPlan& plan) {
  sim::ApplyFaultPlan(*sim_, plan);
}

}  // namespace sensjoin::testbed
