#include "sensjoin/testbed/report.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "sensjoin/common/logging.h"

namespace sensjoin::testbed {

std::string LoadHeatMap(const net::Placement& placement,
                        const std::vector<uint64_t>& per_node_packets,
                        int columns, int rows) {
  SENSJOIN_CHECK_EQ(placement.positions.size(), per_node_packets.size());
  SENSJOIN_CHECK(columns > 0 && rows > 0);
  const double w = placement.params.area_width_m;
  const double h = placement.params.area_height_m;

  std::vector<uint64_t> cell_max(static_cast<size_t>(columns) * rows, 0);
  uint64_t global_max = 0;
  for (size_t i = 0; i < placement.positions.size(); ++i) {
    global_max = std::max(global_max, per_node_packets[i]);
  }
  auto cell_of = [&](const Point& p) {
    int cx = static_cast<int>(p.x / w * columns);
    int cy = static_cast<int>(p.y / h * rows);
    cx = std::clamp(cx, 0, columns - 1);
    cy = std::clamp(cy, 0, rows - 1);
    return cy * columns + cx;
  };
  for (size_t i = 0; i < placement.positions.size(); ++i) {
    size_t c = cell_of(placement.positions[i]);
    cell_max[c] = std::max(cell_max[c], per_node_packets[i]);
  }

  // Log-ish scale: '.' idle, then ascending intensity.
  const char kScale[] = {'.', ':', '-', '=', '+', '*', '#', '@'};
  std::ostringstream os;
  os << "per-node transmissions (max " << global_max << "), 'B' = base\n";
  const size_t base_cell = cell_of(placement.positions[0]);
  for (int y = rows - 1; y >= 0; --y) {  // north up
    for (int x = 0; x < columns; ++x) {
      const size_t c = static_cast<size_t>(y) * columns + x;
      if (c == base_cell) {
        os << 'B';
        continue;
      }
      const uint64_t v = cell_max[c];
      if (v == 0 || global_max == 0) {
        os << kScale[0];
        continue;
      }
      const double t =
          static_cast<double>(v) / static_cast<double>(global_max);
      int idx = 1 + static_cast<int>(t * 6.999);
      idx = std::clamp(idx, 1, 7);
      os << kScale[idx];
    }
    os << '\n';
  }
  return os.str();
}

std::string TreeSummary(const net::RoutingTree& tree) {
  std::ostringstream os;
  os << "routing tree: " << tree.num_reachable() << "/" << tree.num_nodes()
     << " nodes reachable, max depth " << tree.max_depth() << "\n";
  // Depth histogram.
  std::vector<int> by_depth(tree.max_depth() + 1, 0);
  int leaves = 0;
  int max_fanout = 0;
  double depth_sum = 0;
  for (int i = 0; i < tree.num_nodes(); ++i) {
    if (!tree.InTree(i)) continue;
    ++by_depth[tree.hop_count(i)];
    depth_sum += tree.hop_count(i);
    if (tree.IsLeaf(i)) ++leaves;
    max_fanout = std::max(max_fanout,
                          static_cast<int>(tree.children(i).size()));
  }
  os << "leaves: " << leaves << ", max fan-out: " << max_fanout
     << ", mean depth: " << depth_sum / std::max(1, tree.num_reachable())
     << "\n";
  os << "nodes per depth:";
  for (int d = 0; d <= tree.max_depth(); ++d) os << " " << by_depth[d];
  os << "\n";
  return os.str();
}

std::string CostByDepth(const net::RoutingTree& tree,
                        const join::CostReport& cost) {
  SENSJOIN_CHECK_EQ(static_cast<int>(cost.per_node_packets.size()),
                    tree.num_nodes());
  std::vector<uint64_t> by_depth(tree.max_depth() + 1, 0);
  for (int i = 0; i < tree.num_nodes(); ++i) {
    if (!tree.InTree(i)) continue;
    by_depth[tree.hop_count(i)] += cost.per_node_packets[i];
  }
  std::ostringstream os;
  os << "join-processing transmissions by tree depth (root first):\n";
  uint64_t max_row = 1;
  for (uint64_t v : by_depth) max_row = std::max(max_row, v);
  for (int d = 0; d <= tree.max_depth(); ++d) {
    os << "  depth " << (d < 10 ? " " : "") << d << ": ";
    const int bar = static_cast<int>(48.0 * by_depth[d] / max_row);
    for (int i = 0; i < bar; ++i) os << '#';
    os << " " << by_depth[d] << "\n";
  }
  return os.str();
}

double ResultCompleteness(const join::JoinResult& truth,
                          const join::JoinResult& actual) {
  if (truth.rows.empty()) return 1.0;
  // Multiset match: a degraded run can only lose rows, but duplicates in
  // either result must not inflate the score.
  std::map<std::vector<double>, size_t> want;
  for (const std::vector<double>& row : truth.rows) ++want[row];
  size_t delivered = 0;
  for (const std::vector<double>& row : actual.rows) {
    auto it = want.find(row);
    if (it != want.end() && it->second > 0) {
      --it->second;
      ++delivered;
    }
  }
  return static_cast<double>(delivered) / static_cast<double>(truth.rows.size());
}

std::string FaultToleranceSummary(const join::CostReport& cost,
                                  double completeness) {
  std::ostringstream os;
  os << "join packets: " << cost.join_packets << " (retransmitted "
     << cost.retransmitted_packets << ", acks " << cost.ack_packets << ")\n"
     << "energy: " << cost.energy_mj << " mJ (retransmissions "
     << cost.retransmit_energy_mj << " mJ, acks " << cost.ack_energy_mj
     << " mJ)\n";
  if (cost.corrupted_packets > 0 || cost.undetected_corrupted_packets > 0 ||
      cost.crc_bytes_sent > 0) {
    os << "integrity: " << cost.corrupted_packets
       << " corrupted fragments caught by CRC, "
       << cost.undetected_corrupted_packets << " undetected; trailer "
       << cost.crc_bytes_sent << " B / " << cost.crc_energy_mj
       << " mJ, corruption-triggered retransmissions "
       << cost.integrity_retransmit_energy_mj << " mJ\n";
  }
  if (cost.duplicate_packets > 0 || cost.replayed_packets > 0) {
    os << "delivery: " << cost.duplicate_packets
       << " duplicated deliveries (" << cost.duplicate_energy_mj
       << " mJ), " << cost.replayed_packets << " cross-attempt replays ("
       << cost.replay_energy_mj << " mJ)\n";
  }
  os << "result completeness: " << completeness * 100.0 << "%\n";
  return os.str();
}

}  // namespace sensjoin::testbed
