#ifndef SENSJOIN_TESTBED_PARALLEL_H_
#define SENSJOIN_TESTBED_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sensjoin/common/status.h"
#include "sensjoin/common/statusor.h"
#include "sensjoin/sim/sim_config.h"

namespace sensjoin::testbed {

/// Derives an independent per-trial seed from a sweep seed. Uses the
/// splitmix64 finalizer over `sweep_seed + (trial_index + 1) * golden`,
/// so every (sweep_seed, trial) pair maps to a well-mixed 64-bit stream
/// regardless of how correlated the inputs are. trial_index is offset by
/// one so that trial 0 does not collapse to splitmix64(sweep_seed), which
/// callers sometimes use directly for a "whole sweep" stream.
uint64_t DeriveTrialSeed(uint64_t sweep_seed, uint64_t trial_index);

/// Resolves the worker-thread count for a ParallelRunner:
///   1. `requested` if > 0 (e.g. from a --threads flag),
///   2. else the SENSJOIN_THREADS environment variable if set and > 0,
///   3. else std::thread::hardware_concurrency() (minimum 1).
int ResolveThreadCount(int requested = 0);

/// Strips a `--threads N` / `--threads=N` argument from (argc, argv) and
/// returns N, or 0 when the flag is absent (letting ResolveThreadCount
/// fall through to the environment). Mutates argv in place so positional
/// arguments (seed, node count) keep their indices for existing parsing.
int ParseThreadsFlag(int* argc, char** argv);

/// Strips a `--engine KIND` / `--engine=KIND` argument from (argc, argv),
/// where KIND is `seq`/`sequential` or `windowed`, optionally suffixed with
/// `:N` to pin the windowed worker count (`--engine=windowed:4`). The
/// parsed selection is installed as the process default
/// (SetDefaultSimConfig), so TestbedParams built afterwards inherit it.
/// Mutates argv in place like ParseThreadsFlag; returns the resulting
/// config (the untouched default when the flag is absent). Unrecognized
/// KINDs abort with a clear message.
sim::SimConfig ParseEngineFlag(int* argc, char** argv);

/// Identity of one trial inside a sweep, handed to the trial callback.
struct TrialContext {
  int trial = 0;       ///< 0-based index into the sweep.
  uint64_t seed = 0;   ///< DeriveTrialSeed(sweep_seed, trial).
};

/// A work-queue thread pool for embarrassingly parallel experiment sweeps.
///
/// Trials are claimed from an atomic counter, so long trials do not
/// stall short ones behind a static partition. Results are collected
/// into per-trial slots and returned in trial order, which makes the
/// output of a parallel run byte-identical to a sequential one as long
/// as each trial is self-contained (builds its own Testbed from
/// ctx.seed and touches no shared mutable state). Exceptions escaping a
/// trial are captured as Status rather than tearing down the process,
/// and the first failure (lowest trial index) stops workers from
/// claiming further trials.
///
/// With threads() == 1 the runner executes every trial inline on the
/// calling thread — no pool, no synchronization — so single-threaded
/// sweeps behave exactly like the original sequential loops.
class ParallelRunner {
 public:
  /// `threads` <= 0 defers to ResolveThreadCount() (flag/env/hardware).
  explicit ParallelRunner(int threads = 0);

  int threads() const { return threads_; }

  /// Runs `fn` once per trial in [0, num_trials). Returns the first
  /// (lowest-trial-index) non-OK Status, or OK if every trial succeeded.
  /// Exceptions thrown by `fn` are converted to internal errors. Once any
  /// trial fails, unclaimed trials are skipped.
  Status RunTrials(int num_trials, uint64_t sweep_seed,
                   const std::function<Status(const TrialContext&)>& fn) const;

  /// Like RunTrials but collects one result per trial, returned in trial
  /// order (independent of completion order).
  template <typename Fn>
  auto Run(int num_trials, uint64_t sweep_seed, Fn&& fn) const
      -> StatusOr<std::vector<decltype(fn(TrialContext{}))>> {
    using T = decltype(fn(TrialContext{}));
    std::vector<T> results(static_cast<size_t>(num_trials > 0 ? num_trials
                                                              : 0));
    Status status = RunTrials(
        num_trials, sweep_seed, [&](const TrialContext& ctx) -> Status {
          // Distinct trials write distinct slots; no locking needed.
          results[static_cast<size_t>(ctx.trial)] = fn(ctx);
          return Status::Ok();
        });
    if (!status.ok()) return status;
    return results;
  }

 private:
  int threads_;
};

}  // namespace sensjoin::testbed

#endif  // SENSJOIN_TESTBED_PARALLEL_H_
