#include "sensjoin/testbed/service_harness.h"

#include <utility>

#include "sensjoin/common/logging.h"

namespace sensjoin::testbed {

service::JoinService MakeService(Testbed& tb, service::ServiceConfig config) {
  return service::JoinService(tb.simulator(), tb.data(), tb.tree(),
                              tb.quantization(), config);
}

StatusOr<ServiceRunResult> RunService(Testbed& tb,
                                      const ServiceRunParams& params) {
  service::JoinService svc = MakeService(tb, params.config);
  ServiceRunResult result;

  for (const std::string& sql : params.initial_queries) {
    SENSJOIN_ASSIGN_OR_RETURN(const service::QueryId id, svc.Register(sql));
    result.admitted.push_back(id);
  }

  for (uint64_t step = 0; step < params.epochs; ++step) {
    for (const ChurnEvent& event : params.churn) {
      if (event.epoch != step) continue;
      if (event.kind == ChurnEvent::Kind::kRegister) {
        SENSJOIN_ASSIGN_OR_RETURN(const service::QueryId id,
                                  svc.Register(event.sql));
        result.admitted.push_back(id);
      } else {
        service::QueryId target = event.target;
        if (target == 0) {
          const std::vector<service::QueryId> active =
              svc.registry().ActiveIds();
          if (active.empty()) {
            return Status::FailedPrecondition(
                "churn cancel with no active query");
          }
          target = active.front();
        }
        SENSJOIN_RETURN_IF_ERROR(svc.Cancel(target));
      }
    }
    if (svc.registry().active_count() == 0) continue;
    SENSJOIN_ASSIGN_OR_RETURN(service::ServiceEpochReport report,
                              svc.RunEpoch());
    result.epochs.push_back(std::move(report));
  }

  for (const service::QueryId id : result.admitted) {
    SENSJOIN_ASSIGN_OR_RETURN(const service::QueryRecord* record,
                              svc.registry().Get(id));
    result.query_reports.emplace(id, record->reports);
  }
  return result;
}

}  // namespace sensjoin::testbed
