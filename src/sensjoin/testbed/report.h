#ifndef SENSJOIN_TESTBED_REPORT_H_
#define SENSJOIN_TESTBED_REPORT_H_

#include <string>
#include <vector>

#include "sensjoin/join/result.h"
#include "sensjoin/join/stats.h"
#include "sensjoin/net/routing_tree.h"
#include "sensjoin/net/topology.h"

namespace sensjoin::testbed {

/// Human-readable deployment and load reports: quick operator-facing views
/// of where the energy goes, without external plotting tools.

/// ASCII heat map of per-node transmissions over the deployment area:
/// nodes are binned into a `columns` x `rows` character grid; each cell
/// shows the load of its hottest node on a '.' (idle) to '#'/'@' scale,
/// 'B' marks the base station.
std::string LoadHeatMap(const net::Placement& placement,
                        const std::vector<uint64_t>& per_node_packets,
                        int columns = 48, int rows = 24);

/// Routing-tree statistics: depth histogram, fan-out, heaviest subtrees.
std::string TreeSummary(const net::RoutingTree& tree);

/// Tabulates a CostReport next to the tree structure: per-depth totals of
/// join-processing transmissions (where in the tree the cost sits).
std::string CostByDepth(const net::RoutingTree& tree,
                        const join::CostReport& cost);

/// Fraction of the ground-truth join result delivered by a (possibly
/// degraded) run: delivered rows over truth rows, matched as multisets.
/// 1.0 for an empty truth. This is the metric that turns fault-injection
/// runs from pass/fail into a graceful-degradation curve.
double ResultCompleteness(const join::JoinResult& truth,
                          const join::JoinResult& actual);

/// Operator one-liner for a run under faults: join packets, itemized ARQ
/// overhead (retransmissions, acks, their energy), integrity-layer counters
/// when a corruption model was active (CRC-caught vs undetected fragments,
/// trailer bytes/energy) and result completeness.
std::string FaultToleranceSummary(const join::CostReport& cost,
                                  double completeness);

}  // namespace sensjoin::testbed

#endif  // SENSJOIN_TESTBED_REPORT_H_
