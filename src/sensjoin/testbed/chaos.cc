#include "sensjoin/testbed/chaos.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstring>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sensjoin/common/logging.h"
#include "sensjoin/common/rng.h"
#include "sensjoin/join/executor_context.h"
#include "sensjoin/net/routing_tree.h"

namespace sensjoin::testbed {
namespace {

std::string Format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return std::string(buf);
}

/// Draws `k` distinct elements from `pool` (partial Fisher-Yates); returns
/// fewer when the pool is smaller.
std::vector<sim::NodeId> SampleDistinct(std::vector<sim::NodeId> pool, int k,
                                        Rng& rng) {
  const int take = std::min<int>(k, static_cast<int>(pool.size()));
  for (int i = 0; i < take; ++i) {
    const int j = static_cast<int>(
        rng.UniformInt(i, static_cast<int64_t>(pool.size()) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(take);
  return pool;
}

/// Lexicographic row order for multiset comparisons.
bool RowLess(const std::vector<double>& a, const std::vector<double>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

uint64_t BitsOf(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t TraceDigest(const obs::Tracer& tracer) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  tracer.buffer().ForEach([&](const obs::TraceEvent& e) {
    mix(BitsOf(e.time));
    mix(static_cast<uint64_t>(e.node));
    mix(static_cast<uint64_t>(e.peer));
    mix(e.count);
    mix(e.detail);
    mix(e.bytes);
    mix(BitsOf(e.energy_mj));
    mix(static_cast<uint64_t>(e.kind));
    mix(static_cast<uint64_t>(e.msg_kind));
    mix(static_cast<uint64_t>(e.phase));
  });
  return h;
}

std::string ExecutionFingerprint(const join::ExecutionReport& r,
                                 const obs::Tracer* tracer) {
  std::ostringstream out;
  out << "rows=" << r.result.rows.size()
      << " matched=" << r.result.matched_combinations << " contributing=";
  for (sim::NodeId u : r.result.contributing_nodes) out << u << ",";
  out << " pkts=" << r.cost.join_packets << " bytes=" << r.cost.join_bytes
      << " energy=" << std::hex << BitsOf(r.cost.energy_mj) << std::dec
      << " retx=" << r.cost.retransmitted_packets
      << " acks=" << r.cost.ack_packets
      << " repair_pkts=" << r.cost.repair_packets
      << " repair_bytes=" << r.cost.repair_bytes_sent
      << " repair_energy=" << std::hex << BitsOf(r.cost.repair_energy_mj)
      << std::dec << " success=" << r.success << " attempts=" << r.attempts
      << " recovery=" << r.recovery_requests
      << " repairs=" << r.repairs_attempted << "/" << r.repairs_succeeded
      << " watchdog=" << r.watchdog_expirations
      << " corrupt=" << r.corrupted_deliveries
      << " dup_pkts=" << r.total_cost.duplicate_packets
      << " replay_pkts=" << r.total_cost.replayed_packets
      << " dup_deliv=" << r.duplicate_deliveries
      << " stale=" << r.stale_messages_dropped
      << " reordered=" << r.reordered_messages
      << " degraded=" << r.certificate.degraded
      << " coverage=" << r.certificate.reporting_nodes << "/"
      << r.certificate.total_nodes << " excluded=";
  for (sim::NodeId u : r.certificate.excluded_nodes) out << u << ",";
  out << " roots=";
  for (sim::NodeId u : r.certificate.excluded_subtree_roots) out << u << ",";
  out << " repaired=";
  for (sim::NodeId u : r.certificate.repaired_roots) out << u << ",";
  if (tracer != nullptr) {
    out << " trace=" << std::hex << TraceDigest(*tracer) << std::dec;
  }
  return out.str();
}

ChaosSchedule MakeChaosSchedule(Testbed& testbed, const ChaosParams& params) {
  SENSJOIN_CHECK(params.window_s >= 0);
  SENSJOIN_CHECK(params.outage_min_s >= 0 &&
                 params.outage_max_s >= params.outage_min_s);
  const net::RoutingTree& tree = testbed.tree();
  const sim::Simulator& sim = testbed.simulator();
  const double now = sim.now();
  Rng rng(params.seed);

  ChaosSchedule schedule;
  sim::FaultPlan& plan = schedule.plan;
  plan.default_loss_rate = params.loss_rate;
  plan.default_corruption_rate = params.corruption_rate;
  plan.arq.enabled = params.arq_enabled;
  plan.arq.max_retransmissions = params.arq_max_retransmissions;
  // Delivery-semantics axes are direct copies — no schedule randomness —
  // so all-defaults schedules stay draw-for-draw identical to old ones.
  plan.default_duplication_rate = params.duplication_rate;
  plan.delay.max_jitter_s = params.max_jitter_s;
  plan.enable_replay = params.enable_replay;
  plan.seed = rng.NextUint64();  // drop-decision stream, forked from ours

  // Candidate victims: in-tree non-root nodes, and the tree edges the join
  // traffic actually crosses.
  std::vector<sim::NodeId> nodes;
  std::vector<sim::NodeId> edge_children;  // edge = (child, parent(child))
  for (sim::NodeId u = 0; u < tree.num_nodes(); ++u) {
    if (!tree.InTree(u) || u == tree.root() || !sim.alive(u)) continue;
    nodes.push_back(u);
    edge_children.push_back(u);
  }

  // One distinct draw covers pre-run and mid-run victims: the first
  // `num_prerun_crashes` die just after "now" (ApplyChaos's drain makes the
  // death effective before the first protocol phase), the rest fall inside
  // the mid-run window.
  schedule.prerun_horizon_s = params.prerun_horizon_s;
  const std::vector<sim::NodeId> victims = SampleDistinct(
      nodes, params.num_prerun_crashes + params.num_crashes, rng);
  for (size_t i = 0; i < victims.size(); ++i) {
    const sim::NodeId victim = victims[i];
    const bool prerun = i < static_cast<size_t>(params.num_prerun_crashes);
    sim::CrashEvent crash;
    crash.node = victim;
    crash.at = prerun ? now + 0.25 * params.prerun_horizon_s
                      : now + rng.UniformDouble(0, params.window_s);
    plan.crash_events.push_back(crash);
    schedule.crashes.push_back(crash);
    if (rng.NextBool(params.recover_fraction)) {
      sim::CrashEvent reboot;
      reboot.node = victim;
      reboot.at = crash.at + params.recover_delay_s;
      reboot.recover = true;
      plan.crash_events.push_back(reboot);
      schedule.crashes.push_back(reboot);
    } else {
      schedule.permanently_down.push_back(victim);
    }
  }

  if (!edge_children.empty()) {
    for (int i = 0; i < params.num_outages; ++i) {
      const sim::NodeId child = edge_children[rng.UniformInt(
          0, static_cast<int64_t>(edge_children.size()) - 1)];
      sim::LinkOutageWindow window;
      window.a = child;
      window.b = tree.parent(child);
      window.down_at = now + rng.UniformDouble(0, params.window_s);
      window.up_at = window.down_at +
                     rng.UniformDouble(params.outage_min_s, params.outage_max_s);
      plan.link_outages.push_back(window);
      schedule.outages.push_back(window);
    }
    for (int i = 0; i < params.num_loss_bursts; ++i) {
      const sim::NodeId child = edge_children[rng.UniformInt(
          0, static_cast<int64_t>(edge_children.size()) - 1)];
      sim::LinkLossOverride burst;
      burst.a = child;
      burst.b = tree.parent(child);
      burst.loss_rate = params.burst_loss_rate;
      plan.link_overrides.push_back(burst);
    }
  }
  std::sort(schedule.permanently_down.begin(),
            schedule.permanently_down.end());
  return schedule;
}

void ApplyChaos(Testbed& testbed, const ChaosSchedule& schedule) {
  testbed.InjectFaults(schedule.plan);
  if (schedule.prerun_horizon_s > 0) {
    // Fire the pre-run crash events now: the protocol drivers drain the
    // event queue only at phase boundaries, so without this drain a death
    // scheduled "immediately" would still take effect one phase late.
    sim::Simulator& sim = testbed.simulator();
    sim.events().RunUntil(sim.now() + schedule.prerun_horizon_s);
  }
}

join::JoinResult ComputeGroundTruth(Testbed& testbed,
                                    const query::AnalyzedQuery& q,
                                    uint64_t epoch) {
  const join::ExecutorContext ctx(testbed.data(), q, epoch);
  std::vector<data::Tuple> all;
  for (sim::NodeId u = 0; u < ctx.num_nodes(); ++u) {
    if (ctx.info(u).has_tuple) all.push_back(ctx.info(u).tuple);
  }
  return join::ComputeExactJoin(q, ctx.PerTableCandidates(all));
}

std::vector<std::string> CheckInvariants(const join::JoinResult& truth,
                                         const join::ExecutionReport& report,
                                         const obs::Tracer* tracer,
                                         const LivenessBounds* liveness) {
  std::vector<std::string> violations;
  const join::CompletenessCertificate& cert = report.certificate;
  const bool aggregate = truth.row_nodes.size() != truth.rows.size();

  // 2. Certificate consistency: a node cannot both contribute a result row
  //    and be certified missing.
  for (sim::NodeId u : report.result.contributing_nodes) {
    if (cert.IsExcluded(u)) {
      violations.push_back(
          Format("node %d contributes to the result but is certified "
                 "excluded",
                 u));
    }
  }

  if (!aggregate) {
    std::vector<std::vector<double>> actual = report.result.rows;
    std::sort(actual.begin(), actual.end(), RowLess);

    // 1. No fabrication, exactly-once rows: actual rows are a sub-multiset
    //    of the truth. An over-multiplicity row is a duplicated result row
    //    (a duplicate or replay leaked through the idempotent receive
    //    path); a row absent from the truth entirely is a phantom.
    std::vector<std::vector<double>> truth_rows = truth.rows;
    std::sort(truth_rows.begin(), truth_rows.end(), RowLess);
    {
      size_t ti = 0;
      size_t duplicated = 0;
      size_t phantom = 0;
      for (const auto& row : actual) {
        while (ti < truth_rows.size() && RowLess(truth_rows[ti], row)) ++ti;
        if (ti < truth_rows.size() && truth_rows[ti] == row) {
          ++ti;
        } else if (std::binary_search(truth_rows.begin(), truth_rows.end(),
                                      row, RowLess)) {
          ++duplicated;
        } else {
          ++phantom;
        }
      }
      if (duplicated > 0) {
        violations.push_back(Format(
            "%zu result rows are duplicated beyond their ground-truth "
            "multiplicity",
            duplicated));
      }
      if (phantom > 0) {
        violations.push_back(Format(
            "%zu result rows do not appear in the ground truth", phantom));
      }
    }

    // 3. Certificate exactness: without corrupt deliveries, the result is
    //    exactly the truth minus rows touching an excluded node.
    if (report.success && report.corrupted_deliveries == 0 &&
        report.cost.undetected_corrupted_packets == 0) {
      std::vector<std::vector<double>> expected;
      expected.reserve(truth.rows.size());
      for (size_t i = 0; i < truth.rows.size(); ++i) {
        bool keep = true;
        for (sim::NodeId u : truth.row_nodes[i]) {
          if (cert.IsExcluded(u)) {
            keep = false;
            break;
          }
        }
        if (keep) expected.push_back(truth.rows[i]);
      }
      std::sort(expected.begin(), expected.end(), RowLess);
      if (actual != expected) {
        violations.push_back(
            Format("certificate is not exact: result has %zu rows, truth "
                   "minus %zu excluded nodes has %zu",
                   actual.size(), cert.excluded_nodes.size(),
                   expected.size()));
      }
    }
  }

  // Internal certificate arithmetic.
  if (cert.reporting_nodes + static_cast<int>(cert.excluded_nodes.size()) !=
      cert.total_nodes) {
    violations.push_back(
        Format("certificate arithmetic broken: %d reporting + %zu excluded "
               "!= %d total",
               cert.reporting_nodes, cert.excluded_nodes.size(),
               cert.total_nodes));
  }
  if (cert.degraded != !cert.excluded_nodes.empty()) {
    violations.push_back("certificate degraded flag inconsistent with its "
                         "excluded set");
  }

  // 4. Trace cross-check: totals recomputed from the trace must match the
  //    cumulative CostReport (the tracer covers exactly the Execute window,
  //    so total_cost -- not the last-attempt cost -- is the exact target
  //    even when re-executions and tree rebuilds happened in between).
  if (tracer != nullptr && obs::kTracingCompiledIn) {
    const join::CostReport& total = report.total_cost;
    const obs::TraceSummary summary = obs::Summarize(*tracer);
    uint64_t repair_fragments = 0;
    uint64_t bytes = 0;
    uint64_t duplicate_fragments = 0;
    uint64_t replayed_fragments = 0;
    uint64_t stale_drops = 0;
    double energy = 0.0;
    double max_phase_span_s = 0.0;
    for (const obs::PhaseSummary& phase : summary.phases) {
      repair_fragments += phase.tx_fragments_by_kind[static_cast<size_t>(
          sim::MessageKind::kRepair)];
      bytes += phase.tx_frame_bytes;
      duplicate_fragments += phase.duplicate_fragments;
      replayed_fragments += phase.replayed_fragments;
      stale_drops += phase.stale_drops;
      energy += phase.energy_mj;
      max_phase_span_s = std::max(max_phase_span_s, phase.max_span_s);
    }
    if (repair_fragments != total.repair_packets) {
      violations.push_back(
          Format("trace shows %llu repair fragments, cost report %llu",
                 static_cast<unsigned long long>(repair_fragments),
                 static_cast<unsigned long long>(total.repair_packets)));
    }
    if (bytes != total.join_bytes) {
      violations.push_back(
          Format("trace shows %llu tx bytes, cost report %llu",
                 static_cast<unsigned long long>(bytes),
                 static_cast<unsigned long long>(total.join_bytes)));
    }
    if (duplicate_fragments != total.duplicate_packets) {
      violations.push_back(
          Format("trace shows %llu duplicated fragments, cost report %llu",
                 static_cast<unsigned long long>(duplicate_fragments),
                 static_cast<unsigned long long>(total.duplicate_packets)));
    }
    if (replayed_fragments != total.replayed_packets) {
      violations.push_back(
          Format("trace shows %llu replayed fragments, cost report %llu",
                 static_cast<unsigned long long>(replayed_fragments),
                 static_cast<unsigned long long>(total.replayed_packets)));
    }
    // Stale drops are per-delivery validator verdicts, not fragments; the
    // trace count must match the executor's own tally exactly.
    if (stale_drops != report.stale_messages_dropped) {
      violations.push_back(
          Format("trace shows %llu stale drops, execution report %zu",
                 static_cast<unsigned long long>(stale_drops),
                 report.stale_messages_dropped));
    }
    const double tolerance = 1e-6 * std::max(1.0, total.energy_mj);
    if (std::abs(energy - total.energy_mj) > tolerance) {
      violations.push_back(Format("trace energy %.9f mJ != cost report %.9f",
                                  energy, total.energy_mj));
    }
    // 5. No-stall liveness, phase bound (needs the trace's span records).
    if (liveness != nullptr && liveness->max_phase_span_s > 0 &&
        max_phase_span_s > liveness->max_phase_span_s) {
      violations.push_back(
          Format("no-stall: a phase spanned %.6f s of sim time, bound %.6f",
                 max_phase_span_s, liveness->max_phase_span_s));
    }
  }

  // 5. No-stall liveness, total bound (trace-independent).
  if (liveness != nullptr && liveness->max_total_s > 0 &&
      report.response_time_s > liveness->max_total_s) {
    violations.push_back(
        Format("no-stall: execution spanned %.6f s of sim time, bound %.6f",
               report.response_time_s, liveness->max_total_s));
  }
  return violations;
}

std::string ChaosScheduleToJson(const ChaosParams& params,
                                const ChaosSchedule& schedule) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"schema\":\"sensjoin-chaos-repro-v1\",\"params\":{"
     << "\"seed\":" << params.seed << ",\"num_crashes\":" << params.num_crashes
     << ",\"recover_fraction\":" << params.recover_fraction
     << ",\"recover_delay_s\":" << params.recover_delay_s
     << ",\"num_prerun_crashes\":" << params.num_prerun_crashes
     << ",\"prerun_horizon_s\":" << params.prerun_horizon_s
     << ",\"num_outages\":" << params.num_outages
     << ",\"outage_min_s\":" << params.outage_min_s
     << ",\"outage_max_s\":" << params.outage_max_s
     << ",\"window_s\":" << params.window_s
     << ",\"loss_rate\":" << params.loss_rate
     << ",\"num_loss_bursts\":" << params.num_loss_bursts
     << ",\"burst_loss_rate\":" << params.burst_loss_rate
     << ",\"corruption_rate\":" << params.corruption_rate
     << ",\"arq_enabled\":" << (params.arq_enabled ? "true" : "false")
     << ",\"arq_max_retransmissions\":" << params.arq_max_retransmissions
     << ",\"duplication_rate\":" << params.duplication_rate
     << ",\"max_jitter_s\":" << params.max_jitter_s
     << ",\"enable_replay\":" << (params.enable_replay ? "true" : "false")
     << "},\"drawn\":{\"plan_seed\":" << schedule.plan.seed << ",\"crashes\":[";
  for (size_t i = 0; i < schedule.crashes.size(); ++i) {
    const sim::CrashEvent& c = schedule.crashes[i];
    os << (i ? "," : "") << "{\"node\":" << c.node << ",\"at\":" << c.at
       << ",\"recover\":" << (c.recover ? "true" : "false") << "}";
  }
  os << "],\"outages\":[";
  for (size_t i = 0; i < schedule.outages.size(); ++i) {
    const sim::LinkOutageWindow& w = schedule.outages[i];
    os << (i ? "," : "") << "{\"a\":" << w.a << ",\"b\":" << w.b
       << ",\"down_at\":" << w.down_at << ",\"up_at\":" << w.up_at << "}";
  }
  os << "],\"permanently_down\":[";
  for (size_t i = 0; i < schedule.permanently_down.size(); ++i) {
    os << (i ? "," : "") << schedule.permanently_down[i];
  }
  os << "]}}";
  return os.str();
}

ChaosParams MinimizeChaos(const ChaosParams& params,
                          const std::function<bool(const ChaosParams&)>&
                              reproduces) {
  ChaosParams best = params;
  // Zero one axis at a time, most-recently-added axes first; keep any
  // zeroing under which the violation still reproduces. Zeroing changes
  // the schedule's draw sequence, which is fine: `reproduces` re-derives
  // the schedule from scratch each probe.
  const auto try_zero = [&](void (*mutate)(ChaosParams&)) {
    ChaosParams candidate = best;
    mutate(candidate);
    if (reproduces(candidate)) best = candidate;
  };
  try_zero([](ChaosParams& p) { p.enable_replay = false; });
  try_zero([](ChaosParams& p) { p.max_jitter_s = 0.0; });
  try_zero([](ChaosParams& p) { p.duplication_rate = 0.0; });
  try_zero([](ChaosParams& p) { p.corruption_rate = 0.0; });
  try_zero([](ChaosParams& p) { p.num_loss_bursts = 0; });
  try_zero([](ChaosParams& p) { p.loss_rate = 0.0; });
  try_zero([](ChaosParams& p) { p.num_outages = 0; });
  try_zero([](ChaosParams& p) { p.num_crashes = 0; });
  try_zero([](ChaosParams& p) { p.num_prerun_crashes = 0; });
  return best;
}

}  // namespace sensjoin::testbed
