#include "sensjoin/testbed/parallel.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "sensjoin/testbed/testbed.h"

namespace sensjoin::testbed {
namespace {

/// splitmix64 finalizer (Vigna). Bijective on 64-bit values, which
/// guarantees distinct trial inputs map to distinct seeds.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

int EnvThreads() {
  const char* env = std::getenv("SENSJOIN_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || v <= 0 || v > 4096) return 0;
  return static_cast<int>(v);
}

}  // namespace

uint64_t DeriveTrialSeed(uint64_t sweep_seed, uint64_t trial_index) {
  return SplitMix64(sweep_seed + (trial_index + 1) * 0x9E3779B97F4A7C15ULL);
}

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const int env = EnvThreads();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int ParseThreadsFlag(int* argc, char** argv) {
  int threads = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < *argc) {
      threads = std::atoi(argv[i + 1]);
      ++i;  // skip the value
      continue;
    }
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;
  return threads > 0 ? threads : 0;
}

sim::SimConfig ParseEngineFlag(int* argc, char** argv) {
  const char* value = nullptr;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--engine") == 0 && i + 1 < *argc) {
      value = argv[i + 1];
      ++i;  // skip the value
      continue;
    }
    if (std::strncmp(arg, "--engine=", 9) == 0) {
      value = arg + 9;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;
  if (value == nullptr) return DefaultSimConfig();

  sim::SimConfig config = DefaultSimConfig();
  std::string kind(value);
  if (const size_t colon = kind.find(':'); colon != std::string::npos) {
    config.engine.workers = std::atoi(kind.c_str() + colon + 1);
    kind.resize(colon);
  }
  if (kind == "seq" || kind == "sequential") {
    config.engine.kind = sim::EngineKind::kSequential;
  } else if (kind == "windowed") {
    config.engine.kind = sim::EngineKind::kWindowed;
  } else {
    std::fprintf(stderr,
                 "unknown --engine value '%s' (want seq|windowed[:N])\n",
                 value);
    std::exit(2);
  }
  SetDefaultSimConfig(config);
  return config;
}

ParallelRunner::ParallelRunner(int threads)
    : threads_(ResolveThreadCount(threads)) {}

Status ParallelRunner::RunTrials(
    int num_trials, uint64_t sweep_seed,
    const std::function<Status(const TrialContext&)>& fn) const {
  if (num_trials <= 0) return Status::Ok();

  auto run_one = [&](int trial) -> Status {
    TrialContext ctx;
    ctx.trial = trial;
    ctx.seed = DeriveTrialSeed(sweep_seed, static_cast<uint64_t>(trial));
    try {
      return fn(ctx);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("trial ") + std::to_string(trial) +
                              " threw: " + e.what());
    } catch (...) {
      return Status::Internal(std::string("trial ") + std::to_string(trial) +
                              " threw a non-standard exception");
    }
  };

  const int workers = std::min(threads_, num_trials);
  if (workers <= 1) {
    // Inline execution: identical control flow to the pre-pool loops.
    for (int trial = 0; trial < num_trials; ++trial) {
      Status s = run_one(trial);
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }

  std::vector<Status> statuses(static_cast<size_t>(num_trials));
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};

  auto worker = [&]() {
    while (!failed.load(std::memory_order_acquire)) {
      const int trial = next.fetch_add(1, std::memory_order_relaxed);
      if (trial >= num_trials) return;
      Status s = run_one(trial);
      if (!s.ok()) {
        statuses[static_cast<size_t>(trial)] = std::move(s);
        // Early shutdown: unclaimed trials are abandoned. Trials already
        // in flight run to completion (their slots stay valid).
        failed.store(true, std::memory_order_release);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  // Lowest trial index wins, so the reported error does not depend on
  // scheduling order.
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace sensjoin::testbed
