#ifndef SENSJOIN_TESTBED_TESTBED_H_
#define SENSJOIN_TESTBED_TESTBED_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "sensjoin/common/rng.h"
#include "sensjoin/common/statusor.h"
#include "sensjoin/data/network_data.h"
#include "sensjoin/join/external_join.h"
#include "sensjoin/join/quantizer.h"
#include "sensjoin/join/sens_join.h"
#include "sensjoin/net/flooding.h"
#include "sensjoin/net/routing_tree.h"
#include "sensjoin/net/topology.h"
#include "sensjoin/query/query.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::testbed {

/// Process-wide default sim::SimConfig picked up by newly-constructed
/// TestbedParams. Harness mains set it once from their --engine flag
/// (ParseEngineFlag in testbed/parallel.h) before building testbeds, so
/// every helper that constructs a TestbedParams inherits the selection.
const sim::SimConfig& DefaultSimConfig();
void SetDefaultSimConfig(const sim::SimConfig& config);

/// Everything needed to stand up a simulated deployment matching the
/// paper's general setting (Sec. VI): random connected placement, CTP-style
/// routing tree, spatially correlated sensor fields, default quantization.
struct TestbedParams {
  net::PlacementParams placement;  ///< 1500 nodes, 1050x1050 m, 50 m range
  sim::PacketizationParams packets;  ///< 48-byte max packets
  sim::EnergyModel energy;
  uint64_t seed = 42;
  /// Install the default sensor fields (temperature, humidity, pressure,
  /// light). Set false to add custom fields via data().AddField.
  bool default_fields = true;
  /// Engine selection + memory-layout thresholds for the trial's simulator.
  sim::SimConfig sim = DefaultSimConfig();
};

/// A ready-to-run simulated deployment. Owns the simulator, the environment
/// data and the routing tree; hands out executors bound to them.
class Testbed {
 public:
  /// Builds the deployment: places nodes (retrying until connected), runs a
  /// beaconing round to establish the routing tree, creates the fields.
  static StatusOr<std::unique_ptr<Testbed>> Create(const TestbedParams& params);

  sim::Simulator& simulator() { return *sim_; }
  const sim::Simulator& simulator() const { return *sim_; }
  data::NetworkData& data() { return *data_; }
  const net::RoutingTree& tree() const { return tree_; }
  const net::Placement& placement() const { return placement_; }
  const TestbedParams& params() const { return params_; }
  Rng& rng() { return rng_; }

  /// The environment's quantization (Sec. V-B defaults: 0.1 degC for
  /// temperature, 1 m for coordinates).
  const join::QuantizationConfig& quantization() const {
    return quantization_;
  }
  join::QuantizationConfig& mutable_quantization() { return quantization_; }

  /// Parses and analyzes a query against this deployment's schema.
  StatusOr<query::AnalyzedQuery> ParseQuery(const std::string& sql) const;

  /// Floods `q` from the base station (accounted under kQuery) as the real
  /// system would before executing, through the deployment's persistent
  /// Flooder. Each call starts a new dissemination epoch (the per-node
  /// re-broadcast suppression is reset first), so a query re-flood after a
  /// re-execution reaches the whole field again. Returns nodes reached.
  int DisseminateQuery(const query::AnalyzedQuery& q);

  /// Executors bound to this deployment. The returned object references the
  /// testbed; keep the testbed alive.
  join::SensJoinExecutor MakeSensJoin(
      join::ProtocolConfig config = join::ProtocolConfig{});
  join::ExternalJoinExecutor MakeExternalJoin(
      join::ProtocolConfig config = join::ProtocolConfig{});

  /// Re-runs beaconing and replaces the stored tree (after injected link
  /// failures).
  void RebuildTree();

  /// Installs a fault scenario (loss rates, ARQ policy, scheduled node
  /// crashes/recoveries) on the deployment's simulator.
  void InjectFaults(const sim::FaultPlan& plan);

  /// Attaches an observability tracer to the deployment's simulator
  /// (nullptr detaches). The tracer is not owned and must outlive the
  /// attachment; it must be private to this testbed's trial — under the
  /// ParallelRunner give every trial its own tracer, like its testbed.
  void AttachTracer(obs::Tracer* tracer) { sim_->set_tracer(tracer); }

 private:
  Testbed(TestbedParams params, net::Placement placement,
          std::unique_ptr<sim::Simulator> sim,
          std::unique_ptr<data::NetworkData> data, net::RoutingTree tree,
          Rng rng);

  TestbedParams params_;
  net::Placement placement_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<data::NetworkData> data_;
  net::RoutingTree tree_;
  join::QuantizationConfig quantization_;
  /// Node-resident flood-suppression state (see net::Flooder); engaged in
  /// the constructor body once the simulator is in place.
  std::optional<net::Flooder> flooder_;
  Rng rng_;
};

}  // namespace sensjoin::testbed

#endif  // SENSJOIN_TESTBED_TESTBED_H_
