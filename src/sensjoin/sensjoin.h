#ifndef SENSJOIN_SENSJOIN_H_
#define SENSJOIN_SENSJOIN_H_

/// \mainpage SENS-Join
///
/// An open-source reproduction of "Towards Efficient Processing of
/// General-Purpose Joins in Sensor Networks" (Stern, Buchmann, Böhm;
/// ICDE 2009): an energy-efficient general-purpose join operator for
/// wireless sensor networks, evaluated on a from-scratch discrete-event WSN
/// simulator.
///
/// Typical use goes through sensjoin::testbed::Testbed:
///
/// \code
///   sensjoin::testbed::TestbedParams params;
///   auto testbed = sensjoin::testbed::Testbed::Create(params).value();
///   auto query = testbed->ParseQuery(
///       "SELECT A.hum, B.hum FROM sensors A, sensors B "
///       "WHERE |A.temp - B.temp| < 0.3 "
///       "AND distance(A.x, A.y, B.x, B.y) > 100 ONCE").value();
///   auto executor = testbed->MakeSensJoin();
///   auto report = executor.Execute(query, /*epoch=*/0).value();
/// \endcode

#include "sensjoin/common/status.h"           // IWYU pragma: export
#include "sensjoin/common/statusor.h"         // IWYU pragma: export
#include "sensjoin/data/network_data.h"       // IWYU pragma: export
#include "sensjoin/data/relation.h"           // IWYU pragma: export
#include "sensjoin/join/continuous.h"         // IWYU pragma: export
#include "sensjoin/join/execution_report.h"   // IWYU pragma: export
#include "sensjoin/join/external_join.h"      // IWYU pragma: export
#include "sensjoin/join/planner.h"            // IWYU pragma: export
#include "sensjoin/join/protocol.h"           // IWYU pragma: export
#include "sensjoin/join/result.h"             // IWYU pragma: export
#include "sensjoin/join/sens_join.h"          // IWYU pragma: export
#include "sensjoin/net/routing_tree.h"        // IWYU pragma: export
#include "sensjoin/net/topology.h"            // IWYU pragma: export
#include "sensjoin/obs/export.h"              // IWYU pragma: export
#include "sensjoin/obs/metrics.h"             // IWYU pragma: export
#include "sensjoin/obs/trace.h"               // IWYU pragma: export
#include "sensjoin/query/query.h"             // IWYU pragma: export
#include "sensjoin/query/signature.h"         // IWYU pragma: export
#include "sensjoin/service/join_service.h"    // IWYU pragma: export
#include "sensjoin/service/query_registry.h"  // IWYU pragma: export
#include "sensjoin/sim/fault_model.h"         // IWYU pragma: export
#include "sensjoin/sim/simulator.h"           // IWYU pragma: export
#include "sensjoin/testbed/parallel.h"        // IWYU pragma: export
#include "sensjoin/testbed/report.h"          // IWYU pragma: export
#include "sensjoin/testbed/testbed.h"         // IWYU pragma: export

#endif  // SENSJOIN_SENSJOIN_H_
