#include "sensjoin/service/join_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "sensjoin/common/logging.h"
#include "sensjoin/join/executor_context.h"
#include "sensjoin/join/result.h"
#include "sensjoin/obs/trace.h"

namespace sensjoin::service {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Folds one group's network cost into the epoch rollup.
void AccumulateCost(join::CostReport* into, const join::CostReport& from) {
  into->phases.collection_packets += from.phases.collection_packets;
  into->phases.filter_packets += from.phases.filter_packets;
  into->phases.final_packets += from.phases.final_packets;
  into->join_packets += from.join_packets;
  into->join_bytes += from.join_bytes;
  into->energy_mj += from.energy_mj;
  into->retransmitted_packets += from.retransmitted_packets;
  into->ack_packets += from.ack_packets;
  into->retransmit_energy_mj += from.retransmit_energy_mj;
  into->ack_energy_mj += from.ack_energy_mj;
  into->corrupted_packets += from.corrupted_packets;
  into->undetected_corrupted_packets += from.undetected_corrupted_packets;
  into->crc_bytes_sent += from.crc_bytes_sent;
  into->integrity_retransmit_energy_mj += from.integrity_retransmit_energy_mj;
  into->crc_energy_mj += from.crc_energy_mj;
  into->repair_packets += from.repair_packets;
  into->repair_bytes_sent += from.repair_bytes_sent;
  into->repair_energy_mj += from.repair_energy_mj;
  into->duplicate_packets += from.duplicate_packets;
  into->replayed_packets += from.replayed_packets;
  into->duplicate_energy_mj += from.duplicate_energy_mj;
  into->replay_energy_mj += from.replay_energy_mj;
  if (into->per_node_packets.size() < from.per_node_packets.size()) {
    into->per_node_packets.resize(from.per_node_packets.size(), 0);
  }
  for (size_t i = 0; i < from.per_node_packets.size(); ++i) {
    into->per_node_packets[i] += from.per_node_packets[i];
  }
}

}  // namespace

JoinService::JoinService(sim::Simulator& sim, const data::NetworkData& data,
                         net::RoutingTree tree,
                         join::QuantizationConfig quantization,
                         ServiceConfig config)
    : sim_(sim),
      data_(data),
      tree_(std::move(tree)),
      quantization_(std::move(quantization)),
      config_(config),
      registry_(data.schema(), config.max_queries) {}

StatusOr<QueryId> JoinService::Register(const std::string& sql) {
  return Register(sql, config_.protocol);
}

StatusOr<QueryId> JoinService::Register(const std::string& sql,
                                        join::ProtocolConfig protocol) {
  return registry_.Register(sql, protocol, next_epoch_);
}

Status JoinService::Cancel(QueryId id) {
  return registry_.Cancel(id, next_epoch_);
  // Group membership is re-derived at the next RunEpoch; a group whose
  // last member left is dismantled there.
}

std::string JoinService::GroupKeyOf(const QueryRecord& record) const {
  const join::ProtocolConfig& p = record.protocol;
  std::string key = record.signature;
  key += "|tc=";
  key += p.use_treecut ? "1" : "0";
  key += ",dmax=";
  key += std::to_string(p.dmax_bytes);
  key += ",sff=";
  key += p.use_selective_forwarding ? "1" : "0";
  key += ",fmem=";
  key += std::to_string(p.filter_memory_bytes);
  key += ",rep=";
  key += std::to_string(static_cast<int>(p.representation));
  if (!config_.share_phases) {
    // Dedicated baseline: every query is its own group on the same
    // deployment, so shared-vs-dedicated cost attribution is apples to
    // apples.
    key += "|q=";
    key += std::to_string(record.id);
  }
  return key;
}

void JoinService::RepairTopology() {
  tree_ = net::RoutingTree::Build(sim_, tree_.root());
  for (auto& [key, group] : groups_) {
    group.engine->Reset();
    for (auto& [id, filter] : group.filters) filter.Reset();
  }
}

StatusOr<ServiceEpochReport> JoinService::RunEpoch() {
  const uint64_t epoch = next_epoch_;
  const std::vector<QueryId> active = registry_.ActiveIds();
  if (active.empty()) {
    return Status::FailedPrecondition("no active queries to execute");
  }
  obs::ScopedPhase span(sim_.tracer(), sim_.events(),
                        obs::Phase::kServiceEpoch);
  size_t rebuilds = 0;
  for (int attempt = 0; attempt <= config_.protocol.max_retries; ++attempt) {
    ServiceEpochReport report;
    report.epoch = epoch;
    report.active_queries = active.size();
    report.tree_rebuilds = rebuilds;
    SENSJOIN_ASSIGN_OR_RETURN(const bool ok,
                              RunEpochAttempt(epoch, active, &report));
    if (ok) {
      ++next_epoch_;
      return report;
    }
    // Topology changed under the epoch: repair, reset every group's
    // distributed state (it indexes the old tree) and re-run the whole
    // epoch with bootstrap collections. Partial results of the aborted
    // attempt are discarded, never delivered.
    RepairTopology();
    ++rebuilds;
  }
  return Status::ResourceExhausted(
      "continuous service epoch failed after retries");
}

StatusOr<bool> JoinService::RunEpochAttempt(uint64_t epoch,
                                           const std::vector<QueryId>& active,
                                           ServiceEpochReport* report) {
  // Re-derive the grouping from the active set (admissions and
  // cancellations since the last epoch take effect here). `active` is
  // ascending, so each group's first member is its representative (lowest
  // QueryId).
  std::map<std::string, std::vector<QueryRecord*>> members_by_key;
  for (QueryId id : active) {
    QueryRecord* record = registry_.GetMutable(id);
    SENSJOIN_CHECK(record != nullptr);
    record->state = QueryState::kRunning;
    members_by_key[GroupKeyOf(*record)].push_back(record);
  }
  for (auto it = groups_.begin(); it != groups_.end();) {
    it = members_by_key.count(it->first) != 0 ? std::next(it)
                                              : groups_.erase(it);
  }
  report->groups = members_by_key.size();
  report->sharing_factor = static_cast<double>(active.size()) /
                           static_cast<double>(members_by_key.size());

  std::vector<GroupEpochReport> group_reports;
  std::map<QueryId, join::ExecutionReport> staged;

  for (auto& [key, members] : members_by_key) {
    Group& group =
        groups_
            .try_emplace(key, std::make_unique<join::DeltaGroupExecutor>(
                                  sim_, data_, quantization_,
                                  members.front()->protocol))
            .first->second;
    // Station-side caches of departed members die with their membership.
    for (auto it = group.filters.begin(); it != group.filters.end();) {
      const QueryId id = it->first;
      const bool still_member =
          std::any_of(members.begin(), members.end(),
                      [id](const QueryRecord* m) { return m->id == id; });
      it = still_member ? std::next(it) : group.filters.erase(it);
    }

    const join::StatsSnapshot before(sim_);
    const QueryRecord* representative = members.front();

    join::DeltaGroupExecutor::CollectOutcome collected;
    SENSJOIN_RETURN_IF_ERROR(group.engine->Collect(
        tree_, representative->query, epoch, &collected));
    if (collected.failed) return false;

    // Base-station computation: per-member incremental filters, then the
    // group filter as their union (conservative for every member).
    const auto cpu_start = std::chrono::steady_clock::now();
    const join::PointSet collected_set = group.engine->CollectedSet();
    join::PointSet union_filter = group.engine->codec()->EmptySet();
    std::vector<uint64_t> scratch;
    for (QueryRecord* m : members) {
      join::IncrementalJoinFilter& filter = group.filters[m->id];
      const size_t reuses = filter.reuses();
      const size_t increments = filter.incremental_updates();
      const size_t recomputes = filter.full_recomputes();
      const join::FilterJoinResult& result =
          filter.Update(m->query, *group.engine->codec(), collected_set,
                        collected.added, collected.removed);
      report->filter_reuses += filter.reuses() - reuses;
      report->filter_incremental_updates +=
          filter.incremental_updates() - increments;
      report->filter_full_recomputes += filter.full_recomputes() - recomputes;
      union_filter.UnionInPlace(result.filter, &scratch);
    }
    report->station_cpu_s += SecondsSince(cpu_start);

    join::DeltaGroupExecutor::FinalOutcome final_outcome;
    SENSJOIN_RETURN_IF_ERROR(
        group.engine->DisseminateAndFinalize(union_filter, &final_outcome));
    if (final_outcome.failed) return false;
    const join::CostReport group_cost = before.DeltaTo(sim_);

    // Per-member exact joins over the group's candidate pool: each member
    // applies its own predicates and projection, discarding the other
    // members' false positives.
    const auto join_start = std::chrono::steady_clock::now();
    for (QueryRecord* m : members) {
      join::ExecutionReport er;
      er.success = true;
      er.shared_group_size = members.size();
      er.cost = group_cost;
      er.total_cost = group_cost;
      er.collected_points = collected_set.size();
      er.filter_points = group.filters[m->id].last().filter.size();
      er.delta_changed_nodes = collected.changed_nodes;
      er.delta_resyncs = collected.resyncs + final_outcome.resyncs;
      er.treecut_exited_nodes = collected.treecut_exited;
      er.final_tuples_shipped = final_outcome.final_tuples_shipped;
      er.candidate_tuples = final_outcome.candidates.size();
      join::ExecutorContext ctx(data_, m->query, epoch);
      er.result = join::ComputeExactJoin(
          m->query, ctx.PerTableCandidates(final_outcome.candidates));
      report->matched_rows += er.result.rows.size();
      staged.emplace(m->id, std::move(er));
    }
    report->station_cpu_s += SecondsSince(join_start);

    if (collected.bootstrap) ++report->bootstraps;
    report->delta_resyncs += collected.resyncs + final_outcome.resyncs;
    report->changed_nodes += collected.changed_nodes;
    AccumulateCost(&report->cost, group_cost);

    GroupEpochReport gr;
    gr.group_key = key;
    gr.members = members.size();
    gr.bootstrap = collected.bootstrap;
    gr.cost = group_cost;
    group_reports.push_back(std::move(gr));
  }

  // The whole epoch succeeded: deliver the staged per-query reports.
  for (auto& [id, er] : staged) {
    registry_.GetMutable(id)->reports.push_back(std::move(er));
  }
  last_group_reports_ = std::move(group_reports);
  return true;
}

}  // namespace sensjoin::service
