#ifndef SENSJOIN_SERVICE_QUERY_REGISTRY_H_
#define SENSJOIN_SERVICE_QUERY_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sensjoin/common/statusor.h"
#include "sensjoin/data/schema.h"
#include "sensjoin/join/execution_report.h"
#include "sensjoin/join/protocol.h"
#include "sensjoin/query/query.h"
#include "sensjoin/query/signature.h"

namespace sensjoin::service {

/// Handle of a registered continuous query, unique for the lifetime of the
/// registry (never reused, monotonically assigned from 1).
using QueryId = uint64_t;

/// Lifecycle of a registered query. Admitted queries join the next epoch's
/// execution (their first epoch is a base-station-side bootstrap of the
/// filter; the network-side collection is shared with their group and needs
/// no extra bootstrap traffic unless the group is new). Cancelled queries
/// keep their report stream but leave the execution set immediately.
enum class QueryState { kAdmitted, kRunning, kCancelled };

const char* QueryStateName(QueryState state);

/// One registered query: the analyzed form the executors run, its sharing
/// signature, per-query protocol knobs, and the per-epoch report stream.
struct QueryRecord {
  QueryId id = 0;
  std::string sql;
  query::AnalyzedQuery query;
  /// Collection-sharing signature (query/signature.h); queries with equal
  /// signatures and equal protocol knobs share phases.
  std::string signature;
  /// Per-query protocol configuration — continuous queries are not locked
  /// out of any snapshot-mode knob (Treecut included).
  join::ProtocolConfig protocol;
  QueryState state = QueryState::kAdmitted;
  /// Service epoch at which the query was admitted / cancelled.
  uint64_t admitted_epoch = 0;
  uint64_t cancelled_epoch = 0;
  /// Per-epoch execution reports, in epoch order (the query's result
  /// stream). `cost` entries are the *shared group* cost, with
  /// shared_group_size recording how many queries split it.
  std::vector<join::ExecutionReport> reports;

  QueryRecord(QueryId id_in, std::string sql_in, query::AnalyzedQuery q,
              std::string signature_in, join::ProtocolConfig protocol_in,
              uint64_t admitted_epoch_in)
      : id(id_in),
        sql(std::move(sql_in)),
        query(std::move(q)),
        signature(std::move(signature_in)),
        protocol(protocol_in),
        admitted_epoch(admitted_epoch_in) {}
};

/// Admission layer of the continuous join service: owns the registered
/// queries and their lifecycle. Hardened against arbitrary input — every
/// failure path is a Status (malformed SQL, non-join queries, capacity,
/// unknown ids); nothing aborts the process.
class QueryRegistry {
 public:
  /// `schema` is the deployment's attribute schema queries are analyzed
  /// against (copied). `max_queries` bounds concurrently active queries.
  explicit QueryRegistry(data::Schema schema, size_t max_queries = 256);

  /// Parses, analyzes and admits `sql`. Rejects malformed SQL, queries with
  /// fewer than two FROM entries (nothing to join) and admission past the
  /// capacity limit. `epoch` stamps the record's admission time.
  StatusOr<QueryId> Register(const std::string& sql,
                             join::ProtocolConfig protocol, uint64_t epoch);

  /// Cancels an active query (keeps its record and report stream).
  Status Cancel(QueryId id, uint64_t epoch);

  /// Record lookup (registered ids only; cancelled queries remain
  /// retrievable).
  StatusOr<const QueryRecord*> Get(QueryId id) const;
  QueryRecord* GetMutable(QueryId id);

  /// Ids of non-cancelled queries, ascending.
  std::vector<QueryId> ActiveIds() const;
  size_t active_count() const { return active_count_; }
  size_t total_registered() const { return records_.size(); }

 private:
  data::Schema schema_;
  size_t max_queries_;
  QueryId next_id_ = 1;
  size_t active_count_ = 0;
  /// Node-based map: QueryRecord addresses stay stable across admissions
  /// (AnalyzedQuery is move-only and executors hold references into it).
  std::map<QueryId, QueryRecord> records_;
};

}  // namespace sensjoin::service

#endif  // SENSJOIN_SERVICE_QUERY_REGISTRY_H_
