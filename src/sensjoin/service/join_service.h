#ifndef SENSJOIN_SERVICE_JOIN_SERVICE_H_
#define SENSJOIN_SERVICE_JOIN_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sensjoin/common/statusor.h"
#include "sensjoin/data/network_data.h"
#include "sensjoin/join/continuous.h"
#include "sensjoin/join/join_filter.h"
#include "sensjoin/join/protocol.h"
#include "sensjoin/join/quantizer.h"
#include "sensjoin/join/stats.h"
#include "sensjoin/net/routing_tree.h"
#include "sensjoin/query/query.h"
#include "sensjoin/service/query_registry.h"
#include "sensjoin/sim/simulator.h"

namespace sensjoin::service {

/// Service-level configuration.
struct ServiceConfig {
  /// Default protocol knobs for queries registered without their own.
  join::ProtocolConfig protocol;

  /// Multi-query optimization: group queries whose sharing signature and
  /// protocol knobs agree, so one collection + one dissemination + one
  /// final phase serves the whole group. false = every query runs its own
  /// phases (the dedicated baseline on the same deployment, for cost
  /// attribution).
  bool share_phases = true;

  /// Admission cap (QueryRegistry).
  size_t max_queries = 256;
};

/// Per-group slice of one epoch's execution (cost attribution: shared vs
/// dedicated).
struct GroupEpochReport {
  std::string group_key;
  size_t members = 0;  ///< active queries served by this group's phases
  bool bootstrap = false;  ///< group ran a full collection this epoch
  join::CostReport cost;   ///< network cost of the group's shared phases
};

/// One epoch of the whole service.
struct ServiceEpochReport {
  uint64_t epoch = 0;
  size_t active_queries = 0;
  size_t groups = 0;
  /// Queries served per network phase set: active_queries / groups (1.0 =
  /// no sharing). The headline multi-query amortization metric.
  double sharing_factor = 1.0;

  /// Network cost of the epoch over all groups.
  join::CostReport cost;
  /// Host CPU spent in base-station computation this epoch (filter
  /// maintenance + union + exact joins), excluding the simulated network.
  double station_cpu_s = 0.0;

  size_t bootstraps = 0;     ///< groups that ran a full collection
  size_t tree_rebuilds = 0;  ///< topology repairs forced by failures
  size_t delta_resyncs = 0;  ///< lost/corrupted hops re-pulled (all groups)
  size_t changed_nodes = 0;  ///< nodes whose key moved (all groups)

  /// Filter-maintenance paths taken across member queries this epoch.
  size_t filter_reuses = 0;
  size_t filter_incremental_updates = 0;
  size_t filter_full_recomputes = 0;

  size_t matched_rows = 0;  ///< exact result rows over all member queries
};

/// Continuous multi-query join service at the base station: admission via
/// QueryRegistry, an epoch scheduler driving delta-based continuous
/// execution (DeltaGroupExecutor), incremental per-query join-filter
/// maintenance, and shared-phase execution for queries with equal sharing
/// signatures.
///
/// Sharing model: group members agree on relations, selections and join
/// attributes (query/signature.h), so every node reports the identical
/// quantized key stream for all of them — one in-network collection serves
/// the group. Members differ freely in join predicates and SELECT lists:
/// each keeps its own incrementally-maintained join filter; the group
/// disseminates the UNION of the member filters (conservative, so no
/// member loses a true result row) and each member's exact join runs over
/// the group's candidate pool with its own predicates and projection.
/// Wire sizes of complete tuples use the group representative's projection
/// (lowest active QueryId) — a documented approximation; the union of the
/// members' shipped attributes would be the hardware-faithful refinement.
///
/// Fault model: a permanently failed hop in any group's phase aborts the
/// epoch attempt, rebuilds the routing tree and resets EVERY group (their
/// distributed state indexes the old tree); the epoch then re-runs with
/// bootstrap collections. Transient losses are re-pulled in place and
/// counted as delta_resyncs. A stale filter is therefore impossible: every
/// filter is computed from a multiset that either applied the epoch's full
/// delta or was rebuilt from scratch.
class JoinService {
 public:
  /// References must outlive the service. `tree` is the initial routing
  /// tree (the service rebuilds its own copy after failures).
  JoinService(sim::Simulator& sim, const data::NetworkData& data,
              net::RoutingTree tree, join::QuantizationConfig quantization,
              ServiceConfig config = ServiceConfig{});

  /// Admits a continuous query with the service's default protocol knobs
  /// (or per-query overrides). It joins execution at the next RunEpoch.
  StatusOr<QueryId> Register(const std::string& sql);
  StatusOr<QueryId> Register(const std::string& sql,
                             join::ProtocolConfig protocol);

  /// Cancels an active query; its group keeps running if other members
  /// remain, and is dismantled otherwise.
  Status Cancel(QueryId id);

  /// Executes one epoch for every active query (epochs self-number from 0).
  /// Per-query ExecutionReports are appended to the registry records;
  /// returns the service-level rollup. Fails only when retries are
  /// exhausted or no query is active.
  StatusOr<ServiceEpochReport> RunEpoch();

  /// Per-group attribution of the last successful epoch.
  const std::vector<GroupEpochReport>& last_group_reports() const {
    return last_group_reports_;
  }

  const QueryRegistry& registry() const { return registry_; }
  QueryRegistry& registry() { return registry_; }
  uint64_t next_epoch() const { return next_epoch_; }
  const net::RoutingTree& tree() const { return tree_; }
  const ServiceConfig& config() const { return config_; }

 private:
  /// One sharing group's runtime state. The engine holds the in-network
  /// distributed state (it survives membership churn); the filters are
  /// per-member station-side caches.
  struct Group {
    explicit Group(std::unique_ptr<join::DeltaGroupExecutor> engine_in)
        : engine(std::move(engine_in)) {}
    std::unique_ptr<join::DeltaGroupExecutor> engine;
    std::map<QueryId, join::IncrementalJoinFilter> filters;
  };

  /// Group key of a query record: sharing signature + protocol knobs (+
  /// the query id itself when sharing is disabled).
  std::string GroupKeyOf(const QueryRecord& record) const;

  /// Executes the epoch once; false + intact Status when a failure needs a
  /// tree rebuild and a retry.
  StatusOr<bool> RunEpochAttempt(uint64_t epoch,
                                 const std::vector<QueryId>& active,
                                 ServiceEpochReport* report);

  /// Rebuilds the tree and resets every group's distributed state.
  void RepairTopology();

  sim::Simulator& sim_;
  const data::NetworkData& data_;
  net::RoutingTree tree_;
  join::QuantizationConfig quantization_;
  ServiceConfig config_;
  QueryRegistry registry_;
  uint64_t next_epoch_ = 0;

  /// Live groups keyed by group key; iteration order (lexicographic) is the
  /// deterministic phase order within an epoch.
  std::map<std::string, Group> groups_;
  std::vector<GroupEpochReport> last_group_reports_;
};

}  // namespace sensjoin::service

#endif  // SENSJOIN_SERVICE_JOIN_SERVICE_H_
