#include "sensjoin/service/query_registry.h"

#include <utility>

namespace sensjoin::service {

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kAdmitted:
      return "admitted";
    case QueryState::kRunning:
      return "running";
    case QueryState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

QueryRegistry::QueryRegistry(data::Schema schema, size_t max_queries)
    : schema_(std::move(schema)), max_queries_(max_queries) {}

StatusOr<QueryId> QueryRegistry::Register(const std::string& sql,
                                          join::ProtocolConfig protocol,
                                          uint64_t epoch) {
  if (active_count_ >= max_queries_) {
    return Status::ResourceExhausted("query admission limit reached");
  }
  SENSJOIN_ASSIGN_OR_RETURN(query::AnalyzedQuery q,
                            query::AnalyzedQuery::FromString(sql, schema_));
  if (q.num_tables() < 2) {
    return Status::InvalidArgument(
        "continuous join service requires at least two relations in FROM");
  }
  std::string signature = query::SharingSignatureOf(q);
  const QueryId id = next_id_++;
  records_.emplace(
      std::piecewise_construct, std::forward_as_tuple(id),
      std::forward_as_tuple(id, sql, std::move(q), std::move(signature),
                            protocol, epoch));
  ++active_count_;
  return id;
}

Status QueryRegistry::Cancel(QueryId id, uint64_t epoch) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound("unknown query id");
  }
  if (it->second.state == QueryState::kCancelled) {
    return Status::InvalidArgument("query already cancelled");
  }
  it->second.state = QueryState::kCancelled;
  it->second.cancelled_epoch = epoch;
  --active_count_;
  return Status::Ok();
}

StatusOr<const QueryRecord*> QueryRegistry::Get(QueryId id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound("unknown query id");
  }
  return &it->second;
}

QueryRecord* QueryRegistry::GetMutable(QueryId id) {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<QueryId> QueryRegistry::ActiveIds() const {
  std::vector<QueryId> ids;
  ids.reserve(active_count_);
  for (const auto& [id, record] : records_) {
    if (record.state != QueryState::kCancelled) ids.push_back(id);
  }
  return ids;
}

}  // namespace sensjoin::service
